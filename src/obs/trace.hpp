// Structured per-session event tracing for the transmit layer.
//
// A SessionTrace records what happened to one document transfer, round by
// round: frames sent and how each was classified at the client (intact /
// corrupted / duplicate / foreign), round boundaries with channel timestamps,
// retransmission requests, and the terminal event (decode-complete, abort,
// give-up). Per-round aggregates (RoundSummary) are always maintained; the
// full per-frame event log is opt-in via capture_events(true) because a
// 25-round lossy session emits thousands of events.
//
// Producers (TransferSession, ArqSession, broadcast::listen_for,
// sim::simulate_transfer) hold a `SessionTrace*` that defaults to nullptr —
// the no-op sink. aggregate_trace() folds a finished trace into the standard
// histograms of a MetricsRegistry so experiment runners can build
// per-condition distributions; Collector bundles a registry with the traces
// it aggregated and exports both as one JSON document.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace mobiweb::obs {

class FlightRecorder;

enum class Event : std::uint8_t {
  kSessionStart,
  kRoundStart,
  kFrameSent,
  kFrameIntact,
  kFrameCorrupted,
  kFrameDuplicate,
  kFrameForeign,
  kFrameLost,          // swallowed by a link outage, never arrived
  kRetransmitRequest,
  kRoundEnd,
  kOutageBegin,        // client observed the link go dead
  kOutageEnd,          // link back; value = outage duration so far observed
  kBackoff,            // client backed off before re-requesting; value = wait
  kResume,             // transfer resumed from the intact-packet cache
  kDecodeComplete,
  kAbortIrrelevant,
  kDegraded,           // retry budget/deadline exhausted: partial delivery
  kGiveUp,
  kOriginOutageBegin,  // origin unreachable and no replica to fail over to
  kOriginOutageEnd,    // origin back; value = origin outage duration observed
  kStaleFailover,      // proxy served a stale-flagged replica (origin down)
  kHandoff,            // cell handoff to another proxy; value = handoff delay
  kReconcileDrop,      // reconciliation dropped held packets; value = count
  kSessionEnd,         // keep last: kEventCount is derived from it
};

// Number of Event enumerators. A static_assert in trace.cpp pins this to the
// event_name() switch, so adding an enumerator without naming it (and without
// the timeline exporter learning about it) fails to compile.
inline constexpr std::size_t kEventCount =
    static_cast<std::size_t>(Event::kSessionEnd) + 1;

// Distinct non-null name for every enumerator; "unknown" only for values
// outside the enum (e.g. a corrupted serialized event).
[[nodiscard]] const char* event_name(Event e);

struct TraceEvent {
  Event type = Event::kSessionStart;
  double time = 0.0;   // channel time; frame events use the arrival time
  int round = 0;
  long seq = -1;       // cooked-packet sequence number, -1 when n/a
  double value = 0.0;  // content received / pending count, event-dependent
};

struct RoundSummary {
  int round = 0;
  double start_time = 0.0;
  double end_time = 0.0;
  long frames_sent = 0;
  long frames_intact = 0;     // newly useful intact frames
  long frames_corrupted = 0;  // failed CRC / undecodable
  long frames_duplicate = 0;  // intact but already held
  long frames_foreign = 0;    // intact but for another document
  long frames_lost = 0;       // lost to a link outage (never arrived)
  double content_end = 0.0;   // information content when the round closed

  [[nodiscard]] double latency() const { return end_time - start_time; }
};

class SessionTrace {
 public:
  SessionTrace() = default;
  explicit SessionTrace(std::string label) : label_(std::move(label)) {}

  void set_label(std::string label) { label_ = std::move(label); }
  [[nodiscard]] const std::string& label() const { return label_; }

  // Enables the full per-frame event log (round summaries are always kept).
  void capture_events(bool on) { capture_events_ = on; }

  // Mirrors every event into `flight` (a fixed-size ring of recent events)
  // regardless of the capture mode, so postmortems don't need the unbounded
  // log. nullptr detaches. Like the capture mode, survives clear().
  void set_flight(FlightRecorder* flight) { flight_ = flight; }
  [[nodiscard]] FlightRecorder* flight() const { return flight_; }

  // Forgets everything recorded (label and capture mode persist), so one
  // trace object can be reused across many transfers.
  void clear();

  // -- recording API (called by the instrumented transmit/sim/broadcast code)
  void session_start(double time);
  void round_start(int round, double time);
  void frame_sent(long seq, double time);
  void frame_intact(long seq, double time, double content);
  void frame_corrupted(double time);
  void frame_duplicate(long seq, double time);
  void frame_foreign(double time);
  void frame_lost(double time);
  void retransmit_request(double time, long pending = -1);
  // content >= 0 also records the round's closing information content (the
  // real stack reaches it through frame_intact; replayed breadcrumbs don't).
  void round_end(double time, double content = -1.0);
  void outage_begin(double time);
  void outage_end(double time, double duration_s);
  void backoff(double time, double wait_s);
  void resume(double time);
  // -- cross-tier events (edge proxy / origin domain)
  void origin_outage_begin(double time);
  void origin_outage_end(double time, double duration_s);
  void stale_failover(double time);
  void handoff(double time, double delay_s);
  void reconcile_drop(double time, long dropped);
  void decode_complete(double time);
  void abort_irrelevant(double time, double content);
  void degraded(double time, double content);
  void give_up(double time);
  void session_end(double time, double content);

  // -- results
  [[nodiscard]] const std::vector<RoundSummary>& rounds() const { return rounds_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] bool completed() const { return completed_; }
  [[nodiscard]] bool aborted_irrelevant() const { return aborted_; }
  [[nodiscard]] bool gave_up() const { return gave_up_; }
  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] int outage_count() const { return outage_count_; }
  [[nodiscard]] int origin_outage_count() const { return origin_outage_count_; }
  [[nodiscard]] int stale_failover_count() const { return stale_failover_count_; }
  [[nodiscard]] int handoff_count() const { return handoff_count_; }
  [[nodiscard]] long reconcile_dropped() const { return reconcile_dropped_; }
  [[nodiscard]] int backoff_count() const { return backoff_count_; }
  [[nodiscard]] double backoff_total_s() const { return backoff_total_s_; }
  [[nodiscard]] double start_time() const { return start_time_; }
  [[nodiscard]] double end_time() const { return end_time_; }
  [[nodiscard]] double response_time() const { return end_time_ - start_time_; }
  [[nodiscard]] double final_content() const { return final_content_; }
  [[nodiscard]] long frames_sent() const;

  // {"label": ..., "completed": ..., "rounds": [RoundSummary...],
  //  "events": [...] (only when captured)}
  [[nodiscard]] std::string to_json() const;

 private:
  void push(Event type, double time, long seq, double value);
  RoundSummary& round_at(double time);

  std::string label_;
  bool capture_events_ = false;
  FlightRecorder* flight_ = nullptr;
  std::vector<TraceEvent> events_;
  std::vector<RoundSummary> rounds_;
  double start_time_ = 0.0;
  double end_time_ = 0.0;
  double final_content_ = 0.0;
  bool completed_ = false;
  bool aborted_ = false;
  bool gave_up_ = false;
  bool degraded_ = false;
  int outage_count_ = 0;
  int origin_outage_count_ = 0;
  int stale_failover_count_ = 0;
  int handoff_count_ = 0;
  long reconcile_dropped_ = 0;
  int backoff_count_ = 0;
  double backoff_total_s_ = 0.0;
};

// Folds one finished trace into the standard transmit histograms/counters of
// `registry` (names under "session." / "round."): response time, rounds per
// session, per-round latency and intact/corrupted counts, content progress,
// and outcome counters. Calling it per transfer with one registry per
// experimental condition yields per-condition histograms.
void aggregate_trace(const SessionTrace& trace, MetricsRegistry& registry);

// A metrics registry plus the traces that were aggregated into it — what a
// bench or experiment attaches to get the whole observability stack at once.
class Collector {
 public:
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  // Opens a trace for one transfer; references stay valid (deque).
  SessionTrace& begin_trace(std::string label);
  // Aggregates the finished trace into metrics().
  void finish_trace(const SessionTrace& trace) { aggregate_trace(trace, metrics_); }

  [[nodiscard]] const std::deque<SessionTrace>& traces() const { return traces_; }

  // {"metrics": {...}, "traces": [...]}
  [[nodiscard]] std::string to_json() const;

 private:
  MetricsRegistry metrics_;
  std::deque<SessionTrace> traces_;
};

}  // namespace mobiweb::obs
