// Exporters: Chrome/Perfetto trace-event JSON for session timelines, and
// Prometheus text exposition for a MetricsRegistry.
//
// The paper's evaluation is all about *when* content arrives under a lossy
// 19.2 kbps link; end-of-run averages hide the dynamics. timeline_json()
// converts one or many SessionTraces into the Trace Event Format that
// chrome://tracing and ui.perfetto.dev load directly: the session, every
// round, and every outage/backoff window become nested "X" (complete) spans,
// per-frame classifications become instant events when the trace captured
// them, and content progress becomes a counter track. Multi-session runs
// (bench_outage sweeps, experiment repetitions) render as one track (tid)
// per session so concurrent schedules line up visually.
//
// prometheus_text() renders counters/gauges/histograms in the text
// exposition format (one # TYPE block per metric family, cumulative
// histogram buckets with an le="+Inf" series). Registry names may embed
// labels with the `name{key=value,key2=value2}` convention; the exporter
// splits and escapes them per the Prometheus spec.
//
// Both exporters use obs/json.hpp's escaping, the one escaping routine for
// every JSON producer in src/obs (labels containing quotes, backslashes and
// control characters survive round trips).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mobiweb::obs {

// ---------------------------------------------------------------- timeline

struct TimelineOptions {
  int pid = 1;                // process id stamped on every event
  double time_scale = 1e6;    // trace times are seconds; Perfetto wants us
  bool content_counter = true;  // emit a "content" counter track per session
};

// Appends the trace's events (comma-separated, no enclosing brackets) to
// `out` as one Perfetto track with thread id `tid`. `first` tracks whether a
// comma is needed before the next event and is updated in place.
void append_timeline_events(const SessionTrace& trace, int tid,
                            std::string& out, bool& first,
                            const TimelineOptions& options = {});

// One trace -> a complete {"traceEvents": [...]} document.
[[nodiscard]] std::string timeline_json(const SessionTrace& trace,
                                        const TimelineOptions& options = {});

// Many traces -> one document, one track (tid = 1, 2, ...) per trace, each
// named after its label via thread_name metadata.
[[nodiscard]] std::string timeline_json(
    const std::vector<const SessionTrace*>& traces,
    const TimelineOptions& options = {});

// All traces held by a collector, same track-per-session layout.
[[nodiscard]] std::string timeline_json(const Collector& collector,
                                        const TimelineOptions& options = {});

// -------------------------------------------------------------- prometheus

// Valid Prometheus metric name from a registry name: dots and other illegal
// characters become underscores; a leading digit gets a '_' prefix. The
// `{labels}` suffix, when present, is not part of the name.
[[nodiscard]] std::string prometheus_name(std::string_view registry_name);

// Renders the whole registry in text exposition format. Every metric name is
// prefixed with `prefix` + "_" (pass "" for none). Counters map to `counter`,
// gauges to `gauge`, histograms to `histogram` with cumulative `_bucket`
// series (inclusive upper edges match Prometheus `le` semantics), `_sum` and
// `_count`. Series sharing a base name (differing only in labels) are grouped
// under one # TYPE header.
[[nodiscard]] std::string prometheus_text(const MetricsRegistry& registry,
                                          std::string_view prefix = "mobiweb");

}  // namespace mobiweb::obs
