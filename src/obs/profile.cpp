#include "obs/profile.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <unordered_map>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace mobiweb::obs {

std::atomic<Profiler*> Profiler::g_active{nullptr};

namespace {

// Bumped on every attach/detach so stale thread-local log pointers (from a
// previous profiler) are never dereferenced.
std::atomic<std::uint64_t> g_generation{0};

thread_local Profiler::ThreadLog* tls_log = nullptr;
thread_local std::uint64_t tls_generation = 0;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct Profiler::ThreadLog {
  static constexpr int kMaxDepth = 64;
  static constexpr std::size_t kMaxTimelineEvents = 1u << 16;

  struct Frame {
    const char* name;
    std::uint64_t start_ns;
    std::uint64_t child_ns;
  };
  struct Accum {
    long count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t child_ns = 0;
  };
  struct SpanEvent {
    const char* name;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
  };

  Profiler* owner = nullptr;
  int tid = 1;
  Frame stack[kMaxDepth];
  int depth = 0;
  long dropped_scopes = 0;
  long dropped_events = 0;
  // Keyed by the literal's address: no hashing of string contents on the hot
  // path. Distinct literals with equal text merge at report time.
  std::unordered_map<const char*, Accum> accum;
  std::vector<SpanEvent> timeline;
};

Profiler::Profiler() = default;

Profiler::~Profiler() {
  if (active() == this) detach();
}

void Profiler::attach() {
  epoch_ns_ = steady_ns();
  g_generation.fetch_add(1, std::memory_order_relaxed);
  g_active.store(this, std::memory_order_release);
}

void Profiler::detach() {
  g_active.store(nullptr, std::memory_order_release);
  g_generation.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Profiler::now_ns() const { return steady_ns() - epoch_ns_; }

Profiler::ThreadLog* Profiler::log_for_this_thread() {
  const std::uint64_t generation = g_generation.load(std::memory_order_relaxed);
  if (tls_log != nullptr && tls_generation == generation &&
      tls_log->owner == this) {
    return tls_log;
  }
  auto log = std::make_unique<ThreadLog>();
  log->owner = this;
  ThreadLog* raw = log.get();
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    raw->tid = static_cast<int>(logs_.size()) + 1;
    logs_.push_back(std::move(log));
  }
  tls_log = raw;
  tls_generation = generation;
  return raw;
}

void ScopedTimer::open(Profiler* p, const char* name) noexcept {
  Profiler::ThreadLog* log = p->log_for_this_thread();
  if (log->depth >= Profiler::ThreadLog::kMaxDepth) {
    ++log->dropped_scopes;
    return;  // log_ stays null: close() is skipped, parent keeps the time
  }
  log->stack[log->depth++] = {name, p->now_ns(), 0};
  log_ = log;
}

void ScopedTimer::close() noexcept {
  Profiler::ThreadLog* log = log_;
  Profiler::ThreadLog::Frame frame = log->stack[--log->depth];
  const std::uint64_t end = log->owner->now_ns();
  const std::uint64_t dur = end > frame.start_ns ? end - frame.start_ns : 0;
  Profiler::ThreadLog::Accum& a = log->accum[frame.name];
  ++a.count;
  a.total_ns += dur;
  a.child_ns += frame.child_ns;
  if (log->depth > 0) log->stack[log->depth - 1].child_ns += dur;
  if (log->owner->capture_timeline_.load(std::memory_order_relaxed)) {
    if (log->timeline.size() < Profiler::ThreadLog::kMaxTimelineEvents) {
      log->timeline.push_back({frame.name, frame.start_ns, dur});
    } else {
      ++log->dropped_events;
    }
  }
}

std::vector<ProfileEntry> Profiler::report() const {
  std::map<std::string, ProfileEntry> merged;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& log : logs_) {
      for (const auto& [name, a] : log->accum) {
        ProfileEntry& e = merged[name];
        e.name = name;
        e.count += a.count;
        e.total_s += static_cast<double>(a.total_ns) * 1e-9;
        const std::uint64_t self =
            a.total_ns > a.child_ns ? a.total_ns - a.child_ns : 0;
        e.self_s += static_cast<double>(self) * 1e-9;
      }
    }
  }
  std::vector<ProfileEntry> out;
  out.reserve(merged.size());
  for (auto& [name, e] : merged) out.push_back(std::move(e));
  std::sort(out.begin(), out.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return a.self_s > b.self_s;
            });
  return out;
}

std::string Profiler::table() const {
  const std::vector<ProfileEntry> entries = report();
  double self_total = 0.0;
  for (const ProfileEntry& e : entries) self_total += e.self_s;
  TextTable t({"scope", "count", "total (ms)", "self (ms)", "self %"});
  for (const ProfileEntry& e : entries) {
    t.add_row({e.name, std::to_string(e.count),
               TextTable::fmt(e.total_s * 1e3, 3),
               TextTable::fmt(e.self_s * 1e3, 3),
               TextTable::fmt(self_total > 0.0 ? 100.0 * e.self_s / self_total
                                               : 0.0,
                              1)});
  }
  return t.render();
}

std::string Profiler::to_json() const {
  std::string out = "{\"entries\": [";
  bool first = true;
  char buf[64];
  for (const ProfileEntry& e : report()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": ";
    append_json_string(out, e.name);
    out += ", \"count\": " + std::to_string(e.count);
    std::snprintf(buf, sizeof buf, ", \"total_s\": %.9g, \"self_s\": %.9g}",
                  e.total_s, e.self_s);
    out += buf;
  }
  out += "], \"dropped_scopes\": " + std::to_string(dropped_scopes());
  out += ", \"dropped_events\": " + std::to_string(dropped_events()) + "}";
  return out;
}

void Profiler::append_timeline_events(std::string& out, bool& first,
                                      int pid) const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& log : logs_) {
    if (log->timeline.empty()) continue;
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " +
           std::to_string(pid) + ", \"tid\": " + std::to_string(log->tid) +
           ", \"args\": {\"name\": \"profiler thread " +
           std::to_string(log->tid) + "\"}}";
    char buf[96];
    for (const ThreadLog::SpanEvent& e : log->timeline) {
      out += ",\n{\"ph\": \"X\", \"name\": ";
      append_json_string(out, e.name);
      std::snprintf(buf, sizeof buf,
                    ", \"cat\": \"profile\", \"pid\": %d, \"tid\": %d, "
                    "\"ts\": %.3f, \"dur\": %.3f}",
                    pid, log->tid, static_cast<double>(e.start_ns) / 1e3,
                    static_cast<double>(e.dur_ns) / 1e3);
      out += buf;
    }
  }
}

std::string Profiler::timeline_json(int pid) const {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  append_timeline_events(out, first, pid);
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

void Profiler::reset() {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& log : logs_) {
    log->accum.clear();
    log->timeline.clear();
    log->dropped_scopes = 0;
    log->dropped_events = 0;
    // Open frames (a reset from inside an instrumented scope) keep their
    // start times; their totals land in the post-reset accumulation.
  }
  epoch_ns_ = steady_ns();
}

long Profiler::dropped_scopes() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  long total = 0;
  for (const auto& log : logs_) total += log->dropped_scopes;
  return total;
}

long Profiler::dropped_events() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  long total = 0;
  for (const auto& log : logs_) total += log->dropped_events;
  return total;
}

}  // namespace mobiweb::obs
