// Transmit-layer metrics: counters, gauges and fixed-bucket histograms,
// grouped in a MetricsRegistry with JSON export (the same machine-readable
// convention as `bench_micro_coding --json`).
//
// Design constraints (see DESIGN.md §"Observability"):
//   * zero cost when unused — every instrumented component holds a plain
//     pointer that defaults to nullptr, so the uninstrumented hot path pays
//     one predictable branch and nothing else;
//   * no locking — a registry belongs to one simulation/session thread, like
//     every other stateful object in this repository;
//   * stable iteration order (std::map) so JSON output is diffable.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mobiweb::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void inc(long delta = 1) { value_ += delta; }
  [[nodiscard]] long value() const { return value_; }

 private:
  long value_ = 0;
};

// Last-written (or accumulated) scalar.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed-bucket histogram: `upper_bounds` are the inclusive upper edges of the
// finite buckets (must be strictly increasing); one implicit overflow bucket
// catches everything above the last edge.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] long count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] const std::vector<double>& upper_bounds() const { return bounds_; }
  // bucket_counts().size() == upper_bounds().size() + 1 (overflow last).
  [[nodiscard]] const std::vector<long>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<long> counts_;
  long count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  // Lookup-or-create by name. References stay valid for the registry's
  // lifetime (node-based map), so hot paths can cache them.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // `upper_bounds` is consulted only when the histogram is first created.
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);

  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Whole-registry read access in stable (sorted) order, for exporters.
  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {"buckets": [...],
  //  "counts": [...], "count": c, "sum": s, "min": lo, "max": hi}}}
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace mobiweb::obs
