// Transmit-layer metrics: counters, gauges and fixed-bucket histograms,
// grouped in a MetricsRegistry with JSON export (the same machine-readable
// convention as `bench_micro_coding --json`).
//
// Design constraints (see DESIGN.md §"Observability"):
//   * zero cost when unused — every instrumented component holds a plain
//     pointer that defaults to nullptr, so the uninstrumented hot path pays
//     one predictable branch and nothing else;
//   * recording is thread-safe — the fleet engine's shards write into one
//     shared registry from every pool worker, so counters and gauges are
//     atomics (relaxed; they are statistics, not synchronization) and each
//     histogram serializes observes behind its own mutex. Lookup-or-create
//     takes a registry-wide shared_mutex; hot paths resolve their Counter /
//     Gauge / Histogram references once and then record lock-free (counters,
//     gauges) or under the per-histogram lock;
//   * stable iteration order (std::map) so JSON output is diffable. The
//     whole-registry accessors (counters()/gauges()/histograms()/to_json())
//     may run concurrently with *recording*, but not with lookup-or-create
//     of new names — export after the writers have registered their series,
//     or after they have finished.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mobiweb::obs {

// Monotonically increasing event count. inc() is safe from any thread.
class Counter {
 public:
  void inc(long delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] long value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<long> value_{0};
};

// Last-written (or accumulated) scalar. set()/add() are safe from any thread;
// concurrent set() keeps one of the written values.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    // fetch_add on atomic<double> needs C++20 library support that is not
    // universal yet; a CAS loop is equivalent and contention here is rare.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

// A quantile read off a histogram, calibrated with hard error bounds: the
// exact sample quantile is guaranteed to lie in [lower, upper] (the observed
// value ranges of the bucket(s) holding the quantile's rank), whatever the
// within-bucket sample placement. `value` interpolates linearly inside that
// range; when the winning bucket holds a single distinct value the three
// fields coincide and the answer is exact.
struct QuantileEstimate {
  double value = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};

// Fixed-bucket histogram: `upper_bounds` are the inclusive upper edges of the
// finite buckets (must be strictly increasing); one implicit overflow bucket
// catches everything above the last edge. observe() may be called from any
// thread; readers see a consistent snapshot (count/sum/min/max/buckets are
// updated together under the histogram's mutex).
//
// Besides the bucket counters, each bucket tracks the min and max value it
// has absorbed. That is what makes quantile() well-behaved at bucket
// boundaries: the fractional rank is resolved inside the *observed* value
// range of the winning bucket (never the nominal bucket edges), a rank that
// straddles two buckets interpolates between the lower bucket's max and the
// upper bucket's min, and a bucket holding one distinct value answers
// exactly. stats::summarize_histogram builds full tail summaries on top.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  // Moves are only used while inserting into the registry map, under the
  // registry's exclusive lock; the mutex itself is not moved.
  Histogram(Histogram&& other) noexcept;

  void observe(double v);

  [[nodiscard]] long count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  // Sample variance reconstructed from the running sum of squares (n-1
  // denominator); 0 below two observations.
  [[nodiscard]] double variance() const;
  // Quantile q in [0, 1] with type-7 fractional ranks over the bucketed
  // counts (see QuantileEstimate for the error contract). NaN when empty.
  [[nodiscard]] QuantileEstimate quantile_with_bounds(double q) const;
  [[nodiscard]] double quantile(double q) const {
    return quantile_with_bounds(q).value;
  }
  // Immutable after construction — safe to reference without locking.
  [[nodiscard]] const std::vector<double>& upper_bounds() const { return bounds_; }
  // Snapshot; size() == upper_bounds().size() + 1 (overflow last).
  [[nodiscard]] std::vector<long> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<long> counts_;
  std::vector<double> bucket_lo_;  // observed min per bucket
  std::vector<double> bucket_hi_;  // observed max per bucket
  long count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  // Lookup-or-create by name, safe to race from multiple threads. References
  // stay valid for the registry's lifetime (node-based map), so hot paths
  // cache them and record without re-entering the registry.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // `upper_bounds` is consulted only when the histogram is first created.
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);

  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  [[nodiscard]] bool empty() const {
    std::shared_lock lock(mu_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Whole-registry read access in stable (sorted) order, for exporters. Safe
  // concurrently with recording on already-created series; do not race these
  // against lookup-or-create of *new* names (map insertion).
  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {"buckets": [...],
  //  "counts": [...], "count": c, "sum": s, "min": lo, "max": hi}}}
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::shared_mutex mu_;  // guards the three maps' structure
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Canonical bucket edges (seconds) for session-duration histograms, shared
// by the fleet engine's aggregate and per-status `fleet.session_time_s`
// series so exported distributions stay directly comparable.
const std::vector<double>& session_time_buckets();

}  // namespace mobiweb::obs
