#include "obs/timeseries.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace mobiweb::obs {

static_assert(kChannelCount == 14,
              "obs::Channel changed: update channel_name() and the timeline "
              "document's derived-series table");

const char* channel_name(Channel c) {
  switch (c) {
    case Channel::kSessionsStarted: return "sessions_started";
    case Channel::kSessionsEnded: return "sessions_ended";
    case Channel::kSessionsFailed: return "sessions_failed";
    case Channel::kRounds: return "rounds";
    case Channel::kFramesSent: return "frames_sent";
    case Channel::kFramesLost: return "frames_lost";
    case Channel::kSuspensions: return "suspensions";
    case Channel::kReplicaHits: return "replica_hits";
    case Channel::kStaleServes: return "stale_serves";
    case Channel::kOriginFetches: return "origin_fetches";
    case Channel::kOriginProbes: return "origin_probes";
    case Channel::kOriginUp: return "origin_up";
    case Channel::kHandoffs: return "handoffs";
    case Channel::kReconcileDrops: return "reconcile_drops";
    case Channel::kChannelCount: break;
  }
  return "unknown";
}

TimeSeries::TimeSeries(double bucket_width_s, std::size_t max_buckets)
    : width_(bucket_width_s), max_buckets_(max_buckets) {
  MOBIWEB_CHECK_MSG(bucket_width_s > 0.0 && std::isfinite(bucket_width_s),
                    "TimeSeries: bucket width must be positive and finite");
  MOBIWEB_CHECK_MSG(max_buckets > 0, "TimeSeries: need at least one bucket");
}

void TimeSeries::add(Channel c, double time_s, long delta) {
  if (!engaged()) return;
  const auto ci = static_cast<std::size_t>(c);
  MOBIWEB_CHECK_MSG(ci < kChannelCount, "TimeSeries: channel out of range");
  std::size_t bucket = 0;
  if (time_s > 0.0) {
    const double raw = time_s / width_;
    // floor() of a simulated timestamp; identical for identical inputs, so
    // the bucket index never depends on which shard computed it.
    bucket = raw >= static_cast<double>(max_buckets_)
                 ? max_buckets_
                 : static_cast<std::size_t>(raw);
  }
  if (bucket >= max_buckets_) {
    bucket = max_buckets_ - 1;
    ++clamped_;
  }
  std::vector<long>& column = data_[ci];
  if (column.size() <= bucket) column.resize(bucket + 1, 0);
  column[bucket] += delta;
  if (bucket + 1 > buckets_) buckets_ = bucket + 1;
}

void TimeSeries::merge(const TimeSeries& other) {
  if (!other.engaged()) return;
  if (!engaged()) {
    *this = other;
    return;
  }
  MOBIWEB_CHECK_MSG(width_ == other.width_ && max_buckets_ == other.max_buckets_,
                    "TimeSeries: merging mismatched bucket geometry");
  clamped_ += other.clamped_;
  if (other.buckets_ > buckets_) buckets_ = other.buckets_;
  for (std::size_t c = 0; c < kChannelCount; ++c) {
    const std::vector<long>& src = other.data_[c];
    std::vector<long>& dst = data_[c];
    if (dst.size() < src.size()) dst.resize(src.size(), 0);
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] += src[i];
  }
}

const std::vector<long>& TimeSeries::series(Channel c) const {
  const auto ci = static_cast<std::size_t>(c);
  MOBIWEB_CHECK_MSG(ci < kChannelCount, "TimeSeries: channel out of range");
  return data_[ci];
}

long TimeSeries::at(Channel c, std::size_t bucket) const {
  const std::vector<long>& column = series(c);
  return bucket < column.size() ? column[bucket] : 0;
}

long TimeSeries::total(Channel c) const {
  long sum = 0;
  for (const long v : series(c)) sum += v;
  return sum;
}

std::string TimeSeries::to_json() const {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", width_);
  std::string out = "{\"bucket_width_s\": ";
  out += buf;
  out += ", \"buckets\": " + std::to_string(buckets_);
  out += ", \"clamped\": " + std::to_string(clamped_);
  out += ", \"series\": {";
  for (std::size_t c = 0; c < kChannelCount; ++c) {
    if (c) out += ", ";
    out += '"';
    out += channel_name(static_cast<Channel>(c));
    out += "\": [";
    for (std::size_t i = 0; i < buckets_; ++i) {
      if (i) out += ", ";
      out += std::to_string(at(static_cast<Channel>(c), i));
    }
    out += ']';
  }
  out += "}}";
  return out;
}

}  // namespace mobiweb::obs
