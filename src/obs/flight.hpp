// Flight recorder: a fixed-size ring buffer of the most recent trace events.
//
// Full per-frame capture on a 25-round lossy session costs thousands of
// heap-allocated events, so production-shaped runs leave it off — and then a
// weak-connectivity failure (kDegraded / kGaveUp) leaves nothing to examine.
// The recorder closes that gap: SessionTrace::set_flight mirrors every event
// into the ring regardless of the capture mode, the ring overwrites its
// oldest entry at capacity (O(1), no allocation after construction), and
// ResilientSession dumps it automatically when a session degrades or gives
// up, so the last moments before the failure are always on record.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace mobiweb::obs {

class FlightRecorder {
 public:
  // `capacity` is the number of most-recent events retained (>= 1).
  explicit FlightRecorder(std::size_t capacity = 256);

  void record(const TraceEvent& event);

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::size_t size() const;
  // Events recorded beyond capacity (overwritten, no longer retrievable).
  [[nodiscard]] long dropped() const;
  [[nodiscard]] long recorded() const { return recorded_; }

  // Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  // Forgets every event (capacity and sink persist).
  void clear();

  // {"reason": ..., "dropped": N, "events": [...]} — events oldest first.
  [[nodiscard]] std::string to_json(std::string_view reason = {}) const;

  // Where dump() sends the rendered JSON; default writes a single line to
  // stderr. Tests install a capturing sink.
  using Sink = std::function<void(const std::string& json)>;
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  // Renders to_json(reason) into the sink. Called automatically by
  // ResilientSession on kDegraded / kGaveUp; callers can also invoke it
  // manually on any condition they consider a postmortem.
  void dump(std::string_view reason);
  [[nodiscard]] int dump_count() const { return dump_count_; }

 private:
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;     // ring slot the next event lands in
  long recorded_ = 0;        // total events ever recorded
  int dump_count_ = 0;
  Sink sink_;
};

}  // namespace mobiweb::obs
