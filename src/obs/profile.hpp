// Lightweight wall-clock profiler for the hot paths (GF kernels, IDA
// encode/decode, LZSS, XML parse, channel send loop, session rounds).
//
// Design: instrumented code carries MOBIWEB_PROFILE_SCOPE("name") — an RAII
// ScopedTimer whose constructor loads one process-wide atomic pointer. When
// no profiler is attached (the default) that load-and-branch is the entire
// cost, matching the repo's nullptr-sink observability contract
// (BM_ProfilerOverhead in bench_micro_pipeline guards detached ≈
// uninstrumented). When attached, each thread accumulates into its own
// ThreadLog — a per-thread span stack plus per-name totals — with no
// locking on the hot path; logs are registered once per thread (one mutex
// acquisition) and merged under the same mutex only when a report is built.
//
// Reports come in two shapes: a flat self-time/total-time table (self =
// inclusive time minus time spent in nested scopes), and Perfetto "X" span
// events (capture_timeline(true)) that load alongside the session timeline
// exporter's tracks — wall-clock CPU spans next to channel-time transfer
// spans, one pid per domain.
//
// Scope names must be string literals (or otherwise outlive the profiler):
// the hot path stores the pointer only.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mobiweb::obs {

struct ProfileEntry {
  std::string name;
  long count = 0;
  double total_s = 0.0;  // inclusive wall time
  double self_s = 0.0;   // total minus nested instrumented scopes
};

class ScopedTimer;

class Profiler {
 public:
  Profiler();
  ~Profiler();  // detaches first when this is the active profiler
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Makes this the process-wide active profiler (replacing any other) and
  // starts the clock. Attach/detach only while no instrumented code is
  // running concurrently — the hot path deliberately takes no lock.
  void attach();
  static void detach();
  [[nodiscard]] static Profiler* active() {
    return g_active.load(std::memory_order_acquire);
  }

  // Also records every span begin/end (bounded per thread) so the profile
  // can render as Perfetto tracks. Off by default: pure accumulation.
  void capture_timeline(bool on) {
    capture_timeline_.store(on, std::memory_order_relaxed);
  }

  // Merged across threads, sorted by self time (descending). Build reports
  // after the instrumented work quiesced (e.g. thread-pool jobs joined).
  [[nodiscard]] std::vector<ProfileEntry> report() const;

  // Aligned name/count/total/self table of report().
  [[nodiscard]] std::string table() const;

  // {"entries": [{"name", "count", "total_s", "self_s"}...],
  //  "dropped_scopes": n, "dropped_events": n}
  [[nodiscard]] std::string to_json() const;

  // Perfetto span events (requires capture_timeline). One track per
  // participating thread under `pid` — keep it distinct from the session
  // exporter's pid so wall-clock tracks group separately from channel-time
  // tracks. Appends comma-separated events; `first` as in obs/export.hpp.
  void append_timeline_events(std::string& out, bool& first, int pid = 2) const;
  [[nodiscard]] std::string timeline_json(int pid = 2) const;

  // Forgets all accumulated data and recorded spans (threads stay
  // registered). Call between measurement windows.
  void reset();

  // Scopes skipped because a thread exceeded the fixed stack depth, and
  // timeline events dropped because a thread filled its event buffer.
  [[nodiscard]] long dropped_scopes() const;
  [[nodiscard]] long dropped_events() const;

  struct ThreadLog;

 private:
  friend class ScopedTimer;

  ThreadLog* log_for_this_thread();
  [[nodiscard]] std::uint64_t now_ns() const;

  static std::atomic<Profiler*> g_active;

  std::atomic<bool> capture_timeline_{false};
  std::uint64_t epoch_ns_ = 0;
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

// RAII span. One atomic load when detached; two clock reads plus per-thread
// bookkeeping when attached.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) noexcept {
    Profiler* p = Profiler::active();
    if (p != nullptr) open(p, name);
  }
  ~ScopedTimer() {
    if (log_ != nullptr) close();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  void open(Profiler* p, const char* name) noexcept;
  void close() noexcept;

  Profiler::ThreadLog* log_ = nullptr;
};

#define MOBIWEB_PROFILE_CONCAT2(a, b) a##b
#define MOBIWEB_PROFILE_CONCAT(a, b) MOBIWEB_PROFILE_CONCAT2(a, b)
// `name` must be a string literal (the profiler stores the pointer).
#define MOBIWEB_PROFILE_SCOPE(name) \
  ::mobiweb::obs::ScopedTimer MOBIWEB_PROFILE_CONCAT(mobiweb_prof_scope_, \
                                                     __LINE__)(name)

}  // namespace mobiweb::obs
