// Fixed-width time-bucketed counters over *simulated* time.
//
// A TimeSeries is a small matrix: one integer vector per Channel, indexed by
// bucket = floor(time / bucket_width_s). The fleet engine keeps one instance
// per shard and folds them together with merge() after the run, so the class
// follows the same determinism discipline as FleetResult: every cell is an
// integer accumulated with `+=`, which is associative and commutative, so the
// merged series is bit-identical no matter how sessions were sharded. Rates
// (cache hit fraction, origin-up fraction, frames/s) are never stored — they
// are derived at export time as ratios of merged integers.
//
// Memory is bounded: buckets grow lazily up to `max_buckets`; adds beyond the
// window clamp into the last bucket and are tallied in clamped() so exporters
// can flag the truncation instead of silently folding the tail.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace mobiweb::obs {

// One integer metric tracked per time bucket. Names (channel_name) are the
// keys used in the exported timeline document.
enum class Channel : int {
  kSessionsStarted = 0,  // session admitted (arrival time)
  kSessionsEnded,        // session terminated (any verdict)
  kSessionsFailed,       // terminated degraded or gave-up
  kRounds,               // stalled (non-terminal) round boundaries
  kFramesSent,           // frames put on the air
  kFramesLost,           // frames swallowed by a link outage
  kSuspensions,          // suspend/backoff episodes survived
  kReplicaHits,          // proxy served a fresh replica
  kStaleServes,          // proxy failed over to a stale-flagged replica
  kOriginFetches,        // proxy refreshed its replica from the origin
  kOriginProbes,         // origin reachability checks
  kOriginUp,             // ... of which found the origin up
  kHandoffs,             // cell handoffs to another proxy
  kReconcileDrops,       // held packets dropped by reconnect reconciliation
  kChannelCount,         // keep last
};

inline constexpr std::size_t kChannelCount =
    static_cast<std::size_t>(Channel::kChannelCount);

// Distinct snake_case name per channel; "unknown" outside the enum.
[[nodiscard]] const char* channel_name(Channel c);

class TimeSeries {
 public:
  // Disengaged: zero width, add() is a no-op. Lets FleetResult carry a
  // TimeSeries member without cost when telemetry is off.
  TimeSeries() = default;
  TimeSeries(double bucket_width_s, std::size_t max_buckets);

  [[nodiscard]] bool engaged() const { return width_ > 0.0; }
  [[nodiscard]] double bucket_width_s() const { return width_; }
  [[nodiscard]] std::size_t max_buckets() const { return max_buckets_; }

  // High-water bucket count across all channels (series() vectors may be
  // shorter for channels that went quiet early; treat missing cells as 0).
  [[nodiscard]] std::size_t buckets() const { return buckets_; }

  // Number of add() calls that landed past the window and were folded into
  // the final bucket.
  [[nodiscard]] long clamped() const { return clamped_; }

  void add(Channel c, double time_s, long delta = 1);

  // Folds `other` into this series. Requires identical (width, max_buckets)
  // geometry unless one side is disengaged. Order-independent: merging shard
  // series in any order yields bit-identical cells.
  void merge(const TimeSeries& other);

  [[nodiscard]] const std::vector<long>& series(Channel c) const;
  [[nodiscard]] long at(Channel c, std::size_t bucket) const;
  [[nodiscard]] long total(Channel c) const;

  // {"bucket_width_s": ..., "buckets": N, "clamped": ...,
  //  "series": {"sessions_started": [..N ints..], ...}} — every channel
  // padded to buckets() with zeros; deterministic key order.
  [[nodiscard]] std::string to_json() const;

 private:
  double width_ = 0.0;
  std::size_t max_buckets_ = 0;
  std::size_t buckets_ = 0;
  long clamped_ = 0;
  std::array<std::vector<long>, kChannelCount> data_;
};

}  // namespace mobiweb::obs
