// The one JSON string-escaping routine shared by every JSON producer in
// src/obs (metrics, traces, timeline export, flight recorder). Labels
// containing quotes, backslashes and control characters must survive a
// round trip through any exporter — RFC 8259 requires escaping control
// characters below 0x20, which a quote-and-backslash-only escaper silently
// corrupts.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace mobiweb::obs {

// Appends `s` to `out` with JSON string escaping applied: backslash, quote,
// \b \f \n \r \t, and \u00XX for the remaining control characters. No
// surrounding quotes; see append_json_string.
inline void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Appends `"s"` (quoted and escaped).
inline void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  append_json_escaped(out, s);
  out += '"';
}

[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  append_json_escaped(out, s);
  return out;
}

}  // namespace mobiweb::obs
