#include "obs/export.hpp"

#include <cstdio>

namespace mobiweb::obs {

namespace {

void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

// ---------------------------------------------------------------- timeline

namespace {

// Emits the shared `"pid": P, "tid": T, "ts": t` fields (scaled).
void append_event_head(std::string& out, bool& first, const char* phase,
                       std::string_view name, const char* category, int pid,
                       int tid, double ts, const TimelineOptions& options) {
  if (!first) out += ",\n";
  first = false;
  out += "{\"ph\": \"";
  out += phase;
  out += "\", \"name\": ";
  append_json_string(out, name);
  if (category != nullptr) {
    out += ", \"cat\": \"";
    out += category;
    out += '"';
  }
  out += ", \"pid\": " + std::to_string(pid);
  out += ", \"tid\": " + std::to_string(tid);
  out += ", \"ts\": ";
  append_number(out, ts * options.time_scale);
}

void append_complete_event(std::string& out, bool& first, std::string_view name,
                           const char* category, int pid, int tid, double start,
                           double end, const TimelineOptions& options,
                           std::string_view args_body) {
  append_event_head(out, first, "X", name, category, pid, tid, start, options);
  out += ", \"dur\": ";
  append_number(out, (end > start ? end - start : 0.0) * options.time_scale);
  if (!args_body.empty()) {
    out += ", \"args\": {";
    out += args_body;
    out += '}';
  }
  out += '}';
}

void append_instant_event(std::string& out, bool& first, std::string_view name,
                          const char* category, int pid, int tid, double ts,
                          const TimelineOptions& options,
                          std::string_view args_body) {
  append_event_head(out, first, "i", name, category, pid, tid, ts, options);
  out += ", \"s\": \"t\"";
  if (!args_body.empty()) {
    out += ", \"args\": {";
    out += args_body;
    out += '}';
  }
  out += '}';
}

void append_counter_event(std::string& out, bool& first, std::string_view name,
                          int pid, int tid, double ts, double value,
                          const TimelineOptions& options) {
  append_event_head(out, first, "C", name, nullptr, pid, tid, ts, options);
  out += ", \"args\": {\"content\": ";
  append_number(out, value);
  out += "}}";
}

void append_thread_name(std::string& out, bool& first, int pid, int tid,
                        std::string_view name) {
  if (!first) out += ",\n";
  first = false;
  out += "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " +
         std::to_string(pid) + ", \"tid\": " + std::to_string(tid) +
         ", \"args\": {\"name\": ";
  append_json_string(out, name);
  out += "}}";
}

bool is_frame_event(Event e) {
  switch (e) {
    case Event::kFrameSent:
    case Event::kFrameIntact:
    case Event::kFrameCorrupted:
    case Event::kFrameDuplicate:
    case Event::kFrameForeign:
    case Event::kFrameLost:
      return true;
    default:
      return false;
  }
}

}  // namespace

void append_timeline_events(const SessionTrace& trace, int tid,
                            std::string& out, bool& first,
                            const TimelineOptions& options) {
  const int pid = options.pid;
  const std::string label =
      trace.label().empty() ? "session " + std::to_string(tid) : trace.label();
  append_thread_name(out, first, pid, tid, label);

  // Session span with the terminal verdict in args.
  {
    std::string args = "\"completed\": ";
    args += trace.completed() ? "true" : "false";
    args += ", \"aborted_irrelevant\": ";
    args += trace.aborted_irrelevant() ? "true" : "false";
    args += ", \"degraded\": ";
    args += trace.degraded() ? "true" : "false";
    args += ", \"gave_up\": ";
    args += trace.gave_up() ? "true" : "false";
    args += ", \"rounds\": " + std::to_string(trace.rounds().size());
    args += ", \"final_content\": ";
    append_number(args, trace.final_content());
    append_complete_event(out, first, label, "session", pid, tid,
                          trace.start_time(), trace.end_time(), options, args);
  }

  // One nested span per round (always available: RoundSummary is maintained
  // even when per-frame capture is off).
  for (const RoundSummary& r : trace.rounds()) {
    std::string args = "\"sent\": " + std::to_string(r.frames_sent);
    args += ", \"intact\": " + std::to_string(r.frames_intact);
    args += ", \"corrupted\": " + std::to_string(r.frames_corrupted);
    args += ", \"duplicate\": " + std::to_string(r.frames_duplicate);
    args += ", \"foreign\": " + std::to_string(r.frames_foreign);
    args += ", \"lost\": " + std::to_string(r.frames_lost);
    args += ", \"content\": ";
    append_number(args, r.content_end);
    append_complete_event(out, first, "round " + std::to_string(r.round),
                          "round", pid, tid, r.start_time, r.end_time, options,
                          args);
  }

  // Outage/backoff windows and per-frame instants need the captured event
  // log; without it the track simply has no third nesting level.
  double open_outage = -1.0;
  double open_origin_outage = -1.0;
  for (const TraceEvent& e : trace.events()) {
    switch (e.type) {
      case Event::kOutageBegin:
        open_outage = e.time;
        break;
      case Event::kOutageEnd: {
        const double begin = open_outage >= 0.0 ? open_outage : e.time - e.value;
        append_complete_event(out, first, "outage", "outage", pid, tid, begin,
                              e.time, options, {});
        open_outage = -1.0;
        break;
      }
      case Event::kOriginOutageBegin:
        open_origin_outage = e.time;
        break;
      case Event::kOriginOutageEnd: {
        const double begin =
            open_origin_outage >= 0.0 ? open_origin_outage : e.time - e.value;
        append_complete_event(out, first, "origin outage", "origin", pid, tid,
                              begin, e.time, options, {});
        open_origin_outage = -1.0;
        break;
      }
      case Event::kHandoff:
        // Recorded after the handoff delay was charged; e.value is the delay.
        append_complete_event(out, first, "handoff", "proxy", pid, tid,
                              e.time - e.value, e.time, options, {});
        break;
      case Event::kStaleFailover:
        append_instant_event(out, first, event_name(e.type), "proxy", pid, tid,
                             e.time, options, {});
        break;
      case Event::kReconcileDrop: {
        std::string args = "\"dropped\": ";
        append_number(args, e.value);
        append_instant_event(out, first, event_name(e.type), "proxy", pid, tid,
                             e.time, options, args);
        break;
      }
      case Event::kBackoff:
        // Recorded after the wait completed; e.value is the wait length.
        append_complete_event(out, first, "backoff", "backoff", pid, tid,
                              e.time - e.value, e.time, options, {});
        break;
      case Event::kResume:
      case Event::kRetransmitRequest:
      case Event::kDecodeComplete:
      case Event::kAbortIrrelevant:
      case Event::kDegraded:
      case Event::kGiveUp:
        append_instant_event(out, first, event_name(e.type), "control", pid,
                             tid, e.time, options, {});
        break;
      default:
        if (is_frame_event(e.type)) {
          std::string args;
          if (e.seq >= 0) args = "\"seq\": " + std::to_string(e.seq);
          append_instant_event(out, first, event_name(e.type), "frame", pid,
                               tid, e.time, options, args);
          if (options.content_counter && e.type == Event::kFrameIntact) {
            append_counter_event(out, first, "content/" + std::to_string(tid),
                                 pid, tid, e.time, e.value, options);
          }
        }
        break;
    }
  }
  if (open_outage >= 0.0) {
    // Session ended inside an outage (degraded/gave up while the link was
    // dead): close the span at the session end so it still renders.
    append_complete_event(out, first, "outage", "outage", pid, tid, open_outage,
                          trace.end_time(), options, {});
  }
  if (open_origin_outage >= 0.0) {
    // Same for a session that degraded while waiting out an origin fade with
    // no replica to fail over to.
    append_complete_event(out, first, "origin outage", "origin", pid, tid,
                          open_origin_outage, trace.end_time(), options, {});
  }
  if (options.content_counter) {
    append_counter_event(out, first, "content/" + std::to_string(tid), pid,
                         tid, trace.end_time(), trace.final_content(), options);
  }
}

std::string timeline_json(const SessionTrace& trace,
                          const TimelineOptions& options) {
  return timeline_json(std::vector<const SessionTrace*>{&trace}, options);
}

std::string timeline_json(const std::vector<const SessionTrace*>& traces,
                          const TimelineOptions& options) {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  int tid = 1;
  for (const SessionTrace* trace : traces) {
    if (trace != nullptr) append_timeline_events(*trace, tid, out, first, options);
    ++tid;
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string timeline_json(const Collector& collector,
                          const TimelineOptions& options) {
  std::vector<const SessionTrace*> traces;
  traces.reserve(collector.traces().size());
  for (const SessionTrace& t : collector.traces()) traces.push_back(&t);
  return timeline_json(traces, options);
}

// -------------------------------------------------------------- prometheus

namespace {

bool name_char_ok(char c, bool leading) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':') {
    return true;
  }
  return !leading && c >= '0' && c <= '9';
}

// Splits `registry_name` into its base name and the `{...}` label block (the
// block's inner text, or empty when absent).
std::pair<std::string_view, std::string_view> split_labels(
    std::string_view registry_name) {
  const std::size_t brace = registry_name.find('{');
  if (brace == std::string_view::npos || registry_name.back() != '}') {
    return {registry_name, {}};
  }
  return {registry_name.substr(0, brace),
          registry_name.substr(brace + 1, registry_name.size() - brace - 2)};
}

void append_label_value(std::string& out, std::string_view v) {
  out += '"';
  for (const char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  out += '"';
}

// `inner` is the text between the braces of the name{k=v,k2=v2} convention.
// Renders it as {k="v",k2="v2"}; `extra` (e.g. le="0.5") is appended last.
std::string render_labels(std::string_view inner, std::string_view extra) {
  if (inner.empty() && extra.empty()) return {};
  std::string out = "{";
  bool first = true;
  while (!inner.empty()) {
    const std::size_t comma = inner.find(',');
    const std::string_view pair = inner.substr(0, comma);
    inner = comma == std::string_view::npos ? std::string_view{}
                                            : inner.substr(comma + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;  // malformed pair
    if (!first) out += ',';
    first = false;
    out += prometheus_name(pair.substr(0, eq));
    out += '=';
    append_label_value(out, pair.substr(eq + 1));
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

std::string format_value(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

struct Family {
  const char* type = "counter";
  std::string body;  // the rendered series lines
};

void emit(std::string& out, const std::map<std::string, Family>& families) {
  for (const auto& [name, family] : families) {
    out += "# TYPE " + name + " " + family.type + "\n";
    out += family.body;
  }
}

}  // namespace

std::string prometheus_name(std::string_view registry_name) {
  const auto [base, labels] = split_labels(registry_name);
  (void)labels;
  std::string out;
  out.reserve(base.size());
  for (const char c : base) {
    out += name_char_ok(c, /*leading=*/out.empty()) ? c : '_';
  }
  if (out.empty()) return "_";
  return out;
}

std::string prometheus_text(const MetricsRegistry& registry,
                            std::string_view prefix) {
  const std::string pre = prefix.empty() ? "" : std::string(prefix) + "_";
  std::map<std::string, Family> counters;
  std::map<std::string, Family> gauges;
  std::map<std::string, Family> histograms;

  for (const auto& [name, c] : registry.counters()) {
    const auto [base, labels] = split_labels(name);
    (void)base;
    const std::string metric = pre + prometheus_name(name);
    Family& fam = counters[metric];
    fam.type = "counter";
    fam.body += metric + render_labels(labels, {}) + " " +
                std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, g] : registry.gauges()) {
    const auto [base, labels] = split_labels(name);
    (void)base;
    const std::string metric = pre + prometheus_name(name);
    Family& fam = gauges[metric];
    fam.type = "gauge";
    fam.body += metric + render_labels(labels, {}) + " " +
                format_value(g.value()) + "\n";
  }
  for (const auto& [name, h] : registry.histograms()) {
    const auto [base, labels] = split_labels(name);
    (void)base;
    const std::string metric = pre + prometheus_name(name);
    Family& fam = histograms[metric];
    fam.type = "histogram";
    long cumulative = 0;
    const std::vector<long> counts = h.bucket_counts();
    for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
      cumulative += counts[i];
      fam.body += metric + "_bucket" +
                  render_labels(labels,
                                "le=\"" + format_value(h.upper_bounds()[i]) +
                                    "\"") +
                  " " + std::to_string(cumulative) + "\n";
    }
    fam.body += metric + "_bucket" + render_labels(labels, "le=\"+Inf\"") +
                " " + std::to_string(h.count()) + "\n";
    fam.body += metric + "_sum" + render_labels(labels, {}) + " " +
                format_value(h.sum()) + "\n";
    fam.body += metric + "_count" + render_labels(labels, {}) + " " +
                std::to_string(h.count()) + "\n";
  }

  std::string out;
  emit(out, counters);
  emit(out, gauges);
  emit(out, histograms);
  return out;
}

}  // namespace mobiweb::obs
