#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace mobiweb::obs {

namespace {

void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_quoted(std::string& out, std::string_view s) {
  append_json_string(out, s);
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  MOBIWEB_CHECK_MSG(!bounds_.empty(), "Histogram: at least one bucket bound");
  MOBIWEB_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                    "Histogram: bounds must be increasing");
}

Histogram::Histogram(Histogram&& other) noexcept
    : bounds_(std::move(other.bounds_)), counts_(std::move(other.counts_)),
      count_(other.count_), sum_(other.sum_), min_(other.min_),
      max_(other.max_) {}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  std::scoped_lock lock(mu_);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

long Histogram::count() const {
  std::scoped_lock lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::scoped_lock lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::scoped_lock lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::scoped_lock lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::scoped_lock lock(mu_);
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

std::vector<long> Histogram::bucket_counts() const {
  std::scoped_lock lock(mu_);
  return counts_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  {
    std::shared_lock lock(mu_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  {
    std::shared_lock lock(mu_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  {
    std::shared_lock lock(mu_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::string(name), Histogram(std::move(upper_bounds)))
      .first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  std::shared_lock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  std::shared_lock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  std::shared_lock lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ", ";
    first = false;
    append_quoted(out, name);
    out += ": " + std::to_string(c.value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ", ";
    first = false;
    append_quoted(out, name);
    out += ": ";
    append_number(out, g.value());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    append_quoted(out, name);
    out += ": {\"buckets\": [";
    for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
      if (i) out += ", ";
      append_number(out, h.upper_bounds()[i]);
    }
    out += "], \"counts\": [";
    const std::vector<long> counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(counts[i]);
    }
    out += "], \"count\": " + std::to_string(h.count());
    out += ", \"sum\": ";
    append_number(out, h.sum());
    out += ", \"min\": ";
    append_number(out, h.min());
    out += ", \"max\": ";
    append_number(out, h.max());
    out += "}";
  }
  out += "}}";
  return out;
}

const std::vector<double>& session_time_buckets() {
  static const std::vector<double> buckets = {
      1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0};
  return buckets;
}

}  // namespace mobiweb::obs
