#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace mobiweb::obs {

namespace {

void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_quoted(std::string& out, std::string_view s) {
  append_json_string(out, s);
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0),
      bucket_lo_(bounds_.size() + 1, 0.0), bucket_hi_(bounds_.size() + 1, 0.0) {
  MOBIWEB_CHECK_MSG(!bounds_.empty(), "Histogram: at least one bucket bound");
  MOBIWEB_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                    "Histogram: bounds must be increasing");
}

Histogram::Histogram(Histogram&& other) noexcept
    : bounds_(std::move(other.bounds_)), counts_(std::move(other.counts_)),
      bucket_lo_(std::move(other.bucket_lo_)),
      bucket_hi_(std::move(other.bucket_hi_)), count_(other.count_),
      sum_(other.sum_), sum_sq_(other.sum_sq_), min_(other.min_),
      max_(other.max_) {}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto b = static_cast<std::size_t>(it - bounds_.begin());
  std::scoped_lock lock(mu_);
  if (counts_[b] == 0) {
    bucket_lo_[b] = bucket_hi_[b] = v;
  } else {
    bucket_lo_[b] = std::min(bucket_lo_[b], v);
    bucket_hi_[b] = std::max(bucket_hi_[b], v);
  }
  ++counts_[b];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  sum_sq_ += v * v;
}

long Histogram::count() const {
  std::scoped_lock lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::scoped_lock lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::scoped_lock lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::scoped_lock lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::scoped_lock lock(mu_);
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::variance() const {
  std::scoped_lock lock(mu_);
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double centered = sum_sq_ - sum_ * sum_ / n;
  return std::max(centered, 0.0) / (n - 1.0);
}

std::vector<long> Histogram::bucket_counts() const {
  std::scoped_lock lock(mu_);
  return counts_;
}

QuantileEstimate Histogram::quantile_with_bounds(double q) const {
  std::scoped_lock lock(mu_);
  QuantileEstimate est;
  if (count_ == 0) {
    est.value = est.lower = est.upper =
        std::numeric_limits<double>::quiet_NaN();
    return est;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Type-7 fractional rank over the exact bucketed counts. Resolving both
  // bracketing ranks independently is what fixes the bucket-boundary case:
  // when the rank straddles two buckets we interpolate between the lower
  // bucket's observed max and the upper bucket's observed min, never across
  // a nominal bucket edge no sample sits on.
  const double h = q * static_cast<double>(count_ - 1);
  const auto rank_lo = static_cast<long>(h);
  const long rank_hi = std::min(rank_lo + 1, count_ - 1);
  const double frac = h - static_cast<double>(rank_lo);

  // Value and bucket of the 0-based order statistic `rank`, assuming the
  // samples inside a bucket are evenly spaced over its observed [lo, hi]
  // range — exact when the bucket holds one distinct value (lo == hi) and
  // bounded by the bucket's observed range otherwise.
  const auto value_at = [this](long rank, std::size_t& bucket) {
    long before = 0;
    std::size_t b = 0;
    while (b < counts_.size() && before + counts_[b] <= rank) {
      before += counts_[b];
      ++b;
    }
    bucket = b;
    const long c = counts_[b];
    const double lo = bucket_lo_[b];
    const double hi = bucket_hi_[b];
    if (c <= 1 || lo == hi) return lo;
    const double j = static_cast<double>(rank - before);
    return lo + (hi - lo) * j / static_cast<double>(c - 1);
  };

  std::size_t bucket_of_lo = 0;
  std::size_t bucket_of_hi = 0;
  const double v_lo = value_at(rank_lo, bucket_of_lo);
  const double v_hi = value_at(rank_hi, bucket_of_hi);
  est.value = v_lo + frac * (v_hi - v_lo);
  // The exact order statistics at both ranks are samples of their buckets,
  // so the true quantile is pinned inside these observed ranges.
  est.lower = bucket_lo_[bucket_of_lo];
  est.upper = bucket_hi_[bucket_of_hi];
  return est;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  {
    std::shared_lock lock(mu_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  {
    std::shared_lock lock(mu_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  {
    std::shared_lock lock(mu_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::string(name), Histogram(std::move(upper_bounds)))
      .first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  std::shared_lock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  std::shared_lock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  std::shared_lock lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ", ";
    first = false;
    append_quoted(out, name);
    out += ": " + std::to_string(c.value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ", ";
    first = false;
    append_quoted(out, name);
    out += ": ";
    append_number(out, g.value());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    append_quoted(out, name);
    out += ": {\"buckets\": [";
    for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
      if (i) out += ", ";
      append_number(out, h.upper_bounds()[i]);
    }
    out += "], \"counts\": [";
    const std::vector<long> counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(counts[i]);
    }
    out += "], \"count\": " + std::to_string(h.count());
    out += ", \"sum\": ";
    append_number(out, h.sum());
    out += ", \"min\": ";
    append_number(out, h.min());
    out += ", \"max\": ";
    append_number(out, h.max());
    out += "}";
  }
  out += "}}";
  return out;
}

const std::vector<double>& session_time_buckets() {
  static const std::vector<double> buckets = {
      1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0};
  return buckets;
}

}  // namespace mobiweb::obs
