#include "obs/flight.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace mobiweb::obs {

namespace {

void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) {
  MOBIWEB_CHECK_MSG(capacity >= 1, "FlightRecorder: capacity >= 1");
  ring_.resize(capacity);
}

void FlightRecorder::record(const TraceEvent& event) {
  ring_[next_] = event;
  next_ = (next_ + 1) % ring_.size();
  ++recorded_;
}

std::size_t FlightRecorder::size() const {
  return std::min(static_cast<std::size_t>(recorded_), ring_.size());
}

long FlightRecorder::dropped() const {
  return std::max(0L, recorded_ - static_cast<long>(ring_.size()));
}

std::vector<TraceEvent> FlightRecorder::snapshot() const {
  const std::size_t n = size();
  std::vector<TraceEvent> out;
  out.reserve(n);
  // When the ring wrapped, the oldest retained event sits at next_.
  const std::size_t start =
      static_cast<std::size_t>(recorded_) > ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::clear() {
  next_ = 0;
  recorded_ = 0;
}

std::string FlightRecorder::to_json(std::string_view reason) const {
  std::string out = "{\"reason\": ";
  append_json_string(out, reason);
  out += ", \"recorded\": " + std::to_string(recorded_);
  out += ", \"dropped\": " + std::to_string(dropped());
  out += ", \"events\": [";
  bool first = true;
  for (const TraceEvent& e : snapshot()) {
    if (!first) out += ", ";
    first = false;
    out += std::string("{\"type\": \"") + event_name(e.type) + "\", \"t\": ";
    append_number(out, e.time);
    out += ", \"round\": " + std::to_string(e.round);
    out += ", \"seq\": " + std::to_string(e.seq);
    out += ", \"value\": ";
    append_number(out, e.value);
    out += "}";
  }
  out += "]}";
  return out;
}

void FlightRecorder::dump(std::string_view reason) {
  ++dump_count_;
  const std::string json = to_json(reason);
  if (sink_) {
    sink_(json);
  } else {
    std::fprintf(stderr, "[flight-recorder] %s\n", json.c_str());
  }
}

}  // namespace mobiweb::obs
