#include "obs/trace.hpp"

#include <cstdio>

#include "obs/flight.hpp"
#include "obs/json.hpp"

namespace mobiweb::obs {

// The -Wswitch-covered switch below pins event_name() to the enum; this pins
// the exported count, so both fail loudly when an enumerator is added.
static_assert(kEventCount == 24,
              "obs::Event changed: update kEventCount, event_name() and the "
              "timeline exporter's event classification");

const char* event_name(Event e) {
  switch (e) {
    case Event::kSessionStart: return "session_start";
    case Event::kRoundStart: return "round_start";
    case Event::kFrameSent: return "frame_sent";
    case Event::kFrameIntact: return "frame_intact";
    case Event::kFrameCorrupted: return "frame_corrupted";
    case Event::kFrameDuplicate: return "frame_duplicate";
    case Event::kFrameForeign: return "frame_foreign";
    case Event::kFrameLost: return "frame_lost";
    case Event::kRetransmitRequest: return "retransmit_request";
    case Event::kRoundEnd: return "round_end";
    case Event::kOutageBegin: return "outage_begin";
    case Event::kOutageEnd: return "outage_end";
    case Event::kBackoff: return "backoff";
    case Event::kResume: return "resume";
    case Event::kDecodeComplete: return "decode_complete";
    case Event::kAbortIrrelevant: return "abort_irrelevant";
    case Event::kDegraded: return "degraded";
    case Event::kGiveUp: return "give_up";
    case Event::kOriginOutageBegin: return "origin_outage_begin";
    case Event::kOriginOutageEnd: return "origin_outage_end";
    case Event::kStaleFailover: return "stale_failover";
    case Event::kHandoff: return "handoff";
    case Event::kReconcileDrop: return "reconcile_drop";
    case Event::kSessionEnd: return "session_end";
  }
  return "unknown";
}

namespace {

void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

void SessionTrace::clear() {
  events_.clear();
  rounds_.clear();
  start_time_ = end_time_ = final_content_ = 0.0;
  completed_ = aborted_ = gave_up_ = degraded_ = false;
  outage_count_ = backoff_count_ = 0;
  origin_outage_count_ = stale_failover_count_ = handoff_count_ = 0;
  reconcile_dropped_ = 0;
  backoff_total_s_ = 0.0;
}

void SessionTrace::push(Event type, double time, long seq, double value) {
  if (flight_ == nullptr && !capture_events_) return;
  const TraceEvent event{type, time,
                         rounds_.empty() ? 0 : rounds_.back().round, seq,
                         value};
  if (flight_ != nullptr) flight_->record(event);
  if (capture_events_) events_.push_back(event);
}

RoundSummary& SessionTrace::round_at(double time) {
  if (rounds_.empty()) {
    // Frame recorded before any explicit round_start: open round 1.
    rounds_.push_back(RoundSummary{.round = 1, .start_time = time,
                                   .end_time = time});
  }
  return rounds_.back();
}

void SessionTrace::session_start(double time) {
  start_time_ = end_time_ = time;
  push(Event::kSessionStart, time, -1, 0.0);
}

void SessionTrace::round_start(int round, double time) {
  rounds_.push_back(RoundSummary{.round = round, .start_time = time,
                                 .end_time = time});
  push(Event::kRoundStart, time, -1, 0.0);
}

void SessionTrace::frame_sent(long seq, double time) {
  RoundSummary& r = round_at(time);
  ++r.frames_sent;
  r.end_time = time;
  push(Event::kFrameSent, time, seq, 0.0);
}

void SessionTrace::frame_intact(long seq, double time, double content) {
  RoundSummary& r = round_at(time);
  ++r.frames_intact;
  r.end_time = time;
  r.content_end = content;
  push(Event::kFrameIntact, time, seq, content);
}

void SessionTrace::frame_corrupted(double time) {
  RoundSummary& r = round_at(time);
  ++r.frames_corrupted;
  r.end_time = time;
  push(Event::kFrameCorrupted, time, -1, 0.0);
}

void SessionTrace::frame_duplicate(long seq, double time) {
  RoundSummary& r = round_at(time);
  ++r.frames_duplicate;
  r.end_time = time;
  push(Event::kFrameDuplicate, time, seq, 0.0);
}

void SessionTrace::frame_foreign(double time) {
  RoundSummary& r = round_at(time);
  ++r.frames_foreign;
  r.end_time = time;
  push(Event::kFrameForeign, time, -1, 0.0);
}

void SessionTrace::frame_lost(double time) {
  RoundSummary& r = round_at(time);
  ++r.frames_lost;
  r.end_time = time;
  push(Event::kFrameLost, time, -1, 0.0);
}

void SessionTrace::retransmit_request(double time, long pending) {
  push(Event::kRetransmitRequest, time, -1, static_cast<double>(pending));
}

void SessionTrace::outage_begin(double time) {
  ++outage_count_;
  push(Event::kOutageBegin, time, -1, 0.0);
}

void SessionTrace::outage_end(double time, double duration_s) {
  push(Event::kOutageEnd, time, -1, duration_s);
}

void SessionTrace::backoff(double time, double wait_s) {
  ++backoff_count_;
  backoff_total_s_ += wait_s;
  push(Event::kBackoff, time, -1, wait_s);
}

void SessionTrace::resume(double time) { push(Event::kResume, time, -1, 0.0); }

void SessionTrace::origin_outage_begin(double time) {
  ++origin_outage_count_;
  push(Event::kOriginOutageBegin, time, -1, 0.0);
}

void SessionTrace::origin_outage_end(double time, double duration_s) {
  push(Event::kOriginOutageEnd, time, -1, duration_s);
}

void SessionTrace::stale_failover(double time) {
  ++stale_failover_count_;
  push(Event::kStaleFailover, time, -1, 0.0);
}

void SessionTrace::handoff(double time, double delay_s) {
  ++handoff_count_;
  push(Event::kHandoff, time, -1, delay_s);
}

void SessionTrace::reconcile_drop(double time, long dropped) {
  reconcile_dropped_ += dropped;
  push(Event::kReconcileDrop, time, -1, static_cast<double>(dropped));
}

void SessionTrace::round_end(double time, double content) {
  if (!rounds_.empty()) {
    rounds_.back().end_time = time;
    if (content >= 0.0) rounds_.back().content_end = content;
  }
  push(Event::kRoundEnd, time, -1, content >= 0.0 ? content : 0.0);
}

void SessionTrace::decode_complete(double time) {
  completed_ = true;
  push(Event::kDecodeComplete, time, -1, 0.0);
}

void SessionTrace::abort_irrelevant(double time, double content) {
  aborted_ = true;
  push(Event::kAbortIrrelevant, time, -1, content);
}

void SessionTrace::degraded(double time, double content) {
  degraded_ = true;
  push(Event::kDegraded, time, -1, content);
}

void SessionTrace::give_up(double time) {
  gave_up_ = true;
  push(Event::kGiveUp, time, -1, 0.0);
}

void SessionTrace::session_end(double time, double content) {
  end_time_ = time;
  final_content_ = content;
  if (!rounds_.empty()) {
    // Close a round that terminated mid-flight (complete/abort).
    rounds_.back().end_time = time;
    rounds_.back().content_end = content;
  }
  push(Event::kSessionEnd, time, -1, content);
}

long SessionTrace::frames_sent() const {
  long total = 0;
  for (const auto& r : rounds_) total += r.frames_sent;
  return total;
}

std::string SessionTrace::to_json() const {
  std::string out = "{\"label\": ";
  append_json_string(out, label_);
  out += ", \"completed\": ";
  out += completed_ ? "true" : "false";
  out += ", \"aborted_irrelevant\": ";
  out += aborted_ ? "true" : "false";
  out += ", \"gave_up\": ";
  out += gave_up_ ? "true" : "false";
  out += ", \"degraded\": ";
  out += degraded_ ? "true" : "false";
  if (outage_count_ > 0) {
    out += ", \"outages\": " + std::to_string(outage_count_);
  }
  if (origin_outage_count_ > 0) {
    out += ", \"origin_outages\": " + std::to_string(origin_outage_count_);
  }
  if (stale_failover_count_ > 0) {
    out += ", \"stale_failovers\": " + std::to_string(stale_failover_count_);
  }
  if (handoff_count_ > 0) {
    out += ", \"handoffs\": " + std::to_string(handoff_count_);
  }
  if (reconcile_dropped_ > 0) {
    out += ", \"reconcile_dropped\": " + std::to_string(reconcile_dropped_);
  }
  if (backoff_count_ > 0) {
    out += ", \"backoffs\": " + std::to_string(backoff_count_);
    out += ", \"backoff_total_s\": ";
    append_number(out, backoff_total_s_);
  }
  out += ", \"response_time\": ";
  append_number(out, response_time());
  out += ", \"final_content\": ";
  append_number(out, final_content_);
  out += ", \"rounds\": [";
  for (std::size_t i = 0; i < rounds_.size(); ++i) {
    const RoundSummary& r = rounds_[i];
    if (i) out += ", ";
    out += "{\"round\": " + std::to_string(r.round);
    out += ", \"start\": ";
    append_number(out, r.start_time);
    out += ", \"end\": ";
    append_number(out, r.end_time);
    out += ", \"sent\": " + std::to_string(r.frames_sent);
    out += ", \"intact\": " + std::to_string(r.frames_intact);
    out += ", \"corrupted\": " + std::to_string(r.frames_corrupted);
    out += ", \"duplicate\": " + std::to_string(r.frames_duplicate);
    out += ", \"foreign\": " + std::to_string(r.frames_foreign);
    out += ", \"lost\": " + std::to_string(r.frames_lost);
    out += ", \"content\": ";
    append_number(out, r.content_end);
    out += "}";
  }
  out += "]";
  if (capture_events_) {
    out += ", \"events\": [";
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const TraceEvent& e = events_[i];
      if (i) out += ", ";
      out += std::string("{\"type\": \"") + event_name(e.type) + "\", \"t\": ";
      append_number(out, e.time);
      out += ", \"round\": " + std::to_string(e.round);
      out += ", \"seq\": " + std::to_string(e.seq);
      out += ", \"value\": ";
      append_number(out, e.value);
      out += "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

namespace {

std::vector<double> latency_buckets() {
  return {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 60.0};
}

std::vector<double> frame_count_buckets() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 255};
}

std::vector<double> round_buckets() {
  return {1, 2, 3, 4, 6, 8, 12, 16, 25};
}

std::vector<double> content_buckets() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

}  // namespace

void aggregate_trace(const SessionTrace& trace, MetricsRegistry& registry) {
  registry.counter("session.count").inc();
  if (trace.completed()) registry.counter("session.completed").inc();
  if (trace.aborted_irrelevant()) registry.counter("session.aborted_irrelevant").inc();
  if (trace.gave_up()) registry.counter("session.gave_up").inc();
  if (trace.degraded()) registry.counter("session.degraded").inc();
  if (trace.outage_count() > 0) {
    registry.counter("session.outages").inc(trace.outage_count());
  }
  if (trace.backoff_count() > 0) {
    registry.counter("session.backoffs").inc(trace.backoff_count());
    registry.histogram("session.backoff_total_s", latency_buckets())
        .observe(trace.backoff_total_s());
  }

  registry.histogram("session.response_time_s", latency_buckets())
      .observe(trace.response_time());
  registry.histogram("session.rounds", round_buckets())
      .observe(static_cast<double>(trace.rounds().size()));
  registry.histogram("session.final_content", content_buckets())
      .observe(trace.final_content());

  long intact = 0;
  long corrupted = 0;
  long duplicate = 0;
  long foreign = 0;
  long lost = 0;
  for (const RoundSummary& r : trace.rounds()) {
    intact += r.frames_intact;
    corrupted += r.frames_corrupted;
    duplicate += r.frames_duplicate;
    foreign += r.frames_foreign;
    lost += r.frames_lost;
    registry.histogram("round.latency_s", latency_buckets()).observe(r.latency());
    registry.histogram("round.frames_intact", frame_count_buckets())
        .observe(static_cast<double>(r.frames_intact));
    registry.histogram("round.frames_corrupted", frame_count_buckets())
        .observe(static_cast<double>(r.frames_corrupted));
    registry.histogram("round.content_progress", content_buckets())
        .observe(r.content_end);
  }
  registry.counter("frames.sent").inc(trace.frames_sent());
  registry.counter("frames.intact").inc(intact);
  registry.counter("frames.corrupted").inc(corrupted);
  registry.counter("frames.duplicate").inc(duplicate);
  registry.counter("frames.foreign").inc(foreign);
  registry.counter("frames.lost").inc(lost);
}

SessionTrace& Collector::begin_trace(std::string label) {
  traces_.emplace_back(std::move(label));
  return traces_.back();
}

std::string Collector::to_json() const {
  std::string out = "{\"metrics\": " + metrics_.to_json() + ", \"traces\": [";
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    if (i) out += ", ";
    out += traces_[i].to_json();
  }
  out += "]}";
  return out;
}

}  // namespace mobiweb::obs
