#include "sim/transfer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mobiweb::sim {

TransferResult simulate_transfer(const std::vector<double>& clear_content,
                                 const TransferConfig& config,
                                 const std::function<bool()>& next_corrupted) {
  MOBIWEB_CHECK_MSG(config.m >= 1, "simulate_transfer: m >= 1");
  MOBIWEB_CHECK_MSG(config.n >= config.m, "simulate_transfer: n >= m");
  MOBIWEB_CHECK_MSG(static_cast<int>(clear_content.size()) == config.m,
                    "simulate_transfer: clear_content must have m entries");
  MOBIWEB_CHECK_MSG(config.max_rounds >= 1, "simulate_transfer: max_rounds >= 1");

  double total_content = 0.0;
  for (double c : clear_content) total_content += c;

  const bool relevance_check = config.relevance_threshold >= 0.0;

  TransferResult result;
  std::vector<bool> seen(static_cast<std::size_t>(config.n), false);
  int intact = 0;
  double content = 0.0;
  obs::SessionTrace* trace = config.trace;
  double clock = 0.0;
  if (trace != nullptr) trace->session_start(clock);

  const auto finish = [&](double received) {
    result.content = received;
    result.time = static_cast<double>(result.packets) * config.time_per_packet +
                  static_cast<double>(result.rounds - 1) * config.request_delay;
    if (trace != nullptr) trace->session_end(clock, received);
  };

  for (result.rounds = 1; result.rounds <= config.max_rounds; ++result.rounds) {
    if (trace != nullptr) trace->round_start(result.rounds, clock);
    for (int i = 0; i < config.n; ++i) {
      ++result.packets;
      clock += config.time_per_packet;
      if (trace != nullptr) trace->frame_sent(i, clock);
      const bool corrupted = next_corrupted();
      if (corrupted) {
        if (trace != nullptr) trace->frame_corrupted(clock);
      } else if (!seen[static_cast<std::size_t>(i)]) {
        seen[static_cast<std::size_t>(i)] = true;
        ++intact;
        if (i < config.m) content += clear_content[static_cast<std::size_t>(i)];
        if (trace != nullptr) {
          trace->frame_intact(i, clock,
                              (intact >= config.m) ? total_content : content);
        }
      } else if (trace != nullptr) {
        trace->frame_duplicate(i, clock);
      }
      // As in TransferSession: condition 1 (reconstruction) takes precedence
      // over condition 3 when the same packet triggers both.
      if (intact >= config.m) {
        result.completed = true;
        if (trace != nullptr) trace->decode_complete(clock);
        finish(total_content);
        return result;
      }
      if (relevance_check && content >= config.relevance_threshold) {
        // Condition 3 (§4.2): the user judges the document irrelevant.
        result.aborted_irrelevant = true;
        if (trace != nullptr) trace->abort_irrelevant(clock, content);
        finish(content);
        return result;
      }
    }
    // Condition 2 without reconstruction: stalled round; retransmit.
    if (trace != nullptr) {
      trace->round_end(clock);
      trace->retransmit_request(clock);
    }
    clock += config.request_delay;
    if (!config.caching) {
      std::fill(seen.begin(), seen.end(), false);
      intact = 0;
      content = 0.0;
    }
  }

  result.rounds = config.max_rounds;
  result.gave_up = true;
  result.completed = false;
  clock -= config.request_delay;  // no request follows the final round
  if (trace != nullptr) trace->give_up(clock);
  finish(content);
  return result;
}

TransferResult simulate_transfer(const std::vector<double>& clear_content,
                                 const TransferConfig& config, Rng& rng) {
  MOBIWEB_CHECK_MSG(config.alpha >= 0.0 && config.alpha < 1.0,
                    "simulate_transfer: alpha in [0,1)");
  return simulate_transfer(clear_content, config,
                           [&rng, &config] { return rng.next_bernoulli(config.alpha); });
}

TransferResult simulate_arq_transfer(const std::vector<double>& clear_content,
                                     const TransferConfig& config,
                                     const std::function<bool()>& next_corrupted) {
  MOBIWEB_CHECK_MSG(config.m >= 1, "simulate_arq_transfer: m >= 1");
  MOBIWEB_CHECK_MSG(static_cast<int>(clear_content.size()) == config.m,
                    "simulate_arq_transfer: clear_content must have m entries");
  MOBIWEB_CHECK_MSG(config.max_rounds >= 1, "simulate_arq_transfer: max_rounds >= 1");

  double total_content = 0.0;
  for (double c : clear_content) total_content += c;
  const bool relevance_check = config.relevance_threshold >= 0.0;

  TransferResult result;
  std::vector<bool> seen(static_cast<std::size_t>(config.m), false);
  int received = 0;
  double content = 0.0;
  obs::SessionTrace* trace = config.trace;
  double clock = 0.0;
  if (trace != nullptr) trace->session_start(clock);

  const auto finish = [&] {
    result.content = content;
    result.time = static_cast<double>(result.packets) * config.time_per_packet +
                  static_cast<double>(result.rounds - 1) * config.request_delay;
    if (trace != nullptr) trace->session_end(clock, content);
  };

  std::vector<int> pending(static_cast<std::size_t>(config.m));
  for (int i = 0; i < config.m; ++i) pending[static_cast<std::size_t>(i)] = i;

  for (result.rounds = 1; result.rounds <= config.max_rounds; ++result.rounds) {
    if (trace != nullptr) trace->round_start(result.rounds, clock);
    for (const int i : pending) {
      ++result.packets;
      clock += config.time_per_packet;
      if (trace != nullptr) trace->frame_sent(i, clock);
      if (next_corrupted()) {
        if (trace != nullptr) trace->frame_corrupted(clock);
      } else if (!seen[static_cast<std::size_t>(i)]) {
        seen[static_cast<std::size_t>(i)] = true;
        ++received;
        content += clear_content[static_cast<std::size_t>(i)];
        if (trace != nullptr) trace->frame_intact(i, clock, content);
      } else if (trace != nullptr) {
        trace->frame_duplicate(i, clock);
      }
      // Completion wins over the relevance abort (see ArqSession).
      if (received >= config.m) {
        result.completed = true;
        if (trace != nullptr) trace->decode_complete(clock);
        finish();
        return result;
      }
      if (relevance_check && content >= config.relevance_threshold) {
        result.aborted_irrelevant = true;
        if (trace != nullptr) trace->abort_irrelevant(clock, content);
        finish();
        return result;
      }
    }
    std::vector<int> missing;
    for (int i = 0; i < config.m; ++i) {
      if (!seen[static_cast<std::size_t>(i)]) missing.push_back(i);
    }
    if (trace != nullptr) {
      trace->round_end(clock);
      trace->retransmit_request(clock, static_cast<long>(missing.size()));
    }
    clock += config.request_delay;
    pending = std::move(missing);
  }

  result.rounds = config.max_rounds;
  result.gave_up = true;
  clock -= config.request_delay;
  if (trace != nullptr) trace->give_up(clock);
  finish();
  return result;
}

TransferResult simulate_arq_transfer(const std::vector<double>& clear_content,
                                     const TransferConfig& config, Rng& rng) {
  MOBIWEB_CHECK_MSG(config.alpha >= 0.0 && config.alpha < 1.0,
                    "simulate_arq_transfer: alpha in [0,1)");
  return simulate_arq_transfer(
      clear_content, config,
      [&rng, &config] { return rng.next_bernoulli(config.alpha); });
}

}  // namespace mobiweb::sim
