#include "sim/transfer.hpp"

#include <algorithm>

#include "obs/profile.hpp"
#include "util/check.hpp"

namespace mobiweb::sim {

TransferResult simulate_transfer(const std::vector<double>& clear_content,
                                 const TransferConfig& config,
                                 const std::function<bool()>& next_corrupted) {
  MOBIWEB_PROFILE_SCOPE("sim.transfer");
  MOBIWEB_CHECK_MSG(config.m >= 1, "simulate_transfer: m >= 1");
  MOBIWEB_CHECK_MSG(config.n >= config.m, "simulate_transfer: n >= m");
  MOBIWEB_CHECK_MSG(static_cast<int>(clear_content.size()) == config.m,
                    "simulate_transfer: clear_content must have m entries");
  MOBIWEB_CHECK_MSG(config.max_rounds >= 1, "simulate_transfer: max_rounds >= 1");

  double total_content = 0.0;
  for (double c : clear_content) total_content += c;

  const bool relevance_check = config.relevance_threshold >= 0.0;

  TransferResult result;
  std::vector<bool> seen(static_cast<std::size_t>(config.n), false);
  int intact = 0;
  double content = 0.0;
  double stall_delay = 0.0;  // feedback time actually charged (incl. retries)
  obs::SessionTrace* trace = config.trace;
  double clock = 0.0;
  if (trace != nullptr) trace->session_start(clock);

  const auto finish = [&](double received) {
    result.content = received;
    result.time = static_cast<double>(result.packets) * config.time_per_packet +
                  stall_delay;
    if (trace != nullptr) trace->session_end(clock, received);
  };

  for (result.rounds = 1; result.rounds <= config.max_rounds; ++result.rounds) {
    if (trace != nullptr) trace->round_start(result.rounds, clock);
    for (int i = 0; i < config.n; ++i) {
      ++result.packets;
      clock += config.time_per_packet;
      if (trace != nullptr) trace->frame_sent(i, clock);
      if (config.link_up && !config.link_up(clock)) {
        // Lost to a dead link: airtime burned, nothing delivered, and the
        // corruption model never sees the packet.
        ++result.frames_lost;
        if (trace != nullptr) trace->frame_lost(clock);
        continue;
      }
      const bool corrupted = next_corrupted();
      if (corrupted) {
        if (trace != nullptr) trace->frame_corrupted(clock);
      } else if (!seen[static_cast<std::size_t>(i)]) {
        seen[static_cast<std::size_t>(i)] = true;
        ++intact;
        if (i < config.m) content += clear_content[static_cast<std::size_t>(i)];
        if (trace != nullptr) {
          trace->frame_intact(i, clock,
                              (intact >= config.m) ? total_content : content);
        }
      } else if (trace != nullptr) {
        trace->frame_duplicate(i, clock);
      }
      // As in TransferSession: condition 1 (reconstruction) takes precedence
      // over condition 3 when the same packet triggers both.
      if (intact >= config.m) {
        result.completed = true;
        if (trace != nullptr) trace->decode_complete(clock);
        finish(total_content);
        return result;
      }
      if (relevance_check && content >= config.relevance_threshold) {
        // Condition 3 (§4.2): the user judges the document irrelevant.
        result.aborted_irrelevant = true;
        if (trace != nullptr) trace->abort_irrelevant(clock, content);
        finish(content);
        return result;
      }
    }
    // Condition 2 without reconstruction: stalled round; retransmit.
    if (trace != nullptr) trace->round_end(clock);
    if (result.rounds == config.max_rounds) break;  // giving up: no request
    // The retransmission request crosses the (possibly lossy) back channel;
    // each dropped request costs one request_delay — the client's timeout —
    // before the retry. A reliable channel (no hook) charges exactly one.
    int tries = 1;
    if (config.feedback_lost) {
      while (tries < kMaxFeedbackTries && config.feedback_lost()) ++tries;
    }
    if (trace != nullptr) trace->retransmit_request(clock);
    const double stall = static_cast<double>(tries) * config.request_delay;
    clock += stall;
    stall_delay += stall;
    if (!config.caching) {
      std::fill(seen.begin(), seen.end(), false);
      intact = 0;
      content = 0.0;
    }
  }

  // Gave up while stalled: report the receiver's state as it stood when the
  // final round closed (no trailing cache flush, no trailing request).
  result.rounds = config.max_rounds;
  result.gave_up = true;
  result.completed = false;
  if (trace != nullptr) trace->give_up(clock);
  finish(content);
  return result;
}

TransferResult simulate_transfer(const std::vector<double>& clear_content,
                                 const TransferConfig& config, Rng& rng) {
  MOBIWEB_CHECK_MSG(config.alpha >= 0.0 && config.alpha < 1.0,
                    "simulate_transfer: alpha in [0,1)");
  return simulate_transfer(clear_content, config,
                           [&rng, &config] { return rng.next_bernoulli(config.alpha); });
}

TransferResult simulate_resilient_transfer(
    const std::vector<double>& clear_content,
    const ResilientTransferConfig& config,
    const std::function<bool()>& next_corrupted) {
  MOBIWEB_PROFILE_SCOPE("sim.resilient_transfer");
  const TransferConfig& base = config.base;
  const RetryConfig& rp = config.retry;
  MOBIWEB_CHECK_MSG(base.m >= 1, "simulate_resilient_transfer: m >= 1");
  MOBIWEB_CHECK_MSG(base.n >= base.m, "simulate_resilient_transfer: n >= m");
  MOBIWEB_CHECK_MSG(static_cast<int>(clear_content.size()) == base.m,
                    "simulate_resilient_transfer: clear_content must have m entries");
  MOBIWEB_CHECK_MSG(base.max_rounds >= 1,
                    "simulate_resilient_transfer: max_rounds >= 1");
  MOBIWEB_CHECK_MSG(rp.retry_budget >= 1,
                    "simulate_resilient_transfer: retry_budget >= 1");
  MOBIWEB_CHECK_MSG(rp.initial_timeout_s >= 0.0,
                    "simulate_resilient_transfer: initial_timeout_s >= 0");
  MOBIWEB_CHECK_MSG(rp.backoff_multiplier >= 1.0,
                    "simulate_resilient_transfer: backoff_multiplier >= 1");
  MOBIWEB_CHECK_MSG(rp.max_backoff_s >= rp.initial_timeout_s,
                    "simulate_resilient_transfer: max_backoff_s >= initial_timeout_s");
  MOBIWEB_CHECK_MSG(rp.jitter >= 0.0, "simulate_resilient_transfer: jitter >= 0");

  double total_content = 0.0;
  for (double c : clear_content) total_content += c;
  const bool relevance_check = base.relevance_threshold >= 0.0;

  TransferResult result;
  std::vector<bool> seen(static_cast<std::size_t>(base.n), false);
  int intact = 0;
  double content = 0.0;
  double stall_delay = 0.0;  // feedback delay + every backoff wait
  obs::SessionTrace* trace = base.trace;
  double clock = 0.0;
  Rng jitter_rng(config.jitter_seed);
  double backoff = rp.initial_timeout_s;
  if (trace != nullptr) trace->session_start(clock);

  const auto finish = [&](double received) {
    result.content = received;
    result.time = static_cast<double>(result.packets) * base.time_per_packet +
                  stall_delay;
    if (trace != nullptr) trace->session_end(clock, received);
  };
  const auto deadline_exceeded = [&] {
    return rp.deadline_s >= 0.0 && clock >= rp.deadline_s;
  };
  // One client wait: current backoff stretched by the jitter draw. The draw
  // happens unconditionally (even at jitter = 0) so the jitter stream stays
  // aligned with ResilientSession's, wait-for-wait.
  const auto wait_one_backoff = [&] {
    const double wait = backoff * (1.0 + rp.jitter * jitter_rng.next_double());
    clock += wait;
    stall_delay += wait;
    result.backoff_s += wait;
    if (trace != nullptr) trace->backoff(clock, wait);
    backoff = std::min(backoff * rp.backoff_multiplier, rp.max_backoff_s);
  };
  const auto finish_degraded = [&] {
    result.degraded = true;
    if (trace != nullptr) trace->degraded(clock, content);
    finish(content);
  };

  for (result.rounds = 1;; ++result.rounds) {
    if (trace != nullptr) trace->round_start(result.rounds, clock);
    for (int i = 0; i < base.n; ++i) {
      ++result.packets;
      clock += base.time_per_packet;
      if (trace != nullptr) trace->frame_sent(i, clock);
      if (base.link_up && !base.link_up(clock)) {
        // In a fade: airtime burned, nothing delivered.
        ++result.frames_lost;
        if (trace != nullptr) trace->frame_lost(clock);
        continue;
      }
      const bool corrupted = next_corrupted();
      if (corrupted) {
        if (trace != nullptr) trace->frame_corrupted(clock);
      } else if (!seen[static_cast<std::size_t>(i)]) {
        seen[static_cast<std::size_t>(i)] = true;
        ++intact;
        if (i < base.m) content += clear_content[static_cast<std::size_t>(i)];
        if (trace != nullptr) {
          trace->frame_intact(i, clock,
                              (intact >= base.m) ? total_content : content);
        }
      } else if (trace != nullptr) {
        trace->frame_duplicate(i, clock);
      }
      // Reconstruction (condition 1) outranks the relevance abort
      // (condition 3), as everywhere else in the stack.
      if (intact >= base.m) {
        result.completed = true;
        if (trace != nullptr) trace->decode_complete(clock);
        finish(total_content);
        return result;
      }
      if (relevance_check && content >= base.relevance_threshold) {
        result.aborted_irrelevant = true;
        if (trace != nullptr) trace->abort_irrelevant(clock, content);
        finish(content);
        return result;
      }
    }
    if (trace != nullptr) trace->round_end(clock);
    // Give up BEFORE the suspend check (as ResilientSession breaks before
    // touching the back channel): `>=` so a counter that ever steps past the
    // cap still terminates.
    if (result.rounds >= base.max_rounds) break;

    // Suspend-on-outage: when the round ended inside a fade, re-requesting is
    // futile — back off (consuming budget, so a link that never returns still
    // terminates) until the link is observed up, then resume from whatever
    // the cache kept.
    bool suspended = false;
    double outage_started = clock;
    while (base.link_up && !base.link_up(clock)) {
      if (!suspended) {
        outage_started = clock;
        if (trace != nullptr) trace->outage_begin(clock);
      }
      if (result.request_attempts >= rp.retry_budget || deadline_exceeded()) {
        finish_degraded();
        return result;
      }
      ++result.request_attempts;
      suspended = true;
      wait_one_backoff();
    }
    if (suspended) {
      ++result.suspensions;
      backoff = rp.initial_timeout_s;  // link is back: start fresh
      if (trace != nullptr) {
        trace->outage_end(clock, clock - outage_started);
        trace->resume(clock);
      }
    }

    // Re-request until one message survives the back channel. Every attempt —
    // including the one that succeeds — consumes retry budget, exactly as in
    // ResilientSession.
    for (;;) {
      if (result.request_attempts >= rp.retry_budget || deadline_exceeded()) {
        finish_degraded();
        return result;
      }
      ++result.request_attempts;
      if (!base.feedback_lost || !base.feedback_lost()) break;
      wait_one_backoff();  // timeout: the request is presumed lost
    }
    if (trace != nullptr) trace->retransmit_request(clock);
    backoff = rp.initial_timeout_s;
    clock += base.request_delay;
    stall_delay += base.request_delay;
    if (!base.caching) {
      std::fill(seen.begin(), seen.end(), false);
      intact = 0;
      content = 0.0;
    }
  }

  result.gave_up = true;
  if (trace != nullptr) trace->give_up(clock);
  finish(content);
  return result;
}

TransferResult simulate_resilient_transfer(
    const std::vector<double>& clear_content,
    const ResilientTransferConfig& config, Rng& rng) {
  MOBIWEB_CHECK_MSG(config.base.alpha >= 0.0 && config.base.alpha < 1.0,
                    "simulate_resilient_transfer: alpha in [0,1)");
  return simulate_resilient_transfer(
      clear_content, config,
      [&rng, &config] { return rng.next_bernoulli(config.base.alpha); });
}

TransferResult simulate_arq_transfer(const std::vector<double>& clear_content,
                                     const TransferConfig& config,
                                     const std::function<bool()>& next_corrupted) {
  MOBIWEB_CHECK_MSG(config.m >= 1, "simulate_arq_transfer: m >= 1");
  MOBIWEB_CHECK_MSG(static_cast<int>(clear_content.size()) == config.m,
                    "simulate_arq_transfer: clear_content must have m entries");
  MOBIWEB_CHECK_MSG(config.max_rounds >= 1, "simulate_arq_transfer: max_rounds >= 1");

  double total_content = 0.0;
  for (double c : clear_content) total_content += c;
  const bool relevance_check = config.relevance_threshold >= 0.0;

  TransferResult result;
  std::vector<bool> seen(static_cast<std::size_t>(config.m), false);
  int received = 0;
  double content = 0.0;
  double stall_delay = 0.0;
  obs::SessionTrace* trace = config.trace;
  double clock = 0.0;
  if (trace != nullptr) trace->session_start(clock);

  const auto finish = [&] {
    result.content = content;
    result.time = static_cast<double>(result.packets) * config.time_per_packet +
                  stall_delay;
    if (trace != nullptr) trace->session_end(clock, content);
  };

  std::vector<int> pending(static_cast<std::size_t>(config.m));
  for (int i = 0; i < config.m; ++i) pending[static_cast<std::size_t>(i)] = i;

  for (result.rounds = 1; result.rounds <= config.max_rounds; ++result.rounds) {
    if (trace != nullptr) trace->round_start(result.rounds, clock);
    for (const int i : pending) {
      ++result.packets;
      clock += config.time_per_packet;
      if (trace != nullptr) trace->frame_sent(i, clock);
      if (config.link_up && !config.link_up(clock)) {
        ++result.frames_lost;
        if (trace != nullptr) trace->frame_lost(clock);
        continue;
      }
      if (next_corrupted()) {
        if (trace != nullptr) trace->frame_corrupted(clock);
      } else if (!seen[static_cast<std::size_t>(i)]) {
        seen[static_cast<std::size_t>(i)] = true;
        ++received;
        content += clear_content[static_cast<std::size_t>(i)];
        if (trace != nullptr) trace->frame_intact(i, clock, content);
      } else if (trace != nullptr) {
        trace->frame_duplicate(i, clock);
      }
      // Completion wins over the relevance abort (see ArqSession).
      if (received >= config.m) {
        result.completed = true;
        if (trace != nullptr) trace->decode_complete(clock);
        finish();
        return result;
      }
      if (relevance_check && content >= config.relevance_threshold) {
        result.aborted_irrelevant = true;
        if (trace != nullptr) trace->abort_irrelevant(clock, content);
        finish();
        return result;
      }
    }
    if (trace != nullptr) trace->round_end(clock);
    if (result.rounds == config.max_rounds) break;  // giving up: no NACK
    std::vector<int> missing;
    for (int i = 0; i < config.m; ++i) {
      if (!seen[static_cast<std::size_t>(i)]) missing.push_back(i);
    }
    int tries = 1;
    if (config.feedback_lost) {
      while (tries < kMaxFeedbackTries && config.feedback_lost()) ++tries;
    }
    if (trace != nullptr) {
      trace->retransmit_request(clock, static_cast<long>(missing.size()));
    }
    const double stall = static_cast<double>(tries) * config.request_delay;
    clock += stall;
    stall_delay += stall;
    pending = std::move(missing);
  }

  result.rounds = config.max_rounds;
  result.gave_up = true;
  if (trace != nullptr) trace->give_up(clock);
  finish();
  return result;
}

TransferResult simulate_arq_transfer(const std::vector<double>& clear_content,
                                     const TransferConfig& config, Rng& rng) {
  MOBIWEB_CHECK_MSG(config.alpha >= 0.0 && config.alpha < 1.0,
                    "simulate_arq_transfer: alpha in [0,1)");
  return simulate_arq_transfer(
      clear_content, config,
      [&rng, &config] { return rng.next_bernoulli(config.alpha); });
}

}  // namespace mobiweb::sim
