#include "sim/transfer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mobiweb::sim {

TransferResult simulate_transfer(const std::vector<double>& clear_content,
                                 const TransferConfig& config,
                                 const std::function<bool()>& next_corrupted) {
  MOBIWEB_CHECK_MSG(config.m >= 1, "simulate_transfer: m >= 1");
  MOBIWEB_CHECK_MSG(config.n >= config.m, "simulate_transfer: n >= m");
  MOBIWEB_CHECK_MSG(static_cast<int>(clear_content.size()) == config.m,
                    "simulate_transfer: clear_content must have m entries");
  MOBIWEB_CHECK_MSG(config.max_rounds >= 1, "simulate_transfer: max_rounds >= 1");

  double total_content = 0.0;
  for (double c : clear_content) total_content += c;

  const bool relevance_check = config.relevance_threshold >= 0.0;

  TransferResult result;
  std::vector<bool> seen(static_cast<std::size_t>(config.n), false);
  int intact = 0;
  double content = 0.0;

  const auto finish = [&](double received) {
    result.content = received;
    result.time = static_cast<double>(result.packets) * config.time_per_packet +
                  static_cast<double>(result.rounds - 1) * config.request_delay;
  };

  for (result.rounds = 1; result.rounds <= config.max_rounds; ++result.rounds) {
    for (int i = 0; i < config.n; ++i) {
      ++result.packets;
      const bool corrupted = next_corrupted();
      if (!corrupted && !seen[static_cast<std::size_t>(i)]) {
        seen[static_cast<std::size_t>(i)] = true;
        ++intact;
        if (i < config.m) content += clear_content[static_cast<std::size_t>(i)];
      }
      const double received = (intact >= config.m) ? total_content : content;
      if (relevance_check && received >= config.relevance_threshold) {
        // Condition 3 (§4.2): the user judges the document irrelevant.
        result.aborted_irrelevant = true;
        result.completed = intact >= config.m;
        finish(received);
        return result;
      }
      if (intact >= config.m) {
        // Condition 1: enough cooked packets to reconstruct.
        result.completed = true;
        finish(total_content);
        return result;
      }
    }
    // Condition 2 without reconstruction: stalled round; retransmit.
    if (!config.caching) {
      std::fill(seen.begin(), seen.end(), false);
      intact = 0;
      content = 0.0;
    }
  }

  result.rounds = config.max_rounds;
  result.gave_up = true;
  result.completed = false;
  finish((intact >= config.m) ? total_content : content);
  return result;
}

TransferResult simulate_transfer(const std::vector<double>& clear_content,
                                 const TransferConfig& config, Rng& rng) {
  MOBIWEB_CHECK_MSG(config.alpha >= 0.0 && config.alpha < 1.0,
                    "simulate_transfer: alpha in [0,1)");
  return simulate_transfer(clear_content, config,
                           [&rng, &config] { return rng.next_bernoulli(config.alpha); });
}

TransferResult simulate_arq_transfer(const std::vector<double>& clear_content,
                                     const TransferConfig& config,
                                     const std::function<bool()>& next_corrupted) {
  MOBIWEB_CHECK_MSG(config.m >= 1, "simulate_arq_transfer: m >= 1");
  MOBIWEB_CHECK_MSG(static_cast<int>(clear_content.size()) == config.m,
                    "simulate_arq_transfer: clear_content must have m entries");
  MOBIWEB_CHECK_MSG(config.max_rounds >= 1, "simulate_arq_transfer: max_rounds >= 1");

  double total_content = 0.0;
  for (double c : clear_content) total_content += c;
  const bool relevance_check = config.relevance_threshold >= 0.0;

  TransferResult result;
  std::vector<bool> seen(static_cast<std::size_t>(config.m), false);
  int received = 0;
  double content = 0.0;

  const auto finish = [&] {
    result.content = content;
    result.time = static_cast<double>(result.packets) * config.time_per_packet +
                  static_cast<double>(result.rounds - 1) * config.request_delay;
  };

  std::vector<int> pending(static_cast<std::size_t>(config.m));
  for (int i = 0; i < config.m; ++i) pending[static_cast<std::size_t>(i)] = i;

  for (result.rounds = 1; result.rounds <= config.max_rounds; ++result.rounds) {
    for (const int i : pending) {
      ++result.packets;
      if (!next_corrupted() && !seen[static_cast<std::size_t>(i)]) {
        seen[static_cast<std::size_t>(i)] = true;
        ++received;
        content += clear_content[static_cast<std::size_t>(i)];
      }
      if (relevance_check && content >= config.relevance_threshold) {
        result.aborted_irrelevant = true;
        result.completed = received >= config.m;
        finish();
        return result;
      }
      if (received >= config.m) {
        result.completed = true;
        finish();
        return result;
      }
    }
    std::vector<int> missing;
    for (int i = 0; i < config.m; ++i) {
      if (!seen[static_cast<std::size_t>(i)]) missing.push_back(i);
    }
    pending = std::move(missing);
  }

  result.rounds = config.max_rounds;
  result.gave_up = true;
  finish();
  return result;
}

TransferResult simulate_arq_transfer(const std::vector<double>& clear_content,
                                     const TransferConfig& config, Rng& rng) {
  MOBIWEB_CHECK_MSG(config.alpha >= 0.0 && config.alpha < 1.0,
                    "simulate_arq_transfer: alpha in [0,1)");
  return simulate_arq_transfer(
      clear_content, config,
      [&rng, &config] { return rng.next_bernoulli(config.alpha); });
}

}  // namespace mobiweb::sim
