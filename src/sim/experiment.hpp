// Browsing-session experiment runner (paper §5).
//
// "Each simulated browsing session will visit 200 random documents, with a
// certain percentage of documents, I, defined to be irrelevant. Each
// irrelevant document will be discovered to be irrelevant by a client after a
// total information content of F has been received ... The mean response time
// taken to visit a document in a session is measured. The same experiment is
// repeated 50 times and the average of the 50 mean response times is taken."
#pragma once

#include <cstdint>
#include <string>

#include "channel/error_model.hpp"
#include "doc/lod.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/synthetic.hpp"
#include "sim/transfer.hpp"
#include "util/stats.hpp"

namespace mobiweb::sim {

// Defaults are the paper's Table 2.
struct ExperimentParams {
  SyntheticConfig document;            // s_p=256, s_D=10240, 5x2x2, delta=3
  std::size_t overhead = 4;            // O: CRC + sequence number
  double bandwidth_bps = 19200.0;      // B
  double gamma = 1.5;                  // N/M
  double alpha = 0.1;                  // per-packet corruption probability
  double irrelevant_fraction = 0.5;    // I
  double relevance_threshold = 0.5;    // F
  bool caching = true;
  doc::Lod lod = doc::Lod::kDocument;
  int documents_per_session = 200;
  int repetitions = 50;
  int max_rounds = 25;
  std::uint64_t seed = 42;
  // Optional burst/error model replacing the iid `alpha` draw. Cloned once
  // per repetition and reset() between documents, so one document's burst
  // state cannot leak into the next (each document visit is an independent
  // link in the paper's setup).
  const channel::ErrorModel* error_model = nullptr;
  // Weak-connectivity fault injection. outage_duty > 0 drives a Markov on/off
  // link (MarkovOutageModel::with_duty_cycle) whose down-state swallows frames
  // outright: `outage_duty` is the long-run fraction of time the link is down
  // and `mean_outage_s` the mean length of one fade. Like the error model, the
  // outage process is reset between documents (independent link per visit).
  double outage_duty = 0.0;     // 0 = link always up
  double mean_outage_s = 5.0;   // mean down-dwell when outage_duty > 0
  // iid drop probability for each retransmission request on the back channel
  // (each drop costs one extra request_delay; see sim::TransferConfig).
  double feedback_loss = 0.0;
  // Optional metrics sink: every document transfer is traced and aggregated
  // here (see obs::aggregate_trace for the series produced).
  obs::MetricsRegistry* metrics = nullptr;

  [[nodiscard]] int m() const { return document.raw_packets(); }
  [[nodiscard]] int n() const;  // ceil(gamma * m)
  [[nodiscard]] double time_per_packet() const {
    return static_cast<double>(document.packet_size + overhead) * 8.0 / bandwidth_bps;
  }
};

struct ExperimentResult {
  Summary response_time;   // over the per-session means (seconds)
  double stall_fraction = 0.0;   // fraction of documents that stalled >= once
  double gave_up_fraction = 0.0; // fraction that hit max_rounds
  long total_packets = 0;
};

// Runs `repetitions` sessions of `documents_per_session` documents each;
// returns statistics over the per-session mean response times.
ExperimentResult run_browsing_experiment(const ExperimentParams& params);

// Renders Table 2 (the parameter settings) for the given params.
std::string describe_parameters(const ExperimentParams& params);

}  // namespace mobiweb::sim
