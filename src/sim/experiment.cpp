#include "sim/experiment.hpp"

#include <cmath>
#include <sstream>

#include "channel/outage.hpp"
#include "util/check.hpp"

namespace mobiweb::sim {

int ExperimentParams::n() const {
  const int m_val = m();
  const int n_val = static_cast<int>(std::ceil(gamma * static_cast<double>(m_val)));
  return n_val < m_val ? m_val : n_val;
}

ExperimentResult run_browsing_experiment(const ExperimentParams& params) {
  MOBIWEB_CHECK_MSG(params.repetitions >= 1, "experiment: repetitions >= 1");
  MOBIWEB_CHECK_MSG(params.documents_per_session >= 1, "experiment: documents >= 1");
  MOBIWEB_CHECK_MSG(params.irrelevant_fraction >= 0.0 &&
                        params.irrelevant_fraction <= 1.0,
                    "experiment: I in [0,1]");
  MOBIWEB_CHECK_MSG(params.outage_duty >= 0.0 && params.outage_duty < 1.0,
                    "experiment: outage_duty in [0,1)");
  MOBIWEB_CHECK_MSG(params.outage_duty == 0.0 || params.mean_outage_s > 0.0,
                    "experiment: mean_outage_s > 0 when outages enabled");
  MOBIWEB_CHECK_MSG(params.feedback_loss >= 0.0 && params.feedback_loss < 1.0,
                    "experiment: feedback_loss in [0,1)");

  TransferConfig transfer;
  transfer.m = params.m();
  transfer.n = params.n();
  transfer.alpha = params.alpha;
  transfer.caching = params.caching;
  transfer.time_per_packet = params.time_per_packet();
  transfer.max_rounds = params.max_rounds;

  // Exact irrelevant count per session (lower variance than per-document
  // Bernoulli; documents are independent so position is irrelevant).
  const int irrelevant_docs = static_cast<int>(std::lround(
      params.irrelevant_fraction * static_cast<double>(params.documents_per_session)));

  Rng master(params.seed);
  ExperimentResult out;
  RunningStats session_means;
  long stalled = 0;
  long gave_up = 0;
  const long total_docs = static_cast<long>(params.repetitions) *
                          static_cast<long>(params.documents_per_session);

  // One reusable trace feeding the registry; cleared per document.
  obs::SessionTrace trace;
  if (params.metrics != nullptr) transfer.trace = &trace;

  for (int rep = 0; rep < params.repetitions; ++rep) {
    Rng rng = master.fork();
    // Clone per repetition: repetitions must be independent experiments even
    // for stateful (burst) models.
    std::unique_ptr<channel::ErrorModel> model;
    if (params.error_model != nullptr) model = params.error_model->clone();
    std::unique_ptr<channel::MarkovOutageModel> outage;
    if (params.outage_duty > 0.0) {
      outage = std::make_unique<channel::MarkovOutageModel>(
          channel::MarkovOutageModel::with_duty_cycle(params.outage_duty,
                                                      params.mean_outage_s));
      transfer.link_up = [&outage, &rng](double now) {
        return outage->link_up(now, rng);
      };
    }
    if (params.feedback_loss > 0.0) {
      transfer.feedback_lost = [&rng, &params] {
        return rng.next_bernoulli(params.feedback_loss);
      };
    }
    RunningStats per_doc;
    for (int d = 0; d < params.documents_per_session; ++d) {
      const SyntheticDocument document = generate_document(params.document, rng);
      const std::vector<double> profile = packet_content_profile(document, params.lod);
      transfer.relevance_threshold =
          (d < irrelevant_docs) ? params.relevance_threshold : -1.0;
      // Each document visit is an independent link: a fade in progress at the
      // end of one document must not bleed into the next (the analytic clock
      // also restarts at 0 per document, so the outage state must too).
      if (outage != nullptr) outage->reset();
      TransferResult r;
      if (model != nullptr) {
        // Same isolation for burst-error state.
        model->reset();
        r = simulate_transfer(profile, transfer,
                              [&] { return model->next_corrupted(rng); });
      } else {
        r = simulate_transfer(profile, transfer, rng);
      }
      per_doc.add(r.time);
      out.total_packets += r.packets;
      if (r.rounds > 1) ++stalled;
      if (r.gave_up) ++gave_up;
      if (params.metrics != nullptr) {
        obs::aggregate_trace(trace, *params.metrics);
        trace.clear();
      }
    }
    session_means.add(per_doc.mean());
  }

  out.response_time.count = session_means.count();
  out.response_time.mean = session_means.mean();
  out.response_time.stddev = session_means.stddev();
  out.response_time.ci95 = session_means.ci95_halfwidth();
  out.response_time.min = session_means.min();
  out.response_time.max = session_means.max();
  out.stall_fraction = static_cast<double>(stalled) / static_cast<double>(total_docs);
  out.gave_up_fraction =
      static_cast<double>(gave_up) / static_cast<double>(total_docs);
  return out;
}

std::string describe_parameters(const ExperimentParams& p) {
  std::ostringstream os;
  os << "s_p (raw size per packet)        = " << p.document.packet_size << " bytes\n"
     << "s_D (size per document)          = " << p.document.doc_size << " bytes\n"
     << "O (overhead: CRC + seq number)   = " << p.overhead << " bytes\n"
     << "M (number of raw packets)        = " << p.m() << "\n"
     << "N (number of cooked packets)     = " << p.n() << "\n"
     << "B (bandwidth)                    = " << p.bandwidth_bps / 1000.0 << " kbps\n"
     << "delta (skew in info content)     = " << p.document.skew << "\n"
     << "I (irrelevant documents)         = " << p.irrelevant_fraction * 100.0 << "%\n"
     << "F (content to judge relevance)   = " << p.relevance_threshold << "\n"
     << "alpha (corrupted-packet prob.)   = " << p.alpha << "\n"
     << "gamma (redundancy ratio N/M)     = " << p.gamma << "\n"
     << "structure                        = " << p.document.sections << " sections x "
     << p.document.subsections_per_section << " subsections x "
     << p.document.paragraphs_per_subsection << " paragraphs\n"
     << "documents per session            = " << p.documents_per_session << "\n"
     << "repetitions                      = " << p.repetitions << "\n"
     << "LOD                              = " << lod_name(p.lod) << "\n"
     << "caching                          = " << (p.caching ? "yes" : "no") << "\n"
     << "outage duty cycle                = " << p.outage_duty * 100.0 << "%\n"
     << "mean outage duration             = " << p.mean_outage_s << " s\n"
     << "feedback loss probability        = " << p.feedback_loss << "\n";
  return os.str();
}

}  // namespace mobiweb::sim
