// Packet-level analytic transfer simulator.
//
// Mirrors transmit::TransferSession + ida::StreamingDecoder semantics exactly
// but replaces real encoding/CRC with Bernoulli corruption draws, so millions
// of document transfers run in seconds. tests/test_sim_vs_real.cpp checks the
// two paths agree on identical corruption patterns.
#pragma once

#include <functional>
#include <vector>

#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace mobiweb::sim {

struct TransferConfig {
  int m = 40;                        // raw packets
  int n = 60;                        // cooked packets per round
  double alpha = 0.1;                // per-packet corruption probability
  bool caching = true;               // keep intact packets across rounds
  double relevance_threshold = -1.0; // F; < 0 = relevant (full download)
  double time_per_packet = 260.0 * 8.0 / 19200.0;  // (s_p + O) * 8 / B
  double request_delay = 0.0;        // added per stalled round
  int max_rounds = 25;               // cap for hopeless (alpha, gamma) combos
  // Optional link-availability hook (fault injection): called with the
  // analytic clock after each packet's airtime; false = the packet was lost
  // to a link outage (airtime charged, nothing received). nullptr = link
  // always up. Mirrors channel::OutageModel on the analytic path.
  std::function<bool(double now)> link_up;
  // Optional back-channel loss draw: true = this retransmission request was
  // dropped, costing one extra request_delay (the client's timeout) before
  // the retry. Retries are capped (kMaxFeedbackTries) so a pathological
  // always-lost hook cannot hang the simulator. nullptr = reliable feedback.
  std::function<bool()> feedback_lost;
  // Optional per-session event trace, on the simulator's analytic clock
  // (packets * time_per_packet + stalls * request_delay). nullptr = no-op.
  obs::SessionTrace* trace = nullptr;
};

// Bound on back-channel retries per stalled round in the analytic simulator.
inline constexpr int kMaxFeedbackTries = 64;

// Retry/backoff policy for the resilient analytic path. Field-for-field the
// same shape as transmit::RetryPolicy (kept separate so sim does not depend
// on the transmit layer); fleet::FleetEngine shares this struct so the
// engine, the oracle, and the real ResilientSession agree on semantics.
struct RetryConfig {
  int retry_budget = 16;             // total request attempts before kDegraded
  double initial_timeout_s = 0.5;    // first backoff wait
  double backoff_multiplier = 2.0;   // exponential growth per wait
  double max_backoff_s = 30.0;       // backoff ceiling
  double jitter = 0.1;               // wait stretched by U[0, jitter)
  double deadline_s = -1.0;          // wall budget per session; < 0 = none
};

struct ResilientTransferConfig {
  TransferConfig base;               // round body + link_up / feedback_lost hooks
  RetryConfig retry;
  std::uint64_t jitter_seed = 0x6a69747465ull;  // dedicated jitter RNG stream
};

struct TransferResult {
  double time = 0.0;
  long packets = 0;
  int rounds = 0;
  bool completed = false;          // M intact packets collected
  bool aborted_irrelevant = false; // stopped at the relevance threshold
  bool gave_up = false;            // hit max_rounds while stalled
  bool degraded = false;           // resilient path only: retry budget/deadline
                                   // exhausted; `content` holds the partial take
  double content = 0.0;            // information content at termination
  long frames_lost = 0;            // frames swallowed by a link outage
  int suspensions = 0;             // suspend→resume cycles ridden (resilient)
  int request_attempts = 0;        // retry budget consumed (resilient)
  double backoff_s = 0.0;          // time spent suspended / backing off (resilient)
};

// `clear_content[i]` = information content carried by clear-text packet i
// (size m, summing to the document's total content, normally 1).
TransferResult simulate_transfer(const std::vector<double>& clear_content,
                                 const TransferConfig& config, Rng& rng);

// Same, but with an arbitrary per-packet corruption source (one call per
// packet sent, true = corrupted). Used to drive the simulator with scripted
// patterns (equivalence tests against the real transmit stack) and with
// burst-error models (channel ablation); config.alpha is ignored.
TransferResult simulate_transfer(const std::vector<double>& clear_content,
                                 const TransferConfig& config,
                                 const std::function<bool()>& next_corrupted);

// Analytic mirror of transmit::ResilientSession — the weakly-connected round
// body. Per round the n frames go out with airtime charged whether or not the
// link is up (config.base.link_up decides frame loss); a stalled round whose
// end falls inside a fade suspends the client, which backs off exponentially
// (jittered, consuming retry budget) until the link is observed up; every
// retransmission request — including successful ones — consumes budget, and
// an exhausted budget or deadline terminates with `degraded = true` carrying
// the partial content collected so far. Draw order matches ResilientSession
// draw-for-draw: corruption from `rng`, jitter from a dedicated stream seeded
// by `jitter_seed` (one draw per wait even at jitter = 0), link-availability
// queries in the exact sequence the real session makes them — which is what
// keeps the fleet-vs-oracle parity tests exact. With link_up unset and
// retry_budget > max_rounds the walk is bit-identical to simulate_transfer.
TransferResult simulate_resilient_transfer(
    const std::vector<double>& clear_content,
    const ResilientTransferConfig& config, Rng& rng);
TransferResult simulate_resilient_transfer(
    const std::vector<double>& clear_content,
    const ResilientTransferConfig& config,
    const std::function<bool()>& next_corrupted);

// Selective-repeat ARQ baseline (no erasure coding): round 1 sends the m raw
// packets, every later round resends exactly the still-missing ones, each
// extra round charging `request_delay` of feedback latency. Mirrors
// transmit::ArqSession; `n` and `caching` in the config are ignored (ARQ is
// inherently caching and carries no redundancy).
TransferResult simulate_arq_transfer(const std::vector<double>& clear_content,
                                     const TransferConfig& config, Rng& rng);
TransferResult simulate_arq_transfer(const std::vector<double>& clear_content,
                                     const TransferConfig& config,
                                     const std::function<bool()>& next_corrupted);

}  // namespace mobiweb::sim
