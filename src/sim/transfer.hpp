// Packet-level analytic transfer simulator.
//
// Mirrors transmit::TransferSession + ida::StreamingDecoder semantics exactly
// but replaces real encoding/CRC with Bernoulli corruption draws, so millions
// of document transfers run in seconds. tests/test_sim_vs_real.cpp checks the
// two paths agree on identical corruption patterns.
#pragma once

#include <functional>
#include <vector>

#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace mobiweb::sim {

struct TransferConfig {
  int m = 40;                        // raw packets
  int n = 60;                        // cooked packets per round
  double alpha = 0.1;                // per-packet corruption probability
  bool caching = true;               // keep intact packets across rounds
  double relevance_threshold = -1.0; // F; < 0 = relevant (full download)
  double time_per_packet = 260.0 * 8.0 / 19200.0;  // (s_p + O) * 8 / B
  double request_delay = 0.0;        // added per stalled round
  int max_rounds = 25;               // cap for hopeless (alpha, gamma) combos
  // Optional link-availability hook (fault injection): called with the
  // analytic clock after each packet's airtime; false = the packet was lost
  // to a link outage (airtime charged, nothing received). nullptr = link
  // always up. Mirrors channel::OutageModel on the analytic path.
  std::function<bool(double now)> link_up;
  // Optional back-channel loss draw: true = this retransmission request was
  // dropped, costing one extra request_delay (the client's timeout) before
  // the retry. Retries are capped (kMaxFeedbackTries) so a pathological
  // always-lost hook cannot hang the simulator. nullptr = reliable feedback.
  std::function<bool()> feedback_lost;
  // Optional per-session event trace, on the simulator's analytic clock
  // (packets * time_per_packet + stalls * request_delay). nullptr = no-op.
  obs::SessionTrace* trace = nullptr;
};

// Bound on back-channel retries per stalled round in the analytic simulator.
inline constexpr int kMaxFeedbackTries = 64;

struct TransferResult {
  double time = 0.0;
  long packets = 0;
  int rounds = 0;
  bool completed = false;          // M intact packets collected
  bool aborted_irrelevant = false; // stopped at the relevance threshold
  bool gave_up = false;            // hit max_rounds while stalled
  double content = 0.0;            // information content at termination
};

// `clear_content[i]` = information content carried by clear-text packet i
// (size m, summing to the document's total content, normally 1).
TransferResult simulate_transfer(const std::vector<double>& clear_content,
                                 const TransferConfig& config, Rng& rng);

// Same, but with an arbitrary per-packet corruption source (one call per
// packet sent, true = corrupted). Used to drive the simulator with scripted
// patterns (equivalence tests against the real transmit stack) and with
// burst-error models (channel ablation); config.alpha is ignored.
TransferResult simulate_transfer(const std::vector<double>& clear_content,
                                 const TransferConfig& config,
                                 const std::function<bool()>& next_corrupted);

// Selective-repeat ARQ baseline (no erasure coding): round 1 sends the m raw
// packets, every later round resends exactly the still-missing ones, each
// extra round charging `request_delay` of feedback latency. Mirrors
// transmit::ArqSession; `n` and `caching` in the config are ignored (ARQ is
// inherently caching and carries no redundancy).
TransferResult simulate_arq_transfer(const std::vector<double>& clear_content,
                                     const TransferConfig& config, Rng& rng);
TransferResult simulate_arq_transfer(const std::vector<double>& clear_content,
                                     const TransferConfig& config,
                                     const std::function<bool()>& next_corrupted);

}  // namespace mobiweb::sim
