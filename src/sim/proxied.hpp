// Analytic proxied-transfer simulator: the edge-proxy tier as a second,
// independent failure domain layered under the resilient walk.
//
// The paper assumes the origin server is reachable whenever the wireless link
// is up. simulate_proxied_transfer breaks that assumption the way src/proxy
// does for the real stack: the client attaches to an edge proxy that may hold
// a pre-encoded replica of the document (warm with probability `warm_hit`,
// aged exponentially), the origin has its own availability process
// (`origin_up`), replicas carry an origin *generation* stamp that advances
// every `update_interval_s` seconds, and the proxy
//   * validates/refreshes the replica when the origin answers,
//   * fails over to the stale-but-flagged replica when it does not,
//   * suspends the client under the retry/backoff policy when it is cold AND
//     the origin is down (nothing to serve at all).
// A cell handoff (one Bernoulli draw per stalled round) moves the client to a
// fresh proxy with new warm/age draws; after a handoff — and after every
// link-outage resume — the client's partial-document cache is *reconciled*
// against the serving replica's generation: matching packets are kept, a
// generation mismatch drops the cached packets for re-fetch.
//
// This is the bit-parity oracle for the fleet engine's proxied mode
// (FleetConfig::proxy): the engine runs this walk's body draw-for-draw, so
// per-session results are EXPECT_EQ-able (tests/test_fleet.cpp pins it).
// With warm_hit = 1, a static corpus (update_interval_s = 0), handoff_rate =
// 0, and no origin_up hook, the walk is bit-identical to
// simulate_resilient_transfer (pinned in tests/test_sim.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/transfer.hpp"
#include "util/rng.hpp"

namespace mobiweb::sim {

// Shape of the analytic edge tier. All rates/means are per session.
struct ProxyModelConfig {
  // Probability a newly-attached proxy already holds a replica of the
  // requested document (edge hit rate of the ablation).
  double warm_hit = 0.6;
  // A warm replica's age is exponential with this mean; its generation stamp
  // is the origin generation as of (attach time - age). 0 = always current.
  double replica_age_mean_s = 120.0;
  // Proxy->origin fetch/refresh round-trip charged to the client's clock.
  double origin_fetch_delay_s = 0.5;
  // Per-stalled-round probability the client hands off to a new cell/proxy.
  double handoff_rate = 0.0;
  // Attach cost of a handoff (rebind + replica lookup on the new proxy).
  double handoff_delay_s = 0.3;
  // The origin publishes a new document version every this many seconds of
  // session time; replicas stamped with an older generation are stale.
  // 0 = static corpus (generation 0 forever).
  double update_interval_s = 0.0;
  // Size of the proxy pool (per-session assignment in the fleet engine; the
  // analytic walk itself treats proxies as i.i.d.).
  std::uint32_t proxies = 4;
};

struct ProxiedTransferConfig {
  TransferConfig base;   // round body + wireless link_up / feedback_lost hooks
  RetryConfig retry;     // shared suspend/backoff/budget policy
  ProxyModelConfig proxy;
  // Origin availability at session time `now` (its own OutageModel clone in
  // the fleet). Queries are non-decreasing in time. nullptr = always up.
  std::function<bool(double now)> origin_up;
  std::uint64_t jitter_seed = 0x6a69747465ull;  // dedicated jitter RNG stream
  std::uint64_t proxy_seed = 0x70726f7879ull;   // warm/age/handoff RNG stream
};

// Per-session edge-tier accounting, alongside the base TransferResult.
struct ProxyStats {
  int replica_hits = 0;       // validations that found the replica current
  int stale_serves = 0;       // servings from a stale-but-flagged replica
  int failovers = 0;          // origin found down at a validate/fetch point
  int handoffs = 0;           // cell/proxy switches mid-transfer
  int origin_fetches = 0;     // proxy->origin fetch/refresh round-trips
  int origin_suspensions = 0; // suspend->resume cycles waiting out an origin
                              // fade with nothing cached to serve
  int reconciliations = 0;    // partial-cache validations (resume + handoff)
  long packets_refetched = 0; // cached packets dropped as stale on reconcile
  long stale_frames = 0;      // intact packets delivered while serving stale
  bool ended_stale = false;   // final serving replica was stale-flagged
  // Origin-up validations that found a live replica's generation behind and
  // refreshed it (the replica existed but had to be replaced).
  int origin_generation_bumps = 0;
  // Held packets dropped by reconnect reconciliation. In this analytic walk
  // every dropped packet is queued for re-fetch, so it always equals
  // packets_refetched; the real proxy::reconcile can keep a subset, which is
  // why the drop side gets its own counter.
  long reconcile_dropped_packets = 0;
};

struct ProxiedTransferResult {
  TransferResult transfer;
  ProxyStats proxy;
};

// Origin generation as of session time `time`: one bump per update interval.
// Pure and monotone in `time`, so it is deterministic and shard-invariant.
std::uint64_t generation_at(double time, double update_interval_s);

// `clear_content[i]` = information content of clear-text packet i (size m).
// The Rng overload draws per-frame corruption Bernoulli(alpha) from `rng`;
// the functional overload takes an arbitrary per-frame corruption source.
ProxiedTransferResult simulate_proxied_transfer(
    const std::vector<double>& clear_content,
    const ProxiedTransferConfig& config, Rng& rng);
ProxiedTransferResult simulate_proxied_transfer(
    const std::vector<double>& clear_content,
    const ProxiedTransferConfig& config,
    const std::function<bool()>& next_corrupted);

}  // namespace mobiweb::sim
