#include "sim/proxied.hpp"

#include <algorithm>
#include <cmath>

#include "obs/profile.hpp"
#include "util/check.hpp"

namespace mobiweb::sim {

std::uint64_t generation_at(double time, double update_interval_s) {
  if (update_interval_s <= 0.0 || time <= 0.0) return 0;
  return static_cast<std::uint64_t>(time / update_interval_s);
}

ProxiedTransferResult simulate_proxied_transfer(
    const std::vector<double>& clear_content,
    const ProxiedTransferConfig& config,
    const std::function<bool()>& next_corrupted) {
  MOBIWEB_PROFILE_SCOPE("sim.proxied_transfer");
  const TransferConfig& base = config.base;
  const RetryConfig& rp = config.retry;
  const ProxyModelConfig& pm = config.proxy;
  MOBIWEB_CHECK_MSG(base.m >= 1, "simulate_proxied_transfer: m >= 1");
  MOBIWEB_CHECK_MSG(base.n >= base.m, "simulate_proxied_transfer: n >= m");
  MOBIWEB_CHECK_MSG(static_cast<int>(clear_content.size()) == base.m,
                    "simulate_proxied_transfer: clear_content must have m entries");
  MOBIWEB_CHECK_MSG(base.max_rounds >= 1,
                    "simulate_proxied_transfer: max_rounds >= 1");
  MOBIWEB_CHECK_MSG(rp.retry_budget >= 1,
                    "simulate_proxied_transfer: retry_budget >= 1");
  MOBIWEB_CHECK_MSG(rp.initial_timeout_s >= 0.0,
                    "simulate_proxied_transfer: initial_timeout_s >= 0");
  MOBIWEB_CHECK_MSG(rp.backoff_multiplier >= 1.0,
                    "simulate_proxied_transfer: backoff_multiplier >= 1");
  MOBIWEB_CHECK_MSG(rp.max_backoff_s >= rp.initial_timeout_s,
                    "simulate_proxied_transfer: max_backoff_s >= initial_timeout_s");
  MOBIWEB_CHECK_MSG(rp.jitter >= 0.0, "simulate_proxied_transfer: jitter >= 0");
  MOBIWEB_CHECK_MSG(pm.warm_hit >= 0.0 && pm.warm_hit <= 1.0,
                    "simulate_proxied_transfer: warm_hit in [0,1]");
  MOBIWEB_CHECK_MSG(pm.replica_age_mean_s >= 0.0,
                    "simulate_proxied_transfer: replica_age_mean_s >= 0");
  MOBIWEB_CHECK_MSG(pm.origin_fetch_delay_s >= 0.0,
                    "simulate_proxied_transfer: origin_fetch_delay_s >= 0");
  MOBIWEB_CHECK_MSG(pm.handoff_rate >= 0.0 && pm.handoff_rate < 1.0,
                    "simulate_proxied_transfer: handoff_rate in [0,1)");
  MOBIWEB_CHECK_MSG(pm.handoff_delay_s >= 0.0,
                    "simulate_proxied_transfer: handoff_delay_s >= 0");
  MOBIWEB_CHECK_MSG(pm.update_interval_s >= 0.0,
                    "simulate_proxied_transfer: update_interval_s >= 0");
  MOBIWEB_CHECK_MSG(pm.proxies >= 1, "simulate_proxied_transfer: proxies >= 1");

  double total_content = 0.0;
  for (double c : clear_content) total_content += c;
  const bool relevance_check = base.relevance_threshold >= 0.0;

  ProxiedTransferResult out;
  TransferResult& result = out.transfer;
  ProxyStats& px = out.proxy;
  std::vector<bool> seen(static_cast<std::size_t>(base.n), false);
  int intact = 0;
  double content = 0.0;
  double stall_delay = 0.0;  // feedback delay + backoff + edge-tier charges
  obs::SessionTrace* trace = base.trace;
  double clock = 0.0;
  Rng jitter_rng(config.jitter_seed);
  Rng proxy_rng(config.proxy_seed);
  double backoff = rp.initial_timeout_s;

  // Serving-replica state. Invariant: every packet the client holds was
  // fetched under generation `held_gen` (reconcile() drops the cache before
  // `held_gen` can change), so staleness is a single per-session flag, not a
  // per-packet one.
  bool has_replica = false;
  bool serving_stale = false;
  std::uint64_t replica_gen = 0;
  std::uint64_t held_gen = 0;

  if (trace != nullptr) trace->session_start(clock);

  const auto origin_up_now = [&] {
    return !config.origin_up || config.origin_up(clock);
  };
  const auto finish = [&](double received) {
    px.ended_stale = serving_stale;
    result.content = received;
    result.time = static_cast<double>(result.packets) * base.time_per_packet +
                  stall_delay;
    if (trace != nullptr) trace->session_end(clock, received);
  };
  const auto deadline_exceeded = [&] {
    return rp.deadline_s >= 0.0 && clock >= rp.deadline_s;
  };
  // One client wait — identical to the resilient walk: the jitter draw is
  // unconditional (even at jitter = 0) so the stream stays aligned with the
  // fleet engine's, wait-for-wait.
  const auto wait_one_backoff = [&] {
    const double wait = backoff * (1.0 + rp.jitter * jitter_rng.next_double());
    clock += wait;
    stall_delay += wait;
    result.backoff_s += wait;
    if (trace != nullptr) trace->backoff(clock, wait);
    backoff = std::min(backoff * rp.backoff_multiplier, rp.max_backoff_s);
  };
  const auto finish_degraded = [&] {
    result.degraded = true;
    if (trace != nullptr) trace->degraded(clock, content);
    finish(content);
  };
  // Edge-tier stall (origin fetch, handoff attach) on the client's clock.
  const auto charge = [&](double delay) {
    clock += delay;
    stall_delay += delay;
  };

  // Make the serving replica current, or stale-but-flagged when the origin
  // cannot validate it. Returns false when the session degraded riding out an
  // origin fade with nothing cached to serve (cold proxy + origin down).
  const auto validate_serving = [&]() -> bool {
    if (origin_up_now()) {
      if (has_replica &&
          replica_gen == generation_at(clock, pm.update_interval_s)) {
        ++px.replica_hits;
      } else {
        // A live replica landing here means its generation fell behind the
        // origin's — the refresh is a generation bump, not a cold fill.
        if (has_replica) ++px.origin_generation_bumps;
        ++px.origin_fetches;
        charge(pm.origin_fetch_delay_s);
        has_replica = true;
        replica_gen = generation_at(clock, pm.update_interval_s);
      }
      serving_stale = false;
      return true;
    }
    ++px.failovers;
    if (has_replica) {
      // Origin fade with a replica on hand: serve it, flagged stale — it may
      // be behind and there is no way to know until the origin answers.
      ++px.stale_serves;
      serving_stale = true;
      if (trace != nullptr) trace->stale_failover(clock);
      return true;
    }
    // Cold proxy AND origin down: nothing to serve. Ride out the origin fade
    // under the same backoff discipline as a link outage (budget-consuming,
    // so an origin that never returns still terminates the session).
    const double origin_outage_started = clock;
    if (trace != nullptr) trace->origin_outage_begin(clock);
    while (!origin_up_now()) {
      if (result.request_attempts >= rp.retry_budget || deadline_exceeded()) {
        finish_degraded();
        return false;
      }
      ++result.request_attempts;
      wait_one_backoff();
    }
    ++px.origin_suspensions;
    if (trace != nullptr) {
      trace->origin_outage_end(clock, clock - origin_outage_started);
    }
    backoff = rp.initial_timeout_s;  // origin is back: start fresh
    serving_stale = false;
    ++px.origin_fetches;
    charge(pm.origin_fetch_delay_s);
    has_replica = true;
    replica_gen = generation_at(clock, pm.update_interval_s);
    return true;
  };

  // Attach to a (new) proxy: fresh warm/age draws, then validate. Exactly two
  // proxy-stream draws per attach whatever the outcome, so the stream stays
  // aligned between the oracle and the engine attach-for-attach.
  const auto acquire_proxy = [&]() -> bool {
    const bool warm = proxy_rng.next_bernoulli(pm.warm_hit);
    const double age =
        -pm.replica_age_mean_s * std::log(1.0 - proxy_rng.next_double());
    has_replica = warm;
    serving_stale = false;
    replica_gen = warm ? generation_at(std::max(0.0, clock - age),
                                       pm.update_interval_s)
                       : 0;
    return validate_serving();
  };

  // Reconnect reconciliation: validate the client's partial-document cache
  // against the serving replica's generation — matching packets are kept, a
  // generation mismatch drops them for re-fetch.
  const auto reconcile = [&] {
    ++px.reconciliations;
    if (held_gen != replica_gen) {
      if (intact > 0) {
        px.packets_refetched += intact;
        px.reconcile_dropped_packets += intact;
        if (trace != nullptr) trace->reconcile_drop(clock, intact);
        std::fill(seen.begin(), seen.end(), false);
        intact = 0;
        content = 0.0;
      }
      held_gen = replica_gen;
    }
  };

  // The initial request attaches to the assigned proxy before round 1.
  if (!acquire_proxy()) return out;
  held_gen = replica_gen;

  for (result.rounds = 1;; ++result.rounds) {
    if (trace != nullptr) trace->round_start(result.rounds, clock);
    for (int i = 0; i < base.n; ++i) {
      ++result.packets;
      clock += base.time_per_packet;
      if (trace != nullptr) trace->frame_sent(i, clock);
      if (base.link_up && !base.link_up(clock)) {
        // In a fade: airtime burned, nothing delivered.
        ++result.frames_lost;
        if (trace != nullptr) trace->frame_lost(clock);
        continue;
      }
      const bool corrupted = next_corrupted();
      if (corrupted) {
        if (trace != nullptr) trace->frame_corrupted(clock);
      } else if (!seen[static_cast<std::size_t>(i)]) {
        seen[static_cast<std::size_t>(i)] = true;
        ++intact;
        if (serving_stale) ++px.stale_frames;
        if (i < base.m) content += clear_content[static_cast<std::size_t>(i)];
        if (trace != nullptr) {
          trace->frame_intact(i, clock,
                              (intact >= base.m) ? total_content : content);
        }
      } else if (trace != nullptr) {
        trace->frame_duplicate(i, clock);
      }
      // Reconstruction (condition 1) outranks the relevance abort
      // (condition 3), as everywhere else in the stack.
      if (intact >= base.m) {
        result.completed = true;
        if (trace != nullptr) trace->decode_complete(clock);
        finish(total_content);
        return out;
      }
      if (relevance_check && content >= base.relevance_threshold) {
        result.aborted_irrelevant = true;
        if (trace != nullptr) trace->abort_irrelevant(clock, content);
        finish(content);
        return out;
      }
    }
    if (trace != nullptr) trace->round_end(clock);
    // Give up BEFORE the suspend/handoff checks, as in the resilient walk.
    if (result.rounds >= base.max_rounds) break;

    // Link suspend — identical to the resilient walk.
    bool suspended = false;
    double outage_started = clock;
    while (base.link_up && !base.link_up(clock)) {
      if (!suspended) {
        outage_started = clock;
        if (trace != nullptr) trace->outage_begin(clock);
      }
      if (result.request_attempts >= rp.retry_budget || deadline_exceeded()) {
        finish_degraded();
        return out;
      }
      ++result.request_attempts;
      suspended = true;
      wait_one_backoff();
    }
    if (suspended) {
      ++result.suspensions;
      backoff = rp.initial_timeout_s;  // link is back: start fresh
      if (trace != nullptr) {
        trace->outage_end(clock, clock - outage_started);
        trace->resume(clock);
      }
      // Reconnect: the replica may have been refreshed or gone stale while
      // the client was dark — revalidate, then reconcile the partial cache.
      if (!validate_serving()) return out;
      reconcile();
    }

    // Cell handoff: one proxy-stream Bernoulli per stalled round, drawn
    // unconditionally (even at handoff_rate = 0) to keep the stream aligned.
    if (proxy_rng.next_bernoulli(pm.handoff_rate)) {
      ++px.handoffs;
      charge(pm.handoff_delay_s);
      if (trace != nullptr) trace->handoff(clock, pm.handoff_delay_s);
      if (!acquire_proxy()) return out;
      reconcile();
    }

    // Retransmission request to the serving proxy — identical to the
    // resilient walk: every attempt consumes retry budget.
    for (;;) {
      if (result.request_attempts >= rp.retry_budget || deadline_exceeded()) {
        finish_degraded();
        return out;
      }
      ++result.request_attempts;
      if (!base.feedback_lost || !base.feedback_lost()) break;
      wait_one_backoff();  // timeout: the request is presumed lost
    }
    if (trace != nullptr) trace->retransmit_request(clock);
    backoff = rp.initial_timeout_s;
    clock += base.request_delay;
    stall_delay += base.request_delay;
    if (!base.caching) {
      std::fill(seen.begin(), seen.end(), false);
      intact = 0;
      content = 0.0;
    }
  }

  result.gave_up = true;
  if (trace != nullptr) trace->give_up(clock);
  finish(content);
  return out;
}

ProxiedTransferResult simulate_proxied_transfer(
    const std::vector<double>& clear_content,
    const ProxiedTransferConfig& config, Rng& rng) {
  MOBIWEB_CHECK_MSG(config.base.alpha >= 0.0 && config.base.alpha < 1.0,
                    "simulate_proxied_transfer: alpha in [0,1)");
  return simulate_proxied_transfer(
      clear_content, config,
      [&rng, &config] { return rng.next_bernoulli(config.base.alpha); });
}

}  // namespace mobiweb::sim
