#include "sim/synthetic.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace mobiweb::sim {

SyntheticDocument generate_document(const SyntheticConfig& config, Rng& rng) {
  MOBIWEB_CHECK_MSG(config.paragraphs() > 0, "generate_document: no paragraphs");
  MOBIWEB_CHECK_MSG(config.skew >= 1.0, "generate_document: skew >= 1");
  SyntheticDocument doc;
  doc.config = config;
  doc.paragraph_content.resize(static_cast<std::size_t>(config.paragraphs()));
  double total = 0.0;
  for (double& c : doc.paragraph_content) {
    c = rng.next_range(1.0, config.skew);
    total += c;
  }
  for (double& c : doc.paragraph_content) c /= total;
  return doc;
}

namespace {

// Paragraph indices in transmission order for `lod`: organizational units at
// that level are ranked by total content (descending, stable on ties), their
// paragraphs kept sequential inside each unit.
std::vector<int> transmission_order(const SyntheticDocument& doc, doc::Lod lod) {
  const SyntheticConfig& cfg = doc.config;
  const int paragraphs = cfg.paragraphs();
  MOBIWEB_CHECK_MSG(static_cast<int>(doc.paragraph_content.size()) == paragraphs,
                    "transmission_order: paragraph count mismatch");

  // Paragraphs per organizational unit at this LOD. The synthetic tree has no
  // subsubsection level, so that LOD falls through to subsection grouping —
  // matching the paper ("our simulated documents do not have subsubsection
  // defined", Experiment #3 uses document/section/subsection/paragraph).
  int per_unit = 0;
  switch (lod) {
    case doc::Lod::kDocument:
      per_unit = paragraphs;
      break;
    case doc::Lod::kSection:
      per_unit = cfg.subsections_per_section * cfg.paragraphs_per_subsection;
      break;
    case doc::Lod::kSubsection:
    case doc::Lod::kSubsubsection:
      per_unit = cfg.paragraphs_per_subsection;
      break;
    case doc::Lod::kParagraph:
      per_unit = 1;
      break;
  }
  const int units = paragraphs / per_unit;

  // Rank units by total content, descending; stable keeps document order on
  // ties. Document LOD has a single unit -> sequential order.
  struct Unit {
    int first_paragraph;
    double content;
  };
  std::vector<Unit> ranked(static_cast<std::size_t>(units));
  for (int u = 0; u < units; ++u) {
    double content = 0.0;
    for (int p = 0; p < per_unit; ++p) {
      content += doc.paragraph_content[static_cast<std::size_t>(u * per_unit + p)];
    }
    ranked[static_cast<std::size_t>(u)] = Unit{u * per_unit, content};
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Unit& a, const Unit& b) { return a.content > b.content; });

  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(paragraphs));
  for (const Unit& u : ranked) {
    for (int p = 0; p < per_unit; ++p) order.push_back(u.first_paragraph + p);
  }
  return order;
}

}  // namespace

std::vector<double> packet_content_profile(const SyntheticDocument& doc,
                                           doc::Lod lod) {
  const SyntheticConfig& cfg = doc.config;
  const int paragraphs = cfg.paragraphs();

  // Paragraph contents in transmission order.
  const std::vector<int> order = transmission_order(doc, lod);
  std::vector<double> ordered;
  ordered.reserve(static_cast<std::size_t>(paragraphs));
  for (const int p : order) {
    ordered.push_back(doc.paragraph_content[static_cast<std::size_t>(p)]);
  }

  // Cut the byte stream into M raw packets; content accrues proportionally
  // within a paragraph. All paragraphs share the same byte size.
  const int m = cfg.raw_packets();
  const double para_bytes =
      static_cast<double>(cfg.doc_size) / static_cast<double>(paragraphs);
  std::vector<double> profile(static_cast<std::size_t>(m), 0.0);
  for (int p = 0; p < paragraphs; ++p) {
    const double begin = static_cast<double>(p) * para_bytes;
    const double end = begin + para_bytes;
    const double density = ordered[static_cast<std::size_t>(p)] / para_bytes;
    int first = static_cast<int>(begin / static_cast<double>(cfg.packet_size));
    for (int k = first; k < m; ++k) {
      const double k_begin = static_cast<double>(k) * static_cast<double>(cfg.packet_size);
      const double k_end = k_begin + static_cast<double>(cfg.packet_size);
      if (k_begin >= end) break;
      const double lo = std::max(begin, k_begin);
      const double hi = std::min(end, k_end);
      if (hi > lo) profile[static_cast<std::size_t>(k)] += density * (hi - lo);
    }
  }
  return profile;
}

doc::LinearDocument synthetic_linear_document(const SyntheticDocument& doc,
                                              doc::Lod lod, Rng& payload_rng) {
  const SyntheticConfig& cfg = doc.config;
  const int paragraphs = cfg.paragraphs();
  const std::vector<int> order = transmission_order(doc, lod);

  // Integral paragraph sizes: doc_size split evenly, remainder spread over
  // the leading paragraphs in transmission order.
  const std::size_t base = cfg.doc_size / static_cast<std::size_t>(paragraphs);
  std::size_t leftover = cfg.doc_size % static_cast<std::size_t>(paragraphs);

  doc::LinearDocument out;
  out.payload.resize(cfg.doc_size);
  for (auto& b : out.payload) {
    b = static_cast<std::uint8_t>(payload_rng.next_below(256));
  }
  out.segments.reserve(order.size());
  std::size_t offset = 0;
  for (const int p : order) {
    doc::Segment seg;
    seg.label = "p";
    seg.label += std::to_string(p);
    seg.offset = offset;
    seg.size = base + (leftover > 0 ? 1 : 0);
    if (leftover > 0) --leftover;
    seg.content = doc.paragraph_content[static_cast<std::size_t>(p)];
    offset += seg.size;
    out.segments.push_back(std::move(seg));
  }
  return out;
}

}  // namespace mobiweb::sim
