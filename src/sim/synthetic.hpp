// Synthetic documents for the §5 simulation study.
//
// "Each simulated document is composed of 5 sections; each section is
// composed of 2 subsections; each subsection is composed of 2 paragraphs. We
// model the information content of each paragraph by a uniform distribution.
// We use a skewed factor, δ, to model the ratio between the highest
// information content of a paragraph and the lowest."
//
// Paragraph contents are drawn from Uniform[1, δ] and normalized to sum to 1;
// all paragraphs have equal byte size s_D / #paragraphs.
#pragma once

#include <vector>

#include "doc/linear.hpp"
#include "doc/lod.hpp"
#include "util/rng.hpp"

namespace mobiweb::sim {

struct SyntheticConfig {
  std::size_t doc_size = 10240;   // s_D (bytes)
  std::size_t packet_size = 256;  // s_p (bytes, raw payload)
  int sections = 5;
  int subsections_per_section = 2;
  int paragraphs_per_subsection = 2;
  double skew = 3.0;              // δ

  [[nodiscard]] int paragraphs() const {
    return sections * subsections_per_section * paragraphs_per_subsection;
  }
  [[nodiscard]] int raw_packets() const {  // M
    return static_cast<int>((doc_size + packet_size - 1) / packet_size);
  }
};

// One simulated document: normalized information content per paragraph, in
// document order.
struct SyntheticDocument {
  SyntheticConfig config;
  std::vector<double> paragraph_content;  // sums to 1
};

SyntheticDocument generate_document(const SyntheticConfig& config, Rng& rng);

// Content of each *clear-text raw packet* when the document is transmitted at
// `lod`: organizational units at that level are ranked by information content
// (descending, stable), their paragraphs concatenated, and the byte stream
// cut into M packets; entry i is the content carried by packet i's byte
// range (proportional accrual inside a paragraph). Sums to 1.
//
// Lod::kDocument yields the conventional sequential order.
std::vector<double> packet_content_profile(const SyntheticDocument& doc,
                                           doc::Lod lod);

// Materializes a synthetic document as a transmittable doc::LinearDocument:
// one segment per paragraph, in the IC-ranked transmission order the given
// LOD produces (highest-content unit first, paragraphs sequential within a
// unit), with `payload_rng`-filled bytes. Byte sizes are integral — doc_size
// split evenly across paragraphs with the remainder spread over the leading
// ones — so the LinearDocument's content accounting (content_of_range) is the
// integral-byte analogue of packet_content_profile. This is the corpus
// generator behind fleet::DocumentCache: encode once, serve every client.
doc::LinearDocument synthetic_linear_document(const SyntheticDocument& doc,
                                              doc::Lod lod, Rng& payload_rng);

}  // namespace mobiweb::sim
