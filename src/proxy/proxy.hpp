// Edge proxy: a bounded replica cache between the origin server and the
// wireless channel.
//
// A proxy holds pre-encoded replicas (fleet::CookedDocument + origin
// generation stamp) under the same LRU + IC-weighted admission policy as the
// bounded fleet::DocumentCache: a replica is admitted only if its information
// density (content per cooked wire byte) is at least the LRU victim's, so a
// burst of cold low-value documents cannot flush the dense working set.
//
// serve() is the whole protocol. With the origin reachable the replica is
// validated (current -> fresh hit; stale -> refreshed from the origin); with
// the origin down the proxy fails over to whatever replica it holds, flagged
// stale — ServeOutcome::stale is true on *every* path where the origin did
// not vouch for the bytes, never silently cleared (the edge tier's core
// safety property, pinned in tests/test_proxy.cpp) — and a cold proxy with a
// dead origin reports the document unavailable, leaving the client to back
// off and retry.
//
// Single-threaded by design: one proxy serves one simulated cell, and the
// drivers (ProxyResilientSession, benches) run a cell's sessions on one
// thread. The shared concurrency-hardened cook path stays inside
// fleet::DocumentCache, which the origin owns.
#pragma once

#include <cstdint>
#include <list>
#include <map>

#include "obs/metrics.hpp"
#include "proxy/origin.hpp"

namespace mobiweb::proxy {

struct EdgeProxyConfig {
  // Maximum resident replicas. 0 = unbounded.
  std::size_t capacity = 0;
  std::uint32_t proxy_id = 0;  // label in traces/metrics
};

enum class ServeSource {
  kFreshHit,       // replica held and origin-validated current
  kRefreshed,      // replica held but stale; re-fetched from the origin
  kOriginFetch,    // cold proxy, origin fetch succeeded
  kStaleFailover,  // origin down; serving the held replica flagged stale
  kUnavailable,    // origin down and nothing cached: cannot serve at all
};

struct ServeOutcome {
  std::shared_ptr<const fleet::CookedDocument> doc;  // nullptr iff kUnavailable
  std::uint64_t generation = 0;
  // True whenever the origin did not validate the bytes as current at serve
  // time. Never false on a failover path.
  bool stale = false;
  ServeSource source = ServeSource::kUnavailable;
};

struct EdgeProxyStats {
  long fresh_hits = 0;
  long refreshes = 0;
  long origin_fetches = 0;   // cold fetches (kOriginFetch servings)
  long stale_serves = 0;     // kStaleFailover servings
  long failovers = 0;        // origin found down at a serve point
  long unavailable = 0;      // kUnavailable servings
  long evictions = 0;
  long admission_rejects = 0;
};

class EdgeProxy {
 public:
  EdgeProxy(EdgeProxyConfig config, OriginServer& origin);

  // One client request for `key` at clock time `now` (non-decreasing per
  // proxy). Never returns a stale replica with `stale == false`.
  [[nodiscard]] ServeOutcome serve(const fleet::CacheKey& key, double now);

  // Whether a replica of `key` is currently resident (no origin traffic).
  [[nodiscard]] bool holds(const fleet::CacheKey& key) const;
  // Resident replica's generation stamp; requires holds(key).
  [[nodiscard]] std::uint64_t replica_generation(const fleet::CacheKey& key) const;

  // Pre-warms the replica cache (deployment prefill / test setup). A no-op
  // when the origin is down at `now`.
  void warm(const fleet::CacheKey& key, double now);

  // Drops a resident replica (test hook for cold-restart scenarios).
  void drop(const fleet::CacheKey& key);

  [[nodiscard]] std::size_t resident() const { return replicas_.size(); }
  [[nodiscard]] const EdgeProxyStats& stats() const { return stats_; }
  [[nodiscard]] const EdgeProxyConfig& config() const { return config_; }

  // Mirrors EdgeProxyStats into `proxy.edge.*` counters of `registry` from
  // now on; nullptr detaches (the default).
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  struct Resident {
    Replica replica;
    std::list<fleet::CacheKey>::iterator lru;  // front = hottest
  };

  // LRU + IC-weighted admission, mirroring fleet::DocumentCache::admit.
  void admit(const fleet::CacheKey& key, Replica replica);
  void touch(Resident& r);
  [[nodiscard]] ServeOutcome serve_replica(Resident& r, bool stale,
                                           ServeSource source);

  EdgeProxyConfig config_;
  OriginServer* origin_;
  std::map<fleet::CacheKey, Resident> replicas_;
  std::list<fleet::CacheKey> lru_;
  EdgeProxyStats stats_;
  obs::Counter* metric_fresh_ = nullptr;
  obs::Counter* metric_refresh_ = nullptr;
  obs::Counter* metric_fetch_ = nullptr;
  obs::Counter* metric_stale_ = nullptr;
  obs::Counter* metric_failover_ = nullptr;
  obs::Counter* metric_unavailable_ = nullptr;
};

}  // namespace mobiweb::proxy
