#include "proxy/reconcile.hpp"

namespace mobiweb::proxy {

namespace {

std::uint32_t popcount64(std::uint64_t w) {
  std::uint32_t count = 0;
  while (w != 0) {
    w &= w - 1;
    ++count;
  }
  return count;
}

}  // namespace

std::uint32_t PartialBitmap::count() const {
  return popcount64(words[0]) + popcount64(words[1]) + popcount64(words[2]) +
         popcount64(words[3]);
}

ReconcileResult reconcile(const PartialBitmap& held,
                          const std::vector<CachedUnit>& entries,
                          std::uint64_t replica_generation) {
  // Per held unit: seen at least one record / seen only matching records.
  // Both fit in bitmaps, so the scan is O(entries + kReconcileUnits) with no
  // per-unit allocation — safe against adversarial duplicate-heavy inputs.
  PartialBitmap covered;
  PartialBitmap mismatched;
  for (const CachedUnit& e : entries) {
    if (!held.test(e.unit)) continue;  // record for a packet we don't hold
    covered.set(e.unit);
    if (e.generation != replica_generation) mismatched.set(e.unit);
  }

  ReconcileResult out;
  for (std::uint32_t unit = 0; unit < kReconcileUnits; ++unit) {
    if (!held.test(unit)) continue;
    if (covered.test(unit) && !mismatched.test(unit)) {
      out.kept.push_back(unit);
      out.bitmap.set(unit);
    } else {
      // Unprovenanced or generation-mismatched: never serve stale as fresh.
      out.refetch.push_back(unit);
    }
  }
  return out;
}

}  // namespace mobiweb::proxy
