#include "proxy/origin.hpp"

#include "sim/proxied.hpp"
#include "util/check.hpp"

namespace mobiweb::proxy {

OriginServer::OriginServer(OriginConfig config)
    : config_(config), corpus_(config.corpus), outage_rng_(config.outage_seed),
      published_(config.corpus.corpus_size, 0) {
  MOBIWEB_CHECK_MSG(config_.update_interval_s >= 0.0,
                    "OriginServer: update_interval_s >= 0");
  if (config_.outage != nullptr) outage_ = config_.outage->session_clone();
}

bool OriginServer::available(double now) {
  if (outage_ == nullptr) return true;
  return outage_->link_up(now, outage_rng_);
}

std::uint64_t OriginServer::generation(std::uint32_t doc_index,
                                       double now) const {
  MOBIWEB_CHECK_MSG(doc_index < published_.size(),
                    "OriginServer: doc_index out of corpus");
  return published_[doc_index] +
         sim::generation_at(now, config_.update_interval_s);
}

void OriginServer::publish(std::uint32_t doc_index) {
  MOBIWEB_CHECK_MSG(doc_index < published_.size(),
                    "OriginServer: doc_index out of corpus");
  ++published_[doc_index];
}

std::optional<Replica> OriginServer::fetch(const fleet::CacheKey& key,
                                           double now) {
  if (!available(now)) {
    ++refused_;
    return std::nullopt;
  }
  ++fetches_;
  return Replica{corpus_.get(key), generation(key.doc_index, now)};
}

std::optional<bool> OriginServer::validate(const fleet::CacheKey& key,
                                           std::uint64_t replica_generation,
                                           double now) {
  if (!available(now)) {
    ++refused_;
    return std::nullopt;
  }
  ++validations_;
  return replica_generation == generation(key.doc_index, now);
}

}  // namespace mobiweb::proxy
