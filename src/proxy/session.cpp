#include "proxy/session.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "proxy/reconcile.hpp"
#include "util/check.hpp"

namespace mobiweb::proxy {

ProxyResilientSession::ProxyResilientSession(std::vector<EdgeProxy*> proxies,
                                             channel::WirelessChannel& channel,
                                             ProxySessionConfig config,
                                             std::size_t initial)
    : proxies_(std::move(proxies)), channel_(&channel),
      config_(std::move(config)), jitter_rng_(config_.jitter_seed),
      current_(0) {
  MOBIWEB_CHECK_MSG(!proxies_.empty(),
                    "ProxyResilientSession: empty proxy pool");
  for (const EdgeProxy* p : proxies_) {
    MOBIWEB_CHECK_MSG(p != nullptr, "ProxyResilientSession: null proxy");
  }
  const transmit::RetryPolicy& rp = config_.retry;
  MOBIWEB_CHECK_MSG(config_.max_rounds >= 1,
                    "ProxyResilientSession: max_rounds >= 1");
  MOBIWEB_CHECK_MSG(rp.retry_budget >= 1,
                    "ProxyResilientSession: retry_budget >= 1");
  MOBIWEB_CHECK_MSG(rp.initial_timeout_s >= 0.0,
                    "ProxyResilientSession: initial_timeout_s >= 0");
  MOBIWEB_CHECK_MSG(rp.backoff_multiplier >= 1.0,
                    "ProxyResilientSession: backoff_multiplier >= 1");
  MOBIWEB_CHECK_MSG(rp.max_backoff_s >= rp.initial_timeout_s,
                    "ProxyResilientSession: max_backoff_s >= initial_timeout_s");
  MOBIWEB_CHECK_MSG(rp.jitter >= 0.0, "ProxyResilientSession: jitter >= 0");
  MOBIWEB_CHECK_MSG(config_.handoff_delay_s >= 0.0,
                    "ProxyResilientSession: handoff_delay_s >= 0");
  current_ = initial % proxies_.size();
}

ProxySessionResult ProxyResilientSession::run(const fleet::CacheKey& key) {
  ProxySessionResult out;
  transmit::SessionResult& result = out.session;
  sim::ProxyStats& px = out.proxy;
  const transmit::RetryPolicy& rp = config_.retry;
  const double start = channel_->now();
  double last_arrival = start;
  double handoff_checked = start;
  const bool relevance_check = config_.relevance_threshold >= 0.0;
  double backoff = rp.initial_timeout_s;

  std::shared_ptr<const fleet::CookedDocument> doc;
  std::uint64_t serving_gen = 0;
  bool serving_stale = false;
  std::uint64_t held_gen = 0;
  std::optional<transmit::ClientReceiver> receiver;

  const auto deadline_exceeded = [&] {
    return rp.deadline_s >= 0.0 && channel_->now() - start >= rp.deadline_s;
  };
  const auto wait_one_backoff = [&] {
    const double wait =
        backoff * (1.0 + rp.jitter * jitter_rng_.next_double());
    if (wait > 0.0) channel_->advance(wait);
    out.backoff_total_s += wait;
    backoff = std::min(backoff * rp.backoff_multiplier, rp.max_backoff_s);
  };
  const auto finish = [&](transmit::SessionStatus status) -> ProxySessionResult {
    result.status = status;
    result.completed = status == transmit::SessionStatus::kCompleted;
    result.aborted_irrelevant =
        status == transmit::SessionStatus::kAbortedIrrelevant;
    if (receiver.has_value()) {
      result.content_received = receiver->content_received();
      out.partial = receiver->partial_document();
    }
    result.response_time = last_arrival - start;
    px.ended_stale = serving_stale;
    out.serving_proxy = static_cast<std::uint32_t>(current_);
    return out;
  };

  // Serves `key` from the current proxy. A proxy with nothing at all (cold
  // AND origin down) suspends the client under backoff, consuming retry
  // budget so a dead origin still terminates; false = budget/deadline
  // exhausted (caller degrades).
  const auto attach = [&]() -> bool {
    bool waited = false;
    for (;;) {
      ServeOutcome s = proxies_[current_]->serve(key, channel_->now());
      if (s.doc != nullptr) {
        switch (s.source) {
          case ServeSource::kFreshHit:
            ++px.replica_hits;
            break;
          case ServeSource::kRefreshed:
          case ServeSource::kOriginFetch:
            ++px.origin_fetches;
            break;
          case ServeSource::kStaleFailover:
            ++px.failovers;
            ++px.stale_serves;
            break;
          case ServeSource::kUnavailable:
            break;  // unreachable with a non-null doc
        }
        if (waited) {
          ++px.origin_suspensions;
          backoff = rp.initial_timeout_s;  // origin is back: start fresh
        }
        doc = std::move(s.doc);
        serving_gen = s.generation;
        serving_stale = s.stale;
        return true;
      }
      ++px.failovers;
      waited = true;
      if (out.request_attempts >= rp.retry_budget || deadline_exceeded()) {
        return false;
      }
      ++out.request_attempts;
      wait_one_backoff();
    }
  };

  // Reconnect reconciliation: validate the cached packets' generation against
  // the replica now serving. All-or-nothing in a session (every cached packet
  // shares held_gen), but the decision is delegated to proxy::reconcile — the
  // same pure function the fuzz harness drives.
  const auto reconcile_cache = [&] {
    if (!receiver.has_value()) return;
    ++px.reconciliations;
    PartialBitmap held;
    std::vector<CachedUnit> entries;
    const auto n = static_cast<std::uint32_t>(
        std::min<std::size_t>(doc->transmitter.n(), kReconcileUnits));
    for (std::uint32_t i = 0; i < n; ++i) {
      if (receiver->has_packet(i)) {
        held.set(i);
        entries.push_back(CachedUnit{i, held_gen});
      }
    }
    const ReconcileResult r = reconcile(held, entries, serving_gen);
    if (!r.refetch.empty()) {
      px.packets_refetched += static_cast<long>(r.refetch.size());
      receiver->reset_cache();
    }
    held_gen = serving_gen;
  };

  if (!attach()) return finish(transmit::SessionStatus::kDegraded);
  held_gen = serving_gen;
  {
    transmit::ReceiverConfig rc;
    rc.doc_id = doc->transmitter.doc_id();
    rc.m = doc->transmitter.m();
    rc.n = doc->transmitter.n();
    rc.packet_size = doc->transmitter.packet_size();
    rc.payload_size = doc->transmitter.payload_size();
    rc.caching = config_.caching;
    receiver.emplace(rc, doc->transmitter.document().segments);
  }

  for (int round = 1; round <= config_.max_rounds; ++round) {
    result.rounds = round;
    for (std::size_t i = 0; i < doc->transmitter.n(); ++i) {
      channel::WirelessChannel::Delivery d =
          channel_->send(ByteSpan(doc->transmitter.frame(i)));
      ++result.frames_sent;
      if (d.lost) continue;
      last_arrival = d.arrive_time;
      const transmit::FrameResult fr =
          receiver->on_frame(ByteSpan(d.frame), d.arrive_time);
      if (fr.newly_useful && serving_stale) ++px.stale_frames;
      if (receiver->complete()) {
        return finish(transmit::SessionStatus::kCompleted);
      }
      if (relevance_check &&
          receiver->content_received() >= config_.relevance_threshold) {
        return finish(transmit::SessionStatus::kAbortedIrrelevant);
      }
    }
    if (round == config_.max_rounds) break;  // give up: no further request
    receiver->on_round_end();

    // Link-outage suspend, exactly as ResilientSession — then, because time
    // passed with the replica unwatched, re-validate the serving path and
    // reconcile the cache before asking for more.
    if (!channel_->link_up_now()) {
      while (!channel_->link_up_now()) {
        if (out.request_attempts >= rp.retry_budget || deadline_exceeded()) {
          return finish(transmit::SessionStatus::kDegraded);
        }
        ++out.request_attempts;
        wait_one_backoff();
      }
      ++out.outages_ridden;
      backoff = rp.initial_timeout_s;  // link is back: start fresh
      if (!attach()) return finish(transmit::SessionStatus::kDegraded);
      reconcile_cache();
    }

    // Scripted cell handoffs that fired since the last check: rebind to the
    // next proxy (round-robin), charge the attach latency, serve from the
    // new cell and reconcile against whatever generation it holds.
    const double now = channel_->now();
    const std::size_t fired = config_.handoffs.count_in(handoff_checked, now);
    handoff_checked = now;
    if (fired > 0) {
      for (std::size_t h = 0; h < fired; ++h) {
        ++px.handoffs;
        current_ = (current_ + 1) % proxies_.size();
        if (config_.handoff_delay_s > 0.0) {
          channel_->advance(config_.handoff_delay_s);
        }
      }
      const std::size_t n_before = doc->transmitter.n();
      if (!attach()) return finish(transmit::SessionStatus::kDegraded);
      // Same key => same deterministic cooked build: the receiver's geometry
      // cannot change across proxies, only the generation stamp can.
      MOBIWEB_CHECK_MSG(doc->transmitter.n() == n_before,
                        "ProxyResilientSession: cooked geometry changed");
      reconcile_cache();
    }

    // Re-request until one message survives the lossy back channel.
    for (;;) {
      if (out.request_attempts >= rp.retry_budget || deadline_exceeded()) {
        return finish(transmit::SessionStatus::kDegraded);
      }
      ++out.request_attempts;
      if (channel_->send_feedback()) {
        backoff = rp.initial_timeout_s;
        break;
      }
      ++out.timeouts;
      wait_one_backoff();
    }
  }

  return finish(transmit::SessionStatus::kGaveUp);
}

}  // namespace mobiweb::proxy
