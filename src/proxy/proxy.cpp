#include "proxy/proxy.hpp"

#include <utility>

#include "util/check.hpp"

namespace mobiweb::proxy {

EdgeProxy::EdgeProxy(EdgeProxyConfig config, OriginServer& origin)
    : config_(config), origin_(&origin) {}

void EdgeProxy::touch(Resident& r) {
  lru_.splice(lru_.begin(), lru_, r.lru);
}

void EdgeProxy::admit(const fleet::CacheKey& key, Replica replica) {
  if (const auto it = replicas_.find(key); it != replicas_.end()) {
    // Refresh in place: newer generation replaces the stamp, recency bumps.
    it->second.replica = std::move(replica);
    touch(it->second);
    return;
  }
  if (config_.capacity > 0 && replicas_.size() >= config_.capacity) {
    const fleet::CacheKey victim = lru_.back();
    const auto vit = replicas_.find(victim);
    if (fleet::DocumentCache::admission_weight(*replica.doc) <
        fleet::DocumentCache::admission_weight(*vit->second.replica.doc)) {
      ++stats_.admission_rejects;
      return;  // serve unadmitted: less content per byte than the victim
    }
    lru_.pop_back();
    replicas_.erase(vit);
    ++stats_.evictions;
  }
  lru_.push_front(key);
  replicas_.emplace(key, Resident{std::move(replica), lru_.begin()});
}

ServeOutcome EdgeProxy::serve_replica(Resident& r, bool stale,
                                      ServeSource source) {
  touch(r);
  return ServeOutcome{r.replica.doc, r.replica.generation, stale, source};
}

ServeOutcome EdgeProxy::serve(const fleet::CacheKey& key, double now) {
  const auto it = replicas_.find(key);
  if (it != replicas_.end()) {
    const std::optional<bool> current =
        origin_->validate(key, it->second.replica.generation, now);
    if (!current.has_value()) {
      // Origin down: the held replica is the best available — serve it, but
      // flagged. The stale bit is set here and nowhere cleared on this path.
      ++stats_.failovers;
      ++stats_.stale_serves;
      if (metric_failover_ != nullptr) metric_failover_->inc();
      if (metric_stale_ != nullptr) metric_stale_->inc();
      return serve_replica(it->second, /*stale=*/true,
                           ServeSource::kStaleFailover);
    }
    if (*current) {
      ++stats_.fresh_hits;
      if (metric_fresh_ != nullptr) metric_fresh_->inc();
      return serve_replica(it->second, /*stale=*/false,
                           ServeSource::kFreshHit);
    }
    // Held but outdated; the origin just answered the validation, but it may
    // have faded before the (heavier) refresh round-trip completes.
    std::optional<Replica> fresh = origin_->fetch(key, now);
    if (!fresh.has_value()) {
      ++stats_.failovers;
      ++stats_.stale_serves;
      if (metric_failover_ != nullptr) metric_failover_->inc();
      if (metric_stale_ != nullptr) metric_stale_->inc();
      return serve_replica(it->second, /*stale=*/true,
                           ServeSource::kStaleFailover);
    }
    it->second.replica = std::move(*fresh);
    ++stats_.refreshes;
    if (metric_refresh_ != nullptr) metric_refresh_->inc();
    return serve_replica(it->second, /*stale=*/false, ServeSource::kRefreshed);
  }

  std::optional<Replica> fetched = origin_->fetch(key, now);
  if (!fetched.has_value()) {
    ++stats_.failovers;
    ++stats_.unavailable;
    if (metric_failover_ != nullptr) metric_failover_->inc();
    if (metric_unavailable_ != nullptr) metric_unavailable_->inc();
    return ServeOutcome{};  // cold and cut off: nothing to serve at all
  }
  ServeOutcome out{fetched->doc, fetched->generation, /*stale=*/false,
                   ServeSource::kOriginFetch};
  ++stats_.origin_fetches;
  if (metric_fetch_ != nullptr) metric_fetch_->inc();
  admit(key, std::move(*fetched));
  return out;
}

bool EdgeProxy::holds(const fleet::CacheKey& key) const {
  return replicas_.find(key) != replicas_.end();
}

std::uint64_t EdgeProxy::replica_generation(const fleet::CacheKey& key) const {
  const auto it = replicas_.find(key);
  MOBIWEB_CHECK_MSG(it != replicas_.end(),
                    "EdgeProxy: replica_generation of a key not held");
  return it->second.replica.generation;
}

void EdgeProxy::warm(const fleet::CacheKey& key, double now) {
  std::optional<Replica> fetched = origin_->fetch(key, now);
  if (fetched.has_value()) admit(key, std::move(*fetched));
}

void EdgeProxy::drop(const fleet::CacheKey& key) {
  const auto it = replicas_.find(key);
  if (it == replicas_.end()) return;
  lru_.erase(it->second.lru);
  replicas_.erase(it);
}

void EdgeProxy::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metric_fresh_ = metric_refresh_ = metric_fetch_ = metric_stale_ =
        metric_failover_ = metric_unavailable_ = nullptr;
    return;
  }
  metric_fresh_ = &registry->counter("proxy.edge.fresh_hits");
  metric_refresh_ = &registry->counter("proxy.edge.refreshes");
  metric_fetch_ = &registry->counter("proxy.edge.origin_fetches");
  metric_stale_ = &registry->counter("proxy.edge.stale_serves");
  metric_failover_ = &registry->counter("proxy.edge.failovers");
  metric_unavailable_ = &registry->counter("proxy.edge.unavailable");
}

}  // namespace mobiweb::proxy
