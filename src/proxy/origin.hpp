// Origin server behind the edge tier: the authoritative document corpus with
// its own availability process and a per-document generation counter.
//
// The paper's server is implicitly always reachable; OriginServer drops that
// assumption. It owns the cook pipeline (a fleet::DocumentCache, so cooked
// packet sets are built once per (document, gamma) and shared read-only), an
// optional OutageModel describing origin reachability — a failure domain
// independent of the wireless link — and generation stamps that advance when
// the corpus is republished. Edge proxies validate and refresh their replicas
// against these stamps; when the origin is unreachable the proxy must either
// fail over to a stale-but-flagged replica or report the document
// unavailable (src/proxy/proxy.hpp).
//
// Generations compose a time-driven component (one bump every
// update_interval_s seconds of session time, exactly sim::generation_at — the
// analytic oracle's rule) with explicit publish() bumps, so tests can script
// updates precisely while benches model a steadily-churning corpus.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "channel/outage.hpp"
#include "fleet/cache.hpp"
#include "util/rng.hpp"

namespace mobiweb::proxy {

struct OriginConfig {
  fleet::CacheConfig corpus;     // authoritative corpus shape + cook settings
  // Origin reachability; nullptr = always up. The server owns a session_clone
  // so the prototype can be shared with other failure domains.
  std::shared_ptr<const channel::OutageModel> outage;
  std::uint64_t outage_seed = 0x6f726967696e21ull;  // "origin!" stream
  // Seconds of clock time per automatic generation bump; 0 = static corpus.
  double update_interval_s = 0.0;
};

// What a fetch hands the edge proxy: the immutable cooked document plus the
// origin generation it was current at.
struct Replica {
  std::shared_ptr<const fleet::CookedDocument> doc;
  std::uint64_t generation = 0;
};

class OriginServer {
 public:
  explicit OriginServer(OriginConfig config);

  // Whether the origin answers at clock time `now`. Queries must be
  // non-decreasing in time (the outage model's contract).
  [[nodiscard]] bool available(double now);

  // Current generation of `doc_index` at `now`: time-driven bumps plus any
  // explicit publishes. Monotone in `now` for a fixed publish history.
  [[nodiscard]] std::uint64_t generation(std::uint32_t doc_index,
                                         double now) const;

  // Publishes a new version of `doc_index` (explicit generation bump).
  void publish(std::uint32_t doc_index);

  // Fetch/refresh round-trip: nullopt when the origin is down at `now`,
  // otherwise the cooked document stamped with its current generation.
  [[nodiscard]] std::optional<Replica> fetch(const fleet::CacheKey& key,
                                             double now);

  // Cheap validation (no document transfer): nullopt when the origin is down,
  // otherwise whether `replica_generation` is still current for the key.
  [[nodiscard]] std::optional<bool> validate(const fleet::CacheKey& key,
                                             std::uint64_t replica_generation,
                                             double now);

  [[nodiscard]] const OriginConfig& config() const { return config_; }
  [[nodiscard]] fleet::DocumentCache& corpus() { return corpus_; }
  [[nodiscard]] long fetches() const { return fetches_; }
  [[nodiscard]] long validations() const { return validations_; }
  [[nodiscard]] long refused() const { return refused_; }  // down at call time

 private:
  OriginConfig config_;
  fleet::DocumentCache corpus_;
  std::unique_ptr<channel::OutageModel> outage_;  // nullptr = always up
  Rng outage_rng_;
  std::vector<std::uint64_t> published_;  // explicit bumps per doc_index
  long fetches_ = 0;
  long validations_ = 0;
  long refused_ = 0;
};

}  // namespace mobiweb::proxy
