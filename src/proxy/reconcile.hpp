// Reconnect reconciliation: deciding which cached cooked packets a client may
// keep after it reattaches (link resume or cell handoff) to a replica that
// may have moved generations underneath it.
//
// The client's partial-document cache is a bitmap over cooked-packet indices
// plus, per held packet, the origin generation it was encoded from. A packet
// is safe to keep only when *every* record the client holds for it matches
// the serving replica's generation — any mismatch (or a held bit with no
// generation record at all) means the bytes may belong to a different
// document version, so the packet is dropped for re-fetch. The rule is
// deliberately conservative: when in doubt, re-fetch. Stale bytes must never
// be delivered as fresh.
//
// The function is pure (no I/O, no clocks, no allocation beyond the result),
// total over arbitrary inputs — out-of-range unit indices and records for
// unheld bits are ignored, duplicates are tolerated — and is the fuzz surface
// of the edge tier (tests/fuzz/fuzz_proxy_reconcile.cpp).
#pragma once

#include <cstdint>
#include <vector>

namespace mobiweb::proxy {

// Matches the fleet engine's per-session receipt bitmap (4 x 64 bits): cooked
// packet counts are capped at fleet::kMaxCookedPackets.
inline constexpr std::uint32_t kReconcileUnits = 256;

// Fixed-width bitmap over cooked-packet indices [0, kReconcileUnits).
// Out-of-range indices are ignored by set()/clear() and read as unheld.
struct PartialBitmap {
  std::uint64_t words[4] = {0, 0, 0, 0};

  [[nodiscard]] bool test(std::uint32_t unit) const {
    if (unit >= kReconcileUnits) return false;
    return (words[unit >> 6] >> (unit & 63)) & 1u;
  }
  void set(std::uint32_t unit) {
    if (unit >= kReconcileUnits) return;
    words[unit >> 6] |= std::uint64_t{1} << (unit & 63);
  }
  void clear(std::uint32_t unit) {
    if (unit >= kReconcileUnits) return;
    words[unit >> 6] &= ~(std::uint64_t{1} << (unit & 63));
  }
  [[nodiscard]] std::uint32_t count() const;

  friend bool operator==(const PartialBitmap& a, const PartialBitmap& b) {
    return a.words[0] == b.words[0] && a.words[1] == b.words[1] &&
           a.words[2] == b.words[2] && a.words[3] == b.words[3];
  }
};

// One held cooked packet and the origin generation it was fetched under.
struct CachedUnit {
  std::uint32_t unit = 0;
  std::uint64_t generation = 0;
};

struct ReconcileResult {
  std::vector<std::uint32_t> kept;     // ascending; safe to keep serving from
  std::vector<std::uint32_t> refetch;  // ascending; dropped, must re-fetch
  PartialBitmap bitmap;                // exactly the kept set, as a bitmap
};

// Reconciles `held` (the client's receipt bitmap) against the serving
// replica's generation. A held unit is kept iff at least one `entries` record
// covers it AND every record covering it carries `replica_generation`;
// otherwise it lands in `refetch` and its bit is cleared. Records for unheld
// units or with unit >= kReconcileUnits are ignored. kept and refetch are
// disjoint and together cover every held bit.
[[nodiscard]] ReconcileResult reconcile(const PartialBitmap& held,
                                        const std::vector<CachedUnit>& entries,
                                        std::uint64_t replica_generation);

}  // namespace mobiweb::proxy
