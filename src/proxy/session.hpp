// Proxied resilient transfer driver: ResilientSession semantics with the
// edge tier underneath — origin failover, scripted cell handoffs, and
// reconnect reconciliation, all on the real frame/CRC/decoder stack.
//
// The client attaches to an edge proxy and streams the served replica's
// cooked frames over the wireless channel exactly like ResilientSession.
// Three things change:
//
//   * the serving replica can be stale (origin down at attach/validate time,
//     EdgeProxy failed over): delivery continues, but every packet banked
//     while stale is counted and the result carries the flag — stale bytes
//     are never passed off as fresh;
//   * a scripted channel::HandoffSchedule moves the client to the next proxy
//     of the pool mid-transfer: the attach cost is charged, the new proxy
//     serves (possibly a different generation, possibly failing over), and
//     the client's partial cache is reconciled;
//   * after every link-outage resume the client re-validates its serving
//     replica the same way — resume-then-reconcile is the paper's Caching
//     strategy generalized across replica generations: matching packets are
//     kept, a generation mismatch drops the cache for re-fetch
//     (proxy::reconcile decides, all-or-nothing here because a session's
//     cached packets always share one generation).
//
// A cold proxy with a dead origin has nothing to serve: the client suspends
// under the shared retry/backoff policy (consuming budget, so a dead origin
// still terminates) until the origin answers or the session degrades.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel.hpp"
#include "channel/handoff.hpp"
#include "proxy/proxy.hpp"
#include "sim/proxied.hpp"
#include "transmit/receiver.hpp"
#include "transmit/resilient.hpp"
#include "util/rng.hpp"

namespace mobiweb::proxy {

struct ProxySessionConfig {
  // < 0: relevant document (full download); otherwise abort at threshold F.
  double relevance_threshold = -1.0;
  int max_rounds = 1000;  // safety valve on transmitted rounds
  transmit::RetryPolicy retry;
  std::uint64_t jitter_seed = 0x6a69747465ull;  // client-side backoff rng
  bool caching = true;  // keep intact packets across stalled rounds
  // Scripted cell switches (channel-clock instants). Each handoff advances
  // the client to the next proxy of the pool (round-robin) and charges
  // handoff_delay_s of attach latency.
  channel::HandoffSchedule handoffs;
  double handoff_delay_s = 0.3;
};

struct ProxySessionResult {
  transmit::SessionResult session;
  // Degraded-mode deliverable, as in ResilientResult. Empty when the session
  // degraded before any proxy could serve at all.
  transmit::PartialDocument partial;
  int request_attempts = 0;
  int timeouts = 0;
  int outages_ridden = 0;
  double backoff_total_s = 0.0;
  sim::ProxyStats proxy;         // edge-tier accounting (shared shape)
  std::uint32_t serving_proxy = 0;  // pool index serving at session end
};

class ProxyResilientSession {
 public:
  // `proxies` is the cell pool (non-empty, non-null entries); the session
  // starts attached to proxies[initial % size].
  ProxyResilientSession(std::vector<EdgeProxy*> proxies,
                        channel::WirelessChannel& channel,
                        ProxySessionConfig config = {},
                        std::size_t initial = 0);

  // Runs one document transfer to termination. Never hangs: every loop
  // either transmits a bounded round, consumes retry budget, or trips the
  // deadline (worst case kDegraded with whatever was decodable).
  ProxySessionResult run(const fleet::CacheKey& key);

 private:
  std::vector<EdgeProxy*> proxies_;
  channel::WirelessChannel* channel_;
  ProxySessionConfig config_;
  Rng jitter_rng_;
  std::size_t current_;
};

}  // namespace mobiweb::proxy
