#include "text/tokenize.hpp"

#include <cctype>

namespace mobiweb::text {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

bool is_word_joiner(char c) { return c == '\'' || c == '-'; }

}  // namespace

std::vector<std::string> tokenize_words(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    if (!is_word_char(s[i])) {
      ++i;
      continue;
    }
    std::string word;
    while (i < s.size()) {
      if (is_word_char(s[i])) {
        word.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(s[i]))));
        ++i;
      } else if (is_word_joiner(s[i]) && i + 1 < s.size() && is_word_char(s[i + 1])) {
        // Internal apostrophe/hyphen joins word parts ("client's", "e-mail").
        word.push_back(s[i]);
        ++i;
      } else {
        break;
      }
    }
    out.push_back(std::move(word));
  }
  return out;
}

std::vector<Token> tokenize(std::string_view s, bool emphasized) {
  std::vector<Token> out;
  for (auto& w : tokenize_words(s)) {
    out.push_back(Token{std::move(w), emphasized});
  }
  return out;
}

}  // namespace mobiweb::text
