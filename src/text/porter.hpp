// Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980) — the paper's "lemmatizer" stage, which
// "converts document words into their lemmatized form".
//
// This is a faithful port of the reference implementation, including the two
// published departures (bli->ble and logi->log in step 2).
#pragma once

#include <string>
#include <string_view>

namespace mobiweb::text {

// Stems a single lowercase word. Words of length <= 2 are returned unchanged.
// Non-alphabetic input is returned unchanged.
std::string porter_stem(std::string_view word);

}  // namespace mobiweb::text
