// Stop-word filtering — the paper's "word filter" stage that "eliminates
// non-meaning-bearing words, usually referred to as 'stop' words".
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace mobiweb::text {

// The built-in English stop-word list (lowercase).
const std::unordered_set<std::string>& default_stop_words();

class StopWordFilter {
 public:
  // Uses the built-in list.
  StopWordFilter();
  // Uses a custom list.
  explicit StopWordFilter(std::unordered_set<std::string> words);

  [[nodiscard]] bool is_stop_word(std::string_view word) const;

  void add(std::string word);
  void remove(std::string_view word);
  [[nodiscard]] std::size_t size() const { return words_.size(); }

  // Removes stop words from a token stream.
  [[nodiscard]] std::vector<std::string> filter(
      const std::vector<std::string>& words) const;

 private:
  std::unordered_set<std::string> words_;
};

}  // namespace mobiweb::text
