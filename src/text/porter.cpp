#include "text/porter.hpp"

#include <cctype>

#include "text/tokenize.hpp"

namespace mobiweb::text {

namespace {

// Port of Porter's reference C implementation. `b` holds the word; `k` is the
// index of the last live character; `j` marks the stem end set by ends().
// Indices are signed, exactly as in the reference, so boundary conditions
// (j == -1, i == -1) behave identically.
class Stemmer {
 public:
  explicit Stemmer(std::string word)
      : b_(std::move(word)), k_(static_cast<int>(b_.size()) - 1) {}

  std::string run() {
    if (k_ <= 1) return b_;
    step1ab();
    step1c();
    step2();
    step3();
    step4();
    step5();
    b_.resize(static_cast<std::size_t>(k_) + 1);
    return b_;
  }

 private:
  char at(int i) const { return b_[static_cast<std::size_t>(i)]; }
  char& at(int i) { return b_[static_cast<std::size_t>(i)]; }

  // True when b_[i] is a consonant.
  bool cons(int i) const {
    switch (at(i)) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        return false;
      case 'y':
        return (i == 0) ? true : !cons(i - 1);
      default:
        return true;
    }
  }

  // Number of consonant sequences in b_[0..j_].
  int measure() const {
    int n = 0;
    int i = 0;
    for (;;) {
      if (i > j_) return n;
      if (!cons(i)) break;
      ++i;
    }
    ++i;
    for (;;) {
      for (;;) {
        if (i > j_) return n;
        if (cons(i)) break;
        ++i;
      }
      ++i;
      ++n;
      for (;;) {
        if (i > j_) return n;
        if (!cons(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool vowel_in_stem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!cons(i)) return true;
    }
    return false;
  }

  // True when b_[i-1] == b_[i] and both are consonants.
  bool doublec(int i) const {
    if (i < 1) return false;
    if (at(i) != at(i - 1)) return false;
    return cons(i);
  }

  // consonant-vowel-consonant ending at i, final consonant not w/x/y;
  // signals that a trailing 'e' should be restored (e.g. cav(e), lov(e)).
  bool cvc(int i) const {
    if (i < 2 || !cons(i) || cons(i - 1) || !cons(i - 2)) return false;
    const char ch = at(i);
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool ends(std::string_view s) {
    const int len = static_cast<int>(s.size());
    if (len > k_ + 1) return false;
    if (b_.compare(static_cast<std::size_t>(k_ + 1 - len), s.size(), s) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  void set_to(std::string_view s) {
    b_.replace(static_cast<std::size_t>(j_ + 1),
               static_cast<std::size_t>(k_ - j_), s);
    k_ = j_ + static_cast<int>(s.size());
  }

  void replace_if_m_positive(std::string_view s) {
    if (measure() > 0) set_to(s);
  }

  void step1ab() {
    if (at(k_) == 's') {
      if (ends("sses")) {
        k_ -= 2;
      } else if (ends("ies")) {
        set_to("i");
      } else if (at(k_ - 1) != 's') {
        --k_;
      }
    }
    if (ends("eed")) {
      if (measure() > 0) --k_;
    } else if ((ends("ed") || ends("ing")) && vowel_in_stem()) {
      k_ = j_;
      if (ends("at")) {
        set_to("ate");
      } else if (ends("bl")) {
        set_to("ble");
      } else if (ends("iz")) {
        set_to("ize");
      } else if (doublec(k_)) {
        --k_;
        const char ch = at(k_);
        if (ch == 'l' || ch == 's' || ch == 'z') ++k_;
      } else if (measure() == 1 && cvc(k_)) {
        set_to("e");
      }
    }
  }

  void step1c() {
    if (ends("y") && vowel_in_stem()) at(k_) = 'i';
  }

  void step2() {
    if (k_ < 1) return;
    switch (at(k_ - 1)) {
      case 'a':
        if (ends("ational")) { replace_if_m_positive("ate"); return; }
        if (ends("tional")) { replace_if_m_positive("tion"); return; }
        return;
      case 'c':
        if (ends("enci")) { replace_if_m_positive("ence"); return; }
        if (ends("anci")) { replace_if_m_positive("ance"); return; }
        return;
      case 'e':
        if (ends("izer")) { replace_if_m_positive("ize"); return; }
        return;
      case 'l':
        if (ends("bli")) { replace_if_m_positive("ble"); return; }
        if (ends("alli")) { replace_if_m_positive("al"); return; }
        if (ends("entli")) { replace_if_m_positive("ent"); return; }
        if (ends("eli")) { replace_if_m_positive("e"); return; }
        if (ends("ousli")) { replace_if_m_positive("ous"); return; }
        return;
      case 'o':
        if (ends("ization")) { replace_if_m_positive("ize"); return; }
        if (ends("ation")) { replace_if_m_positive("ate"); return; }
        if (ends("ator")) { replace_if_m_positive("ate"); return; }
        return;
      case 's':
        if (ends("alism")) { replace_if_m_positive("al"); return; }
        if (ends("iveness")) { replace_if_m_positive("ive"); return; }
        if (ends("fulness")) { replace_if_m_positive("ful"); return; }
        if (ends("ousness")) { replace_if_m_positive("ous"); return; }
        return;
      case 't':
        if (ends("aliti")) { replace_if_m_positive("al"); return; }
        if (ends("iviti")) { replace_if_m_positive("ive"); return; }
        if (ends("biliti")) { replace_if_m_positive("ble"); return; }
        return;
      case 'g':
        if (ends("logi")) { replace_if_m_positive("log"); return; }
        return;
      default:
        return;
    }
  }

  void step3() {
    switch (at(k_)) {
      case 'e':
        if (ends("icate")) { replace_if_m_positive("ic"); return; }
        if (ends("ative")) { replace_if_m_positive(""); return; }
        if (ends("alize")) { replace_if_m_positive("al"); return; }
        return;
      case 'i':
        if (ends("iciti")) { replace_if_m_positive("ic"); return; }
        return;
      case 'l':
        if (ends("ical")) { replace_if_m_positive("ic"); return; }
        if (ends("ful")) { replace_if_m_positive(""); return; }
        return;
      case 's':
        if (ends("ness")) { replace_if_m_positive(""); return; }
        return;
      default:
        return;
    }
  }

  void step4() {
    if (k_ < 1) return;
    switch (at(k_ - 1)) {
      case 'a':
        if (ends("al")) break;
        return;
      case 'c':
        if (ends("ance")) break;
        if (ends("ence")) break;
        return;
      case 'e':
        if (ends("er")) break;
        return;
      case 'i':
        if (ends("ic")) break;
        return;
      case 'l':
        if (ends("able")) break;
        if (ends("ible")) break;
        return;
      case 'n':
        if (ends("ant")) break;
        if (ends("ement")) break;
        if (ends("ment")) break;
        if (ends("ent")) break;
        return;
      case 'o':
        if (ends("ion") && j_ >= 0 && (at(j_) == 's' || at(j_) == 't')) break;
        if (ends("ou")) break;
        return;
      case 's':
        if (ends("ism")) break;
        return;
      case 't':
        if (ends("ate")) break;
        if (ends("iti")) break;
        return;
      case 'u':
        if (ends("ous")) break;
        return;
      case 'v':
        if (ends("ive")) break;
        return;
      case 'z':
        if (ends("ize")) break;
        return;
      default:
        return;
    }
    if (measure() > 1) k_ = j_;
  }

  void step5() {
    j_ = k_;
    if (at(k_) == 'e') {
      const int a = measure();
      if (a > 1 || (a == 1 && !cvc(k_ - 1))) --k_;
    }
    if (at(k_) == 'l' && doublec(k_) && measure() > 1) --k_;
  }

  std::string b_;
  int k_;
  int j_ = 0;
};

}  // namespace

std::string porter_stem(std::string_view word) {
  if (word.size() <= 2) return std::string(word);
  for (char c : word) {
    if (!std::isalpha(static_cast<unsigned char>(c))) {
      // Tokens with digits/joiners ("19", "e-mail") pass through unstemmed.
      return std::string(word);
    }
  }
  return Stemmer(to_lower(word)).run();
}

}  // namespace mobiweb::text
