#include "text/stopwords.hpp"

namespace mobiweb::text {

const std::unordered_set<std::string>& default_stop_words() {
  static const std::unordered_set<std::string> kWords = {
      "a", "about", "above", "after", "again", "against", "all", "also", "am",
      "an", "and", "any", "are", "aren't", "as", "at", "be", "because", "been",
      "before", "being", "below", "between", "both", "but", "by", "can",
      "can't", "cannot", "could", "couldn't", "did", "didn't", "do", "does",
      "doesn't", "doing", "don't", "down", "during", "each", "either", "else",
      "etc", "ever", "every", "few", "for", "from", "further", "had", "hadn't",
      "has", "hasn't", "have", "haven't", "having", "he", "he'd", "he'll",
      "he's", "her", "here", "here's", "hers", "herself", "him", "himself",
      "his", "how", "how's", "however", "i", "i'd", "i'll", "i'm", "i've",
      "if", "in", "into", "is", "isn't", "it", "it's", "its", "itself",
      "let's", "may", "me", "might", "more", "most", "much", "must", "mustn't",
      "my", "myself", "neither", "no", "nor", "not", "of", "off", "on",
      "once", "one", "only", "or", "other", "ought", "our", "ours",
      "ourselves", "out", "over", "own", "per", "quite", "rather", "same",
      "shall", "shan't", "she", "she'd", "she'll", "she's", "should",
      "shouldn't", "since", "so", "some", "such", "than", "that", "that's",
      "the", "their", "theirs", "them", "themselves", "then", "there",
      "there's", "these", "they", "they'd", "they'll", "they're", "they've",
      "this", "those", "through", "thus", "to", "too", "under", "until", "up",
      "upon", "us", "very", "was", "wasn't", "we", "we'd", "we'll", "we're",
      "we've", "were", "weren't", "what", "what's", "when", "when's", "where",
      "where's", "which", "while", "who", "who's", "whom", "whose", "why",
      "why's", "will", "with", "within", "without", "won't", "would",
      "wouldn't", "yet", "you", "you'd", "you'll", "you're", "you've", "your",
      "yours", "yourself", "yourselves",
  };
  return kWords;
}

StopWordFilter::StopWordFilter() : words_(default_stop_words()) {}

StopWordFilter::StopWordFilter(std::unordered_set<std::string> words)
    : words_(std::move(words)) {}

bool StopWordFilter::is_stop_word(std::string_view word) const {
  return words_.contains(std::string(word));
}

void StopWordFilter::add(std::string word) { words_.insert(std::move(word)); }

void StopWordFilter::remove(std::string_view word) {
  words_.erase(std::string(word));
}

std::vector<std::string> StopWordFilter::filter(
    const std::vector<std::string>& words) const {
  std::vector<std::string> out;
  out.reserve(words.size());
  for (const auto& w : words) {
    if (!is_stop_word(w)) out.push_back(w);
  }
  return out;
}

}  // namespace mobiweb::text
