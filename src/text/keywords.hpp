// Keyword extraction — the paper's "keyword extractor" stage: frequency
// analysis over lemmatized, stop-filtered words, with specially formatted
// (emphasized) words always qualifying as keywords.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "text/stopwords.hpp"
#include "text/tokenize.hpp"

namespace mobiweb::text {

// Term -> occurrence count. This is the occurrence vector V_D of §3.1 in map
// form; the norm used by the weighting scheme is the infinity norm.
struct TermCounts {
  std::unordered_map<std::string, long> counts;

  [[nodiscard]] long count(std::string_view term) const;
  [[nodiscard]] long total() const;          // sum of all occurrences
  [[nodiscard]] long max_count() const;      // infinity norm of V_D
  [[nodiscard]] std::size_t distinct() const { return counts.size(); }

  void add(const std::string& term, long n = 1);
  void merge(const TermCounts& other);

  // Deterministic order (by descending count, then term) for display.
  [[nodiscard]] std::vector<std::pair<std::string, long>> sorted() const;
};

struct KeywordOptions {
  bool stem = true;              // run the Porter lemmatizer
  bool drop_stop_words = true;   // run the word filter
  std::size_t min_word_length = 2;
  // Words seen emphasized anywhere in the input always qualify as keywords
  // even if they would otherwise be dropped (e.g. too short).
  bool emphasis_qualifies = true;
};

class KeywordExtractor {
 public:
  explicit KeywordExtractor(KeywordOptions options = {},
                            StopWordFilter filter = StopWordFilter());

  // Normalizes one raw word to its keyword form; returns empty string when
  // the word is filtered out (stop word / too short).
  [[nodiscard]] std::string normalize(std::string_view word,
                                      bool emphasized = false) const;

  // Full pipeline over a token stream.
  [[nodiscard]] TermCounts extract(const std::vector<Token>& tokens) const;

  // Convenience: tokenize + extract over plain text.
  [[nodiscard]] TermCounts extract_text(std::string_view text) const;

  [[nodiscard]] const KeywordOptions& options() const { return options_; }
  [[nodiscard]] const StopWordFilter& stop_words() const { return filter_; }

 private:
  KeywordOptions options_;
  StopWordFilter filter_;
};

}  // namespace mobiweb::text
