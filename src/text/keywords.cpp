#include "text/keywords.hpp"

#include <algorithm>

#include "text/porter.hpp"

namespace mobiweb::text {

long TermCounts::count(std::string_view term) const {
  const auto it = counts.find(std::string(term));
  return it == counts.end() ? 0 : it->second;
}

long TermCounts::total() const {
  long t = 0;
  for (const auto& [term, n] : counts) t += n;
  return t;
}

long TermCounts::max_count() const {
  long m = 0;
  for (const auto& [term, n] : counts) m = std::max(m, n);
  return m;
}

void TermCounts::add(const std::string& term, long n) { counts[term] += n; }

void TermCounts::merge(const TermCounts& other) {
  for (const auto& [term, n] : other.counts) counts[term] += n;
}

std::vector<std::pair<std::string, long>> TermCounts::sorted() const {
  std::vector<std::pair<std::string, long>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

KeywordExtractor::KeywordExtractor(KeywordOptions options, StopWordFilter filter)
    : options_(options), filter_(std::move(filter)) {}

std::string KeywordExtractor::normalize(std::string_view word, bool emphasized) const {
  const std::string lowered = to_lower(word);
  const bool privileged = emphasized && options_.emphasis_qualifies;
  if (!privileged) {
    if (lowered.size() < options_.min_word_length) return {};
    if (options_.drop_stop_words && filter_.is_stop_word(lowered)) return {};
  }
  return options_.stem ? porter_stem(lowered) : lowered;
}

TermCounts KeywordExtractor::extract(const std::vector<Token>& tokens) const {
  TermCounts out;
  for (const auto& token : tokens) {
    std::string key = normalize(token.word, token.emphasized);
    if (!key.empty()) out.add(key);
  }
  return out;
}

TermCounts KeywordExtractor::extract_text(std::string_view text) const {
  return extract(tokenize(text));
}

}  // namespace mobiweb::text
