// Word tokenization for the keyword pipeline.
//
// Words are maximal runs of ASCII letters/digits (with internal apostrophes
// and hyphens), lowercased. The tokenizer also carries an "emphasized" flag so
// that specially formatted words (bold/italic in the source markup) can
// qualify as keywords per paper §3.3.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mobiweb::text {

struct Token {
  std::string word;        // lowercased
  bool emphasized = false; // set by callers tokenizing <em>/<b>/... content

  bool operator==(const Token&) const = default;
};

// Lowercases ASCII letters; leaves other bytes unchanged.
std::string to_lower(std::string_view s);

// Splits `s` into lowercase word tokens.
std::vector<std::string> tokenize_words(std::string_view s);

// Same, attaching the given emphasis flag to every token.
std::vector<Token> tokenize(std::string_view s, bool emphasized = false);

}  // namespace mobiweb::text
