#include "core/prefetch.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace mobiweb {

bool DocumentCache::contains(std::string_view url) const {
  return texts_.find(url) != texts_.end();
}

std::optional<std::string> DocumentCache::get(std::string_view url) const {
  const auto it = texts_.find(url);
  if (it == texts_.end()) return std::nullopt;
  return it->second;
}

void DocumentCache::put(const std::string& url, std::string text) {
  const auto it = texts_.find(url);
  if (it != texts_.end()) {
    bytes_ -= it->second.size();
    it->second = std::move(text);
    bytes_ += it->second.size();
    return;
  }
  bytes_ += text.size();
  texts_.emplace(url, std::move(text));
}

void DocumentCache::evict(std::string_view url) {
  const auto it = texts_.find(url);
  if (it == texts_.end()) return;
  bytes_ -= it->second.size();
  texts_.erase(it);
}

void DocumentCache::trim(std::size_t max_bytes,
                         const std::map<std::string, double>& scores) {
  if (bytes_ <= max_bytes) return;
  std::vector<std::pair<double, std::string>> order;
  order.reserve(texts_.size());
  for (const auto& [url, text] : texts_) {
    const auto it = scores.find(url);
    order.emplace_back(it == scores.end() ? 0.0 : it->second, url);
  }
  std::sort(order.begin(), order.end());  // lowest score first
  for (const auto& [score, url] : order) {
    if (bytes_ <= max_bytes) break;
    evict(url);
  }
}

Prefetcher::Prefetcher(const Server& server, BrowseSession& session,
                       DocumentCache& cache, PrefetchConfig config)
    : server_(&server), session_(&session), cache_(&cache), config_(config) {}

PrefetchOutcome Prefetcher::run_idle(const doc::UserProfile& profile,
                                     double idle_budget_s,
                                     const std::set<std::string>& exclude) {
  MOBIWEB_CHECK_MSG(idle_budget_s >= 0.0, "Prefetcher: negative idle budget");
  PrefetchOutcome outcome;

  // Rank candidates by profile score.
  struct Candidate {
    std::string url;
    double score;
  };
  std::vector<Candidate> candidates;
  for (const auto& url : server_->urls()) {
    if (cache_->contains(url) || exclude.contains(url)) continue;
    const auto* sc = server_->find(url);
    const double score = profile.score(*sc);
    if (score > config_.min_score) candidates.push_back({url, score});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.score > b.score;
                   });

  const double start = session_->now();
  long failed = 0;
  for (const auto& candidate : candidates) {
    if (outcome.fetched >= static_cast<int>(config_.max_documents_per_idle)) break;
    if (session_->now() - start >= idle_budget_s) break;
    FetchOptions opts;
    opts.lod = doc::Lod::kParagraph;
    opts.rank = doc::RankBy::kIc;
    const FetchResult r = session_->fetch(candidate.url, opts);
    if (r.session.completed) {
      cache_->put(candidate.url, r.text);
      ++outcome.fetched;
    } else {
      ++failed;
    }
  }
  outcome.airtime_used = session_->now() - start;
  if (metrics_ != nullptr) {
    metrics_->counter("prefetch.runs").inc();
    metrics_->counter("prefetch.fetched").inc(outcome.fetched);
    metrics_->counter("prefetch.failed").inc(failed);
    metrics_->gauge("prefetch.cache_documents")
        .set(static_cast<double>(cache_->documents()));
    metrics_->gauge("prefetch.cache_bytes")
        .set(static_cast<double>(cache_->bytes()));
    metrics_
        ->histogram("prefetch.airtime_s",
                    {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0})
        .observe(outcome.airtime_used);
  }
  return outcome;
}

void Prefetcher::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
}

}  // namespace mobiweb
