#include "core/mobiweb.hpp"

#include <algorithm>
#include <stdexcept>

#include "doc/recognizer.hpp"
#include "html/structurer.hpp"
#include "obs/profile.hpp"
#include "util/lzss.hpp"
#include "xml/parser.hpp"

namespace mobiweb {

Server::Server(ServerConfig config)
    : config_(config), generator_(config_.sc) {}

void Server::publish_xml(const std::string& url, std::string_view xml_text) {
  const xml::Document parsed = xml::parse(xml_text);
  documents_.insert_or_assign(url, generator_.generate(parsed));
}

void Server::publish_html(const std::string& url, std::string_view html_text) {
  doc::OrgUnit tree = html::structure_html(html_text);
  documents_.insert_or_assign(url, generator_.generate(std::move(tree)));
}

void Server::publish_tree(const std::string& url, doc::OrgUnit tree) {
  documents_.insert_or_assign(url, generator_.generate(std::move(tree)));
}

std::vector<std::string> Server::urls() const {
  std::vector<std::string> out;
  out.reserve(documents_.size());
  for (const auto& [url, sc] : documents_) out.push_back(url);
  return out;
}

const doc::StructuralCharacteristic* Server::find(std::string_view url) const {
  const auto it = documents_.find(url);
  return it == documents_.end() ? nullptr : &it->second;
}

doc::Query Server::make_query(std::string_view query_text) const {
  return doc::Query::from_text(query_text, generator_.extractor());
}

std::vector<Server::SearchHit> Server::search(std::string_view query_text) const {
  const doc::Query query = make_query(query_text);
  std::vector<SearchHit> hits;
  for (const auto& [url, sc] : documents_) {
    const doc::ContentScorer scorer(sc, query);
    if (!scorer.query_matches()) continue;
    // Root QIC is 1 by normalization whenever any query word matches, so we
    // score by the un-normalized query mass the document carries: the QIC
    // numerator relative to the document's weighted total. This ranks
    // documents against each other, not units within one document.
    double mass = 0.0;
    for (const auto& [term, q_count] : query.terms().counts) {
      (void)q_count;
      const long d_count = sc.document_terms().count(term);
      if (d_count <= 0) continue;
      mass += static_cast<double>(d_count) * sc.weight(term) * query.weight(term);
    }
    if (sc.weighted_total() > 0.0) mass /= sc.weighted_total();
    if (mass > 0.0) hits.push_back(SearchHit{url, mass});
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [](const SearchHit& a, const SearchHit& b) {
                     return a.score > b.score;
                   });
  return hits;
}

BrowseSession::BrowseSession(const Server& server, BrowseConfig config)
    : server_(&server), config_(config), adaptive_(config.adaptive) {
  channel::ChannelConfig cc;
  cc.bandwidth_bps = config_.bandwidth_bps;
  cc.propagation_delay_s = config_.propagation_delay_s;
  cc.seed = config_.seed;
  cc.feedback_loss_rate = config_.feedback_loss_rate;
  cc.feedback_delay_s = config_.feedback_delay_s;
  channel_ = std::make_unique<channel::WirelessChannel>(
      cc, std::make_unique<channel::IidErrorModel>(config_.alpha));
  if (config_.outage != nullptr) channel_->set_outage(config_.outage->clone());
}

void BrowseSession::attach_collector(obs::Collector* collector) {
  collector_ = collector;
  channel_->set_metrics(collector != nullptr ? &collector->metrics() : nullptr);
}

FetchResult BrowseSession::fetch(std::string_view url, const FetchOptions& options) {
  const doc::StructuralCharacteristic* sc = server_->find(url);
  if (sc == nullptr) {
    throw std::out_of_range("BrowseSession::fetch: unknown url '" +
                            std::string(url) + "'");
  }

  // Rank units (the server side of §4.2).
  doc::LinearizeOptions lin;
  lin.lod = options.lod;
  lin.rank = options.rank;
  lin.compress = options.compress;
  std::optional<doc::ContentScorer> scorer;
  if (options.rank == doc::RankBy::kQic || options.rank == doc::RankBy::kMqic) {
    scorer.emplace(*sc, server_->make_query(options.query));
    lin.scorer = &*scorer;
  }
  doc::LinearDocument linear = doc::linearize(*sc, lin);

  // Choose γ; the adaptive controller needs M, i.e. the payload size.
  const std::size_t m_estimate =
      ida::packet_count(linear.payload.size(), config_.packet_size);
  const double gamma =
      config_.adaptive_gamma
          ? adaptive_.gamma(static_cast<int>(m_estimate))
          : config_.fixed_gamma;

  transmit::TransmitterConfig tc;
  tc.packet_size = config_.packet_size;
  tc.gamma = gamma;
  tc.doc_id = next_doc_id_++;
  if (next_doc_id_ == 0) next_doc_id_ = 1;  // wrap, doc_id 0 reserved
  transmit::DocumentTransmitter transmitter(std::move(linear), tc);

  transmit::ReceiverConfig rc;
  rc.doc_id = tc.doc_id;
  rc.m = transmitter.m();
  rc.n = transmitter.n();
  rc.packet_size = config_.packet_size;
  rc.payload_size = transmitter.payload_size();
  rc.caching = config_.caching;
  transmit::ClientReceiver receiver(rc, transmitter.document().segments);
  if (options.render_hook) receiver.set_render_hook(options.render_hook);

  obs::SessionTrace* trace = nullptr;
  if (collector_ != nullptr) trace = &collector_->begin_trace(std::string(url));

  FetchResult result;
  const bool compressed_units = transmitter.document().compressed_units;
  if (config_.resilient) {
    transmit::ResilientConfig rcfg;
    rcfg.relevance_threshold = options.relevance_threshold;
    rcfg.retry = config_.retry;
    rcfg.trace = trace;
    transmit::ResilientSession session(transmitter, receiver, *channel_, rcfg);
    transmit::ResilientResult rr = session.run();
    result.session = rr.session;
    result.partial = std::move(rr.partial);
    result.request_attempts = rr.request_attempts;
    result.timeouts = rr.timeouts;
    result.outages_ridden = rr.outages_ridden;
    result.backoff_total_s = rr.backoff_total_s;
  } else {
    transmit::SessionConfig scfg;
    scfg.relevance_threshold = options.relevance_threshold;
    scfg.trace = trace;
    transmit::TransferSession session(transmitter, receiver, *channel_, scfg);
    result.session = session.run();
  }
  result.m = transmitter.m();
  result.n = transmitter.n();
  result.gamma = gamma;
  result.segments = transmitter.document().segments;
  if (receiver.complete()) {
    doc::LinearDocument reconstructed;
    reconstructed.payload = receiver.reconstruct();
    reconstructed.segments = transmitter.document().segments;
    reconstructed.compressed_units = compressed_units;
    result.text = doc::reassemble_text(reconstructed);
  } else if (!result.partial.empty()) {
    // Degraded delivery: render what is already fully clear, in rank order.
    // Units crossed the air individually (possibly compressed), so they
    // decompress independently — a missing unit cannot corrupt its neighbors.
    for (const transmit::PartialUnit& unit : result.partial.units) {
      if (compressed_units) {
        MOBIWEB_PROFILE_SCOPE("lzss.decompress");
        const Bytes raw = lzss_decompress(ByteSpan(unit.bytes));
        result.text.append(raw.begin(), raw.end());
      } else {
        result.text.append(unit.bytes.begin(), unit.bytes.end());
      }
    }
  }

  // Feed the corruption rate the *client* observed back into the adaptive
  // controller — the receiver's estimate excludes foreign frames, so a shared
  // channel cannot skew gamma.
  if (receiver.frames_seen() > 0) {
    adaptive_.observe(receiver.observed_corruption_rate());
  }
  if (trace != nullptr) collector_->finish_trace(*trace);
  return result;
}

}  // namespace mobiweb
