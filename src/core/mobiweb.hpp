// mobiweb — public facade.
//
// Ties the substrates together into the paper's prototype architecture
// (Figure 1): a Server holding documents with their Structural
// Characteristics (the "database gateway" + "document transmitter"), and a
// BrowseSession pairing a mobile client with the server across a simulated
// weakly-connected wireless channel (the "sequence manager" + "rendering
// manager" side).
//
// Typical use (see examples/quickstart.cpp):
//
//   mobiweb::Server server;
//   server.publish_xml("doc://paper", xml_text);
//   mobiweb::BrowseSession session(server, {.alpha = 0.3});
//   auto result = session.fetch("doc://paper", {.query = "mobile web"});
//
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "channel/channel.hpp"
#include "channel/outage.hpp"
#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "obs/trace.hpp"
#include "transmit/adaptive.hpp"
#include "transmit/receiver.hpp"
#include "transmit/resilient.hpp"
#include "transmit/session.hpp"
#include "transmit/transmitter.hpp"

namespace mobiweb {

struct ServerConfig {
  doc::ScOptions sc;  // keyword pipeline configuration
};

// Document store + SC generation + search. Not thread-safe (one server per
// simulation/session, as in the prototype).
class Server {
 public:
  explicit Server(ServerConfig config = {});

  // Publishes a document; any previous document under `url` is replaced.
  void publish_xml(const std::string& url, std::string_view xml_text);
  void publish_html(const std::string& url, std::string_view html_text);
  void publish_tree(const std::string& url, doc::OrgUnit tree);

  [[nodiscard]] std::vector<std::string> urls() const;
  [[nodiscard]] const doc::StructuralCharacteristic* find(std::string_view url) const;
  [[nodiscard]] std::size_t size() const { return documents_.size(); }

  // Keyword search over the published documents: documents are scored by the
  // QIC of their root unit (i.e. how much of the weighted query mass the
  // document carries) and returned in descending order; non-matching
  // documents are omitted.
  struct SearchHit {
    std::string url;
    double score;
  };
  [[nodiscard]] std::vector<SearchHit> search(std::string_view query_text) const;

  // Builds a Query through the server's keyword pipeline (stemming and stop
  // words consistent with document indexing).
  [[nodiscard]] doc::Query make_query(std::string_view query_text) const;

  [[nodiscard]] const doc::ScGenerator& generator() const { return generator_; }

 private:
  ServerConfig config_;
  doc::ScGenerator generator_;
  std::map<std::string, doc::StructuralCharacteristic, std::less<>> documents_;
};

struct BrowseConfig {
  double bandwidth_bps = 19200.0;
  double alpha = 0.1;                 // iid corruption probability
  double propagation_delay_s = 0.0;
  std::uint64_t seed = 7;
  std::size_t packet_size = 256;
  bool caching = true;
  // When true, γ follows the adaptive EWMA controller; otherwise fixed_gamma.
  bool adaptive_gamma = false;
  double fixed_gamma = 1.5;
  transmit::AdaptiveGammaConfig adaptive;
  // Weak-connectivity fault injection. `outage` (cloned into the channel, so
  // the caller's model is untouched) makes the link fade on/off: frames sent
  // while it is down are lost outright. The feedback knobs make the back
  // channel lossy/slow — retransmission requests are dropped with
  // `feedback_loss_rate` (or when the link is down) and otherwise cost
  // `feedback_delay_s` of one-way latency.
  const channel::OutageModel* outage = nullptr;
  double feedback_loss_rate = 0.0;
  double feedback_delay_s = 0.0;
  // When true, fetch() drives transfers through a ResilientSession: timed-out
  // retransmission requests are retried with exponential backoff + jitter,
  // outages suspend the session (resuming from the receiver's packet cache),
  // and exhausting `retry` degrades gracefully into FetchResult::partial
  // instead of hanging or returning nothing.
  bool resilient = false;
  transmit::RetryPolicy retry;
};

struct FetchOptions {
  doc::Lod lod = doc::Lod::kParagraph;
  doc::RankBy rank = doc::RankBy::kIc;
  std::string query;                  // used for kQic / kMqic ranking
  // < 0: relevant document, download fully; otherwise stop at threshold F.
  double relevance_threshold = -1.0;
  // LZSS-compress each unit before dispersal (the prototype's compression
  // interceptor): fewer packets on the air, same fault tolerance.
  bool compress = false;
  // Called for every newly displayable clear-text fragment, in arrival order.
  std::function<void(std::size_t raw_index, ByteSpan bytes)> render_hook;
};

struct FetchResult {
  transmit::SessionResult session;
  // Reconstructed document text. Full document when the transfer completed;
  // for a resilient fetch that ended Degraded/GaveUp, the renderable prefix
  // assembled from `partial` (decompressed when the units were compressed).
  std::string text;
  // The transmission plan actually used.
  std::size_t m = 0;
  std::size_t n = 0;
  double gamma = 0.0;
  std::vector<doc::Segment> segments;
  // Degraded-mode delivery (resilient fetches): every unit that is already
  // fully renderable from clear-text packets, in transmission (rank) order.
  transmit::PartialDocument partial;
  // Resilient-driver effort counters (zero for plain fetches).
  int request_attempts = 0;
  int timeouts = 0;
  int outages_ridden = 0;
  double backoff_total_s = 0.0;
};

// A client browsing documents from one Server over one wireless channel.
class BrowseSession {
 public:
  BrowseSession(const Server& server, BrowseConfig config = {});

  // Fetches a document with fault-tolerant multi-resolution transmission.
  // Throws std::out_of_range when the URL is unknown.
  FetchResult fetch(std::string_view url, const FetchOptions& options = {});

  [[nodiscard]] const channel::WirelessChannel& channel() const { return *channel_; }
  [[nodiscard]] const transmit::AdaptiveGamma& adaptive_gamma() const { return adaptive_; }
  [[nodiscard]] double now() const { return channel_->now(); }

  // Attaches an observability collector: every subsequent fetch records a
  // SessionTrace labelled with its URL, aggregates it into the collector's
  // metrics, and the channel feeds the collector's counters. nullptr
  // detaches (the default — fetches then run with no-op sinks).
  void attach_collector(obs::Collector* collector);
  [[nodiscard]] obs::Collector* collector() const { return collector_; }

 private:
  const Server* server_;
  BrowseConfig config_;
  std::unique_ptr<channel::WirelessChannel> channel_;
  transmit::AdaptiveGamma adaptive_;
  obs::Collector* collector_ = nullptr;
  std::uint16_t next_doc_id_ = 1;
};

}  // namespace mobiweb
