// Profile-driven prefetching over idle wireless bandwidth — the paper's
// future-work feature: "we are also investigating intelligent prefetching
// based on information content and user-profiling, utilizing the unused
// wireless bandwidth being left idle."
//
// Between user requests the channel sits idle; the Prefetcher spends that
// idle airtime fetching the documents the UserProfile scores highest into a
// client-side DocumentCache. A later fetch of a cached document costs zero
// airtime.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>

#include "core/mobiweb.hpp"
#include "doc/profile.hpp"
#include "obs/metrics.hpp"

namespace mobiweb {

// Client-side store of fully reconstructed documents.
class DocumentCache {
 public:
  [[nodiscard]] bool contains(std::string_view url) const;
  [[nodiscard]] std::optional<std::string> get(std::string_view url) const;
  void put(const std::string& url, std::string text);
  void evict(std::string_view url);

  [[nodiscard]] std::size_t documents() const { return texts_.size(); }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }

  // Evicts lowest-priority documents (by the given scores) until the cache
  // holds at most `max_bytes`. Unknown urls score 0.
  void trim(std::size_t max_bytes, const std::map<std::string, double>& scores);

 private:
  std::map<std::string, std::string, std::less<>> texts_;
  std::size_t bytes_ = 0;
};

struct PrefetchConfig {
  // Only documents the profile scores above this are worth idle airtime.
  double min_score = 0.0;
  std::size_t max_documents_per_idle = 4;
};

struct PrefetchOutcome {
  int fetched = 0;
  double airtime_used = 0.0;
};

class Prefetcher {
 public:
  Prefetcher(const Server& server, BrowseSession& session, DocumentCache& cache,
             PrefetchConfig config = {});

  // Spends up to `idle_budget_s` of channel time prefetching the
  // highest-profile-scored documents that are neither cached nor in
  // `exclude`. Stops early when the budget or candidate list runs out.
  PrefetchOutcome run_idle(const doc::UserProfile& profile, double idle_budget_s,
                           const std::set<std::string>& exclude = {});

  // Publishes prefetch activity into `registry` (counters
  // prefetch.runs / prefetch.fetched / prefetch.failed, gauges
  // prefetch.cache_documents / prefetch.cache_bytes, histogram
  // prefetch.airtime_s). nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  const Server* server_;
  BrowseSession* session_;
  DocumentCache* cache_;
  PrefetchConfig config_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace mobiweb
