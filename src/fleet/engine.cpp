#include "fleet/engine.hpp"

#include <algorithm>
#include <chrono>
#include <queue>

#include "obs/profile.hpp"
#include "util/check.hpp"

namespace mobiweb::fleet {

namespace {

// Per-session live state. Kept small on purpose: ~150 bytes per session means
// a 1M-session fleet fits in ~150 MB, and the per-frame work is one Bernoulli
// draw plus bitmap arithmetic — no per-session byte copies (cooked frames are
// shared read-only out of the DocumentCache).
struct Session {
  Rng rng{0};
  const CookedDocument* doc = nullptr;
  double clock = 0.0;        // absolute simulated time
  double start = 0.0;
  double content = 0.0;
  double stall_delay = 0.0;
  double time_per_frame = 0.0;
  long frames = 0;
  std::uint64_t seen[4] = {0, 0, 0, 0};  // n <= 255 cooked packets
  int intact = 0;
  int rounds = 0;

  [[nodiscard]] bool test_seen(int i) const {
    return (seen[i >> 6] >> (i & 63)) & 1u;
  }
  void mark_seen(int i) { seen[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset_cache() {
    seen[0] = seen[1] = seen[2] = seen[3] = 0;
    intact = 0;
    content = 0.0;
  }
};

// Min-heap event: next round of session `index` fires at time `t`. Ties break
// on the session index so processing order is deterministic.
struct Event {
  double t = 0.0;
  std::uint32_t index = 0;
  friend bool operator>(const Event& a, const Event& b) {
    if (a.t != b.t) return a.t > b.t;
    return a.index > b.index;
  }
};

struct ShardTotals {
  long completed = 0;
  long gave_up = 0;
  long aborted_irrelevant = 0;
  long frames = 0;
  long rounds = 0;
  unsigned long long bytes = 0;
  double content = 0.0;
  double session_time_s = 0.0;
  double makespan_s = 0.0;
};

// Pre-resolved metric series; shards record into them concurrently (the
// registry's instruments are thread-safe, see obs/metrics.hpp).
struct FleetMetrics {
  obs::Counter* sessions = nullptr;
  obs::Counter* completed = nullptr;
  obs::Counter* gave_up = nullptr;
  obs::Counter* aborted = nullptr;
  obs::Counter* frames = nullptr;
  obs::Histogram* session_time = nullptr;
};

}  // namespace

std::uint64_t session_seed(std::uint64_t fleet_seed, std::uint64_t session) {
  SplitMix64 mix(fleet_seed ^ (0xD1B54A32D192ED03ull * (session + 1)));
  mix.next();
  return mix.next();
}

FleetEngine::FleetEngine(FleetConfig config)
    : config_(std::move(config)), cache_(config_.corpus) {
  MOBIWEB_CHECK_MSG(!config_.gammas.empty(), "FleetEngine: no gammas");
  MOBIWEB_CHECK_MSG(config_.alpha >= 0.0 && config_.alpha < 1.0,
                    "FleetEngine: alpha in [0,1)");
  MOBIWEB_CHECK_MSG(config_.max_rounds >= 1, "FleetEngine: max_rounds >= 1");
  MOBIWEB_CHECK_MSG(config_.bandwidth_bps > 0.0, "FleetEngine: bandwidth > 0");
}

FleetResult FleetEngine::run(ThreadPool* pool) {
  MOBIWEB_PROFILE_SCOPE("fleet.run");
  const auto wall_start = std::chrono::steady_clock::now();
  if (pool == nullptr) pool = &ThreadPool::global();

  const std::size_t sessions = config_.sessions;
  FleetResult result;
  result.sessions = sessions;
  if (sessions == 0) return result;

  std::size_t shards = config_.shards != 0 ? config_.shards : pool->concurrency();
  shards = std::min(std::max<std::size_t>(shards, 1), sessions);
  result.shards = shards;

  const std::size_t corpus = config_.corpus.corpus_size;
  const std::size_t n_gammas = config_.gammas.size();
  const auto key_of = [&](std::size_t i) {
    return CacheKey{static_cast<std::uint32_t>(i % corpus),
                    config_.gammas[i % n_gammas]};
  };

  // Warm every (document, γ) the fleet will touch in one batched burst, so
  // the IDA encodes run back-to-back on the pool instead of faulting in
  // lazily underneath 100k sessions.
  {
    std::vector<CacheKey> keys;
    const std::size_t distinct = std::min(sessions, corpus * n_gammas);
    keys.reserve(distinct);
    for (std::size_t i = 0; i < distinct; ++i) keys.push_back(key_of(i));
    cache_.prefill(keys, pool);
  }

  FleetMetrics fm;
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *config_.metrics;
    fm.sessions = &reg.counter("fleet.sessions");
    fm.completed = &reg.counter("fleet.sessions_completed");
    fm.gave_up = &reg.counter("fleet.sessions_gave_up");
    fm.aborted = &reg.counter("fleet.sessions_aborted_irrelevant");
    fm.frames = &reg.counter("fleet.frames_sent");
    fm.session_time = &reg.histogram(
        "fleet.session_time_s",
        {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0});
  }

  std::vector<ShardTotals> totals(shards);
  if (config_.record_outcomes) result.outcomes.resize(sessions);
  const std::size_t per_shard = (sessions + shards - 1) / shards;
  const bool relevance_check = config_.relevance_threshold >= 0.0;

  pool->run(shards, [&](std::size_t shard) {
    const std::size_t lo = shard * per_shard;
    const std::size_t hi = std::min(sessions, lo + per_shard);
    if (lo >= hi) return;
    ShardTotals& tot = totals[shard];

    // Materialize this shard's slice of sessions and seed its event heap.
    std::vector<Session> states(hi - lo);
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap;
    for (std::size_t i = lo; i < hi; ++i) {
      Session& s = states[i - lo];
      s.rng.reseed(session_seed(config_.seed, i));
      s.doc = cache_.get(key_of(i)).get();  // cache outlives the run
      s.time_per_frame =
          static_cast<double>(s.doc->frame_size) * 8.0 / config_.bandwidth_bps;
      s.start = sessions > 1 ? config_.arrival_spread_s *
                                   (static_cast<double>(i) /
                                    static_cast<double>(sessions))
                             : 0.0;
      s.clock = s.start;
      heap.push(Event{s.start, static_cast<std::uint32_t>(i)});
    }

    const auto finish = [&](std::size_t index, Session& s, double received,
                            bool completed, bool aborted, bool gave_up) {
      sim::TransferResult r;
      r.packets = s.frames;
      r.rounds = s.rounds;
      r.completed = completed;
      r.aborted_irrelevant = aborted;
      r.gave_up = gave_up;
      r.content = received;
      r.time = static_cast<double>(s.frames) * s.time_per_frame + s.stall_delay;
      tot.completed += completed ? 1 : 0;
      tot.gave_up += gave_up ? 1 : 0;
      tot.aborted_irrelevant += aborted ? 1 : 0;
      tot.frames += s.frames;
      tot.rounds += s.rounds;
      tot.bytes += static_cast<unsigned long long>(s.frames) * s.doc->frame_size;
      tot.content += received;
      tot.session_time_s += r.time;
      tot.makespan_s = std::max(tot.makespan_s, s.start + r.time);
      if (fm.sessions != nullptr) {
        fm.sessions->inc();
        if (completed) fm.completed->inc();
        if (gave_up) fm.gave_up->inc();
        if (aborted) fm.aborted->inc();
        fm.frames->inc(s.frames);
        fm.session_time->observe(r.time);
      }
      if (config_.record_outcomes) {
        result.outcomes[index] =
            SessionOutcome{static_cast<std::uint32_t>(index), key_of(index),
                           s.start, r};
      }
    };

    // Drain the heap: one event = one transmission round. The state machine
    // below is sim::simulate_transfer's round body verbatim (same draw order,
    // same check precedence), which is what makes the per-session parity
    // tests exact.
    while (!heap.empty()) {
      const Event ev = heap.top();
      heap.pop();
      Session& s = states[ev.index - lo];
      const CookedDocument& doc = *s.doc;
      const int m = static_cast<int>(doc.transmitter.m());
      const int n = static_cast<int>(doc.transmitter.n());

      ++s.rounds;
      bool terminal = false;
      for (int i = 0; i < n && !terminal; ++i) {
        ++s.frames;
        s.clock += s.time_per_frame;
        const bool corrupted = s.rng.next_bernoulli(config_.alpha);
        if (!corrupted && !s.test_seen(i)) {
          s.mark_seen(i);
          ++s.intact;
          if (i < m) s.content += doc.clear_content[static_cast<std::size_t>(i)];
        }
        // Reconstruction (condition 1) outranks the relevance abort
        // (condition 3) when one frame triggers both — as in TransferSession.
        if (s.intact >= m) {
          finish(ev.index, s, doc.total_content, true, false, false);
          terminal = true;
        } else if (relevance_check && s.content >= config_.relevance_threshold) {
          finish(ev.index, s, s.content, false, true, false);
          terminal = true;
        }
      }
      if (terminal) continue;
      // Stalled round: give up at the cap, otherwise charge one request delay
      // and reschedule the next round.
      if (s.rounds == config_.max_rounds) {
        finish(ev.index, s, s.content, false, false, true);
        continue;
      }
      s.clock += config_.request_delay;
      s.stall_delay += config_.request_delay;
      if (!config_.caching) s.reset_cache();
      heap.push(Event{s.clock, ev.index});
    }
  });

  // Merge in shard order: deterministic for a fixed shard count; integer
  // aggregates are order-independent, so they match across shard counts too.
  for (const ShardTotals& tot : totals) {
    result.completed += tot.completed;
    result.gave_up += tot.gave_up;
    result.aborted_irrelevant += tot.aborted_irrelevant;
    result.frames_sent += tot.frames;
    result.rounds += tot.rounds;
    result.bytes_sent += tot.bytes;
    result.content += tot.content;
    result.session_time_s += tot.session_time_s;
    result.makespan_s = std::max(result.makespan_s, tot.makespan_s);
  }
  result.cache_hits = cache_.hits();
  result.cache_misses = cache_.misses();
  result.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return result;
}

}  // namespace mobiweb::fleet
