#include "fleet/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <queue>

#include "obs/flight.hpp"
#include "obs/profile.hpp"
#include "util/check.hpp"

namespace mobiweb::fleet {

namespace {

// Per-session live state. Kept small on purpose: ~200 bytes per session means
// a 1M-session fleet fits in a couple hundred MB, and the per-frame work is
// one Bernoulli draw plus bitmap arithmetic — no per-session byte copies
// (cooked frames are shared read-only out of the DocumentCache).
// Edge-tier per-session state; allocated only when FleetConfig::proxy is set
// so non-proxied fleets pay one pointer, not ~150 bytes, per session. Mirrors
// sim::simulate_proxied_transfer's serving-replica variables exactly.
struct ProxyState {
  Rng proxy_rng{0};                            // warm/age/handoff draws
  std::unique_ptr<channel::OutageModel> origin;  // nullptr = origin always up
  Rng origin_rng{0};
  bool attached = false;      // initial proxy acquire ran (first event)
  bool has_replica = false;
  bool serving_stale = false;
  std::uint64_t replica_gen = 0;
  std::uint64_t held_gen = 0;
  sim::ProxyStats stats;
};

struct Session {
  Rng rng{0};
  // shared_ptr, not a raw pointer: with a bounded DocumentCache the entry can
  // be evicted mid-run, and the session must keep its document alive.
  std::shared_ptr<const CookedDocument> doc;
  double clock = 0.0;        // absolute simulated time
  double start = 0.0;
  double content = 0.0;
  double stall_delay = 0.0;
  double time_per_frame = 0.0;
  long frames = 0;
  // Receipt bitmap for the cooked set. DocumentCache::build enforces
  // n = ceil(gamma*m) <= kMaxCookedPackets (= 256) at cook time, so every
  // index this session can see fits these four words.
  std::uint64_t seen[4] = {0, 0, 0, 0};
  int intact = 0;
  int rounds = 0;

  // Weak-connectivity state; engaged only when FleetConfig::outage is set.
  // link_clock mirrors sim::simulate_resilient_transfer's session clock
  // exactly (same additions in the same order, starting at 0) so outage
  // queries and deadline checks are bit-equal to the oracle's — the absolute
  // `clock` above would pick up start-offset rounding and break parity.
  std::unique_ptr<channel::OutageModel> outage;
  Rng outage_rng{0};
  Rng jitter_rng{0};
  double link_clock = 0.0;
  double backoff = 0.0;
  double backoff_s = 0.0;
  long frames_lost = 0;
  int attempts = 0;
  int suspensions = 0;

  std::unique_ptr<ProxyState> px;  // engaged only when FleetConfig::proxy set
  // Breadcrumb span log; engaged only when FleetConfig::telemetry is set.
  // Moved into a TraceCandidate at finish, so it is only ever alive for
  // in-flight sessions.
  std::unique_ptr<CrumbLog> crumbs;

  [[nodiscard]] bool test_seen(int i) const {
    return (seen[i >> 6] >> (i & 63)) & 1u;
  }
  void mark_seen(int i) { seen[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset_cache() {
    seen[0] = seen[1] = seen[2] = seen[3] = 0;
    intact = 0;
    content = 0.0;
  }
};

// Min-heap event: next round of session `index` fires at time `t`. Ties break
// on the session index so processing order is deterministic.
struct Event {
  double t = 0.0;
  std::uint32_t index = 0;
  friend bool operator>(const Event& a, const Event& b) {
    if (a.t != b.t) return a.t > b.t;
    return a.index > b.index;
  }
};

// How a session left the event loop. Indexes the per-status histogram array.
enum class Outcome : int { kCompleted = 0, kAborted = 1, kGaveUp = 2, kDegraded = 3 };
inline constexpr int kOutcomes = 4;

// A finished session still in the running for trace retention: its verdict,
// its ranking key (result.time) and its breadcrumb ring. Only materialized
// into a full SessionTrace after the global tail selection.
struct TraceCandidate {
  std::uint32_t session = 0;
  double start = 0.0;
  sim::TransferResult result;
  std::unique_ptr<CrumbLog> crumbs;
};

struct ShardTotals {
  long completed = 0;
  long gave_up = 0;
  long aborted_irrelevant = 0;
  long degraded = 0;
  long frames = 0;
  long frames_lost = 0;
  long rounds = 0;
  long suspensions = 0;
  unsigned long long bytes = 0;
  double content = 0.0;
  double session_time_s = 0.0;
  double backoff_s = 0.0;
  double makespan_s = 0.0;
  FleetProxyTotals proxy;
  std::vector<double> times;  // per-session transfer times (tail_stats only)
  // Telemetry (engaged only with FleetConfig::telemetry): this shard's time
  // buckets plus its trace candidates — every degraded / gave-up session,
  // and a bounded heap of the k slowest others (any global top-k member is
  // necessarily within its own shard's top k).
  obs::TimeSeries ts;
  std::vector<TraceCandidate> failed;
  std::vector<TraceCandidate> tail;
};

// Pre-resolved metric series; shards record into them concurrently (the
// registry's instruments are thread-safe, see obs/metrics.hpp).
struct FleetMetrics {
  obs::Counter* sessions = nullptr;
  obs::Counter* completed = nullptr;
  obs::Counter* gave_up = nullptr;
  obs::Counter* aborted = nullptr;
  obs::Counter* degraded = nullptr;
  obs::Counter* frames = nullptr;
  obs::Counter* frames_lost = nullptr;
  obs::Counter* suspensions = nullptr;
  obs::Histogram* session_time = nullptr;
  obs::Histogram* session_time_by[kOutcomes] = {nullptr, nullptr, nullptr, nullptr};
  // Edge-tier series (resolved only for proxied runs).
  obs::Counter* px_replica_hits = nullptr;
  obs::Counter* px_stale_serves = nullptr;
  obs::Counter* px_failovers = nullptr;
  obs::Counter* px_handoffs = nullptr;
  obs::Counter* px_origin_fetches = nullptr;
  obs::Counter* px_origin_suspensions = nullptr;
  obs::Counter* px_reconciliations = nullptr;
  obs::Counter* px_packets_refetched = nullptr;
  obs::Counter* px_stale_frames = nullptr;
  obs::Counter* px_ended_stale = nullptr;
  obs::Counter* px_generation_bumps = nullptr;
  obs::Counter* px_reconcile_dropped = nullptr;
};

// Terminal crumb for an outcome — the event the materialized trace replays
// to recover the session verdict.
obs::Event terminal_event(Outcome outcome) {
  switch (outcome) {
    case Outcome::kCompleted: return obs::Event::kDecodeComplete;
    case Outcome::kAborted: return obs::Event::kAbortIrrelevant;
    case Outcome::kGaveUp: return obs::Event::kGiveUp;
    case Outcome::kDegraded: return obs::Event::kDegraded;
  }
  return obs::Event::kSessionEnd;
}

std::uint64_t salted_session_seed(std::uint64_t fleet_seed, std::uint64_t salt,
                                  std::uint64_t session) {
  return session_seed(fleet_seed ^ salt, session);
}

}  // namespace

std::uint64_t session_seed(std::uint64_t fleet_seed, std::uint64_t session) {
  SplitMix64 mix(fleet_seed ^ (0xD1B54A32D192ED03ull * (session + 1)));
  mix.next();
  return mix.next();
}

std::uint64_t session_outage_seed(std::uint64_t fleet_seed, std::uint64_t session) {
  return salted_session_seed(fleet_seed, 0x6f757461676521ull, session);  // "outage!"
}

std::uint64_t session_jitter_seed(std::uint64_t fleet_seed, std::uint64_t session) {
  return salted_session_seed(fleet_seed, 0x6a69747465727aull, session);  // "jitterz"
}

std::uint64_t session_zipf_seed(std::uint64_t fleet_seed, std::uint64_t session) {
  return salted_session_seed(fleet_seed, 0x7a6970666421ull, session);  // "zipfd!"
}

std::uint64_t fleet_arrival_seed(std::uint64_t fleet_seed) {
  return salted_session_seed(fleet_seed, 0x706f7373696eull, 0);  // "possin"
}

std::uint64_t session_proxy_seed(std::uint64_t fleet_seed, std::uint64_t session) {
  return salted_session_seed(fleet_seed, 0x70726f787921ull, session);  // "proxy!"
}

std::uint64_t session_origin_seed(std::uint64_t fleet_seed, std::uint64_t session) {
  return salted_session_seed(fleet_seed, 0x6f726967696e21ull, session);  // "origin!"
}

std::uint32_t session_proxy_assignment(std::uint64_t fleet_seed,
                                       std::uint64_t session,
                                       std::uint32_t proxies) {
  MOBIWEB_CHECK_MSG(proxies >= 1, "session_proxy_assignment: proxies >= 1");
  return static_cast<std::uint32_t>(
      salted_session_seed(fleet_seed, 0x656467656964ull, session) %  // "edgeid"
      proxies);
}

FleetEngine::FleetEngine(FleetConfig config)
    : config_(std::move(config)), cache_(config_.corpus) {
  MOBIWEB_CHECK_MSG(!config_.gammas.empty(), "FleetEngine: no gammas");
  MOBIWEB_CHECK_MSG(config_.alpha >= 0.0 && config_.alpha < 1.0,
                    "FleetEngine: alpha in [0,1)");
  MOBIWEB_CHECK_MSG(config_.max_rounds >= 1, "FleetEngine: max_rounds >= 1");
  MOBIWEB_CHECK_MSG(config_.bandwidth_bps > 0.0, "FleetEngine: bandwidth > 0");
  MOBIWEB_CHECK_MSG(config_.zipf_s >= 0.0, "FleetEngine: zipf_s >= 0");
  MOBIWEB_CHECK_MSG(config_.arrival_rate_hz >= 0.0,
                    "FleetEngine: arrival_rate_hz >= 0");
  if (config_.outage != nullptr || config_.proxy.has_value()) {
    const sim::RetryConfig& rp = config_.retry;
    MOBIWEB_CHECK_MSG(rp.retry_budget >= 1, "FleetEngine: retry_budget >= 1");
    MOBIWEB_CHECK_MSG(rp.initial_timeout_s >= 0.0,
                      "FleetEngine: initial_timeout_s >= 0");
    MOBIWEB_CHECK_MSG(rp.backoff_multiplier >= 1.0,
                      "FleetEngine: backoff_multiplier >= 1");
    MOBIWEB_CHECK_MSG(rp.max_backoff_s >= rp.initial_timeout_s,
                      "FleetEngine: max_backoff_s >= initial_timeout_s");
    MOBIWEB_CHECK_MSG(rp.jitter >= 0.0, "FleetEngine: jitter >= 0");
  }
  if (config_.proxy.has_value()) {
    const sim::ProxyModelConfig& pm = config_.proxy->model;
    MOBIWEB_CHECK_MSG(pm.warm_hit >= 0.0 && pm.warm_hit <= 1.0,
                      "FleetEngine: warm_hit in [0,1]");
    MOBIWEB_CHECK_MSG(pm.replica_age_mean_s >= 0.0,
                      "FleetEngine: replica_age_mean_s >= 0");
    MOBIWEB_CHECK_MSG(pm.origin_fetch_delay_s >= 0.0,
                      "FleetEngine: origin_fetch_delay_s >= 0");
    MOBIWEB_CHECK_MSG(pm.handoff_rate >= 0.0 && pm.handoff_rate < 1.0,
                      "FleetEngine: handoff_rate in [0,1)");
    MOBIWEB_CHECK_MSG(pm.handoff_delay_s >= 0.0,
                      "FleetEngine: handoff_delay_s >= 0");
    MOBIWEB_CHECK_MSG(pm.update_interval_s >= 0.0,
                      "FleetEngine: update_interval_s >= 0");
    MOBIWEB_CHECK_MSG(pm.proxies >= 1, "FleetEngine: proxies >= 1");
  }
}

FleetResult FleetEngine::run(ThreadPool* pool) {
  MOBIWEB_PROFILE_SCOPE("fleet.run");
  const auto wall_start = std::chrono::steady_clock::now();
  if (pool == nullptr) pool = &ThreadPool::global();

  const std::size_t sessions = config_.sessions;
  FleetResult result;
  result.sessions = sessions;
  if (sessions == 0) return result;

  std::size_t shards = config_.shards != 0 ? config_.shards : pool->concurrency();
  shards = std::min(std::max<std::size_t>(shards, 1), sessions);
  result.shards = shards;

  const std::size_t corpus = config_.corpus.corpus_size;
  const std::size_t n_gammas = config_.gammas.size();

  // Zipf(s) popularity: cumulative weights over document ranks, computed once.
  // Each session's draw depends only on (seed, i), so document assignment is
  // deterministic and shard-invariant. zipf_s == 0 keeps round-robin.
  std::vector<double> zipf_cum;
  if (config_.zipf_s > 0.0) {
    zipf_cum.reserve(corpus);
    double acc = 0.0;
    for (std::size_t r = 0; r < corpus; ++r) {
      acc += std::pow(static_cast<double>(r + 1), -config_.zipf_s);
      zipf_cum.push_back(acc);
    }
  }
  const auto doc_of = [&](std::size_t i) -> std::uint32_t {
    if (zipf_cum.empty()) return static_cast<std::uint32_t>(i % corpus);
    Rng draw(session_zipf_seed(config_.seed, i));
    const double u = draw.next_double() * zipf_cum.back();
    const auto it = std::upper_bound(zipf_cum.begin(), zipf_cum.end(), u);
    const std::size_t rank =
        std::min(static_cast<std::size_t>(it - zipf_cum.begin()), corpus - 1);
    return static_cast<std::uint32_t>(rank);
  };
  const auto key_of = [&](std::size_t i) {
    return CacheKey{doc_of(i), config_.gammas[i % n_gammas]};
  };

  // Poisson arrivals: precompute every start serially from the fleet-wide
  // arrival stream (session 0 at t = 0, exponential inter-arrival gaps), so
  // starts are identical whatever the shard count. Rate 0 keeps the uniform
  // stagger over [0, arrival_spread_s).
  std::vector<double> poisson_starts;
  if (config_.arrival_rate_hz > 0.0) {
    poisson_starts.reserve(sessions);
    Rng arrivals(fleet_arrival_seed(config_.seed));
    double t = 0.0;
    for (std::size_t i = 0; i < sessions; ++i) {
      poisson_starts.push_back(t);
      // 1 - next_double() is in (0, 1], so the log is finite.
      t += -std::log(1.0 - arrivals.next_double()) / config_.arrival_rate_hz;
    }
  }
  const auto start_of = [&](std::size_t i) {
    if (!poisson_starts.empty()) return poisson_starts[i];
    return sessions > 1 ? config_.arrival_spread_s *
                              (static_cast<double>(i) /
                               static_cast<double>(sessions))
                        : 0.0;
  };

  // Warm every (document, γ) the fleet will touch in one batched burst, so
  // the IDA encodes run back-to-back on the pool instead of faulting in
  // lazily underneath 100k sessions. Round-robin assignment walks
  // (i % corpus, gammas[i % n_gammas]), which cycles with period
  // lcm(corpus, n_gammas) — NOT corpus * n_gammas — so that is the true
  // distinct-key count (and what misses() reports afterwards). Zipf
  // assignment has no closed form; enumerate and let prefill dedupe.
  {
    std::vector<CacheKey> keys;
    const std::size_t distinct =
        zipf_cum.empty() ? std::min(sessions, std::lcm(corpus, n_gammas))
                         : sessions;
    keys.reserve(distinct);
    for (std::size_t i = 0; i < distinct; ++i) keys.push_back(key_of(i));
    cache_.prefill(keys, pool);
  }

  FleetMetrics fm;
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *config_.metrics;
    fm.sessions = &reg.counter("fleet.sessions");
    fm.completed = &reg.counter("fleet.sessions_completed");
    fm.gave_up = &reg.counter("fleet.sessions_gave_up");
    fm.aborted = &reg.counter("fleet.sessions_aborted_irrelevant");
    fm.degraded = &reg.counter("fleet.sessions_degraded");
    fm.frames = &reg.counter("fleet.frames_sent");
    fm.frames_lost = &reg.counter("fleet.frames_lost_outage");
    fm.suspensions = &reg.counter("fleet.suspensions");
    fm.session_time =
        &reg.histogram("fleet.session_time_s", obs::session_time_buckets());
    fm.session_time_by[static_cast<int>(Outcome::kCompleted)] = &reg.histogram(
        "fleet.session_time_s{status=completed}", obs::session_time_buckets());
    fm.session_time_by[static_cast<int>(Outcome::kAborted)] =
        &reg.histogram("fleet.session_time_s{status=aborted_irrelevant}",
                       obs::session_time_buckets());
    fm.session_time_by[static_cast<int>(Outcome::kGaveUp)] = &reg.histogram(
        "fleet.session_time_s{status=gave_up}", obs::session_time_buckets());
    fm.session_time_by[static_cast<int>(Outcome::kDegraded)] = &reg.histogram(
        "fleet.session_time_s{status=degraded}", obs::session_time_buckets());
    if (config_.proxy.has_value()) {
      fm.px_replica_hits = &reg.counter("proxy.replica_hits");
      fm.px_stale_serves = &reg.counter("proxy.stale_serves");
      fm.px_failovers = &reg.counter("proxy.failovers");
      fm.px_handoffs = &reg.counter("proxy.handoffs");
      fm.px_origin_fetches = &reg.counter("proxy.origin_fetches");
      fm.px_origin_suspensions = &reg.counter("proxy.origin_suspensions");
      fm.px_reconciliations = &reg.counter("proxy.reconciliations");
      fm.px_packets_refetched = &reg.counter("proxy.packets_refetched");
      fm.px_stale_frames = &reg.counter("proxy.stale_frames");
      fm.px_ended_stale = &reg.counter("proxy.sessions_ended_stale");
      fm.px_generation_bumps = &reg.counter("proxy.origin_generation_bumps");
      fm.px_reconcile_dropped = &reg.counter("proxy.reconcile_dropped_packets");
    }
  }

  std::vector<ShardTotals> totals(shards);
  if (config_.record_outcomes) result.outcomes.resize(sessions);
  const std::size_t per_shard = (sessions + shards - 1) / shards;
  const bool relevance_check = config_.relevance_threshold >= 0.0;
  const sim::RetryConfig& rp = config_.retry;
  const bool proxied = config_.proxy.has_value();
  const sim::ProxyModelConfig pm =
      proxied ? config_.proxy->model : sim::ProxyModelConfig{};
  const bool telem = config_.telemetry.has_value();
  const FleetTelemetryConfig tc =
      config_.telemetry.value_or(FleetTelemetryConfig{});
  // Global tail-retention target k. Bounded overhead: every shard retains at
  // most k non-failed candidates, and the final cut keeps exactly k overall.
  std::size_t tail_target = 0;
  if (telem && tc.trace_top_fraction > 0.0) {
    tail_target = static_cast<std::size_t>(
        std::ceil(tc.trace_top_fraction * static_cast<double>(sessions)));
    tail_target = std::min(tail_target, sessions);
  }
  result.trace_tail_target = tail_target;

  pool->run(shards, [&](std::size_t shard) {
    const std::size_t lo = shard * per_shard;
    const std::size_t hi = std::min(sessions, lo + per_shard);
    if (lo >= hi) return;
    ShardTotals& tot = totals[shard];

    // Telemetry sinks for this shard. `ts` doubles as the "telemetry on"
    // flag on the hot path (one null check per frame when off).
    obs::TimeSeries* ts = nullptr;
    if (telem) {
      tot.ts = obs::TimeSeries(tc.bucket_width_s, tc.max_buckets);
      ts = &tot.ts;
    }
    using obs::Channel;
    // "a ranks before b": slower first, index breaks ties. The heap keeps
    // the worst retained candidate at the front so it can be displaced.
    const auto cand_before = [](const TraceCandidate& a,
                                const TraceCandidate& b) {
      return ranks_before(a.result.time, a.session, b.result.time, b.session);
    };
    const auto offer_tail = [&](TraceCandidate cand) {
      if (tail_target == 0) return;
      std::vector<TraceCandidate>& heap = tot.tail;
      if (heap.size() < tail_target) {
        heap.push_back(std::move(cand));
        std::push_heap(heap.begin(), heap.end(), cand_before);
        return;
      }
      if (ranks_before(cand.result.time, cand.session,
                       heap.front().result.time, heap.front().session)) {
        std::pop_heap(heap.begin(), heap.end(), cand_before);
        heap.back() = std::move(cand);
        std::push_heap(heap.begin(), heap.end(), cand_before);
      }
    };

    // Materialize this shard's slice of sessions and seed its event heap.
    std::vector<Session> states(hi - lo);
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap;
    for (std::size_t i = lo; i < hi; ++i) {
      Session& s = states[i - lo];
      s.rng.reseed(session_seed(config_.seed, i));
      s.doc = cache_.get(key_of(i));  // pins the document across evictions
      s.time_per_frame =
          static_cast<double>(s.doc->frame_size) * 8.0 / config_.bandwidth_bps;
      s.start = start_of(i);
      s.clock = s.start;
      if (config_.outage != nullptr) {
        s.outage = config_.outage->session_clone();
        s.outage_rng.reseed(session_outage_seed(config_.seed, i));
      }
      if (config_.outage != nullptr || proxied) {
        // Proxied sessions back off on origin fades even with the link
        // always up, so the jitter stream and backoff state engage for both.
        s.jitter_rng.reseed(session_jitter_seed(config_.seed, i));
        s.backoff = rp.initial_timeout_s;
      }
      if (proxied) {
        s.px = std::make_unique<ProxyState>();
        s.px->proxy_rng.reseed(session_proxy_seed(config_.seed, i));
        if (config_.proxy->origin_outage != nullptr) {
          s.px->origin = config_.proxy->origin_outage->session_clone();
          s.px->origin_rng.reseed(session_origin_seed(config_.seed, i));
        }
      }
      if (ts != nullptr) {
        s.crumbs = std::make_unique<CrumbLog>(tc.crumb_capacity);
        ts->add(Channel::kSessionsStarted, s.start);
      }
      heap.push(Event{s.start, static_cast<std::uint32_t>(i)});
    }

    const auto finish = [&](std::size_t index, Session& s, double received,
                            Outcome outcome) {
      const bool completed = outcome == Outcome::kCompleted;
      const bool aborted = outcome == Outcome::kAborted;
      const bool gave_up = outcome == Outcome::kGaveUp;
      const bool degraded = outcome == Outcome::kDegraded;
      sim::TransferResult r;
      r.packets = s.frames;
      r.rounds = s.rounds;
      r.completed = completed;
      r.aborted_irrelevant = aborted;
      r.gave_up = gave_up;
      r.degraded = degraded;
      r.content = received;
      r.frames_lost = s.frames_lost;
      r.suspensions = s.suspensions;
      r.request_attempts = s.attempts;
      r.backoff_s = s.backoff_s;
      r.time = static_cast<double>(s.frames) * s.time_per_frame + s.stall_delay;
      tot.completed += completed ? 1 : 0;
      tot.gave_up += gave_up ? 1 : 0;
      tot.aborted_irrelevant += aborted ? 1 : 0;
      tot.degraded += degraded ? 1 : 0;
      tot.frames += s.frames;
      tot.frames_lost += s.frames_lost;
      tot.rounds += s.rounds;
      tot.suspensions += s.suspensions;
      tot.bytes += static_cast<unsigned long long>(s.frames) * s.doc->frame_size;
      tot.content += received;
      tot.session_time_s += r.time;
      if (config_.tail_stats) tot.times.push_back(r.time);
      tot.backoff_s += s.backoff_s;
      tot.makespan_s = std::max(tot.makespan_s, s.start + r.time);
      sim::ProxyStats pstats;
      if (s.px != nullptr) {
        s.px->stats.ended_stale = s.px->serving_stale;
        pstats = s.px->stats;
        tot.proxy.replica_hits += pstats.replica_hits;
        tot.proxy.stale_serves += pstats.stale_serves;
        tot.proxy.failovers += pstats.failovers;
        tot.proxy.handoffs += pstats.handoffs;
        tot.proxy.origin_fetches += pstats.origin_fetches;
        tot.proxy.origin_suspensions += pstats.origin_suspensions;
        tot.proxy.reconciliations += pstats.reconciliations;
        tot.proxy.packets_refetched += pstats.packets_refetched;
        tot.proxy.stale_frames += pstats.stale_frames;
        tot.proxy.sessions_ended_stale += pstats.ended_stale ? 1 : 0;
        tot.proxy.origin_generation_bumps += pstats.origin_generation_bumps;
        tot.proxy.reconcile_dropped_packets += pstats.reconcile_dropped_packets;
        if (fm.px_replica_hits != nullptr) {
          if (pstats.replica_hits > 0) fm.px_replica_hits->inc(pstats.replica_hits);
          if (pstats.stale_serves > 0) fm.px_stale_serves->inc(pstats.stale_serves);
          if (pstats.failovers > 0) fm.px_failovers->inc(pstats.failovers);
          if (pstats.handoffs > 0) fm.px_handoffs->inc(pstats.handoffs);
          if (pstats.origin_fetches > 0) {
            fm.px_origin_fetches->inc(pstats.origin_fetches);
          }
          if (pstats.origin_suspensions > 0) {
            fm.px_origin_suspensions->inc(pstats.origin_suspensions);
          }
          if (pstats.reconciliations > 0) {
            fm.px_reconciliations->inc(pstats.reconciliations);
          }
          if (pstats.packets_refetched > 0) {
            fm.px_packets_refetched->inc(pstats.packets_refetched);
          }
          if (pstats.stale_frames > 0) fm.px_stale_frames->inc(pstats.stale_frames);
          if (pstats.ended_stale) fm.px_ended_stale->inc();
          if (pstats.origin_generation_bumps > 0) {
            fm.px_generation_bumps->inc(pstats.origin_generation_bumps);
          }
          if (pstats.reconcile_dropped_packets > 0) {
            fm.px_reconcile_dropped->inc(pstats.reconcile_dropped_packets);
          }
        }
      }
      if (ts != nullptr) {
        ts->add(Channel::kSessionsEnded, s.clock);
        if (gave_up || degraded) ts->add(Channel::kSessionsFailed, s.clock);
        s.crumbs->push(terminal_event(outcome), s.clock, 0, received);
        TraceCandidate cand{static_cast<std::uint32_t>(index), s.start, r,
                            std::move(s.crumbs)};
        if (gave_up || degraded) {
          tot.failed.push_back(std::move(cand));
        } else {
          offer_tail(std::move(cand));
        }
      }
      if (fm.sessions != nullptr) {
        fm.sessions->inc();
        if (completed) fm.completed->inc();
        if (gave_up) fm.gave_up->inc();
        if (aborted) fm.aborted->inc();
        if (degraded) fm.degraded->inc();
        fm.frames->inc(s.frames);
        if (s.frames_lost > 0) fm.frames_lost->inc(s.frames_lost);
        if (s.suspensions > 0) fm.suspensions->inc(s.suspensions);
        fm.session_time->observe(r.time);
        fm.session_time_by[static_cast<int>(outcome)]->observe(r.time);
      }
      if (config_.record_outcomes) {
        result.outcomes[index] = SessionOutcome{
            static_cast<std::uint32_t>(index), key_of(index), s.start,
            s.px != nullptr
                ? session_proxy_assignment(config_.seed, index, pm.proxies)
                : 0,
            r, pstats};
      }
    };

    // Shared backoff helpers — the resilient and proxied walks consume the
    // jitter stream and retry budget identically (see sim/transfer.cpp,
    // sim/proxied.cpp).
    const auto wait_one_backoff = [&](Session& s) {
      // The jitter draw happens unconditionally (even at jitter = 0) so the
      // stream stays aligned with the oracle's, wait-for-wait.
      const double wait =
          s.backoff * (1.0 + rp.jitter * s.jitter_rng.next_double());
      s.clock += wait;
      s.link_clock += wait;
      s.stall_delay += wait;
      s.backoff_s += wait;
      s.backoff = std::min(s.backoff * rp.backoff_multiplier, rp.max_backoff_s);
    };
    const auto budget_exhausted = [&](const Session& s) {
      return s.attempts >= rp.retry_budget ||
             (rp.deadline_s >= 0.0 && s.link_clock >= rp.deadline_s);
    };

    // Edge-tier walk, mirroring sim::simulate_proxied_transfer lambda-for-
    // lambda (see that file for the semantics; the draw order here must stay
    // bit-identical to it).
    const auto origin_up_now = [&](Session& s) {
      ProxyState& px = *s.px;
      return px.origin == nullptr ||
             px.origin->link_up(s.link_clock, px.origin_rng);
    };
    const auto charge = [&](Session& s, double delay) {
      s.clock += delay;
      s.link_clock += delay;
      s.stall_delay += delay;
    };
    const auto validate_serving = [&](std::size_t index, Session& s) -> bool {
      ProxyState& px = *s.px;
      // Exactly one probe at the validate point (origin_up_now may consume
      // RNG draws, so the result is stored — never re-queried — to keep the
      // stream aligned with the oracle draw-for-draw).
      const bool up = origin_up_now(s);
      if (ts != nullptr) {
        ts->add(Channel::kOriginProbes, s.clock);
        if (up) ts->add(Channel::kOriginUp, s.clock);
      }
      if (up) {
        if (px.has_replica &&
            px.replica_gen ==
                sim::generation_at(s.link_clock, pm.update_interval_s)) {
          ++px.stats.replica_hits;
          if (ts != nullptr) ts->add(Channel::kReplicaHits, s.clock);
        } else {
          // A live replica landing here means its generation fell behind
          // the origin's — the refresh is a bump, not a cold fill.
          if (px.has_replica) ++px.stats.origin_generation_bumps;
          ++px.stats.origin_fetches;
          if (ts != nullptr) ts->add(Channel::kOriginFetches, s.clock);
          charge(s, pm.origin_fetch_delay_s);
          px.has_replica = true;
          px.replica_gen =
              sim::generation_at(s.link_clock, pm.update_interval_s);
        }
        px.serving_stale = false;
        return true;
      }
      ++px.stats.failovers;
      if (px.has_replica) {
        ++px.stats.stale_serves;
        px.serving_stale = true;
        if (ts != nullptr) {
          ts->add(Channel::kStaleServes, s.clock);
          s.crumbs->push(obs::Event::kStaleFailover, s.clock);
        }
        return true;
      }
      // Cold proxy AND origin down: ride out the origin fade under backoff.
      const double cold_start = s.clock;
      if (ts != nullptr) {
        s.crumbs->push(obs::Event::kOriginOutageBegin, s.clock);
      }
      while (!origin_up_now(s)) {
        if (budget_exhausted(s)) {
          finish(index, s, s.content, Outcome::kDegraded);
          return false;
        }
        ++s.attempts;
        wait_one_backoff(s);
      }
      ++px.stats.origin_suspensions;
      if (ts != nullptr) {
        s.crumbs->push(obs::Event::kOriginOutageEnd, s.clock, 0,
                       s.clock - cold_start);
      }
      s.backoff = rp.initial_timeout_s;  // origin is back: start fresh
      px.serving_stale = false;
      ++px.stats.origin_fetches;
      if (ts != nullptr) ts->add(Channel::kOriginFetches, s.clock);
      charge(s, pm.origin_fetch_delay_s);
      px.has_replica = true;
      px.replica_gen = sim::generation_at(s.link_clock, pm.update_interval_s);
      return true;
    };
    const auto acquire_proxy = [&](std::size_t index, Session& s) -> bool {
      ProxyState& px = *s.px;
      // Exactly two proxy-stream draws per attach, as in the oracle.
      const bool warm = px.proxy_rng.next_bernoulli(pm.warm_hit);
      const double age = -pm.replica_age_mean_s *
                         std::log(1.0 - px.proxy_rng.next_double());
      px.has_replica = warm;
      px.serving_stale = false;
      px.replica_gen =
          warm ? sim::generation_at(std::max(0.0, s.link_clock - age),
                                    pm.update_interval_s)
               : 0;
      return validate_serving(index, s);
    };
    const auto reconcile = [&](Session& s) {
      ProxyState& px = *s.px;
      ++px.stats.reconciliations;
      if (px.held_gen != px.replica_gen) {
        if (s.intact > 0) {
          px.stats.packets_refetched += s.intact;
          px.stats.reconcile_dropped_packets += s.intact;
          if (ts != nullptr) {
            ts->add(Channel::kReconcileDrops, s.clock, s.intact);
            s.crumbs->push(obs::Event::kReconcileDrop, s.clock, s.intact);
          }
          s.reset_cache();
        }
        px.held_gen = px.replica_gen;
      }
    };

    // Drain the heap: one event = one transmission round. The state machine
    // below is sim::simulate_transfer's round body verbatim (same draw order,
    // same check precedence) — and, when an outage model is configured,
    // sim::simulate_resilient_transfer's suspend/backoff walk verbatim, and,
    // when the proxy tier is configured, sim::simulate_proxied_transfer's
    // attach/validate/handoff/reconcile walk verbatim — which is what makes
    // the per-session parity tests exact.
    while (!heap.empty()) {
      const Event ev = heap.top();
      heap.pop();
      Session& s = states[ev.index - lo];
      const CookedDocument& doc = *s.doc;
      const int m = static_cast<int>(doc.transmitter.m());
      const int n = static_cast<int>(doc.transmitter.n());

      if (s.px != nullptr && !s.px->attached) {
        // The initial request attaches to the assigned proxy before round 1
        // (the oracle's acquire before its round loop). Degrading here — the
        // origin down with nothing cached, budget exhausted — ends the
        // session with zero rounds, exactly as the oracle does.
        s.px->attached = true;
        if (!acquire_proxy(ev.index, s)) continue;
        s.px->held_gen = s.px->replica_gen;
      }

      ++s.rounds;
      if (ts != nullptr) {
        s.crumbs->push(obs::Event::kRoundStart, s.clock, s.rounds);
      }
      bool terminal = false;
      for (int i = 0; i < n && !terminal; ++i) {
        ++s.frames;
        s.clock += s.time_per_frame;
        if (ts != nullptr) ts->add(Channel::kFramesSent, s.clock);
        if (s.outage != nullptr) {
          s.link_clock += s.time_per_frame;
          if (!s.outage->link_up(s.link_clock, s.outage_rng)) {
            // In a fade: airtime burned, nothing delivered, and the
            // corruption model never sees the frame.
            ++s.frames_lost;
            if (ts != nullptr) ts->add(Channel::kFramesLost, s.clock);
            continue;
          }
        } else if (s.px != nullptr) {
          // Proxied sessions keep the session-relative clock running even
          // with the link always up: origin outage queries and generation
          // stamps are driven off it.
          s.link_clock += s.time_per_frame;
        }
        const bool corrupted = s.rng.next_bernoulli(config_.alpha);
        if (!corrupted && !s.test_seen(i)) {
          s.mark_seen(i);
          ++s.intact;
          if (s.px != nullptr && s.px->serving_stale) ++s.px->stats.stale_frames;
          if (i < m) s.content += doc.clear_content[static_cast<std::size_t>(i)];
        }
        // Reconstruction (condition 1) outranks the relevance abort
        // (condition 3) when one frame triggers both — as in TransferSession.
        if (s.intact >= m) {
          finish(ev.index, s, doc.total_content, Outcome::kCompleted);
          terminal = true;
        } else if (relevance_check && s.content >= config_.relevance_threshold) {
          finish(ev.index, s, s.content, Outcome::kAborted);
          terminal = true;
        }
      }
      if (terminal) continue;
      if (ts != nullptr) {
        // Stalled (non-terminal) round boundary: the suspension_rate SLO's
        // denominator, and the crumb the materialized trace replays into a
        // round span.
        ts->add(Channel::kRounds, s.clock);
        s.crumbs->push(obs::Event::kRoundEnd, s.clock, s.rounds, s.content);
      }
      // Stalled round: give up at the cap — BEFORE the suspend check, as
      // ResilientSession breaks before touching the back channel. `>=` so a
      // counter that ever steps past the cap still terminates.
      if (s.rounds >= config_.max_rounds) {
        finish(ev.index, s, s.content, Outcome::kGaveUp);
        continue;
      }
      if (s.outage != nullptr) {
        // Suspend-on-outage: when the round ended inside a fade,
        // re-requesting is futile — back off exponentially with jitter
        // (consuming retry budget, so a link that never returns still
        // terminates) until the link is observed up.
        bool suspended = false;
        bool dead = false;
        double susp_start = s.clock;
        while (!s.outage->link_up(s.link_clock, s.outage_rng)) {
          if (!suspended && ts != nullptr) {
            susp_start = s.clock;
            s.crumbs->push(obs::Event::kOutageBegin, s.clock);
          }
          if (budget_exhausted(s)) {
            finish(ev.index, s, s.content, Outcome::kDegraded);
            dead = true;
            break;
          }
          ++s.attempts;
          suspended = true;
          wait_one_backoff(s);
        }
        if (dead) continue;
        if (suspended) {
          ++s.suspensions;
          if (ts != nullptr) {
            ts->add(Channel::kSuspensions, s.clock);
            s.crumbs->push(obs::Event::kOutageEnd, s.clock, 0,
                           s.clock - susp_start);
          }
          s.backoff = rp.initial_timeout_s;  // link is back: start fresh
          if (s.px != nullptr) {
            // Reconnect: revalidate the serving replica (it may have been
            // refreshed or gone stale while the client was dark), then
            // reconcile the partial cache against its generation.
            if (!validate_serving(ev.index, s)) continue;
            reconcile(s);
          }
        }
      }
      if (s.px != nullptr) {
        // Cell handoff: one proxy-stream Bernoulli per stalled round, drawn
        // unconditionally (even at handoff_rate = 0) to keep the stream
        // aligned with the oracle's.
        if (s.px->proxy_rng.next_bernoulli(pm.handoff_rate)) {
          ++s.px->stats.handoffs;
          charge(s, pm.handoff_delay_s);
          if (ts != nullptr) {
            ts->add(Channel::kHandoffs, s.clock);
            s.crumbs->push(obs::Event::kHandoff, s.clock, 0,
                           pm.handoff_delay_s);
          }
          if (!acquire_proxy(ev.index, s)) continue;
          reconcile(s);
        }
      }
      if (s.outage != nullptr || s.px != nullptr) {
        // The retransmission request consumes budget even when it succeeds
        // (the fleet back channel is reliable), exactly as in
        // ResilientSession / the resilient and proxied oracles.
        if (budget_exhausted(s)) {
          finish(ev.index, s, s.content, Outcome::kDegraded);
          continue;
        }
        ++s.attempts;
        s.backoff = rp.initial_timeout_s;
        s.link_clock += config_.request_delay;
      }
      s.clock += config_.request_delay;
      s.stall_delay += config_.request_delay;
      if (!config_.caching) s.reset_cache();
      heap.push(Event{s.clock, ev.index});
    }
  });

  // Merge in shard order: deterministic for a fixed shard count; integer
  // aggregates are order-independent, so they match across shard counts too.
  for (const ShardTotals& tot : totals) {
    result.completed += tot.completed;
    result.gave_up += tot.gave_up;
    result.aborted_irrelevant += tot.aborted_irrelevant;
    result.degraded += tot.degraded;
    result.frames_sent += tot.frames;
    result.frames_lost += tot.frames_lost;
    result.rounds += tot.rounds;
    result.suspensions += tot.suspensions;
    result.bytes_sent += tot.bytes;
    result.content += tot.content;
    result.session_time_s += tot.session_time_s;
    result.backoff_s += tot.backoff_s;
    result.makespan_s = std::max(result.makespan_s, tot.makespan_s);
    result.proxy.replica_hits += tot.proxy.replica_hits;
    result.proxy.stale_serves += tot.proxy.stale_serves;
    result.proxy.failovers += tot.proxy.failovers;
    result.proxy.handoffs += tot.proxy.handoffs;
    result.proxy.origin_fetches += tot.proxy.origin_fetches;
    result.proxy.origin_suspensions += tot.proxy.origin_suspensions;
    result.proxy.reconciliations += tot.proxy.reconciliations;
    result.proxy.packets_refetched += tot.proxy.packets_refetched;
    result.proxy.stale_frames += tot.proxy.stale_frames;
    result.proxy.sessions_ended_stale += tot.proxy.sessions_ended_stale;
    result.proxy.origin_generation_bumps += tot.proxy.origin_generation_bumps;
    result.proxy.reconcile_dropped_packets +=
        tot.proxy.reconcile_dropped_packets;
  }
  if (telem) {
    // Bucket merge: cells are integers accumulated with +=, so the merged
    // series is independent of shard count and merge order.
    result.timeseries = obs::TimeSeries(tc.bucket_width_s, tc.max_buckets);
    for (ShardTotals& tot : totals) result.timeseries.merge(tot.ts);

    // Global tail selection. Any global top-k non-failed session is within
    // its own shard's top k (its shard holds at most k-1 sessions ranking
    // before it), so gathering the per-shard heaps loses nothing. Failed
    // sessions were kept unconditionally. Sort by the total rank order and
    // cut: the retained set is exactly (global top-k) ∪ (failed), identical
    // whatever the shard count.
    std::vector<TraceCandidate> candidates;
    std::vector<char> is_failed;
    for (ShardTotals& tot : totals) {
      for (TraceCandidate& c : tot.failed) {
        candidates.push_back(std::move(c));
        is_failed.push_back(1);
      }
      for (TraceCandidate& c : tot.tail) {
        candidates.push_back(std::move(c));
        is_failed.push_back(0);
      }
      tot.failed.clear();
      tot.tail.clear();
    }
    std::vector<std::size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return ranks_before(candidates[a].result.time, candidates[a].session,
                          candidates[b].result.time, candidates[b].session);
    });
    std::size_t tail_kept = 0;
    for (const std::size_t idx : order) {
      const bool failed = is_failed[idx] != 0;
      const bool in_tail = tail_kept < tail_target;
      if (!failed && !in_tail) continue;
      if (in_tail) ++tail_kept;  // failed sessions occupy tail slots too
      const TraceCandidate& c = candidates[idx];
      std::string label = "session " + std::to_string(c.session);
      if (c.result.degraded) label += " [degraded]";
      else if (c.result.gave_up) label += " [gave_up]";
      else if (c.result.aborted_irrelevant) label += " [aborted]";
      result.traces.push_back(RetainedTrace{
          c.session, c.result.time, failed,
          materialize_trace(label, c.start, c.result, *c.crumbs)});
    }
    // Stable presentation order: by session index, whatever rank order the
    // cut visited them in.
    std::sort(result.traces.begin(), result.traces.end(),
              [](const RetainedTrace& a, const RetainedTrace& b) {
                return a.session < b.session;
              });
    if (tc.flight != nullptr) {
      // Replay each failed retained trace through the flight recorder —
      // single-threaded, post-merge, in session order (deterministic dumps).
      for (const RetainedTrace& rt : result.traces) {
        if (!rt.failed) continue;
        tc.flight->clear();
        bool gave_up = false;
        for (const obs::TraceEvent& e : rt.trace.events()) {
          tc.flight->record(e);
          if (e.type == obs::Event::kGiveUp) gave_up = true;
        }
        tc.flight->dump(gave_up ? "fleet.gave_up" : "fleet.degraded");
      }
    }
  }
  if (config_.tail_stats) {
    // summarize_tails sorts, so the outcome depends only on the multiset of
    // session times — the tail metrics inherit the engine's shard-invariance
    // bit-for-bit (pinned in tests/test_stats_workload.cpp).
    std::vector<double> times;
    times.reserve(sessions);
    for (ShardTotals& tot : totals) {
      times.insert(times.end(), tot.times.begin(), tot.times.end());
      tot.times.clear();
      tot.times.shrink_to_fit();
    }
    result.session_time_tails = stats::summarize_tails(times);
  }
  result.cache_hits = cache_.hits();
  result.cache_misses = cache_.misses();
  result.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return result;
}

}  // namespace mobiweb::fleet
