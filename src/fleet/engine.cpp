#include "fleet/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <queue>

#include "obs/profile.hpp"
#include "util/check.hpp"

namespace mobiweb::fleet {

namespace {

// Per-session live state. Kept small on purpose: ~200 bytes per session means
// a 1M-session fleet fits in a couple hundred MB, and the per-frame work is
// one Bernoulli draw plus bitmap arithmetic — no per-session byte copies
// (cooked frames are shared read-only out of the DocumentCache).
struct Session {
  Rng rng{0};
  const CookedDocument* doc = nullptr;
  double clock = 0.0;        // absolute simulated time
  double start = 0.0;
  double content = 0.0;
  double stall_delay = 0.0;
  double time_per_frame = 0.0;
  long frames = 0;
  // Receipt bitmap for the cooked set. DocumentCache::build enforces
  // n = ceil(gamma*m) <= kMaxCookedPackets (= 256) at cook time, so every
  // index this session can see fits these four words.
  std::uint64_t seen[4] = {0, 0, 0, 0};
  int intact = 0;
  int rounds = 0;

  // Weak-connectivity state; engaged only when FleetConfig::outage is set.
  // link_clock mirrors sim::simulate_resilient_transfer's session clock
  // exactly (same additions in the same order, starting at 0) so outage
  // queries and deadline checks are bit-equal to the oracle's — the absolute
  // `clock` above would pick up start-offset rounding and break parity.
  std::unique_ptr<channel::OutageModel> outage;
  Rng outage_rng{0};
  Rng jitter_rng{0};
  double link_clock = 0.0;
  double backoff = 0.0;
  double backoff_s = 0.0;
  long frames_lost = 0;
  int attempts = 0;
  int suspensions = 0;

  [[nodiscard]] bool test_seen(int i) const {
    return (seen[i >> 6] >> (i & 63)) & 1u;
  }
  void mark_seen(int i) { seen[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset_cache() {
    seen[0] = seen[1] = seen[2] = seen[3] = 0;
    intact = 0;
    content = 0.0;
  }
};

// Min-heap event: next round of session `index` fires at time `t`. Ties break
// on the session index so processing order is deterministic.
struct Event {
  double t = 0.0;
  std::uint32_t index = 0;
  friend bool operator>(const Event& a, const Event& b) {
    if (a.t != b.t) return a.t > b.t;
    return a.index > b.index;
  }
};

// How a session left the event loop. Indexes the per-status histogram array.
enum class Outcome : int { kCompleted = 0, kAborted = 1, kGaveUp = 2, kDegraded = 3 };
inline constexpr int kOutcomes = 4;

struct ShardTotals {
  long completed = 0;
  long gave_up = 0;
  long aborted_irrelevant = 0;
  long degraded = 0;
  long frames = 0;
  long frames_lost = 0;
  long rounds = 0;
  long suspensions = 0;
  unsigned long long bytes = 0;
  double content = 0.0;
  double session_time_s = 0.0;
  double backoff_s = 0.0;
  double makespan_s = 0.0;
  std::vector<double> times;  // per-session transfer times (tail_stats only)
};

// Pre-resolved metric series; shards record into them concurrently (the
// registry's instruments are thread-safe, see obs/metrics.hpp).
struct FleetMetrics {
  obs::Counter* sessions = nullptr;
  obs::Counter* completed = nullptr;
  obs::Counter* gave_up = nullptr;
  obs::Counter* aborted = nullptr;
  obs::Counter* degraded = nullptr;
  obs::Counter* frames = nullptr;
  obs::Counter* frames_lost = nullptr;
  obs::Counter* suspensions = nullptr;
  obs::Histogram* session_time = nullptr;
  obs::Histogram* session_time_by[kOutcomes] = {nullptr, nullptr, nullptr, nullptr};
};

std::uint64_t salted_session_seed(std::uint64_t fleet_seed, std::uint64_t salt,
                                  std::uint64_t session) {
  return session_seed(fleet_seed ^ salt, session);
}

}  // namespace

std::uint64_t session_seed(std::uint64_t fleet_seed, std::uint64_t session) {
  SplitMix64 mix(fleet_seed ^ (0xD1B54A32D192ED03ull * (session + 1)));
  mix.next();
  return mix.next();
}

std::uint64_t session_outage_seed(std::uint64_t fleet_seed, std::uint64_t session) {
  return salted_session_seed(fleet_seed, 0x6f757461676521ull, session);  // "outage!"
}

std::uint64_t session_jitter_seed(std::uint64_t fleet_seed, std::uint64_t session) {
  return salted_session_seed(fleet_seed, 0x6a69747465727aull, session);  // "jitterz"
}

std::uint64_t session_zipf_seed(std::uint64_t fleet_seed, std::uint64_t session) {
  return salted_session_seed(fleet_seed, 0x7a6970666421ull, session);  // "zipfd!"
}

std::uint64_t fleet_arrival_seed(std::uint64_t fleet_seed) {
  return salted_session_seed(fleet_seed, 0x706f7373696eull, 0);  // "possin"
}

FleetEngine::FleetEngine(FleetConfig config)
    : config_(std::move(config)), cache_(config_.corpus) {
  MOBIWEB_CHECK_MSG(!config_.gammas.empty(), "FleetEngine: no gammas");
  MOBIWEB_CHECK_MSG(config_.alpha >= 0.0 && config_.alpha < 1.0,
                    "FleetEngine: alpha in [0,1)");
  MOBIWEB_CHECK_MSG(config_.max_rounds >= 1, "FleetEngine: max_rounds >= 1");
  MOBIWEB_CHECK_MSG(config_.bandwidth_bps > 0.0, "FleetEngine: bandwidth > 0");
  MOBIWEB_CHECK_MSG(config_.zipf_s >= 0.0, "FleetEngine: zipf_s >= 0");
  MOBIWEB_CHECK_MSG(config_.arrival_rate_hz >= 0.0,
                    "FleetEngine: arrival_rate_hz >= 0");
  if (config_.outage != nullptr) {
    const sim::RetryConfig& rp = config_.retry;
    MOBIWEB_CHECK_MSG(rp.retry_budget >= 1, "FleetEngine: retry_budget >= 1");
    MOBIWEB_CHECK_MSG(rp.initial_timeout_s >= 0.0,
                      "FleetEngine: initial_timeout_s >= 0");
    MOBIWEB_CHECK_MSG(rp.backoff_multiplier >= 1.0,
                      "FleetEngine: backoff_multiplier >= 1");
    MOBIWEB_CHECK_MSG(rp.max_backoff_s >= rp.initial_timeout_s,
                      "FleetEngine: max_backoff_s >= initial_timeout_s");
    MOBIWEB_CHECK_MSG(rp.jitter >= 0.0, "FleetEngine: jitter >= 0");
  }
}

FleetResult FleetEngine::run(ThreadPool* pool) {
  MOBIWEB_PROFILE_SCOPE("fleet.run");
  const auto wall_start = std::chrono::steady_clock::now();
  if (pool == nullptr) pool = &ThreadPool::global();

  const std::size_t sessions = config_.sessions;
  FleetResult result;
  result.sessions = sessions;
  if (sessions == 0) return result;

  std::size_t shards = config_.shards != 0 ? config_.shards : pool->concurrency();
  shards = std::min(std::max<std::size_t>(shards, 1), sessions);
  result.shards = shards;

  const std::size_t corpus = config_.corpus.corpus_size;
  const std::size_t n_gammas = config_.gammas.size();

  // Zipf(s) popularity: cumulative weights over document ranks, computed once.
  // Each session's draw depends only on (seed, i), so document assignment is
  // deterministic and shard-invariant. zipf_s == 0 keeps round-robin.
  std::vector<double> zipf_cum;
  if (config_.zipf_s > 0.0) {
    zipf_cum.reserve(corpus);
    double acc = 0.0;
    for (std::size_t r = 0; r < corpus; ++r) {
      acc += std::pow(static_cast<double>(r + 1), -config_.zipf_s);
      zipf_cum.push_back(acc);
    }
  }
  const auto doc_of = [&](std::size_t i) -> std::uint32_t {
    if (zipf_cum.empty()) return static_cast<std::uint32_t>(i % corpus);
    Rng draw(session_zipf_seed(config_.seed, i));
    const double u = draw.next_double() * zipf_cum.back();
    const auto it = std::upper_bound(zipf_cum.begin(), zipf_cum.end(), u);
    const std::size_t rank =
        std::min(static_cast<std::size_t>(it - zipf_cum.begin()), corpus - 1);
    return static_cast<std::uint32_t>(rank);
  };
  const auto key_of = [&](std::size_t i) {
    return CacheKey{doc_of(i), config_.gammas[i % n_gammas]};
  };

  // Poisson arrivals: precompute every start serially from the fleet-wide
  // arrival stream (session 0 at t = 0, exponential inter-arrival gaps), so
  // starts are identical whatever the shard count. Rate 0 keeps the uniform
  // stagger over [0, arrival_spread_s).
  std::vector<double> poisson_starts;
  if (config_.arrival_rate_hz > 0.0) {
    poisson_starts.reserve(sessions);
    Rng arrivals(fleet_arrival_seed(config_.seed));
    double t = 0.0;
    for (std::size_t i = 0; i < sessions; ++i) {
      poisson_starts.push_back(t);
      // 1 - next_double() is in (0, 1], so the log is finite.
      t += -std::log(1.0 - arrivals.next_double()) / config_.arrival_rate_hz;
    }
  }
  const auto start_of = [&](std::size_t i) {
    if (!poisson_starts.empty()) return poisson_starts[i];
    return sessions > 1 ? config_.arrival_spread_s *
                              (static_cast<double>(i) /
                               static_cast<double>(sessions))
                        : 0.0;
  };

  // Warm every (document, γ) the fleet will touch in one batched burst, so
  // the IDA encodes run back-to-back on the pool instead of faulting in
  // lazily underneath 100k sessions. Round-robin assignment walks
  // (i % corpus, gammas[i % n_gammas]), which cycles with period
  // lcm(corpus, n_gammas) — NOT corpus * n_gammas — so that is the true
  // distinct-key count (and what misses() reports afterwards). Zipf
  // assignment has no closed form; enumerate and let prefill dedupe.
  {
    std::vector<CacheKey> keys;
    const std::size_t distinct =
        zipf_cum.empty() ? std::min(sessions, std::lcm(corpus, n_gammas))
                         : sessions;
    keys.reserve(distinct);
    for (std::size_t i = 0; i < distinct; ++i) keys.push_back(key_of(i));
    cache_.prefill(keys, pool);
  }

  FleetMetrics fm;
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *config_.metrics;
    fm.sessions = &reg.counter("fleet.sessions");
    fm.completed = &reg.counter("fleet.sessions_completed");
    fm.gave_up = &reg.counter("fleet.sessions_gave_up");
    fm.aborted = &reg.counter("fleet.sessions_aborted_irrelevant");
    fm.degraded = &reg.counter("fleet.sessions_degraded");
    fm.frames = &reg.counter("fleet.frames_sent");
    fm.frames_lost = &reg.counter("fleet.frames_lost_outage");
    fm.suspensions = &reg.counter("fleet.suspensions");
    fm.session_time =
        &reg.histogram("fleet.session_time_s", obs::session_time_buckets());
    fm.session_time_by[static_cast<int>(Outcome::kCompleted)] = &reg.histogram(
        "fleet.session_time_s{status=completed}", obs::session_time_buckets());
    fm.session_time_by[static_cast<int>(Outcome::kAborted)] =
        &reg.histogram("fleet.session_time_s{status=aborted_irrelevant}",
                       obs::session_time_buckets());
    fm.session_time_by[static_cast<int>(Outcome::kGaveUp)] = &reg.histogram(
        "fleet.session_time_s{status=gave_up}", obs::session_time_buckets());
    fm.session_time_by[static_cast<int>(Outcome::kDegraded)] = &reg.histogram(
        "fleet.session_time_s{status=degraded}", obs::session_time_buckets());
  }

  std::vector<ShardTotals> totals(shards);
  if (config_.record_outcomes) result.outcomes.resize(sessions);
  const std::size_t per_shard = (sessions + shards - 1) / shards;
  const bool relevance_check = config_.relevance_threshold >= 0.0;
  const sim::RetryConfig& rp = config_.retry;

  pool->run(shards, [&](std::size_t shard) {
    const std::size_t lo = shard * per_shard;
    const std::size_t hi = std::min(sessions, lo + per_shard);
    if (lo >= hi) return;
    ShardTotals& tot = totals[shard];

    // Materialize this shard's slice of sessions and seed its event heap.
    std::vector<Session> states(hi - lo);
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap;
    for (std::size_t i = lo; i < hi; ++i) {
      Session& s = states[i - lo];
      s.rng.reseed(session_seed(config_.seed, i));
      s.doc = cache_.get(key_of(i)).get();  // cache outlives the run
      s.time_per_frame =
          static_cast<double>(s.doc->frame_size) * 8.0 / config_.bandwidth_bps;
      s.start = start_of(i);
      s.clock = s.start;
      if (config_.outage != nullptr) {
        s.outage = config_.outage->session_clone();
        s.outage_rng.reseed(session_outage_seed(config_.seed, i));
        s.jitter_rng.reseed(session_jitter_seed(config_.seed, i));
        s.backoff = rp.initial_timeout_s;
      }
      heap.push(Event{s.start, static_cast<std::uint32_t>(i)});
    }

    const auto finish = [&](std::size_t index, Session& s, double received,
                            Outcome outcome) {
      const bool completed = outcome == Outcome::kCompleted;
      const bool aborted = outcome == Outcome::kAborted;
      const bool gave_up = outcome == Outcome::kGaveUp;
      const bool degraded = outcome == Outcome::kDegraded;
      sim::TransferResult r;
      r.packets = s.frames;
      r.rounds = s.rounds;
      r.completed = completed;
      r.aborted_irrelevant = aborted;
      r.gave_up = gave_up;
      r.degraded = degraded;
      r.content = received;
      r.frames_lost = s.frames_lost;
      r.suspensions = s.suspensions;
      r.request_attempts = s.attempts;
      r.backoff_s = s.backoff_s;
      r.time = static_cast<double>(s.frames) * s.time_per_frame + s.stall_delay;
      tot.completed += completed ? 1 : 0;
      tot.gave_up += gave_up ? 1 : 0;
      tot.aborted_irrelevant += aborted ? 1 : 0;
      tot.degraded += degraded ? 1 : 0;
      tot.frames += s.frames;
      tot.frames_lost += s.frames_lost;
      tot.rounds += s.rounds;
      tot.suspensions += s.suspensions;
      tot.bytes += static_cast<unsigned long long>(s.frames) * s.doc->frame_size;
      tot.content += received;
      tot.session_time_s += r.time;
      if (config_.tail_stats) tot.times.push_back(r.time);
      tot.backoff_s += s.backoff_s;
      tot.makespan_s = std::max(tot.makespan_s, s.start + r.time);
      if (fm.sessions != nullptr) {
        fm.sessions->inc();
        if (completed) fm.completed->inc();
        if (gave_up) fm.gave_up->inc();
        if (aborted) fm.aborted->inc();
        if (degraded) fm.degraded->inc();
        fm.frames->inc(s.frames);
        if (s.frames_lost > 0) fm.frames_lost->inc(s.frames_lost);
        if (s.suspensions > 0) fm.suspensions->inc(s.suspensions);
        fm.session_time->observe(r.time);
        fm.session_time_by[static_cast<int>(outcome)]->observe(r.time);
      }
      if (config_.record_outcomes) {
        result.outcomes[index] =
            SessionOutcome{static_cast<std::uint32_t>(index), key_of(index),
                           s.start, r};
      }
    };

    // Drain the heap: one event = one transmission round. The state machine
    // below is sim::simulate_transfer's round body verbatim (same draw order,
    // same check precedence) — and, when an outage model is configured,
    // sim::simulate_resilient_transfer's suspend/backoff walk verbatim —
    // which is what makes the per-session parity tests exact.
    while (!heap.empty()) {
      const Event ev = heap.top();
      heap.pop();
      Session& s = states[ev.index - lo];
      const CookedDocument& doc = *s.doc;
      const int m = static_cast<int>(doc.transmitter.m());
      const int n = static_cast<int>(doc.transmitter.n());

      ++s.rounds;
      bool terminal = false;
      for (int i = 0; i < n && !terminal; ++i) {
        ++s.frames;
        s.clock += s.time_per_frame;
        if (s.outage != nullptr) {
          s.link_clock += s.time_per_frame;
          if (!s.outage->link_up(s.link_clock, s.outage_rng)) {
            // In a fade: airtime burned, nothing delivered, and the
            // corruption model never sees the frame.
            ++s.frames_lost;
            continue;
          }
        }
        const bool corrupted = s.rng.next_bernoulli(config_.alpha);
        if (!corrupted && !s.test_seen(i)) {
          s.mark_seen(i);
          ++s.intact;
          if (i < m) s.content += doc.clear_content[static_cast<std::size_t>(i)];
        }
        // Reconstruction (condition 1) outranks the relevance abort
        // (condition 3) when one frame triggers both — as in TransferSession.
        if (s.intact >= m) {
          finish(ev.index, s, doc.total_content, Outcome::kCompleted);
          terminal = true;
        } else if (relevance_check && s.content >= config_.relevance_threshold) {
          finish(ev.index, s, s.content, Outcome::kAborted);
          terminal = true;
        }
      }
      if (terminal) continue;
      // Stalled round: give up at the cap — BEFORE the suspend check, as
      // ResilientSession breaks before touching the back channel. `>=` so a
      // counter that ever steps past the cap still terminates.
      if (s.rounds >= config_.max_rounds) {
        finish(ev.index, s, s.content, Outcome::kGaveUp);
        continue;
      }
      if (s.outage != nullptr) {
        // Suspend-on-outage: when the round ended inside a fade,
        // re-requesting is futile — back off exponentially with jitter
        // (consuming retry budget, so a link that never returns still
        // terminates) until the link is observed up.
        bool suspended = false;
        bool dead = false;
        while (!s.outage->link_up(s.link_clock, s.outage_rng)) {
          if (s.attempts >= rp.retry_budget ||
              (rp.deadline_s >= 0.0 && s.link_clock >= rp.deadline_s)) {
            finish(ev.index, s, s.content, Outcome::kDegraded);
            dead = true;
            break;
          }
          ++s.attempts;
          suspended = true;
          // The jitter draw happens unconditionally (even at jitter = 0) so
          // the stream stays aligned with the oracle's, wait-for-wait.
          const double wait =
              s.backoff * (1.0 + rp.jitter * s.jitter_rng.next_double());
          s.clock += wait;
          s.link_clock += wait;
          s.stall_delay += wait;
          s.backoff_s += wait;
          s.backoff = std::min(s.backoff * rp.backoff_multiplier, rp.max_backoff_s);
        }
        if (dead) continue;
        if (suspended) {
          ++s.suspensions;
          s.backoff = rp.initial_timeout_s;  // link is back: start fresh
        }
        // The retransmission request consumes budget even when it succeeds
        // (the fleet back channel is reliable), exactly as in
        // ResilientSession / the resilient oracle.
        if (s.attempts >= rp.retry_budget ||
            (rp.deadline_s >= 0.0 && s.link_clock >= rp.deadline_s)) {
          finish(ev.index, s, s.content, Outcome::kDegraded);
          continue;
        }
        ++s.attempts;
        s.backoff = rp.initial_timeout_s;
        s.link_clock += config_.request_delay;
      }
      s.clock += config_.request_delay;
      s.stall_delay += config_.request_delay;
      if (!config_.caching) s.reset_cache();
      heap.push(Event{s.clock, ev.index});
    }
  });

  // Merge in shard order: deterministic for a fixed shard count; integer
  // aggregates are order-independent, so they match across shard counts too.
  for (const ShardTotals& tot : totals) {
    result.completed += tot.completed;
    result.gave_up += tot.gave_up;
    result.aborted_irrelevant += tot.aborted_irrelevant;
    result.degraded += tot.degraded;
    result.frames_sent += tot.frames;
    result.frames_lost += tot.frames_lost;
    result.rounds += tot.rounds;
    result.suspensions += tot.suspensions;
    result.bytes_sent += tot.bytes;
    result.content += tot.content;
    result.session_time_s += tot.session_time_s;
    result.backoff_s += tot.backoff_s;
    result.makespan_s = std::max(result.makespan_s, tot.makespan_s);
  }
  if (config_.tail_stats) {
    // summarize_tails sorts, so the outcome depends only on the multiset of
    // session times — the tail metrics inherit the engine's shard-invariance
    // bit-for-bit (pinned in tests/test_stats_workload.cpp).
    std::vector<double> times;
    times.reserve(sessions);
    for (ShardTotals& tot : totals) {
      times.insert(times.end(), tot.times.begin(), tot.times.end());
      tot.times.clear();
      tot.times.shrink_to_fit();
    }
    result.session_time_tails = stats::summarize_tails(times);
  }
  result.cache_hits = cache_.hits();
  result.cache_misses = cache_.misses();
  result.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return result;
}

}  // namespace mobiweb::fleet
