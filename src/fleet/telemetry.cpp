#include "fleet/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "fleet/engine.hpp"
#include "obs/export.hpp"

namespace mobiweb::fleet {

std::vector<Crumb> CrumbLog::snapshot() const {
  std::vector<Crumb> out;
  const std::size_t cap = ring_.size();
  const std::size_t kept =
      recorded_ < static_cast<long>(cap) ? static_cast<std::size_t>(recorded_)
                                         : cap;
  out.reserve(kept);
  // Oldest retained crumb sits at next_ once the ring has wrapped.
  const std::size_t begin =
      recorded_ < static_cast<long>(cap) ? 0 : next_;
  for (std::size_t i = 0; i < kept; ++i) {
    out.push_back(ring_[(begin + i) % cap]);
  }
  return out;
}

obs::SessionTrace materialize_trace(const std::string& label, double start_s,
                                    const sim::TransferResult& result,
                                    const CrumbLog& crumbs) {
  obs::SessionTrace trace(label);
  trace.capture_events(true);
  trace.session_start(start_s);
  for (const Crumb& c : crumbs.snapshot()) {
    switch (c.type) {
      case obs::Event::kRoundStart:
        trace.round_start(c.aux, c.time);
        break;
      case obs::Event::kRoundEnd:
        trace.round_end(c.time, c.value);
        break;
      case obs::Event::kOutageBegin:
        trace.outage_begin(c.time);
        break;
      case obs::Event::kOutageEnd:
        trace.outage_end(c.time, c.value);
        trace.resume(c.time);
        break;
      case obs::Event::kOriginOutageBegin:
        trace.origin_outage_begin(c.time);
        break;
      case obs::Event::kOriginOutageEnd:
        trace.origin_outage_end(c.time, c.value);
        break;
      case obs::Event::kStaleFailover:
        trace.stale_failover(c.time);
        break;
      case obs::Event::kHandoff:
        trace.handoff(c.time, c.value);
        break;
      case obs::Event::kReconcileDrop:
        trace.reconcile_drop(c.time, c.aux);
        break;
      case obs::Event::kDecodeComplete:
        trace.decode_complete(c.time);
        break;
      case obs::Event::kAbortIrrelevant:
        trace.abort_irrelevant(c.time, c.value);
        break;
      case obs::Event::kDegraded:
        trace.degraded(c.time, c.value);
        break;
      case obs::Event::kGiveUp:
        trace.give_up(c.time);
        break;
      default:
        // Frame-level events are never recorded as crumbs; anything else
        // (e.g. a kSessionStart from a future producer) is ignored so the
        // replay stays total over arbitrary rings.
        break;
    }
  }
  trace.session_end(start_s + result.time, result.content);
  return trace;
}

namespace {

using obs::Channel;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// num / (den_a + den_b + den_c) per bucket; NaN when the denominator is 0.
// Built purely from merged integer channels, so shard-invariant.
std::vector<double> ratio_series(const obs::TimeSeries& ts, Channel num,
                                 std::vector<Channel> den) {
  std::vector<double> out(ts.buckets(), kNaN);
  for (std::size_t i = 0; i < out.size(); ++i) {
    long d = 0;
    for (const Channel c : den) d += ts.at(c, i);
    if (d > 0) out[i] = static_cast<double>(ts.at(num, i)) / static_cast<double>(d);
  }
  return out;
}

std::vector<double> rate_series(const obs::TimeSeries& ts, Channel c) {
  std::vector<double> out(ts.buckets(), 0.0);
  const double w = ts.bucket_width_s();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = w > 0.0 ? static_cast<double>(ts.at(c, i)) / w : 0.0;
  }
  return out;
}

// Sessions in flight at the close of each bucket: running Σstarted − Σended.
std::vector<double> in_flight_series(const obs::TimeSeries& ts) {
  std::vector<double> out(ts.buckets(), 0.0);
  long live = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    live += ts.at(Channel::kSessionsStarted, i) -
            ts.at(Channel::kSessionsEnded, i);
    out[i] = static_cast<double>(live);
  }
  return out;
}

void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

std::vector<DerivedSeries> derived_fleet_series(const obs::TimeSeries& ts) {
  std::vector<DerivedSeries> out;
  out.push_back({"sessions_in_flight", 0, in_flight_series(ts)});
  out.push_back({"frames_per_s", 0, rate_series(ts, Channel::kFramesSent)});
  // The raw series above ramp up and drain with the arrival process, so a
  // linear fit over them always "drifts" — they stay informational. The
  // ratio series below are stationary under a healthy run and are what the
  // SLO engine gates.
  out.push_back({"link_loss_fraction", -1,
                 ratio_series(ts, Channel::kFramesLost,
                              {Channel::kFramesSent})});
  out.push_back({"degraded_end_fraction", -1,
                 ratio_series(ts, Channel::kSessionsFailed,
                              {Channel::kSessionsEnded})});
  out.push_back({"suspension_rate", -1,
                 ratio_series(ts, Channel::kSuspensions, {Channel::kRounds})});
  out.push_back({"stale_serve_fraction", -1,
                 ratio_series(ts, Channel::kStaleServes,
                              {Channel::kReplicaHits, Channel::kStaleServes,
                               Channel::kOriginFetches})});
  out.push_back({"origin_up_fraction", 1,
                 ratio_series(ts, Channel::kOriginUp,
                              {Channel::kOriginProbes})});
  out.push_back({"replica_hit_fraction", 1,
                 ratio_series(ts, Channel::kReplicaHits,
                              {Channel::kReplicaHits,
                               Channel::kOriginFetches})});
  return out;
}

std::vector<stats::SloSeries> evaluate_fleet_slo(const obs::TimeSeries& ts,
                                                 double tolerance) {
  // Gate only inside the arrival window (through the last bucket that
  // started a session), discarding its first half as warmup. Outside that
  // span the ratio series drift for structural reasons, not regressions:
  //   * warmup — every session's link/origin chain starts in the up state,
  //     so loss and suspension ratios ramp from ~0 to their stationary value
  //     over the outage model's mixing time;
  //   * drain — after arrivals stop, the surviving sessions are
  //     disproportionately the slow ones riding out fades (survivorship).
  // Both bounds are derived from a merged integer channel, so the gated span
  // — and the verdict — is shard-invariant.
  std::size_t window = 0;
  for (std::size_t i = 0; i < ts.buckets(); ++i) {
    if (ts.at(Channel::kSessionsStarted, i) > 0) window = i + 1;
  }
  const std::size_t warmup = window / 2;
  std::vector<stats::SloSeries> out;
  for (DerivedSeries& d : derived_fleet_series(ts)) {
    if (d.direction != 0) {
      if (d.values.size() > window) d.values.resize(window);
      d.values.erase(d.values.begin(),
                     d.values.begin() +
                         static_cast<std::ptrdiff_t>(
                             std::min(warmup, d.values.size())));
    }
    out.push_back(stats::evaluate_slo_series(std::move(d.name), d.values,
                                             d.direction, tolerance));
  }
  return out;
}

std::string timeline_document(const FleetResult& result,
                              const FleetConfig& config) {
  const FleetTelemetryConfig tc =
      config.telemetry.value_or(FleetTelemetryConfig{});
  long failed_traces = 0;
  for (const RetainedTrace& rt : result.traces) {
    if (rt.failed) ++failed_traces;
  }

  // No wall-clock value and nothing shard-dependent may enter this document:
  // it is diffed byte-for-byte across shard counts.
  std::string out = "{\"schema\": \"mobiweb-timeline/1\",\n\"meta\": {";
  out += "\"sessions\": " + std::to_string(result.sessions);
  out += ", \"seed\": " + std::to_string(config.seed);
  out += ", \"trace_tail_target\": " + std::to_string(result.trace_tail_target);
  out += ", \"retained_traces\": " + std::to_string(result.traces.size());
  out += ", \"failed_traces\": " + std::to_string(failed_traces);
  out += "},\n\"timeseries\": " + result.timeseries.to_json();

  out += ",\n\"derived\": {";
  const std::vector<DerivedSeries> derived =
      derived_fleet_series(result.timeseries);
  for (std::size_t d = 0; d < derived.size(); ++d) {
    if (d) out += ", ";
    out += '"' + derived[d].name + "\": [";
    for (std::size_t i = 0; i < derived[d].values.size(); ++i) {
      if (i) out += ", ";
      const double v = derived[d].values[i];
      if (std::isfinite(v)) {
        append_number(out, v);
      } else {
        out += "null";  // undefined bucket (ratio with a zero denominator)
      }
    }
    out += ']';
  }
  out += '}';

  out += ",\n\"slo\": " +
         stats::slo_json(evaluate_fleet_slo(result.timeseries, tc.slo_tolerance),
                         tc.slo_tolerance);

  out += ",\n\"traceEvents\": [\n";
  bool first = true;
  obs::TimelineOptions options;
  int tid = 1;
  for (const RetainedTrace& rt : result.traces) {
    obs::append_timeline_events(rt.trace, tid, out, first, options);
    ++tid;
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

}  // namespace mobiweb::fleet
