#include "fleet/cache.hpp"

#include <algorithm>
#include <cmath>

#include "ida/ida.hpp"
#include "util/check.hpp"

namespace mobiweb::fleet {

std::uint64_t document_seed(std::uint64_t corpus_seed, std::uint32_t doc_index) {
  SplitMix64 mix(corpus_seed ^
                 (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(doc_index) + 1)));
  mix.next();  // decorrelate from the raw xor
  return mix.next();
}

DocumentCache::DocumentCache(CacheConfig config) : config_(config) {
  MOBIWEB_CHECK_MSG(config_.corpus_size > 0, "DocumentCache: empty corpus");
}

std::shared_ptr<const CookedDocument> DocumentCache::build(
    const CacheKey& key) const {
  MOBIWEB_CHECK_MSG(key.doc_index < config_.corpus_size,
                    "DocumentCache: doc_index out of corpus");
  Rng rng(document_seed(config_.seed, key.doc_index));
  const sim::SyntheticDocument sdoc = sim::generate_document(config_.doc, rng);
  doc::LinearDocument linear =
      sim::synthetic_linear_document(sdoc, config_.lod, rng);

  transmit::TransmitterConfig tcfg;
  tcfg.packet_size = config_.doc.packet_size;
  tcfg.gamma = key.gamma;
  tcfg.doc_id = static_cast<std::uint16_t>(key.doc_index + 1);

  // The *requested* cooked count n = ⌈γ·m⌉ must fit the engine's fixed
  // per-session `seen` bitmap. The transmitter itself silently clamps n to
  // the GF(256) encoder limit, so checking its post-clamp n() would never
  // fire — and the clamp would quietly serve less redundancy than the fleet
  // config promised. Reject the spec here, once per (document, γ), before
  // any session runs against a truncated cooked set.
  const std::size_t m_requested =
      ida::packet_count(linear.payload.size(), tcfg.packet_size);
  const auto n_requested = static_cast<std::size_t>(
      std::ceil(key.gamma * static_cast<double>(m_requested)));
  MOBIWEB_CHECK_MSG(n_requested <= kMaxCookedPackets,
                    "DocumentCache: requested cooked packet count exceeds the "
                    "fleet session bitmap (n = ceil(gamma*m) must be <= 256)");

  auto cooked = std::make_shared<CookedDocument>(CookedDocument{
      transmit::DocumentTransmitter(std::move(linear), tcfg), {}, 0.0, 0});
  const std::size_t m = cooked->transmitter.m();
  const std::size_t payload = cooked->transmitter.payload_size();
  const std::size_t sp = cooked->transmitter.packet_size();
  cooked->clear_content.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t lo = i * sp;
    const std::size_t hi = std::min(payload, lo + sp);
    cooked->clear_content[i] =
        cooked->transmitter.document().content_of_range(lo, hi);
    cooked->total_content += cooked->clear_content[i];
  }
  cooked->frame_size = cooked->transmitter.frame(0).size();
  return cooked;
}

DocumentCache::Entry& DocumentCache::entry_for(const CacheKey& key) {
  {
    std::shared_lock lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) return *it->second;
  }
  std::unique_lock lock(mu_);
  auto [it, inserted] = entries_.try_emplace(key);
  if (inserted) it->second = std::make_unique<Entry>();
  return *it->second;
}

std::shared_ptr<const CookedDocument> DocumentCache::get(const CacheKey& key) {
  if (config_.capacity > 0) return get_bounded(key);
  Entry& entry = entry_for(key);
  bool built_here = false;
  // The winner builds outside the registry lock, so cold keys do not block
  // servings (or builds) of other keys.
  std::call_once(entry.once, [&] {
    entry.doc = build(key);
    built_here = true;
  });
  if (built_here) {
    misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return entry.doc;
}

double DocumentCache::admission_weight(const CookedDocument& doc) {
  const double bytes = static_cast<double>(doc.frame_size) *
                       static_cast<double>(doc.transmitter.n());
  return bytes > 0.0 ? doc.total_content / bytes : 0.0;
}

void DocumentCache::admit(const CacheKey& key,
                          std::shared_ptr<const CookedDocument> doc) {
  if (resident_.size() >= config_.capacity) {
    const CacheKey victim = lru_.back();
    const auto vit = resident_.find(victim);
    if (admission_weight(*doc) < admission_weight(*vit->second.doc)) {
      // IC-weighted admission: the incoming document carries less information
      // per cooked byte than the coldest resident — serve it, don't cache it.
      admission_rejects_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    lru_.pop_back();
    resident_.erase(vit);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  lru_.push_front(key);
  resident_.emplace(key, Resident{std::move(doc), lru_.begin()});
}

std::shared_ptr<const CookedDocument> DocumentCache::get_bounded(
    const CacheKey& key) {
  std::shared_ptr<InFlight> flight;
  {
    std::unique_lock lock(bounded_mu_);
    if (const auto it = resident_.find(key); it != resident_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.doc;
    }
    if (const auto fit = inflight_.find(key); fit != inflight_.end()) {
      flight = fit->second;  // someone else is already building this key
    } else {
      flight = std::make_shared<InFlight>();
      inflight_.emplace(key, flight);
      lock.unlock();
      // Build outside the residency lock so cold keys do not serialize.
      std::shared_ptr<const CookedDocument> doc = build(key);
      misses_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
      inflight_.erase(key);
      admit(key, doc);
      lock.unlock();
      {
        const std::lock_guard done_lock(flight->mu);
        flight->done = true;
        flight->doc = doc;
      }
      flight->cv.notify_all();
      return doc;
    }
  }
  // Ride a racing build: the entry was already being created, so this serving
  // counts as a hit — mirroring the unbounded call_once accounting.
  std::unique_lock wait_lock(flight->mu);
  flight->cv.wait(wait_lock, [&] { return flight->done; });
  hits_.fetch_add(1, std::memory_order_relaxed);
  return flight->doc;
}

void DocumentCache::prefill(const std::vector<CacheKey>& keys, ThreadPool* pool) {
  std::vector<CacheKey> distinct(keys);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  if (distinct.empty()) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  // One shard per key: the pool batches the IDA encodes, so the GF(2^8)
  // row-multiply kernels run in one contiguous burst per worker instead of
  // being interleaved with 100k sessions' bookkeeping.
  pool->run(distinct.size(), [&](std::size_t i) { get(distinct[i]); });
}

std::size_t DocumentCache::size() const {
  if (config_.capacity > 0) {
    const std::lock_guard lock(bounded_mu_);
    return resident_.size();
  }
  std::shared_lock lock(mu_);
  return entries_.size();
}

}  // namespace mobiweb::fleet
