#include "fleet/cache.hpp"

#include <algorithm>
#include <cmath>

#include "ida/ida.hpp"
#include "util/check.hpp"

namespace mobiweb::fleet {

std::uint64_t document_seed(std::uint64_t corpus_seed, std::uint32_t doc_index) {
  SplitMix64 mix(corpus_seed ^
                 (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(doc_index) + 1)));
  mix.next();  // decorrelate from the raw xor
  return mix.next();
}

DocumentCache::DocumentCache(CacheConfig config) : config_(config) {
  MOBIWEB_CHECK_MSG(config_.corpus_size > 0, "DocumentCache: empty corpus");
}

std::shared_ptr<const CookedDocument> DocumentCache::build(
    const CacheKey& key) const {
  MOBIWEB_CHECK_MSG(key.doc_index < config_.corpus_size,
                    "DocumentCache: doc_index out of corpus");
  Rng rng(document_seed(config_.seed, key.doc_index));
  const sim::SyntheticDocument sdoc = sim::generate_document(config_.doc, rng);
  doc::LinearDocument linear =
      sim::synthetic_linear_document(sdoc, config_.lod, rng);

  transmit::TransmitterConfig tcfg;
  tcfg.packet_size = config_.doc.packet_size;
  tcfg.gamma = key.gamma;
  tcfg.doc_id = static_cast<std::uint16_t>(key.doc_index + 1);

  // The *requested* cooked count n = ⌈γ·m⌉ must fit the engine's fixed
  // per-session `seen` bitmap. The transmitter itself silently clamps n to
  // the GF(256) encoder limit, so checking its post-clamp n() would never
  // fire — and the clamp would quietly serve less redundancy than the fleet
  // config promised. Reject the spec here, once per (document, γ), before
  // any session runs against a truncated cooked set.
  const std::size_t m_requested =
      ida::packet_count(linear.payload.size(), tcfg.packet_size);
  const auto n_requested = static_cast<std::size_t>(
      std::ceil(key.gamma * static_cast<double>(m_requested)));
  MOBIWEB_CHECK_MSG(n_requested <= kMaxCookedPackets,
                    "DocumentCache: requested cooked packet count exceeds the "
                    "fleet session bitmap (n = ceil(gamma*m) must be <= 256)");

  auto cooked = std::make_shared<CookedDocument>(CookedDocument{
      transmit::DocumentTransmitter(std::move(linear), tcfg), {}, 0.0, 0});
  const std::size_t m = cooked->transmitter.m();
  const std::size_t payload = cooked->transmitter.payload_size();
  const std::size_t sp = cooked->transmitter.packet_size();
  cooked->clear_content.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t lo = i * sp;
    const std::size_t hi = std::min(payload, lo + sp);
    cooked->clear_content[i] =
        cooked->transmitter.document().content_of_range(lo, hi);
    cooked->total_content += cooked->clear_content[i];
  }
  cooked->frame_size = cooked->transmitter.frame(0).size();
  return cooked;
}

DocumentCache::Entry& DocumentCache::entry_for(const CacheKey& key) {
  {
    std::shared_lock lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) return *it->second;
  }
  std::unique_lock lock(mu_);
  auto [it, inserted] = entries_.try_emplace(key);
  if (inserted) it->second = std::make_unique<Entry>();
  return *it->second;
}

std::shared_ptr<const CookedDocument> DocumentCache::get(const CacheKey& key) {
  Entry& entry = entry_for(key);
  bool built_here = false;
  // The winner builds outside the registry lock, so cold keys do not block
  // servings (or builds) of other keys.
  std::call_once(entry.once, [&] {
    entry.doc = build(key);
    built_here = true;
  });
  if (built_here) {
    misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return entry.doc;
}

void DocumentCache::prefill(const std::vector<CacheKey>& keys, ThreadPool* pool) {
  std::vector<CacheKey> distinct(keys);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  if (distinct.empty()) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  // One shard per key: the pool batches the IDA encodes, so the GF(2^8)
  // row-multiply kernels run in one contiguous burst per worker instead of
  // being interleaved with 100k sessions' bookkeeping.
  pool->run(distinct.size(), [&](std::size_t i) { get(distinct[i]); });
}

std::size_t DocumentCache::size() const {
  std::shared_lock lock(mu_);
  return entries_.size();
}

}  // namespace mobiweb::fleet
