// Sharded discrete-event fleet engine: one server, 100k+ concurrent
// weakly-connected browsing sessions.
//
// The paper's evaluation simulates one client at a time; this engine answers
// the server-scale question — what does a γ-redundant multicast/unicast mix
// cost when tens of thousands of clients fetch from a shared corpus
// concurrently? Sessions are partitioned into contiguous shards; each shard
// owns a time-ordered event heap and the state of its slice of sessions and
// runs on one ThreadPool worker. Cooked packets come from a shared read-only
// fleet::DocumentCache (encode once per (document, γ), serve everyone).
//
// Each session is the analytic TransferSession state machine of
// sim::simulate_transfer — identical draw order, identical accounting — so
// per-session results are bit-equal to simulate_transfer run standalone with
// the same per-session seed (tests/test_fleet.cpp pins this). One event =
// one transmission round (n frames); mid-round completion and the relevance
// abort terminate exactly as in the analytic simulator.
//
// Weak connectivity: when `config.outage` is set, every session owns a
// session_clone() of the prototype outage model, driven on the session's own
// link timeline (time since the session's start) by a dedicated per-session
// RNG stream. The event loop then runs sim::simulate_resilient_transfer's
// round body instead: frames transmitted into a fade are lost outright with
// the airtime still charged, a round that ends inside a fade suspends the
// session under exponential backoff + jitter until the link is observed up,
// every retransmission request consumes retry budget, and an exhausted
// budget or deadline terminates the session as degraded, carrying partial
// content. With `outage == nullptr` the legacy always-up walk is untouched
// (bit-identical to prior releases).
//
// Workload shape: `zipf_s > 0` replaces round-robin document assignment with
// a Zipf(s) popularity draw, and `arrival_rate_hz > 0` replaces the uniform
// `arrival_spread_s` stagger with a Poisson arrival process. Both draws
// depend only on (seed, i) / (seed), so they are deterministic and
// shard-invariant; both default off, reproducing today's workload exactly.
//
// Edge proxy tier: when `config.proxy` is set, sessions fetch through an
// edge proxy instead of straight from the origin, and the event loop runs
// sim::simulate_proxied_transfer's walk — warm-replica draws on attach,
// origin validation (the origin owning its own per-session OutageModel
// clone), failover to stale-but-flagged replicas during origin fades,
// per-round cell-handoff draws, and reconnect reconciliation of the client's
// partial cache against the serving replica's generation. Each session's
// proxy assignment and its proxy/origin RNG streams depend only on
// (seed, i), so proxied runs stay deterministic and shard-invariant, with
// per-session bit-parity against the proxied oracle.
//
// Determinism: session i's RNGs (corruption, outage, jitter, document draw)
// are seeded from (seed, i) only, shard partials are merged in shard order,
// and event ties break on session index — so a fixed (seed, shards) pair
// reproduces the aggregate bit-for-bit, and every integer aggregate (plus
// the cache hit/miss counts) is invariant across shard counts.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "channel/outage.hpp"
#include "fleet/cache.hpp"
#include "fleet/telemetry.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "sim/proxied.hpp"
#include "sim/transfer.hpp"
#include "stats/describe.hpp"
#include "util/thread_pool.hpp"

namespace mobiweb::obs {
class FlightRecorder;
}  // namespace mobiweb::obs

namespace mobiweb::fleet {

// Edge proxy tier configuration (FleetConfig::proxy). The analytic model
// shape is shared with the oracle; the origin gets its own outage prototype,
// cloned per session exactly like the wireless-link model.
struct FleetProxyConfig {
  sim::ProxyModelConfig model;
  // Origin failure domain, independent of the wireless link. nullptr =
  // origin always reachable (replicas only ever refresh, never fail over).
  std::shared_ptr<const channel::OutageModel> origin_outage;
};

// Fleet telemetry (FleetConfig::telemetry): time-bucketed counters over the
// simulated clock plus tail-based trace retention (see fleet/telemetry.hpp).
// Everything it produces is a pure function of (config, seed) — the exported
// timeline document is bit-identical across shard counts.
struct FleetTelemetryConfig {
  double bucket_width_s = 1.0;      // simulated seconds per bucket
  std::size_t max_buckets = 4096;   // adds past the window clamp into the last
  // After the run, the slowest ceil(trace_top_fraction * sessions) sessions
  // plus every degraded / gave-up session are materialized into full traces
  // (FleetResult::traces); everyone else only ever carries a fixed breadcrumb
  // ring, so trace memory stays bounded at 1M sessions.
  double trace_top_fraction = 0.01;
  std::size_t crumb_capacity = 32;  // per-session breadcrumb ring entries
  double slo_tolerance = 0.5;       // relative drift allowed by the SLO gate
  // Optional postmortem sink: every retained degraded / gave-up trace is
  // replayed into this recorder and dumped through its sink after the run
  // (post-merge, single-threaded — the recorder itself is not thread-safe).
  obs::FlightRecorder* flight = nullptr;
};

struct FleetConfig {
  CacheConfig corpus;                // corpus shape + seed + LOD
  std::size_t sessions = 10000;
  std::size_t shards = 0;            // 0 = pool concurrency
  std::uint64_t seed = 1;            // fleet seed (sessions draw from (seed, i))
  std::vector<double> gammas = {1.5};  // session i uses gammas[i % size]
  double alpha = 0.1;                // per-frame corruption probability
  bool caching = true;               // client keeps intact packets across rounds
  double relevance_threshold = -1.0; // F; < 0 = full download
  double bandwidth_bps = 19200.0;    // per-client link rate
  double request_delay = 1.0;        // seconds per stalled-round request
  int max_rounds = 25;
  double arrival_spread_s = 0.0;     // session starts staggered over [0, spread)
  bool record_outcomes = false;      // keep per-session results (tests; O(sessions) memory)
  // Collect every session's transfer time and summarize the distribution in
  // FleetResult::session_time_tails (p50/p95/p99/p999 + Student-t CI). Costs
  // 8 bytes per session while the run is live; the summary is a pure function
  // of the sample multiset, so it is bit-identical across shard counts.
  bool tail_stats = true;
  obs::MetricsRegistry* metrics = nullptr;  // optional; shards record concurrently

  // Weak connectivity: prototype outage model cloned per session (see the
  // header comment). nullptr = link always up, legacy bit-identical walk.
  std::shared_ptr<const channel::OutageModel> outage;
  sim::RetryConfig retry;            // suspend/backoff policy; used iff `outage`
  // Workload shape. zipf_s > 0: document popularity ~ Zipf(s) over the corpus
  // (0 = round-robin). arrival_rate_hz > 0: Poisson session arrivals at this
  // rate (0 = uniform stagger over arrival_spread_s).
  double zipf_s = 0.0;
  double arrival_rate_hz = 0.0;
  // Edge proxy tier (see the header comment). nullopt = sessions talk to the
  // origin directly, legacy bit-identical walk. When set, `retry` governs the
  // origin-fade backoff too, whether or not `outage` is also set.
  std::optional<FleetProxyConfig> proxy;
  // Fleet telemetry: time-bucketed metrics + tail-based trace retention.
  // nullopt (the default) records nothing and adds nothing to the hot path
  // beyond one null check per frame. Never alters session draws or results.
  std::optional<FleetTelemetryConfig> telemetry;
};

struct SessionOutcome {
  std::uint32_t session = 0;
  CacheKey key;
  double start_s = 0.0;
  std::uint32_t proxy_id = 0;  // assigned edge proxy (proxied runs only)
  sim::TransferResult result;
  sim::ProxyStats proxy;       // zeros unless FleetConfig::proxy engaged
};

// Fleet-wide edge-tier aggregates (sums of the per-session ProxyStats).
struct FleetProxyTotals {
  long replica_hits = 0;
  long stale_serves = 0;
  long failovers = 0;
  long handoffs = 0;
  long origin_fetches = 0;
  long origin_suspensions = 0;
  long reconciliations = 0;
  long packets_refetched = 0;
  long stale_frames = 0;
  long sessions_ended_stale = 0;  // final serving replica was stale-flagged
  long origin_generation_bumps = 0;   // live replicas refreshed past a stale gen
  long reconcile_dropped_packets = 0; // held packets dropped by reconciliation
};

struct FleetResult {
  std::size_t sessions = 0;
  std::size_t shards = 0;
  long completed = 0;
  long gave_up = 0;
  long aborted_irrelevant = 0;
  long degraded = 0;                   // retry budget / deadline exhausted
  long frames_sent = 0;
  long frames_lost = 0;                // frames swallowed by link fades
  long rounds = 0;
  long suspensions = 0;                // suspend→resume cycles across the fleet
  double backoff_s = 0.0;              // Σ time sessions spent suspended
  unsigned long long bytes_sent = 0;   // wire bytes (frames × frame size)
  double content = 0.0;                // Σ per-session information content
  double session_time_s = 0.0;         // Σ per-session transfer times
  double makespan_s = 0.0;             // last session end on the simulated clock
  long cache_hits = 0;
  long cache_misses = 0;
  double elapsed_s = 0.0;              // engine wall time
  // Distribution of per-session transfer times (exact order statistics over
  // the whole fleet; zeroed when FleetConfig::tail_stats is off). This is
  // what bench_fleet exports as session_time_s_{p50,p95,p99,p999,mean,ci95}
  // and what the perf gate compares tail-first.
  stats::TailSummary session_time_tails;
  FleetProxyTotals proxy;                // zeros unless FleetConfig::proxy
  std::vector<SessionOutcome> outcomes;  // empty unless record_outcomes
  // Telemetry products; disengaged/empty unless FleetConfig::telemetry.
  // The merged time series is bit-identical across shard counts; the retained
  // traces are the slowest trace_tail_target sessions plus every degraded /
  // gave-up session, sorted by session index.
  obs::TimeSeries timeseries;
  std::vector<RetainedTrace> traces;
  std::size_t trace_tail_target = 0;     // k used for the tail selection

  [[nodiscard]] double sessions_per_s() const {
    return elapsed_s > 0.0 ? static_cast<double>(sessions) / elapsed_s : 0.0;
  }
  [[nodiscard]] double frames_per_s() const {
    return elapsed_s > 0.0 ? static_cast<double>(frames_sent) / elapsed_s : 0.0;
  }
  // Offered load on the simulated clock: aggregate wire Mbps across clients.
  [[nodiscard]] double aggregate_mbps() const {
    return makespan_s > 0.0
               ? static_cast<double>(bytes_sent) * 8.0 / makespan_s / 1e6
               : 0.0;
  }
};

// Deterministic per-session RNG seed; depends on (seed, session index) only.
std::uint64_t session_seed(std::uint64_t fleet_seed, std::uint64_t session);
// Independent per-session streams for the outage model, the backoff jitter,
// and the Zipf document draw (distinct salts over session_seed), plus the
// fleet-wide arrival-process seed. Exposed so parity tests can reproduce a
// session's exact draw sequence outside the engine.
std::uint64_t session_outage_seed(std::uint64_t fleet_seed, std::uint64_t session);
std::uint64_t session_jitter_seed(std::uint64_t fleet_seed, std::uint64_t session);
std::uint64_t session_zipf_seed(std::uint64_t fleet_seed, std::uint64_t session);
std::uint64_t fleet_arrival_seed(std::uint64_t fleet_seed);
// Edge tier streams: the warm-replica/age/handoff draws and the origin's
// outage-model clone each get their own salted stream, and the session's
// proxy assignment is a deterministic hash into the pool — all functions of
// (seed, i) only, like every other per-session stream.
std::uint64_t session_proxy_seed(std::uint64_t fleet_seed, std::uint64_t session);
std::uint64_t session_origin_seed(std::uint64_t fleet_seed, std::uint64_t session);
std::uint32_t session_proxy_assignment(std::uint64_t fleet_seed,
                                       std::uint64_t session,
                                       std::uint32_t proxies);

class FleetEngine {
 public:
  explicit FleetEngine(FleetConfig config);

  // Prefills the cache (batched), then runs every session to termination on
  // `pool` (global pool when nullptr). Reentrant-safe: may itself be called
  // from inside a pool task (the nested run executes inline).
  FleetResult run(ThreadPool* pool = nullptr);

  [[nodiscard]] DocumentCache& cache() { return cache_; }
  [[nodiscard]] const FleetConfig& config() const { return config_; }

 private:
  FleetConfig config_;
  DocumentCache cache_;
};

}  // namespace mobiweb::fleet
