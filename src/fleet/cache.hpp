// Shared pre-encoded document cache for the fleet engine.
//
// One server process multiplexing 100k+ concurrent sessions cannot afford to
// re-run the IDA encoder per client: the cooked packet set for a document is
// a pure function of (document, γ), so it is computed exactly once and then
// served read-only to every session that requests it. A CookedDocument bundles
// the DocumentTransmitter (which owns the N wire frames), the per-clear-packet
// information-content profile that session state machines accrue from, and the
// frame-size accounting the bench uses for aggregate Mbps.
//
// Concurrency contract:
//   * get() is safe from any thread; entries are deduplicated with a
//     per-entry std::once_flag, so two shards racing on a cold key build it
//     once and both receive the same immutable object.
//   * misses() counts actual builds (== distinct keys ever requested while
//     unbounded), so it is invariant across shard counts; hits() counts every
//     other serving. Exactly one of the two is charged per get(), so
//     hits() + misses() == total servings in *every* mode — the invariant the
//     bounded-cache fleet tests pin across shard counts.
//   * prefill() batches cold builds through a ThreadPool so the GF(2^8)
//     row-multiply kernels see one large contiguous burst of encode work
//     instead of 100k interleaved trickles.
//
// Bounded mode (CacheConfig::capacity > 0): at most `capacity` cooked
// documents stay resident. Eviction is LRU with IC-weighted *admission*: a
// newly built document is admitted only if its information-content density
// (total content per cooked wire byte) is at least the LRU victim's —
// otherwise it is served to the requester but not cached, so a burst of cold
// low-value documents cannot flush the dense working set. Evicted documents
// stay alive for as long as callers hold their shared_ptr (the fleet engine
// pins each session's document for the session's lifetime).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "doc/lod.hpp"
#include "sim/synthetic.hpp"
#include "transmit/transmitter.hpp"
#include "util/thread_pool.hpp"

namespace mobiweb::fleet {

// Hard cap on cooked packets per document served by the cache. The fleet
// engine tracks per-session receipt in a fixed 4×64-bit bitmap, so a cooked
// set larger than this would silently corrupt session state; DocumentCache
// enforces the bound at build time (a γ/corpus spec that cooks more packets
// throws ContractViolation instead of invoking UB downstream).
inline constexpr std::size_t kMaxCookedPackets = 256;

// Identifies one cooked encoding: document `doc_index` of the synthetic
// corpus, expanded with redundancy ratio `gamma`.
struct CacheKey {
  std::uint32_t doc_index = 0;
  double gamma = 1.5;

  friend bool operator<(const CacheKey& a, const CacheKey& b) {
    if (a.doc_index != b.doc_index) return a.doc_index < b.doc_index;
    return a.gamma < b.gamma;
  }
  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.doc_index == b.doc_index && a.gamma == b.gamma;
  }
};

// Immutable once built; shared read-only across every session and shard.
struct CookedDocument {
  transmit::DocumentTransmitter transmitter;
  // Information content carried by clear-text packet i (size m, sums to the
  // document's total content).
  std::vector<double> clear_content;
  double total_content = 0.0;
  // All frames share one wire size (header + padded payload + CRC).
  std::size_t frame_size = 0;
};

struct CacheConfig {
  sim::SyntheticConfig doc;             // corpus shape (sizes, tree, skew)
  std::size_t corpus_size = 64;         // distinct documents, index [0, size)
  std::uint64_t seed = 1;               // corpus generator seed
  doc::Lod lod = doc::Lod::kSection;    // transmission ranking granularity
  // Maximum resident cooked documents. 0 = unbounded (legacy: every build
  // stays resident forever). > 0 = LRU eviction with IC-weighted admission;
  // an evicted key rebuilds (and recounts as a miss) on its next request.
  std::size_t capacity = 0;
};

class DocumentCache {
 public:
  explicit DocumentCache(CacheConfig config);

  // Lookup-or-build. Blocks only when the key is cold (and then only the
  // requesting threads of *that* key); the returned document is immutable.
  std::shared_ptr<const CookedDocument> get(const CacheKey& key);

  // Builds every cold key in `keys`, sharded across `pool` (global pool when
  // nullptr). Duplicate and warm keys are skipped, not double-built.
  void prefill(const std::vector<CacheKey>& keys, ThreadPool* pool = nullptr);

  // misses == builds performed (unbounded: distinct keys requested; bounded:
  // distinct keys + rebuilds after eviction); hits == every other serving.
  // Exactly one of the two is charged per get() in both modes.
  [[nodiscard]] long hits() const { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] long misses() const { return misses_.load(std::memory_order_relaxed); }
  // Bounded mode only: LRU victims displaced by an admitted build, and builds
  // that were served but NOT admitted (their IC density lost to the victim's).
  [[nodiscard]] long evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] long admission_rejects() const {
    return admission_rejects_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const CacheConfig& config() const { return config_; }

  // Admission/eviction weight: information content per cooked wire byte, so a
  // dense small document outranks a redundancy-padded large one.
  [[nodiscard]] static double admission_weight(const CookedDocument& doc);

 private:
  struct Entry {
    std::once_flag once;
    std::shared_ptr<const CookedDocument> doc;
  };
  // Bounded mode: residency + LRU bookkeeping under one mutex; builds run
  // outside it, deduplicated through a per-key in-flight record.
  struct Resident {
    std::shared_ptr<const CookedDocument> doc;
    std::list<CacheKey>::iterator lru;  // position in lru_ (front = hottest)
  };
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const CookedDocument> doc;
  };

  // The deterministic build: corpus document `key.doc_index` regenerated from
  // the cache seed, linearized at config().lod, IDA-encoded at key.gamma.
  [[nodiscard]] std::shared_ptr<const CookedDocument> build(const CacheKey& key) const;

  Entry& entry_for(const CacheKey& key);
  std::shared_ptr<const CookedDocument> get_bounded(const CacheKey& key);
  // Requires bounded_mu_ held. Applies the LRU + IC-weighted admission policy.
  void admit(const CacheKey& key, std::shared_ptr<const CookedDocument> doc);

  CacheConfig config_;
  mutable std::shared_mutex mu_;  // guards the unbounded map structure only
  std::map<CacheKey, std::unique_ptr<Entry>> entries_;
  mutable std::mutex bounded_mu_;  // bounded mode: residency + LRU + in-flight
  std::map<CacheKey, Resident> resident_;
  std::list<CacheKey> lru_;
  std::map<CacheKey, std::shared_ptr<InFlight>> inflight_;
  std::atomic<long> hits_{0};
  std::atomic<long> misses_{0};
  std::atomic<long> evictions_{0};
  std::atomic<long> admission_rejects_{0};
};

// Deterministic per-document seed: mixes the corpus seed with the document
// index so documents are independent of build order and of each other.
std::uint64_t document_seed(std::uint64_t corpus_seed, std::uint32_t doc_index);

}  // namespace mobiweb::fleet
