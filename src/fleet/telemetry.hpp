// Fleet telemetry: breadcrumb span logs, tail-based trace retention, and the
// exported timeline document.
//
// Watching a 100k-session run as it unfolds needs two things the end-of-run
// aggregates cannot give: time-bucketed metrics over the *simulated* clock
// (obs::TimeSeries, one per shard, merged order-independently) and full
// traces for the sessions that matter. Keeping a full obs::SessionTrace per
// session is out of the question at 1M sessions, so every session instead
// carries a CrumbLog — a fixed ring of the most recent span breadcrumbs
// (round boundaries, outage windows, cross-tier events, the terminal
// verdict). After the run, only the slowest ceil(trace_top_fraction *
// sessions) sessions plus every degraded / gave-up session have their crumbs
// materialized into full SessionTraces, which export through the existing
// Perfetto timeline_json with the PR's cross-tier span annotations.
//
// Everything here is deterministic: crumbs replay simulated timestamps, the
// tail selection breaks ties on (time desc, session asc), and the timeline
// document contains no wall-clock value — so a fixed (seed, sessions) run
// renders a bit-identical document at any shard count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/transfer.hpp"
#include "stats/slo.hpp"

namespace mobiweb::fleet {

struct FleetConfig;
struct FleetResult;

// One retained span breadcrumb. `aux` carries the small integer payload
// (round number, dropped-packet count); `value` the double one (durations,
// content).
struct Crumb {
  obs::Event type = obs::Event::kSessionStart;
  std::int32_t aux = 0;
  double time = 0.0;
  double value = 0.0;
};

// Fixed-capacity ring of the most recent crumbs — the per-session analogue
// of obs::FlightRecorder, sized in the tens of bytes so a 1M-session fleet
// can afford one each. Overwrites oldest at capacity; O(1) per push, no
// allocation after construction.
class CrumbLog {
 public:
  explicit CrumbLog(std::size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  void push(obs::Event type, double time, std::int32_t aux = 0,
            double value = 0.0) {
    ring_[next_] = Crumb{type, aux, time, value};
    next_ = (next_ + 1) % ring_.size();
    ++recorded_;
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] long recorded() const { return recorded_; }
  [[nodiscard]] long dropped() const {
    const long cap = static_cast<long>(ring_.size());
    return recorded_ > cap ? recorded_ - cap : 0;
  }

  // Retained crumbs, oldest first.
  [[nodiscard]] std::vector<Crumb> snapshot() const;

 private:
  std::vector<Crumb> ring_;
  std::size_t next_ = 0;
  long recorded_ = 0;
};

// A session whose full trace survived retention: the slowest tail or a
// degraded / gave-up failure (always kept).
struct RetainedTrace {
  std::uint32_t session = 0;
  double time_s = 0.0;        // transfer time — the tail ranking key
  bool failed = false;        // degraded or gave up
  obs::SessionTrace trace;    // materialized from the breadcrumb ring
};

// Tail ranking: slower first, session index breaks ties — total order, so
// the retained set is identical whatever order shards produced candidates.
[[nodiscard]] inline bool ranks_before(double time_a, std::uint32_t session_a,
                                       double time_b, std::uint32_t session_b) {
  if (time_a != time_b) return time_a > time_b;
  return session_a < session_b;
}

// Replays a breadcrumb ring into a full SessionTrace (events captured, so
// the timeline exporter can render outage / origin-outage / handoff spans).
// Crumbs that lost their opening partner to ring overwrite still render —
// the exporter falls back to duration-anchored spans.
[[nodiscard]] obs::SessionTrace materialize_trace(
    const std::string& label, double start_s,
    const sim::TransferResult& result, const CrumbLog& crumbs);

// One derived per-bucket series: integer-channel ratios (or rates), computed
// from the merged TimeSeries only, so they are shard-invariant by
// construction. NaN marks buckets where the metric is undefined.
struct DerivedSeries {
  std::string name;
  int direction = 0;  // SLO direction: +1 higher-better, -1 lower, 0 info
  std::vector<double> values;
};

// The standard fleet dashboard: sessions in flight, frames/s, and the
// stationary ratio series the SLO engine gates (loss, degraded-end,
// suspension, stale-serve, origin-up, replica-hit fractions).
[[nodiscard]] std::vector<DerivedSeries> derived_fleet_series(
    const obs::TimeSeries& ts);

// SLO verdicts for every derived series at the given drift tolerance.
[[nodiscard]] std::vector<stats::SloSeries> evaluate_fleet_slo(
    const obs::TimeSeries& ts, double tolerance);

// The whole timeline document ("mobiweb-timeline/1"): meta, the raw integer
// time series, the derived ratio series, the SLO verdict, and the retained
// traces as Perfetto traceEvents — loadable directly in ui.perfetto.dev.
// Contains no wall-clock value and nothing shard-dependent: bit-identical
// across shard counts for a fixed (seed, sessions) run.
[[nodiscard]] std::string timeline_document(const FleetResult& result,
                                            const FleetConfig& config);

}  // namespace mobiweb::fleet
