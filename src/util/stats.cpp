#include "util/stats.hpp"

#include <cmath>

namespace mobiweb {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  mean_ += delta * n2 / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

Summary summarize(const std::vector<double>& samples) {
  RunningStats rs;
  for (double s : samples) rs.add(s);
  Summary out;
  out.count = rs.count();
  out.mean = rs.mean();
  out.stddev = rs.stddev();
  out.ci95 = rs.ci95_halfwidth();
  out.min = rs.min();
  out.max = rs.max();
  return out;
}

}  // namespace mobiweb
