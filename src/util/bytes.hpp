// Byte-buffer alias and small helpers shared across the packet/coding layers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mobiweb {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

// Converts a string's bytes into a Bytes buffer (no encoding applied).
Bytes to_bytes(std::string_view s);

// Interprets a byte buffer as a string (no validation applied).
std::string to_string(ByteSpan bytes);

// Renders bytes as lowercase hex, e.g. {0xde, 0xad} -> "dead".
std::string to_hex(ByteSpan bytes);

// Parses lowercase/uppercase hex back into bytes. Throws std::invalid_argument
// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

// Appends `value` to `out` in little-endian order.
void put_u16(Bytes& out, std::uint16_t value);
void put_u32(Bytes& out, std::uint32_t value);

// Reads a little-endian integer at `offset`. Throws std::out_of_range if the
// buffer is too short.
std::uint16_t get_u16(ByteSpan in, std::size_t offset);
std::uint32_t get_u32(ByteSpan in, std::size_t offset);

}  // namespace mobiweb
