#include "util/lzss.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace mobiweb {

namespace {

constexpr std::size_t kWindow = 4096;      // 12-bit distance
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 18;      // kMinMatch + 15
constexpr std::size_t kHashSize = 1 << 13;

std::size_t hash3(const std::uint8_t* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> 19 & (kHashSize - 1);
}

}  // namespace

Bytes lzss_compress(ByteSpan input) {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  put_u32(out, static_cast<std::uint32_t>(input.size()));

  // Head of the most recent position for each 3-byte hash (single-probe
  // chain: enough for text, keeps the encoder O(n)).
  std::array<std::size_t, kHashSize> head;
  head.fill(static_cast<std::size_t>(-1));

  std::size_t pos = 0;
  std::size_t flag_at = 0;  // offset of the current flag byte in `out`
  int tokens_in_group = 8;  // forces a new flag byte on the first token

  auto begin_token = [&](bool is_match) {
    if (tokens_in_group == 8) {
      flag_at = out.size();
      out.push_back(0);
      tokens_in_group = 0;
    }
    if (is_match) {
      out[flag_at] |= static_cast<std::uint8_t>(1u << tokens_in_group);
    }
    ++tokens_in_group;
  };

  while (pos < input.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos + kMinMatch <= input.size()) {
      const std::size_t h = hash3(&input[pos]);
      const std::size_t cand = head[h];
      if (cand != static_cast<std::size_t>(-1) && cand < pos &&
          pos - cand <= kWindow) {
        std::size_t len = 0;
        const std::size_t limit = std::min(kMaxMatch, input.size() - pos);
        while (len < limit && input[cand + len] == input[pos + len]) ++len;
        if (len >= kMinMatch) {
          best_len = len;
          best_dist = pos - cand;
        }
      }
      head[h] = pos;
    }

    if (best_len >= kMinMatch) {
      begin_token(true);
      const auto dist = static_cast<std::uint16_t>(best_dist - 1);      // 12 bits
      const auto len = static_cast<std::uint16_t>(best_len - kMinMatch); // 4 bits
      out.push_back(static_cast<std::uint8_t>(dist & 0xff));
      out.push_back(static_cast<std::uint8_t>(((dist >> 8) & 0x0f) | (len << 4)));
      // Index the skipped positions too so later matches can reference them.
      const std::size_t end = pos + best_len;
      for (std::size_t p = pos + 1; p + kMinMatch <= input.size() && p < end; ++p) {
        head[hash3(&input[p])] = p;
      }
      pos = end;
    } else {
      begin_token(false);
      out.push_back(input[pos]);
      ++pos;
    }
  }
  return out;
}

Bytes lzss_decompress(ByteSpan compressed) {
  if (compressed.size() < 4) {
    throw std::invalid_argument("lzss: truncated header");
  }
  const std::uint32_t raw_size = get_u32(compressed, 0);
  // Every stream byte expands to at most kMaxMatch output bytes (a 2-byte
  // match token yields <= 18; a literal yields 1; flag bytes yield 0), so a
  // header claiming more is forged. Rejecting it here keeps the allocation
  // below bounded by the actual input size instead of an attacker's u32.
  if (raw_size > (compressed.size() - 4) * kMaxMatch) {
    throw std::invalid_argument("lzss: raw size exceeds maximum expansion");
  }
  Bytes out;
  out.reserve(raw_size);

  std::size_t pos = 4;
  std::uint8_t flags = 0;
  int tokens_left = 0;
  while (out.size() < raw_size) {
    if (tokens_left == 0) {
      if (pos >= compressed.size()) {
        throw std::invalid_argument("lzss: truncated stream (flags)");
      }
      flags = compressed[pos++];
      tokens_left = 8;
    }
    const bool is_match = flags & 1u;
    flags >>= 1;
    --tokens_left;
    if (is_match) {
      if (pos + 2 > compressed.size()) {
        throw std::invalid_argument("lzss: truncated match token");
      }
      const std::uint8_t lo = compressed[pos];
      const std::uint8_t hi = compressed[pos + 1];
      pos += 2;
      const std::size_t dist = (static_cast<std::size_t>(hi & 0x0f) << 8 | lo) + 1;
      const std::size_t len = static_cast<std::size_t>(hi >> 4) + kMinMatch;
      if (dist > out.size()) {
        throw std::invalid_argument("lzss: match reference before stream start");
      }
      for (std::size_t i = 0; i < len && out.size() < raw_size; ++i) {
        out.push_back(out[out.size() - dist]);
      }
    } else {
      if (pos >= compressed.size()) {
        throw std::invalid_argument("lzss: truncated literal");
      }
      out.push_back(compressed[pos++]);
    }
  }
  return out;
}

}  // namespace mobiweb
