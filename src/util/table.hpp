// Plain-text table rendering for the reproduction harnesses: every bench
// binary prints its figure/table as an aligned ASCII table plus a CSV block
// that can be piped into a plotting tool.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mobiweb {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 4);

  // Aligned, boxed ASCII rendering.
  [[nodiscard]] std::string render() const;

  // Comma-separated rendering (header + rows).
  [[nodiscard]] std::string render_csv() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

}  // namespace mobiweb
