// Deterministic pseudo-random number generation for the simulator.
//
// All stochastic behaviour in the repository (channel corruption, synthetic
// document generation, browsing-session relevance) flows through Rng so that
// every experiment is reproducible from a single seed.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace mobiweb {

// SplitMix64: used to expand a user seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** — fast, high-quality generator; the simulator's workhorse.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6d6f6269776562ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). Uses rejection sampling to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    MOBIWEB_CHECK_MSG(bound > 0, "next_below: bound must be positive");
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    MOBIWEB_CHECK_MSG(lo <= hi, "next_int: empty range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  // Uniform double in [lo, hi).
  double next_range(double lo, double hi) {
    MOBIWEB_CHECK_MSG(lo <= hi, "next_range: empty range");
    return lo + (hi - lo) * next_double();
  }

  // Bernoulli trial with success probability p.
  bool next_bernoulli(double p) { return next_double() < p; }

  // Derives an independent child generator; used to give each simulation
  // repetition its own stream.
  Rng fork() { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace mobiweb
