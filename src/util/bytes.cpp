#include "util/bytes.hpp"

#include <stdexcept>

namespace mobiweb {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(ByteSpan bytes) {
  return std::string(bytes.begin(), bytes.end());
}

std::string to_hex(ByteSpan bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

namespace {
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: invalid hex character");
}
}  // namespace

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) * 16 + hex_value(hex[i + 1])));
  }
  return out;
}

void put_u16(Bytes& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value & 0xff));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
}

void put_u32(Bytes& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

std::uint16_t get_u16(ByteSpan in, std::size_t offset) {
  if (offset + 2 > in.size()) {
    throw std::out_of_range("get_u16: buffer too short");
  }
  return static_cast<std::uint16_t>(in[offset] | (in[offset + 1] << 8));
}

std::uint32_t get_u32(ByteSpan in, std::size_t offset) {
  if (offset + 4 > in.size()) {
    throw std::out_of_range("get_u32: buffer too short");
  }
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | in[offset + static_cast<std::size_t>(i)];
  }
  return v;
}

}  // namespace mobiweb
