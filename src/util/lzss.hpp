// LZSS compression.
//
// The paper's prototype routes transfers through client/server interceptors
// "where alternative mechanisms such as compression or ARQ are also
// implemented" (§4.2), citing eNetwork Web Express-style protocol reduction.
// This is that compression mechanism: a self-contained byte-oriented LZSS
// (LZ77 with a literal/match flag bitmap), chosen for tiny memory footprint —
// the decoder state suits a battery-constrained client.
//
// Format: [u32 raw_size][stream]; stream = groups of 8 tokens preceded by a
// flag byte (bit i set = token i is a match). Literal = 1 byte. Match =
// 2 bytes: 12-bit distance (1..4096), 4-bit length (3..18).
#pragma once

#include "util/bytes.hpp"

namespace mobiweb {

// Compresses `input`. Output is never catastrophically larger than the input
// (worst case: 4 + input + input/8 + 1 bytes).
Bytes lzss_compress(ByteSpan input);

// Decompresses a buffer produced by lzss_compress. Throws
// std::invalid_argument on malformed input (truncation, bad references).
Bytes lzss_decompress(ByteSpan compressed);

}  // namespace mobiweb
