#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/check.hpp"

namespace mobiweb {

namespace {

// The pool whose batch the current thread is executing, if any. Set for the
// whole lifetime of a worker thread and scoped around an external thread's
// participation in run(), so re-entrant run() calls can be detected and
// executed inline (see ThreadPool::run). A plain pointer suffices: nesting
// across *different* pools saves and restores the previous value.
thread_local const ThreadPool* t_active_pool = nullptr;

struct ActivePoolScope {
  const ThreadPool* prev;
  explicit ActivePoolScope(const ThreadPool* pool) : prev(t_active_pool) {
    t_active_pool = pool;
  }
  ~ActivePoolScope() { t_active_pool = prev; }
};

}  // namespace

// A batch stays on the pool queue until every shard has been claimed; any
// number of workers (plus the submitting thread) pump shards from it
// concurrently via the `next` ticket counter.
struct ThreadPool::Batch {
  std::size_t total = 0;
  std::function<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr err;

  void pump() {
    for (;;) {
      const std::size_t shard = next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= total) return;
      try {
        fn(shard);
      } catch (...) {
        std::scoped_lock lock(mu);
        if (!err) err = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        std::scoped_lock lock(mu);  // pairs with the waiter's predicate check
        cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? hw - 1 : 0;  // the caller participates in every batch
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_worker() const { return t_active_pool == this; }

void ThreadPool::worker_loop() {
  ActivePoolScope scope(this);
  std::unique_lock lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    auto batch = queue_.front();
    if (batch->next.load(std::memory_order_relaxed) >= batch->total) {
      queue_.pop_front();  // fully claimed; remaining shards finish elsewhere
      continue;
    }
    lock.unlock();
    batch->pump();
    lock.lock();
    if (!queue_.empty() && queue_.front() == batch) queue_.pop_front();
  }
}

void ThreadPool::run(std::size_t shards,
                     const std::function<void(std::size_t)>& fn) {
  MOBIWEB_CHECK_MSG(static_cast<bool>(fn), "ThreadPool::run: empty function");
  if (shards == 0) return;
  // Re-entrant call from a thread that is already executing one of this
  // pool's shards: execute inline. Enqueueing would park this thread — a pool
  // thread — in a completion wait while the nested shards queue behind other
  // batches; with every pool thread nested the same way, the pool wedges with
  // work queued and nobody left to pump it. Inline execution keeps the
  // invariant that a claimed shard always runs to completion without waiting
  // on another batch.
  if (shards == 1 || workers_.empty() || t_active_pool == this) {
    for (std::size_t s = 0; s < shards; ++s) fn(s);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->total = shards;
  batch->fn = fn;
  {
    std::scoped_lock lock(mu_);
    queue_.push_back(batch);
  }
  cv_.notify_all();
  {
    // The submitting thread participates, and any nested run() it makes while
    // executing a shard is detected above and runs inline.
    ActivePoolScope scope(this);
    batch->pump();
  }
  {
    std::unique_lock lock(batch->mu);
    batch->cv.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->total;
    });
  }
  if (batch->err) std::rethrow_exception(batch->err);
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t min_chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const std::size_t per_chunk = std::max<std::size_t>(min_chunk, 1);
  const std::size_t shards =
      std::min(concurrency(), (count + per_chunk - 1) / per_chunk);
  const std::size_t chunk = (count + shards - 1) / shards;
  run(shards, [&](std::size_t s) {
    const std::size_t lo = begin + s * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo < hi) fn(lo, hi);
  });
}

ThreadPool& ThreadPool::global() {
  // Leaked intentionally: joining workers during static destruction can
  // deadlock with other exit-time teardown, and a static pointer keeps the
  // allocation reachable for leak checkers.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace mobiweb
