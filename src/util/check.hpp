// Lightweight precondition / invariant checking.
//
// MOBIWEB_CHECK is active in all build types: these guard API contracts whose
// violation would otherwise corrupt state silently (e.g. mismatched packet
// sizes fed to the erasure coder). Failures throw mobiweb::ContractViolation
// so callers and tests can observe them deterministically.
#pragma once

#include <stdexcept>
#include <string>

namespace mobiweb {

// Thrown when a documented precondition or internal invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::string full = "contract violation: ";
  full += expr;
  full += " at ";
  full += file;
  full += ":";
  full += std::to_string(line);
  if (!msg.empty()) {
    full += " (";
    full += msg;
    full += ")";
  }
  throw ContractViolation(full);
}
}  // namespace detail

}  // namespace mobiweb

#define MOBIWEB_CHECK(expr)                                                \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::mobiweb::detail::contract_fail(#expr, __FILE__, __LINE__, "");     \
    }                                                                      \
  } while (false)

#define MOBIWEB_CHECK_MSG(expr, msg)                                       \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::mobiweb::detail::contract_fail(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                      \
  } while (false)
