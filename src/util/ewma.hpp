// Exponentially weighted moving average.
//
// The paper (§4.2) suggests choosing the redundancy ratio γ as "an adaptive
// function of the observed summarized value of α, using perhaps a kind of
// EWMA measure". The transmit module's AdaptiveGamma controller uses this.
#pragma once

#include "util/check.hpp"

namespace mobiweb {

class Ewma {
 public:
  // `alpha` is the smoothing factor in (0, 1]; higher reacts faster.
  explicit Ewma(double alpha) : alpha_(alpha) {
    MOBIWEB_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "Ewma: alpha must be in (0,1]");
  }

  void observe(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ = alpha_ * sample + (1.0 - alpha_) * value_;
    }
    ++count_;
  }

  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] double value_or(double fallback) const {
    return initialized_ ? value_ : fallback;
  }
  [[nodiscard]] long count() const { return count_; }

  void reset() {
    initialized_ = false;
    value_ = 0.0;
    count_ = 0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
  long count_ = 0;
};

}  // namespace mobiweb
