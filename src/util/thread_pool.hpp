// Fixed-size worker pool for sharding CPU-heavy coding loops.
//
// The IDA encode/decode row loops are embarrassingly parallel: every output
// row is an independent dot product over the same read-only inputs. The pool
// runs a batch of shards across its workers with the calling thread
// participating, so a 1-worker (or 0-worker) pool degrades gracefully to
// serial execution rather than deadlocking.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mobiweb {

class ThreadPool {
 public:
  // threads == 0 picks hardware_concurrency - 1 (the caller participates in
  // every batch, so the pool only needs the *extra* threads).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Worker threads owned by the pool (0 on single-core machines).
  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  // Degree of parallelism a batch can reach: workers + the calling thread.
  [[nodiscard]] std::size_t concurrency() const { return workers_.size() + 1; }

  // Runs fn(shard) for every shard in [0, shards), blocking until all
  // complete. The calling thread executes shards too. If any shard throws,
  // the first exception is rethrown after the batch drains.
  //
  // Re-entrant use is safe and cheap: when run() is called from a thread that
  // is already executing a batch of this same pool (a worker, or an external
  // thread inside a shard of an outer batch — e.g. a fleet cache fill whose
  // IDA encode shards its rows), the nested batch executes inline on the
  // calling thread instead of being enqueued. Inline execution never parks a
  // pool thread in a wait, so nested coding work cannot stall the pool, and
  // the outer batch's sharding already provides the parallelism.
  void run(std::size_t shards, const std::function<void(std::size_t)>& fn);

  // True when the calling thread is currently executing a shard of one of
  // this pool's batches (and a run() call would therefore execute inline).
  [[nodiscard]] bool in_worker() const;

  // Splits [begin, end) into at most concurrency() contiguous chunks of at
  // least min_chunk elements and runs fn(lo, hi) for each.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t min_chunk,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  // Shared process-wide pool used by the coding stack.
  static ThreadPool& global();

 private:
  struct Batch;

  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mobiweb
