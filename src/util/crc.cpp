#include "util/crc.hpp"

#include <array>

namespace mobiweb {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

constexpr std::array<std::uint16_t, 256> make_crc16_table() {
  std::array<std::uint16_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint16_t c = static_cast<std::uint16_t>(i << 8);
    for (int bit = 0; bit < 8; ++bit) {
      c = static_cast<std::uint16_t>((c & 0x8000u) ? ((c << 1) ^ 0x1021u) : (c << 1));
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint16_t, 256> kCrc16Table = make_crc16_table();

}  // namespace

void Crc32::update(ByteSpan data) {
  std::uint32_t c = state_;
  for (std::uint8_t b : data) {
    c = kCrc32Table[(c ^ b) & 0xffu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t crc32(ByteSpan data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

std::uint16_t crc16_ccitt(ByteSpan data) {
  std::uint16_t c = 0xffffu;
  for (std::uint8_t b : data) {
    c = static_cast<std::uint16_t>((c << 8) ^ kCrc16Table[((c >> 8) ^ b) & 0xffu]);
  }
  return c;
}

}  // namespace mobiweb
