#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace mobiweb {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MOBIWEB_CHECK_MSG(!headers_.empty(), "TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  MOBIWEB_CHECK_MSG(row.size() == headers_.size(), "TextTable: row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::right << cells[c] << " |";
    }
    os << '\n';
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return os.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.render();
}

}  // namespace mobiweb
