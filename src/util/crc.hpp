// Cyclic redundancy codes used for packet-corruption detection (paper §4.1:
// "we propose to adopt the cyclic redundancy code (CRC) for the detection of
// packet corruption, since it has a low computational cost and a high error
// coverage").
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace mobiweb {

// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320). Table-driven.
std::uint32_t crc32(ByteSpan data);

// Incremental form: feed chunks, then finalize. Equivalent to crc32() over the
// concatenation of all chunks.
class Crc32 {
 public:
  void update(ByteSpan data);
  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xffffffffu; }
  void reset() { state_ = 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

// CRC-16-CCITT (polynomial 0x1021, init 0xFFFF, non-reflected). Provided for
// header checksums where a 2-byte code suffices.
std::uint16_t crc16_ccitt(ByteSpan data);

}  // namespace mobiweb
