// Online statistics (Welford) and summary helpers.
//
// The paper reports the mean over 50 repetitions and notes standard deviations
// of 1–5% of the mean with tight 95% confidence intervals; the experiment
// runner reports the same quantities through this module.
#pragma once

#include <cstddef>
#include <vector>

namespace mobiweb {

// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  // Half-width of the ~95% confidence interval for the mean (normal
  // approximation, 1.96 * s / sqrt(n)); 0 for fewer than two samples.
  [[nodiscard]] double ci95_halfwidth() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  void reset() { *this = RunningStats{}; }

  // Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& samples);

}  // namespace mobiweb
