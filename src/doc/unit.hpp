// Organizational units (paper §3): the tree of document / section /
// subsection / subsubsection / paragraph pieces a web document is partitioned
// into. The tree is value-semantic; derived quantities (keyword counts,
// information content) are filled in by the SC generator.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "doc/lod.hpp"
#include "text/keywords.hpp"
#include "text/tokenize.hpp"

namespace mobiweb::doc {

struct OrgUnit {
  Lod lod = Lod::kDocument;
  std::string title;  // e.g. the <title> child's text; may be empty
  // True for units synthesized to hold text that sat directly inside a
  // non-leaf unit ("Paragraphs not belonging to any subsection are grouped
  // under a virtual subsection", §3.3).
  bool virtual_unit = false;

  // Text belonging directly to this unit (only leaves carry text once the
  // recognizer has run — virtual units absorb interior text).
  std::string own_text;
  // Tokens of own_text with emphasis flags, produced by the recognizer.
  std::vector<text::Token> own_tokens;

  std::vector<OrgUnit> children;

  // ---- Filled in by the SC generator ----
  // Keyword occurrences of the whole subtree (own + descendants).
  text::TermCounts terms;
  // Static information content p_i (§3.1). The root's is 1 by definition.
  double info_content = 0.0;

  [[nodiscard]] bool is_leaf() const { return children.empty(); }

  // Total number of units in this subtree (including this one).
  [[nodiscard]] std::size_t subtree_units() const;

  // Concatenated text of the subtree in document order, separating units
  // with a single newline.
  [[nodiscard]] std::string subtree_text() const;
};

// Hierarchical label of a unit: the root is "" (rendered "(document)");
// children are numbered from 0 at every level, "2.0.1"-style, matching the
// paper's Table 1 labelling.
std::string unit_label(const std::vector<std::size_t>& path);

// Depth-first walk delivering (unit, path); path holds child indices from the
// root (empty for the root itself).
void walk(const OrgUnit& root,
          const std::function<void(const OrgUnit&, const std::vector<std::size_t>&)>& fn);
void walk(OrgUnit& root,
          const std::function<void(OrgUnit&, const std::vector<std::size_t>&)>& fn);

// The "frontier" of the tree at a LOD: descending from the root, a unit is
// emitted when its level is at least `lod` or it has no children; otherwise
// descent continues. At Lod::kDocument this is just {root}; at
// Lod::kParagraph it is the set of leaves. Document order is preserved.
std::vector<const OrgUnit*> frontier_at(const OrgUnit& root, Lod lod);

// Looks a unit up by path; nullptr when out of range.
const OrgUnit* unit_at_path(const OrgUnit& root, const std::vector<std::size_t>& path);

}  // namespace mobiweb::doc
