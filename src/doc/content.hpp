// Information content, the Structural Characteristic, and the query-based
// variants QIC and MQIC (paper §3.1–§3.3).
//
// Definitions implemented verbatim:
//   ω_a   = 1 − log2(|a_D| / ‖V_D‖∞)                       (keyword weight)
//   p_i   = Σ_{a∈n_i} |a_{n_i}|·ω_a / Σ_{d∈D} |d_D|·ω_d     (IC)
//   ω_a^Q = 1 − log2(|a_Q| / ‖V_Q‖∞), 0 if a ∉ Q            (query weight)
//   q_i^Q = Σ_{a∈n_i∩Q} |a|·ω_a·ω_a^Q / Σ_{d∈D∩Q} |d|·ω_d·ω_d^Q   (QIC)
//   λ     = Σ_{a∈D} |a_D| / Σ_{a∈Q} |a_Q|                   (MQIC scale)
//   q̃_i^Q = Σ_{a∈n_i} |a|·(ω_a + λ·ω_a^Q) / Σ_{d∈D} |d|·(ω_d + λ·ω_d^Q)
//
// The infinity norm is used for both document and query occurrence vectors,
// so "the weight of each keyword [is] determined without human intervention".
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "doc/unit.hpp"
#include "text/keywords.hpp"
#include "xml/dom.hpp"

namespace mobiweb::doc {

// ω for a term occurring `count` times when the most frequent term occurs
// `inf_norm` times. count in [1, inf_norm] gives ω in [1, 1 + log2(inf_norm)].
double keyword_weight(long count, long inf_norm);

// The SC: the organizational-unit tree annotated with keyword statistics and
// static information content (the "tree-like indexing structure" of §3).
class StructuralCharacteristic {
 public:
  [[nodiscard]] const OrgUnit& root() const { return root_; }
  [[nodiscard]] const text::TermCounts& document_terms() const { return root_.terms; }
  [[nodiscard]] long norm() const { return norm_; }

  // ω_a; 0 when the term does not occur in the document.
  [[nodiscard]] double weight(std::string_view term) const;

  // Σ_{d∈D} |d_D|·ω_d — the IC denominator.
  [[nodiscard]] double weighted_total() const { return weighted_total_; }

  // DFS listing (root included, depth 0), for Table-1-style output.
  struct Row {
    std::string label;
    const OrgUnit* unit;
    std::size_t depth;
  };
  [[nodiscard]] std::vector<Row> rows() const;

  // Rebuilds an SC from a unit tree whose per-unit `terms` are already
  // populated (e.g. parsed back from a serialized SC, see doc/sc_io.hpp).
  // Norm, keyword weights and information content are recomputed from the
  // term counts; own_text/own_tokens are not needed — the SC is an index.
  static StructuralCharacteristic from_indexed_tree(OrgUnit tree);

 private:
  friend class ScGenerator;
  OrgUnit root_;
  long norm_ = 0;
  double weighted_total_ = 0.0;
};

struct ScOptions {
  text::KeywordOptions keywords;
};

// Final pipeline stage ("structural characteristic generator"): computes each
// unit's keyword index and information content. Combined with recognize()
// this realizes the five-module pipeline of §3.3 — recognizer, lemmatizer,
// word filter, keyword extractor, SC generator.
class ScGenerator {
 public:
  explicit ScGenerator(ScOptions options = {});

  // Consumes a recognized unit tree.
  [[nodiscard]] StructuralCharacteristic generate(OrgUnit tree) const;
  // Convenience: recognize + generate.
  [[nodiscard]] StructuralCharacteristic generate(const xml::Document& document) const;

  [[nodiscard]] const text::KeywordExtractor& extractor() const { return extractor_; }

 private:
  text::KeywordExtractor extractor_;
};

// A keyword-based search query (§3.2). Words are normalized through the same
// pipeline as document keywords so they compare equal after stemming;
// repeated words carry multiplicity.
class Query {
 public:
  Query() = default;
  static Query from_text(std::string_view text, const text::KeywordExtractor& extractor);
  static Query from_terms(text::TermCounts terms);

  [[nodiscard]] const text::TermCounts& terms() const { return terms_; }
  [[nodiscard]] bool empty() const { return terms_.counts.empty(); }
  [[nodiscard]] long total_occurrences() const { return terms_.total(); }
  [[nodiscard]] long norm() const { return terms_.max_count(); }

  // ω_a^Q: 0 when the term is not a querying word.
  [[nodiscard]] double weight(std::string_view term) const;

 private:
  text::TermCounts terms_;
};

// Evaluates QIC and MQIC for units of one SC against one query. Denominators
// and λ are computed once at construction; per-unit evaluation then only
// touches the (few) querying words.
class ContentScorer {
 public:
  ContentScorer(const StructuralCharacteristic& sc, Query query);

  // Static information content (precomputed on the unit).
  [[nodiscard]] static double ic(const OrgUnit& unit) { return unit.info_content; }

  [[nodiscard]] double qic(const OrgUnit& unit) const;
  [[nodiscard]] double mqic(const OrgUnit& unit) const;

  [[nodiscard]] double lambda() const { return lambda_; }
  // False when no querying word occurs in the document (every QIC is then 0).
  [[nodiscard]] bool query_matches() const { return qic_denominator_ > 0.0; }
  [[nodiscard]] const Query& query() const { return query_; }

 private:
  const StructuralCharacteristic* sc_;
  Query query_;
  double qic_denominator_ = 0.0;
  double mqic_denominator_ = 0.0;
  double lambda_ = 0.0;
};

}  // namespace mobiweb::doc
