// Alternative information-content definitions.
//
// The paper's §6: "Alternative ways of defining the information content of a
// document would be explored." This module provides the two natural
// contenders next to the paper's log-weighted scheme, in the same normalized,
// additive form so they drop into linearize()/ranking unchanged:
//
//   * LengthContent   — content proportional to a unit's share of the
//                       document text (the "bytes are bytes" null model;
//                       ranking by it reproduces size order).
//   * TfIdfContent    — classic TF-IDF against a corpus: terms that are rare
//                       across the corpus weigh more, so boilerplate shared
//                       by every document stops inflating units.
//
// CorpusStats accumulates document frequencies across published documents
// (the Server-side corpus) and hands out idf weights.
#pragma once

#include <string_view>
#include <unordered_map>

#include "doc/content.hpp"

namespace mobiweb::doc {

// Document-frequency statistics over a corpus of SCs.
class CorpusStats {
 public:
  // Registers one document's term set (counts ignored, presence only).
  void add_document(const StructuralCharacteristic& sc);

  [[nodiscard]] long documents() const { return documents_; }
  [[nodiscard]] long document_frequency(std::string_view term) const;

  // Smoothed idf: ln((1 + D) / (1 + df)) + 1, always positive so unseen
  // corpora degrade to plain TF.
  [[nodiscard]] double idf(std::string_view term) const;

 private:
  long documents_ = 0;
  std::unordered_map<std::string, long> df_;
};

// Content by text share: unit subtree bytes / document bytes. Additive by
// construction; the root scores 1 (or 0 for an empty document).
double length_content(const StructuralCharacteristic& sc, const OrgUnit& unit);

// TF-IDF content of a unit, normalized so the document root scores 1:
//   Σ_{a∈unit} |a_unit| · idf(a)  /  Σ_{d∈doc} |d_doc| · idf(d)
// Additive over subtrees exactly like the paper's IC.
class TfIdfScorer {
 public:
  TfIdfScorer(const StructuralCharacteristic& sc, const CorpusStats& corpus);

  [[nodiscard]] double content(const OrgUnit& unit) const;
  [[nodiscard]] double denominator() const { return denominator_; }

 private:
  const CorpusStats* corpus_;
  double denominator_ = 0.0;
};

}  // namespace mobiweb::doc
