// Structural Characteristic serialization.
//
// In the prototype architecture (Figure 1) the SC lives beside the document
// in the server's database and its metadata reaches the client so units can
// be rendered "at the proper position". sc_io is that wire/storage format:
// the unit tree with LOD, titles, virtual flags, information content and the
// per-unit keyword index, as XML.
//
// Round trip: parse_sc(write_sc(sc)) reproduces every unit's terms and
// (recomputed) information content. Unit text is NOT serialized — the SC is
// an index, the document body travels separately.
#pragma once

#include <string>
#include <string_view>

#include "doc/content.hpp"

namespace mobiweb::doc {

// Serializes the SC as an XML document (<sc> root).
std::string write_sc(const StructuralCharacteristic& sc);

// Parses XML produced by write_sc. Throws xml::ParseError on malformed XML
// and std::invalid_argument on schema violations (unknown lod, bad counts).
StructuralCharacteristic parse_sc(std::string_view xml_text);

}  // namespace mobiweb::doc
