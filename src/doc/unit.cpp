#include "doc/unit.hpp"

namespace mobiweb::doc {

std::size_t OrgUnit::subtree_units() const {
  std::size_t n = 1;
  for (const auto& c : children) n += c.subtree_units();
  return n;
}

std::string OrgUnit::subtree_text() const {
  std::string out;
  std::function<void(const OrgUnit&)> rec = [&](const OrgUnit& u) {
    if (!u.own_text.empty()) {
      if (!out.empty()) out.push_back('\n');
      out += u.own_text;
    }
    for (const auto& c : u.children) rec(c);
  };
  rec(*this);
  return out;
}

std::string unit_label(const std::vector<std::size_t>& path) {
  if (path.empty()) return "(document)";
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(path[i]);
  }
  return out;
}

namespace {
template <typename UnitT, typename Fn>
void walk_impl(UnitT& unit, std::vector<std::size_t>& path, const Fn& fn) {
  fn(unit, path);
  for (std::size_t i = 0; i < unit.children.size(); ++i) {
    path.push_back(i);
    walk_impl(unit.children[i], path, fn);
    path.pop_back();
  }
}
}  // namespace

void walk(const OrgUnit& root,
          const std::function<void(const OrgUnit&, const std::vector<std::size_t>&)>& fn) {
  std::vector<std::size_t> path;
  walk_impl(root, path, fn);
}

void walk(OrgUnit& root,
          const std::function<void(OrgUnit&, const std::vector<std::size_t>&)>& fn) {
  std::vector<std::size_t> path;
  walk_impl(root, path, fn);
}

namespace {
void frontier_rec(const OrgUnit& unit, Lod lod, std::vector<const OrgUnit*>& out) {
  if (!coarser_or_equal(unit.lod, lod) || unit.lod == lod || unit.is_leaf()) {
    out.push_back(&unit);
    return;
  }
  for (const auto& c : unit.children) frontier_rec(c, lod, out);
}
}  // namespace

std::vector<const OrgUnit*> frontier_at(const OrgUnit& root, Lod lod) {
  std::vector<const OrgUnit*> out;
  frontier_rec(root, lod, out);
  return out;
}

const OrgUnit* unit_at_path(const OrgUnit& root, const std::vector<std::size_t>& path) {
  const OrgUnit* cur = &root;
  for (std::size_t idx : path) {
    if (idx >= cur->children.size()) return nullptr;
    cur = &cur->children[idx];
  }
  return cur;
}

}  // namespace mobiweb::doc
