#include "doc/linear.hpp"

#include <algorithm>

#include "obs/profile.hpp"
#include "util/check.hpp"
#include "util/lzss.hpp"

namespace mobiweb::doc {

double LinearDocument::total_content() const {
  double t = 0.0;
  for (const auto& s : segments) t += s.content;
  return t;
}

double LinearDocument::content_of_prefix(std::size_t nbytes) const {
  return content_of_range(0, nbytes);
}

double LinearDocument::content_of_range(std::size_t begin, std::size_t end) const {
  if (end <= begin) return 0.0;
  double total = 0.0;
  for (const auto& s : segments) {
    if (s.size == 0) {
      // Zero-byte unit: counts once its position has been passed.
      if (s.offset >= begin && s.offset < end) total += s.content;
      continue;
    }
    const std::size_t s_end = s.offset + s.size;
    const std::size_t lo = std::max(begin, s.offset);
    const std::size_t hi = std::min(end, s_end);
    if (hi > lo) {
      total += s.content * static_cast<double>(hi - lo) / static_cast<double>(s.size);
    }
  }
  return total;
}

std::string render_unit_text(const OrgUnit& unit) {
  std::string out;
  const auto append_line = [&out](const std::string& s) {
    if (s.empty()) return;
    if (!out.empty() && out.back() != '\n') out.push_back('\n');
    out += s;
  };
  append_line(unit.title);
  append_line(unit.own_text);
  for (const auto& child : unit.children) {
    append_line(render_unit_text(child));
  }
  return out;
}

LinearDocument linearize(const StructuralCharacteristic& sc,
                         const LinearizeOptions& options) {
  const auto frontier = frontier_at(sc.root(), options.lod);

  // Build (unit, label, score) triples in document order.
  struct Entry {
    const OrgUnit* unit;
    std::string label;
    double score;
  };
  std::vector<Entry> entries;
  entries.reserve(frontier.size());
  {
    // Labels come from a walk keyed by unit address.
    std::size_t next = 0;
    walk(sc.root(), [&](const OrgUnit& u, const std::vector<std::size_t>& path) {
      if (next < frontier.size() && &u == frontier[next]) {
        entries.push_back(Entry{&u, unit_label(path), 0.0});
        ++next;
      }
    });
    MOBIWEB_CHECK_MSG(entries.size() == frontier.size(),
                      "linearize: frontier/walk mismatch");
  }

  for (auto& e : entries) {
    switch (options.rank) {
      case RankBy::kDocumentOrder:
        e.score = e.unit->info_content;
        break;
      case RankBy::kIc:
        e.score = e.unit->info_content;
        break;
      case RankBy::kQic:
        MOBIWEB_CHECK_MSG(options.scorer != nullptr, "linearize: QIC needs a scorer");
        e.score = options.scorer->qic(*e.unit);
        break;
      case RankBy::kMqic:
        MOBIWEB_CHECK_MSG(options.scorer != nullptr, "linearize: MQIC needs a scorer");
        e.score = options.scorer->mqic(*e.unit);
        break;
    }
  }

  if (options.rank != RankBy::kDocumentOrder) {
    // Stable: equal scores keep document order.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) { return a.score > b.score; });
  }

  LinearDocument out;
  out.compressed_units = options.compress;
  for (const auto& e : entries) {
    const std::string text = render_unit_text(*e.unit);
    Bytes bytes(text.begin(), text.end());
    if (options.compress) {
      MOBIWEB_PROFILE_SCOPE("lzss.compress");
      bytes = lzss_compress(ByteSpan(bytes));
    }
    Segment seg;
    seg.label = e.label;
    seg.offset = out.payload.size();
    seg.size = bytes.size();
    seg.content = e.score;
    out.segments.push_back(std::move(seg));
    out.payload.insert(out.payload.end(), bytes.begin(), bytes.end());
  }
  return out;
}

std::string reassemble_text(const LinearDocument& doc) {
  std::string out;
  for (const auto& seg : doc.segments) {
    MOBIWEB_CHECK_MSG(seg.offset + seg.size <= doc.payload.size(),
                      "reassemble_text: segment out of payload bounds");
    const ByteSpan bytes =
        ByteSpan(doc.payload).subspan(seg.offset, seg.size);
    if (doc.compressed_units) {
      MOBIWEB_PROFILE_SCOPE("lzss.decompress");
      const Bytes raw = lzss_decompress(bytes);
      out.append(raw.begin(), raw.end());
    } else {
      out.append(bytes.begin(), bytes.end());
    }
    if (!out.empty() && out.back() != '\n') out.push_back('\n');
  }
  return out;
}

}  // namespace mobiweb::doc
