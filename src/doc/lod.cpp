#include "doc/lod.hpp"

namespace mobiweb::doc {

std::string_view lod_name(Lod lod) {
  switch (lod) {
    case Lod::kDocument: return "document";
    case Lod::kSection: return "section";
    case Lod::kSubsection: return "subsection";
    case Lod::kSubsubsection: return "subsubsection";
    case Lod::kParagraph: return "paragraph";
  }
  return "unknown";
}

std::optional<Lod> lod_from_name(std::string_view name) {
  if (name == "document") return Lod::kDocument;
  if (name == "section") return Lod::kSection;
  if (name == "subsection") return Lod::kSubsection;
  if (name == "subsubsection") return Lod::kSubsubsection;
  if (name == "paragraph") return Lod::kParagraph;
  return std::nullopt;
}

std::optional<Lod> lod_from_element(std::string_view element_name) {
  if (element_name == "document" || element_name == "paper" ||
      element_name == "research-paper" || element_name == "article") {
    return Lod::kDocument;
  }
  if (element_name == "abstract" || element_name == "section" ||
      element_name == "sect") {
    return Lod::kSection;
  }
  if (element_name == "subsection" || element_name == "subsect") {
    return Lod::kSubsection;
  }
  if (element_name == "subsubsection" || element_name == "subsubsect") {
    return Lod::kSubsubsection;
  }
  if (element_name == "para" || element_name == "paragraph" || element_name == "p") {
    return Lod::kParagraph;
  }
  return std::nullopt;
}

Lod finer(Lod lod) {
  const int v = static_cast<int>(lod);
  return v >= kLodCount - 1 ? Lod::kParagraph : static_cast<Lod>(v + 1);
}

}  // namespace mobiweb::doc
