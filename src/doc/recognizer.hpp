// Document recognizer — first stage of the SC pipeline (§3.3): "converts an
// XML document into a plain text document, taking consideration of formatting
// information including the hierarchical document structure and those
// specially formatted words."
//
// Mapping rules:
//   * Elements naming a LOD (section, subsection, para, ...; see
//     lod_from_element) become organizational units.
//   * <title> children set the unit title; title words are treated as
//     specially formatted (emphasized) tokens of the unit.
//   * Emphasis markup (em, i, b, strong, bold, italic, emph) marks its words
//     emphasized; such words always qualify as keywords.
//   * Unknown elements are transparent containers (e.g. <body>, <figure>).
//   * Text sitting directly inside a unit that also has sub-units becomes a
//     *virtual* paragraph, and runs of units deeper than the parent's next
//     level are grouped under a *virtual* intermediate unit — the paper's
//     "Paragraphs not belonging to any subsection are grouped under a virtual
//     subsection". The optional subsubsection level is never synthesized,
//     matching the paper's labelling (3.0.1 = paragraph under virtual
//     subsection 3.0).
#pragma once

#include "doc/unit.hpp"
#include "xml/dom.hpp"

namespace mobiweb::doc {

struct RecognizerOptions {
  // Treat title words as emphasized (they qualify as keywords).
  bool title_emphasized = true;
};

// Builds the organizational-unit tree from a parsed XML document. The root
// element becomes the document unit regardless of its name.
OrgUnit recognize(const xml::Document& document, const RecognizerOptions& options = {});
OrgUnit recognize(const xml::Node& root_element, const RecognizerOptions& options = {});

// Applies the virtual-unit grouping rule to an externally built tree (used by
// the HTML structurer and tests): consecutive children deeper than their
// parent's next level are wrapped in a virtual intermediate unit; the
// optional subsubsection level is never synthesized.
void normalize_units(OrgUnit& root);

}  // namespace mobiweb::doc
