#include "doc/sc_io.hpp"

#include <charconv>
#include <stdexcept>

#include "xml/parser.hpp"
#include "xml/serialize.hpp"

namespace mobiweb::doc {

namespace {

xml::Node unit_to_node(const OrgUnit& unit) {
  xml::Node node = xml::make_element("unit");
  node.attributes.push_back({"lod", std::string(lod_name(unit.lod))});
  if (!unit.title.empty()) node.attributes.push_back({"title", unit.title});
  if (unit.virtual_unit) node.attributes.push_back({"virtual", "1"});
  node.attributes.push_back({"ic", std::to_string(unit.info_content)});

  // Per-unit keyword index, deterministic order.
  if (unit.terms.distinct() > 0) {
    xml::Node terms = xml::make_element("terms");
    for (const auto& [term, count] : unit.terms.sorted()) {
      xml::Node t = xml::make_element("t");
      t.attributes.push_back({"w", term});
      t.attributes.push_back({"c", std::to_string(count)});
      terms.children.push_back(std::move(t));
    }
    node.children.push_back(std::move(terms));
  }
  for (const auto& child : unit.children) {
    node.children.push_back(unit_to_node(child));
  }
  return node;
}

long parse_long(std::string_view s, const char* what) {
  long value = 0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), value);
  if (res.ec != std::errc{} || res.ptr != s.data() + s.size()) {
    throw std::invalid_argument(std::string("sc_io: bad ") + what);
  }
  return value;
}

// Term counts come off the wire; norm/weighted-total computations sum them,
// so absurd counts must be rejected before they can overflow a long. 10^12
// occurrences of one term is far beyond any real document.
constexpr long kMaxTermCount = 1'000'000'000'000L;

OrgUnit node_to_unit(const xml::Node& node) {
  if (node.name != "unit") {
    throw std::invalid_argument("sc_io: expected <unit>, got <" + node.name + ">");
  }
  OrgUnit unit;
  const auto lod_attr = node.attribute("lod");
  if (!lod_attr) throw std::invalid_argument("sc_io: <unit> missing lod");
  const auto lod = lod_from_name(*lod_attr);
  if (!lod) throw std::invalid_argument("sc_io: unknown lod '" + std::string(*lod_attr) + "'");
  unit.lod = *lod;
  if (const auto title = node.attribute("title")) unit.title = std::string(*title);
  unit.virtual_unit = node.attribute("virtual").value_or("0") == "1";

  for (const auto& child : node.children) {
    if (!child.is_element()) continue;
    if (child.name == "terms") {
      for (const auto& t : child.children) {
        if (!t.is_element() || t.name != "t") continue;
        const auto w = t.attribute("w");
        const auto c = t.attribute("c");
        if (!w || !c) throw std::invalid_argument("sc_io: <t> missing w/c");
        const long count = parse_long(*c, "term count");
        if (count <= 0) throw std::invalid_argument("sc_io: non-positive term count");
        if (count > kMaxTermCount) {
          throw std::invalid_argument("sc_io: term count out of range");
        }
        unit.terms.add(std::string(*w), count);
      }
    } else if (child.name == "unit") {
      unit.children.push_back(node_to_unit(child));
    }
  }
  return unit;
}

}  // namespace

std::string write_sc(const StructuralCharacteristic& sc) {
  xml::Document doc;
  doc.root = xml::make_element("sc");
  doc.root.attributes.push_back({"norm", std::to_string(sc.norm())});
  doc.root.children.push_back(unit_to_node(sc.root()));
  xml::WriteOptions opts;
  opts.indent = "  ";
  return xml::write(doc, opts);
}

StructuralCharacteristic parse_sc(std::string_view xml_text) {
  const xml::Document doc = xml::parse(xml_text, {.keep_comments = false,
                                                  .strip_whitespace_text = true});
  if (doc.root.name != "sc") {
    throw std::invalid_argument("sc_io: root element must be <sc>");
  }
  const xml::Node* unit_node = doc.root.child("unit");
  if (unit_node == nullptr) {
    throw std::invalid_argument("sc_io: <sc> must contain a <unit>");
  }
  return StructuralCharacteristic::from_indexed_tree(node_to_unit(*unit_node));
}

}  // namespace mobiweb::doc
