// Levels of detail (paper §3): document, section, subsection, subsubsection,
// paragraph. "Our definition of LOD is an abstraction to the actual
// formatting tags" — lod_from_element maps XML element names onto the
// abstraction.
#pragma once

#include <optional>
#include <string_view>

namespace mobiweb::doc {

enum class Lod {
  kDocument = 0,
  kSection = 1,
  kSubsection = 2,
  kSubsubsection = 3,
  kParagraph = 4,
};

inline constexpr int kLodCount = 5;

// "document", "section", ...
std::string_view lod_name(Lod lod);

// Parses a LOD name back; nullopt for unknown names.
std::optional<Lod> lod_from_name(std::string_view name);

// Maps an XML element name to a LOD. Recognized spellings:
//   document/paper/research-paper/article -> document
//   abstract/section/sect                 -> section  (abstract = section 0)
//   subsection/subsect                    -> subsection
//   subsubsection/subsubsect              -> subsubsection
//   para/paragraph/p                      -> paragraph
// Anything else returns nullopt (formatting markup, titles, etc.).
std::optional<Lod> lod_from_element(std::string_view element_name);

// The next finer level (paragraph maps to itself).
Lod finer(Lod lod);

// a is at least as coarse as b.
inline bool coarser_or_equal(Lod a, Lod b) {
  return static_cast<int>(a) <= static_cast<int>(b);
}

}  // namespace mobiweb::doc
