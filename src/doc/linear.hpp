// Linearization: turning a document into the ordered byte stream that the
// fault-tolerant transmitter will cut into raw packets (paper §4.2: "the
// organizational units at the appropriate level are ranked and transmitted
// according to QIC", then "the permuted sequence of organizational units ...
// are transformed into N cooked packets").
#pragma once

#include <vector>

#include "doc/content.hpp"
#include "doc/unit.hpp"
#include "util/bytes.hpp"

namespace mobiweb::doc {

// Ranking measure for the transmission order.
enum class RankBy {
  kDocumentOrder,  // conventional sequential transmission
  kIc,             // static information content
  kQic,            // query-based
  kMqic,           // modified query-based
};

struct Segment {
  std::string label;       // organizational-unit label ("3.2.1")
  std::size_t offset = 0;  // byte offset within the payload
  std::size_t size = 0;    // byte length
  double content = 0.0;    // information content carried by this unit
};

// The permuted document: payload bytes plus the unit map. `content` across
// segments sums to the document's total measured content (1.0 for IC when the
// whole tree is covered and the root carries no own text).
struct LinearDocument {
  Bytes payload;
  std::vector<Segment> segments;
  // True when each segment's bytes are LZSS-compressed unit text (the
  // prototype's compression interceptor); reassemble_text() decompresses.
  bool compressed_units = false;

  [[nodiscard]] double total_content() const;

  // Information content contained in the first `nbytes` of the payload,
  // accruing proportionally within a partially covered segment. This models
  // the client's "received information content" as clear-text packets arrive.
  [[nodiscard]] double content_of_prefix(std::size_t nbytes) const;

  // Content carried by the byte range [begin, end).
  [[nodiscard]] double content_of_range(std::size_t begin, std::size_t end) const;
};

struct LinearizeOptions {
  Lod lod = Lod::kParagraph;
  RankBy rank = RankBy::kIc;
  // Required when rank is kQic/kMqic; segment content is then that measure.
  const ContentScorer* scorer = nullptr;
  // Compress each unit's text independently (LZSS). Units stay individually
  // decodable, so incremental rendering still works once a unit's packets
  // have all arrived.
  bool compress = false;
};

// Renders one unit subtree as transmission text (title line + own text +
// children in document order).
std::string render_unit_text(const OrgUnit& unit);

LinearDocument linearize(const StructuralCharacteristic& sc,
                         const LinearizeOptions& options = {});

// Reconstructs the document text from a (fully received) payload, segment by
// segment in transmission order, decompressing when compressed_units is set.
// Throws std::invalid_argument on corrupt compressed data.
std::string reassemble_text(const LinearDocument& doc);

}  // namespace mobiweb::doc
