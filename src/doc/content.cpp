#include "doc/content.hpp"

#include <cmath>

#include "doc/recognizer.hpp"
#include "util/check.hpp"

namespace mobiweb::doc {

double keyword_weight(long count, long inf_norm) {
  MOBIWEB_CHECK_MSG(count > 0 && inf_norm > 0 && count <= inf_norm,
                    "keyword_weight: need 0 < count <= inf_norm");
  return 1.0 - std::log2(static_cast<double>(count) / static_cast<double>(inf_norm));
}

double StructuralCharacteristic::weight(std::string_view term) const {
  const long c = root_.terms.count(term);
  if (c <= 0 || norm_ <= 0) return 0.0;
  return keyword_weight(c, norm_);
}

std::vector<StructuralCharacteristic::Row> StructuralCharacteristic::rows() const {
  std::vector<Row> out;
  walk(root_, [&](const OrgUnit& unit, const std::vector<std::size_t>& path) {
    out.push_back(Row{unit_label(path), &unit, path.size()});
  });
  return out;
}

ScGenerator::ScGenerator(ScOptions options)
    : extractor_(options.keywords) {}

namespace {

// Bottom-up: fills unit.terms with the subtree keyword counts.
void aggregate_terms(OrgUnit& unit, const text::KeywordExtractor& extractor) {
  unit.terms = extractor.extract(unit.own_tokens);
  for (auto& child : unit.children) {
    aggregate_terms(child, extractor);
    unit.terms.merge(child.terms);
  }
}

void assign_info_content(OrgUnit& unit, const StructuralCharacteristic& sc) {
  double weighted = 0.0;
  for (const auto& [term, count] : unit.terms.counts) {
    weighted += static_cast<double>(count) * sc.weight(term);
  }
  unit.info_content =
      sc.weighted_total() > 0.0 ? weighted / sc.weighted_total() : 0.0;
  for (auto& child : unit.children) assign_info_content(child, sc);
}

}  // namespace

StructuralCharacteristic ScGenerator::generate(OrgUnit tree) const {
  aggregate_terms(tree, extractor_);
  return StructuralCharacteristic::from_indexed_tree(std::move(tree));
}

StructuralCharacteristic StructuralCharacteristic::from_indexed_tree(OrgUnit tree) {
  StructuralCharacteristic sc;
  sc.root_ = std::move(tree);
  sc.norm_ = sc.root_.terms.max_count();
  double total = 0.0;
  if (sc.norm_ > 0) {
    for (const auto& [term, count] : sc.root_.terms.counts) {
      total += static_cast<double>(count) * keyword_weight(count, sc.norm_);
    }
  }
  sc.weighted_total_ = total;
  assign_info_content(sc.root_, sc);
  return sc;
}

StructuralCharacteristic ScGenerator::generate(const xml::Document& document) const {
  return generate(recognize(document));
}

Query Query::from_text(std::string_view text, const text::KeywordExtractor& extractor) {
  Query q;
  q.terms_ = extractor.extract_text(text);
  return q;
}

Query Query::from_terms(text::TermCounts terms) {
  Query q;
  q.terms_ = std::move(terms);
  return q;
}

double Query::weight(std::string_view term) const {
  const long c = terms_.count(term);
  if (c <= 0) return 0.0;
  return keyword_weight(c, terms_.max_count());
}

ContentScorer::ContentScorer(const StructuralCharacteristic& sc, Query query)
    : sc_(&sc), query_(std::move(query)) {
  const auto& doc_terms = sc.document_terms();
  double qic_denom = 0.0;
  double query_side = 0.0;  // Σ_{a∈D∩Q} |a_D|·ω_a^Q, the λ-scaled MQIC extra
  for (const auto& [term, q_count] : query_.terms().counts) {
    (void)q_count;
    const long d_count = doc_terms.count(term);
    if (d_count <= 0) continue;
    const double wd = sc.weight(term);
    const double wq = query_.weight(term);
    qic_denom += static_cast<double>(d_count) * wd * wq;
    query_side += static_cast<double>(d_count) * wq;
  }
  qic_denominator_ = qic_denom;

  const long q_total = query_.total_occurrences();
  lambda_ = (q_total > 0)
                ? static_cast<double>(doc_terms.total()) / static_cast<double>(q_total)
                : 0.0;
  mqic_denominator_ = sc.weighted_total() + lambda_ * query_side;
}

double ContentScorer::qic(const OrgUnit& unit) const {
  if (qic_denominator_ <= 0.0) return 0.0;
  double numer = 0.0;
  for (const auto& [term, q_count] : query_.terms().counts) {
    (void)q_count;
    const long u_count = unit.terms.count(term);
    if (u_count <= 0) continue;
    numer += static_cast<double>(u_count) * sc_->weight(term) * query_.weight(term);
  }
  return numer / qic_denominator_;
}

double ContentScorer::mqic(const OrgUnit& unit) const {
  if (mqic_denominator_ <= 0.0) return 0.0;
  // Σ_{a∈n_i} |a|·ω_a is the unit's IC numerator, recoverable from p_i.
  double numer = unit.info_content * sc_->weighted_total();
  for (const auto& [term, q_count] : query_.terms().counts) {
    (void)q_count;
    const long u_count = unit.terms.count(term);
    if (u_count <= 0) continue;
    numer += lambda_ * static_cast<double>(u_count) * query_.weight(term);
  }
  return numer / mqic_denominator_;
}

}  // namespace mobiweb::doc
