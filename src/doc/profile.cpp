#include "doc/profile.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mobiweb::doc {

UserProfile::UserProfile(double learning_rate) : rate_(learning_rate) {
  MOBIWEB_CHECK_MSG(learning_rate > 0.0 && learning_rate <= 1.0,
                    "UserProfile: learning_rate in (0,1]");
}

void UserProfile::observe(const text::TermCounts& document_terms, bool relevant) {
  const long total = document_terms.total();
  if (total <= 0) return;
  const double sign = relevant ? 1.0 : -1.0;
  for (const auto& [term, count] : document_terms.counts) {
    const double tf = static_cast<double>(count) / static_cast<double>(total);
    double& w = weights_[term];
    w = std::clamp(w + rate_ * sign * tf, -1.0, 1.0);
  }
  ++feedback_count_;
}

double UserProfile::term_weight(std::string_view term) const {
  const auto it = weights_.find(std::string(term));
  return it == weights_.end() ? 0.0 : it->second;
}

double UserProfile::score(const text::TermCounts& document_terms) const {
  const long total = document_terms.total();
  if (total <= 0) return 0.0;
  double s = 0.0;
  for (const auto& [term, count] : document_terms.counts) {
    const auto it = weights_.find(term);
    if (it == weights_.end()) continue;
    s += it->second * static_cast<double>(count) / static_cast<double>(total);
  }
  return std::clamp(s, -1.0, 1.0);
}

double UserProfile::score(const StructuralCharacteristic& sc) const {
  return score(sc.document_terms());
}

void UserProfile::decay(double factor) {
  MOBIWEB_CHECK_MSG(factor >= 0.0 && factor <= 1.0, "UserProfile::decay: [0,1]");
  for (auto& [term, w] : weights_) w *= factor;
}

std::vector<std::pair<std::string, double>> UserProfile::top_terms(
    std::size_t k) const {
  std::vector<std::pair<std::string, double>> out(weights_.begin(), weights_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (std::fabs(a.second) != std::fabs(b.second)) {
      return std::fabs(a.second) > std::fabs(b.second);
    }
    return a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace mobiweb::doc
