#include "doc/content_alt.hpp"

#include <cmath>

namespace mobiweb::doc {

void CorpusStats::add_document(const StructuralCharacteristic& sc) {
  ++documents_;
  for (const auto& [term, count] : sc.document_terms().counts) {
    (void)count;
    ++df_[term];
  }
}

long CorpusStats::document_frequency(std::string_view term) const {
  const auto it = df_.find(std::string(term));
  return it == df_.end() ? 0 : it->second;
}

double CorpusStats::idf(std::string_view term) const {
  const double d = static_cast<double>(documents_);
  const double df = static_cast<double>(document_frequency(term));
  return std::log((1.0 + d) / (1.0 + df)) + 1.0;
}

namespace {
std::size_t subtree_text_bytes(const OrgUnit& unit) {
  std::size_t bytes = unit.own_text.size() + unit.title.size();
  for (const auto& c : unit.children) bytes += subtree_text_bytes(c);
  return bytes;
}
}  // namespace

double length_content(const StructuralCharacteristic& sc, const OrgUnit& unit) {
  const std::size_t total = subtree_text_bytes(sc.root());
  if (total == 0) return 0.0;
  return static_cast<double>(subtree_text_bytes(unit)) /
         static_cast<double>(total);
}

TfIdfScorer::TfIdfScorer(const StructuralCharacteristic& sc,
                         const CorpusStats& corpus)
    : corpus_(&corpus) {
  for (const auto& [term, count] : sc.document_terms().counts) {
    denominator_ += static_cast<double>(count) * corpus.idf(term);
  }
}

double TfIdfScorer::content(const OrgUnit& unit) const {
  if (denominator_ <= 0.0) return 0.0;
  double numerator = 0.0;
  for (const auto& [term, count] : unit.terms.counts) {
    numerator += static_cast<double>(count) * corpus_->idf(term);
  }
  return numerator / denominator_;
}

}  // namespace mobiweb::doc
