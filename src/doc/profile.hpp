// User profile — relevance-feedback term weighting.
//
// The paper's related-work and future-work sections call for "intelligent
// prefetching based on information content and user-profiling" and for
// profiles that "adapt to changes in user interest" via relevance feedback.
// UserProfile is that component: a term-weight vector nudged toward the
// keyword distribution of documents the user found relevant and away from
// those judged irrelevant.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "doc/content.hpp"
#include "text/keywords.hpp"

namespace mobiweb::doc {

class UserProfile {
 public:
  // learning_rate in (0, 1]: how strongly one feedback event moves weights.
  explicit UserProfile(double learning_rate = 0.2);

  // Relevance feedback: the user judged a document (given by its keyword
  // counts) relevant or irrelevant. Term weights move toward +tf for
  // relevant and -tf for irrelevant documents, staying in [-1, 1].
  void observe(const text::TermCounts& document_terms, bool relevant);

  // Current interest weight of a term; 0 when never seen.
  [[nodiscard]] double term_weight(std::string_view term) const;

  // Interest score of a document: profile-weighted term-frequency mass, in
  // [-1, 1]. Positive = matches the user's interests.
  [[nodiscard]] double score(const text::TermCounts& document_terms) const;
  [[nodiscard]] double score(const StructuralCharacteristic& sc) const;

  // Decay all weights toward 0 (interest drift); factor in [0, 1].
  void decay(double factor);

  [[nodiscard]] std::size_t size() const { return weights_.size(); }
  [[nodiscard]] long feedback_count() const { return feedback_count_; }

  // Top-k terms by |weight|, strongest first (introspection/debugging).
  [[nodiscard]] std::vector<std::pair<std::string, double>> top_terms(
      std::size_t k) const;

 private:
  double rate_;
  std::unordered_map<std::string, double> weights_;
  long feedback_count_ = 0;
};

}  // namespace mobiweb::doc
