#include "doc/recognizer.hpp"

#include <string_view>

namespace mobiweb::doc {

namespace {

bool is_emphasis_element(std::string_view name) {
  return name == "em" || name == "i" || name == "b" || name == "strong" ||
         name == "bold" || name == "italic" || name == "emph" || name == "it" ||
         name == "bf" || name == "u";
}

bool is_title_element(std::string_view name) {
  return name == "title" || name == "caption" || name == "heading";
}

// A text run being accumulated between unit boundaries.
struct Run {
  std::string text;
  std::vector<text::Token> tokens;

  [[nodiscard]] bool blank() const {
    return text.find_first_not_of(" \t\r\n") == std::string::npos;
  }
};

// Groups consecutive children deeper than the parent's next level under a
// virtual intermediate unit. Subsubsections are optional and never
// synthesized.
void group_deep_children(OrgUnit& unit) {
  const Lod next = finer(unit.lod);
  const bool can_wrap =
      unit.lod != Lod::kParagraph && next != Lod::kSubsubsection;
  if (can_wrap) {
    std::vector<OrgUnit> regrouped;
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::size_t open_virtual = kNone;  // index into regrouped
    for (auto& child : unit.children) {
      const bool too_deep = static_cast<int>(child.lod) > static_cast<int>(next);
      if (too_deep) {
        if (open_virtual == kNone) {
          OrgUnit v;
          v.lod = next;
          v.virtual_unit = true;
          regrouped.push_back(std::move(v));
          open_virtual = regrouped.size() - 1;
        }
        regrouped[open_virtual].children.push_back(std::move(child));
      } else {
        open_virtual = kNone;
        regrouped.push_back(std::move(child));
      }
    }
    unit.children = std::move(regrouped);
  }
  for (auto& child : unit.children) {
    if (child.virtual_unit && !child.children.empty()) {
      group_deep_children(child);
    }
  }
}

class Builder {
 public:
  explicit Builder(const RecognizerOptions& options) : options_(options) {}

  OrgUnit build(const xml::Node& element, Lod lod) {
    OrgUnit unit;
    unit.lod = lod;

    std::vector<Run> runs;     // text runs, in order
    std::vector<OrgUnit> kids; // unit children, in order
    // Interleaving: order[i] = true -> next run, false -> next kid.
    std::vector<bool> order;
    Run current;

    auto flush_run = [&] {
      if (!current.blank()) {
        runs.push_back(std::move(current));
        order.push_back(true);
      }
      current = Run{};
    };

    collect(element, unit, current, [&](const xml::Node& child_elem, Lod child_lod) {
      flush_run();
      kids.push_back(build(child_elem, child_lod));
      order.push_back(false);
    }, /*emphasized=*/false);
    flush_run();

    if (kids.empty()) {
      // Leaf: merge every run into the unit's own text.
      for (auto& run : runs) {
        if (!unit.own_text.empty()) unit.own_text.push_back('\n');
        unit.own_text += run.text;
        unit.own_tokens.insert(unit.own_tokens.end(), run.tokens.begin(),
                               run.tokens.end());
      }
    } else {
      // Interior: each text run becomes a virtual paragraph, in order.
      std::size_t run_idx = 0;
      std::size_t kid_idx = 0;
      for (bool is_run : order) {
        if (is_run) {
          OrgUnit para;
          para.lod = Lod::kParagraph;
          para.virtual_unit = true;
          para.own_text = std::move(runs[run_idx].text);
          para.own_tokens = std::move(runs[run_idx].tokens);
          ++run_idx;
          unit.children.push_back(std::move(para));
        } else {
          unit.children.push_back(std::move(kids[kid_idx++]));
        }
      }
      group_deep_children(unit);
    }
    return unit;
  }

 private:
  // Walks an element's content. Unit-bearing child elements are reported via
  // `on_unit`; everything else lands in `current` (or on the unit for titles).
  template <typename OnUnit>
  void collect(const xml::Node& element, OrgUnit& unit, Run& current,
               const OnUnit& on_unit, bool emphasized) {
    for (const auto& child : element.children) {
      switch (child.type) {
        case xml::NodeType::kText:
        case xml::NodeType::kCData: {
          current.text += child.text;
          for (auto& tok : text::tokenize(child.text, emphasized)) {
            current.tokens.push_back(std::move(tok));
          }
          break;
        }
        case xml::NodeType::kComment:
        case xml::NodeType::kProcessing:
          break;
        case xml::NodeType::kElement: {
          if (auto lod = lod_from_element(child.name)) {
            on_unit(child, *lod);
            break;
          }
          if (is_title_element(child.name)) {
            const std::string title_text = child.text_content();
            if (unit.title.empty()) {
              unit.title = title_text;
            } else {
              unit.title += " / " + title_text;
            }
            for (auto& tok :
                 text::tokenize(title_text, options_.title_emphasized)) {
              unit.own_tokens.push_back(std::move(tok));
            }
            break;
          }
          // Transparent container or emphasis markup: descend in place.
          const bool child_emphasis = emphasized || is_emphasis_element(child.name);
          collect(child, unit, current, on_unit, child_emphasis);
          break;
        }
      }
    }
  }

  RecognizerOptions options_;
};

void normalize_all(OrgUnit& unit) {
  group_deep_children(unit);
  for (auto& child : unit.children) normalize_all(child);
}

}  // namespace

void normalize_units(OrgUnit& root) { normalize_all(root); }

OrgUnit recognize(const xml::Node& root_element, const RecognizerOptions& options) {
  Builder builder(options);
  return builder.build(root_element, Lod::kDocument);
}

OrgUnit recognize(const xml::Document& document, const RecognizerOptions& options) {
  return recognize(document.root, options);
}

}  // namespace mobiweb::doc
