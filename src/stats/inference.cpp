#include "stats/inference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace mobiweb::stats {

namespace {

constexpr double kEps = 1e-14;
constexpr double kTiny = 1e-300;
constexpr int kMaxIter = 300;

// Series expansion of P(a, x), effective for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for Q(a, x) (modified Lentz), effective for x >= a + 1.
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for the incomplete beta (modified Lentz).
double beta_cf(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double dm = static_cast<double>(m);
    double aa = dm * (b - dm) * x / ((qam + 2.0 * dm) * (a + 2.0 * dm));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + 2.0 * dm) * (qap + 2.0 * dm));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double gamma_p(double a, double x) {
  MOBIWEB_CHECK_MSG(a > 0.0, "gamma_p: a > 0");
  MOBIWEB_CHECK_MSG(x >= 0.0, "gamma_p: x >= 0");
  if (x == 0.0) return 0.0;
  return x < a + 1.0 ? gamma_p_series(a, x) : 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  MOBIWEB_CHECK_MSG(a > 0.0, "gamma_q: a > 0");
  MOBIWEB_CHECK_MSG(x >= 0.0, "gamma_q: x >= 0");
  if (x == 0.0) return 1.0;
  return x < a + 1.0 ? 1.0 - gamma_p_series(a, x) : gamma_q_cf(a, x);
}

double incomplete_beta(double a, double b, double x) {
  MOBIWEB_CHECK_MSG(a > 0.0 && b > 0.0, "incomplete_beta: a, b > 0");
  MOBIWEB_CHECK_MSG(x >= 0.0 && x <= 1.0, "incomplete_beta: x in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double front = std::exp(std::lgamma(a + b) - std::lgamma(a) -
                                std::lgamma(b) + a * std::log(x) +
                                b * std::log1p(-x));
  // The continued fraction converges fast for x below the distribution mode;
  // use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) on the other side.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double chi_square_sf(double x, double df) {
  MOBIWEB_CHECK_MSG(df > 0.0, "chi_square_sf: df > 0");
  if (x <= 0.0) return 1.0;
  return gamma_q(df / 2.0, x / 2.0);
}

double student_t_cdf(double t, double df) {
  MOBIWEB_CHECK_MSG(df > 0.0, "student_t_cdf: df > 0");
  if (t == 0.0) return 0.5;
  const double tail =
      0.5 * incomplete_beta(df / 2.0, 0.5, df / (df + t * t));
  return t > 0.0 ? 1.0 - tail : tail;
}

double t_critical(double df, double confidence) {
  MOBIWEB_CHECK_MSG(df >= 1.0, "t_critical: df >= 1");
  MOBIWEB_CHECK_MSG(confidence > 0.0 && confidence < 1.0,
                    "t_critical: confidence in (0,1)");
  const double target = 0.5 + confidence / 2.0;
  // Bracket the root, then bisect; the CDF is monotone so this is exact to
  // the tolerance below. Start from the normal quantile's neighborhood and
  // expand upward (small df fattens the tail dramatically: df=1 @95% = 12.7).
  double lo = 0.0;
  double hi = 2.0;
  while (student_t_cdf(hi, df) < target) {
    hi *= 2.0;
    MOBIWEB_CHECK_MSG(hi < 1e12, "t_critical: failed to bracket");
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, df) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-10 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

TestResult jarque_bera(const Moments& m) {
  TestResult out;
  out.df = 2.0;
  const std::size_t n = m.count();
  if (n < 8) return out;  // too few samples to say anything
  const double g1 = m.skewness();
  const double g2 = m.kurtosis_excess();
  out.statistic =
      static_cast<double>(n) / 6.0 * (g1 * g1 + g2 * g2 / 4.0);
  out.p_value = chi_square_sf(out.statistic, 2.0);
  return out;
}

TestResult chi_square_gof(const std::vector<long>& observed,
                          const std::vector<double>& weights,
                          double min_expected) {
  MOBIWEB_CHECK_MSG(observed.size() == weights.size(),
                    "chi_square_gof: observed/weights size mismatch");
  MOBIWEB_CHECK_MSG(observed.size() >= 2, "chi_square_gof: need >= 2 bins");
  double total_weight = 0.0;
  long total_obs = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    MOBIWEB_CHECK_MSG(observed[i] >= 0, "chi_square_gof: negative count");
    MOBIWEB_CHECK_MSG(weights[i] > 0.0, "chi_square_gof: weights > 0");
    total_weight += weights[i];
    total_obs += observed[i];
  }
  MOBIWEB_CHECK_MSG(total_obs > 0, "chi_square_gof: empty sample");

  // Pool adjacent bins until each pooled bin's expectation clears
  // min_expected, so the chi-square(df) reference stays trustworthy on deep
  // tails (e.g. the last ranks of a Zipf corpus).
  std::vector<double> exp_pooled;
  std::vector<long> obs_pooled;
  double e_acc = 0.0;
  long o_acc = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    e_acc += static_cast<double>(total_obs) * weights[i] / total_weight;
    o_acc += observed[i];
    if (e_acc >= min_expected) {
      exp_pooled.push_back(e_acc);
      obs_pooled.push_back(o_acc);
      e_acc = 0.0;
      o_acc = 0;
    }
  }
  if (e_acc > 0.0 || o_acc > 0) {
    if (exp_pooled.empty()) {
      exp_pooled.push_back(e_acc);
      obs_pooled.push_back(o_acc);
    } else {
      exp_pooled.back() += e_acc;
      obs_pooled.back() += o_acc;
    }
  }

  TestResult out;
  out.df = static_cast<double>(exp_pooled.size()) - 1.0;
  for (std::size_t i = 0; i < exp_pooled.size(); ++i) {
    const double diff = static_cast<double>(obs_pooled[i]) - exp_pooled[i];
    out.statistic += diff * diff / exp_pooled[i];
  }
  out.p_value = out.df > 0.0 ? chi_square_sf(out.statistic, out.df) : 1.0;
  return out;
}

double dispersion_index(const std::vector<long>& counts) {
  Moments m;
  for (long c : counts) m.add(static_cast<double>(c));
  return m.mean() > 0.0 ? m.variance() / m.mean() : 0.0;
}

TestResult dispersion_test(const std::vector<long>& counts) {
  MOBIWEB_CHECK_MSG(counts.size() >= 2, "dispersion_test: need >= 2 windows");
  Moments m;
  for (long c : counts) m.add(static_cast<double>(c));
  MOBIWEB_CHECK_MSG(m.mean() > 0.0, "dispersion_test: zero mean count");
  TestResult out;
  out.df = static_cast<double>(counts.size()) - 1.0;
  out.statistic = out.df * m.variance() / m.mean();
  // Two-sided: both a too-regular (underdispersed) and a too-bursty
  // (overdispersed) process should reject.
  const double upper = chi_square_sf(out.statistic, out.df);
  out.p_value = std::min(1.0, 2.0 * std::min(upper, 1.0 - upper));
  return out;
}

}  // namespace mobiweb::stats
