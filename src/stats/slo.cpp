#include "stats/slo.hpp"

#include <cmath>
#include <cstdio>

namespace mobiweb::stats {

namespace {

void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", std::isfinite(v) ? v : 0.0);
  out += buf;
}

}  // namespace

SloSeries evaluate_slo_series(std::string name,
                              const std::vector<double>& values, int direction,
                              double tolerance) {
  SloSeries out;
  out.name = std::move(name);
  out.direction = direction;
  out.window = values.size();
  out.tolerance = tolerance;
  out.summary = summarize_tails(values);  // drops the NaN buckets
  out.buckets = out.summary.count;

  // fit_linear skips NaN pairs itself but requires >= 2 surviving points on
  // >= 2 distinct x; count them first so sparse series degrade gracefully.
  std::size_t defined = 0;
  for (const double v : values) {
    if (!std::isnan(v)) ++defined;
  }
  if (defined >= 2) {
    std::vector<double> xs(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      xs[i] = static_cast<double>(i);
    }
    out.fit = fit_linear(xs, values);
  }

  if (out.window >= 2) {
    const double span = static_cast<double>(out.window - 1);
    const double scale = std::max(std::fabs(out.summary.mean), 1e-12);
    out.drift = out.fit.slope * span / scale;
  }
  // slope_ci95 is 0 below three points, which would make any nonzero slope
  // "significant"; the bucket floor keeps tiny windows from gating.
  out.significant = out.buckets >= kSloMinBuckets &&
                    std::fabs(out.fit.slope) > out.fit.slope_ci95 &&
                    out.fit.slope_ci95 > 0.0;
  if (direction != 0 && out.significant) {
    out.breach = direction < 0 ? out.drift > tolerance : out.drift < -tolerance;
  }
  return out;
}

std::string slo_json(const std::vector<SloSeries>& series, double tolerance) {
  std::size_t breaches = 0;
  for (const SloSeries& s : series) {
    if (s.breach) ++breaches;
  }
  std::string out = "{\"tolerance\": ";
  append_number(out, tolerance);
  out += ", \"breaches\": " + std::to_string(breaches);
  out += ", \"series\": [";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const SloSeries& s = series[i];
    if (i) out += ", ";
    out += "{\"name\": \"" + s.name + "\"";
    out += ", \"direction\": " + std::to_string(s.direction);
    out += ", \"buckets\": " + std::to_string(s.buckets);
    out += ", \"window\": " + std::to_string(s.window);
    out += ", \"mean\": ";
    append_number(out, s.summary.mean);
    out += ", \"p50\": ";
    append_number(out, s.summary.p50);
    out += ", \"p95\": ";
    append_number(out, s.summary.p95);
    out += ", \"p99\": ";
    append_number(out, s.summary.p99);
    out += ", \"max\": ";
    append_number(out, s.summary.max);
    out += ", \"slope\": ";
    append_number(out, s.fit.slope);
    out += ", \"slope_ci95\": ";
    append_number(out, s.fit.slope_ci95);
    out += ", \"r2\": ";
    append_number(out, s.fit.r2);
    out += ", \"drift\": ";
    append_number(out, s.drift);
    out += ", \"tolerance\": ";
    append_number(out, s.tolerance);
    out += ", \"significant\": ";
    out += s.significant ? "true" : "false";
    out += ", \"breach\": ";
    out += s.breach ? "true" : "false";
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace mobiweb::stats
