// Ordinary least-squares line fit for experiment sweeps: redundancy ratio
// vs alpha, session time vs outage duty cycle, throughput vs shard count.
// One predictor is all the ablations need; the fit reports the slope with a
// Student-t confidence interval so "the trend is flat" is a testable claim.
#pragma once

#include <cstddef>
#include <vector>

namespace mobiweb::stats {

struct LinearFit {
  std::size_t count = 0;
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;            // coefficient of determination
  double residual_stddev = 0.0;  // sqrt(SSE / (n - 2)); 0 when n <= 2
  double slope_stderr = 0.0;  // standard error of the slope estimate
  double slope_ci95 = 0.0;    // Student-t 95% half-width for the slope

  // Fitted value at x.
  [[nodiscard]] double at(double x) const { return intercept + slope * x; }
};

// Least-squares fit of y = intercept + slope * x. Requires xs.size() ==
// ys.size(), n >= 2, and at least two distinct x values (the design matrix
// must have rank 2); NaN pairs are skipped before fitting.
LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys);

}  // namespace mobiweb::stats
