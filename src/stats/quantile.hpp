// Order statistics: exact quantiles over full sample sets, and fixed-memory
// streaming quantile estimation (Jain & Chlamtac's P-squared algorithm) for
// series too large or too long-lived to keep around — the fleet engine's
// per-shard session-time tails, histogram calibration, long bench sweeps.
//
// Accuracy contract (pinned by tests/test_stats.cpp on deterministic
// uniform, exponential and Zipf draws):
//   * n <= kExactWindow samples: StreamingQuantiles answers are *exact*
//     (type-7 order statistics over a retained buffer);
//   * n > kExactWindow: the P-squared estimate of quantile q lies within the
//     closed envelope of exact sample quantiles
//         [exact_quantile(q - kRankError), exact_quantile(q + kRankError)]
//     with kRankError = 0.025 — i.e. the estimator may misplace a quantile by
//     at most 2.5 points of rank on the distribution families we serve. This
//     is the bound the property tests enforce; treat it as the API guarantee.
//
// NaN handling: add() rejects NaN (returns false, state unchanged). Quantile
// queries on an empty estimator return NaN; a single sample answers every
// quantile with itself.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "stats/describe.hpp"

namespace mobiweb::stats {

// Exact sample quantile with linear interpolation between order statistics
// (type 7, the numpy/R default): for n samples the quantile q sits at
// fractional rank h = q (n - 1). `sorted` must be ascending; NaN-free.
// Returns NaN for an empty input; q is clamped to [0, 1].
double exact_quantile_sorted(const std::vector<double>& sorted, double q);

// Convenience: copies, drops NaNs, sorts, then reads exact_quantile_sorted.
double exact_quantile(std::vector<double> samples, double q);

// One P-squared marker set tracking a single quantile q in O(1) memory:
// five markers whose heights converge on the {0, q/2, q, (1+q)/2, 1}
// sample quantiles via piecewise-parabolic adjustment. Exact while n <= 5.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  // Returns false (and ignores the sample) when x is NaN.
  bool add(double x);

  // Current estimate; NaN when no samples have been accepted.
  [[nodiscard]] double value() const;
  [[nodiscard]] double q() const { return q_; }
  [[nodiscard]] std::size_t count() const { return n_; }

 private:
  double q_;
  std::size_t n_ = 0;
  std::array<double, 5> height_{};    // marker heights (sample values)
  std::array<double, 5> pos_{};       // actual marker positions (1-based ranks)
  std::array<double, 5> want_{};      // desired positions
  std::array<double, 5> step_{};      // desired-position increments per sample
};

// The quantile set the perf gate compares: p50/p95/p99/p999, plus streaming
// moments for the mean and its Student-t confidence interval. Keeps the first
// kExactWindow samples verbatim so small runs are summarized exactly; beyond
// that, queries fall through to the P-squared markers (see the accuracy
// contract above).
class StreamingQuantiles {
 public:
  static constexpr std::size_t kExactWindow = 64;
  // Documented rank-error bound for the streaming regime (see header).
  static constexpr double kRankError = 0.025;

  StreamingQuantiles();

  // Returns false (and ignores the sample) when x is NaN.
  bool add(double x);

  // q must be one of the tracked quantiles {0.5, 0.95, 0.99, 0.999}.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t count() const { return moments_.count(); }
  [[nodiscard]] const Moments& moments() const { return moments_; }

  // TailSummary over everything seen so far: exact when count() is within
  // the retained window, P-squared estimates beyond it.
  [[nodiscard]] TailSummary summary() const;

 private:
  std::array<P2Quantile, 4> trackers_;
  Moments moments_;
  std::vector<double> window_;  // first kExactWindow samples, unsorted
};

}  // namespace mobiweb::stats
