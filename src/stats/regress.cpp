#include "stats/regress.hpp"

#include <cmath>

#include "stats/inference.hpp"
#include "util/check.hpp"

namespace mobiweb::stats {

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  MOBIWEB_CHECK_MSG(xs.size() == ys.size(), "fit_linear: size mismatch");
  std::vector<double> x;
  std::vector<double> y;
  x.reserve(xs.size());
  y.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (!std::isnan(xs[i]) && !std::isnan(ys[i])) {
      x.push_back(xs[i]);
      y.push_back(ys[i]);
    }
  }
  const std::size_t n = x.size();
  MOBIWEB_CHECK_MSG(n >= 2, "fit_linear: need >= 2 finite points");

  double mean_x = 0.0;
  double mean_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  MOBIWEB_CHECK_MSG(sxx > 0.0, "fit_linear: x values are all equal");

  LinearFit fit;
  fit.count = n;
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  const double sse = syy - fit.slope * sxy;  // residual sum of squares
  fit.r2 = syy > 0.0 ? 1.0 - sse / syy : 1.0;
  if (n > 2) {
    // Guard sse against cancellation on exact fits.
    const double mse = std::max(sse, 0.0) / static_cast<double>(n - 2);
    fit.residual_stddev = std::sqrt(mse);
    fit.slope_stderr = std::sqrt(mse / sxx);
    fit.slope_ci95 =
        t_critical(static_cast<double>(n - 2), 0.95) * fit.slope_stderr;
  }
  return fit;
}

}  // namespace mobiweb::stats
