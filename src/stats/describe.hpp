// Streaming descriptive statistics: central moments up to order four (for
// skewness / kurtosis and the Jarque-Bera normality check) and the TailSummary
// record that FleetEngine, the bench harnesses and the perf gate all share.
//
// Everything here is O(1) memory per accumulator and deterministic: feeding
// the same samples in the same order always yields bit-identical results,
// which is what lets the perf gate diff tail metrics at tolerance 0.
#pragma once

#include <cstddef>
#include <vector>

namespace mobiweb::stats {

// Running count/mean/M2..M4/min/max (Welford, extended to third and fourth
// central moments). NaN samples are rejected — add() returns false and the
// accumulator is unchanged — so one poisoned measurement cannot silently
// corrupt a whole run's skewness.
class Moments {
 public:
  // Returns false (and ignores the sample) when x is NaN.
  bool add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 below two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  // Population skewness g1 = m3 / m2^1.5; 0 when undefined (n < 2 or m2 = 0).
  [[nodiscard]] double skewness() const;
  // Excess kurtosis g2 = m4 / m2^2 - 3; 0 when undefined.
  [[nodiscard]] double kurtosis_excess() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  void merge(const Moments& other);
  void reset() { *this = Moments{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Distribution summary of one metric: the mean with a Student-t 95%
// confidence half-width plus the tail quantiles the perf gate compares.
// Produced either exactly (summarize_tails, from the full sample set) or
// approximately (StreamingQuantiles::summary, fixed memory).
struct TailSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;   // Student-t 95% half-width for the mean; 0 below n=2
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

// Exact summary by sorting a copy of `samples` and reading order statistics
// (type-7 interpolation, see exact_quantile in quantile.hpp). NaN samples are
// dropped first. The result depends only on the multiset of samples — never
// on their order — so fleet aggregates built from it are shard-invariant.
TailSummary summarize_tails(const std::vector<double>& samples);

// Student-t 95% confidence half-width for the mean of n samples with sample
// standard deviation `stddev`: t_{0.975, n-1} * s / sqrt(n). 0 below n = 2.
double mean_ci95_halfwidth(std::size_t n, double stddev);

}  // namespace mobiweb::stats
