#include "stats/describe.hpp"

#include <algorithm>
#include <cmath>

#include "stats/inference.hpp"
#include "stats/quantile.hpp"

namespace mobiweb::stats {

bool Moments::add(double x) {
  if (std::isnan(x)) return false;
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  // One-pass central-moment update (Pébay's formulas); numerically stable
  // for the magnitudes the simulator produces.
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
  return true;
}

double Moments::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Moments::stddev() const { return std::sqrt(variance()); }

double Moments::skewness() const {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double Moments::kurtosis_excess() const {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

void Moments::merge(const Moments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(n_);
  const double n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;
  const double m4 = m4_ + other.m4_ +
                    delta4 * n1 * n2 * (n1 * n1 - n1 * n2 + n2 * n2) / (n * n * n) +
                    6.0 * delta2 * (n1 * n1 * other.m2_ + n2 * n2 * m2_) / (n * n) +
                    4.0 * delta * (n1 * other.m3_ - n2 * m3_) / n;
  const double m3 = m3_ + other.m3_ +
                    delta3 * n1 * n2 * (n1 - n2) / (n * n) +
                    3.0 * delta * (n1 * other.m2_ - n2 * m2_) / n;
  const double m2 = m2_ + other.m2_ + delta2 * n1 * n2 / n;
  mean_ += delta * n2 / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean_ci95_halfwidth(std::size_t n, double stddev) {
  if (n < 2) return 0.0;
  return t_critical(static_cast<double>(n - 1), 0.95) * stddev /
         std::sqrt(static_cast<double>(n));
}

TailSummary summarize_tails(const std::vector<double>& samples) {
  std::vector<double> sorted;
  sorted.reserve(samples.size());
  for (double v : samples) {
    if (!std::isnan(v)) sorted.push_back(v);
  }
  std::sort(sorted.begin(), sorted.end());

  TailSummary out;
  out.count = sorted.size();
  if (sorted.empty()) return out;
  // Accumulate in sorted order so the result is a function of the sample
  // multiset alone — shard- and thread-count-invariant by construction.
  Moments m;
  for (double v : sorted) m.add(v);
  out.mean = m.mean();
  out.stddev = m.stddev();
  out.ci95 = mean_ci95_halfwidth(out.count, out.stddev);
  out.min = sorted.front();
  out.max = sorted.back();
  out.p50 = exact_quantile_sorted(sorted, 0.5);
  out.p95 = exact_quantile_sorted(sorted, 0.95);
  out.p99 = exact_quantile_sorted(sorted, 0.99);
  out.p999 = exact_quantile_sorted(sorted, 0.999);
  return out;
}

}  // namespace mobiweb::stats
