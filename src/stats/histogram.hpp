// Bridge from the observability layer into the experiment engine: any
// obs::Histogram in a MetricsRegistry can be collapsed into a TailSummary —
// mean with Student-t confidence half-width, p50/p95/p99/p999 with the
// histogram's calibrated bucket-range error bounds (see
// obs::QuantileEstimate) — without the caller retaining raw samples.
#pragma once

#include <string_view>

#include "obs/metrics.hpp"
#include "stats/describe.hpp"

namespace mobiweb::stats {

// Tail summary of one histogram. Quantiles are Histogram::quantile() reads
// (exact for single-distinct-value buckets, within the winning bucket's
// observed range otherwise); the CI uses the histogram's running sum of
// squares. An empty histogram returns a zeroed summary with count 0.
TailSummary summarize_histogram(const obs::Histogram& h);

// Lookup-then-summarize on a registry; count 0 when the name is absent.
TailSummary summarize_histogram(const obs::MetricsRegistry& registry,
                                std::string_view name);

}  // namespace mobiweb::stats
