#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace mobiweb::stats {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

}  // namespace

double exact_quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return kNan;
  q = std::clamp(q, 0.0, 1.0);
  const double h = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double exact_quantile(std::vector<double> samples, double q) {
  samples.erase(std::remove_if(samples.begin(), samples.end(),
                               [](double v) { return std::isnan(v); }),
                samples.end());
  std::sort(samples.begin(), samples.end());
  return exact_quantile_sorted(samples, q);
}

P2Quantile::P2Quantile(double q) : q_(q) {
  MOBIWEB_CHECK_MSG(q > 0.0 && q < 1.0, "P2Quantile: q in (0,1)");
  // Desired marker positions after n samples: 1, 1+(n-1)q/2, 1+(n-1)q,
  // 1+(n-1)(1+q)/2, n. Stored as the position at n = 5 plus the per-sample
  // increment, exactly as in Jain & Chlamtac (1985).
  want_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  step_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

bool P2Quantile::add(double x) {
  if (std::isnan(x)) return false;
  if (n_ < 5) {
    height_[n_++] = x;
    if (n_ == 5) {
      std::sort(height_.begin(), height_.end());
      for (std::size_t i = 0; i < 5; ++i) pos_[i] = static_cast<double>(i + 1);
    }
    return true;
  }

  // Locate the cell containing x and clamp the extreme markers to it.
  std::size_t k;
  if (x < height_[0]) {
    height_[0] = x;
    k = 0;
  } else if (x >= height_[4]) {
    height_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= height_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) want_[i] += step_[i];
  ++n_;

  // Nudge the three interior markers toward their desired positions, using
  // the piecewise-parabolic (P^2) height prediction, falling back to linear
  // interpolation when the parabola would leave the bracketing heights.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = want_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      const double hp = height_[i + 1];
      const double hm = height_[i - 1];
      const double pp = pos_[i + 1];
      const double pm = pos_[i - 1];
      const double p = pos_[i];
      const double h = height_[i];
      double candidate =
          h + sign / (pp - pm) *
                  ((p - pm + sign) * (hp - h) / (pp - p) +
                   (pp - p - sign) * (h - hm) / (p - pm));
      if (candidate <= hm || candidate >= hp) {
        // Parabolic prediction escaped the bracket: linear step instead.
        const std::size_t j = d >= 0.0 ? i + 1 : i - 1;
        candidate = h + sign * (height_[j] - h) / (pos_[j] - p);
      }
      height_[i] = candidate;
      pos_[i] += sign;
    }
  }
  return true;
}

double P2Quantile::value() const {
  if (n_ == 0) return kNan;
  if (n_ < 5) {
    std::vector<double> sorted(height_.begin(),
                               height_.begin() + static_cast<long>(n_));
    std::sort(sorted.begin(), sorted.end());
    return exact_quantile_sorted(sorted, q_);
  }
  return height_[2];
}

StreamingQuantiles::StreamingQuantiles()
    : trackers_{P2Quantile(0.5), P2Quantile(0.95), P2Quantile(0.99),
                P2Quantile(0.999)} {
  window_.reserve(kExactWindow);
}

bool StreamingQuantiles::add(double x) {
  if (std::isnan(x)) return false;
  for (P2Quantile& t : trackers_) t.add(x);
  moments_.add(x);
  if (window_.size() < kExactWindow) window_.push_back(x);
  return true;
}

double StreamingQuantiles::quantile(double q) const {
  if (moments_.count() == 0) return kNan;
  if (moments_.count() <= kExactWindow) {
    std::vector<double> sorted = window_;
    std::sort(sorted.begin(), sorted.end());
    return exact_quantile_sorted(sorted, q);
  }
  for (const P2Quantile& t : trackers_) {
    if (t.q() == q) return t.value();
  }
  MOBIWEB_CHECK_MSG(false, "StreamingQuantiles: untracked quantile");
  return kNan;  // unreachable
}

TailSummary StreamingQuantiles::summary() const {
  TailSummary out;
  out.count = moments_.count();
  if (out.count == 0) return out;
  out.mean = moments_.mean();
  out.stddev = moments_.stddev();
  out.ci95 = mean_ci95_halfwidth(out.count, out.stddev);
  out.min = moments_.min();
  out.max = moments_.max();
  out.p50 = quantile(0.5);
  out.p95 = quantile(0.95);
  out.p99 = quantile(0.99);
  out.p999 = quantile(0.999);
  return out;
}

}  // namespace mobiweb::stats
