// Small inference toolkit for the experiment engine: Student-t critical
// values (confidence intervals for means), a Jarque-Bera normality check,
// chi-square goodness-of-fit against arbitrary expected weights (workload
// generator validation), and the index-of-dispersion test for Poisson-ness
// of arrival counts.
//
// The special functions underneath (regularized incomplete gamma and beta)
// are implemented with the standard series / continued-fraction splits and
// are exposed for tests; accuracy is ~1e-10 over the ranges we use, far
// tighter than any decision threshold in the suite.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/describe.hpp"

namespace mobiweb::stats {

// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
double gamma_p(double a, double x);
// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);
// Regularized incomplete beta I_x(a, b), a, b > 0, x in [0, 1].
double incomplete_beta(double a, double b, double x);

// Survival function of the chi-square distribution with df degrees of
// freedom: P[X > x]. Used as the p-value of every chi-square statistic here.
double chi_square_sf(double x, double df);

// CDF of Student's t with df degrees of freedom.
double student_t_cdf(double t, double df);

// Two-sided critical value t* with P[|T| <= t*] = confidence, for df degrees
// of freedom — e.g. t_critical(10, 0.95) = 2.228. df >= 1; confidence in
// (0, 1). Converges to the normal quantile (1.96 at 95%) for large df.
double t_critical(double df, double confidence = 0.95);

struct TestResult {
  double statistic = 0.0;
  double df = 0.0;      // degrees of freedom of the reference distribution
  double p_value = 1.0; // probability of a statistic at least this extreme
};

// Jarque-Bera normality check from streaming moments:
//   JB = n/6 (g1^2 + g2^2/4)  ~  chi-square(2) under normality.
// Small p-values reject normality. Needs n >= 8 to be meaningful; below
// that the test degenerates to p = 1 (never rejects).
TestResult jarque_bera(const Moments& m);

// Pearson chi-square goodness of fit: `observed` are bin counts, `weights`
// the expected relative weights (any positive scale; normalized internally).
// Bins with expected count below `min_expected` are pooled into their
// neighbor so the chi-square approximation stays valid. df = bins - 1.
TestResult chi_square_gof(const std::vector<long>& observed,
                          const std::vector<double>& weights,
                          double min_expected = 5.0);

// Index-of-dispersion (variance-to-mean) test for Poisson counts: under a
// Poisson process, window counts have dispersion 1 and
//   D = (n - 1) s^2 / mean  ~  chi-square(n - 1).
// The returned p-value is two-sided (small for both under- and
// over-dispersion); `statistic` is D, and dispersion() below gives s^2/mean.
TestResult dispersion_test(const std::vector<long>& counts);

// Plain variance-to-mean ratio of the counts (1 for ideal Poisson).
double dispersion_index(const std::vector<long>& counts);

}  // namespace mobiweb::stats
