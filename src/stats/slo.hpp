// SLO burn engine: statistical gating of time-bucketed metric series.
//
// The fleet timeline (obs::TimeSeries + derived ratio series) turns one run
// into a handful of per-bucket series — link-loss fraction, origin-up
// fraction, stale-serve fraction, ... An end-of-run mean can hide a mid-run
// burn: a cache-eviction cliff halfway through a 100k-session run averages
// out. evaluate_slo_series() catches it with two instruments from this
// library:
//
//   1. summarize_tails() over the buckets — the distributional view (p99 of
//      the per-bucket loss fraction, not of the pooled samples);
//   2. fit_linear() of value against bucket index — the drift view. The
//      fitted relative change across the whole window ("drift") is compared
//      against a tolerance, but only breaches when the slope is
//      statistically significant (its 95% CI excludes zero) and enough
//      buckets contributed. A flat-but-noisy series must PASS; a genuine
//      mid-run regression must FAIL.
//
// Buckets where the metric is undefined (ratio with a zero denominator) are
// passed as NaN and skipped — both by the summary and by the fit.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "stats/describe.hpp"
#include "stats/regress.hpp"

namespace mobiweb::stats {

// Minimum defined buckets before a drift can gate. Below this the slope CI
// from so few points is meaningless and everything reports breach = false.
inline constexpr std::size_t kSloMinBuckets = 8;

// Verdict for one bucketed series.
struct SloSeries {
  std::string name;
  // +1: higher is better (origin_up_fraction); -1: lower is better
  // (loss fraction); 0: informational, never breaches.
  int direction = 0;
  std::size_t buckets = 0;      // defined (non-NaN) buckets evaluated
  std::size_t window = 0;       // total buckets in the run window
  TailSummary summary;          // distribution over the defined buckets
  LinearFit fit;                // value ~ bucket index (zeroed below 2 pts)
  double drift = 0.0;           // slope * (window-1) / max(|mean|, eps)
  double tolerance = 0.0;       // relative drift allowed before breaching
  bool significant = false;     // slope 95% CI excludes zero (and enough data)
  bool breach = false;
};

// Evaluates one series. `values` is the per-bucket metric (NaN = undefined
// bucket). Deterministic: depends only on the argument values.
SloSeries evaluate_slo_series(std::string name,
                              const std::vector<double>& values, int direction,
                              double tolerance);

// Renders verdicts as a JSON object:
//   {"tolerance": ..., "breaches": N, "series": [{...one per verdict...}]}
// Numbers use %.9g so the document is byte-stable for identical inputs.
std::string slo_json(const std::vector<SloSeries>& series, double tolerance);

}  // namespace mobiweb::stats
