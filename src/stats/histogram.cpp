#include "stats/histogram.hpp"

#include <cmath>

namespace mobiweb::stats {

TailSummary summarize_histogram(const obs::Histogram& h) {
  TailSummary out;
  const long n = h.count();
  if (n <= 0) return out;
  out.count = static_cast<std::size_t>(n);
  out.mean = h.mean();
  out.stddev = std::sqrt(h.variance());
  out.ci95 = mean_ci95_halfwidth(out.count, out.stddev);
  out.min = h.min();
  out.max = h.max();
  out.p50 = h.quantile(0.5);
  out.p95 = h.quantile(0.95);
  out.p99 = h.quantile(0.99);
  out.p999 = h.quantile(0.999);
  return out;
}

TailSummary summarize_histogram(const obs::MetricsRegistry& registry,
                                std::string_view name) {
  const obs::Histogram* h = registry.find_histogram(name);
  return h != nullptr ? summarize_histogram(*h) : TailSummary{};
}

}  // namespace mobiweb::stats
