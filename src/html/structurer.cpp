#include "html/structurer.hpp"

#include <string>
#include <vector>

#include "doc/recognizer.hpp"
#include "html/tokenizer.hpp"
#include "text/tokenize.hpp"

namespace mobiweb::html {

namespace {

// Heading level for hN tags; 0 when not a heading.
int heading_level(std::string_view name) {
  if (name.size() == 2 && name[0] == 'h' && name[1] >= '1' && name[1] <= '6') {
    return name[1] - '0';
  }
  return 0;
}

doc::Lod heading_lod(int level) {
  switch (level) {
    case 1: return doc::Lod::kSection;
    case 2: return doc::Lod::kSubsection;
    default: return doc::Lod::kSubsubsection;
  }
}

bool is_emphasis_tag(std::string_view name) {
  return name == "b" || name == "i" || name == "em" || name == "strong" ||
         name == "u";
}

// Block-level boundaries that flush the current paragraph.
bool is_block_tag(std::string_view name) {
  return name == "p" || name == "div" || name == "ul" || name == "ol" ||
         name == "li" || name == "table" || name == "tr" || name == "td" ||
         name == "th" || name == "blockquote" || name == "pre" ||
         name == "section" || name == "article" || name == "aside" ||
         name == "nav" || name == "footer" || name == "header" ||
         name == "figure" || name == "figcaption" || name == "dl" ||
         name == "dt" || name == "dd" || name == "form" || name == "hr";
}

class Structurer {
 public:
  explicit Structurer(const StructurerOptions& options) : options_(options) {
    doc::OrgUnit root;
    root.lod = doc::Lod::kDocument;
    open_.push_back(std::move(root));
  }

  doc::OrgUnit run(const std::vector<Token>& tokens) {
    for (const auto& tok : tokens) {
      switch (tok.type) {
        case TokenType::kText:
          on_text(tok.text);
          break;
        case TokenType::kStartTag:
          on_start(tok);
          break;
        case TokenType::kEndTag:
          on_end(tok);
          break;
        case TokenType::kComment:
        case TokenType::kDoctype:
          break;
      }
    }
    finish_open_heading();  // tolerate an unclosed <hN> at EOF
    flush_paragraph();
    while (open_.size() > 1) close_deepest();
    doc::OrgUnit root = std::move(open_.front());
    doc::normalize_units(root);
    return root;
  }

 private:
  void on_text(const std::string& text) {
    if (raw_text_depth_ > 0) return;  // script/style/textarea content
    if (in_head_ && !in_title_) return;
    if (in_title_) {
      title_buffer_ += text;
      return;
    }
    if (heading_depth_ > 0) {
      heading_buffer_ += text;
      return;
    }
    para_text_ += text;
    for (auto& t : text::tokenize(text, emphasis_depth_ > 0)) {
      para_tokens_.push_back(std::move(t));
    }
  }

  void on_start(const Token& tok) {
    const std::string& name = tok.name;
    if (is_raw_text_element(name)) {
      if (!tok.self_closing) ++raw_text_depth_;
      return;
    }
    if (name == "head") {
      in_head_ = true;
      return;
    }
    if (name == "title" && open_.size() == 1 && open_[0].title.empty()) {
      in_title_ = true;
      title_buffer_.clear();
      return;
    }
    if (const int level = heading_level(name); level > 0) {
      finish_open_heading();  // tag soup: a new heading closes the previous
      flush_paragraph();
      ++heading_depth_;
      heading_buffer_.clear();
      pending_heading_lod_ = heading_lod(level);
      return;
    }
    if (is_emphasis_tag(name)) {
      ++emphasis_depth_;
      return;
    }
    if (is_block_tag(name)) {
      finish_open_heading();  // <h1>Title<p>... implies </h1>
      flush_paragraph();
      return;
    }
    if (name == "br") {
      para_text_.push_back('\n');
    }
  }

  void on_end(const Token& tok) {
    const std::string& name = tok.name;
    if (is_raw_text_element(name)) {
      if (raw_text_depth_ > 0) --raw_text_depth_;
      return;
    }
    if (name == "head") {
      in_head_ = false;
      in_title_ = false;
      return;
    }
    if (name == "title" && in_title_) {
      in_title_ = false;
      open_[0].title = title_buffer_;
      for (auto& t : text::tokenize(title_buffer_, options_.heading_emphasized)) {
        open_[0].own_tokens.push_back(std::move(t));
      }
      return;
    }
    if (heading_level(name) > 0 && heading_depth_ > 0) {
      --heading_depth_;
      if (heading_depth_ == 0) open_unit(pending_heading_lod_, heading_buffer_);
      return;
    }
    if (is_emphasis_tag(name)) {
      if (emphasis_depth_ > 0) --emphasis_depth_;
      return;
    }
    if (is_block_tag(name)) {
      flush_paragraph();
    }
  }

  // Closes an implicitly open heading (missing </hN>) as if it had ended.
  void finish_open_heading() {
    if (heading_depth_ == 0) return;
    heading_depth_ = 0;
    open_unit(pending_heading_lod_, heading_buffer_);
    heading_buffer_.clear();
  }

  // Closes the deepest open unit into its parent.
  void close_deepest() {
    doc::OrgUnit done = std::move(open_.back());
    open_.pop_back();
    open_.back().children.push_back(std::move(done));
  }

  // Opens a unit at `lod`, closing anything at the same depth or deeper.
  void open_unit(doc::Lod lod, const std::string& title) {
    flush_paragraph();
    while (open_.size() > 1 &&
           static_cast<int>(open_.back().lod) >= static_cast<int>(lod)) {
      close_deepest();
    }
    doc::OrgUnit unit;
    unit.lod = lod;
    unit.title = title;
    for (auto& t : text::tokenize(title, options_.heading_emphasized)) {
      unit.own_tokens.push_back(std::move(t));
    }
    open_.push_back(std::move(unit));
  }

  void flush_paragraph() {
    const bool blank =
        para_text_.find_first_not_of(" \t\r\n") == std::string::npos;
    if (!blank) {
      doc::OrgUnit para;
      para.lod = doc::Lod::kParagraph;
      para.own_text = para_text_;
      para.own_tokens = std::move(para_tokens_);
      open_.back().children.push_back(std::move(para));
    }
    para_text_.clear();
    para_tokens_.clear();
  }

  StructurerOptions options_;
  std::vector<doc::OrgUnit> open_;  // open_[0] is the document unit
  bool in_head_ = false;
  bool in_title_ = false;
  int raw_text_depth_ = 0;
  int heading_depth_ = 0;
  int emphasis_depth_ = 0;
  std::string title_buffer_;
  std::string heading_buffer_;
  std::string para_text_;
  std::vector<text::Token> para_tokens_;
  doc::Lod pending_heading_lod_ = doc::Lod::kSection;
};

}  // namespace

doc::OrgUnit structure_html(std::string_view html_text,
                            const StructurerOptions& options) {
  return Structurer(options).run(tokenize(html_text));
}

}  // namespace mobiweb::html
