// Minimal HTML tokenizer.
//
// The paper's prototype works on XML; mapping HTML onto the LOD abstraction
// is listed as work in progress ("We are working on algorithms to extract the
// structure of an HTML document from its content"). src/html implements that
// extension: this tokenizer handles the tag soup of real pages — unclosed
// tags, case-insensitive names, unquoted attributes, raw-text elements
// (script/style), entities — and the structurer (structurer.hpp) folds the
// token stream into the same organizational-unit tree as the XML recognizer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "xml/dom.hpp"  // reuse Attribute

namespace mobiweb::html {

enum class TokenType {
  kStartTag,
  kEndTag,
  kText,
  kComment,
  kDoctype,
};

struct Token {
  TokenType type = TokenType::kText;
  std::string name;                       // tag name, lowercased
  std::string text;                       // text/comment/doctype body
  std::vector<xml::Attribute> attributes; // start tags; names lowercased
  bool self_closing = false;              // <br/>
};

// Decodes the common named entities plus numeric references; unknown
// entities pass through literally (HTML-style leniency).
std::string decode_entities(std::string_view text);

// Tokenizes a full document. Never throws on malformed markup — bad
// constructs degrade to text, as browsers do.
std::vector<Token> tokenize(std::string_view input);

// Elements whose content is raw text (no markup): script, style, textarea.
bool is_raw_text_element(std::string_view name);

// Void elements that never take an end tag: br, img, hr, meta, ...
bool is_void_element(std::string_view name);

}  // namespace mobiweb::html
