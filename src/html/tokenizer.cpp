#include "html/tokenizer.hpp"

#include <cctype>
#include <charconv>
#include <unordered_map>

namespace mobiweb::html {

namespace {

char lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' || c == ':';
}

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }

std::string encode_utf8(unsigned code) {
  std::string out;
  if (code == 0 || code > 0x10ffff) return out;
  if (code < 0x80) {
    out.push_back(static_cast<char>(code));
  } else if (code < 0x800) {
    out.push_back(static_cast<char>(0xc0 | (code >> 6)));
    out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
  } else if (code < 0x10000) {
    out.push_back(static_cast<char>(0xe0 | (code >> 12)));
    out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
  } else {
    out.push_back(static_cast<char>(0xf0 | (code >> 18)));
    out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
  }
  return out;
}

}  // namespace

std::string decode_entities(std::string_view text) {
  static const std::unordered_map<std::string, std::string> kNamed = {
      {"amp", "&"},    {"lt", "<"},     {"gt", ">"},     {"quot", "\""},
      {"apos", "'"},   {"nbsp", " "},   {"copy", "\xC2\xA9"},
      {"reg", "\xC2\xAE"}, {"mdash", "\xE2\x80\x94"}, {"ndash", "\xE2\x80\x93"},
      {"hellip", "\xE2\x80\xA6"}, {"lsquo", "'"}, {"rsquo", "'"},
      {"ldquo", "\""}, {"rdquo", "\""},
  };
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i++]);
      continue;
    }
    const std::size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 10) {
      out.push_back(text[i++]);  // bare ampersand
      continue;
    }
    const std::string_view body = text.substr(i + 1, semi - i - 1);
    if (!body.empty() && body[0] == '#') {
      unsigned code = 0;
      const char* begin = body.data() + 1;
      const char* end = body.data() + body.size();
      std::from_chars_result res{};
      if (body.size() > 1 && (body[1] == 'x' || body[1] == 'X')) {
        res = std::from_chars(begin + 1, end, code, 16);
      } else {
        res = std::from_chars(begin, end, code, 10);
      }
      if (res.ec == std::errc{} && res.ptr == end) {
        out += encode_utf8(code);
        i = semi + 1;
        continue;
      }
    } else if (auto it = kNamed.find(std::string(body)); it != kNamed.end()) {
      out += it->second;
      i = semi + 1;
      continue;
    }
    out.push_back(text[i++]);  // unknown entity: keep literal
  }
  return out;
}

bool is_raw_text_element(std::string_view name) {
  return name == "script" || name == "style" || name == "textarea";
}

bool is_void_element(std::string_view name) {
  return name == "area" || name == "base" || name == "br" || name == "col" ||
         name == "embed" || name == "hr" || name == "img" || name == "input" ||
         name == "link" || name == "meta" || name == "param" ||
         name == "source" || name == "track" || name == "wbr";
}

namespace {

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view input) : in_(input) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    std::string text;
    auto flush_text = [&] {
      if (text.empty()) return;
      Token t;
      t.type = TokenType::kText;
      t.text = decode_entities(text);
      out.push_back(std::move(t));
      text.clear();
    };

    while (pos_ < in_.size()) {
      if (in_[pos_] != '<') {
        text.push_back(in_[pos_++]);
        continue;
      }
      // '<' — decide what construct this is.
      if (starts_with("<!--")) {
        flush_text();
        out.push_back(read_comment());
        continue;
      }
      if (starts_with("<!")) {
        flush_text();
        out.push_back(read_doctype());
        continue;
      }
      if (starts_with("</")) {
        if (pos_ + 2 < in_.size() && std::isalpha(static_cast<unsigned char>(in_[pos_ + 2]))) {
          flush_text();
          out.push_back(read_end_tag());
        } else {
          text.push_back(in_[pos_++]);  // "</3" — literal text
        }
        continue;
      }
      if (pos_ + 1 < in_.size() && std::isalpha(static_cast<unsigned char>(in_[pos_ + 1]))) {
        flush_text();
        Token start = read_start_tag();
        const std::string name = start.name;
        const bool self_closing = start.self_closing;
        out.push_back(std::move(start));
        if (!self_closing && is_raw_text_element(name)) {
          out.push_back(read_raw_text(name));
          Token end;
          end.type = TokenType::kEndTag;
          end.name = name;
          out.push_back(std::move(end));
        }
        continue;
      }
      text.push_back(in_[pos_++]);  // lone '<'
    }
    flush_text();
    return out;
  }

 private:
  [[nodiscard]] bool starts_with(std::string_view s) const {
    return in_.substr(pos_).starts_with(s);
  }

  Token read_comment() {
    pos_ += 4;  // <!--
    Token t;
    t.type = TokenType::kComment;
    const std::size_t end = in_.find("-->", pos_);
    if (end == std::string_view::npos) {
      t.text = std::string(in_.substr(pos_));
      pos_ = in_.size();
    } else {
      t.text = std::string(in_.substr(pos_, end - pos_));
      pos_ = end + 3;
    }
    return t;
  }

  Token read_doctype() {
    pos_ += 2;  // <!
    Token t;
    t.type = TokenType::kDoctype;
    const std::size_t end = in_.find('>', pos_);
    if (end == std::string_view::npos) {
      t.text = std::string(in_.substr(pos_));
      pos_ = in_.size();
    } else {
      t.text = std::string(in_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
    return t;
  }

  Token read_end_tag() {
    pos_ += 2;  // </
    Token t;
    t.type = TokenType::kEndTag;
    while (pos_ < in_.size() && is_name_char(in_[pos_])) {
      t.name.push_back(lower(in_[pos_++]));
    }
    const std::size_t end = in_.find('>', pos_);
    pos_ = (end == std::string_view::npos) ? in_.size() : end + 1;
    return t;
  }

  Token read_start_tag() {
    ++pos_;  // <
    Token t;
    t.type = TokenType::kStartTag;
    while (pos_ < in_.size() && is_name_char(in_[pos_])) {
      t.name.push_back(lower(in_[pos_++]));
    }
    // Attributes.
    for (;;) {
      while (pos_ < in_.size() && is_space(in_[pos_])) ++pos_;
      if (pos_ >= in_.size()) break;
      if (in_[pos_] == '>') {
        ++pos_;
        break;
      }
      if (starts_with("/>")) {
        t.self_closing = true;
        pos_ += 2;
        break;
      }
      if (in_[pos_] == '/') {  // stray slash
        ++pos_;
        continue;
      }
      // Attribute name.
      xml::Attribute attr;
      while (pos_ < in_.size() && !is_space(in_[pos_]) && in_[pos_] != '=' &&
             in_[pos_] != '>' && in_[pos_] != '/') {
        attr.name.push_back(lower(in_[pos_++]));
      }
      if (attr.name.empty()) {
        ++pos_;  // defensive: skip the odd character
        continue;
      }
      while (pos_ < in_.size() && is_space(in_[pos_])) ++pos_;
      if (pos_ < in_.size() && in_[pos_] == '=') {
        ++pos_;
        while (pos_ < in_.size() && is_space(in_[pos_])) ++pos_;
        if (pos_ < in_.size() && (in_[pos_] == '"' || in_[pos_] == '\'')) {
          const char quote = in_[pos_++];
          const std::size_t end = in_.find(quote, pos_);
          if (end == std::string_view::npos) {
            attr.value = decode_entities(in_.substr(pos_));
            pos_ = in_.size();
          } else {
            attr.value = decode_entities(in_.substr(pos_, end - pos_));
            pos_ = end + 1;
          }
        } else {
          std::string raw;
          while (pos_ < in_.size() && !is_space(in_[pos_]) && in_[pos_] != '>') {
            // A '/' that closes the tag ("src=x/>") is not part of the value.
            if (in_[pos_] == '/' && pos_ + 1 < in_.size() && in_[pos_ + 1] == '>') {
              break;
            }
            raw.push_back(in_[pos_++]);
          }
          attr.value = decode_entities(raw);
        }
      }
      t.attributes.push_back(std::move(attr));
    }
    return t;
  }

  Token read_raw_text(std::string_view element) {
    Token t;
    t.type = TokenType::kText;
    // Scan for the matching case-insensitive close tag.
    std::string close = "</";
    close += element;
    std::size_t i = pos_;
    while (i < in_.size()) {
      if (in_[i] == '<' && in_.size() - i >= close.size()) {
        bool match = true;
        for (std::size_t k = 0; k < close.size(); ++k) {
          if (lower(in_[i + k]) != close[k]) {
            match = false;
            break;
          }
        }
        if (match) break;
      }
      ++i;
    }
    t.text = std::string(in_.substr(pos_, i - pos_));
    if (i >= in_.size()) {
      pos_ = in_.size();
    } else {
      const std::size_t end = in_.find('>', i);
      pos_ = (end == std::string_view::npos) ? in_.size() : end + 1;
    }
    return t;
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<Token> tokenize(std::string_view input) {
  return Tokenizer(input).run();
}

}  // namespace mobiweb::html
