// HTML structure extraction: folds an HTML token stream into the same
// organizational-unit tree the XML recognizer produces, using heading levels
// as structure cues:
//
//   <title>            -> document title
//   <h1>               -> section boundary
//   <h2>               -> subsection boundary
//   <h3>..<h6>         -> subsubsection boundary
//   <p>, <li>, <td>, block boundaries -> paragraphs
//   <b>/<i>/<em>/<strong>/<u> -> emphasized keywords
//   <script>/<style>/<head> content (except <title>) -> dropped
//
// Text preceding the first heading lands in paragraphs directly under the
// document unit; normalize_units then wraps stray paragraphs in virtual
// sections/subsections exactly as the XML path does.
#pragma once

#include <string_view>

#include "doc/unit.hpp"

namespace mobiweb::html {

struct StructurerOptions {
  // Treat heading words as emphasized (they qualify as keywords).
  bool heading_emphasized = true;
};

// Parses HTML text and returns the document's organizational-unit tree.
doc::OrgUnit structure_html(std::string_view html_text,
                            const StructurerOptions& options = {});

}  // namespace mobiweb::html
