// Systematic Information Dispersal (paper §4.1).
//
// A document payload is cut into M raw packets of `packet_size` bytes (the
// last one zero-padded) and expanded to N >= M "cooked" packets with a
// systematic Vandermonde generator over GF(2^8):
//
//   * cooked packets 0..M-1 are byte-identical to the raw packets (clear
//     text), so a receiver can use them immediately without any decoding;
//   * ANY M intact cooked packets reconstruct all M raw packets by inverting
//     the corresponding M x M sub-generator.
//
// This mirrors Rabin's IDA with the paper's modification: "adopt the
// Vandermonde polynomial in the transformation stage, followed by making the
// upper portion of the multiplying Vandermonde matrix into an identity matrix
// via elementary matrix transformation".
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "gf256/matrix.hpp"
#include "util/bytes.hpp"

namespace mobiweb::ida {

// Returns the shared systematic generator for (n, m); generators are cached
// process-wide because the simulator re-uses a handful of shapes thousands of
// times. Thread-safe.
const gf::Matrix& systematic_generator(std::size_t n, std::size_t m);

// Encode/decode shard their independent output rows across the global
// ThreadPool when the matrix work (rows to compute x m x packet bytes,
// i.e. byte-multiplies) reaches this threshold; smaller jobs run serially.
// Sharding never changes output bytes — rows are computed independently.
// `set_parallel_threshold` returns the previous value (0 forces the parallel
// path for any size; handy in tests and benchmarks). Thread-safe.
inline constexpr std::size_t kDefaultParallelThreshold = 1u << 18;
std::size_t parallel_threshold();
std::size_t set_parallel_threshold(std::size_t byte_multiplies);

// Number of raw packets needed to carry `payload_size` bytes at `packet_size`.
std::size_t packet_count(std::size_t payload_size, std::size_t packet_size);

// Splits payload into raw packets of exactly `packet_size` bytes each,
// zero-padding the tail. Requires a non-empty payload and packet_size >= 1.
std::vector<Bytes> split_payload(ByteSpan payload, std::size_t packet_size);

class Encoder {
 public:
  // m = raw packets, n = cooked packets; 1 <= m <= n <= 255.
  Encoder(std::size_t m, std::size_t n);

  [[nodiscard]] std::size_t m() const { return m_; }
  [[nodiscard]] std::size_t n() const { return n_; }

  // Encodes pre-split raw packets (all the same size) into n cooked packets.
  // The first m cooked packets equal the raw packets.
  [[nodiscard]] std::vector<Bytes> encode(const std::vector<Bytes>& raw) const;

  // Convenience: split + encode.
  [[nodiscard]] std::vector<Bytes> encode_payload(ByteSpan payload,
                                                  std::size_t packet_size) const;

 private:
  std::size_t m_;
  std::size_t n_;
};

// One-shot decoder: give it >= m (index, payload) pairs with distinct indices
// in [0, n) and it reconstructs the m raw packets.
class Decoder {
 public:
  Decoder(std::size_t m, std::size_t n);

  [[nodiscard]] std::size_t m() const { return m_; }
  [[nodiscard]] std::size_t n() const { return n_; }

  // `cooked` holds (cooked index, payload); payloads must share one size.
  // Uses the first m distinct indices. Throws ContractViolation when fewer
  // than m distinct intact packets are supplied.
  [[nodiscard]] std::vector<Bytes> decode(
      const std::vector<std::pair<std::size_t, Bytes>>& cooked) const;

  // Reconstructs the original payload of `payload_size` bytes.
  [[nodiscard]] Bytes decode_payload(
      const std::vector<std::pair<std::size_t, Bytes>>& cooked,
      std::size_t payload_size) const;

 private:
  std::size_t m_;
  std::size_t n_;
};

// Incremental receiver-side decoder. Cooked packets arrive one at a time (in
// any order, possibly with gaps); clear-text packets are usable immediately
// ("it allows a portion of the original information to be used once they are
// available"), and reconstruction unlocks once m distinct intact packets are
// buffered. The buffer survives retransmission rounds — this is exactly the
// client cache that the paper's Caching strategy keeps across "stalled"
// downloads.
class StreamingDecoder {
 public:
  StreamingDecoder(std::size_t m, std::size_t n, std::size_t packet_size,
                   std::size_t payload_size);

  // Returns true if the packet was new and intact-usable (i.e. not a
  // duplicate). Index must be < n and payload exactly packet_size bytes.
  bool add(std::size_t index, ByteSpan payload);

  [[nodiscard]] std::size_t intact_count() const { return held_.size(); }
  [[nodiscard]] bool complete() const { return held_.size() >= m_; }

  // True when cooked packet `index` has been received intact (any index).
  [[nodiscard]] bool has(std::size_t index) const;

  // True when raw packet `raw_index` is already available in clear text
  // (systematic prefix), before full reconstruction.
  [[nodiscard]] bool has_clear(std::size_t raw_index) const;

  // The bytes of a clear-text raw packet; throws if !has_clear(raw_index).
  [[nodiscard]] ByteSpan clear_packet(std::size_t raw_index) const;

  // Full payload; throws ContractViolation if !complete().
  [[nodiscard]] Bytes reconstruct() const;

  // Fraction of raw packets currently readable in clear text.
  [[nodiscard]] double clear_fraction() const;

  void reset();

  [[nodiscard]] std::size_t m() const { return m_; }
  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t packet_size() const { return packet_size_; }
  [[nodiscard]] std::size_t payload_size() const { return payload_size_; }

 private:
  std::size_t m_;
  std::size_t n_;
  std::size_t packet_size_;
  std::size_t payload_size_;
  // (cooked index, payload), insertion order. Clear-text packets are always
  // kept (clients read them incrementally); redundancy packets only until m
  // are held — beyond that they add nothing.
  std::vector<std::pair<std::size_t, Bytes>> held_;
  std::vector<bool> seen_;
};

}  // namespace mobiweb::ida
