#include "ida/ida.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "obs/profile.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace mobiweb::ida {

namespace {

std::atomic<std::size_t> g_parallel_threshold{kDefaultParallelThreshold};

// Runs fn(lo, hi) over row range [begin, end), sharded across the global
// pool when the total matrix work is large enough to amortise the handoff.
void for_each_row_range(std::size_t begin, std::size_t end,
                        std::size_t work_per_row,
                        const std::function<void(std::size_t, std::size_t)>& fn) {
  const std::size_t rows = end - begin;
  if (rows >= 2 && rows * work_per_row >= parallel_threshold()) {
    MOBIWEB_PROFILE_SCOPE("ida.rows.parallel");
    ThreadPool::global().parallel_for(begin, end, 1, fn);
  } else if (rows > 0) {
    MOBIWEB_PROFILE_SCOPE("ida.rows.serial");
    fn(begin, end);
  }
}

}  // namespace

std::size_t parallel_threshold() {
  return g_parallel_threshold.load(std::memory_order_relaxed);
}

std::size_t set_parallel_threshold(std::size_t byte_multiplies) {
  return g_parallel_threshold.exchange(byte_multiplies,
                                       std::memory_order_relaxed);
}

const gf::Matrix& systematic_generator(std::size_t n, std::size_t m) {
  static std::mutex mu;
  static std::map<std::pair<std::size_t, std::size_t>, std::unique_ptr<gf::Matrix>> cache;
  std::scoped_lock lock(mu);
  auto& slot = cache[{n, m}];
  if (!slot) {
    slot = std::make_unique<gf::Matrix>(gf::systematic_vandermonde(n, m));
  }
  return *slot;
}

std::size_t packet_count(std::size_t payload_size, std::size_t packet_size) {
  MOBIWEB_CHECK_MSG(packet_size >= 1, "packet_count: packet_size must be >= 1");
  return (payload_size + packet_size - 1) / packet_size;
}

std::vector<Bytes> split_payload(ByteSpan payload, std::size_t packet_size) {
  MOBIWEB_CHECK_MSG(!payload.empty(), "split_payload: empty payload");
  MOBIWEB_CHECK_MSG(packet_size >= 1, "split_payload: packet_size must be >= 1");
  const std::size_t m = packet_count(payload.size(), packet_size);
  std::vector<Bytes> raw(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t begin = i * packet_size;
    const std::size_t end = std::min(begin + packet_size, payload.size());
    raw[i].assign(payload.begin() + static_cast<std::ptrdiff_t>(begin),
                  payload.begin() + static_cast<std::ptrdiff_t>(end));
    raw[i].resize(packet_size, 0);  // zero-pad the tail packet
  }
  return raw;
}

Encoder::Encoder(std::size_t m, std::size_t n) : m_(m), n_(n) {
  MOBIWEB_CHECK_MSG(m >= 1, "Encoder: m must be >= 1");
  MOBIWEB_CHECK_MSG(n >= m, "Encoder: n must be >= m");
  MOBIWEB_CHECK_MSG(n <= 255, "Encoder: n must be <= 255 over GF(2^8)");
}

std::vector<Bytes> Encoder::encode(const std::vector<Bytes>& raw) const {
  MOBIWEB_PROFILE_SCOPE("ida.encode");
  MOBIWEB_CHECK_MSG(raw.size() == m_, "Encoder::encode: expected m raw packets");
  const std::size_t size = raw.front().size();
  MOBIWEB_CHECK_MSG(size >= 1, "Encoder::encode: empty packets");
  for (const auto& p : raw) {
    MOBIWEB_CHECK_MSG(p.size() == size, "Encoder::encode: packet sizes differ");
  }

  const gf::Matrix& g = systematic_generator(n_, m_);
  std::vector<Bytes> cooked(n_);
  // Systematic prefix: plain copies, no field arithmetic.
  for (std::size_t i = 0; i < m_; ++i) cooked[i] = raw[i];
  // Redundancy rows are independent dot products over the shared raw packets,
  // so they shard across threads without changing a single output byte.
  for_each_row_range(m_, n_, m_ * size, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      cooked[i].assign(size, 0);
      for (std::size_t j = 0; j < m_; ++j) {
        gf::mul_add_row(cooked[i].data(), raw[j].data(), g.at(i, j), size);
      }
    }
  });
  return cooked;
}

std::vector<Bytes> Encoder::encode_payload(ByteSpan payload,
                                           std::size_t packet_size) const {
  auto raw = split_payload(payload, packet_size);
  MOBIWEB_CHECK_MSG(raw.size() == m_,
                    "Encoder::encode_payload: payload does not split into m packets");
  return encode(raw);
}

Decoder::Decoder(std::size_t m, std::size_t n) : m_(m), n_(n) {
  MOBIWEB_CHECK_MSG(m >= 1, "Decoder: m must be >= 1");
  MOBIWEB_CHECK_MSG(n >= m, "Decoder: n must be >= m");
  MOBIWEB_CHECK_MSG(n <= 255, "Decoder: n must be <= 255 over GF(2^8)");
}

std::vector<Bytes> Decoder::decode(
    const std::vector<std::pair<std::size_t, Bytes>>& cooked) const {
  MOBIWEB_PROFILE_SCOPE("ida.decode");
  // Validate the whole input up front: a bad index or a mixed-size payload
  // must surface as a ContractViolation here, never as a silently singular
  // submatrix or an out-of-bounds row read further down.
  MOBIWEB_CHECK_MSG(!cooked.empty(), "Decoder::decode: no packets supplied");
  const std::size_t size = cooked.front().second.size();
  MOBIWEB_CHECK_MSG(size >= 1, "Decoder::decode: empty packets");
  for (const auto& [idx, data] : cooked) {
    MOBIWEB_CHECK_MSG(idx < n_, "Decoder::decode: cooked index out of range");
    MOBIWEB_CHECK_MSG(data.size() == size, "Decoder::decode: packet sizes differ");
  }

  // Gather the first m distinct indices; duplicates carry no new information
  // and are skipped (they must not count toward the m required packets).
  std::vector<std::size_t> indices;
  std::vector<const Bytes*> payloads;
  std::vector<bool> seen(n_, false);
  for (const auto& [idx, data] : cooked) {
    if (seen[idx]) continue;
    seen[idx] = true;
    indices.push_back(idx);
    payloads.push_back(&data);
    if (indices.size() == m_) break;
  }
  MOBIWEB_CHECK_MSG(indices.size() == m_,
                    "Decoder::decode: need at least m distinct intact packets");

  const gf::Matrix& g = systematic_generator(n_, m_);
  const gf::Matrix sub = g.select_rows(indices);
  const gf::Matrix inv = sub.inverse();
  MOBIWEB_CHECK_MSG(!inv.empty(),
                    "Decoder::decode: sub-generator singular (corrupt indices?)");

  std::vector<Bytes> raw(m_);
  // Like encode: output rows are independent, so shard them across the pool.
  for_each_row_range(0, m_, m_ * size, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      raw[i].assign(size, 0);
      for (std::size_t j = 0; j < m_; ++j) {
        gf::mul_add_row(raw[i].data(), payloads[j]->data(), inv.at(i, j), size);
      }
    }
  });
  return raw;
}

Bytes Decoder::decode_payload(
    const std::vector<std::pair<std::size_t, Bytes>>& cooked,
    std::size_t payload_size) const {
  auto raw = decode(cooked);
  Bytes out;
  out.reserve(payload_size);
  for (const auto& p : raw) {
    out.insert(out.end(), p.begin(), p.end());
  }
  MOBIWEB_CHECK_MSG(out.size() >= payload_size,
                    "Decoder::decode_payload: payload_size exceeds decoded data");
  out.resize(payload_size);
  return out;
}

StreamingDecoder::StreamingDecoder(std::size_t m, std::size_t n,
                                   std::size_t packet_size,
                                   std::size_t payload_size)
    : m_(m), n_(n), packet_size_(packet_size), payload_size_(payload_size),
      seen_(n, false) {
  MOBIWEB_CHECK_MSG(m >= 1 && n >= m && n <= 255, "StreamingDecoder: bad (m, n)");
  MOBIWEB_CHECK_MSG(packet_size >= 1, "StreamingDecoder: packet_size must be >= 1");
  MOBIWEB_CHECK_MSG(payload_size >= 1 && payload_size <= m * packet_size,
                    "StreamingDecoder: payload_size inconsistent with m*packet_size");
}

bool StreamingDecoder::add(std::size_t index, ByteSpan payload) {
  MOBIWEB_CHECK_MSG(index < n_, "StreamingDecoder::add: index out of range");
  MOBIWEB_CHECK_MSG(payload.size() == packet_size_,
                    "StreamingDecoder::add: wrong packet size");
  if (seen_[index]) return false;
  seen_[index] = true;
  // Keep every clear-text packet (callers read them via clear_packet) and at
  // most m packets overall for reconstruction; later redundancy packets add
  // nothing once m are held.
  if (held_.size() < m_ || index < m_) {
    held_.emplace_back(index, Bytes(payload.begin(), payload.end()));
  }
  return true;
}

bool StreamingDecoder::has(std::size_t index) const {
  MOBIWEB_CHECK_MSG(index < n_, "StreamingDecoder::has: index out of range");
  return seen_[index];
}

bool StreamingDecoder::has_clear(std::size_t raw_index) const {
  MOBIWEB_CHECK_MSG(raw_index < m_, "StreamingDecoder::has_clear: index out of range");
  return seen_[raw_index];
}

ByteSpan StreamingDecoder::clear_packet(std::size_t raw_index) const {
  MOBIWEB_CHECK_MSG(has_clear(raw_index),
                    "StreamingDecoder::clear_packet: packet not held in clear");
  for (const auto& [idx, data] : held_) {
    if (idx == raw_index) return ByteSpan(data);
  }
  // seen_ true but not held can only happen for indices beyond the first m
  // useful packets, which has_clear already rejects for clear-prefix indices.
  throw ContractViolation("StreamingDecoder::clear_packet: internal inconsistency");
}

Bytes StreamingDecoder::reconstruct() const {
  MOBIWEB_PROFILE_SCOPE("ida.reconstruct");
  MOBIWEB_CHECK_MSG(complete(), "StreamingDecoder::reconstruct: not complete");
  Decoder dec(m_, n_);
  return dec.decode_payload(held_, payload_size_);
}

double StreamingDecoder::clear_fraction() const {
  std::size_t clear = 0;
  for (std::size_t i = 0; i < m_; ++i) {
    if (seen_[i]) ++clear;
  }
  return static_cast<double>(clear) / static_cast<double>(m_);
}

void StreamingDecoder::reset() {
  held_.clear();
  std::fill(seen_.begin(), seen_.end(), false);
}

}  // namespace mobiweb::ida
