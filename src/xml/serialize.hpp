// XML writer: compact or indented rendering with correct escaping. Round-trip
// (parse -> write -> parse) preserves the tree; property tests rely on this.
#pragma once

#include <string>

#include "xml/dom.hpp"

namespace mobiweb::xml {

struct WriteOptions {
  // Pretty-print with this indent per depth level; empty string = compact.
  std::string indent;
  // Emit an <?xml version="1.0"?> declaration for documents.
  bool declaration = true;
};

// Escapes &, <, > (and " in attribute context).
std::string escape_text(std::string_view text);
std::string escape_attribute(std::string_view value);

std::string write(const Node& node, const WriteOptions& options = {});
std::string write(const Document& doc, const WriteOptions& options = {});

}  // namespace mobiweb::xml
