// Value-semantic XML document object model.
//
// The paper builds document structure on XML ("a section LOD might be
// implemented using a pair of <section> and </section> tags"). No external
// XML library is assumed; src/xml is a self-contained parser + DOM + writer
// covering the subset the system needs: elements, attributes, character data,
// CDATA, comments, processing instructions, numeric/named entities, DOCTYPE.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mobiweb::xml {

enum class NodeType {
  kElement,
  kText,        // character data (entities already resolved)
  kCData,       // literal CDATA section
  kComment,
  kProcessing,  // <?target data?>
};

struct Attribute {
  std::string name;
  std::string value;

  bool operator==(const Attribute&) const = default;
};

// One DOM node. Elements own their children by value; the tree is freely
// copyable and movable with no ownership subtleties.
struct Node {
  NodeType type = NodeType::kElement;
  std::string name;   // element name or PI target; empty for text/comment
  std::string text;   // character data, comment body, CDATA body or PI data
  std::vector<Attribute> attributes;  // elements only
  std::vector<Node> children;         // elements only

  [[nodiscard]] bool is_element() const { return type == NodeType::kElement; }
  [[nodiscard]] bool is_text() const {
    return type == NodeType::kText || type == NodeType::kCData;
  }

  // Attribute value, or nullopt when absent. Element nodes only.
  [[nodiscard]] std::optional<std::string_view> attribute(std::string_view name) const;

  // First child element with the given name; nullptr when absent.
  [[nodiscard]] const Node* child(std::string_view name) const;

  // All child elements with the given name.
  [[nodiscard]] std::vector<const Node*> children_named(std::string_view name) const;

  // All child elements (any name).
  [[nodiscard]] std::vector<const Node*> child_elements() const;

  // Concatenated character data of this subtree (text + CDATA, depth-first).
  [[nodiscard]] std::string text_content() const;

  // Simple slash-separated descent: "body/section/para" returns every element
  // reachable by matching each path step against child-element names.
  [[nodiscard]] std::vector<const Node*> select(std::string_view path) const;

  // Total number of nodes in this subtree (including this node).
  [[nodiscard]] std::size_t subtree_size() const;

  bool operator==(const Node&) const = default;
};

// Parsed document: prolog bits plus the single root element.
struct Document {
  std::string xml_version;        // from <?xml version="..."?>; may be empty
  std::string encoding;           // from the XML declaration; may be empty
  std::string doctype_name;       // from <!DOCTYPE name ...>; may be empty
  std::string doctype_subset;     // raw internal subset ("[...]" content)
  std::vector<Node> prolog_misc;  // comments / PIs before the root
  Node root;
};

// Factory helpers used by builders and tests.
Node make_element(std::string name);
Node make_text(std::string text);

}  // namespace mobiweb::xml
