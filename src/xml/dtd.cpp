#include "xml/dtd.hpp"

#include <cctype>
#include <functional>

namespace mobiweb::xml::dtd {

const ElementDecl* Dtd::element(std::string_view name) const {
  const auto it = elements.find(name);
  return it == elements.end() ? nullptr : &it->second;
}

namespace {

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
         c == ':' || c == '.';
}

// Recursive-descent parser over declaration text.
class DtdParser {
 public:
  explicit DtdParser(std::string_view text) : in_(text) {}

  Dtd run() {
    Dtd dtd;
    for (;;) {
      skip_spaces_and_comments();
      if (eof()) return dtd;
      if (looking_at("<!ELEMENT")) {
        parse_element_decl(dtd);
      } else if (looking_at("<!ATTLIST")) {
        parse_attlist_decl(dtd);
      } else if (looking_at("<!ENTITY") || looking_at("<!NOTATION") ||
                 looking_at("<?")) {
        skip_declaration();
      } else {
        fail("unexpected content in DTD");
      }
    }
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= in_.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : in_[pos_]; }
  [[nodiscard]] bool looking_at(std::string_view s) const {
    return in_.substr(pos_).starts_with(s);
  }

  char advance() {
    if (eof()) fail("unexpected end of DTD");
    const char c = in_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void expect(std::string_view literal) {
    if (!looking_at(literal)) fail("expected '" + std::string(literal) + "'");
    pos_ += literal.size();
  }

  void skip_spaces() {
    while (!eof() && is_space(peek())) advance();
  }

  void skip_spaces_and_comments() {
    for (;;) {
      skip_spaces();
      if (!looking_at("<!--")) return;
      pos_ += 4;
      const std::size_t end = in_.find("-->", pos_);
      if (end == std::string_view::npos) fail("unterminated comment in DTD");
      pos_ = end + 3;
    }
  }

  void skip_declaration() {
    // Consume to the matching '>' (quotes respected).
    char quote = '\0';
    while (!eof()) {
      const char c = advance();
      if (quote != '\0') {
        if (c == quote) quote = '\0';
      } else if (c == '"' || c == '\'') {
        quote = c;
      } else if (c == '>') {
        return;
      }
    }
    fail("unterminated declaration");
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("DTD: " + message, line_, 1);
  }

  std::string parse_name() {
    if (eof() || !is_name_char(peek())) fail("expected a name");
    std::string name;
    while (!eof() && is_name_char(peek())) name.push_back(advance());
    return name;
  }

  void parse_element_decl(Dtd& dtd) {
    expect("<!ELEMENT");
    skip_spaces();
    const std::string name = parse_name();
    skip_spaces();
    ElementDecl decl;
    if (looking_at("EMPTY")) {
      expect("EMPTY");
      decl.model = ElementDecl::Model::kEmpty;
    } else if (looking_at("ANY")) {
      expect("ANY");
      decl.model = ElementDecl::Model::kAny;
    } else if (peek() == '(') {
      // Look ahead for #PCDATA to distinguish mixed from element content.
      const std::size_t close = find_group_end(pos_);
      const std::string_view group = in_.substr(pos_, close - pos_);
      if (group.find("#PCDATA") != std::string_view::npos) {
        decl.model = ElementDecl::Model::kMixed;
        parse_mixed(decl);
      } else {
        decl.model = ElementDecl::Model::kChildren;
        decl.content = parse_particle();
      }
    } else {
      fail("bad content model for element '" + name + "'");
    }
    skip_spaces();
    expect(">");
    if (!dtd.elements.emplace(name, std::move(decl)).second) {
      fail("duplicate declaration of element '" + name + "'");
    }
  }

  // Index just past the matching ')' of the group opening at `at` ('(').
  std::size_t find_group_end(std::size_t at) const {
    int depth = 0;
    for (std::size_t i = at; i < in_.size(); ++i) {
      if (in_[i] == '(') ++depth;
      if (in_[i] == ')') {
        --depth;
        if (depth == 0) return i + 1;
      }
    }
    fail("unbalanced parentheses in content model");
  }

  void parse_mixed(ElementDecl& decl) {
    expect("(");
    skip_spaces();
    expect("#PCDATA");
    skip_spaces();
    while (peek() == '|') {
      advance();
      skip_spaces();
      decl.mixed_names.push_back(parse_name());
      skip_spaces();
    }
    expect(")");
    if (peek() == '*') advance();
    else if (!decl.mixed_names.empty()) fail("mixed content with names requires ')*'");
  }

  // Content-model groups recurse; hostile "((((((..." must be rejected with
  // a ParseError before the parser (and the Particle tree it builds) blows
  // the stack.
  static constexpr std::size_t kMaxGroupDepth = 64;

  Particle parse_particle() {
    Particle p;
    if (peek() == '(') {
      if (++group_depth_ > kMaxGroupDepth) {
        fail("content model group nesting too deep");
      }
      advance();
      skip_spaces();
      std::vector<Particle> items;
      items.push_back(parse_particle());
      skip_spaces();
      char sep = '\0';
      while (peek() == ',' || peek() == '|') {
        const char c = advance();
        if (sep != '\0' && c != sep) fail("mixed ',' and '|' in one group");
        sep = c;
        skip_spaces();
        items.push_back(parse_particle());
        skip_spaces();
      }
      expect(")");
      --group_depth_;
      // Even for a single-item group, keep the group node so an occurrence
      // modifier on the group ("(a*)+") does not clobber the child's own.
      p.kind = (sep == '|') ? Particle::Kind::kChoice : Particle::Kind::kSeq;
      p.children = std::move(items);
    } else {
      p.kind = Particle::Kind::kName;
      p.name = parse_name();
    }
    switch (peek()) {
      case '?': advance(); p.occur = Particle::Occur::kOptional; break;
      case '*': advance(); p.occur = Particle::Occur::kStar; break;
      case '+': advance(); p.occur = Particle::Occur::kPlus; break;
      default: break;
    }
    return p;
  }

  void parse_attlist_decl(Dtd& dtd) {
    expect("<!ATTLIST");
    skip_spaces();
    const std::string element = parse_name();
    skip_spaces();
    while (peek() != '>') {
      AttributeDecl attr;
      attr.name = parse_name();
      skip_spaces();
      // Type: a name (CDATA, ID, NMTOKEN, ...) or an enumeration group.
      if (peek() == '(') {
        pos_ = find_group_end(pos_);
      } else {
        parse_name();
      }
      skip_spaces();
      if (looking_at("#REQUIRED")) {
        expect("#REQUIRED");
        attr.required = true;
      } else if (looking_at("#IMPLIED")) {
        expect("#IMPLIED");
      } else if (looking_at("#FIXED")) {
        expect("#FIXED");
        skip_spaces();
        attr.default_value = parse_quoted();
      } else if (peek() == '"' || peek() == '\'') {
        attr.default_value = parse_quoted();
      } else {
        fail("bad attribute default");
      }
      dtd.attributes[element].push_back(std::move(attr));
      skip_spaces();
    }
    expect(">");
  }

  std::string parse_quoted() {
    const char quote = advance();
    if (quote != '"' && quote != '\'') fail("expected quoted value");
    std::string value;
    while (!eof() && peek() != quote) value.push_back(advance());
    expect(std::string_view(&quote, 1));
    return value;
  }

  std::string_view in_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t group_depth_ = 0;
};

// ---- Content-model matching ------------------------------------------------

// Returns every position reachable after matching `p` once starting at `pos`
// over the child-name sequence. Small inputs: plain backtracking is fine.
void match_once(const Particle& p, const std::vector<std::string_view>& names,
                std::size_t pos, std::vector<std::size_t>& out);

// Matching with the particle's occurrence modifier.
void match(const Particle& p, const std::vector<std::string_view>& names,
           std::size_t pos, std::vector<std::size_t>& out) {
  auto push_unique = [&out](std::size_t v) {
    for (std::size_t existing : out) {
      if (existing == v) return;
    }
    out.push_back(v);
  };

  switch (p.occur) {
    case Particle::Occur::kOne: {
      match_once(p, names, pos, out);
      break;
    }
    case Particle::Occur::kOptional: {
      push_unique(pos);
      match_once(p, names, pos, out);
      break;
    }
    case Particle::Occur::kStar:
    case Particle::Occur::kPlus: {
      std::vector<std::size_t> frontier = {pos};
      if (p.occur == Particle::Occur::kStar) push_unique(pos);
      // Iterate: match one more repetition from every frontier position.
      while (!frontier.empty()) {
        std::vector<std::size_t> next;
        for (const std::size_t f : frontier) {
          std::vector<std::size_t> step;
          match_once(p, names, f, step);
          for (const std::size_t s : step) {
            if (s == f) continue;  // zero-width repetition: stop
            bool seen = false;
            for (std::size_t existing : out) seen |= (existing == s);
            push_unique(s);
            if (!seen) next.push_back(s);
          }
        }
        frontier = std::move(next);
      }
      break;
    }
  }
}

void match_once(const Particle& p, const std::vector<std::string_view>& names,
                std::size_t pos, std::vector<std::size_t>& out) {
  auto push_unique = [&out](std::size_t v) {
    for (std::size_t existing : out) {
      if (existing == v) return;
    }
    out.push_back(v);
  };

  switch (p.kind) {
    case Particle::Kind::kName:
      if (pos < names.size() && names[pos] == p.name) push_unique(pos + 1);
      break;
    case Particle::Kind::kChoice:
      for (const auto& child : p.children) {
        std::vector<std::size_t> step;
        match(child, names, pos, step);
        for (std::size_t s : step) push_unique(s);
      }
      break;
    case Particle::Kind::kSeq: {
      std::vector<std::size_t> frontier = {pos};
      for (const auto& child : p.children) {
        std::vector<std::size_t> next;
        for (const std::size_t f : frontier) {
          match(child, names, f, next);
        }
        // Dedupe.
        std::vector<std::size_t> unique;
        for (std::size_t v : next) {
          bool seen = false;
          for (std::size_t u : unique) seen |= (u == v);
          if (!seen) unique.push_back(v);
        }
        frontier = std::move(unique);
        if (frontier.empty()) return;
      }
      for (std::size_t f : frontier) push_unique(f);
      break;
    }
  }
}

bool matches_model(const Particle& p, const std::vector<std::string_view>& names) {
  std::vector<std::size_t> ends;
  match(p, names, 0, ends);
  for (std::size_t e : ends) {
    if (e == names.size()) return true;
  }
  return false;
}

void validate_node(const Node& node, const Dtd& dtd, const std::string& path,
                   std::vector<Diagnostic>& out) {
  const ElementDecl* decl = dtd.element(node.name);
  if (decl == nullptr) {
    out.push_back({path, "element '" + node.name + "' is not declared"});
  } else {
    // Character data / child checks per model.
    const bool has_text = [&] {
      for (const auto& c : node.children) {
        if (c.is_text() &&
            c.text.find_first_not_of(" \t\r\n") != std::string::npos) {
          return true;
        }
      }
      return false;
    }();
    std::vector<std::string_view> child_names;
    for (const auto& c : node.children) {
      if (c.is_element()) child_names.push_back(c.name);
    }

    switch (decl->model) {
      case ElementDecl::Model::kEmpty:
        if (has_text || !child_names.empty()) {
          out.push_back({path, "element '" + node.name + "' must be EMPTY"});
        }
        break;
      case ElementDecl::Model::kAny:
        break;
      case ElementDecl::Model::kMixed:
        for (const auto& name : child_names) {
          bool allowed = false;
          for (const auto& m : decl->mixed_names) allowed |= (m == name);
          if (!allowed) {
            out.push_back({path, "element '" + std::string(name) +
                                     "' not allowed in mixed content of '" +
                                     node.name + "'"});
          }
        }
        break;
      case ElementDecl::Model::kChildren:
        if (has_text) {
          out.push_back({path, "character data not allowed in '" + node.name + "'"});
        }
        if (!matches_model(decl->content, child_names)) {
          std::string got;
          for (const auto& name : child_names) {
            if (!got.empty()) got += ", ";
            got += name;
          }
          out.push_back({path, "children of '" + node.name +
                                   "' do not match the content model (got: " +
                                   (got.empty() ? "nothing" : got) + ")"});
        }
        break;
    }

    // Required attributes.
    const auto attrs_it = dtd.attributes.find(node.name);
    if (attrs_it != dtd.attributes.end()) {
      for (const auto& attr : attrs_it->second) {
        if (attr.required && !node.attribute(attr.name)) {
          out.push_back({path, "missing required attribute '" + attr.name +
                                   "' on '" + node.name + "'"});
        }
      }
    }
  }

  // Recurse with sibling indices in the path.
  std::map<std::string, int> counters;
  for (const auto& c : node.children) {
    if (!c.is_element()) continue;
    const int idx = counters[c.name]++;
    validate_node(c, dtd, path + "/" + c.name + "[" + std::to_string(idx) + "]", out);
  }
}

}  // namespace

Dtd parse_dtd(std::string_view text) { return DtdParser(text).run(); }

std::vector<Diagnostic> validate(const Node& root, const Dtd& dtd) {
  std::vector<Diagnostic> out;
  validate_node(root, dtd, "/" + root.name, out);
  return out;
}

std::vector<Diagnostic> validate(const Document& doc, const Dtd& dtd) {
  return validate(doc.root, dtd);
}

const Dtd& research_paper_dtd() {
  static const Dtd dtd = parse_dtd(R"(
    <!ELEMENT research-paper (title?, abstract?, section*)>
    <!ELEMENT abstract (para+)>
    <!ELEMENT section (title?, (para | subsection)*)>
    <!ELEMENT subsection (title?, (para | subsubsection)*)>
    <!ELEMENT subsubsection (title?, para*)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT para (#PCDATA | em | b | i | strong)*>
    <!ELEMENT em (#PCDATA)>
    <!ELEMENT b (#PCDATA)>
    <!ELEMENT i (#PCDATA)>
    <!ELEMENT strong (#PCDATA)>
    <!ATTLIST section id CDATA #IMPLIED>
    <!ATTLIST research-paper venue CDATA #IMPLIED year CDATA #IMPLIED>
  )");
  return dtd;
}

}  // namespace mobiweb::xml::dtd
