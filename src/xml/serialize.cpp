#include "xml/serialize.hpp"

#include <sstream>

namespace mobiweb::xml {

std::string escape_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string escape_attribute(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

bool has_element_children(const Node& node) {
  for (const auto& c : node.children) {
    if (!c.is_text()) return true;
  }
  return false;
}

void write_node(std::ostringstream& os, const Node& node, const WriteOptions& options,
                int depth) {
  const bool pretty = !options.indent.empty();
  auto pad = [&](int d) {
    if (!pretty) return;
    for (int i = 0; i < d; ++i) os << options.indent;
  };

  switch (node.type) {
    case NodeType::kText:
      os << escape_text(node.text);
      return;
    case NodeType::kCData:
      os << "<![CDATA[" << node.text << "]]>";
      return;
    case NodeType::kComment:
      os << "<!--" << node.text << "-->";
      return;
    case NodeType::kProcessing:
      os << "<?" << node.name;
      if (!node.text.empty()) os << ' ' << node.text;
      os << "?>";
      return;
    case NodeType::kElement:
      break;
  }

  os << '<' << node.name;
  for (const auto& attr : node.attributes) {
    os << ' ' << attr.name << "=\"" << escape_attribute(attr.value) << '"';
  }
  if (node.children.empty()) {
    os << "/>";
    return;
  }
  os << '>';

  // Mixed content (any text child) is written inline to preserve the exact
  // character data; element-only content can be safely indented.
  const bool indent_children = pretty && has_element_children(node) &&
                               !node.children.empty() &&
                               [&] {
                                 for (const auto& c : node.children) {
                                   if (c.is_text()) return false;
                                 }
                                 return true;
                               }();

  for (const auto& c : node.children) {
    if (indent_children) {
      os << '\n';
      pad(depth + 1);
    }
    write_node(os, c, options, depth + 1);
  }
  if (indent_children) {
    os << '\n';
    pad(depth);
  }
  os << "</" << node.name << '>';
}

}  // namespace

std::string write(const Node& node, const WriteOptions& options) {
  std::ostringstream os;
  write_node(os, node, options, 0);
  return os.str();
}

std::string write(const Document& doc, const WriteOptions& options) {
  std::ostringstream os;
  if (options.declaration) {
    os << "<?xml version=\"" << (doc.xml_version.empty() ? "1.0" : doc.xml_version)
       << "\"?>";
    if (!options.indent.empty()) os << '\n';
  }
  for (const auto& misc : doc.prolog_misc) {
    write_node(os, misc, options, 0);
    if (!options.indent.empty()) os << '\n';
  }
  write_node(os, doc.root, options, 0);
  return os.str();
}

}  // namespace mobiweb::xml
