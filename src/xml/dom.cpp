#include "xml/dom.hpp"

namespace mobiweb::xml {

std::optional<std::string_view> Node::attribute(std::string_view name) const {
  for (const auto& attr : attributes) {
    if (attr.name == name) return std::string_view(attr.value);
  }
  return std::nullopt;
}

const Node* Node::child(std::string_view name) const {
  for (const auto& c : children) {
    if (c.is_element() && c.name == name) return &c;
  }
  return nullptr;
}

std::vector<const Node*> Node::children_named(std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& c : children) {
    if (c.is_element() && c.name == name) out.push_back(&c);
  }
  return out;
}

std::vector<const Node*> Node::child_elements() const {
  std::vector<const Node*> out;
  for (const auto& c : children) {
    if (c.is_element()) out.push_back(&c);
  }
  return out;
}

namespace {
void collect_text(const Node& node, std::string& out) {
  if (node.is_text()) {
    out += node.text;
    return;
  }
  for (const auto& c : node.children) collect_text(c, out);
}
}  // namespace

std::string Node::text_content() const {
  std::string out;
  collect_text(*this, out);
  return out;
}

std::vector<const Node*> Node::select(std::string_view path) const {
  std::vector<const Node*> frontier = {this};
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    const std::string_view step =
        path.substr(pos, slash == std::string_view::npos ? std::string_view::npos
                                                         : slash - pos);
    if (!step.empty()) {
      std::vector<const Node*> next;
      for (const Node* node : frontier) {
        for (const auto& c : node->children) {
          if (c.is_element() && c.name == step) next.push_back(&c);
        }
      }
      frontier = std::move(next);
    }
    if (slash == std::string_view::npos) break;
    pos = slash + 1;
  }
  return frontier;
}

std::size_t Node::subtree_size() const {
  std::size_t count = 1;
  for (const auto& c : children) count += c.subtree_size();
  return count;
}

Node make_element(std::string name) {
  Node n;
  n.type = NodeType::kElement;
  n.name = std::move(name);
  return n;
}

Node make_text(std::string text) {
  Node n;
  n.type = NodeType::kText;
  n.text = std::move(text);
  return n;
}

}  // namespace mobiweb::xml
