// DTD parsing and validation.
//
// The paper anchors its LOD abstraction in a DTD: "a section LOD might be
// implemented using a pair of <section> and </section> tags, where section is
// defined as an element in an XML DTD for document type research-paper". This
// module implements the DTD subset a document server needs to sanity-check
// incoming documents before indexing them:
//
//   <!ELEMENT name EMPTY | ANY | (#PCDATA|a|b)* | (children model)>
//     with sequences (a, b), choices (a | b), groups and ?, *, + occurrence
//   <!ATTLIST name attr CDATA #REQUIRED | #IMPLIED | "default">
//
// Parameter entities, notations and external subsets are out of scope.
// A ready-made DTD for the paper's research-paper document type is provided
// as research_paper_dtd().
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xml/dom.hpp"
#include "xml/parser.hpp"  // ParseError

namespace mobiweb::xml::dtd {

// One particle of an element content model.
struct Particle {
  enum class Kind { kName, kSeq, kChoice };
  enum class Occur { kOne, kOptional, kStar, kPlus };

  Kind kind = Kind::kName;
  Occur occur = Occur::kOne;
  std::string name;                 // kName
  std::vector<Particle> children;   // kSeq / kChoice
};

struct ElementDecl {
  enum class Model { kEmpty, kAny, kMixed, kChildren };
  Model model = Model::kAny;
  std::vector<std::string> mixed_names;  // allowed elements in (#PCDATA|...)*
  Particle content;                      // kChildren
};

struct AttributeDecl {
  std::string name;
  bool required = false;
  std::optional<std::string> default_value;
};

struct Dtd {
  std::map<std::string, ElementDecl, std::less<>> elements;
  std::map<std::string, std::vector<AttributeDecl>, std::less<>> attributes;

  [[nodiscard]] const ElementDecl* element(std::string_view name) const;
};

// Parses a sequence of declarations (an internal subset or a standalone .dtd
// text). Throws ParseError on syntax errors.
Dtd parse_dtd(std::string_view text);

struct Diagnostic {
  std::string path;     // "/paper/section[1]/para[0]"
  std::string message;

  bool operator==(const Diagnostic&) const = default;
};

// Validates the element tree against the DTD. Reported violations: undeclared
// elements, children not matching the content model, character data where
// none is allowed, missing required attributes. Elements with no declaration
// inside an ANY parent are reported once at their own position.
std::vector<Diagnostic> validate(const Node& root, const Dtd& dtd);
std::vector<Diagnostic> validate(const Document& doc, const Dtd& dtd);

// The DTD of the paper's research-paper document type (document structure of
// §3: abstract + sections > subsections > subsubsections > paragraphs, with
// titles and inline emphasis).
const Dtd& research_paper_dtd();

}  // namespace mobiweb::xml::dtd
