// Recursive-descent XML parser with line/column error reporting.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "xml/dom.hpp"

namespace mobiweb::xml {

// Raised on any well-formedness violation; carries the 1-based source
// location of the offending character.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, std::size_t line, std::size_t column);

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

struct ParseOptions {
  // Drop comments from the tree (they carry no information content).
  bool keep_comments = true;
  // Drop text nodes that are pure inter-element whitespace.
  bool strip_whitespace_text = false;
  // Maximum element nesting depth. The parser (and the value-semantic DOM it
  // builds) recurses per level, so hostile documents like "<a><a><a>..." must
  // be rejected with a ParseError before they exhaust the stack.
  std::size_t max_depth = 200;
  // Reject byte sequences that are not well-formed UTF-8 (XML documents on
  // the wire are UTF-8 here; mojibake would otherwise silently mis-parse).
  bool require_utf8 = true;
};

// Parses a complete document (optional XML declaration, optional DOCTYPE,
// misc, exactly one root element). Throws ParseError.
Document parse(std::string_view input, const ParseOptions& options = {});

// Parses a bare element fragment (no prolog required). Throws ParseError.
Node parse_fragment(std::string_view input, const ParseOptions& options = {});

}  // namespace mobiweb::xml
