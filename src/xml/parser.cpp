#include "xml/parser.hpp"

#include <cctype>
#include <charconv>

#include "obs/profile.hpp"

namespace mobiweb::xml {

ParseError::ParseError(std::string message, std::size_t line, std::size_t column)
    : std::runtime_error(message + " at line " + std::to_string(line) + ", column " +
                         std::to_string(column)),
      line_(line),
      column_(column) {}

namespace {

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }

class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  Document parse_document() {
    Document doc;
    skip_bom();
    check_utf8();
    parse_declaration(doc);
    // Misc (comments, PIs, whitespace) and an optional DOCTYPE before root.
    for (;;) {
      skip_spaces();
      if (eof()) fail("unexpected end of input before root element");
      if (!looking_at("<")) fail("content outside of root element");
      if (looking_at("<!--")) {
        Node c = parse_comment();
        if (options_.keep_comments) doc.prolog_misc.push_back(std::move(c));
      } else if (looking_at("<?")) {
        doc.prolog_misc.push_back(parse_pi());
      } else if (looking_at("<!DOCTYPE")) {
        parse_doctype(doc);
      } else {
        break;
      }
    }
    doc.root = parse_element();
    // Trailing misc only.
    for (;;) {
      skip_spaces();
      if (eof()) break;
      if (looking_at("<!--")) {
        parse_comment();
      } else if (looking_at("<?")) {
        parse_pi();
      } else {
        fail("content after root element");
      }
    }
    return doc;
  }

  Node parse_root_fragment() {
    skip_bom();
    check_utf8();
    skip_spaces();
    if (looking_at("<?xml")) {
      Document tmp;
      parse_declaration(tmp);
      skip_spaces();
    }
    Node root = parse_element();
    skip_spaces();
    if (!eof()) fail("content after fragment element");
    return root;
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= input_.size(); }

  [[nodiscard]] char peek() const {
    return eof() ? '\0' : input_[pos_];
  }

  [[nodiscard]] bool looking_at(std::string_view prefix) const {
    return input_.substr(pos_).starts_with(prefix);
  }

  char advance() {
    if (eof()) fail("unexpected end of input");
    const char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void expect(std::string_view literal) {
    if (!looking_at(literal)) {
      fail(std::string("expected '") + std::string(literal) + "'");
    }
    for (std::size_t i = 0; i < literal.size(); ++i) advance();
  }

  void skip_spaces() {
    while (!eof() && is_space(peek())) advance();
  }

  void skip_bom() {
    if (input_.substr(pos_).starts_with("\xEF\xBB\xBF")) pos_ += 3;
  }

  // Validates the whole input as UTF-8 once, up front; reports the first bad
  // byte with its source position. O(n), so parsing stays linear overall.
  void check_utf8() {
    if (!options_.require_utf8) return;
    std::size_t line = 1;
    std::size_t column = 1;
    std::size_t i = pos_;
    while (i < input_.size()) {
      const auto b0 = static_cast<unsigned char>(input_[i]);
      std::size_t len = 0;
      unsigned min_code = 0;
      unsigned code = 0;
      if (b0 < 0x80) {
        if (input_[i] == '\n') {
          ++line;
          column = 1;
        } else {
          ++column;
        }
        ++i;
        continue;
      } else if ((b0 & 0xe0) == 0xc0) {
        len = 2;
        min_code = 0x80;
        code = b0 & 0x1f;
      } else if ((b0 & 0xf0) == 0xe0) {
        len = 3;
        min_code = 0x800;
        code = b0 & 0x0f;
      } else if ((b0 & 0xf8) == 0xf0) {
        len = 4;
        min_code = 0x10000;
        code = b0 & 0x07;
      } else {
        throw ParseError("invalid UTF-8 byte", line, column);
      }
      if (i + len > input_.size()) {
        throw ParseError("truncated UTF-8 sequence", line, column);
      }
      for (std::size_t k = 1; k < len; ++k) {
        const auto bk = static_cast<unsigned char>(input_[i + k]);
        if ((bk & 0xc0) != 0x80) {
          throw ParseError("invalid UTF-8 continuation byte", line, column);
        }
        code = (code << 6) | (bk & 0x3f);
      }
      // Overlong forms, surrogate halves and out-of-range code points are all
      // signs of a hostile or mis-encoded document.
      if (code < min_code || code > 0x10ffff ||
          (code >= 0xd800 && code <= 0xdfff)) {
        throw ParseError("invalid UTF-8 code point", line, column);
      }
      i += len;
      ++column;
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, line_, column_);
  }

  std::string parse_name() {
    if (eof() || !is_name_start(peek())) fail("expected a name");
    std::string name;
    name.push_back(advance());
    while (!eof() && is_name_char(peek())) name.push_back(advance());
    return name;
  }

  // Resolves &amp; &lt; &gt; &apos; &quot; &#dd; &#xhh;.
  std::string parse_entity() {
    expect("&");
    std::string entity;
    while (!eof() && peek() != ';') {
      entity.push_back(advance());
      if (entity.size() > 8) fail("entity reference too long");
    }
    expect(";");
    if (entity == "amp") return "&";
    if (entity == "lt") return "<";
    if (entity == "gt") return ">";
    if (entity == "apos") return "'";
    if (entity == "quot") return "\"";
    if (!entity.empty() && entity[0] == '#') {
      unsigned code = 0;
      const char* begin = entity.data() + 1;
      const char* end = entity.data() + entity.size();
      std::from_chars_result res{};
      if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
        res = std::from_chars(begin + 1, end, code, 16);
      } else {
        res = std::from_chars(begin, end, code, 10);
      }
      if (res.ec != std::errc{} || res.ptr != end || code == 0 || code > 0x10ffff) {
        fail("invalid character reference '&" + entity + ";'");
      }
      return encode_utf8(code);
    }
    fail("unknown entity '&" + entity + ";'");
  }

  static std::string encode_utf8(unsigned code) {
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
    return out;
  }

  std::string parse_attribute_value() {
    if (peek() != '"' && peek() != '\'') fail("expected quoted attribute value");
    const char quote = advance();
    std::string value;
    for (;;) {
      if (eof()) fail("unterminated attribute value");
      if (peek() == quote) {
        advance();
        return value;
      }
      if (peek() == '<') fail("'<' not allowed in attribute value");
      if (peek() == '&') {
        value += parse_entity();
      } else {
        value.push_back(advance());
      }
    }
  }

  void parse_declaration(Document& doc) {
    skip_spaces();
    if (!looking_at("<?xml")) return;
    Node pi = parse_pi();
    // Extract version / encoding pseudo-attributes best-effort.
    doc.xml_version = extract_pseudo_attr(pi.text, "version");
    doc.encoding = extract_pseudo_attr(pi.text, "encoding");
  }

  static std::string extract_pseudo_attr(const std::string& data,
                                         std::string_view key) {
    const std::size_t at = data.find(key);
    if (at == std::string::npos) return {};
    std::size_t p = at + key.size();
    while (p < data.size() && (is_space(data[p]) || data[p] == '=')) ++p;
    if (p >= data.size() || (data[p] != '"' && data[p] != '\'')) return {};
    const char quote = data[p++];
    const std::size_t end = data.find(quote, p);
    if (end == std::string::npos) return {};
    return data.substr(p, end - p);
  }

  void parse_doctype(Document& doc) {
    expect("<!DOCTYPE");
    skip_spaces();
    doc.doctype_name = parse_name();
    // Capture the internal subset ("[...]"); skip the external id.
    int bracket_depth = 0;
    for (;;) {
      if (eof()) fail("unterminated DOCTYPE");
      const char c = advance();
      if (c == '[') {
        ++bracket_depth;
        if (bracket_depth == 1) continue;  // do not record the outer '['
      }
      if (c == ']') {
        if (bracket_depth == 0) fail("stray ']' in DOCTYPE");
        --bracket_depth;
        if (bracket_depth == 0) continue;
      }
      if (c == '>' && bracket_depth == 0) return;
      if (bracket_depth > 0) doc.doctype_subset.push_back(c);
    }
  }

  Node parse_comment() {
    expect("<!--");
    Node node;
    node.type = NodeType::kComment;
    for (;;) {
      if (eof()) fail("unterminated comment");
      if (looking_at("-->")) {
        expect("-->");
        return node;
      }
      if (looking_at("--") && !looking_at("-->")) {
        fail("'--' not allowed inside a comment");
      }
      node.text.push_back(advance());
    }
  }

  Node parse_pi() {
    expect("<?");
    Node node;
    node.type = NodeType::kProcessing;
    node.name = parse_name();
    skip_spaces();
    for (;;) {
      if (eof()) fail("unterminated processing instruction");
      if (looking_at("?>")) {
        expect("?>");
        return node;
      }
      node.text.push_back(advance());
    }
  }

  Node parse_cdata() {
    expect("<![CDATA[");
    Node node;
    node.type = NodeType::kCData;
    for (;;) {
      if (eof()) fail("unterminated CDATA section");
      if (looking_at("]]>")) {
        expect("]]>");
        return node;
      }
      node.text.push_back(advance());
    }
  }

  Node parse_element() {
    if (++depth_ > options_.max_depth) {
      fail("maximum element nesting depth exceeded");
    }
    Node element = parse_element_body();
    --depth_;
    return element;
  }

  Node parse_element_body() {
    expect("<");
    Node element;
    element.type = NodeType::kElement;
    element.name = parse_name();

    // Attributes.
    for (;;) {
      const bool had_space = !eof() && is_space(peek());
      skip_spaces();
      if (eof()) fail("unterminated start tag");
      if (looking_at("/>")) {
        expect("/>");
        return element;
      }
      if (peek() == '>') {
        advance();
        break;
      }
      if (!had_space) fail("expected whitespace before attribute");
      Attribute attr;
      attr.name = parse_name();
      skip_spaces();
      expect("=");
      skip_spaces();
      attr.value = parse_attribute_value();
      for (const auto& existing : element.attributes) {
        if (existing.name == attr.name) {
          fail("duplicate attribute '" + attr.name + "'");
        }
      }
      element.attributes.push_back(std::move(attr));
    }

    // Content.
    std::string text;
    auto flush_text = [&] {
      if (text.empty()) return;
      if (options_.strip_whitespace_text) {
        const bool all_space =
            text.find_first_not_of(" \t\r\n") == std::string::npos;
        if (all_space) {
          text.clear();
          return;
        }
      }
      element.children.push_back(make_text(std::move(text)));
      text.clear();
    };

    for (;;) {
      if (eof()) fail("unterminated element '" + element.name + "'");
      if (looking_at("</")) {
        flush_text();
        expect("</");
        const std::string closing = parse_name();
        if (closing != element.name) {
          fail("mismatched end tag: expected </" + element.name + ">, got </" +
               closing + ">");
        }
        skip_spaces();
        expect(">");
        return element;
      }
      if (looking_at("<![CDATA[")) {
        flush_text();
        element.children.push_back(parse_cdata());
      } else if (looking_at("<!--")) {
        flush_text();
        Node c = parse_comment();
        if (options_.keep_comments) element.children.push_back(std::move(c));
      } else if (looking_at("<?")) {
        flush_text();
        element.children.push_back(parse_pi());
      } else if (peek() == '<') {
        flush_text();
        element.children.push_back(parse_element());
      } else if (peek() == '&') {
        text += parse_entity();
      } else {
        text.push_back(advance());
      }
    }
  }

  std::string_view input_;
  ParseOptions options_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
  std::size_t depth_ = 0;
};

}  // namespace

Document parse(std::string_view input, const ParseOptions& options) {
  MOBIWEB_PROFILE_SCOPE("xml.parse");
  Parser parser(input, options);
  return parser.parse_document();
}

Node parse_fragment(std::string_view input, const ParseOptions& options) {
  Parser parser(input, options);
  return parser.parse_root_fragment();
}

}  // namespace mobiweb::xml
