#include "analysis/negbinom.hpp"

#include <cmath>

#include "util/check.hpp"

namespace mobiweb::analysis {

namespace {
void check_args(int m, double alpha) {
  MOBIWEB_CHECK_MSG(m >= 1, "negbinom: m >= 1");
  MOBIWEB_CHECK_MSG(alpha >= 0.0 && alpha < 1.0, "negbinom: alpha in [0,1)");
}
}  // namespace

double negbinom_pmf(int x, int m, double alpha) {
  check_args(m, alpha);
  if (x < m) return 0.0;
  // log C(x-1, m-1) + (x-m) log alpha + m log(1-alpha), via lgamma.
  const double log_choose = std::lgamma(static_cast<double>(x)) -
                            std::lgamma(static_cast<double>(m)) -
                            std::lgamma(static_cast<double>(x - m + 1));
  double log_p = log_choose + static_cast<double>(m) * std::log1p(-alpha);
  if (x > m) {
    if (alpha == 0.0) return 0.0;
    log_p += static_cast<double>(x - m) * std::log(alpha);
  }
  return std::exp(log_p);
}

double negbinom_cdf(int x, int m, double alpha) {
  check_args(m, alpha);
  if (x < m) return 0.0;
  if (alpha == 0.0) return 1.0;
  // Iterate Pr(P = i) from i = m upward with the ratio recurrence.
  double pmf = std::exp(static_cast<double>(m) * std::log1p(-alpha));  // Pr(P=m)
  double cdf = pmf;
  for (int i = m; i < x; ++i) {
    pmf *= alpha * static_cast<double>(i) / static_cast<double>(i + 1 - m);
    cdf += pmf;
  }
  return cdf > 1.0 ? 1.0 : cdf;
}

double expected_packets(int m, double alpha) {
  check_args(m, alpha);
  return static_cast<double>(m) / (1.0 - alpha);
}

int optimal_cooked_packets(int m, double alpha, double success, int max_n) {
  check_args(m, alpha);
  MOBIWEB_CHECK_MSG(success > 0.0 && success < 1.0,
                    "optimal_cooked_packets: success in (0,1)");
  if (alpha == 0.0) return m;
  double pmf = std::exp(static_cast<double>(m) * std::log1p(-alpha));
  double cdf = pmf;
  int n = m;
  while (cdf < success) {
    MOBIWEB_CHECK_MSG(n < max_n, "optimal_cooked_packets: N exceeds max_n");
    pmf *= alpha * static_cast<double>(n) / static_cast<double>(n + 1 - m);
    cdf += pmf;
    ++n;
  }
  return n;
}

double redundancy_ratio(int m, double alpha, double success) {
  return static_cast<double>(optimal_cooked_packets(m, alpha, success)) /
         static_cast<double>(m);
}

}  // namespace mobiweb::analysis
