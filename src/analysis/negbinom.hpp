// Redundancy analysis (paper §4.1).
//
// With per-packet corruption probability α (independent), the number of
// cooked packets P a client must receive before collecting M intact ones
// follows a negative binomial distribution:
//
//   Pr(P = x) = C(x-1, M-1) · α^(x-M) · (1-α)^M,   x >= M
//   E(P) = M / (1 - α)
//
// optimal_cooked_packets solves for the smallest N with Pr(P <= N) >= S,
// "yielding an optimal number of cooked packets"; redundancy_ratio is the
// paper's γ = N/M.
#pragma once

namespace mobiweb::analysis {

// Pr(P = x). Zero for x < m. Requires m >= 1, 0 <= alpha < 1.
double negbinom_pmf(int x, int m, double alpha);

// Pr(P <= x), computed with the stable ratio recurrence
// Pr(x+1) = Pr(x) · α · x / (x+1-M).
double negbinom_cdf(int x, int m, double alpha);

// E(P) = m / (1 - alpha).
double expected_packets(int m, double alpha);

// Smallest N >= m with Pr(P <= N) >= success. Requires 0 < success < 1.
// Throws ContractViolation if N would exceed `max_n` (guards pathological
// alpha/success combinations).
int optimal_cooked_packets(int m, double alpha, double success, int max_n = 1 << 20);

// γ = N/M for the optimal N.
double redundancy_ratio(int m, double alpha, double success);

}  // namespace mobiweb::analysis
