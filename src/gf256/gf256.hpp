// Arithmetic over GF(2^8) = GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1).
//
// This is the finite field underlying the fault-tolerant encoding (paper §4.1,
// built on Rabin's Information Dispersal Algorithm). Multiplication and
// division use log/antilog tables generated at static-init time from the
// primitive element 0x02 of the AES-like polynomial 0x11d.
//
// The row kernels (`mul_add_row` / `mul_row`) — the inner loop of every
// encode/decode — come in several implementations selected at runtime via
// `Kernel`: the original scalar log/exp loop, a per-coefficient 256-entry
// multiplication table, a split-nibble (two 16-entry tables) form, and a SIMD
// split-nibble form using pshufb (SSSE3) or tbl (NEON) where the hardware
// supports it. All kernels produce byte-identical output.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/check.hpp"

namespace mobiweb::gf {

using Elem = std::uint8_t;

namespace detail {

struct Tables {
  // exp_[i] = g^i for i in [0, 510) — doubled so mul can skip a mod-255.
  std::array<Elem, 510> exp_{};
  // log_[x] = i such that g^i == x, for x != 0. log_[0] unused.
  std::array<std::uint16_t, 256> log_{};

  Tables() {
    constexpr std::uint16_t kPoly = 0x11d;  // x^8 + x^4 + x^3 + x^2 + 1
    std::uint16_t x = 1;
    for (std::uint16_t i = 0; i < 255; ++i) {
      exp_[i] = static_cast<Elem>(x);
      log_[x] = i;
      x <<= 1;
      if (x & 0x100) x ^= kPoly;
    }
    for (std::uint16_t i = 255; i < 510; ++i) {
      exp_[i] = exp_[i - 255];
    }
  }
};

const Tables& tables();

}  // namespace detail

// Addition and subtraction coincide: bitwise xor.
constexpr Elem add(Elem a, Elem b) { return a ^ b; }
constexpr Elem sub(Elem a, Elem b) { return a ^ b; }

inline Elem mul(Elem a, Elem b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = detail::tables();
  return t.exp_[t.log_[a] + t.log_[b]];
}

// Multiplicative inverse; throws ContractViolation for 0.
inline Elem inv(Elem a) {
  MOBIWEB_CHECK_MSG(a != 0, "gf256: inverse of zero");
  const auto& t = detail::tables();
  return t.exp_[255 - t.log_[a]];
}

inline Elem div(Elem a, Elem b) {
  MOBIWEB_CHECK_MSG(b != 0, "gf256: division by zero");
  if (a == 0) return 0;
  const auto& t = detail::tables();
  return t.exp_[t.log_[a] + 255 - t.log_[b]];
}

// a^e with e >= 0 (0^0 defined as 1).
Elem pow(Elem a, unsigned e);

// Row-kernel implementations. kAuto resolves to the fastest kernel available
// on this CPU (kSimd where SSSE3/NEON is present, else kMulTable).
enum class Kernel : std::uint8_t {
  kScalar,       // branch-per-byte log/exp lookups (the original seed kernel)
  kMulTable,     // lazily-built 256-entry per-coefficient table, 8x unrolled
  kSplitNibble,  // two 16-entry low/high nibble tables, autovectorizable
  kSimd,         // split-nibble via pshufb/tbl; requires kernel_available()
  kAuto,
};

// Short stable name: "scalar", "multable", "splitnibble", "simd", "auto".
const char* kernel_name(Kernel k);

// True when `k` can execute on this CPU (kSimd needs SSSE3 or NEON; the
// portable kernels and kAuto are always available).
bool kernel_available(Kernel k);

// The concrete kernel `k` dispatches to (resolves kAuto; never returns kAuto).
Kernel resolve_kernel(Kernel k);

// Process-wide kernel used by the two-argument row ops below. Initialised
// from the MOBIWEB_GF_KERNEL environment variable when set (one of the
// kernel_name() strings), else kAuto. set_kernel is thread-safe.
Kernel active_kernel();
void set_kernel(Kernel k);

// 256-byte table t with t[x] = c * x, lazily built and cached per coefficient.
const Elem* mul_table(Elem c);

// out[i] ^= c * in[i] over a row of bytes — the inner loop of encode/decode.
void mul_add_row(Elem* out, const Elem* in, Elem c, std::size_t n);

// out[i] = c * in[i].
void mul_row(Elem* out, const Elem* in, Elem c, std::size_t n);

// Same row ops with an explicit kernel, so tests and benchmarks can force a
// path. `k` must satisfy kernel_available(k).
void mul_add_row(Elem* out, const Elem* in, Elem c, std::size_t n, Kernel k);
void mul_row(Elem* out, const Elem* in, Elem c, std::size_t n, Kernel k);

}  // namespace mobiweb::gf
