#include "gf256/gf256.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string_view>

#include "obs/profile.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define MOBIWEB_GF_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define MOBIWEB_GF_NEON 1
#include <arm_neon.h>
#endif

namespace mobiweb::gf {

namespace detail {
const Tables& tables() {
  static const Tables t;
  return t;
}
}  // namespace detail

Elem pow(Elem a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = detail::tables();
  // Reduce the exponent first: the multiplicative group has order 255, and
  // log_[a] * e overflows 32 bits for e beyond ~16.9M.
  const unsigned l = (static_cast<unsigned>(t.log_[a]) * (e % 255u)) % 255u;
  return t.exp_[l];
}

namespace {

// Per-coefficient lookup tables for the fast kernels, built lazily: the
// simulator only ever touches the coefficients of the generator shapes in
// use, so materialising all 256 rows up front would be wasted work.
//
//   full[c][x]          = c * x                     (kMulTable)
//   nib[c].lo[x & 0xf]  = c * x for the low nibble  (kSplitNibble / kSimd)
//   nib[c].hi[x >> 4]   = c * (x << 4)
//
// c*x = lo[x & 0xf] ^ hi[x >> 4] by distributivity over GF(2) addition.
struct alignas(16) NibbleTables {
  Elem lo[16];
  Elem hi[16];
};

struct CoeffTables {
  std::array<std::array<Elem, 256>, 256> full;
  std::array<NibbleTables, 256> nib;
  std::array<std::once_flag, 256> once;

  void build(Elem c) {
    call_once(once[c], [this, c] {
      auto& row = full[c];
      for (unsigned x = 0; x < 256; ++x) {
        row[x] = mul(c, static_cast<Elem>(x));
      }
      for (unsigned x = 0; x < 16; ++x) {
        nib[c].lo[x] = row[x];
        nib[c].hi[x] = row[x << 4];
      }
    });
  }
};

CoeffTables& coeff_tables() {
  static CoeffTables t;
  return t;
}

const NibbleTables& nibble_tables(Elem c) {
  auto& t = coeff_tables();
  t.build(c);
  return t.nib[c];
}

// ---- scalar kernels ----

void mul_add_row_scalar(Elem* out, const Elem* in, Elem c, std::size_t n) {
  const auto& t = detail::tables();
  const std::uint16_t lc = t.log_[c];
  for (std::size_t i = 0; i < n; ++i) {
    const Elem x = in[i];
    if (x != 0) {
      out[i] ^= t.exp_[lc + t.log_[x]];
    }
  }
}

void mul_row_scalar(Elem* out, const Elem* in, Elem c, std::size_t n) {
  const auto& t = detail::tables();
  const std::uint16_t lc = t.log_[c];
  for (std::size_t i = 0; i < n; ++i) {
    const Elem x = in[i];
    out[i] = (x == 0) ? 0 : t.exp_[lc + t.log_[x]];
  }
}

// ---- per-coefficient full-table kernels, 8x unrolled ----

void mul_add_row_table(Elem* out, const Elem* in, Elem c, std::size_t n) {
  const Elem* t = mul_table(c);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    out[i + 0] ^= t[in[i + 0]];
    out[i + 1] ^= t[in[i + 1]];
    out[i + 2] ^= t[in[i + 2]];
    out[i + 3] ^= t[in[i + 3]];
    out[i + 4] ^= t[in[i + 4]];
    out[i + 5] ^= t[in[i + 5]];
    out[i + 6] ^= t[in[i + 6]];
    out[i + 7] ^= t[in[i + 7]];
  }
  for (; i < n; ++i) out[i] ^= t[in[i]];
}

void mul_row_table(Elem* out, const Elem* in, Elem c, std::size_t n) {
  const Elem* t = mul_table(c);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    out[i + 0] = t[in[i + 0]];
    out[i + 1] = t[in[i + 1]];
    out[i + 2] = t[in[i + 2]];
    out[i + 3] = t[in[i + 3]];
    out[i + 4] = t[in[i + 4]];
    out[i + 5] = t[in[i + 5]];
    out[i + 6] = t[in[i + 6]];
    out[i + 7] = t[in[i + 7]];
  }
  for (; i < n; ++i) out[i] = t[in[i]];
}

// ---- split-nibble kernels (portable; the loop body is branch-free and
// narrow enough for the compiler to autovectorize) ----

void mul_add_row_nibble(Elem* out, const Elem* in, Elem c, std::size_t n) {
  const NibbleTables& t = nibble_tables(c);
  for (std::size_t i = 0; i < n; ++i) {
    const Elem x = in[i];
    out[i] ^= static_cast<Elem>(t.lo[x & 0x0f] ^ t.hi[x >> 4]);
  }
}

void mul_row_nibble(Elem* out, const Elem* in, Elem c, std::size_t n) {
  const NibbleTables& t = nibble_tables(c);
  for (std::size_t i = 0; i < n; ++i) {
    const Elem x = in[i];
    out[i] = static_cast<Elem>(t.lo[x & 0x0f] ^ t.hi[x >> 4]);
  }
}

// ---- SIMD split-nibble kernels ----

#if defined(MOBIWEB_GF_X86)

bool simd_supported() { return __builtin_cpu_supports("ssse3") != 0; }

__attribute__((target("ssse3"))) void mul_add_row_simd(Elem* out, const Elem* in,
                                                       Elem c, std::size_t n) {
  const NibbleTables& t = nibble_tables(c);
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(x, mask));
    const __m128i ph =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(x, 4), mask));
    const __m128i prod = _mm_xor_si128(pl, ph);
    __m128i* o = reinterpret_cast<__m128i*>(out + i);
    _mm_storeu_si128(o, _mm_xor_si128(_mm_loadu_si128(o), prod));
  }
  for (; i < n; ++i) {
    const Elem x = in[i];
    out[i] ^= static_cast<Elem>(t.lo[x & 0x0f] ^ t.hi[x >> 4]);
  }
}

__attribute__((target("ssse3"))) void mul_row_simd(Elem* out, const Elem* in,
                                                   Elem c, std::size_t n) {
  const NibbleTables& t = nibble_tables(c);
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(x, mask));
    const __m128i ph =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(x, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_xor_si128(pl, ph));
  }
  for (; i < n; ++i) {
    const Elem x = in[i];
    out[i] = static_cast<Elem>(t.lo[x & 0x0f] ^ t.hi[x >> 4]);
  }
}

#elif defined(MOBIWEB_GF_NEON)

bool simd_supported() { return true; }  // NEON is baseline on aarch64

void mul_add_row_simd(Elem* out, const Elem* in, Elem c, std::size_t n) {
  const NibbleTables& t = nibble_tables(c);
  const uint8x16_t lo = vld1q_u8(t.lo);
  const uint8x16_t hi = vld1q_u8(t.hi);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t x = vld1q_u8(in + i);
    const uint8x16_t pl = vqtbl1q_u8(lo, vandq_u8(x, mask));
    const uint8x16_t ph = vqtbl1q_u8(hi, vshrq_n_u8(x, 4));
    vst1q_u8(out + i, veorq_u8(vld1q_u8(out + i), veorq_u8(pl, ph)));
  }
  for (; i < n; ++i) {
    const Elem x = in[i];
    out[i] ^= static_cast<Elem>(t.lo[x & 0x0f] ^ t.hi[x >> 4]);
  }
}

void mul_row_simd(Elem* out, const Elem* in, Elem c, std::size_t n) {
  const NibbleTables& t = nibble_tables(c);
  const uint8x16_t lo = vld1q_u8(t.lo);
  const uint8x16_t hi = vld1q_u8(t.hi);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t x = vld1q_u8(in + i);
    const uint8x16_t pl = vqtbl1q_u8(lo, vandq_u8(x, mask));
    const uint8x16_t ph = vqtbl1q_u8(hi, vshrq_n_u8(x, 4));
    vst1q_u8(out + i, veorq_u8(pl, ph));
  }
  for (; i < n; ++i) {
    const Elem x = in[i];
    out[i] = static_cast<Elem>(t.lo[x & 0x0f] ^ t.hi[x >> 4]);
  }
}

#else

bool simd_supported() { return false; }

void mul_add_row_simd(Elem* out, const Elem* in, Elem c, std::size_t n) {
  mul_add_row_nibble(out, in, c, n);
}

void mul_row_simd(Elem* out, const Elem* in, Elem c, std::size_t n) {
  mul_row_nibble(out, in, c, n);
}

#endif

// ---- kernel selection ----

Kernel parse_kernel_env() {
  const char* v = std::getenv("MOBIWEB_GF_KERNEL");
  if (v == nullptr || v[0] == '\0') return Kernel::kAuto;
  const std::string_view s(v);
  for (Kernel k : {Kernel::kScalar, Kernel::kMulTable, Kernel::kSplitNibble,
                   Kernel::kSimd, Kernel::kAuto}) {
    if (s == kernel_name(k) && kernel_available(k)) return k;
  }
  return Kernel::kAuto;  // unknown or unavailable names fall back silently
}

std::atomic<Kernel>& kernel_state() {
  static std::atomic<Kernel> state{parse_kernel_env()};
  return state;
}

}  // namespace

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kScalar: return "scalar";
    case Kernel::kMulTable: return "multable";
    case Kernel::kSplitNibble: return "splitnibble";
    case Kernel::kSimd: return "simd";
    case Kernel::kAuto: return "auto";
  }
  return "unknown";
}

bool kernel_available(Kernel k) {
  return k != Kernel::kSimd || simd_supported();
}

Kernel resolve_kernel(Kernel k) {
  if (k != Kernel::kAuto) return k;
  return simd_supported() ? Kernel::kSimd : Kernel::kMulTable;
}

Kernel active_kernel() { return kernel_state().load(std::memory_order_relaxed); }

void set_kernel(Kernel k) {
  MOBIWEB_CHECK_MSG(kernel_available(k), "set_kernel: kernel not supported on this CPU");
  kernel_state().store(k, std::memory_order_relaxed);
}

const Elem* mul_table(Elem c) {
  auto& t = coeff_tables();
  t.build(c);
  return t.full[c].data();
}

void mul_add_row(Elem* out, const Elem* in, Elem c, std::size_t n, Kernel k) {
  // The profiler's detached cost here is one atomic load + branch per row —
  // the same budget as the nullptr trace sinks. Attached, leaf scopes this
  // short are dominated by the two clock reads; the table still ranks the
  // row kernels as the hot spot correctly, just with inflated self time.
  MOBIWEB_PROFILE_SCOPE("gf.mul_add_row");
  if (c == 0 || n == 0) return;
  if (c == 1) {
    // Identity coefficient — common in systematic decodes where clear-text
    // packets map straight through. Plain xor in every kernel.
    for (std::size_t i = 0; i < n; ++i) out[i] ^= in[i];
    return;
  }
  switch (resolve_kernel(k)) {
    case Kernel::kScalar: mul_add_row_scalar(out, in, c, n); break;
    case Kernel::kMulTable: mul_add_row_table(out, in, c, n); break;
    case Kernel::kSplitNibble: mul_add_row_nibble(out, in, c, n); break;
    default: mul_add_row_simd(out, in, c, n); break;
  }
}

void mul_row(Elem* out, const Elem* in, Elem c, std::size_t n, Kernel k) {
  MOBIWEB_PROFILE_SCOPE("gf.mul_row");
  if (n == 0) return;
  if (c == 0) {
    std::memset(out, 0, n);
    return;
  }
  if (c == 1) {
    std::memmove(out, in, n);
    return;
  }
  switch (resolve_kernel(k)) {
    case Kernel::kScalar: mul_row_scalar(out, in, c, n); break;
    case Kernel::kMulTable: mul_row_table(out, in, c, n); break;
    case Kernel::kSplitNibble: mul_row_nibble(out, in, c, n); break;
    default: mul_row_simd(out, in, c, n); break;
  }
}

void mul_add_row(Elem* out, const Elem* in, Elem c, std::size_t n) {
  mul_add_row(out, in, c, n, active_kernel());
}

void mul_row(Elem* out, const Elem* in, Elem c, std::size_t n) {
  mul_row(out, in, c, n, active_kernel());
}

}  // namespace mobiweb::gf
