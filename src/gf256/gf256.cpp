#include "gf256/gf256.hpp"

namespace mobiweb::gf {

namespace detail {
const Tables& tables() {
  static const Tables t;
  return t;
}
}  // namespace detail

Elem pow(Elem a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = detail::tables();
  const unsigned l = (static_cast<unsigned>(t.log_[a]) * e) % 255u;
  return t.exp_[l];
}

void mul_add_row(Elem* out, const Elem* in, Elem c, std::size_t n) {
  if (c == 0) return;
  const auto& t = detail::tables();
  const std::uint16_t lc = t.log_[c];
  for (std::size_t i = 0; i < n; ++i) {
    const Elem x = in[i];
    if (x != 0) {
      out[i] ^= t.exp_[lc + t.log_[x]];
    }
  }
}

void mul_row(Elem* out, const Elem* in, Elem c, std::size_t n) {
  if (c == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const auto& t = detail::tables();
  const std::uint16_t lc = t.log_[c];
  for (std::size_t i = 0; i < n; ++i) {
    const Elem x = in[i];
    out[i] = (x == 0) ? 0 : t.exp_[lc + t.log_[x]];
  }
}

}  // namespace mobiweb::gf
