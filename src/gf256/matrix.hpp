// Dense matrices over GF(2^8): construction, multiplication, Gaussian
// elimination (inverse / solve), and the Vandermonde builders used by the
// systematic information-dispersal code.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gf256/gf256.hpp"

namespace mobiweb::gf {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  Elem& at(std::size_t r, std::size_t c);
  [[nodiscard]] Elem at(std::size_t r, std::size_t c) const;

  [[nodiscard]] const Elem* row(std::size_t r) const;
  Elem* row(std::size_t r);

  static Matrix identity(std::size_t n);

  // this * other; dimension mismatch throws ContractViolation.
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  // Gauss-Jordan inverse. Throws ContractViolation if not square; returns an
  // empty Matrix if singular (callers distinguish "bad input" from "bad data").
  [[nodiscard]] Matrix inverse() const;

  // Extracts the sub-matrix formed by the given row indices (in order).
  [[nodiscard]] Matrix select_rows(const std::vector<std::size_t>& indices) const;

  [[nodiscard]] bool is_identity() const;

  [[nodiscard]] bool operator==(const Matrix& other) const = default;

  // Debug rendering ("a1 b2 | 03 ..."-style hex grid).
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Elem> data_;
};

// N x M Vandermonde matrix: row i = [1, x_i, x_i^2, ..., x_i^(M-1)] with
// x_i = i + 1 (nonzero and pairwise distinct, so every M-row subset is
// invertible). Requires N <= 255.
Matrix vandermonde(std::size_t n, std::size_t m);

// Systematic generator: vandermonde(n, m) right-multiplied by the inverse of
// its top m x m block, so the first m rows form the identity while any m rows
// remain invertible. Requires n >= m.
Matrix systematic_vandermonde(std::size_t n, std::size_t m);

}  // namespace mobiweb::gf
