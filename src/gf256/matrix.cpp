#include "gf256/matrix.hpp"

#include <sstream>
#include <utility>

#include "obs/profile.hpp"

namespace mobiweb::gf {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

Elem& Matrix::at(std::size_t r, std::size_t c) {
  MOBIWEB_CHECK_MSG(r < rows_ && c < cols_, "Matrix::at out of range");
  return data_[r * cols_ + c];
}

Elem Matrix::at(std::size_t r, std::size_t c) const {
  MOBIWEB_CHECK_MSG(r < rows_ && c < cols_, "Matrix::at out of range");
  return data_[r * cols_ + c];
}

const Elem* Matrix::row(std::size_t r) const {
  MOBIWEB_CHECK_MSG(r < rows_, "Matrix::row out of range");
  return data_.data() + r * cols_;
}

Elem* Matrix::row(std::size_t r) {
  MOBIWEB_CHECK_MSG(r < rows_, "Matrix::row out of range");
  return data_.data() + r * cols_;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::multiply(const Matrix& other) const {
  MOBIWEB_CHECK_MSG(cols_ == other.rows_, "Matrix::multiply dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const Elem* lhs = row(i);
    Elem* dst = out.row(i);
    for (std::size_t k = 0; k < cols_; ++k) {
      mul_add_row(dst, other.row(k), lhs[k], other.cols_);
    }
  }
  return out;
}

Matrix Matrix::inverse() const {
  MOBIWEB_PROFILE_SCOPE("gf.invert");
  MOBIWEB_CHECK_MSG(rows_ == cols_, "Matrix::inverse requires a square matrix");
  const std::size_t n = rows_;
  Matrix work = *this;
  Matrix inv = identity(n);

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return Matrix{};  // singular
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work.at(pivot, c), work.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }
    // Normalize the pivot row.
    const Elem p = work.at(col, col);
    if (p != 1) {
      const Elem pinv = gf::inv(p);
      mul_row(work.row(col), work.row(col), pinv, n);
      mul_row(inv.row(col), inv.row(col), pinv, n);
    }
    // Eliminate the column from every other row.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const Elem factor = work.at(r, col);
      if (factor != 0) {
        mul_add_row(work.row(r), work.row(col), factor, n);
        mul_add_row(inv.row(r), inv.row(col), factor, n);
      }
    }
  }
  return inv;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    MOBIWEB_CHECK_MSG(indices[i] < rows_, "Matrix::select_rows index out of range");
    const Elem* src = row(indices[i]);
    Elem* dst = out.row(i);
    for (std::size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

bool Matrix::is_identity() const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (at(r, c) != (r == c ? 1 : 0)) return false;
    }
  }
  return true;
}

std::string Matrix::to_string() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const Elem v = at(r, c);
      if (c > 0) os << ' ';
      os << kDigits[v >> 4] << kDigits[v & 0x0f];
    }
    os << '\n';
  }
  return os.str();
}

Matrix vandermonde(std::size_t n, std::size_t m) {
  MOBIWEB_CHECK_MSG(n >= 1 && m >= 1, "vandermonde: dimensions must be positive");
  MOBIWEB_CHECK_MSG(n <= 255, "vandermonde: at most 255 rows over GF(2^8)");
  Matrix v(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    const Elem x = static_cast<Elem>(i + 1);
    for (std::size_t j = 0; j < m; ++j) {
      v.at(i, j) = gf::pow(x, static_cast<unsigned>(j));
    }
  }
  return v;
}

Matrix systematic_vandermonde(std::size_t n, std::size_t m) {
  MOBIWEB_CHECK_MSG(n >= m, "systematic_vandermonde: need n >= m");
  Matrix v = vandermonde(n, m);
  std::vector<std::size_t> top(m);
  for (std::size_t i = 0; i < m; ++i) top[i] = i;
  Matrix top_inv = v.select_rows(top).inverse();
  MOBIWEB_CHECK_MSG(!top_inv.empty(), "systematic_vandermonde: top block singular");
  return v.multiply(top_inv);
}

}  // namespace mobiweb::gf
