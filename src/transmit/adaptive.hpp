// Adaptive redundancy-ratio controller (paper §4.2): "the value of γ could be
// defined as an adaptive function of the observed summarized value of α,
// using perhaps a kind of EWMA measure."
//
// The server observes per-document corruption rates (reported by the client
// with its retransmission/completion feedback), smooths them with an EWMA,
// and picks γ as the optimal N/M for the estimated α at the configured
// success target.
#pragma once

#include "util/ewma.hpp"

namespace mobiweb::transmit {

struct AdaptiveGammaConfig {
  double initial_gamma = 1.5;   // used until the first observation
  double target_success = 0.95; // the paper's S
  double ewma_alpha = 0.25;     // smoothing factor
  double max_gamma = 4.0;       // safety clamp
};

class AdaptiveGamma {
 public:
  explicit AdaptiveGamma(AdaptiveGammaConfig config = {});

  // Records an observed corruption rate (corrupted / sent) for one transfer.
  // The report crosses the lossy feedback channel, so degenerate values are
  // tolerated rather than rejected: NaN is ignored, anything else is clamped
  // into [0, 0.99] before feeding the EWMA.
  void observe(double corruption_rate);

  // γ to use for the next document of `m` raw packets.
  [[nodiscard]] double gamma(int m) const;

  [[nodiscard]] double estimated_alpha() const { return estimate_.value_or(-1.0); }
  [[nodiscard]] bool has_estimate() const { return estimate_.initialized(); }
  [[nodiscard]] const AdaptiveGammaConfig& config() const { return config_; }

 private:
  AdaptiveGammaConfig config_;
  Ewma estimate_;
};

}  // namespace mobiweb::transmit
