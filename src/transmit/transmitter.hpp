// Server side of fault-tolerant multi-resolution transmission (§4.2): the
// prototype's "Document Transmitter". Takes a linearized (ranked) document,
// cuts it into M raw packets, expands them to N = ⌈γ·M⌉ cooked packets with
// the systematic IDA code, and frames each cooked packet for the wire.
#pragma once

#include <cstdint>
#include <vector>

#include "doc/linear.hpp"
#include "ida/ida.hpp"
#include "packet/packet.hpp"
#include "util/bytes.hpp"

namespace mobiweb::transmit {

struct TransmitterConfig {
  std::size_t packet_size = 256;  // s_p, paper Table 2
  double gamma = 1.5;             // redundancy ratio γ = N/M
  std::uint16_t doc_id = 1;
};

class DocumentTransmitter {
 public:
  // The document payload must be non-empty and split into at most 255 raw
  // packets (GF(2^8) limit); N is clamped to 255 as well.
  DocumentTransmitter(doc::LinearDocument document, TransmitterConfig config);

  [[nodiscard]] std::size_t m() const { return m_; }
  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t packet_size() const { return config_.packet_size; }
  [[nodiscard]] std::size_t payload_size() const { return document_.payload.size(); }
  [[nodiscard]] std::uint16_t doc_id() const { return config_.doc_id; }
  [[nodiscard]] const doc::LinearDocument& document() const { return document_; }

  // Wire frame of cooked packet `index` (header + payload + CRC). Frames are
  // encoded once; retransmission rounds resend the same frames.
  [[nodiscard]] const Bytes& frame(std::size_t index) const;
  [[nodiscard]] const std::vector<Bytes>& frames() const { return frames_; }

 private:
  doc::LinearDocument document_;
  TransmitterConfig config_;
  std::size_t m_ = 0;
  std::size_t n_ = 0;
  std::vector<Bytes> frames_;
};

// N from (M, γ): ⌈γ·M⌉ clamped into [M, 255].
std::size_t cooked_count(std::size_t m, double gamma);

}  // namespace mobiweb::transmit
