#include "transmit/session.hpp"

#include "obs/profile.hpp"
#include "util/check.hpp"

namespace mobiweb::transmit {

TransferSession::TransferSession(const DocumentTransmitter& transmitter,
                                 ClientReceiver& receiver,
                                 channel::WirelessChannel& channel,
                                 SessionConfig config)
    : transmitter_(&transmitter), receiver_(&receiver), channel_(&channel),
      config_(config) {
  MOBIWEB_CHECK_MSG(config_.max_rounds >= 1, "TransferSession: max_rounds >= 1");
}

const char* status_name(SessionStatus s) {
  switch (s) {
    case SessionStatus::kCompleted: return "completed";
    case SessionStatus::kAbortedIrrelevant: return "aborted_irrelevant";
    case SessionStatus::kDegraded: return "degraded";
    case SessionStatus::kGaveUp: return "gave_up";
  }
  return "unknown";
}

SessionResult TransferSession::run() {
  MOBIWEB_PROFILE_SCOPE("session.transfer");
  SessionResult result;
  const double start = channel_->now();
  // Termination is measured at the client: the arrival time of the last
  // frame, which (unlike channel_->now(), the depart clock) includes the
  // configured propagation delay.
  double last_arrival = start;
  const bool relevance_check = config_.relevance_threshold >= 0.0;
  obs::SessionTrace* trace = config_.trace;
  if (trace != nullptr) {
    receiver_->set_trace(trace);
    trace->session_start(start);
  }

  for (int round = 1; round <= config_.max_rounds; ++round) {
    result.rounds = round;
    if (trace != nullptr) trace->round_start(round, channel_->now());
    for (std::size_t i = 0; i < transmitter_->n(); ++i) {
      channel::WirelessChannel::Delivery d = channel_->send(
          ByteSpan(transmitter_->frame(i)));
      ++result.frames_sent;
      if (trace != nullptr) trace->frame_sent(static_cast<long>(i), d.arrive_time);
      if (d.lost) {
        // Link outage: the frame never reached the client; only the airtime
        // passed. The client's clock still moved, but nothing arrived.
        if (trace != nullptr) trace->frame_lost(d.arrive_time);
        continue;
      }
      last_arrival = d.arrive_time;
      receiver_->on_frame(ByteSpan(d.frame), d.arrive_time);

      // Condition 1 before condition 3: a document whose decoder completes on
      // this very frame (content jumps to the total) is a completed download,
      // not an irrelevance abort, even when the jump crosses the threshold.
      if (receiver_->complete()) {
        result.status = SessionStatus::kCompleted;
        result.completed = true;
        result.content_received = receiver_->content_received();
        result.response_time = last_arrival - start;
        if (trace != nullptr) {
          trace->decode_complete(last_arrival);
          trace->session_end(last_arrival, result.content_received);
        }
        return result;
      }
      if (relevance_check &&
          receiver_->content_received() >= config_.relevance_threshold) {
        // Condition 3: the user hits "stop" — enough content to judge.
        result.status = SessionStatus::kAbortedIrrelevant;
        result.aborted_irrelevant = true;
        result.content_received = receiver_->content_received();
        result.response_time = last_arrival - start;
        if (trace != nullptr) {
          trace->abort_irrelevant(last_arrival, result.content_received);
          trace->session_end(last_arrival, result.content_received);
        }
        return result;
      }
    }
    // Condition 2 reached without reconstruction: stalled round.
    if (trace != nullptr) trace->round_end(channel_->now());
    if (round == config_.max_rounds) break;  // giving up: no further request
    receiver_->on_round_end();
    if (config_.request_delay_s > 0.0) channel_->advance(config_.request_delay_s);
    if (trace != nullptr) trace->retransmit_request(channel_->now());
  }

  // Gave up after max_rounds (pathological channel). `result.rounds` is the
  // loop counter — the rounds actually transmitted — and the receiver's state
  // is reported as it stood when the final round closed (the round-end cache
  // flush that a NoCaching reload would do must not erase what the user saw).
  result.status = SessionStatus::kGaveUp;
  result.content_received = receiver_->content_received();
  result.response_time = last_arrival - start;
  if (trace != nullptr) {
    trace->give_up(last_arrival);
    trace->session_end(last_arrival, result.content_received);
  }
  return result;
}

}  // namespace mobiweb::transmit
