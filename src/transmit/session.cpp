#include "transmit/session.hpp"

#include "util/check.hpp"

namespace mobiweb::transmit {

TransferSession::TransferSession(const DocumentTransmitter& transmitter,
                                 ClientReceiver& receiver,
                                 channel::WirelessChannel& channel,
                                 SessionConfig config)
    : transmitter_(&transmitter), receiver_(&receiver), channel_(&channel),
      config_(config) {
  MOBIWEB_CHECK_MSG(config_.max_rounds >= 1, "TransferSession: max_rounds >= 1");
}

SessionResult TransferSession::run() {
  SessionResult result;
  const double start = channel_->now();
  const bool relevance_check = config_.relevance_threshold >= 0.0;

  for (result.rounds = 1; result.rounds <= config_.max_rounds; ++result.rounds) {
    for (std::size_t i = 0; i < transmitter_->n(); ++i) {
      channel::WirelessChannel::Delivery d = channel_->send(
          ByteSpan(transmitter_->frame(i)));
      ++result.frames_sent;
      receiver_->on_frame(ByteSpan(d.frame));

      if (relevance_check &&
          receiver_->content_received() >= config_.relevance_threshold) {
        // Condition 3: the user hits "stop" — enough content to judge.
        result.aborted_irrelevant = true;
        result.completed = receiver_->complete();
        result.content_received = receiver_->content_received();
        result.response_time = channel_->now() - start;
        return result;
      }
      if (receiver_->complete()) {
        // Condition 1: M intact cooked packets — reconstruct and stop.
        result.completed = true;
        result.content_received = receiver_->content_received();
        result.response_time = channel_->now() - start;
        return result;
      }
    }
    // Condition 2 reached without reconstruction: stalled round.
    receiver_->on_round_end();
    if (config_.request_delay_s > 0.0) channel_->advance(config_.request_delay_s);
  }

  // Gave up after max_rounds (pathological channel).
  result.rounds = config_.max_rounds;
  result.completed = receiver_->complete();
  result.content_received = receiver_->content_received();
  result.response_time = channel_->now() - start;
  return result;
}

}  // namespace mobiweb::transmit
