#include "transmit/resilient.hpp"

#include <algorithm>

#include "obs/flight.hpp"
#include "obs/profile.hpp"
#include "util/check.hpp"

namespace mobiweb::transmit {

ResilientSession::ResilientSession(const DocumentTransmitter& transmitter,
                                   ClientReceiver& receiver,
                                   channel::WirelessChannel& channel,
                                   ResilientConfig config)
    : transmitter_(&transmitter), receiver_(&receiver), channel_(&channel),
      config_(config), jitter_rng_(config.jitter_seed) {
  const RetryPolicy& rp = config_.retry;
  MOBIWEB_CHECK_MSG(config_.max_rounds >= 1, "ResilientSession: max_rounds >= 1");
  MOBIWEB_CHECK_MSG(rp.retry_budget >= 1, "ResilientSession: retry_budget >= 1");
  MOBIWEB_CHECK_MSG(rp.initial_timeout_s >= 0.0,
                    "ResilientSession: initial_timeout_s >= 0");
  MOBIWEB_CHECK_MSG(rp.backoff_multiplier >= 1.0,
                    "ResilientSession: backoff_multiplier >= 1");
  MOBIWEB_CHECK_MSG(rp.max_backoff_s >= rp.initial_timeout_s,
                    "ResilientSession: max_backoff_s >= initial_timeout_s");
  MOBIWEB_CHECK_MSG(rp.jitter >= 0.0, "ResilientSession: jitter >= 0");
}

ResilientResult ResilientSession::run() {
  MOBIWEB_PROFILE_SCOPE("session.resilient");
  ResilientResult out;
  SessionResult& result = out.session;
  const double start = channel_->now();
  double last_arrival = start;
  const bool relevance_check = config_.relevance_threshold >= 0.0;
  const RetryPolicy& rp = config_.retry;
  obs::SessionTrace* trace = config_.trace;
  // The flight recorder taps the event stream through a SessionTrace: the
  // caller's trace when one is supplied, otherwise a session-local scratch
  // trace that never captures (events flow straight into the ring).
  obs::SessionTrace scratch;
  obs::FlightRecorder* prev_flight = nullptr;
  if (config_.flight != nullptr) {
    if (trace == nullptr) trace = &scratch;
    prev_flight = trace->flight();
    trace->set_flight(config_.flight);
  }
  if (trace != nullptr) {
    receiver_->set_trace(trace);
    trace->session_start(start);
  }

  double backoff = rp.initial_timeout_s;

  const auto deadline_exceeded = [&] {
    return rp.deadline_s >= 0.0 && channel_->now() - start >= rp.deadline_s;
  };
  // One client wait: current backoff stretched by the jitter draw, advancing
  // the channel clock (nothing is on the air while the client holds off).
  const auto wait_one_backoff = [&] {
    const double wait =
        backoff * (1.0 + rp.jitter * jitter_rng_.next_double());
    if (wait > 0.0) channel_->advance(wait);
    out.backoff_total_s += wait;
    if (trace != nullptr) trace->backoff(channel_->now(), wait);
    backoff = std::min(backoff * rp.backoff_multiplier, rp.max_backoff_s);
  };
  const auto finish = [&](SessionStatus status) -> ResilientResult {
    result.status = status;
    result.completed = status == SessionStatus::kCompleted;
    result.aborted_irrelevant = status == SessionStatus::kAbortedIrrelevant;
    result.content_received = receiver_->content_received();
    result.response_time = last_arrival - start;
    out.partial = receiver_->partial_document();
    if (trace != nullptr) {
      switch (status) {
        case SessionStatus::kCompleted:
          trace->decode_complete(last_arrival);
          break;
        case SessionStatus::kAbortedIrrelevant:
          trace->abort_irrelevant(last_arrival, result.content_received);
          break;
        case SessionStatus::kDegraded:
          trace->degraded(channel_->now(), result.content_received);
          break;
        case SessionStatus::kGaveUp:
          trace->give_up(last_arrival);
          break;
      }
      trace->session_end(channel_->now(), result.content_received);
    }
    if (config_.flight != nullptr) {
      if (status == SessionStatus::kDegraded) {
        config_.flight->dump("degraded");
      } else if (status == SessionStatus::kGaveUp) {
        config_.flight->dump("gave_up");
      }
      trace->set_flight(prev_flight);
      if (trace == &scratch) receiver_->set_trace(nullptr);
    }
    return out;
  };

  for (int round = 1; round <= config_.max_rounds; ++round) {
    result.rounds = round;
    if (trace != nullptr) trace->round_start(round, channel_->now());
    for (std::size_t i = 0; i < transmitter_->n(); ++i) {
      channel::WirelessChannel::Delivery d =
          channel_->send(ByteSpan(transmitter_->frame(i)));
      ++result.frames_sent;
      if (trace != nullptr) trace->frame_sent(static_cast<long>(i), d.arrive_time);
      if (d.lost) {
        if (trace != nullptr) trace->frame_lost(d.arrive_time);
        continue;
      }
      last_arrival = d.arrive_time;
      receiver_->on_frame(ByteSpan(d.frame), d.arrive_time);
      // Same precedence as TransferSession: reconstruction beats the
      // relevance abort when one frame trips both.
      if (receiver_->complete()) return finish(SessionStatus::kCompleted);
      if (relevance_check &&
          receiver_->content_received() >= config_.relevance_threshold) {
        return finish(SessionStatus::kAbortedIrrelevant);
      }
    }
    if (trace != nullptr) trace->round_end(channel_->now());
    if (round == config_.max_rounds) break;  // give up: no further request
    receiver_->on_round_end();

    // Suspend-on-outage: when the link is observably dead, re-requesting is
    // futile — hold off (with backoff, consuming retry budget so a link that
    // never returns still terminates) until it comes back, then resume from
    // whatever the cache kept.
    if (!channel_->link_up_now()) {
      const double outage_started = channel_->now();
      if (trace != nullptr) trace->outage_begin(outage_started);
      while (!channel_->link_up_now()) {
        if (out.request_attempts >= rp.retry_budget || deadline_exceeded()) {
          return finish(SessionStatus::kDegraded);
        }
        ++out.request_attempts;
        wait_one_backoff();
      }
      ++out.outages_ridden;
      if (trace != nullptr) {
        trace->outage_end(channel_->now(), channel_->now() - outage_started);
        trace->resume(channel_->now());
      }
      backoff = rp.initial_timeout_s;  // link is back: start fresh
    }

    // Re-request until one message survives the lossy back channel. A
    // dropped request is indistinguishable from a slow server, so the client
    // waits its timeout and retries with exponential backoff + jitter.
    for (;;) {
      if (out.request_attempts >= rp.retry_budget || deadline_exceeded()) {
        return finish(SessionStatus::kDegraded);
      }
      ++out.request_attempts;
      if (channel_->send_feedback()) {
        if (trace != nullptr) trace->retransmit_request(channel_->now());
        backoff = rp.initial_timeout_s;
        break;
      }
      ++out.timeouts;
      wait_one_backoff();
    }
  }

  return finish(SessionStatus::kGaveUp);
}

}  // namespace mobiweb::transmit
