#include "transmit/transmitter.hpp"

#include <cmath>

#include "util/check.hpp"

namespace mobiweb::transmit {

std::size_t cooked_count(std::size_t m, double gamma) {
  MOBIWEB_CHECK_MSG(gamma >= 1.0, "cooked_count: gamma >= 1");
  const double raw = std::ceil(gamma * static_cast<double>(m));
  auto n = static_cast<std::size_t>(raw);
  if (n < m) n = m;
  if (n > 255) n = 255;
  return n;
}

DocumentTransmitter::DocumentTransmitter(doc::LinearDocument document,
                                         TransmitterConfig config)
    : document_(std::move(document)), config_(config) {
  MOBIWEB_CHECK_MSG(!document_.payload.empty(),
                    "DocumentTransmitter: empty document payload");
  m_ = ida::packet_count(document_.payload.size(), config_.packet_size);
  MOBIWEB_CHECK_MSG(m_ <= 255,
                    "DocumentTransmitter: document too large for one dispersal "
                    "group (m > 255); increase packet_size");
  n_ = cooked_count(m_, config_.gamma);

  ida::Encoder encoder(m_, n_);
  const auto cooked = encoder.encode_payload(ByteSpan(document_.payload),
                                             config_.packet_size);
  frames_.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    packet::Packet p;
    p.doc_id = config_.doc_id;
    p.seq = static_cast<std::uint16_t>(i);
    p.total = static_cast<std::uint16_t>(n_);
    p.flags = 0;
    if (i < m_) p.flags |= packet::kFlagClearText;
    if (i + 1 == n_) p.flags |= packet::kFlagLast;
    p.payload = cooked[i];
    frames_.push_back(packet::encode(p));
  }
}

const Bytes& DocumentTransmitter::frame(std::size_t index) const {
  MOBIWEB_CHECK_MSG(index < frames_.size(), "DocumentTransmitter::frame: range");
  return frames_[index];
}

}  // namespace mobiweb::transmit
