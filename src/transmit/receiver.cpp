#include "transmit/receiver.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mobiweb::transmit {

ClientReceiver::ClientReceiver(ReceiverConfig config, std::vector<doc::Segment> segments)
    : config_(config),
      segments_(std::move(segments)),
      decoder_(config.m, config.n, config.packet_size, config.payload_size) {
  content_map_.segments = segments_;
  for (const auto& s : segments_) total_content_ += s.content;
}

double ClientReceiver::packet_content(std::size_t raw_index) const {
  const std::size_t begin = raw_index * config_.packet_size;
  const std::size_t end =
      std::min(begin + config_.packet_size, config_.payload_size);
  return content_map_.content_of_range(begin, end);
}

FrameResult ClientReceiver::on_frame(ByteSpan frame, double arrive_time) {
  ++frames_seen_;
  FrameResult result;
  const auto decoded = packet::decode(frame);
  if (!decoded) {
    // CRC failure (or truncation): genuinely corrupted on the air.
    ++frames_corrupted_;
    result.corrupted = true;
    if (trace_ != nullptr) trace_->frame_corrupted(arrive_time);
    return result;
  }
  if (decoded->doc_id != config_.doc_id || decoded->total != config_.n ||
      decoded->seq >= config_.n ||
      decoded->payload.size() != config_.packet_size) {
    // Intact frame of some other transfer (shared channel / stale doc_id):
    // not corruption, so it must not feed the corruption-rate estimate.
    ++frames_foreign_;
    result.foreign = true;
    if (trace_ != nullptr) trace_->frame_foreign(arrive_time);
    return result;
  }
  result.intact = true;
  const std::size_t index = decoded->seq;
  result.seq = static_cast<long>(index);
  result.newly_useful = decoder_.add(index, ByteSpan(decoded->payload));
  if (result.newly_useful && index < config_.m) {
    clear_content_ += packet_content(index);
    if (render_hook_) render_hook_(index, ByteSpan(decoded->payload));
  }
  if (trace_ != nullptr) {
    // content_received() already includes this frame here.
    if (result.newly_useful) {
      trace_->frame_intact(result.seq, arrive_time, content_received());
    } else {
      trace_->frame_duplicate(result.seq, arrive_time);
    }
  }
  return result;
}

double ClientReceiver::content_received() const {
  if (decoder_.complete()) return total_content_;
  return clear_content_;
}

void ClientReceiver::on_round_end() {
  if (config_.caching) return;
  reset_cache();
}

void ClientReceiver::reset_cache() {
  decoder_.reset();
  clear_content_ = 0.0;
}

PartialDocument ClientReceiver::partial_document() const {
  PartialDocument out;
  const std::size_t ps = config_.packet_size;
  if (decoder_.complete()) {
    const Bytes payload = decoder_.reconstruct();
    for (const doc::Segment& seg : segments_) {
      if (seg.offset + seg.size > payload.size()) continue;  // defensive
      PartialUnit unit;
      unit.segment = seg;
      unit.bytes.assign(payload.begin() + static_cast<std::ptrdiff_t>(seg.offset),
                        payload.begin() +
                            static_cast<std::ptrdiff_t>(seg.offset + seg.size));
      out.content += seg.content;
      out.units.push_back(std::move(unit));
    }
    out.clear_packets = config_.m;
    out.complete = true;
    return out;
  }
  for (std::size_t raw = 0; raw < config_.m; ++raw) {
    if (decoder_.has_clear(raw)) ++out.clear_packets;
  }
  for (const doc::Segment& seg : segments_) {
    if (seg.size == 0) continue;  // nothing displayable
    if (seg.offset + seg.size > config_.payload_size) continue;  // defensive
    const std::size_t first = seg.offset / ps;
    const std::size_t last = (seg.offset + seg.size - 1) / ps;
    bool renderable = true;
    for (std::size_t raw = first; raw <= last && renderable; ++raw) {
      renderable = decoder_.has_clear(raw);
    }
    if (!renderable) continue;
    PartialUnit unit;
    unit.segment = seg;
    unit.bytes.reserve(seg.size);
    for (std::size_t raw = first; raw <= last; ++raw) {
      const ByteSpan packet = decoder_.clear_packet(raw);
      const std::size_t begin =
          raw == first ? seg.offset - raw * ps : 0;
      const std::size_t end =
          raw == last ? seg.offset + seg.size - raw * ps : ps;
      unit.bytes.insert(unit.bytes.end(), packet.begin() + begin,
                        packet.begin() + end);
    }
    out.content += seg.content;
    out.units.push_back(std::move(unit));
  }
  return out;
}

}  // namespace mobiweb::transmit
