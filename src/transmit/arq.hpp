// Selective-repeat ARQ — the classical alternative the paper contrasts with
// redundancy-based fault tolerance ("alternative mechanisms such as
// compression or ARQ are also implemented", §4.2).
//
// No erasure coding: the server streams the M raw packets (gamma = 1); the
// client NACKs the corrupted/missing sequence numbers at the end of each
// round and the server retransmits exactly those. Per-packet airtime is
// minimal, but every recovery round costs one feedback round trip, and the
// scheme fundamentally requires a back channel — the trade-off the ablation
// bench (bench_ablation_arq) quantifies against IDA redundancy.
#pragma once

#include "channel/channel.hpp"
#include "transmit/receiver.hpp"
#include "transmit/session.hpp"  // SessionResult
#include "transmit/transmitter.hpp"

namespace mobiweb::transmit {

struct ArqConfig {
  // < 0: relevant document (full download); otherwise abort at threshold F.
  double relevance_threshold = -1.0;
  // Time for the client's NACK to reach the server (charged per extra round).
  double feedback_delay_s = 0.0;
  int max_rounds = 1000;
  // Optional per-session event trace (see SessionConfig::trace).
  obs::SessionTrace* trace = nullptr;
};

// Drives one document transfer with selective repeat. The transmitter must
// have been built with gamma = 1 (no redundancy packets); the receiver's
// cache keeps everything received (ARQ is inherently caching).
class ArqSession {
 public:
  ArqSession(const DocumentTransmitter& transmitter, ClientReceiver& receiver,
             channel::WirelessChannel& channel, ArqConfig config = {});

  SessionResult run();

 private:
  const DocumentTransmitter* transmitter_;
  ClientReceiver* receiver_;
  channel::WirelessChannel* channel_;
  ArqConfig config_;
};

}  // namespace mobiweb::transmit
