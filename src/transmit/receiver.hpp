// Client side: the prototype's Sequence Manager + Rendering Manager rolled
// into one receiver. Validates frames (CRC), feeds intact cooked packets to
// the streaming decoder, tracks the information content received so far, and
// fires a render hook for every clear-text unit fragment so a browser can
// display "each organizational unit incrementally at the proper position".
//
// The receiver's packet buffer doubles as the paper's client cache: with
// caching enabled it survives "stalled" rounds, so a retransmission only has
// to supply the still-missing packets.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "doc/linear.hpp"
#include "ida/ida.hpp"
#include "obs/trace.hpp"
#include "packet/packet.hpp"
#include "util/bytes.hpp"

namespace mobiweb::transmit {

struct ReceiverConfig {
  std::uint16_t doc_id = 1;
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t packet_size = 256;
  std::size_t payload_size = 0;
  // Keep intact packets across stalled rounds (the paper's Caching strategy).
  bool caching = true;
};

// What the client can hand to the user when a transfer ends without full
// reconstruction (degraded-mode delivery): every organizational unit whose
// bytes are already readable in clear text — the systematic prefix plus any
// unit completed from the intact-packet cache. Units appear in transmission
// (i.e. ranked, highest-IC-first) order, so the most informative content
// survives a broken link.
struct PartialUnit {
  doc::Segment segment;  // unit map entry (label, payload range, content)
  Bytes bytes;           // the unit's payload bytes as transmitted
};

struct PartialDocument {
  std::vector<PartialUnit> units;
  double content = 0.0;        // information content the units carry
  std::size_t clear_packets = 0;  // clear-text raw packets held at assembly
  bool complete = false;       // whole document was reconstructable

  [[nodiscard]] bool empty() const { return units.empty(); }
};

struct FrameResult {
  bool intact = false;        // CRC passed and header consistent for this doc
  bool newly_useful = false;  // not a duplicate of an already-held packet
  bool corrupted = false;     // failed CRC / undecodable frame
  bool foreign = false;       // decodable but belongs to another document
  long seq = -1;              // cooked-packet index when intact
};

class ClientReceiver {
 public:
  // `segments` is the unit map of the transmitted (permuted) document — the
  // SC metadata the client needs to position units and account content.
  ClientReceiver(ReceiverConfig config, std::vector<doc::Segment> segments);

  // Called for every raw fragment of the document the client can newly
  // display: (raw packet index, bytes). Fired for clear-text packets as they
  // arrive and never twice for the same packet.
  using RenderHook = std::function<void(std::size_t raw_index, ByteSpan bytes)>;
  void set_render_hook(RenderHook hook) { render_hook_ = std::move(hook); }

  // Attaches a per-session event trace; nullptr (the default) is the no-op
  // sink and costs one branch per frame. Sessions install their configured
  // trace here before the first frame.
  void set_trace(obs::SessionTrace* trace) { trace_ = trace; }

  // `arrive_time` is the channel-clock arrival of the frame, used only to
  // timestamp trace events (pass the Delivery's arrive_time; defaults to 0
  // for direct/untimed feeding in tests).
  FrameResult on_frame(ByteSpan frame, double arrive_time = 0.0);

  // Information content received so far: the sum over clear-text raw packets
  // of the content their byte ranges carry, or the full document content once
  // reconstruction is possible.
  [[nodiscard]] double content_received() const;

  [[nodiscard]] bool complete() const { return decoder_.complete(); }
  [[nodiscard]] std::size_t intact_count() const { return decoder_.intact_count(); }

  // Whether cooked packet `index` has been received intact — the feedback a
  // selective-repeat (ARQ) server needs to decide what to resend.
  [[nodiscard]] bool has_packet(std::size_t index) const { return decoder_.has(index); }

  // Reconstructs the document payload; requires complete().
  [[nodiscard]] Bytes reconstruct() const { return decoder_.reconstruct(); }

  // Assembles the degraded-mode deliverable from whatever is decodable right
  // now: every unit all of whose covering raw packets are readable in clear
  // text (or the whole document when complete()). Safe to call at any point
  // of a transfer, including after give-up.
  [[nodiscard]] PartialDocument partial_document() const;

  // Signals the end of a (possibly stalled) round. Without caching the packet
  // buffer and content accounting reset — the default HTTP "reload" be-
  // haviour; with caching this is a no-op.
  void on_round_end();

  // Unconditionally drops the intact-packet cache and its content accounting,
  // caching strategy notwithstanding. Reconnect reconciliation calls this
  // when the serving replica's generation no longer matches the generation
  // the cached packets were fetched under — packets from different encodings
  // must never be mixed into one reconstruction. Frame statistics (seen /
  // corrupted / foreign) survive: they describe the channel, not the cache.
  void reset_cache();

  [[nodiscard]] const std::vector<doc::Segment>& segments() const { return segments_; }
  [[nodiscard]] long frames_seen() const { return frames_seen_; }
  // Frames that failed CRC / were undecodable. Foreign frames (intact but for
  // another document, e.g. on a shared broadcast channel) are counted
  // separately so they cannot pollute the corruption-rate estimate fed back
  // to AdaptiveGamma.
  [[nodiscard]] long frames_corrupted() const { return frames_corrupted_; }
  [[nodiscard]] long frames_foreign() const { return frames_foreign_; }

  // Corrupted fraction of the frames addressed to this receiver (foreign
  // frames excluded) — the client-side estimate of the channel's alpha.
  [[nodiscard]] double observed_corruption_rate() const {
    const long own = frames_seen_ - frames_foreign_;
    return own > 0 ? static_cast<double>(frames_corrupted_) /
                         static_cast<double>(own)
                   : 0.0;
  }

 private:
  [[nodiscard]] double packet_content(std::size_t raw_index) const;

  ReceiverConfig config_;
  std::vector<doc::Segment> segments_;
  doc::LinearDocument content_map_;  // segments only; payload stays empty
  ida::StreamingDecoder decoder_;
  RenderHook render_hook_;
  obs::SessionTrace* trace_ = nullptr;
  double clear_content_ = 0.0;
  long frames_seen_ = 0;
  long frames_corrupted_ = 0;
  long frames_foreign_ = 0;
  double total_content_ = 0.0;
};

}  // namespace mobiweb::transmit
