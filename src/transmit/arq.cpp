#include "transmit/arq.hpp"

#include <vector>

#include "util/check.hpp"

namespace mobiweb::transmit {

ArqSession::ArqSession(const DocumentTransmitter& transmitter,
                       ClientReceiver& receiver, channel::WirelessChannel& channel,
                       ArqConfig config)
    : transmitter_(&transmitter), receiver_(&receiver), channel_(&channel),
      config_(config) {
  MOBIWEB_CHECK_MSG(transmitter_->n() == transmitter_->m(),
                    "ArqSession: transmitter must carry no redundancy (gamma=1)");
  MOBIWEB_CHECK_MSG(config_.max_rounds >= 1, "ArqSession: max_rounds >= 1");
}

SessionResult ArqSession::run() {
  SessionResult result;
  const double start = channel_->now();
  // As in TransferSession: the user waits for the terminating frame to
  // *arrive*, so propagation delay counts towards the response time.
  double last_arrival = start;
  const bool relevance_check = config_.relevance_threshold >= 0.0;
  const std::size_t m = transmitter_->m();
  obs::SessionTrace* trace = config_.trace;
  if (trace != nullptr) {
    receiver_->set_trace(trace);
    trace->session_start(start);
  }

  // Sequence numbers still outstanding; round 1 sends everything.
  std::vector<std::size_t> pending(m);
  for (std::size_t i = 0; i < m; ++i) pending[i] = i;

  for (int round = 1; round <= config_.max_rounds; ++round) {
    result.rounds = round;
    if (trace != nullptr) trace->round_start(round, channel_->now());
    for (const std::size_t seq : pending) {
      const auto delivery = channel_->send(ByteSpan(transmitter_->frame(seq)));
      ++result.frames_sent;
      if (trace != nullptr) {
        trace->frame_sent(static_cast<long>(seq), delivery.arrive_time);
      }
      if (delivery.lost) {
        // Swallowed by a link outage; nothing reached the client.
        if (trace != nullptr) trace->frame_lost(delivery.arrive_time);
        continue;
      }
      last_arrival = delivery.arrive_time;
      receiver_->on_frame(ByteSpan(delivery.frame), delivery.arrive_time);
      // Completion wins over the relevance abort when both trip on the same
      // frame (with gamma = 1 the last missing packet does exactly that).
      if (receiver_->complete()) {
        result.status = SessionStatus::kCompleted;
        result.completed = true;
        result.content_received = receiver_->content_received();
        result.response_time = last_arrival - start;
        if (trace != nullptr) {
          trace->decode_complete(last_arrival);
          trace->session_end(last_arrival, result.content_received);
        }
        return result;
      }
      if (relevance_check &&
          receiver_->content_received() >= config_.relevance_threshold) {
        result.status = SessionStatus::kAbortedIrrelevant;
        result.aborted_irrelevant = true;
        result.content_received = receiver_->content_received();
        result.response_time = last_arrival - start;
        if (trace != nullptr) {
          trace->abort_irrelevant(last_arrival, result.content_received);
          trace->session_end(last_arrival, result.content_received);
        }
        return result;
      }
    }
    if (trace != nullptr) trace->round_end(channel_->now());
    if (round == config_.max_rounds) break;  // giving up: no further NACK
    // Collect the NACK list for the next round.
    std::vector<std::size_t> missing;
    for (std::size_t i = 0; i < m; ++i) {
      if (!receiver_->has_packet(i)) missing.push_back(i);
    }
    MOBIWEB_CHECK_MSG(!missing.empty(), "ArqSession: incomplete but nothing missing");
    if (trace != nullptr) {
      trace->retransmit_request(channel_->now(),
                                static_cast<long>(missing.size()));
    }
    pending = std::move(missing);
    if (config_.feedback_delay_s > 0.0) channel_->advance(config_.feedback_delay_s);
  }

  result.status = SessionStatus::kGaveUp;
  result.content_received = receiver_->content_received();
  result.response_time = last_arrival - start;
  if (trace != nullptr) {
    trace->give_up(last_arrival);
    trace->session_end(last_arrival, result.content_received);
  }
  return result;
}

}  // namespace mobiweb::transmit
