#include "transmit/arq.hpp"

#include <vector>

#include "util/check.hpp"

namespace mobiweb::transmit {

ArqSession::ArqSession(const DocumentTransmitter& transmitter,
                       ClientReceiver& receiver, channel::WirelessChannel& channel,
                       ArqConfig config)
    : transmitter_(&transmitter), receiver_(&receiver), channel_(&channel),
      config_(config) {
  MOBIWEB_CHECK_MSG(transmitter_->n() == transmitter_->m(),
                    "ArqSession: transmitter must carry no redundancy (gamma=1)");
  MOBIWEB_CHECK_MSG(config_.max_rounds >= 1, "ArqSession: max_rounds >= 1");
}

SessionResult ArqSession::run() {
  SessionResult result;
  const double start = channel_->now();
  const bool relevance_check = config_.relevance_threshold >= 0.0;
  const std::size_t m = transmitter_->m();

  // Sequence numbers still outstanding; round 1 sends everything.
  std::vector<std::size_t> pending(m);
  for (std::size_t i = 0; i < m; ++i) pending[i] = i;

  for (result.rounds = 1; result.rounds <= config_.max_rounds; ++result.rounds) {
    for (const std::size_t seq : pending) {
      const auto delivery = channel_->send(ByteSpan(transmitter_->frame(seq)));
      ++result.frames_sent;
      receiver_->on_frame(ByteSpan(delivery.frame));
      if (relevance_check &&
          receiver_->content_received() >= config_.relevance_threshold) {
        result.aborted_irrelevant = true;
        result.completed = receiver_->complete();
        result.content_received = receiver_->content_received();
        result.response_time = channel_->now() - start;
        return result;
      }
      if (receiver_->complete()) {
        result.completed = true;
        result.content_received = receiver_->content_received();
        result.response_time = channel_->now() - start;
        return result;
      }
    }
    // Collect the NACK list for the next round.
    std::vector<std::size_t> missing;
    for (std::size_t i = 0; i < m; ++i) {
      if (!receiver_->has_packet(i)) missing.push_back(i);
    }
    MOBIWEB_CHECK_MSG(!missing.empty(), "ArqSession: incomplete but nothing missing");
    pending = std::move(missing);
    if (config_.feedback_delay_s > 0.0) channel_->advance(config_.feedback_delay_s);
  }

  result.rounds = config_.max_rounds;
  result.completed = receiver_->complete();
  result.content_received = receiver_->content_received();
  result.response_time = channel_->now() - start;
  return result;
}

}  // namespace mobiweb::transmit
