// One document transfer over the wireless channel, with the paper's three
// termination conditions (§4.2) and stalled-round retransmission:
//
//   "The transmission can be terminated when any one of the following three
//    conditions occurs: the client receives sufficient number of cooked
//    packets to reconstruct the whole document; all cooked packets are
//    received; the user has determined that the document is irrelevant and
//    hit the 'stop' button."
//
// A round that ends with fewer than M intact packets is "stalled"; the
// session then retransmits, either from scratch (NoCaching — the default
// HTTP reload) or reusing the receiver's cache of intact packets (Caching).
#pragma once

#include <cstdint>

#include "channel/channel.hpp"
#include "obs/trace.hpp"
#include "transmit/receiver.hpp"
#include "transmit/transmitter.hpp"

namespace mobiweb::transmit {

struct SessionConfig {
  // < 0 means the document is relevant and must be fully downloaded;
  // otherwise the client aborts once content_received() >= this threshold
  // (the paper's F).
  double relevance_threshold = -1.0;
  // Extra channel time consumed by a retransmission request (paper assumes
  // immediate feedback; keep 0 to reproduce it).
  double request_delay_s = 0.0;
  // Safety valve against alpha ~ 1 pathologies.
  int max_rounds = 1000;
  // Optional per-session event trace; the session installs it into the
  // receiver for the duration of run(). nullptr = no-op sink.
  obs::SessionTrace* trace = nullptr;
};

// How a transfer session terminated.
enum class SessionStatus : std::uint8_t {
  kCompleted,         // document reconstructable at the client
  kAbortedIrrelevant, // user judged the document irrelevant and hit "stop"
  kDegraded,          // retry budget / deadline exhausted; partial delivery
  kGaveUp,            // max_rounds exhausted without reconstruction
};

[[nodiscard]] const char* status_name(SessionStatus s);

struct SessionResult {
  // Channel time from start to the *arrival* of the terminating frame, so a
  // configured propagation delay is part of what the user waits for.
  double response_time = 0.0;
  int rounds = 0;                // 1 = no stall
  long frames_sent = 0;
  SessionStatus status = SessionStatus::kGaveUp;
  // Legacy views of `status`, kept in sync for existing callers.
  bool completed = false;        // status == kCompleted
  bool aborted_irrelevant = false;  // status == kAbortedIrrelevant
  double content_received = 0.0;
};

class TransferSession {
 public:
  TransferSession(const DocumentTransmitter& transmitter, ClientReceiver& receiver,
                  channel::WirelessChannel& channel, SessionConfig config = {});

  // Runs to termination and reports the outcome. The receiver retains its
  // final state (so callers can reconstruct / inspect rendered fragments).
  SessionResult run();

 private:
  const DocumentTransmitter* transmitter_;
  ClientReceiver* receiver_;
  channel::WirelessChannel* channel_;
  SessionConfig config_;
};

}  // namespace mobiweb::transmit
