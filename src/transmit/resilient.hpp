// Outage-tolerant transfer driver: TransferSession semantics hardened for a
// genuinely weakly-connected link.
//
// The paper's transfer loop assumes the link stays up and retransmission
// requests always reach the server. ResilientSession drops both assumptions:
//
//   * frames can be lost to a link outage (channel OutageModel) — the
//     receiver's intact-packet cache survives the disconnection, so when the
//     link comes back the transfer *resumes* instead of restarting (the
//     paper's Caching strategy, generalized across disconnections);
//   * the retransmission request itself can be dropped (lossy back channel) —
//     the client re-requests after a per-round timeout with exponential
//     backoff + jitter, up to a retry budget;
//   * a fully dead round suspends the session: the client backs off until the
//     link is observed up again, then resumes from the cache;
//   * when the retry budget or the response deadline is exhausted the session
//     degrades gracefully — it returns SessionStatus::kDegraded together with
//     a PartialDocument assembled from the systematic prefix and every unit
//     already decodable from cached packets, instead of failing empty.
#pragma once

#include <cstdint>

#include "channel/channel.hpp"
#include "obs/trace.hpp"
#include "transmit/receiver.hpp"
#include "transmit/session.hpp"
#include "transmit/transmitter.hpp"
#include "util/rng.hpp"

namespace mobiweb::transmit {

// Client-side retry/backoff policy, separate from the session config so the
// BrowseSession surface can embed it without dragging trace pointers along.
struct RetryPolicy {
  int retry_budget = 16;          // total re-request attempts (incl. dropped)
  double initial_timeout_s = 0.5; // wait before the first re-request retry
  double backoff_multiplier = 2.0;
  double max_backoff_s = 30.0;
  double jitter = 0.1;            // each wait is scaled by 1 + U(0, jitter)
  double deadline_s = -1.0;       // < 0: none; else degrade past the deadline
};

struct ResilientConfig {
  // < 0: relevant document (full download); otherwise abort at threshold F.
  double relevance_threshold = -1.0;
  int max_rounds = 1000;  // safety valve on transmitted rounds
  RetryPolicy retry;
  std::uint64_t jitter_seed = 0x6a69747465ull;  // client-side backoff rng
  // Optional per-session event trace (see SessionConfig::trace).
  obs::SessionTrace* trace = nullptr;
  // Optional flight recorder: receives every session event (even when the
  // trace is not capturing, or when no trace is supplied at all) and is
  // dumped automatically when the session ends Degraded or GaveUp.
  obs::FlightRecorder* flight = nullptr;
};

struct ResilientResult {
  SessionResult session;
  // Degraded-mode deliverable; assembled whenever the session terminates
  // without full reconstruction (status kDegraded or kGaveUp), and also on
  // kCompleted (then it simply carries every unit). Empty on an irrelevance
  // abort only if nothing was renderable yet.
  PartialDocument partial;
  int request_attempts = 0;  // re-requests sent (delivered or dropped)
  int timeouts = 0;          // re-requests that had to be retried
  int outages_ridden = 0;    // suspend/resume cycles around a dead link
  double backoff_total_s = 0.0;  // channel time spent waiting to retry
};

class ResilientSession {
 public:
  ResilientSession(const DocumentTransmitter& transmitter,
                   ClientReceiver& receiver, channel::WirelessChannel& channel,
                   ResilientConfig config = {});

  // Runs to termination. Never hangs: every loop either transmits a bounded
  // round, consumes retry budget, or trips the deadline; the worst case is a
  // Degraded/GaveUp result carrying whatever was decodable.
  ResilientResult run();

 private:
  const DocumentTransmitter* transmitter_;
  ClientReceiver* receiver_;
  channel::WirelessChannel* channel_;
  ResilientConfig config_;
  Rng jitter_rng_;
};

}  // namespace mobiweb::transmit
