#include "transmit/adaptive.hpp"

#include <algorithm>

#include "analysis/negbinom.hpp"
#include "util/check.hpp"

namespace mobiweb::transmit {

AdaptiveGamma::AdaptiveGamma(AdaptiveGammaConfig config)
    : config_(config), estimate_(config.ewma_alpha) {
  MOBIWEB_CHECK_MSG(config_.initial_gamma >= 1.0, "AdaptiveGamma: initial_gamma >= 1");
  MOBIWEB_CHECK_MSG(config_.target_success > 0.0 && config_.target_success < 1.0,
                    "AdaptiveGamma: target_success in (0,1)");
  MOBIWEB_CHECK_MSG(config_.max_gamma >= config_.initial_gamma,
                    "AdaptiveGamma: max_gamma >= initial_gamma");
}

void AdaptiveGamma::observe(double corruption_rate) {
  MOBIWEB_CHECK_MSG(corruption_rate >= 0.0 && corruption_rate <= 1.0,
                    "AdaptiveGamma::observe: rate in [0,1]");
  // Rates at/above 1 would make the negative binomial degenerate; clamp just
  // under so a fully dead round still pushes the estimate up hard.
  estimate_.observe(std::min(corruption_rate, 0.99));
}

double AdaptiveGamma::gamma(int m) const {
  MOBIWEB_CHECK_MSG(m >= 1, "AdaptiveGamma::gamma: m >= 1");
  if (!estimate_.initialized()) return config_.initial_gamma;
  const double alpha = std::clamp(estimate_.value(), 0.0, 0.99);
  const double g = analysis::redundancy_ratio(m, alpha, config_.target_success);
  return std::clamp(g, 1.0, config_.max_gamma);
}

}  // namespace mobiweb::transmit
