#include "transmit/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/negbinom.hpp"
#include "util/check.hpp"

namespace mobiweb::transmit {

AdaptiveGamma::AdaptiveGamma(AdaptiveGammaConfig config)
    : config_(config), estimate_(config.ewma_alpha) {
  MOBIWEB_CHECK_MSG(config_.initial_gamma >= 1.0, "AdaptiveGamma: initial_gamma >= 1");
  MOBIWEB_CHECK_MSG(config_.target_success > 0.0 && config_.target_success < 1.0,
                    "AdaptiveGamma: target_success in (0,1)");
  MOBIWEB_CHECK_MSG(config_.max_gamma >= config_.initial_gamma,
                    "AdaptiveGamma: max_gamma >= initial_gamma");
}

void AdaptiveGamma::observe(double corruption_rate) {
  // The observation arrives over the (now lossy, outage-prone) feedback
  // channel, so garbage is reachable in production, not just in tests: a
  // mangled report can carry NaN, a negative value, or a rate >= 1. Hostile
  // or degenerate inputs must not poison the EWMA or trip a contract check —
  // drop what carries no information and clamp the rest.
  if (std::isnan(corruption_rate)) return;  // no information: ignore
  // Rates at/above 1 (including +inf) would make the negative binomial
  // degenerate; clamp just under so a fully dead round still pushes the
  // estimate up hard. Negative rates clamp to a clean channel.
  estimate_.observe(std::clamp(corruption_rate, 0.0, 0.99));
}

double AdaptiveGamma::gamma(int m) const {
  MOBIWEB_CHECK_MSG(m >= 1, "AdaptiveGamma::gamma: m >= 1");
  if (!estimate_.initialized()) return config_.initial_gamma;
  const double alpha = std::clamp(estimate_.value(), 0.0, 0.99);
  const double g = analysis::redundancy_ratio(m, alpha, config_.target_success);
  // A non-finite ratio (numerically degenerate alpha) must still yield a
  // usable redundancy: assume the worst and send the maximum.
  if (!std::isfinite(g)) return config_.max_gamma;
  return std::clamp(g, 1.0, config_.max_gamma);
}

}  // namespace mobiweb::transmit
