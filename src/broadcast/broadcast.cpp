#include "broadcast/broadcast.hpp"

#include "util/check.hpp"

namespace mobiweb::broadcast {

BroadcastServer::BroadcastServer(BroadcastConfig config) : config_(config) {
  MOBIWEB_CHECK_MSG(config_.gamma >= 1.0, "BroadcastServer: gamma >= 1");
  MOBIWEB_CHECK_MSG(config_.packet_size >= 1, "BroadcastServer: packet_size >= 1");
}

std::uint16_t BroadcastServer::publish(const doc::LinearDocument& document) {
  MOBIWEB_CHECK_MSG(!built_, "BroadcastServer: cycle already built");
  MOBIWEB_CHECK_MSG(!document.payload.empty(), "BroadcastServer: empty document");
  MOBIWEB_CHECK_MSG(documents_.size() < 0xfffe, "BroadcastServer: too many documents");

  Entry entry;
  entry.info.doc_id = static_cast<std::uint16_t>(documents_.size() + 1);
  entry.info.packet_size = config_.packet_size;
  entry.info.payload_size = document.payload.size();
  entry.info.m = ida::packet_count(document.payload.size(), config_.packet_size);
  MOBIWEB_CHECK_MSG(entry.info.m <= 255, "BroadcastServer: document too large");
  const double n_raw = config_.gamma * static_cast<double>(entry.info.m);
  entry.info.n = std::min<std::size_t>(255, static_cast<std::size_t>(n_raw + 0.999999));
  if (entry.info.n < entry.info.m) entry.info.n = entry.info.m;

  ida::Encoder encoder(entry.info.m, entry.info.n);
  const auto cooked =
      encoder.encode_payload(ByteSpan(document.payload), config_.packet_size);
  entry.frames.reserve(entry.info.n);
  for (std::size_t i = 0; i < entry.info.n; ++i) {
    packet::Packet p;
    p.doc_id = entry.info.doc_id;
    p.seq = static_cast<std::uint16_t>(i);
    p.total = static_cast<std::uint16_t>(entry.info.n);
    if (i < entry.info.m) p.flags |= packet::kFlagClearText;
    if (i + 1 == entry.info.n) p.flags |= packet::kFlagLast;
    p.payload = cooked[i];
    entry.frames.push_back(packet::encode(p));
  }
  documents_.push_back(std::move(entry));
  return documents_.back().info.doc_id;
}

void BroadcastServer::build_cycle() const {
  MOBIWEB_CHECK_MSG(!documents_.empty(), "BroadcastServer: nothing published");
  cycle_.clear();
  if (config_.interleave) {
    // Round-robin over documents until all frames are scheduled.
    std::size_t remaining = 0;
    for (const auto& d : documents_) remaining += d.frames.size();
    std::vector<std::size_t> next(documents_.size(), 0);
    while (remaining > 0) {
      for (std::size_t d = 0; d < documents_.size(); ++d) {
        if (next[d] < documents_[d].frames.size()) {
          cycle_.push_back(documents_[d].frames[next[d]]);
          ++next[d];
          --remaining;
        }
      }
    }
  } else {
    for (const auto& d : documents_) {
      cycle_.insert(cycle_.end(), d.frames.begin(), d.frames.end());
    }
  }
  built_ = true;
}

const std::vector<Bytes>& BroadcastServer::cycle() const {
  if (!built_) build_cycle();
  return cycle_;
}

const DocumentInfo& BroadcastServer::info(std::uint16_t doc_id) const {
  MOBIWEB_CHECK_MSG(doc_id >= 1 && doc_id <= documents_.size(),
                    "BroadcastServer::info: unknown doc_id");
  return documents_[doc_id - 1].info;
}

ListenResult listen_for(const BroadcastServer& server, std::uint16_t doc_id,
                        std::size_t start_offset, channel::WirelessChannel& channel,
                        int max_cycles, obs::SessionTrace* trace) {
  const auto& cycle = server.cycle();
  MOBIWEB_CHECK_MSG(!cycle.empty(), "listen_for: empty cycle");
  const DocumentInfo& info = server.info(doc_id);
  ida::StreamingDecoder decoder(info.m, info.n, info.packet_size,
                                info.payload_size);

  ListenResult result;
  const double start = channel.now();
  double last_arrival = start;
  if (trace != nullptr) trace->session_start(start);
  const std::size_t total = cycle.size();
  const std::size_t limit = total * static_cast<std::size_t>(max_cycles);
  for (std::size_t k = 0; k < limit; ++k) {
    const std::size_t idx = (start_offset + k) % total;
    if (trace != nullptr && idx == start_offset) {
      // Each pass over the full cycle is one "round" of the broadcast.
      trace->round_start(static_cast<int>(k / total) + 1, channel.now());
    }
    const auto delivery = channel.send(ByteSpan(cycle[idx]));
    ++result.frames_heard;
    last_arrival = delivery.arrive_time;
    const auto decoded = packet::decode(ByteSpan(delivery.frame));
    if (!decoded) {
      // CRC failure: the frame may have belonged to any document.
      ++result.frames_corrupted;
      if (trace != nullptr) trace->frame_corrupted(last_arrival);
      continue;
    }
    if (decoded->doc_id != doc_id) {
      if (trace != nullptr) trace->frame_foreign(last_arrival);
      continue;
    }
    ++result.frames_of_doc;
    if (decoded->payload.size() != info.packet_size || decoded->seq >= info.n) {
      if (trace != nullptr) trace->frame_foreign(last_arrival);
      continue;
    }
    const bool newly_useful = decoder.add(decoded->seq, ByteSpan(decoded->payload));
    if (trace != nullptr) {
      if (newly_useful) {
        trace->frame_intact(decoded->seq, last_arrival, decoder.clear_fraction());
      } else {
        trace->frame_duplicate(decoded->seq, last_arrival);
      }
    }
    if (decoder.complete()) {
      result.completed = true;
      result.payload = decoder.reconstruct();
      if (trace != nullptr) trace->decode_complete(last_arrival);
      break;
    }
  }
  result.time = channel.now() - start;
  if (trace != nullptr) {
    if (!result.completed) trace->give_up(last_arrival);
    trace->session_end(last_arrival, decoder.clear_fraction());
  }
  return result;
}

}  // namespace mobiweb::broadcast
