// Broadcast dissemination ("air storage").
//
// The authors' companion work (Leong & Si, "Database Caching over the
// Air-Storage", ref [13]; Chan/Si/Leong, ref [6]) serves hot data by cycling
// it on a broadcast channel: clients just tune in, no uplink needed. That is
// exactly the regime where the paper's fault-tolerant encoding beats ARQ —
// with thousands of listeners there is no per-client feedback, so recovery
// must come from redundancy alone, and "any M of N cooked packets" means a
// client can tune in at an arbitrary point of the cycle and still finish
// after ~M intact packets of its document.
//
// BroadcastServer builds the cycle (IDA-encoded frames of every published
// document, either document-by-document or interleaved round-robin);
// BroadcastClient models one listener wanting one document.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "channel/channel.hpp"
#include "doc/linear.hpp"
#include "ida/ida.hpp"
#include "obs/trace.hpp"
#include "packet/packet.hpp"
#include "util/bytes.hpp"

namespace mobiweb::broadcast {

struct BroadcastConfig {
  std::size_t packet_size = 256;
  double gamma = 1.5;
  // Interleave packets of different documents round-robin. Interleaving
  // shortens the expected wait for the *first* packet of a document at the
  // cost of stretching each document across the whole cycle.
  bool interleave = false;
};

struct DocumentInfo {
  std::uint16_t doc_id = 0;
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t packet_size = 0;
  std::size_t payload_size = 0;
};

class BroadcastServer {
 public:
  // doc_ids are assigned 1..k in publication order.
  explicit BroadcastServer(BroadcastConfig config = {});

  // Publishes a document; returns its doc_id. All documents must be
  // published before the first cycle() call.
  std::uint16_t publish(const doc::LinearDocument& document);

  // The broadcast cycle: every cooked frame of every document, in schedule
  // order. The cycle is immutable once built.
  [[nodiscard]] const std::vector<Bytes>& cycle() const;

  [[nodiscard]] std::size_t cycle_frames() const { return cycle().size(); }
  [[nodiscard]] const DocumentInfo& info(std::uint16_t doc_id) const;
  [[nodiscard]] std::size_t documents() const { return documents_.size(); }

 private:
  void build_cycle() const;

  BroadcastConfig config_;
  struct Entry {
    DocumentInfo info;
    std::vector<Bytes> frames;
  };
  std::vector<Entry> documents_;
  mutable std::vector<Bytes> cycle_;
  mutable bool built_ = false;
};

struct ListenResult {
  bool completed = false;
  long frames_heard = 0;      // frames that went by while tuned in
  long frames_of_doc = 0;     // intact frames of the wanted document
  long frames_corrupted = 0;  // frames that failed CRC while tuned in
  double time = 0.0;          // listening time until reconstruction
  Bytes payload;              // reconstructed document payload
};

// One listener: tunes in at frame `start_offset` of the cycle and listens
// until its document is reconstructable (or `max_cycles` full cycles pass).
// A corrupted frame cannot be attributed to any document (the header is
// untrustworthy), so frames_of_doc counts only intact frames of `doc_id`;
// intact frames of other documents are "foreign" in the trace.
ListenResult listen_for(const BroadcastServer& server, std::uint16_t doc_id,
                        std::size_t start_offset, channel::WirelessChannel& channel,
                        int max_cycles = 50, obs::SessionTrace* trace = nullptr);

}  // namespace mobiweb::broadcast
