// Wire format of a cooked packet (paper §4.1).
//
// "Data packets are received either intact (without error) or corrupted (with
// detectable error). A missing packet can be detected when the next packet is
// received, since the wireless channel is FIFO but unreliable. Simple
// sequence number as used in the datalink layer transmission protocol
// suffices ... we propose to adopt the cyclic redundancy code (CRC) for the
// detection of packet corruption."
//
// Layout (little-endian), header first:
//   u16 doc_id      document identifier within a browsing session
//   u16 seq         cooked-packet index in [0, N)
//   u16 total       N, so the receiver can detect the end of a round
//   u16 flags       bit 0: clear-text (systematic prefix); bit 1: last packet
//   payload         s_p bytes
//   u32 crc32       over header + payload
//
// The paper's framing overhead O (CRC + sequence number) is 4 bytes on a
// 256-byte payload; this richer header plus trailer is 12 bytes. The
// simulator keeps the paper's O = 4 as a parameter; the wire format here is
// what the runnable client/server actually exchanges.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace mobiweb::packet {

inline constexpr std::size_t kHeaderSize = 8;   // doc_id, seq, total, flags
inline constexpr std::size_t kTrailerSize = 4;  // crc32
inline constexpr std::size_t kFramingOverhead = kHeaderSize + kTrailerSize;

inline constexpr std::uint16_t kFlagClearText = 1u << 0;
inline constexpr std::uint16_t kFlagLast = 1u << 1;

// Upper bound on a cooked packet's payload. Frames on the 19.2 kbps channel
// carry a few hundred bytes; anything beyond this is a forged or corrupt
// length and is rejected before any allocation happens.
inline constexpr std::size_t kMaxPayloadSize = 1u << 16;

struct Packet {
  std::uint16_t doc_id = 0;
  std::uint16_t seq = 0;
  std::uint16_t total = 0;
  std::uint16_t flags = 0;
  Bytes payload;

  [[nodiscard]] bool is_clear_text() const { return flags & kFlagClearText; }
  [[nodiscard]] bool is_last() const { return flags & kFlagLast; }

  bool operator==(const Packet&) const = default;
};

// Serializes header + payload + CRC trailer.
Bytes encode(const Packet& packet);

// Parses and validates a frame. Returns nullopt when the frame is too short,
// the CRC does not match (corruption), or total/seq are inconsistent — i.e.
// exactly the "corrupted (with detectable error)" case.
std::optional<Packet> decode(ByteSpan frame);

// Size on the wire of a packet with `payload_size` payload bytes.
std::size_t frame_size(std::size_t payload_size);

}  // namespace mobiweb::packet
