#include "packet/packet.hpp"

#include "util/check.hpp"
#include "util/crc.hpp"

namespace mobiweb::packet {

Bytes encode(const Packet& packet) {
  MOBIWEB_CHECK_MSG(packet.payload.size() <= kMaxPayloadSize,
                    "packet::encode: payload exceeds kMaxPayloadSize");
  Bytes out;
  out.reserve(frame_size(packet.payload.size()));
  put_u16(out, packet.doc_id);
  put_u16(out, packet.seq);
  put_u16(out, packet.total);
  put_u16(out, packet.flags);
  out.insert(out.end(), packet.payload.begin(), packet.payload.end());
  const std::uint32_t crc = crc32(ByteSpan(out));
  put_u32(out, crc);
  return out;
}

std::optional<Packet> decode(ByteSpan frame) {
  if (frame.size() < kFramingOverhead) return std::nullopt;
  if (frame.size() > frame_size(kMaxPayloadSize)) return std::nullopt;
  const std::size_t body = frame.size() - kTrailerSize;
  const std::uint32_t stated = get_u32(frame, body);
  const std::uint32_t actual = crc32(frame.subspan(0, body));
  if (stated != actual) return std::nullopt;

  Packet p;
  p.doc_id = get_u16(frame, 0);
  p.seq = get_u16(frame, 2);
  p.total = get_u16(frame, 4);
  p.flags = get_u16(frame, 6);
  if (p.total == 0 || p.seq >= p.total) return std::nullopt;
  p.payload.assign(frame.begin() + kHeaderSize,
                   frame.begin() + static_cast<std::ptrdiff_t>(body));
  return p;
}

std::size_t frame_size(std::size_t payload_size) {
  return payload_size + kFramingOverhead;
}

}  // namespace mobiweb::packet
