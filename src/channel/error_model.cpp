#include "channel/error_model.hpp"

#include "util/check.hpp"

namespace mobiweb::channel {

IidErrorModel::IidErrorModel(double alpha) : alpha_(alpha) {
  MOBIWEB_CHECK_MSG(alpha >= 0.0 && alpha < 1.0, "IidErrorModel: alpha in [0,1)");
}

bool IidErrorModel::next_corrupted(Rng& rng) { return rng.next_bernoulli(alpha_); }

std::unique_ptr<ErrorModel> IidErrorModel::clone() const {
  return std::make_unique<IidErrorModel>(alpha_);
}

GilbertElliottModel::GilbertElliottModel(double p_good_to_bad, double p_bad_to_good,
                                         double loss_good, double loss_bad)
    : p_gb_(p_good_to_bad), p_bg_(p_bad_to_good), loss_good_(loss_good),
      loss_bad_(loss_bad) {
  MOBIWEB_CHECK_MSG(p_gb_ >= 0.0 && p_gb_ <= 1.0, "GE: p_good_to_bad in [0,1]");
  MOBIWEB_CHECK_MSG(p_bg_ > 0.0 && p_bg_ <= 1.0, "GE: p_bad_to_good in (0,1]");
  MOBIWEB_CHECK_MSG(loss_good_ >= 0.0 && loss_good_ < 1.0, "GE: loss_good in [0,1)");
  MOBIWEB_CHECK_MSG(loss_bad_ >= 0.0 && loss_bad_ <= 1.0, "GE: loss_bad in [0,1]");
}

bool GilbertElliottModel::next_corrupted(Rng& rng) {
  const bool corrupted = rng.next_bernoulli(bad_ ? loss_bad_ : loss_good_);
  // State transition applies after the packet is drawn.
  if (bad_) {
    if (rng.next_bernoulli(p_bg_)) bad_ = false;
  } else {
    if (rng.next_bernoulli(p_gb_)) bad_ = true;
  }
  return corrupted;
}

double GilbertElliottModel::steady_state_rate() const {
  const double denom = p_gb_ + p_bg_;
  if (denom <= 0.0) return loss_good_;
  const double pi_bad = p_gb_ / denom;
  return (1.0 - pi_bad) * loss_good_ + pi_bad * loss_bad_;
}

std::unique_ptr<ErrorModel> GilbertElliottModel::clone() const {
  auto copy = std::make_unique<GilbertElliottModel>(p_gb_, p_bg_, loss_good_, loss_bad_);
  copy->bad_ = bad_;
  return copy;
}

GilbertElliottModel GilbertElliottModel::with_average_rate(double alpha,
                                                           double mean_burst,
                                                           double loss_bad) {
  MOBIWEB_CHECK_MSG(alpha >= 0.0 && alpha < 1.0, "GE: alpha in [0,1)");
  MOBIWEB_CHECK_MSG(mean_burst >= 1.0, "GE: mean_burst >= 1 packet");
  MOBIWEB_CHECK_MSG(loss_bad > 0.0 && loss_bad <= 1.0, "GE: loss_bad in (0,1]");
  MOBIWEB_CHECK_MSG(alpha < loss_bad, "GE: alpha must be below loss_bad");
  // pi_bad * loss_bad = alpha and mean bad-state dwell = mean_burst packets.
  const double p_bg = 1.0 / mean_burst;
  const double pi_bad = alpha / loss_bad;
  // pi_bad = p_gb / (p_gb + p_bg)  =>  p_gb = p_bg * pi_bad / (1 - pi_bad)
  const double p_gb = p_bg * pi_bad / (1.0 - pi_bad);
  return GilbertElliottModel(p_gb, p_bg, /*loss_good=*/0.0, loss_bad);
}

}  // namespace mobiweb::channel
