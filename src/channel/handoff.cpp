#include "channel/handoff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace mobiweb::channel {

HandoffSchedule::HandoffSchedule(std::vector<double> times) {
  for (const double t : times) {
    MOBIWEB_CHECK_MSG(std::isfinite(t), "HandoffSchedule: times must be finite");
    MOBIWEB_CHECK_MSG(t >= 0.0, "HandoffSchedule: times must be >= 0");
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  times_ = std::move(times);
}

std::optional<HandoffSchedule> HandoffSchedule::parse(std::string_view text) {
  std::vector<double> times;
  std::size_t pos = 0;
  const auto skip_separators = [&] {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r' || text[pos] == ',' || text[pos] == ';')) {
      ++pos;
    }
  };
  // strtod needs NUL termination; copy once instead of scanning in place.
  const std::string owned(text);
  for (;;) {
    skip_separators();
    if (pos >= text.size()) break;
    char* end = nullptr;
    const double v = std::strtod(owned.c_str() + pos, &end);
    if (end == owned.c_str() + pos) return std::nullopt;  // no digits consumed
    if (!std::isfinite(v)) return std::nullopt;
    pos = static_cast<std::size_t>(end - owned.c_str());
    times.push_back(std::max(v, 0.0));
    if (times.size() > kMaxHandoffs) return std::nullopt;
  }
  return HandoffSchedule(std::move(times));
}

std::string HandoffSchedule::to_string() const {
  std::string out;
  char buf[32];
  for (const double t : times_) {
    if (!out.empty()) out += ',';
    std::snprintf(buf, sizeof buf, "%.17g", t);
    out += buf;
  }
  return out;
}

std::size_t HandoffSchedule::count_in(double begin, double end) const {
  if (end <= begin) return 0;
  const auto lo = std::upper_bound(times_.begin(), times_.end(), begin);
  const auto hi = std::upper_bound(times_.begin(), times_.end(), end);
  return static_cast<std::size_t>(hi - lo);
}

}  // namespace mobiweb::channel
