// Simulated weakly-connected wireless link.
//
// The channel is FIFO with a fixed serialization bandwidth (the paper's
// typical 19.2 kbps) and a pluggable per-packet corruption model. Because the
// link is FIFO and the bandwidth constant, delivery order equals send order
// and a synchronous send loop computes exact timings — no event queue needed.
//
// The channel operates on real frames: a corrupted delivery has bytes
// actually flipped, so the receiving side detects it through the CRC exactly
// as a real client would.
#pragma once

#include <cstdint>
#include <memory>

#include "channel/error_model.hpp"
#include "channel/outage.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mobiweb::channel {

struct ChannelConfig {
  double bandwidth_bps = 19200.0;   // paper Table 2: B = 19.2 kbps
  double propagation_delay_s = 0.0; // one-way latency added to every frame
  std::uint64_t seed = 1;
  // Back channel (client -> server retransmission requests / NACKs): iid
  // probability that one feedback message is dropped, and its one-way
  // latency. The defaults reproduce the paper's assumption of an immediate,
  // reliable back channel.
  double feedback_loss_rate = 0.0;
  double feedback_delay_s = 0.0;
};

struct ChannelStats {
  long frames_sent = 0;
  long frames_corrupted = 0;
  long frames_lost = 0;      // swallowed by a link outage (never arrive)
  long feedback_sent = 0;
  long feedback_lost = 0;    // dropped back-channel messages
  std::size_t bytes_sent = 0;

  [[nodiscard]] double observed_corruption_rate() const {
    return frames_sent > 0
               ? static_cast<double>(frames_corrupted) / static_cast<double>(frames_sent)
               : 0.0;
  }
};

class WirelessChannel {
 public:
  WirelessChannel(ChannelConfig config, std::unique_ptr<ErrorModel> errors);

  struct Delivery {
    Bytes frame;           // possibly corrupted bytes; empty when lost
    bool corrupted = false;
    bool lost = false;     // link was down: nothing reached the receiver
    double depart_time = 0.0;  // when the last bit left the sender
    double arrive_time = 0.0;  // when the last bit reached the receiver
  };

  // Serializes one frame onto the link, advancing the channel clock by the
  // transmission time. Corruption flips bytes in the delivered copy. With an
  // outage model installed, a frame departing while the link is down is lost
  // outright: `lost` is set and `frame` is empty (the sender still burned the
  // airtime — it has no way to know the link is dead).
  Delivery send(ByteSpan frame);

  // Installs a link-availability model composed with the error model; nullptr
  // (the default) restores the always-up link. Without a model, send() is
  // bit-for-bit identical to the pre-outage channel (same rng draws).
  void set_outage(std::unique_ptr<OutageModel> outage);
  [[nodiscard]] const OutageModel* outage() const { return outage_.get(); }

  // Whether the link is up at the current channel clock (no time passes).
  [[nodiscard]] bool link_up_now();

  // Attempts to deliver one client->server feedback message (retransmission
  // request / NACK). Returns true when it got through; on success the clock
  // advances by feedback_delay_s (the server acts only after the message
  // arrives). A message is dropped with probability feedback_loss_rate, or
  // when the link is down at send time — the client cannot distinguish the
  // two, so no time is charged on a drop (the caller's timeout covers it).
  bool send_feedback();

  // Seconds needed to serialize `frame_bytes` at the configured bandwidth.
  [[nodiscard]] double transmit_time(std::size_t frame_bytes) const;

  [[nodiscard]] double now() const { return clock_; }
  void advance(double seconds);  // e.g. a retransmission-request round trip

  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] const ErrorModel& errors() const { return *errors_; }

  // Mirrors ChannelStats into `channel.*` counters of `registry` from now on.
  // Counter references are resolved once here, so the per-frame cost with a
  // collector attached is three increments; nullptr detaches (the default).
  void set_metrics(obs::MetricsRegistry* registry);

  void reset_clock() { clock_ = 0.0; }

 private:
  ChannelConfig config_;
  std::unique_ptr<ErrorModel> errors_;
  std::unique_ptr<OutageModel> outage_;  // nullptr = always up
  Rng rng_;
  double clock_ = 0.0;
  ChannelStats stats_;
  obs::Counter* metric_sent_ = nullptr;
  obs::Counter* metric_corrupted_ = nullptr;
  obs::Counter* metric_lost_ = nullptr;
  obs::Counter* metric_bytes_ = nullptr;
  obs::Counter* metric_feedback_sent_ = nullptr;
  obs::Counter* metric_feedback_lost_ = nullptr;
};

}  // namespace mobiweb::channel
