// Simulated weakly-connected wireless link.
//
// The channel is FIFO with a fixed serialization bandwidth (the paper's
// typical 19.2 kbps) and a pluggable per-packet corruption model. Because the
// link is FIFO and the bandwidth constant, delivery order equals send order
// and a synchronous send loop computes exact timings — no event queue needed.
//
// The channel operates on real frames: a corrupted delivery has bytes
// actually flipped, so the receiving side detects it through the CRC exactly
// as a real client would.
#pragma once

#include <cstdint>
#include <memory>

#include "channel/error_model.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mobiweb::channel {

struct ChannelConfig {
  double bandwidth_bps = 19200.0;   // paper Table 2: B = 19.2 kbps
  double propagation_delay_s = 0.0; // one-way latency added to every frame
  std::uint64_t seed = 1;
};

struct ChannelStats {
  long frames_sent = 0;
  long frames_corrupted = 0;
  std::size_t bytes_sent = 0;

  [[nodiscard]] double observed_corruption_rate() const {
    return frames_sent > 0
               ? static_cast<double>(frames_corrupted) / static_cast<double>(frames_sent)
               : 0.0;
  }
};

class WirelessChannel {
 public:
  WirelessChannel(ChannelConfig config, std::unique_ptr<ErrorModel> errors);

  struct Delivery {
    Bytes frame;           // possibly corrupted bytes
    bool corrupted = false;
    double depart_time = 0.0;  // when the last bit left the sender
    double arrive_time = 0.0;  // when the last bit reached the receiver
  };

  // Serializes one frame onto the link, advancing the channel clock by the
  // transmission time. Corruption flips bytes in the delivered copy.
  Delivery send(ByteSpan frame);

  // Seconds needed to serialize `frame_bytes` at the configured bandwidth.
  [[nodiscard]] double transmit_time(std::size_t frame_bytes) const;

  [[nodiscard]] double now() const { return clock_; }
  void advance(double seconds);  // e.g. a retransmission-request round trip

  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] const ErrorModel& errors() const { return *errors_; }

  // Mirrors ChannelStats into `channel.*` counters of `registry` from now on.
  // Counter references are resolved once here, so the per-frame cost with a
  // collector attached is three increments; nullptr detaches (the default).
  void set_metrics(obs::MetricsRegistry* registry);

  void reset_clock() { clock_ = 0.0; }

 private:
  ChannelConfig config_;
  std::unique_ptr<ErrorModel> errors_;
  Rng rng_;
  double clock_ = 0.0;
  ChannelStats stats_;
  obs::Counter* metric_sent_ = nullptr;
  obs::Counter* metric_corrupted_ = nullptr;
  obs::Counter* metric_bytes_ = nullptr;
};

}  // namespace mobiweb::channel
