#include "channel/channel.hpp"

#include "util/check.hpp"

namespace mobiweb::channel {

WirelessChannel::WirelessChannel(ChannelConfig config,
                                 std::unique_ptr<ErrorModel> errors)
    : config_(config), errors_(std::move(errors)), rng_(config.seed) {
  MOBIWEB_CHECK_MSG(config_.bandwidth_bps > 0.0, "WirelessChannel: bandwidth > 0");
  MOBIWEB_CHECK_MSG(errors_ != nullptr, "WirelessChannel: error model required");
}

double WirelessChannel::transmit_time(std::size_t frame_bytes) const {
  return static_cast<double>(frame_bytes) * 8.0 / config_.bandwidth_bps;
}

WirelessChannel::Delivery WirelessChannel::send(ByteSpan frame) {
  MOBIWEB_CHECK_MSG(!frame.empty(), "WirelessChannel::send: empty frame");
  Delivery d;
  d.frame.assign(frame.begin(), frame.end());
  clock_ += transmit_time(frame.size());
  d.depart_time = clock_;
  d.arrive_time = clock_ + config_.propagation_delay_s;
  d.corrupted = errors_->next_corrupted(rng_);
  if (d.corrupted) {
    // Flip a handful of bytes so the CRC check fails with near-certainty;
    // xor with a nonzero mask guarantees the byte actually changes.
    const std::size_t flips = 1 + d.frame.size() / 64;
    for (std::size_t i = 0; i < flips; ++i) {
      const std::size_t pos = rng_.next_below(d.frame.size());
      const auto mask = static_cast<std::uint8_t>(1 + rng_.next_below(255));
      d.frame[pos] ^= mask;
    }
  }
  ++stats_.frames_sent;
  if (d.corrupted) ++stats_.frames_corrupted;
  stats_.bytes_sent += frame.size();
  return d;
}

void WirelessChannel::advance(double seconds) {
  MOBIWEB_CHECK_MSG(seconds >= 0.0, "WirelessChannel::advance: negative time");
  clock_ += seconds;
}

}  // namespace mobiweb::channel
