#include "channel/channel.hpp"

#include <algorithm>
#include <vector>

#include "obs/profile.hpp"
#include "util/check.hpp"

namespace mobiweb::channel {

WirelessChannel::WirelessChannel(ChannelConfig config,
                                 std::unique_ptr<ErrorModel> errors)
    : config_(config), errors_(std::move(errors)), rng_(config.seed) {
  MOBIWEB_CHECK_MSG(config_.bandwidth_bps > 0.0, "WirelessChannel: bandwidth > 0");
  MOBIWEB_CHECK_MSG(errors_ != nullptr, "WirelessChannel: error model required");
  // 1.0 is allowed: a completely dead back channel is a legitimate
  // fault-injection configuration (the resilient driver's retry budget is
  // what bounds the session, not this contract).
  MOBIWEB_CHECK_MSG(config_.feedback_loss_rate >= 0.0 &&
                        config_.feedback_loss_rate <= 1.0,
                    "WirelessChannel: feedback_loss_rate in [0,1]");
  MOBIWEB_CHECK_MSG(config_.feedback_delay_s >= 0.0,
                    "WirelessChannel: feedback_delay_s >= 0");
}

void WirelessChannel::set_outage(std::unique_ptr<OutageModel> outage) {
  outage_ = std::move(outage);
}

bool WirelessChannel::link_up_now() {
  return outage_ == nullptr || outage_->link_up(clock_, rng_);
}

bool WirelessChannel::send_feedback() {
  ++stats_.feedback_sent;
  if (metric_feedback_sent_ != nullptr) metric_feedback_sent_->inc();
  const bool dropped =
      (config_.feedback_loss_rate > 0.0 &&
       rng_.next_bernoulli(config_.feedback_loss_rate)) ||
      !link_up_now();
  if (dropped) {
    ++stats_.feedback_lost;
    if (metric_feedback_lost_ != nullptr) metric_feedback_lost_->inc();
    return false;
  }
  clock_ += config_.feedback_delay_s;
  return true;
}

double WirelessChannel::transmit_time(std::size_t frame_bytes) const {
  return static_cast<double>(frame_bytes) * 8.0 / config_.bandwidth_bps;
}

WirelessChannel::Delivery WirelessChannel::send(ByteSpan frame) {
  MOBIWEB_PROFILE_SCOPE("channel.send");
  MOBIWEB_CHECK_MSG(!frame.empty(), "WirelessChannel::send: empty frame");
  Delivery d;
  clock_ += transmit_time(frame.size());
  d.depart_time = clock_;
  d.arrive_time = clock_ + config_.propagation_delay_s;
  if (outage_ != nullptr && !outage_->link_up(d.depart_time, rng_)) {
    // Dead link: the frame never reaches the receiver at all. No corruption
    // draw — the error model only sees frames that make it onto the air.
    d.lost = true;
    ++stats_.frames_sent;
    ++stats_.frames_lost;
    stats_.bytes_sent += frame.size();
    if (metric_sent_ != nullptr) {
      metric_sent_->inc();
      metric_lost_->inc();
      metric_bytes_->inc(static_cast<long>(frame.size()));
    }
    return d;
  }
  d.frame.assign(frame.begin(), frame.end());
  d.corrupted = errors_->next_corrupted(rng_);
  if (d.corrupted) {
    // Flip a handful of bytes so the CRC check fails: each flipped position
    // is distinct and each mask nonzero, so the delivered frame is guaranteed
    // to differ from the original (two flips landing on the same byte with
    // the same mask used to cancel out, letting a frame counted as corrupted
    // sail through packet::decode).
    const std::size_t flips =
        std::min(d.frame.size(), 1 + d.frame.size() / 64);
    std::vector<std::size_t> flipped;
    flipped.reserve(flips);
    while (flipped.size() < flips) {
      const std::size_t pos = rng_.next_below(d.frame.size());
      if (std::find(flipped.begin(), flipped.end(), pos) != flipped.end()) {
        continue;
      }
      flipped.push_back(pos);
      const auto mask = static_cast<std::uint8_t>(1 + rng_.next_below(255));
      d.frame[pos] ^= mask;
    }
  }
  ++stats_.frames_sent;
  if (d.corrupted) ++stats_.frames_corrupted;
  stats_.bytes_sent += frame.size();
  if (metric_sent_ != nullptr) {
    metric_sent_->inc();
    if (d.corrupted) metric_corrupted_->inc();
    metric_bytes_->inc(static_cast<long>(frame.size()));
  }
  return d;
}

void WirelessChannel::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metric_sent_ = metric_corrupted_ = metric_lost_ = metric_bytes_ = nullptr;
    metric_feedback_sent_ = metric_feedback_lost_ = nullptr;
    return;
  }
  metric_sent_ = &registry->counter("channel.frames_sent");
  metric_corrupted_ = &registry->counter("channel.frames_corrupted");
  metric_lost_ = &registry->counter("channel.frames_lost");
  metric_bytes_ = &registry->counter("channel.bytes_sent");
  metric_feedback_sent_ = &registry->counter("channel.feedback_sent");
  metric_feedback_lost_ = &registry->counter("channel.feedback_lost");
}

void WirelessChannel::advance(double seconds) {
  MOBIWEB_CHECK_MSG(seconds >= 0.0, "WirelessChannel::advance: negative time");
  clock_ += seconds;
}

}  // namespace mobiweb::channel
