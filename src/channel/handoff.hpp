// Scripted cell-handoff schedule for the wireless channel.
//
// A weakly-connected client roams: at scripted instants it leaves one cell
// (and therefore one edge proxy) and attaches to the next. Unlike an outage
// (FaultSchedule windows where the link is *down*), a handoff is a point
// event — the link stays nominally up, but the serving proxy changes, which
// forces a replica re-lookup and a reconciliation of the client's partial
// cache on the new proxy (src/proxy/session.hpp drives this).
//
// Deterministic and replayable like FaultSchedule: times are normalized on
// construction (sorted, duplicates dropped), parse()/to_string() round-trip,
// and untrusted input degrades to nullopt, never UB.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mobiweb::channel {

class HandoffSchedule {
 public:
  // Throws ContractViolation on non-finite or negative times.
  explicit HandoffSchedule(std::vector<double> times);
  HandoffSchedule() = default;  // no handoffs

  // Parses a comma/semicolon/whitespace-separated list of handoff instants in
  // seconds, e.g. "2.5, 7, 11.25". Untrusted-input safe: negative times clamp
  // to 0, duplicates collapse; returns nullopt on malformed numbers,
  // non-finite values, trailing garbage, or more than kMaxHandoffs entries.
  // An empty/blank string is a valid schedule with no handoffs.
  static std::optional<HandoffSchedule> parse(std::string_view text);
  static constexpr std::size_t kMaxHandoffs = 1024;

  // "t,t,t" round-trippable through parse().
  [[nodiscard]] std::string to_string() const;

  // Handoffs scheduled in the half-open interval (begin, end]. The session
  // driver calls this with (time of last check, now] so every instant is
  // counted exactly once as the clock sweeps forward.
  [[nodiscard]] std::size_t count_in(double begin, double end) const;

  [[nodiscard]] const std::vector<double>& times() const { return times_; }
  [[nodiscard]] bool empty() const { return times_.empty(); }

 private:
  std::vector<double> times_;  // sorted, distinct, >= 0
};

}  // namespace mobiweb::channel
