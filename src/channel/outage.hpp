// Link-availability (outage) models for the wireless channel.
//
// The paper's client is *weakly connected* (§1): besides per-packet
// corruption, the link itself goes away — the client drives into a tunnel,
// the fade lasts seconds, not packets. An OutageModel answers "is the link up
// at channel time t?"; the WirelessChannel composes it with the per-packet
// ErrorModel, so a frame can be lost outright (never arrives) rather than
// merely corrupted (arrives and fails CRC).
//
// Two concrete models:
//   * MarkovOutageModel — continuous-time on/off renewal process with
//     exponential up/down dwell times (the time-domain analogue of the
//     Gilbert-Elliott packet model);
//   * FaultSchedule — a deterministic, scriptable list of outage windows, for
//     replayable tests and the fault-injection matrix.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace mobiweb::channel {

class OutageModel {
 public:
  virtual ~OutageModel() = default;

  // Whether the link is up at channel time `time` (seconds). Queries must be
  // non-decreasing in time (the channel clock never runs backward); repeated
  // queries at the same time return the same answer.
  virtual bool link_up(double time, Rng& rng) = 0;

  // Restores the initial state (start of a browsing session).
  virtual void reset() {}

  // Long-run fraction of time the link is *down* (for reporting and for
  // benches that equalize outage duty-cycle across conditions).
  [[nodiscard]] virtual double outage_fraction() const = 0;

  [[nodiscard]] virtual std::unique_ptr<OutageModel> clone() const = 0;

  // Fresh per-session copy: same parameters, initial state (as if reset()
  // were called on the clone). This is the cheap fan-out path the fleet
  // engine uses — clone a shared prototype once per session and drive each
  // copy with a per-session RNG stream, so sessions see independent fade
  // processes while a run stays deterministic and shard-invariant.
  [[nodiscard]] std::unique_ptr<OutageModel> session_clone() const;
};

// Continuous-time on/off fades: the link alternates between an Up state with
// mean dwell `mean_up_s` and a Down state with mean dwell `mean_down_s`,
// both exponentially distributed. Starts Up; transition times are drawn
// lazily as the queried time crosses them.
class MarkovOutageModel final : public OutageModel {
 public:
  MarkovOutageModel(double mean_up_s, double mean_down_s);

  // Convenience: a model whose long-run outage fraction is `duty` with mean
  // outage duration `mean_down_s` (so mean_up_s = mean_down_s*(1-duty)/duty).
  static MarkovOutageModel with_duty_cycle(double duty, double mean_down_s);

  bool link_up(double time, Rng& rng) override;
  void reset() override;
  [[nodiscard]] double outage_fraction() const override;
  [[nodiscard]] std::unique_ptr<OutageModel> clone() const override;

  [[nodiscard]] double mean_up_s() const { return mean_up_s_; }
  [[nodiscard]] double mean_down_s() const { return mean_down_s_; }

 private:
  double mean_up_s_;
  double mean_down_s_;
  bool up_ = true;
  double next_transition_ = -1.0;  // < 0: not yet drawn
};

// Deterministic scripted outage windows: the link is down during every
// half-open interval [begin, end). Windows are normalized on construction
// (sorted, overlaps merged, empty windows dropped), so replays are exact and
// order-independent.
class FaultSchedule final : public OutageModel {
 public:
  struct Window {
    double begin = 0.0;
    double end = 0.0;
  };

  // Throws ContractViolation on non-finite or negative times, or end < begin.
  explicit FaultSchedule(std::vector<Window> outages);
  FaultSchedule() = default;  // always up

  // Parses a schedule string: comma/semicolon/whitespace-separated
  // "begin-end" windows in seconds, e.g. "0.5-1.25, 4-4.75". Untrusted-input
  // safe: negative times are clamped to 0, empty windows (end <= begin after
  // clamping) are dropped, overlaps merge; returns nullopt on malformed
  // numbers, non-finite values, trailing garbage, or more than kMaxWindows
  // windows. An empty/blank string is a valid schedule with no outages.
  static std::optional<FaultSchedule> parse(std::string_view text);
  static constexpr std::size_t kMaxWindows = 1024;

  // "begin-end,begin-end" round-trippable through parse().
  [[nodiscard]] std::string to_string() const;

  bool link_up(double time, Rng& rng) override;
  [[nodiscard]] double outage_fraction() const override;  // over [0, last end)
  [[nodiscard]] std::unique_ptr<OutageModel> clone() const override;

  [[nodiscard]] const std::vector<Window>& windows() const { return windows_; }
  [[nodiscard]] double total_outage_s() const;

 private:
  std::vector<Window> windows_;  // sorted, disjoint, begin < end
};

}  // namespace mobiweb::channel
