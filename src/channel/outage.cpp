#include "channel/outage.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace mobiweb::channel {

std::unique_ptr<OutageModel> OutageModel::session_clone() const {
  std::unique_ptr<OutageModel> copy = clone();
  copy->reset();
  return copy;
}

MarkovOutageModel::MarkovOutageModel(double mean_up_s, double mean_down_s)
    : mean_up_s_(mean_up_s), mean_down_s_(mean_down_s) {
  MOBIWEB_CHECK_MSG(std::isfinite(mean_up_s_) && mean_up_s_ > 0.0,
                    "MarkovOutageModel: mean_up_s > 0");
  MOBIWEB_CHECK_MSG(std::isfinite(mean_down_s_) && mean_down_s_ > 0.0,
                    "MarkovOutageModel: mean_down_s > 0");
}

MarkovOutageModel MarkovOutageModel::with_duty_cycle(double duty,
                                                     double mean_down_s) {
  MOBIWEB_CHECK_MSG(duty > 0.0 && duty < 1.0,
                    "MarkovOutageModel: duty in (0,1)");
  return MarkovOutageModel(mean_down_s * (1.0 - duty) / duty, mean_down_s);
}

bool MarkovOutageModel::link_up(double time, Rng& rng) {
  // Exponential dwell; 1 - next_double() is in (0, 1], so the log is finite.
  const auto draw_dwell = [&rng](double mean) {
    return -mean * std::log(1.0 - rng.next_double());
  };
  if (next_transition_ < 0.0) {
    next_transition_ = time + draw_dwell(up_ ? mean_up_s_ : mean_down_s_);
  }
  while (time >= next_transition_) {
    up_ = !up_;
    next_transition_ += draw_dwell(up_ ? mean_up_s_ : mean_down_s_);
  }
  return up_;
}

void MarkovOutageModel::reset() {
  up_ = true;
  next_transition_ = -1.0;
}

double MarkovOutageModel::outage_fraction() const {
  return mean_down_s_ / (mean_up_s_ + mean_down_s_);
}

std::unique_ptr<OutageModel> MarkovOutageModel::clone() const {
  auto copy = std::make_unique<MarkovOutageModel>(mean_up_s_, mean_down_s_);
  copy->up_ = up_;
  copy->next_transition_ = next_transition_;
  return copy;
}

FaultSchedule::FaultSchedule(std::vector<Window> outages) {
  for (const Window& w : outages) {
    MOBIWEB_CHECK_MSG(std::isfinite(w.begin) && std::isfinite(w.end),
                      "FaultSchedule: window times must be finite");
    MOBIWEB_CHECK_MSG(w.begin >= 0.0, "FaultSchedule: window begin >= 0");
    MOBIWEB_CHECK_MSG(w.end >= w.begin, "FaultSchedule: window end >= begin");
  }
  std::sort(outages.begin(), outages.end(),
            [](const Window& a, const Window& b) { return a.begin < b.begin; });
  for (const Window& w : outages) {
    if (w.end <= w.begin) continue;  // empty window carries no outage
    if (!windows_.empty() && w.begin <= windows_.back().end) {
      windows_.back().end = std::max(windows_.back().end, w.end);
    } else {
      windows_.push_back(w);
    }
  }
}

std::optional<FaultSchedule> FaultSchedule::parse(std::string_view text) {
  std::vector<Window> windows;
  std::size_t pos = 0;
  const auto skip_separators = [&] {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r' || text[pos] == ',' || text[pos] == ';')) {
      ++pos;
    }
  };
  // strtod needs NUL termination; copy once instead of scanning in place.
  const std::string owned(text);
  const auto take_number = [&](double& out) {
    char* end = nullptr;
    const double v = std::strtod(owned.c_str() + pos, &end);
    if (end == owned.c_str() + pos) return false;  // no digits consumed
    if (!std::isfinite(v)) return false;
    pos = static_cast<std::size_t>(end - owned.c_str());
    out = v;
    return true;
  };
  for (;;) {
    skip_separators();
    if (pos >= text.size()) break;
    Window w;
    if (!take_number(w.begin)) return std::nullopt;
    if (pos >= text.size() || text[pos] != '-') return std::nullopt;
    ++pos;
    if (!take_number(w.end)) return std::nullopt;
    w.begin = std::max(w.begin, 0.0);
    w.end = std::max(w.end, 0.0);
    if (w.end > w.begin) windows.push_back(w);
    if (windows.size() > kMaxWindows) return std::nullopt;
  }
  return FaultSchedule(std::move(windows));
}

std::string FaultSchedule::to_string() const {
  std::string out;
  char buf[64];
  for (const Window& w : windows_) {
    if (!out.empty()) out += ',';
    std::snprintf(buf, sizeof buf, "%.17g-%.17g", w.begin, w.end);
    out += buf;
  }
  return out;
}

bool FaultSchedule::link_up(double time, Rng& /*rng*/) {
  // First window strictly after `time`; the one before it (if any) is the
  // only candidate containing `time`.
  const auto it = std::upper_bound(
      windows_.begin(), windows_.end(), time,
      [](double t, const Window& w) { return t < w.begin; });
  if (it == windows_.begin()) return true;
  const Window& w = *(it - 1);
  return time >= w.end;
}

double FaultSchedule::total_outage_s() const {
  double total = 0.0;
  for (const Window& w : windows_) total += w.end - w.begin;
  return total;
}

double FaultSchedule::outage_fraction() const {
  if (windows_.empty()) return 0.0;
  const double horizon = windows_.back().end;
  return horizon > 0.0 ? total_outage_s() / horizon : 0.0;
}

std::unique_ptr<OutageModel> FaultSchedule::clone() const {
  return std::make_unique<FaultSchedule>(*this);
}

}  // namespace mobiweb::channel
