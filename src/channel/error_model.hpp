// Per-packet corruption models for the wireless channel.
//
// The paper assumes "the probability a packet will be corrupted is α and ...
// the corruption events of individual packets are independent" — IidErrorModel.
// GilbertElliottModel adds the classic two-state burst-error channel as an
// extension (weakly-connected links lose packets in bursts when the client
// drives through a fade), used by the channel ablation bench.
#pragma once

#include <memory>

#include "util/rng.hpp"

namespace mobiweb::channel {

class ErrorModel {
 public:
  virtual ~ErrorModel() = default;

  // Draws whether the next packet is corrupted.
  virtual bool next_corrupted(Rng& rng) = 0;

  // Restores the initial state (e.g. at the start of a browsing session).
  virtual void reset() {}

  // Long-run corruption probability (for reporting and adaptive γ seeding).
  [[nodiscard]] virtual double steady_state_rate() const = 0;

  [[nodiscard]] virtual std::unique_ptr<ErrorModel> clone() const = 0;
};

// Independent, identically distributed corruption with probability alpha.
class IidErrorModel final : public ErrorModel {
 public:
  explicit IidErrorModel(double alpha);

  bool next_corrupted(Rng& rng) override;
  [[nodiscard]] double steady_state_rate() const override { return alpha_; }
  [[nodiscard]] std::unique_ptr<ErrorModel> clone() const override;

 private:
  double alpha_;
};

// Two-state Markov (Gilbert-Elliott) burst model: in the Good state packets
// are corrupted with probability loss_good, in the Bad state with loss_bad;
// the state flips with the given transition probabilities after each packet.
class GilbertElliottModel final : public ErrorModel {
 public:
  GilbertElliottModel(double p_good_to_bad, double p_bad_to_good,
                      double loss_good, double loss_bad);

  bool next_corrupted(Rng& rng) override;
  void reset() override { bad_ = false; }
  [[nodiscard]] double steady_state_rate() const override;
  [[nodiscard]] std::unique_ptr<ErrorModel> clone() const override;

  [[nodiscard]] bool in_bad_state() const { return bad_; }

  // Convenience: builds a GE model whose steady-state corruption rate equals
  // `alpha` with mean burst length `mean_burst` packets and loss probability
  // `loss_bad` inside a burst (loss_good = 0). Used by the ablation bench to
  // compare iid vs bursty channels at equal average error rate.
  static GilbertElliottModel with_average_rate(double alpha, double mean_burst,
                                               double loss_bad = 1.0);

 private:
  double p_gb_;
  double p_bg_;
  double loss_good_;
  double loss_bad_;
  bool bad_ = false;
};

}  // namespace mobiweb::channel
