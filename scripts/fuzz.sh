#!/usr/bin/env sh
# Drives the coverage-guided fuzzers under tests/fuzz.
#
# With clang on PATH (libFuzzer ships with clang), builds every harness with
# -DMOBIWEB_FUZZ=ON and runs each for a bounded time over its seed corpus,
# collecting new coverage-increasing inputs back into the corpus directory.
# Without clang, falls back to building the plain replay drivers and running
# the checked-in corpora once — the same thing `ctest -L fuzz` does.
#
# Usage:
#   scripts/fuzz.sh [seconds-per-target] [target...]
#
#   scripts/fuzz.sh                 # 60s per target, all targets
#   scripts/fuzz.sh 300 fuzz_xml    # 5 minutes on the XML harness only
#
# Crashing inputs land in <build>/fuzz-artifacts/<target>/; minimize with
#   <build>/tests/fuzz/<target> -minimize_crash=1 -runs=10000 <artifact>
# then check the minimized reproducer into tests/fuzz/corpus/<area>/ and add
# a named regression test.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
DURATION=${1:-60}
[ $# -gt 0 ] && shift
TARGETS=${*:-fuzz_xml fuzz_html fuzz_sc fuzz_dtd fuzz_packet fuzz_ida fuzz_lzss fuzz_gf fuzz_content fuzz_fault_schedule}

corpus_for() {
  case "$1" in
    fuzz_xml) echo xml ;;
    fuzz_html) echo html ;;
    fuzz_sc) echo sc ;;
    fuzz_dtd) echo dtd ;;
    fuzz_packet) echo packet ;;
    fuzz_ida) echo ida ;;
    fuzz_lzss) echo lzss ;;
    fuzz_gf) echo gf ;;
    fuzz_content) echo content ;;
    fuzz_fault_schedule) echo fault_schedule ;;
    *) echo "unknown fuzz target: $1" >&2; exit 2 ;;
  esac
}

if command -v clang++ >/dev/null 2>&1; then
  BUILD="$ROOT/build-fuzz"
  cmake -B "$BUILD" -S "$ROOT" \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
    -DMOBIWEB_FUZZ=ON -DMOBIWEB_SANITIZE=ON \
    -DMOBIWEB_BUILD_BENCH=OFF -DMOBIWEB_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD" -j
  for t in $TARGETS; do
    corpus="$ROOT/tests/fuzz/corpus/$(corpus_for "$t")"
    artifacts="$BUILD/fuzz-artifacts/$t"
    mkdir -p "$artifacts"
    echo "== $t: ${DURATION}s over $corpus =="
    "$BUILD/tests/fuzz/$t" -max_total_time="$DURATION" \
      -artifact_prefix="$artifacts/" "$corpus"
  done
else
  echo "clang not found: running corpus replay (no coverage-guided fuzzing)" >&2
  BUILD="$ROOT/build-fuzz-replay"
  cmake -B "$BUILD" -S "$ROOT" -DMOBIWEB_SANITIZE=ON \
    -DMOBIWEB_BUILD_BENCH=OFF -DMOBIWEB_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD" -j
  for t in $TARGETS; do
    corpus_for "$t" >/dev/null  # validate the name even in replay mode
  done
  ctest --test-dir "$BUILD" -L fuzz --output-on-failure
fi
