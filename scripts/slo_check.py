#!/usr/bin/env python3
"""SLO gate over "mobiweb-timeline/1" documents (ctest `bench.fleet_timeline`).

Usage:
    slo_check.py TIMELINE.json
    slo_check.py --from-bench BENCH_BINARY [bench args...]
    slo_check.py --self-test

Validates the timeline document bench_fleet/bench_proxy emit under
--timeline[=PATH] and gates on its SLO verdict:

  * schema is "mobiweb-timeline/1" with the meta / timeseries / derived /
    slo / traceEvents sections present;
  * every raw time series is a same-length array of finite non-negative
    integers, and the session-accounting channels are consistent (starts sum
    to the session count, every start precedes its end bucket-wise, failures
    never exceed ends, losses never exceed sends);
  * every derived series is a same-length array of numbers or nulls
    (null = undefined bucket, e.g. a ratio with a zero denominator);
  * trace retention is bounded: retained_traces <= trace_tail_target +
    failed_traces, and the Perfetto traceEvents section is structurally
    sound (complete spans carry non-negative durations);
  * each slo series verdict is internally consistent (drift is the recorded
    slope extrapolated across the fitted window, a breach implies
    significance and drift beyond tolerance in the bad direction) and the
    top-level breach count matches the per-series flags.

Exit code 0 when the document is valid and reports zero breaches, 1 on any
structural violation or SLO breach, 2 on usage errors.

--from-bench runs `BENCH_BINARY [args] --timeline` and checks its stdout.
--self-test exercises the verdict semantics on synthetic series: a flat
series must PASS and an injected mid-run regression must FAIL. Stdlib only.
"""

import json
import math
import subprocess
import sys

SCHEMA = "mobiweb-timeline/1"
META_KEYS = ("sessions", "seed", "trace_tail_target", "retained_traces",
             "failed_traces")
SLO_SERIES_KEYS = ("name", "direction", "buckets", "window", "mean", "p50",
                   "p95", "p99", "max", "slope", "slope_ci95", "r2", "drift",
                   "tolerance", "significant", "breach")
MIN_BUCKETS = 8  # mirrors stats::kSloMinBuckets


def fail(msg):
    sys.exit(f"slo_check: {msg}")


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


# ---------------------------------------------------------------------------
# Verdict semantics (mirrors stats::evaluate_slo_series) — used by the
# self-test, with a conservative normal-theory t approximation.


def evaluate_series(values, direction, tolerance):
    """Returns (significant, breach) for one derived series."""
    pts = [(i, v) for i, v in enumerate(values)
           if v is not None and math.isfinite(v)]
    n = len(pts)
    if n < 3:
        return False, False
    mean_x = sum(p[0] for p in pts) / n
    mean_y = sum(p[1] for p in pts) / n
    sxx = sum((p[0] - mean_x) ** 2 for p in pts)
    sxy = sum((p[0] - mean_x) * (p[1] - mean_y) for p in pts)
    if sxx == 0:
        return False, False
    slope = sxy / sxx
    ss_res = sum((p[1] - (mean_y + slope * (p[0] - mean_x))) ** 2
                 for p in pts)
    df = n - 2
    stderr = math.sqrt(ss_res / df / sxx) if sxx > 0 else 0.0
    t95 = 1.96 * (1.0 + 2.5 / df)  # inflates toward small df
    ci95 = t95 * stderr
    significant = (len(values) >= MIN_BUCKETS and abs(slope) > ci95
                   and ci95 > 0.0)
    window = len(values)
    drift = slope * (window - 1) / max(abs(mean_y), 1e-12)
    breach = (direction != 0 and significant
              and (drift > tolerance if direction < 0 else -drift > tolerance))
    return significant, breach


# ---------------------------------------------------------------------------
# Document validation


def check_int_series(name, values, buckets):
    if not isinstance(values, list) or len(values) != buckets:
        fail(f"timeseries {name!r}: expected {buckets} buckets, "
             f"got {values if not isinstance(values, list) else len(values)}")
    for i, v in enumerate(values):
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail(f"timeseries {name!r}[{i}] = {v!r} is not a non-negative "
                 "integer")


def check_document(doc):
    if doc.get("schema") != SCHEMA:
        fail(f"expected schema {SCHEMA!r}, got {doc.get('schema')!r}")

    meta = doc.get("meta")
    if not isinstance(meta, dict):
        fail("missing meta object")
    for key in META_KEYS:
        if not isinstance(meta.get(key), int):
            fail(f"meta.{key} missing or not an integer")
    if meta["retained_traces"] > meta["trace_tail_target"] + meta["failed_traces"]:
        fail(f"retention unbounded: retained_traces={meta['retained_traces']} "
             f"> trace_tail_target={meta['trace_tail_target']} + "
             f"failed_traces={meta['failed_traces']}")

    ts = doc.get("timeseries")
    if not isinstance(ts, dict):
        fail("missing timeseries object")
    buckets = ts.get("buckets")
    if not isinstance(buckets, int) or buckets < 0:
        fail(f"timeseries.buckets = {buckets!r}")
    if not is_number(ts.get("bucket_width_s")) or ts["bucket_width_s"] <= 0:
        fail(f"timeseries.bucket_width_s = {ts.get('bucket_width_s')!r}")
    series = ts.get("series")
    if not isinstance(series, dict) or not series:
        fail("timeseries.series missing or empty")
    for name, values in series.items():
        check_int_series(name, values, buckets)

    # Session accounting: starts sum to the fleet size, prefix-monotone
    # against ends, failures bounded by ends, losses bounded by sends.
    for key in ("sessions_started", "sessions_ended", "sessions_failed",
                "frames_sent", "frames_lost"):
        if key not in series:
            fail(f"timeseries.series missing {key!r}")
    started, ended = series["sessions_started"], series["sessions_ended"]
    if sum(started) != meta["sessions"]:
        fail(f"sessions_started sums to {sum(started)}, "
             f"meta.sessions = {meta['sessions']}")
    if sum(ended) != meta["sessions"]:
        fail(f"sessions_ended sums to {sum(ended)} != {meta['sessions']} "
             "(run not drained?)")
    cum_started = cum_ended = 0
    for i in range(buckets):
        cum_started += started[i]
        cum_ended += ended[i]
        if cum_ended > cum_started:
            fail(f"bucket {i}: cumulative ends {cum_ended} exceed "
                 f"cumulative starts {cum_started}")
    if sum(series["sessions_failed"]) > sum(ended):
        fail("sessions_failed exceeds sessions_ended")
    if sum(series["frames_lost"]) > sum(series["frames_sent"]):
        fail("frames_lost exceeds frames_sent")

    derived = doc.get("derived")
    if not isinstance(derived, dict) or not derived:
        fail("missing derived object")
    for name, values in derived.items():
        if not isinstance(values, list) or len(values) != buckets:
            fail(f"derived {name!r}: expected {buckets} buckets")
        for i, v in enumerate(values):
            if v is not None and not is_number(v):
                fail(f"derived {name!r}[{i}] = {v!r}")
            if is_number(v) and not math.isfinite(v):
                fail(f"derived {name!r}[{i}] is not finite")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents array")
    if meta["retained_traces"] > 0 and not events:
        fail("retained_traces > 0 but traceEvents is empty")
    for i, e in enumerate(events):
        if not isinstance(e, dict) or "ph" not in e:
            fail(f"traceEvents[{i}] malformed")
        if e["ph"] == "X":
            if not is_number(e.get("dur")) or e["dur"] < 0:
                fail(f"traceEvents[{i}]: complete span with dur = "
                     f"{e.get('dur')!r}")
        if e["ph"] in ("X", "i", "C") and not is_number(e.get("ts")):
            fail(f"traceEvents[{i}]: missing ts")

    return check_slo(doc.get("slo"))


def check_slo(slo):
    if not isinstance(slo, dict):
        fail("missing slo object")
    if not is_number(slo.get("tolerance")) or slo["tolerance"] < 0:
        fail(f"slo.tolerance = {slo.get('tolerance')!r}")
    entries = slo.get("series")
    if not isinstance(entries, list) or not entries:
        fail("slo.series missing or empty")
    breaches = []
    for s in entries:
        for key in SLO_SERIES_KEYS:
            if key not in s:
                fail(f"slo series {s.get('name', '?')!r} missing {key!r}")
        name = s["name"]
        if s["direction"] not in (-1, 0, 1):
            fail(f"slo {name!r}: direction = {s['direction']!r}")
        for key in ("mean", "p50", "p95", "p99", "max", "slope",
                    "slope_ci95", "r2", "drift", "tolerance"):
            if not is_number(s[key]) or not math.isfinite(s[key]):
                fail(f"slo {name!r}: {key} = {s[key]!r}")
        if not s["p50"] <= s["p95"] <= s["p99"] <= s["max"]:
            fail(f"slo {name!r}: quantiles not monotone: "
                 f"p50={s['p50']} p95={s['p95']} p99={s['p99']} "
                 f"max={s['max']}")
        # Drift is the fitted slope extrapolated across the gated window,
        # normalized by the series mean — recompute and compare.
        if s["window"] >= 2:
            want = s["slope"] * (s["window"] - 1) / max(abs(s["mean"]), 1e-12)
            if not math.isclose(want, s["drift"], rel_tol=1e-6, abs_tol=1e-9):
                fail(f"slo {name!r}: drift {s['drift']} inconsistent with "
                     f"slope*(window-1)/mean = {want}")
        if s["breach"]:
            if s["direction"] == 0:
                fail(f"slo {name!r}: informational series marked breached")
            if not s["significant"]:
                fail(f"slo {name!r}: breach without significance")
            bad = (s["drift"] > s["tolerance"] if s["direction"] < 0
                   else -s["drift"] > s["tolerance"])
            if not bad:
                fail(f"slo {name!r}: breach but drift {s['drift']} within "
                     f"tolerance {s['tolerance']}")
            breaches.append(name)
    if slo.get("breaches") != len(breaches):
        fail(f"slo.breaches = {slo.get('breaches')!r} but "
             f"{len(breaches)} series breached")
    return breaches


# ---------------------------------------------------------------------------
# Modes


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")
    return finish(doc, check_document(doc), path)


def check_bench(cmd):
    cmd = cmd + ["--timeline"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        fail(f"bench emitted invalid JSON: {e}")
    return finish(doc, check_document(doc), " ".join(cmd))


def finish(doc, breaches, source):
    meta = doc["meta"]
    if breaches:
        print(f"slo_check: FAIL ({source}): {len(breaches)} SLO breach(es): "
              f"{', '.join(breaches)}", file=sys.stderr)
        return 1
    print(f"slo_check: ok ({source}): {meta['sessions']} sessions, "
          f"{doc['timeseries']['buckets']} buckets, "
          f"{meta['retained_traces']} retained trace(s) "
          f"({meta['failed_traces']} failed), 0 breaches")
    return 0


def self_test():
    """The verdict semantics on synthetic series: flat PASSes, an injected
    mid-run regression FAILs, and ramps without significance stay quiet."""
    tol = 0.25
    n = 48
    # Deterministic low-amplitude "noise" (no RNG: reproducible everywhere).
    wobble = [0.002 * math.sin(1.7 * i) for i in range(n)]

    flat = [0.2 + w for w in wobble]
    sig, breach = evaluate_series(flat, -1, tol)
    if breach:
        fail("self-test: flat series breached")

    # Injected mid-run regression: loss fraction doubles over the back half.
    regressed = [0.2 + w + (0.2 * max(0, i - n // 2) / (n // 2))
                 for i, w in enumerate(wobble)]
    sig, breach = evaluate_series(regressed, -1, tol)
    if not sig or not breach:
        fail("self-test: injected mid-run regression not flagged "
             f"(significant={sig}, breach={breach})")

    # Same shape on a higher-is-better series is an improvement, not a breach.
    _, breach = evaluate_series(regressed, 1, tol)
    if breach:
        fail("self-test: improvement flagged as breach")

    # Informational series never breach, however steep.
    _, breach = evaluate_series([float(i) for i in range(n)], 0, tol)
    if breach:
        fail("self-test: informational series breached")

    # Too few buckets: never significant, never a breach.
    _, breach = evaluate_series(regressed[:MIN_BUCKETS - 2], -1, tol)
    if breach:
        fail("self-test: breach below the minimum bucket count")

    # Undefined buckets (None) are skipped, not fatal.
    holey = list(flat)
    holey[3] = holey[17] = None
    _, breach = evaluate_series(holey, -1, tol)
    if breach:
        fail("self-test: flat series with undefined buckets breached")

    print("slo_check: self-test ok (flat passes, injected regression fails)")
    return 0


def main(argv):
    if len(argv) < 2:
        sys.exit(f"slo_check: usage error\n{__doc__}")
    if argv[1] == "--self-test":
        return self_test()
    if argv[1] == "--from-bench":
        if len(argv) < 3:
            sys.exit("slo_check: --from-bench needs a bench binary")
        return check_bench(argv[2:])
    if argv[1].startswith("-"):
        sys.exit(f"slo_check: unknown option {argv[1]!r}\n{__doc__}")
    return check_file(argv[1])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
