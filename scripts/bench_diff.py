#!/usr/bin/env python3
"""Perf-regression gate over "mobiweb-bench/1" JSON runs.

Usage:
    bench_diff.py [--tolerance=FRAC] [--quiet] [--summary] OLD.json NEW.json

Compares the flat `metrics` maps of two bench runs produced by any harness's
--json mode (bench_micro_coding, bench_micro_pipeline, bench_throughput,
bench_outage, ...). Exits 0 when no metric regressed by more than the
tolerance (default 0.10 = 10%), 1 when at least one did, 2 on usage or
schema errors.

Metric direction is encoded in the key suffix:
  higher-is-better: *mbps, *per_hour, *per_s, *completed, *content
  lower-is-better:  *_s, *_ms, *_us, *_ns, *frames, *timeouts, *attempts,
                    *gave_up
Tail statistics inherit the direction of the metric they summarize: a key
ending in _p50/_p95/_p99/_p999/_mean is classified by stripping that suffix
and re-inferring (so session_time_s_p99 gates lower-is-better exactly like
session_time_s) — a p99 regression fails the gate even when the mean is
flat. *_ci95 keys (confidence half-widths) are always informational.
Keys matching neither list are informational: printed, never gating.
Metrics present in only one run are reported but do not gate (benches may
gain or drop metrics across revisions — in particular, baselines recorded
before the tail keys existed still compare cleanly).

--summary appends a one-block tally after the per-key table — how many keys
gated clean, how many regressed, how many are informational-only or present
in a single run — so a PASS still leaves an at-a-glance delta record in the
CI log (composes with --quiet: just the tally, no per-key table).

Stdlib only; no third-party imports.
"""

import json
import sys

HIGHER_BETTER = ("mbps", "per_hour", "per_s", "completed", "content")
LOWER_BETTER = ("_s", "_ms", "_us", "_ns", "frames", "timeouts", "attempts",
                "gave_up")
# Distribution-summary suffixes: direction comes from the summarized metric.
TAIL_SUFFIXES = ("_p50", "_p95", "_p99", "_p999", "_mean")
# Error-bar suffixes: context for a mean, never a gate by themselves.
INFORMATIONAL_SUFFIXES = ("_ci95",)

SCHEMA = "mobiweb-bench/1"


def direction(key):
    """+1 higher-is-better, -1 lower-is-better, 0 informational."""
    if key.endswith(INFORMATIONAL_SUFFIXES):
        return 0
    for suffix in TAIL_SUFFIXES:
        if key.endswith(suffix):
            return direction(key[:-len(suffix)])
    if key.endswith(HIGHER_BETTER):
        return 1
    if key.endswith(LOWER_BETTER):
        return -1
    return 0


def load_run(path):
    try:
        with open(path, encoding="utf-8") as f:
            run = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    if run.get("schema") != SCHEMA:
        sys.exit(f"bench_diff: {path}: expected schema {SCHEMA!r}, "
                 f"got {run.get('schema')!r}")
    metrics = run.get("metrics")
    if not isinstance(metrics, dict):
        sys.exit(f"bench_diff: {path}: missing metrics object")
    for key, value in metrics.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            sys.exit(f"bench_diff: {path}: metric {key!r} is not a number")
    return run.get("bench", "?"), metrics


def main(argv):
    tolerance = 0.10
    quiet = False
    summary = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            try:
                tolerance = float(arg.split("=", 1)[1])
            except ValueError:
                sys.exit(f"bench_diff: bad tolerance {arg!r}")
            if tolerance < 0:
                sys.exit("bench_diff: tolerance must be >= 0")
        elif arg == "--quiet":
            quiet = True
        elif arg == "--summary":
            summary = True
        elif arg.startswith("-"):
            sys.exit(f"bench_diff: unknown option {arg!r}\n{__doc__}")
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit(f"bench_diff: need exactly OLD.json NEW.json\n{__doc__}")

    old_bench, old = load_run(paths[0])
    new_bench, new = load_run(paths[1])
    if old_bench != new_bench:
        print(f"bench_diff: warning: comparing bench {old_bench!r} "
              f"against {new_bench!r}", file=sys.stderr)

    regressions = []
    lines = []
    gated_ok = info_only = single_sided = 0
    for key in sorted(set(old) | set(new)):
        if key not in old or key not in new:
            side = "new" if key in new else "old"
            lines.append(f"  {key}: only in {side} run")
            single_sided += 1
            continue
        a, b = float(old[key]), float(new[key])
        if a == b:
            delta = 0.0
        elif a == 0.0:
            delta = float("inf") if b > 0 else float("-inf")
        else:
            delta = (b - a) / abs(a)
        sign = direction(key)
        # delta > 0 is an increase; a regression is a decrease of a
        # higher-is-better metric or an increase of a lower-is-better one.
        regressed = sign != 0 and -sign * delta > tolerance
        tag = "REGRESSED" if regressed else (
            "info" if sign == 0 else "ok")
        lines.append(f"  {key}: {a:g} -> {b:g} ({delta:+.1%}) [{tag}]")
        if regressed:
            regressions.append(key)
        elif sign == 0:
            info_only += 1
        else:
            gated_ok += 1

    if not quiet:
        print(f"bench_diff: {old_bench}: {paths[0]} -> {paths[1]} "
              f"(tolerance {tolerance:.0%})")
        for line in lines:
            print(line)
    if summary:
        print(f"bench_diff: summary: {gated_ok} gating ok, "
              f"{len(regressions)} regressed, {info_only} informational, "
              f"{single_sided} only in one run")
    if regressions:
        print(f"bench_diff: {len(regressions)} metric(s) regressed beyond "
              f"{tolerance:.0%}: {', '.join(regressions)}", file=sys.stderr)
        return 1
    if not quiet:
        print("bench_diff: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
