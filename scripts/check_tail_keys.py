#!/usr/bin/env python3
"""CI smoke for the tail-aware bench contract (ctest `bench.fleet_tails`).

Usage:
    check_tail_keys.py BENCH_BINARY [bench args...]

Runs `BENCH_BINARY [args] --json`, parses the "mobiweb-bench/1" run, and
verifies the session-time tail keys the perf gate compares:
  * every scale (metric-key prefix) that reports session_time_s_mean also
    reports _p50, _p95, _p99, _p999 and _ci95;
  * quantiles are finite, non-negative, and monotone
    (p50 <= p95 <= p99 <= p999);
  * the mean lies within [p50's floor, p999] sanity bounds (min <= mean is
    implied by monotonicity of the exported set);
  * bench_diff.py (imported from this directory) classifies _p99 keys as
    gating lower-is-better and _ci95 keys as informational, so a schema or
    direction-inference regression fails here, not in a real perf hunt.

Exits 0 on success, 1 on any violation. Stdlib only.
"""

import json
import math
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402  (direction-inference contract check)

TAILS = ("_p50", "_p95", "_p99", "_p999", "_ci95")


def fail(msg):
    sys.exit(f"check_tail_keys: {msg}")


def main(argv):
    if len(argv) < 2:
        fail(f"usage: {argv[0]} BENCH_BINARY [bench args...]")
    cmd = argv[1:] + ["--json"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    try:
        run = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        fail(f"bench emitted invalid JSON: {e}")
    if run.get("schema") != "mobiweb-bench/1":
        fail(f"unexpected schema {run.get('schema')!r}")
    metrics = run.get("metrics", {})

    scales = sorted(k[: -len("session_time_s_mean")] for k in metrics
                    if k.endswith("session_time_s_mean"))
    if not scales:
        fail("no session_time_s_mean keys in the run")

    for scale in scales:
        base = scale + "session_time_s"
        for suffix in TAILS:
            if base + suffix not in metrics:
                fail(f"missing {base + suffix}")
        p50, p95, p99, p999 = (metrics[base + s] for s in TAILS[:4])
        mean = metrics[base + "_mean"]
        ci95 = metrics[base + "_ci95"]
        for name, v in (("p50", p50), ("p95", p95), ("p99", p99),
                        ("p999", p999), ("mean", mean), ("ci95", ci95)):
            if not math.isfinite(v) or v < 0:
                fail(f"{base}_{name} = {v!r} is not a finite non-negative "
                     "number")
        if not p50 <= p95 <= p99 <= p999:
            fail(f"{base}: quantiles not monotone: "
                 f"p50={p50} p95={p95} p99={p99} p999={p999}")
        if mean > p999:
            fail(f"{base}: mean {mean} exceeds p999 {p999}")

        # Direction-inference contract: tails gate, CI halfwidths do not.
        for suffix in ("_p50", "_p95", "_p99", "_p999", "_mean"):
            if bench_diff.direction(base + suffix) != -1:
                fail(f"bench_diff.direction({base + suffix!r}) is not "
                     "lower-is-better")
        if bench_diff.direction(base + "_ci95") != 0:
            fail(f"bench_diff.direction({base + '_ci95'!r}) is not "
                 "informational")

    print(f"check_tail_keys: ok ({len(scales)} scale(s): "
          f"{', '.join(s.rstrip('.') for s in scales)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
