#!/usr/bin/env bash
# ThreadSanitizer pass over the fleet concurrency surface: the sharded engine,
# the shared DocumentCache, ThreadPool re-entrancy, the concurrent
# MetricsRegistry writers, and the GF kernel dispatch tables' first use.
#
# Builds an out-of-tree TSan tree (build-tsan/) so the regular build stays
# untouched, then runs the labels that exercise real multi-threading:
#   fleet    — engine, cache, bench smoke
#   obs      — metrics registry hammer
#   coding   — thread pool + GF kernel tests (test_util / test_gf_kernels)
#   stats    — tail summaries folded from concurrent shards (test_stats_workload)
#   proxy    — edge tier: proxied engine walk across shards, origin-clone
#              streams, the proxied bench smoke (test_proxy / bench_proxy)
#
# Usage: scripts/tsan_fleet.sh [extra ctest args...]
set -euo pipefail

ROOT=${MOBIWEB_REPO_ROOT:-$(cd "$(dirname "$0")/.." && pwd)}
BUILD="$ROOT/build-tsan"

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMOBIWEB_TSAN=ON \
  -DMOBIWEB_BUILD_BENCH=ON \
  -DMOBIWEB_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j \
  --target test_fleet test_util test_obs test_gf_kernels test_stats \
  test_stats_workload test_proxy test_timeseries bench_fleet bench_proxy

export TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1}
ctest --test-dir "$BUILD" --output-on-failure -L 'fleet|obs|coding|stats|proxy' "$@"

# Weak-connectivity / workload knobs under TSan: per-session outage clones,
# the suspend/backoff path, Zipf document draws and Poisson arrivals all run
# on the sharded hot path, so race them here too.
MOBIWEB_FAST=1 "$BUILD/bench/bench_fleet" \
  --sessions=5000 --duty=0.2 --zipf=0.8 --arrival=100 --json=/dev/null

# Edge tier under TSan: per-session origin-outage clones, the cold-proxy
# suspend loop, handoff/reconciliation state and the FleetProxyTotals merge
# all run across shards in one proxied cell stacked on link fades.
MOBIWEB_FAST=1 "$BUILD/bench/bench_proxy" \
  --sessions=2000 --origin-duty=0.4 --warm=0.6 --duty=0.2 --json=/dev/null

# Telemetry under TSan: per-shard TimeSeries writers, the per-session crumb
# rings, the bounded tail-retention heaps and the post-run merge/materialize
# all race across shards; the timeline document renders at the end.
MOBIWEB_FAST=1 "$BUILD/bench/bench_fleet" \
  --sessions=5000 --duty=0.25 --timeline=/dev/null
MOBIWEB_FAST=1 "$BUILD/bench/bench_proxy" \
  --sessions=2000 --origin-duty=0.4 --warm=0.6 --duty=0.2 --timeline=/dev/null

echo "tsan_fleet: ok"
