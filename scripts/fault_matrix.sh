#!/usr/bin/env sh
# Fault-injection matrix: sweeps outage duty-cycle × feedback-loss probability
# through bench_outage, plus a fleet-scale duty sweep through bench_fleet
# (sharded engine + per-session outage clones) and an origin-fade × link-fade
# sweep through bench_proxy (edge tier: failover, stale serves, reconnect
# reconciliation), and collects one JSON result per cell.
#
# Every cell runs under a hard wall-clock cap (`timeout`), so a regression
# that re-introduces a hang in the resilient session driver fails the sweep
# loudly instead of wedging CI. Results land in <build>/fault-matrix/ as
# duty<d>_loss<l>.json for offline comparison across commits.
#
# Usage:
#   scripts/fault_matrix.sh [build-dir] [per-cell-cap-seconds]
#
#   scripts/fault_matrix.sh                 # ./build, 120s per cell
#   scripts/fault_matrix.sh build-rel 60    # existing build dir, tighter cap
#
# The sweep runs with MOBIWEB_FAST=1 (reduced document count); unset FAST=1
# below for a full-size sweep.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build"}
CAP=${2:-120}
FAST=1

DUTIES="0.0 0.2 0.4 0.6"
LOSSES="0.0 0.3 0.7"

if [ ! -x "$BUILD/bench/bench_outage" ] || [ ! -x "$BUILD/bench/bench_fleet" ] \
    || [ ! -x "$BUILD/bench/bench_proxy" ]; then
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD" -j --target bench_outage bench_fleet bench_proxy
fi

# The sweep must never silently skip a failure domain: a bench binary still
# missing after the build attempt (e.g. benches disabled in this tree) is a
# hard error, not an empty matrix.
for bin in bench_outage bench_fleet bench_proxy; do
  if [ ! -x "$BUILD/bench/$bin" ]; then
    echo "fault matrix: $BUILD/bench/$bin missing or not executable" >&2
    exit 1
  fi
done

OUT="$BUILD/fault-matrix"
mkdir -p "$OUT"

failures=0
for duty in $DUTIES; do
  for loss in $LOSSES; do
    cell="$OUT/duty${duty}_loss${loss}.json"
    echo "== duty=$duty feedback-loss=$loss (cap ${CAP}s) =="
    if MOBIWEB_FAST=$FAST timeout "$CAP" \
        "$BUILD/bench/bench_outage" \
        --duty="$duty" --feedback-loss="$loss" --json="$cell"; then
      echo "   -> $cell"
    else
      status=$?
      if [ "$status" -eq 124 ]; then
        echo "FAIL: cell duty=$duty loss=$loss exceeded ${CAP}s wall clock" >&2
      else
        echo "FAIL: cell duty=$duty loss=$loss exited with status $status" >&2
      fi
      failures=$((failures + 1))
    fi
  done
done

# Fleet-scale rows: the sharded engine under per-session link fades. Every
# session suspends/backs off independently, so these cells also guard the
# engine's termination proof (budget/deadline) against hangs at scale.
for duty in $DUTIES; do
  cell="$OUT/fleet_duty${duty}.json"
  echo "== fleet sessions=2000 duty=$duty (cap ${CAP}s) =="
  if MOBIWEB_FAST=$FAST timeout "$CAP" \
      "$BUILD/bench/bench_fleet" \
      --sessions=2000 --duty="$duty" --json="$cell" > /dev/null; then
    echo "   -> $cell"
  else
    status=$?
    if [ "$status" -eq 124 ]; then
      echo "FAIL: fleet cell duty=$duty exceeded ${CAP}s wall clock" >&2
    else
      echo "FAIL: fleet cell duty=$duty exited with status $status" >&2
    fi
    failures=$((failures + 1))
  fi
done

# Edge-tier rows: origin fades × link fades through the proxied engine walk.
# The cold-proxy + dead-origin path suspends sessions on the retry budget, so
# these cells guard the edge tier's termination proof under the same cap.
ORIGIN_DUTIES="0.25 0.5"
LINK_DUTIES="0.0 0.3"
for oduty in $ORIGIN_DUTIES; do
  for lduty in $LINK_DUTIES; do
    cell="$OUT/proxy_origin${oduty}_link${lduty}.json"
    echo "== proxy sessions=2000 origin-duty=$oduty link-duty=$lduty (cap ${CAP}s) =="
    if MOBIWEB_FAST=$FAST timeout "$CAP" \
        "$BUILD/bench/bench_proxy" \
        --sessions=2000 --origin-duty="$oduty" --warm=0.6 --duty="$lduty" \
        --json="$cell" > /dev/null; then
      echo "   -> $cell"
    else
      status=$?
      if [ "$status" -eq 124 ]; then
        echo "FAIL: proxy cell origin=$oduty link=$lduty exceeded ${CAP}s wall clock" >&2
      else
        echo "FAIL: proxy cell origin=$oduty link=$lduty exited with status $status" >&2
      fi
      failures=$((failures + 1))
    fi
  done
done

if [ "$failures" -gt 0 ]; then
  echo "fault matrix: $failures cell(s) failed" >&2
  exit 1
fi
echo "fault matrix: all cells completed under the ${CAP}s cap; results in $OUT"
