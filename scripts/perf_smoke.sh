#!/usr/bin/env bash
# Structural smoke test of the perf-regression gate, wired into ctest as
# `perf.smoke`. Deliberately non-flaky: nothing here compares live timings
# against thresholds. It checks that
#   1. the micro harnesses emit valid "mobiweb-bench/1" JSON,
#   2. bench_diff.py passes a run against itself,
#   3. bench_diff.py FAILS when a regression is injected into a copy,
#   4. the metric keys are still compatible with the checked-in baselines
#      (compared at a tolerance timing noise cannot trip).
# For an actual perf hunt, diff two real runs at the default tolerance:
#   scripts/bench_diff.py bench/baselines/micro_coding.json new.json
set -euo pipefail

ROOT=${MOBIWEB_REPO_ROOT:-$(cd "$(dirname "$0")/.." && pwd)}
CODING=${1:-$ROOT/build/bench/bench_micro_coding}
PIPELINE=${2:-$ROOT/build/bench/bench_micro_pipeline}
FLEET=${3:-$ROOT/build/bench/bench_fleet}
DIFF="$ROOT/scripts/bench_diff.py"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$CODING" --json="$TMP/coding.json" >/dev/null
"$PIPELINE" --json="$TMP/pipeline.json" >/dev/null
"$FLEET" --json="$TMP/fleet.json" >/dev/null
# Weak-connectivity path: per-session Markov fades, suspend/backoff, degraded
# termination. Deterministic for a fixed seed, so it gates like the clean run.
"$FLEET" --duty=0.2 --json="$TMP/fleet_duty.json" >/dev/null

# A run diffed against itself must pass at any tolerance.
python3 "$DIFF" --quiet --tolerance=0 "$TMP/coding.json" "$TMP/coding.json"
python3 "$DIFF" --quiet --tolerance=0 "$TMP/pipeline.json" "$TMP/pipeline.json"
python3 "$DIFF" --quiet --tolerance=0 "$TMP/fleet.json" "$TMP/fleet.json"
python3 "$DIFF" --quiet --tolerance=0 "$TMP/fleet_duty.json" "$TMP/fleet_duty.json"

# Halve the first throughput metric: the gate must catch it.
python3 - "$TMP/coding.json" "$TMP/regressed.json" <<'EOF'
import json, sys
with open(sys.argv[1], encoding="utf-8") as f:
    run = json.load(f)
for key in sorted(run["metrics"]):
    if key.endswith(("mbps", "per_s", "per_hour")):
        run["metrics"][key] *= 0.5
        break
else:
    sys.exit("perf_smoke: no directional metric to perturb")
with open(sys.argv[2], "w", encoding="utf-8") as f:
    json.dump(run, f)
EOF
if python3 "$DIFF" --quiet "$TMP/coding.json" "$TMP/regressed.json"; then
  echo "perf_smoke: injected regression was not detected" >&2
  exit 1
fi

# Baseline key compatibility (schema + key drift only, not timings).
python3 "$DIFF" --quiet --tolerance=1000 \
  "$ROOT/bench/baselines/micro_coding.json" "$TMP/coding.json"
python3 "$DIFF" --quiet --tolerance=1000 \
  "$ROOT/bench/baselines/micro_pipeline.json" "$TMP/pipeline.json"
python3 "$DIFF" --quiet --tolerance=1000 \
  "$ROOT/bench/baselines/fleet.json" "$TMP/fleet.json"
python3 "$DIFF" --quiet --tolerance=1000 \
  "$ROOT/bench/baselines/fleet_duty.json" "$TMP/fleet_duty.json"

echo "perf_smoke: ok"
