#!/usr/bin/env bash
# Structural smoke test of the perf-regression gate, wired into ctest as
# `perf.smoke`. Deliberately non-flaky: nothing here compares live timings
# against thresholds. It checks that
#   1. the micro harnesses emit valid "mobiweb-bench/1" JSON,
#   2. bench_diff.py passes a run against itself,
#   3. bench_diff.py FAILS when a regression is injected into a copy,
#   4. the tail gate works: an injected p99-only regression (means held
#      flat) fails, confidence-interval keys never gate, and baselines
#      recorded before the tail keys existed still compare cleanly,
#   5. the metric keys are still compatible with the checked-in baselines
#      (compared at a tolerance timing noise cannot trip).
# For an actual perf hunt, diff two real runs at the default tolerance:
#   scripts/bench_diff.py bench/baselines/micro_coding.json new.json
set -euo pipefail

ROOT=${MOBIWEB_REPO_ROOT:-$(cd "$(dirname "$0")/.." && pwd)}
CODING=${1:-$ROOT/build/bench/bench_micro_coding}
PIPELINE=${2:-$ROOT/build/bench/bench_micro_pipeline}
FLEET=${3:-$ROOT/build/bench/bench_fleet}
PROXY=${4:-$ROOT/build/bench/bench_proxy}
DIFF="$ROOT/scripts/bench_diff.py"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$CODING" --json="$TMP/coding.json" >/dev/null
"$PIPELINE" --json="$TMP/pipeline.json" >/dev/null
"$FLEET" --json="$TMP/fleet.json" >/dev/null
# Weak-connectivity path: per-session Markov fades, suspend/backoff, degraded
# termination. Deterministic for a fixed seed, so it gates like the clean run.
"$FLEET" --duty=0.2 --json="$TMP/fleet_duty.json" >/dev/null
# Edge proxy tier: the origin-duty x warm-hit grid through the proxied engine
# walk. Also deterministic for a fixed seed.
"$PROXY" --sessions=800 --json="$TMP/proxy.json" >/dev/null

# A run diffed against itself must pass at any tolerance.
python3 "$DIFF" --quiet --tolerance=0 "$TMP/coding.json" "$TMP/coding.json"
python3 "$DIFF" --quiet --tolerance=0 "$TMP/pipeline.json" "$TMP/pipeline.json"
python3 "$DIFF" --quiet --tolerance=0 "$TMP/fleet.json" "$TMP/fleet.json"
python3 "$DIFF" --quiet --tolerance=0 "$TMP/fleet_duty.json" "$TMP/fleet_duty.json"
python3 "$DIFF" --quiet --tolerance=0 "$TMP/proxy.json" "$TMP/proxy.json"

# Halve the first throughput metric: the gate must catch it.
python3 - "$TMP/coding.json" "$TMP/regressed.json" <<'EOF'
import json, sys
with open(sys.argv[1], encoding="utf-8") as f:
    run = json.load(f)
for key in sorted(run["metrics"]):
    if key.endswith(("mbps", "per_s", "per_hour")):
        run["metrics"][key] *= 0.5
        break
else:
    sys.exit("perf_smoke: no directional metric to perturb")
with open(sys.argv[2], "w", encoding="utf-8") as f:
    json.dump(run, f)
EOF
if python3 "$DIFF" --quiet "$TMP/coding.json" "$TMP/regressed.json"; then
  echo "perf_smoke: injected regression was not detected" >&2
  exit 1
fi

# Tail-aware gating: double every *_p99 session-time key while leaving the
# means untouched. The mean-only gate of old would wave this through; the
# tail gate must fail it.
python3 - "$TMP/fleet.json" "$TMP/tail_regressed.json" <<'EOF'
import json, sys
with open(sys.argv[1], encoding="utf-8") as f:
    run = json.load(f)
hit = 0
for key in run["metrics"]:
    if key.endswith("_p99"):
        run["metrics"][key] = run["metrics"][key] * 2.0 + 1.0
        hit += 1
if not hit:
    sys.exit("perf_smoke: no _p99 keys to perturb")
with open(sys.argv[2], "w", encoding="utf-8") as f:
    json.dump(run, f)
EOF
if python3 "$DIFF" --quiet "$TMP/fleet.json" "$TMP/tail_regressed.json"; then
  echo "perf_smoke: injected p99-only regression was not detected" >&2
  exit 1
fi

# Confidence half-widths are context, not gates: inflating every *_ci95 key
# must NOT fail the diff.
python3 - "$TMP/fleet.json" "$TMP/ci_inflated.json" <<'EOF'
import json, sys
with open(sys.argv[1], encoding="utf-8") as f:
    run = json.load(f)
for key in run["metrics"]:
    if key.endswith("_ci95"):
        run["metrics"][key] = run["metrics"][key] * 10.0 + 1.0
with open(sys.argv[2], "w", encoding="utf-8") as f:
    json.dump(run, f)
EOF
python3 "$DIFF" --quiet "$TMP/fleet.json" "$TMP/ci_inflated.json"

# Compatibility with pre-tail baselines: a run stripped of every tail key
# (as recorded before this gate existed) still passes against a full run —
# keys present on one side only never gate.
python3 - "$TMP/fleet.json" "$TMP/pre_tail.json" <<'EOF'
import json, sys
with open(sys.argv[1], encoding="utf-8") as f:
    run = json.load(f)
suffixes = ("_p50", "_p95", "_p99", "_p999", "_mean", "_ci95")
run["metrics"] = {k: v for k, v in run["metrics"].items()
                  if not k.endswith(suffixes)}
with open(sys.argv[2], "w", encoding="utf-8") as f:
    json.dump(run, f)
EOF
python3 "$DIFF" --quiet --tolerance=0 "$TMP/pre_tail.json" "$TMP/fleet.json"

# Baseline key compatibility (schema + key drift only, not timings).
python3 "$DIFF" --quiet --tolerance=1000 \
  "$ROOT/bench/baselines/micro_coding.json" "$TMP/coding.json"
python3 "$DIFF" --quiet --tolerance=1000 \
  "$ROOT/bench/baselines/micro_pipeline.json" "$TMP/pipeline.json"
python3 "$DIFF" --quiet --tolerance=1000 \
  "$ROOT/bench/baselines/fleet.json" "$TMP/fleet.json"
python3 "$DIFF" --quiet --tolerance=1000 \
  "$ROOT/bench/baselines/fleet_duty.json" "$TMP/fleet_duty.json"
python3 "$DIFF" --quiet --tolerance=1000 \
  "$ROOT/bench/baselines/proxy.json" "$TMP/proxy.json"

echo "perf_smoke: ok"
