// commuter_session: a full morning-commute scenario combining every part of
// the system — relevance-feedback user profiling, idle-bandwidth prefetching,
// query-aware multi-resolution fetching, and fault-tolerant transmission over
// a channel whose quality degrades as the train leaves the station.
//
// The commuter reads articles in bursts: request, read (think time), request
// again. During think time the prefetcher pulls the articles the learned
// profile predicts they will want next; when the prediction hits, the next
// article opens instantly from the cache.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/mobiweb.hpp"
#include "core/prefetch.hpp"
#include "doc/profile.hpp"

namespace doc = mobiweb::doc;

namespace {

struct Article {
  const char* url;
  const char* topic;  // what the commuter would say about it
  bool commuter_likes;
};

// A small morning-news corpus: the commuter is into distributed systems.
const Article kArticles[] = {
    {"news://consensus-protocols", "systems", true},
    {"news://cache-coherence", "systems", true},
    {"news://gossip-dissemination", "systems", true},
    {"news://erasure-coding-storage", "systems", true},
    {"news://celebrity-gossip", "fluff", false},
    {"news://horoscopes-today", "fluff", false},
    {"news://soap-opera-recap", "fluff", false},
};

std::string article_xml(const Article& article) {
  // Topic-specific vocabulary so the profile can separate interests.
  const char* systems_words[] = {"replication", "consensus", "latency",
                                 "partition", "quorum",      "cache",
                                 "gossip",     "erasure",    "coding"};
  const char* fluff_words[] = {"celebrity", "gossip", "scandal", "horoscope",
                               "romance",   "drama",  "fashion", "party",
                               "rumour"};
  const bool systems = std::string(article.topic) == "systems";
  const auto& words = systems ? systems_words : fluff_words;
  std::string xml = "<paper><title>";
  xml += article.url;
  xml += "</title>";
  unsigned stir = 0;
  for (int p = 0; p < 5; ++p) {
    xml += "<section><para>";
    for (int w = 0; w < 30; ++w) {
      xml += std::string(words[(stir = stir * 1664525u + 1013904223u) % 9]) + " ";
      xml += "word" + std::to_string(stir % 97) + " ";
    }
    xml += "</para></section>";
  }
  xml += "</paper>";
  return xml;
}

}  // namespace

int main() {
  mobiweb::Server server;
  for (const auto& article : kArticles) {
    server.publish_xml(article.url, article_xml(article));
  }

  // The channel worsens as the commute progresses.
  mobiweb::BrowseConfig cfg;
  cfg.alpha = 0.25;
  cfg.adaptive_gamma = true;  // let gamma track the channel
  cfg.seed = 20260704;
  mobiweb::BrowseSession session(server, cfg);
  mobiweb::DocumentCache cache;
  mobiweb::Prefetcher prefetcher(server, session, cache, {.min_score = 0.01});
  doc::UserProfile profile(0.35);

  std::printf("commuter_session — profile-driven prefetching demo\n");
  std::printf("channel alpha = %.2f, adaptive gamma, think time 8 s\n\n", cfg.alpha);

  std::set<std::string> visited;
  double total_wait = 0.0;
  int cache_hits = 0;

  // Reading order: alternating interests early, then mostly systems.
  const char* reading_order[] = {
      "news://consensus-protocols", "news://celebrity-gossip",
      "news://cache-coherence",     "news://gossip-dissemination",
      "news://erasure-coding-storage"};

  for (const char* url : reading_order) {
    // Think time before the next request: prefetch on the learned profile.
    if (profile.feedback_count() > 0) {
      const auto outcome = prefetcher.run_idle(profile, 8.0, visited);
      if (outcome.fetched > 0) {
        std::printf("  [idle]  prefetched %d article(s) in %.1f s of idle airtime\n",
                    outcome.fetched, outcome.airtime_used);
      }
    }

    double wait = 0.0;
    if (cache.contains(url)) {
      ++cache_hits;
      std::printf("  [read]  %-32s instant (prefetch cache hit)\n", url);
    } else {
      mobiweb::FetchOptions opts;
      opts.lod = doc::Lod::kParagraph;
      opts.rank = doc::RankBy::kIc;
      const double before = session.now();
      const auto result = session.fetch(url, opts);
      wait = session.now() - before;
      std::printf("  [read]  %-32s %.2f s (M=%zu, gamma=%.2f, %d round%s)\n", url,
                  wait, result.m, result.gamma, result.session.rounds,
                  result.session.rounds == 1 ? "" : "s");
    }
    total_wait += wait;
    visited.insert(url);

    // Relevance feedback trains the profile.
    bool liked = false;
    for (const auto& a : kArticles) {
      if (url == std::string(a.url)) liked = a.commuter_likes;
    }
    profile.observe(server.find(url)->document_terms(), liked);
  }

  std::printf("\nsession summary\n");
  std::printf("  articles read        : %zu\n", std::size(reading_order));
  std::printf("  prefetch cache hits  : %d\n", cache_hits);
  std::printf("  total waiting time   : %.2f s\n", total_wait);
  std::printf("  estimated channel a  : %.2f (adaptive gamma controller)\n",
              session.adaptive_gamma().estimated_alpha());
  std::printf("  profile top terms    : ");
  for (const auto& [term, weight] : profile.top_terms(4)) {
    std::printf("%s(%.2f) ", term.c_str(), weight);
  }
  std::printf("\n");
  return 0;
}
