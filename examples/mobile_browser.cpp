// mobile_browser: a terminal "browser" that shows what weakly-connected
// browsing feels like with fault-tolerant multi-resolution transmission.
//
// It fetches the same document over channels of worsening quality (alpha =
// 0.1 -> 0.5) and renders a live-ish transcript: which organizational units
// became readable after how many seconds of 19.2 kbps airtime, when the
// document became reconstructable, and how the cache rescued stalled rounds.
//
// Usage: mobile_browser [alpha]      (default: sweep 0.1 0.3 0.5)
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/mobiweb.hpp"

namespace doc = mobiweb::doc;

namespace {

const char* kNewsXml = R"(<?xml version="1.0"?>
<article>
  <title>Field Report: Browsing the Web from a Moving Train</title>
  <abstract>
    <para>We measure what a commuter actually experiences when loading
    technical documents over a 19.2 kbps wireless link with bursty packet
    corruption, and how content-first transmission changes it.</para>
  </abstract>
  <section>
    <title>The Problem</title>
    <para>Between stations the corruption rate of the link climbs past thirty
    percent. A conventional browser stalls: one corrupted packet anywhere in
    the page forces a full reload, and the reload fares no better.</para>
    <para>Worse, the reader cannot even tell whether the page is worth the
    wait, because the first screenful is navigation chrome with no
    content.</para>
  </section>
  <section>
    <title>Content-First Delivery</title>
    <para>Ranking organizational units by information content sends the
    substance first. After a handful of packets the reader sees the abstract
    and the key findings and can hit stop if the page is irrelevant.</para>
    <para>Redundancy packets computed over the whole page mean that any
    sufficiently large subset reconstructs it; the cache keeps every intact
    packet across retries, so repeated corruption only delays, never
    restarts.</para>
  </section>
  <section>
    <title>Findings</title>
    <para>With caching and a redundancy ratio of one point five, page load
    times grew gracefully with corruption instead of collapsing; readers
    discarded irrelevant pages after roughly a tenth of the airtime a full
    load would have cost.</para>
  </section>
</article>)";

void browse_once(const mobiweb::Server& server, double alpha) {
  std::printf("\n########  channel alpha = %.1f  ########\n", alpha);
  mobiweb::BrowseConfig cfg;
  cfg.alpha = alpha;
  cfg.caching = true;
  cfg.fixed_gamma = 1.5;
  cfg.seed = 42 + static_cast<std::uint64_t>(alpha * 10);
  mobiweb::BrowseSession session(server, cfg);

  // Map byte offsets back to unit labels for the render transcript.
  const auto* sc = server.find("doc://train-report");
  mobiweb::FetchOptions opts;
  opts.lod = doc::Lod::kParagraph;
  opts.rank = doc::RankBy::kIc;

  std::vector<doc::Segment> segments;
  {
    // Dry lookup of the segment map (same ranking the fetch will use).
    const auto lin = doc::linearize(*sc, {.lod = opts.lod, .rank = opts.rank});
    segments = lin.segments;
  }
  const std::size_t packet_size = 256;
  auto unit_for_packet = [&segments, packet_size](std::size_t raw_index) {
    const std::size_t begin = raw_index * packet_size;
    for (const auto& s : segments) {
      if (begin >= s.offset && begin < s.offset + std::max<std::size_t>(s.size, 1)) {
        return s.label;
      }
    }
    return std::string("?");
  };

  const double t0 = session.now();
  opts.render_hook = [&](std::size_t raw_index, mobiweb::ByteSpan bytes) {
    const std::string preview(bytes.begin(),
                              bytes.begin() + std::min<std::size_t>(28, bytes.size()));
    std::string clean;
    for (char c : preview) clean.push_back(c == '\n' ? ' ' : c);
    std::printf("  t=%6.2fs  unit %-6s packet %-3zu  |%s...|\n",
                session.now() - t0, unit_for_packet(raw_index).c_str(), raw_index,
                clean.c_str());
  };

  const auto result = session.fetch("doc://train-report", opts);
  std::printf("  ------\n");
  std::printf("  M=%zu raw, N=%zu cooked (gamma %.2f), %ld frames, %d round(s)\n",
              result.m, result.n, result.gamma, result.session.frames_sent,
              result.session.rounds);
  std::printf("  document %s after %.2f s of airtime\n",
              result.session.completed ? "fully reconstructed" : "NOT complete",
              result.session.response_time);
}

}  // namespace

int main(int argc, char** argv) {
  mobiweb::Server server;
  server.publish_xml("doc://train-report", kNewsXml);

  std::printf("mobile_browser — fault-tolerant multi-resolution browsing demo\n");
  std::printf("Content-first order: highest-IC paragraphs render first;\n");
  std::printf("corrupted packets are recovered from redundancy, not reloads.\n");

  if (argc > 1) {
    browse_once(server, std::atof(argv[1]));
  } else {
    for (const double alpha : {0.1, 0.3, 0.5}) browse_once(server, alpha);
  }
  return 0;
}
