// Quickstart: publish an XML document, browse it over a lossy 19.2 kbps
// wireless channel with fault-tolerant multi-resolution transmission, and
// watch organizational units render incrementally in content order.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/mobiweb.hpp"

namespace {

const char* kPaperXml = R"(<?xml version="1.0"?>
<research-paper>
  <title>On Supporting Weakly-Connected Browsing in a Mobile Web Environment</title>
  <abstract>
    <para>A mobile environment is weakly-connected, characterized by low
    communication bandwidth and poor connectivity. We propose a
    <em>fault-tolerant multi-resolution transmission</em> scheme which allows
    units of higher information content to be recovered from transmission
    error.</para>
  </abstract>
  <section>
    <title>Introduction</title>
    <para>Mobile clients navigate web documents via common browsers over
    wireless channels with limited bandwidth. Traffic generated due to web
    accesses should consume as little bandwidth as possible.</para>
    <para>A document is partitioned into multiple organizational units at
    various levels of detail according to its XML structure, and a notion of
    information content is associated with each unit.</para>
  </section>
  <section>
    <title>Fault-Tolerant Transmission</title>
    <subsection>
      <title>Encoding</title>
      <para>A document of M raw packets is transformed into N cooked packets
      such that any M of the N cooked packets reconstruct the original
      document. The first M cooked packets appear in clear text, thanks to the
      Vandermonde transformation.</para>
    </subsection>
    <subsection>
      <title>Caching</title>
      <para>A client caches the intact cooked packets received and reuses them
      when a retransmission of corrupted packets occurs, increasing the chance
      of collecting the M packets required for reconstruction.</para>
    </subsection>
  </section>
</research-paper>)";

}  // namespace

int main() {
  // 1. Server side: publish the document; the server builds its Structural
  //    Characteristic (keyword index + per-unit information content).
  mobiweb::Server server;
  server.publish_xml("doc://quickstart", kPaperXml);

  const auto* sc = server.find("doc://quickstart");
  std::printf("Structural Characteristic (IC per organizational unit)\n");
  std::printf("%-12s %-13s %8s  %s\n", "unit", "lod", "IC", "title");
  for (const auto& row : sc->rows()) {
    std::printf("%-12s %-13s %8.5f  %s\n", row.label.c_str(),
                std::string(mobiweb::doc::lod_name(row.unit->lod)).c_str(),
                row.unit->info_content, row.unit->title.c_str());
  }

  // 2. Client side: fetch over a noisy channel (30% packet corruption),
  //    ranking paragraphs by query-based information content.
  mobiweb::BrowseConfig config;
  config.alpha = 0.3;
  config.caching = true;
  mobiweb::BrowseSession session(server, config);

  mobiweb::FetchOptions fetch;
  fetch.lod = mobiweb::doc::Lod::kParagraph;
  fetch.rank = mobiweb::doc::RankBy::kQic;
  fetch.query = "fault tolerant caching";
  int rendered = 0;
  fetch.render_hook = [&rendered](std::size_t raw_index, mobiweb::ByteSpan bytes) {
    ++rendered;
    if (rendered <= 3) {
      std::string preview(bytes.begin(),
                          bytes.begin() + std::min<std::size_t>(bytes.size(), 60));
      for (auto& c : preview) {
        if (c == '\n') c = ' ';
      }
      std::printf("  [render] clear packet %-3zu \"%s...\"\n", raw_index,
                  preview.c_str());
    }
  };

  std::printf("\nFetching doc://quickstart (alpha=0.3, QIC order, paragraph LOD)\n");
  const mobiweb::FetchResult result = session.fetch("doc://quickstart", fetch);

  std::printf("\nTransfer summary\n");
  std::printf("  raw packets (M)      : %zu\n", result.m);
  std::printf("  cooked packets (N)   : %zu (gamma = %.2f)\n", result.n, result.gamma);
  std::printf("  frames sent          : %ld\n", result.session.frames_sent);
  std::printf("  rounds               : %d\n", result.session.rounds);
  std::printf("  response time        : %.2f s at 19.2 kbps\n",
              result.session.response_time);
  std::printf("  completed            : %s\n", result.session.completed ? "yes" : "no");
  std::printf("  clear packets shown  : %d\n", rendered);

  std::printf("\nFirst transmitted unit (highest QIC): %s\n",
              result.segments.front().label.c_str());
  if (!result.text.empty()) {
    std::printf("Reconstructed %zu bytes of document text.\n", result.text.size());
  }
  return 0;
}
