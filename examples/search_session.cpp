// search_session: the paper's end-to-end workflow — a keyword search over a
// small published corpus, followed by query-aware (QIC-ordered) fetching of
// the hits over a lossy channel, aborting each document as soon as enough
// query-relevant content has arrived to judge it.
//
// Compare the airtime spent against fetching every hit in full: this is the
// bandwidth the multi-resolution scheme saves a weakly-connected client.
#include <cstdio>
#include <string>
#include <vector>

#include "core/mobiweb.hpp"

namespace doc = mobiweb::doc;

namespace {

struct Page {
  const char* url;
  const char* xml;
};

const Page kCorpus[] = {
    {"doc://erasure-codes", R"(<paper>
      <title>Dispersal Codes for Unreliable Links</title>
      <section><title>Encoding</title>
        <para>Raw packets are transformed into cooked packets with a
        Vandermonde matrix over a finite field; any sufficient subset of the
        cooked packets reconstructs the original data.</para>
        <para>Making the top of the generator an identity matrix keeps the
        first packets in clear text, so receivers use them immediately.</para>
      </section>
      <section><title>Recovery</title>
        <para>Reconstruction inverts the sub-generator selected by the intact
        packet indices; with caching, intact packets persist across stalled
        rounds and retransmission only fills the gaps.</para>
      </section>
    </paper>)"},
    {"doc://profiles", R"(<paper>
      <title>Learning User Profiles for Web Filtering</title>
      <section><para>A profile captures individual interests and filters the
      flood of search results; relevance feedback adapts the profile as the
      user's interests drift over time.</para></section>
      <section><para>Recommender systems interactively suggest hyperlinks,
      refining their model whenever the advice is followed or ignored.</para>
      </section>
    </paper>)"},
    {"doc://spin-down", R"(<paper>
      <title>Adaptive Disk Spin-Down for Mobile Computers</title>
      <section><para>Spinning the disk down saves battery energy but costs
      latency on the next access; adaptive policies balance the two using
      recent access patterns.</para></section>
    </paper>)"},
    {"doc://mobile-cache", R"(<paper>
      <title>Cache Management for Mobile Databases</title>
      <section><para>Caching data items in a mobile client's local storage
      masks disconnection and reduces wireless bandwidth consumption; cached
      packets double as recovery state for interrupted transfers.</para>
      </section>
      <section><para>Invalidation reports broadcast over the air keep caches
      coherent at low cost.</para></section>
    </paper>)"},
};

}  // namespace

int main() {
  mobiweb::Server server;
  for (const auto& page : kCorpus) server.publish_xml(page.url, page.xml);

  const std::string query = "cooked packets reconstruction caching";
  std::printf("search_session — corpus of %zu documents\n",
              std::size(kCorpus));
  std::printf("query: \"%s\"\n\n", query.c_str());

  // 1. Server-side search (QIC mass ranking).
  const auto hits = server.search(query);
  std::printf("search results (%zu hits):\n", hits.size());
  for (const auto& hit : hits) {
    std::printf("  %.4f  %s\n", hit.score, hit.url.c_str());
  }

  // 2. Fetch each hit with query-aware transmission; judge at F = 0.4.
  mobiweb::BrowseConfig cfg;
  cfg.alpha = 0.25;
  cfg.caching = true;
  cfg.seed = 2026;
  mobiweb::BrowseSession session(server, cfg);

  double airtime_multires = 0.0;
  std::printf("\nbrowsing hits over alpha=0.25 channel (QIC order, F=0.4):\n");
  for (const auto& hit : hits) {
    mobiweb::FetchOptions opts;
    opts.lod = doc::Lod::kParagraph;
    opts.rank = doc::RankBy::kQic;
    opts.query = query;
    opts.relevance_threshold = 0.4;
    const auto r = session.fetch(hit.url, opts);
    airtime_multires += r.session.response_time;
    std::printf("  %-22s %5.2f s, %2ld frames -> first unit %s, %s\n",
                hit.url.c_str(),
                r.session.response_time, r.session.frames_sent,
                r.segments.front().label.c_str(),
                r.session.aborted_irrelevant ? "judged after threshold"
                                             : "downloaded fully");
  }

  // 3. Baseline: conventional full downloads in document order.
  mobiweb::BrowseSession baseline(server, cfg);
  double airtime_full = 0.0;
  for (const auto& hit : hits) {
    mobiweb::FetchOptions opts;
    opts.lod = doc::Lod::kDocument;
    opts.rank = doc::RankBy::kDocumentOrder;
    const auto r = baseline.fetch(hit.url, opts);
    airtime_full += r.session.response_time;
  }

  std::printf("\nairtime: multi-resolution with early stop %.2f s vs full "
              "download %.2f s (%.0f%% saved)\n",
              airtime_multires, airtime_full,
              100.0 * (1.0 - airtime_multires / airtime_full));
  return 0;
}
