// offline_indexer: the server-side preprocessing tool — runs the five-module
// SC pipeline (§3.3) over an XML or HTML file and dumps the Structural
// Characteristic: unit tree, keyword statistics, information content, and
// (optionally) QIC/MQIC for a query.
//
// Usage: offline_indexer [file.{xml,html}] [query words...]
// With no arguments it indexes a built-in HTML page, demonstrating the
// HTML -> organizational-unit extraction.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "doc/content.hpp"
#include "doc/recognizer.hpp"
#include "html/structurer.hpp"
#include "xml/parser.hpp"

namespace doc = mobiweb::doc;

namespace {

const char* kBuiltinHtml = R"(<html>
<head><title>Weakly-Connected Browsing: An Engineering FAQ</title></head>
<body>
<h1>Why do mobile pages stall?</h1>
<p>Wireless channels corrupt packets; one corrupted packet in a conventional
transfer forces the <b>whole document</b> to be reloaded from scratch.</p>
<p>At 19.2 kbps every retransmitted byte is felt. Bandwidth, not rendering,
dominates page load time.</p>
<h1>What does multi-resolution transmission change?</h1>
<h2>Content first</h2>
<p>Units with higher information content are transmitted earlier, so the
reader can judge relevance after a fraction of the airtime.</p>
<h2>Redundancy instead of reloads</h2>
<p>Cooked packets carry erasure-coded redundancy: any sufficient subset
reconstructs the document, and cached intact packets survive stalled
rounds.</p>
<h1>When is it worth it?</h1>
<p>Whenever corruption is nontrivial and many fetched documents turn out
irrelevant — the common case for search-driven browsing.</p>
</body>
</html>)";

bool looks_like_html(const std::string& text, const std::string& name) {
  if (name.ends_with(".html") || name.ends_with(".htm")) return true;
  if (name.ends_with(".xml")) return false;
  return text.find("<html") != std::string::npos ||
         text.find("<!DOCTYPE html") != std::string::npos ||
         text.find("<h1") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  std::string source = kBuiltinHtml;
  std::string name = "(built-in FAQ page)";
  int query_arg_start = 1;
  if (argc > 1 && std::string(argv[1]).find('.') != std::string::npos) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
    name = argv[1];
    query_arg_start = 2;
  }
  std::string query_text;
  for (int i = query_arg_start; i < argc; ++i) {
    if (!query_text.empty()) query_text += ' ';
    query_text += argv[i];
  }

  // Recognize structure (HTML heuristics or XML tags).
  doc::OrgUnit tree;
  if (looks_like_html(source, name)) {
    std::printf("indexing %s as HTML (heading-based structure extraction)\n\n",
                name.c_str());
    tree = mobiweb::html::structure_html(source);
  } else {
    std::printf("indexing %s as XML\n\n", name.c_str());
    tree = doc::recognize(mobiweb::xml::parse(source));
  }

  const doc::ScGenerator generator;
  const auto sc = generator.generate(std::move(tree));

  std::printf("document keywords: %zu distinct, %ld occurrences, norm %ld\n",
              sc.document_terms().distinct(), sc.document_terms().total(),
              sc.norm());
  std::printf("top keywords by weighted mass:\n");
  int shown = 0;
  for (const auto& [term, count] : sc.document_terms().sorted()) {
    if (++shown > 8) break;
    std::printf("  %-16s count %-3ld weight %.3f\n", term.c_str(), count,
                sc.weight(term));
  }

  std::unique_ptr<doc::ContentScorer> scorer;
  if (!query_text.empty()) {
    scorer = std::make_unique<doc::ContentScorer>(
        sc, doc::Query::from_text(query_text, generator.extractor()));
    std::printf("\nquery: \"%s\" (lambda = %.2f, %s)\n", query_text.c_str(),
                scorer->lambda(),
                scorer->query_matches() ? "matches document"
                                        : "NO querying word occurs");
  }

  std::printf("\nstructural characteristic:\n");
  std::printf("%-10s %-14s %8s", "unit", "lod", "IC");
  if (scorer) std::printf(" %8s %8s", "QIC", "MQIC");
  std::printf("  title/preview\n");
  for (const auto& row : sc.rows()) {
    std::string preview = row.unit->title;
    if (preview.empty()) {
      preview = row.unit->own_text.substr(0, 40);
      for (auto& c : preview) {
        if (c == '\n') c = ' ';
      }
      if (!preview.empty()) preview = "\"" + preview + "...\"";
    }
    std::printf("%-10s %-14s %8.5f", row.label.c_str(),
                std::string(doc::lod_name(row.unit->lod)).c_str(),
                row.unit->info_content);
    if (scorer) {
      std::printf(" %8.5f %8.5f", scorer->qic(*row.unit), scorer->mqic(*row.unit));
    }
    std::printf("  %s%s\n", row.unit->virtual_unit ? "(virtual) " : "",
                preview.c_str());
  }
  return 0;
}
