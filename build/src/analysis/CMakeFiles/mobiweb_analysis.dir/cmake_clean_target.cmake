file(REMOVE_RECURSE
  "libmobiweb_analysis.a"
)
