file(REMOVE_RECURSE
  "CMakeFiles/mobiweb_analysis.dir/negbinom.cpp.o"
  "CMakeFiles/mobiweb_analysis.dir/negbinom.cpp.o.d"
  "libmobiweb_analysis.a"
  "libmobiweb_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiweb_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
