# Empty dependencies file for mobiweb_analysis.
# This may be replaced when dependencies are built.
