file(REMOVE_RECURSE
  "libmobiweb_broadcast.a"
)
