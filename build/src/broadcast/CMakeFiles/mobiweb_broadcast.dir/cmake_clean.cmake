file(REMOVE_RECURSE
  "CMakeFiles/mobiweb_broadcast.dir/broadcast.cpp.o"
  "CMakeFiles/mobiweb_broadcast.dir/broadcast.cpp.o.d"
  "libmobiweb_broadcast.a"
  "libmobiweb_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiweb_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
