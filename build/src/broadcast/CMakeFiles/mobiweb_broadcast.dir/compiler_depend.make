# Empty compiler generated dependencies file for mobiweb_broadcast.
# This may be replaced when dependencies are built.
