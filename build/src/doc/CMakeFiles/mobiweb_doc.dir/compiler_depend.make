# Empty compiler generated dependencies file for mobiweb_doc.
# This may be replaced when dependencies are built.
