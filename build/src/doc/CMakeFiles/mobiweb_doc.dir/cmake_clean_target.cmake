file(REMOVE_RECURSE
  "libmobiweb_doc.a"
)
