
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doc/content.cpp" "src/doc/CMakeFiles/mobiweb_doc.dir/content.cpp.o" "gcc" "src/doc/CMakeFiles/mobiweb_doc.dir/content.cpp.o.d"
  "/root/repo/src/doc/content_alt.cpp" "src/doc/CMakeFiles/mobiweb_doc.dir/content_alt.cpp.o" "gcc" "src/doc/CMakeFiles/mobiweb_doc.dir/content_alt.cpp.o.d"
  "/root/repo/src/doc/linear.cpp" "src/doc/CMakeFiles/mobiweb_doc.dir/linear.cpp.o" "gcc" "src/doc/CMakeFiles/mobiweb_doc.dir/linear.cpp.o.d"
  "/root/repo/src/doc/lod.cpp" "src/doc/CMakeFiles/mobiweb_doc.dir/lod.cpp.o" "gcc" "src/doc/CMakeFiles/mobiweb_doc.dir/lod.cpp.o.d"
  "/root/repo/src/doc/profile.cpp" "src/doc/CMakeFiles/mobiweb_doc.dir/profile.cpp.o" "gcc" "src/doc/CMakeFiles/mobiweb_doc.dir/profile.cpp.o.d"
  "/root/repo/src/doc/recognizer.cpp" "src/doc/CMakeFiles/mobiweb_doc.dir/recognizer.cpp.o" "gcc" "src/doc/CMakeFiles/mobiweb_doc.dir/recognizer.cpp.o.d"
  "/root/repo/src/doc/sc_io.cpp" "src/doc/CMakeFiles/mobiweb_doc.dir/sc_io.cpp.o" "gcc" "src/doc/CMakeFiles/mobiweb_doc.dir/sc_io.cpp.o.d"
  "/root/repo/src/doc/unit.cpp" "src/doc/CMakeFiles/mobiweb_doc.dir/unit.cpp.o" "gcc" "src/doc/CMakeFiles/mobiweb_doc.dir/unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/mobiweb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mobiweb_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mobiweb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
