file(REMOVE_RECURSE
  "CMakeFiles/mobiweb_doc.dir/content.cpp.o"
  "CMakeFiles/mobiweb_doc.dir/content.cpp.o.d"
  "CMakeFiles/mobiweb_doc.dir/content_alt.cpp.o"
  "CMakeFiles/mobiweb_doc.dir/content_alt.cpp.o.d"
  "CMakeFiles/mobiweb_doc.dir/linear.cpp.o"
  "CMakeFiles/mobiweb_doc.dir/linear.cpp.o.d"
  "CMakeFiles/mobiweb_doc.dir/lod.cpp.o"
  "CMakeFiles/mobiweb_doc.dir/lod.cpp.o.d"
  "CMakeFiles/mobiweb_doc.dir/profile.cpp.o"
  "CMakeFiles/mobiweb_doc.dir/profile.cpp.o.d"
  "CMakeFiles/mobiweb_doc.dir/recognizer.cpp.o"
  "CMakeFiles/mobiweb_doc.dir/recognizer.cpp.o.d"
  "CMakeFiles/mobiweb_doc.dir/sc_io.cpp.o"
  "CMakeFiles/mobiweb_doc.dir/sc_io.cpp.o.d"
  "CMakeFiles/mobiweb_doc.dir/unit.cpp.o"
  "CMakeFiles/mobiweb_doc.dir/unit.cpp.o.d"
  "libmobiweb_doc.a"
  "libmobiweb_doc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiweb_doc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
