# Empty compiler generated dependencies file for mobiweb_sim.
# This may be replaced when dependencies are built.
