file(REMOVE_RECURSE
  "CMakeFiles/mobiweb_sim.dir/experiment.cpp.o"
  "CMakeFiles/mobiweb_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/mobiweb_sim.dir/synthetic.cpp.o"
  "CMakeFiles/mobiweb_sim.dir/synthetic.cpp.o.d"
  "CMakeFiles/mobiweb_sim.dir/transfer.cpp.o"
  "CMakeFiles/mobiweb_sim.dir/transfer.cpp.o.d"
  "libmobiweb_sim.a"
  "libmobiweb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiweb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
