file(REMOVE_RECURSE
  "libmobiweb_sim.a"
)
