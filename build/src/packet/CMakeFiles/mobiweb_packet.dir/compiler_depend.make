# Empty compiler generated dependencies file for mobiweb_packet.
# This may be replaced when dependencies are built.
