file(REMOVE_RECURSE
  "libmobiweb_packet.a"
)
