file(REMOVE_RECURSE
  "CMakeFiles/mobiweb_packet.dir/packet.cpp.o"
  "CMakeFiles/mobiweb_packet.dir/packet.cpp.o.d"
  "libmobiweb_packet.a"
  "libmobiweb_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiweb_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
