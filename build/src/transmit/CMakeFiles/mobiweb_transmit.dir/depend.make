# Empty dependencies file for mobiweb_transmit.
# This may be replaced when dependencies are built.
