file(REMOVE_RECURSE
  "libmobiweb_transmit.a"
)
