file(REMOVE_RECURSE
  "CMakeFiles/mobiweb_transmit.dir/adaptive.cpp.o"
  "CMakeFiles/mobiweb_transmit.dir/adaptive.cpp.o.d"
  "CMakeFiles/mobiweb_transmit.dir/arq.cpp.o"
  "CMakeFiles/mobiweb_transmit.dir/arq.cpp.o.d"
  "CMakeFiles/mobiweb_transmit.dir/receiver.cpp.o"
  "CMakeFiles/mobiweb_transmit.dir/receiver.cpp.o.d"
  "CMakeFiles/mobiweb_transmit.dir/session.cpp.o"
  "CMakeFiles/mobiweb_transmit.dir/session.cpp.o.d"
  "CMakeFiles/mobiweb_transmit.dir/transmitter.cpp.o"
  "CMakeFiles/mobiweb_transmit.dir/transmitter.cpp.o.d"
  "libmobiweb_transmit.a"
  "libmobiweb_transmit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiweb_transmit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
