# Empty dependencies file for mobiweb_util.
# This may be replaced when dependencies are built.
