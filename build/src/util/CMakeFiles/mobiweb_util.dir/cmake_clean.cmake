file(REMOVE_RECURSE
  "CMakeFiles/mobiweb_util.dir/bytes.cpp.o"
  "CMakeFiles/mobiweb_util.dir/bytes.cpp.o.d"
  "CMakeFiles/mobiweb_util.dir/crc.cpp.o"
  "CMakeFiles/mobiweb_util.dir/crc.cpp.o.d"
  "CMakeFiles/mobiweb_util.dir/lzss.cpp.o"
  "CMakeFiles/mobiweb_util.dir/lzss.cpp.o.d"
  "CMakeFiles/mobiweb_util.dir/stats.cpp.o"
  "CMakeFiles/mobiweb_util.dir/stats.cpp.o.d"
  "CMakeFiles/mobiweb_util.dir/table.cpp.o"
  "CMakeFiles/mobiweb_util.dir/table.cpp.o.d"
  "libmobiweb_util.a"
  "libmobiweb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiweb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
