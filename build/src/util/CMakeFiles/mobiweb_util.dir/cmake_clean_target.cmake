file(REMOVE_RECURSE
  "libmobiweb_util.a"
)
