file(REMOVE_RECURSE
  "CMakeFiles/mobiweb_ida.dir/ida.cpp.o"
  "CMakeFiles/mobiweb_ida.dir/ida.cpp.o.d"
  "libmobiweb_ida.a"
  "libmobiweb_ida.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiweb_ida.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
