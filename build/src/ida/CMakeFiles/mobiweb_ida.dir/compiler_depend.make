# Empty compiler generated dependencies file for mobiweb_ida.
# This may be replaced when dependencies are built.
