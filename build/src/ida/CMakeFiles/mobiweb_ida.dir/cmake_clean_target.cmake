file(REMOVE_RECURSE
  "libmobiweb_ida.a"
)
