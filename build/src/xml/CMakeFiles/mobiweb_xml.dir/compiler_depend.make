# Empty compiler generated dependencies file for mobiweb_xml.
# This may be replaced when dependencies are built.
