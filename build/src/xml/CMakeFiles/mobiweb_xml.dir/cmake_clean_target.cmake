file(REMOVE_RECURSE
  "libmobiweb_xml.a"
)
