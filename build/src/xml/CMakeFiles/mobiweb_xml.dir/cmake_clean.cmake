file(REMOVE_RECURSE
  "CMakeFiles/mobiweb_xml.dir/dom.cpp.o"
  "CMakeFiles/mobiweb_xml.dir/dom.cpp.o.d"
  "CMakeFiles/mobiweb_xml.dir/dtd.cpp.o"
  "CMakeFiles/mobiweb_xml.dir/dtd.cpp.o.d"
  "CMakeFiles/mobiweb_xml.dir/parser.cpp.o"
  "CMakeFiles/mobiweb_xml.dir/parser.cpp.o.d"
  "CMakeFiles/mobiweb_xml.dir/serialize.cpp.o"
  "CMakeFiles/mobiweb_xml.dir/serialize.cpp.o.d"
  "libmobiweb_xml.a"
  "libmobiweb_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiweb_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
