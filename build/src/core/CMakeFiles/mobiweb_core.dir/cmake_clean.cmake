file(REMOVE_RECURSE
  "CMakeFiles/mobiweb_core.dir/mobiweb.cpp.o"
  "CMakeFiles/mobiweb_core.dir/mobiweb.cpp.o.d"
  "CMakeFiles/mobiweb_core.dir/prefetch.cpp.o"
  "CMakeFiles/mobiweb_core.dir/prefetch.cpp.o.d"
  "libmobiweb_core.a"
  "libmobiweb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiweb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
