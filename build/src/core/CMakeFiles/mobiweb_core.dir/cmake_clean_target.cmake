file(REMOVE_RECURSE
  "libmobiweb_core.a"
)
