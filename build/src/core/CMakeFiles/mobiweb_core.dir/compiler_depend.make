# Empty compiler generated dependencies file for mobiweb_core.
# This may be replaced when dependencies are built.
