file(REMOVE_RECURSE
  "libmobiweb_gf256.a"
)
