# Empty dependencies file for mobiweb_gf256.
# This may be replaced when dependencies are built.
