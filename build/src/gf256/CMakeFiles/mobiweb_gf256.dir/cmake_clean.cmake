file(REMOVE_RECURSE
  "CMakeFiles/mobiweb_gf256.dir/gf256.cpp.o"
  "CMakeFiles/mobiweb_gf256.dir/gf256.cpp.o.d"
  "CMakeFiles/mobiweb_gf256.dir/matrix.cpp.o"
  "CMakeFiles/mobiweb_gf256.dir/matrix.cpp.o.d"
  "libmobiweb_gf256.a"
  "libmobiweb_gf256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiweb_gf256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
