file(REMOVE_RECURSE
  "CMakeFiles/mobiweb_text.dir/keywords.cpp.o"
  "CMakeFiles/mobiweb_text.dir/keywords.cpp.o.d"
  "CMakeFiles/mobiweb_text.dir/porter.cpp.o"
  "CMakeFiles/mobiweb_text.dir/porter.cpp.o.d"
  "CMakeFiles/mobiweb_text.dir/stopwords.cpp.o"
  "CMakeFiles/mobiweb_text.dir/stopwords.cpp.o.d"
  "CMakeFiles/mobiweb_text.dir/tokenize.cpp.o"
  "CMakeFiles/mobiweb_text.dir/tokenize.cpp.o.d"
  "libmobiweb_text.a"
  "libmobiweb_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiweb_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
