# Empty compiler generated dependencies file for mobiweb_text.
# This may be replaced when dependencies are built.
