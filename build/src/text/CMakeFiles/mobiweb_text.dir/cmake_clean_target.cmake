file(REMOVE_RECURSE
  "libmobiweb_text.a"
)
