file(REMOVE_RECURSE
  "CMakeFiles/mobiweb_html.dir/structurer.cpp.o"
  "CMakeFiles/mobiweb_html.dir/structurer.cpp.o.d"
  "CMakeFiles/mobiweb_html.dir/tokenizer.cpp.o"
  "CMakeFiles/mobiweb_html.dir/tokenizer.cpp.o.d"
  "libmobiweb_html.a"
  "libmobiweb_html.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiweb_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
