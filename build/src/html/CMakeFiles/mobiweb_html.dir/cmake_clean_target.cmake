file(REMOVE_RECURSE
  "libmobiweb_html.a"
)
