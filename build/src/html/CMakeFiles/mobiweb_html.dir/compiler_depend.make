# Empty compiler generated dependencies file for mobiweb_html.
# This may be replaced when dependencies are built.
