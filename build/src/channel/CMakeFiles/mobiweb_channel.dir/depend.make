# Empty dependencies file for mobiweb_channel.
# This may be replaced when dependencies are built.
