file(REMOVE_RECURSE
  "libmobiweb_channel.a"
)
