file(REMOVE_RECURSE
  "CMakeFiles/mobiweb_channel.dir/channel.cpp.o"
  "CMakeFiles/mobiweb_channel.dir/channel.cpp.o.d"
  "CMakeFiles/mobiweb_channel.dir/error_model.cpp.o"
  "CMakeFiles/mobiweb_channel.dir/error_model.cpp.o.d"
  "libmobiweb_channel.a"
  "libmobiweb_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiweb_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
