
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_coding.cpp" "bench/CMakeFiles/bench_micro_coding.dir/bench_micro_coding.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_coding.dir/bench_micro_coding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mobiweb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mobiweb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mobiweb_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/transmit/CMakeFiles/mobiweb_transmit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mobiweb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ida/CMakeFiles/mobiweb_ida.dir/DependInfo.cmake"
  "/root/repo/build/src/gf256/CMakeFiles/mobiweb_gf256.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/mobiweb_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/mobiweb_html.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/mobiweb_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/mobiweb_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mobiweb_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/mobiweb_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
