# Empty compiler generated dependencies file for bench_micro_coding.
# This may be replaced when dependencies are built.
