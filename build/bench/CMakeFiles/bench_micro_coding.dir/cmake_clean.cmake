file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_coding.dir/bench_micro_coding.cpp.o"
  "CMakeFiles/bench_micro_coding.dir/bench_micro_coding.cpp.o.d"
  "bench_micro_coding"
  "bench_micro_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
