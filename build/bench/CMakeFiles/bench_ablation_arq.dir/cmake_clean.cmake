file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_arq.dir/bench_ablation_arq.cpp.o"
  "CMakeFiles/bench_ablation_arq.dir/bench_ablation_arq.cpp.o.d"
  "bench_ablation_arq"
  "bench_ablation_arq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_arq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
