# Empty compiler generated dependencies file for bench_ablation_arq.
# This may be replaced when dependencies are built.
