file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_packetsize.dir/bench_ablation_packetsize.cpp.o"
  "CMakeFiles/bench_ablation_packetsize.dir/bench_ablation_packetsize.cpp.o.d"
  "bench_ablation_packetsize"
  "bench_ablation_packetsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_packetsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
