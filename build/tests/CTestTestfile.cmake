# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_gf256[1]_include.cmake")
include("/root/repo/build/tests/test_ida[1]_include.cmake")
include("/root/repo/build/tests/test_xml[1]_include.cmake")
include("/root/repo/build/tests/test_text[1]_include.cmake")
include("/root/repo/build/tests/test_doc[1]_include.cmake")
include("/root/repo/build/tests/test_html[1]_include.cmake")
include("/root/repo/build/tests/test_packet[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_transmit[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_lzss[1]_include.cmake")
include("/root/repo/build/tests/test_dtd[1]_include.cmake")
include("/root/repo/build/tests/test_arq[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
include("/root/repo/build/tests/test_sc_io[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_paper_data[1]_include.cmake")
include("/root/repo/build/tests/test_broadcast[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_reproduction[1]_include.cmake")
include("/root/repo/build/tests/test_content_alt[1]_include.cmake")
