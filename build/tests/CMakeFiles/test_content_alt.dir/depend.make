# Empty dependencies file for test_content_alt.
# This may be replaced when dependencies are built.
