file(REMOVE_RECURSE
  "CMakeFiles/test_content_alt.dir/test_content_alt.cpp.o"
  "CMakeFiles/test_content_alt.dir/test_content_alt.cpp.o.d"
  "test_content_alt"
  "test_content_alt.pdb"
  "test_content_alt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_content_alt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
