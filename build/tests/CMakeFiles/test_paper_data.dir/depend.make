# Empty dependencies file for test_paper_data.
# This may be replaced when dependencies are built.
