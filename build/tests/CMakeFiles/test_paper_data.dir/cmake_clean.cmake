file(REMOVE_RECURSE
  "CMakeFiles/test_paper_data.dir/test_paper_data.cpp.o"
  "CMakeFiles/test_paper_data.dir/test_paper_data.cpp.o.d"
  "test_paper_data"
  "test_paper_data.pdb"
  "test_paper_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
