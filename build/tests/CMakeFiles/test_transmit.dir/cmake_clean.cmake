file(REMOVE_RECURSE
  "CMakeFiles/test_transmit.dir/test_transmit.cpp.o"
  "CMakeFiles/test_transmit.dir/test_transmit.cpp.o.d"
  "test_transmit"
  "test_transmit.pdb"
  "test_transmit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transmit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
