# Empty dependencies file for test_transmit.
# This may be replaced when dependencies are built.
