# Empty dependencies file for test_doc.
# This may be replaced when dependencies are built.
