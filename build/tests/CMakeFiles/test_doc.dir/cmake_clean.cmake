file(REMOVE_RECURSE
  "CMakeFiles/test_doc.dir/test_doc.cpp.o"
  "CMakeFiles/test_doc.dir/test_doc.cpp.o.d"
  "test_doc"
  "test_doc.pdb"
  "test_doc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_doc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
