# Empty compiler generated dependencies file for test_ida.
# This may be replaced when dependencies are built.
