file(REMOVE_RECURSE
  "CMakeFiles/test_ida.dir/test_ida.cpp.o"
  "CMakeFiles/test_ida.dir/test_ida.cpp.o.d"
  "test_ida"
  "test_ida.pdb"
  "test_ida[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ida.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
