
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ida.cpp" "tests/CMakeFiles/test_ida.dir/test_ida.cpp.o" "gcc" "tests/CMakeFiles/test_ida.dir/test_ida.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ida/CMakeFiles/mobiweb_ida.dir/DependInfo.cmake"
  "/root/repo/build/src/gf256/CMakeFiles/mobiweb_gf256.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mobiweb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
