# Empty dependencies file for test_sc_io.
# This may be replaced when dependencies are built.
