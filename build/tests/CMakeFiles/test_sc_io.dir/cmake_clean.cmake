file(REMOVE_RECURSE
  "CMakeFiles/test_sc_io.dir/test_sc_io.cpp.o"
  "CMakeFiles/test_sc_io.dir/test_sc_io.cpp.o.d"
  "test_sc_io"
  "test_sc_io.pdb"
  "test_sc_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
