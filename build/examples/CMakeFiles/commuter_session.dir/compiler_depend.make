# Empty compiler generated dependencies file for commuter_session.
# This may be replaced when dependencies are built.
