file(REMOVE_RECURSE
  "CMakeFiles/commuter_session.dir/commuter_session.cpp.o"
  "CMakeFiles/commuter_session.dir/commuter_session.cpp.o.d"
  "commuter_session"
  "commuter_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commuter_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
