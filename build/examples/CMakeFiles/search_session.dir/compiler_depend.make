# Empty compiler generated dependencies file for search_session.
# This may be replaced when dependencies are built.
