file(REMOVE_RECURSE
  "CMakeFiles/search_session.dir/search_session.cpp.o"
  "CMakeFiles/search_session.dir/search_session.cpp.o.d"
  "search_session"
  "search_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
