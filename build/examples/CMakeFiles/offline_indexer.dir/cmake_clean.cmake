file(REMOVE_RECURSE
  "CMakeFiles/offline_indexer.dir/offline_indexer.cpp.o"
  "CMakeFiles/offline_indexer.dir/offline_indexer.cpp.o.d"
  "offline_indexer"
  "offline_indexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_indexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
