# Empty compiler generated dependencies file for offline_indexer.
# This may be replaced when dependencies are built.
