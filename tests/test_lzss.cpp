// LZSS compression round trips and robustness.
#include <gtest/gtest.h>

#include <string>

#include "util/lzss.hpp"
#include "util/rng.hpp"

using mobiweb::Bytes;
using mobiweb::ByteSpan;
using mobiweb::Rng;

namespace {
Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }
}  // namespace

TEST(Lzss, EmptyInput) {
  const Bytes empty;
  const Bytes compressed = mobiweb::lzss_compress(ByteSpan(empty));
  EXPECT_EQ(mobiweb::lzss_decompress(ByteSpan(compressed)), empty);
}

TEST(Lzss, TinyInputs) {
  for (const std::string s : {"a", "ab", "abc", "aaaa", "abcabcabc"}) {
    const Bytes in = bytes_of(s);
    const Bytes out = mobiweb::lzss_decompress(
        ByteSpan(mobiweb::lzss_compress(ByteSpan(in))));
    EXPECT_EQ(out, in) << s;
  }
}

TEST(Lzss, CompressesRepetitiveText) {
  std::string s;
  for (int i = 0; i < 200; ++i) s += "the mobile web is weakly connected; ";
  const Bytes in = bytes_of(s);
  const Bytes compressed = mobiweb::lzss_compress(ByteSpan(in));
  EXPECT_LT(compressed.size(), in.size() / 3);
  EXPECT_EQ(mobiweb::lzss_decompress(ByteSpan(compressed)), in);
}

TEST(Lzss, IncompressibleDataBoundedExpansion) {
  Rng rng(80);
  Bytes in(4096);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next_below(256));
  const Bytes compressed = mobiweb::lzss_compress(ByteSpan(in));
  // Worst case: header + input + one flag byte per 8 literals.
  EXPECT_LE(compressed.size(), 4 + in.size() + in.size() / 8 + 1);
  EXPECT_EQ(mobiweb::lzss_decompress(ByteSpan(compressed)), in);
}

TEST(Lzss, LongRunsOfOneByte) {
  const Bytes in(100000, 0x41);
  const Bytes compressed = mobiweb::lzss_compress(ByteSpan(in));
  EXPECT_LT(compressed.size(), in.size() / 5);
  EXPECT_EQ(mobiweb::lzss_decompress(ByteSpan(compressed)), in);
}

TEST(Lzss, OverlappingMatchSemantics) {
  // "aaaaa..." forces matches whose source overlaps the output being built.
  const Bytes in = bytes_of("abababababababababababab");
  EXPECT_EQ(mobiweb::lzss_decompress(ByteSpan(mobiweb::lzss_compress(ByteSpan(in)))),
            in);
}

TEST(Lzss, TruncatedInputRejected) {
  const Bytes in = bytes_of("some reasonably long text to compress compress");
  const Bytes compressed = mobiweb::lzss_compress(ByteSpan(in));
  for (const std::size_t keep : {0u, 2u, 4u, 6u}) {
    const Bytes cut(compressed.begin(),
                    compressed.begin() + static_cast<std::ptrdiff_t>(
                                             std::min(keep, compressed.size())));
    EXPECT_THROW(mobiweb::lzss_decompress(ByteSpan(cut)), std::invalid_argument);
  }
}

TEST(Lzss, BadBackReferenceRejected) {
  // Hand-build: raw_size 4, one match token referencing before the start.
  Bytes bad;
  mobiweb::put_u32(bad, 4);
  bad.push_back(0x01);  // flags: token 0 is a match
  bad.push_back(0xff);  // distance low
  bad.push_back(0x0f);  // distance high (dist = 4096), length = 3
  EXPECT_THROW(mobiweb::lzss_decompress(ByteSpan(bad)), std::invalid_argument);
}

class LzssRandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LzssRandomRoundTrip, MixedContent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Mix of random and repeated chunks, random sizes.
  Bytes in;
  const std::size_t target = 1 + rng.next_below(30000);
  while (in.size() < target) {
    if (rng.next_bernoulli(0.5) && !in.empty()) {
      // Repeat an earlier slice.
      const std::size_t start = rng.next_below(in.size());
      const std::size_t len = 1 + rng.next_below(64);
      for (std::size_t i = 0; i < len; ++i) {
        in.push_back(in[start + (i % (in.size() - start))]);
      }
    } else {
      const std::size_t len = 1 + rng.next_below(64);
      for (std::size_t i = 0; i < len; ++i) {
        in.push_back(static_cast<std::uint8_t>(rng.next_below(8) * 31));
      }
    }
  }
  const Bytes compressed = mobiweb::lzss_compress(ByteSpan(in));
  EXPECT_EQ(mobiweb::lzss_decompress(ByteSpan(compressed)), in);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzssRandomRoundTrip, ::testing::Range(1, 13));

TEST(LzssHardening, ForgedRawSizeRejectedBeforeAllocation) {
  // An attacker-controlled header claiming a ~4GB payload must be rejected by
  // the max-expansion bound (each stream byte yields at most 18 output
  // bytes), not die trying to reserve the claimed size.
  Bytes compressed = mobiweb::lzss_compress(ByteSpan(bytes_of("abcabcabc")));
  compressed[0] = 0xff;
  compressed[1] = 0xff;
  compressed[2] = 0xff;
  compressed[3] = 0xff;
  EXPECT_THROW(mobiweb::lzss_decompress(ByteSpan(compressed)),
               std::invalid_argument);
}

TEST(LzssHardening, PlausibleOverstatedRawSizeStillRejected) {
  // raw_size within the expansion bound but not matching the stream is caught
  // by the final length check rather than producing short output silently.
  Bytes compressed = mobiweb::lzss_compress(ByteSpan(bytes_of("hello")));
  compressed[0] = static_cast<std::uint8_t>(compressed[0] + 1);
  EXPECT_THROW(mobiweb::lzss_decompress(ByteSpan(compressed)),
               std::invalid_argument);
}
