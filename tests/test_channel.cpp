// Wireless channel and error models.
#include <gtest/gtest.h>

#include "channel/channel.hpp"
#include "channel/error_model.hpp"
#include "obs/metrics.hpp"
#include "packet/packet.hpp"

namespace channel = mobiweb::channel;
namespace packet = mobiweb::packet;
using mobiweb::Bytes;
using mobiweb::ByteSpan;
using mobiweb::ContractViolation;
using mobiweb::Rng;

TEST(IidModel, RateMatchesAlpha) {
  channel::IidErrorModel model(0.3);
  Rng rng(40);
  int corrupted = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) corrupted += model.next_corrupted(rng);
  EXPECT_NEAR(static_cast<double>(corrupted) / trials, 0.3, 0.01);
  EXPECT_DOUBLE_EQ(model.steady_state_rate(), 0.3);
}

TEST(IidModel, RejectsBadAlpha) {
  EXPECT_THROW(channel::IidErrorModel(-0.1), ContractViolation);
  EXPECT_THROW(channel::IidErrorModel(1.0), ContractViolation);
  EXPECT_NO_THROW(channel::IidErrorModel(0.0));
}

TEST(GilbertElliott, SteadyStateRate) {
  // pi_bad = 0.1/(0.1+0.4) = 0.2; rate = 0.8*0 + 0.2*1 = 0.2.
  channel::GilbertElliottModel model(0.1, 0.4, 0.0, 1.0);
  EXPECT_NEAR(model.steady_state_rate(), 0.2, 1e-12);
}

TEST(GilbertElliott, EmpiricalRateMatchesSteadyState) {
  auto model = channel::GilbertElliottModel::with_average_rate(0.25, 8.0);
  EXPECT_NEAR(model.steady_state_rate(), 0.25, 1e-9);
  Rng rng(41);
  long corrupted = 0;
  const long trials = 400000;
  for (long i = 0; i < trials; ++i) corrupted += model.next_corrupted(rng);
  EXPECT_NEAR(static_cast<double>(corrupted) / static_cast<double>(trials), 0.25,
              0.01);
}

TEST(GilbertElliott, ProducesBursts) {
  // Compare run-length statistics against iid at the same average rate: the
  // GE channel must show longer corruption bursts.
  const double alpha = 0.2;
  auto ge = channel::GilbertElliottModel::with_average_rate(alpha, 10.0);
  channel::IidErrorModel iid(alpha);
  Rng rng_a(42);
  Rng rng_b(43);

  auto mean_run = [](channel::ErrorModel& m, Rng& rng) {
    long runs = 0;
    long corrupted = 0;
    bool prev = false;
    for (int i = 0; i < 200000; ++i) {
      const bool c = m.next_corrupted(rng);
      corrupted += c;
      if (c && !prev) ++runs;
      prev = c;
    }
    return runs > 0 ? static_cast<double>(corrupted) / static_cast<double>(runs)
                    : 0.0;
  };
  const double ge_run = mean_run(ge, rng_a);
  const double iid_run = mean_run(iid, rng_b);
  EXPECT_GT(ge_run, 2.0 * iid_run);
}

TEST(GilbertElliott, ResetReturnsToGoodState) {
  channel::GilbertElliottModel model(1.0, 0.01, 0.0, 1.0);
  Rng rng(44);
  model.next_corrupted(rng);  // forces a transition to bad
  EXPECT_TRUE(model.in_bad_state());
  model.reset();
  EXPECT_FALSE(model.in_bad_state());
}

TEST(Channel, TransmitTimeMatchesBandwidth) {
  channel::ChannelConfig cfg;
  cfg.bandwidth_bps = 19200.0;
  channel::WirelessChannel ch(cfg, std::make_unique<channel::IidErrorModel>(0.0));
  // 260 bytes at 19.2 kbps: the paper's per-cooked-packet time.
  EXPECT_NEAR(ch.transmit_time(260), 260.0 * 8.0 / 19200.0, 1e-12);
}

TEST(Channel, ClockAdvancesPerFrame) {
  channel::ChannelConfig cfg;
  cfg.bandwidth_bps = 19200.0;
  channel::WirelessChannel ch(cfg, std::make_unique<channel::IidErrorModel>(0.0));
  const Bytes frame(260, 0x11);
  EXPECT_EQ(ch.now(), 0.0);
  ch.send(ByteSpan(frame));
  ch.send(ByteSpan(frame));
  EXPECT_NEAR(ch.now(), 2 * 260.0 * 8.0 / 19200.0, 1e-12);
  ch.advance(1.0);
  EXPECT_NEAR(ch.now(), 1.0 + 2 * 260.0 * 8.0 / 19200.0, 1e-12);
}

TEST(Channel, CleanChannelDeliversIntact) {
  channel::ChannelConfig cfg;
  channel::WirelessChannel ch(cfg, std::make_unique<channel::IidErrorModel>(0.0));
  const Bytes frame = packet::encode({.doc_id = 1, .seq = 0, .total = 1,
                                      .flags = 0, .payload = Bytes(64, 0x5a)});
  for (int i = 0; i < 100; ++i) {
    const auto d = ch.send(ByteSpan(frame));
    EXPECT_FALSE(d.corrupted);
    EXPECT_EQ(d.frame, frame);
    EXPECT_TRUE(packet::decode(ByteSpan(d.frame)).has_value());
  }
  EXPECT_EQ(ch.stats().frames_corrupted, 0);
  EXPECT_EQ(ch.stats().frames_sent, 100);
}

TEST(Channel, CorruptionFlipsBytesAndCrcCatchesIt) {
  channel::ChannelConfig cfg;
  channel::WirelessChannel ch(cfg, std::make_unique<channel::IidErrorModel>(1.0 - 1e-9));
  const Bytes frame = packet::encode({.doc_id = 1, .seq = 0, .total = 1,
                                      .flags = 0, .payload = Bytes(256, 0x5a)});
  int delivered_intact = 0;
  for (int i = 0; i < 200; ++i) {
    const auto d = ch.send(ByteSpan(frame));
    ASSERT_TRUE(d.corrupted);
    EXPECT_NE(d.frame, frame);
    delivered_intact += packet::decode(ByteSpan(d.frame)).has_value();
  }
  EXPECT_EQ(delivered_intact, 0);
}

TEST(Channel, CorruptedDeliveriesAlwaysFailDecode) {
  // Regression: corruption used to draw byte positions with replacement, so
  // two flips could land on the same byte with the same mask and cancel out —
  // a frame counted as corrupted would then sail through packet::decode. The
  // small frame (64 bytes -> two flips) maximises the collision odds; sweep
  // enough seeded frames that the old code reliably produced at least one.
  const Bytes frame = packet::encode({.doc_id = 1, .seq = 0, .total = 1,
                                      .flags = 0, .payload = Bytes(52, 0x5a)});
  ASSERT_EQ(frame.size(), 64u);
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    channel::ChannelConfig cfg;
    cfg.seed = seed;
    channel::WirelessChannel ch(
        cfg, std::make_unique<channel::IidErrorModel>(1.0 - 1e-9));
    for (int i = 0; i < 1000; ++i) {
      const auto d = ch.send(ByteSpan(frame));
      ASSERT_TRUE(d.corrupted);
      ASSERT_NE(d.frame, frame) << "seed=" << seed << " frame=" << i;
      ASSERT_FALSE(packet::decode(ByteSpan(d.frame)).has_value())
          << "seed=" << seed << " frame=" << i;
    }
  }
}

TEST(Channel, MetricsCountersTrackStats) {
  mobiweb::obs::MetricsRegistry registry;
  channel::ChannelConfig cfg;
  cfg.seed = 17;
  channel::WirelessChannel ch(cfg, std::make_unique<channel::IidErrorModel>(0.5));
  const Bytes frame(100, 0x22);
  ch.set_metrics(&registry);
  for (int i = 0; i < 64; ++i) ch.send(ByteSpan(frame));
  EXPECT_EQ(registry.counter("channel.frames_sent").value(), 64);
  EXPECT_EQ(registry.counter("channel.frames_corrupted").value(),
            ch.stats().frames_corrupted);
  EXPECT_EQ(registry.counter("channel.bytes_sent").value(), 6400);
  // Detach: the channel keeps counting its own stats but the registry stops.
  ch.set_metrics(nullptr);
  ch.send(ByteSpan(frame));
  EXPECT_EQ(registry.counter("channel.frames_sent").value(), 64);
  EXPECT_EQ(ch.stats().frames_sent, 65);
}

TEST(Channel, ObservedRateTracksAlpha) {
  channel::ChannelConfig cfg;
  cfg.seed = 99;
  channel::WirelessChannel ch(cfg, std::make_unique<channel::IidErrorModel>(0.4));
  const Bytes frame(64, 1);
  for (int i = 0; i < 20000; ++i) ch.send(ByteSpan(frame));
  EXPECT_NEAR(ch.stats().observed_corruption_rate(), 0.4, 0.02);
}

TEST(Channel, PropagationDelayAddsToArrival) {
  channel::ChannelConfig cfg;
  cfg.propagation_delay_s = 0.25;
  channel::WirelessChannel ch(cfg, std::make_unique<channel::IidErrorModel>(0.0));
  const Bytes frame(240, 0);
  const auto d = ch.send(ByteSpan(frame));
  EXPECT_NEAR(d.arrive_time - d.depart_time, 0.25, 1e-12);
}

TEST(Channel, RejectsEmptyFrame) {
  channel::ChannelConfig cfg;
  channel::WirelessChannel ch(cfg, std::make_unique<channel::IidErrorModel>(0.0));
  EXPECT_THROW(ch.send(ByteSpan()), ContractViolation);
}

TEST(Channel, SameSeedSameBehaviour) {
  const Bytes frame(128, 3);
  auto run = [&frame](std::uint64_t seed) {
    channel::ChannelConfig cfg;
    cfg.seed = seed;
    channel::WirelessChannel ch(cfg, std::make_unique<channel::IidErrorModel>(0.3));
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) pattern.push_back(ch.send(ByteSpan(frame)).corrupted);
    return pattern;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}
