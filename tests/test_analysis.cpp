// Negative binomial analysis and the optimal-N solver (paper §4.1, Figs 2-3).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/negbinom.hpp"
#include "util/rng.hpp"

namespace analysis = mobiweb::analysis;
using mobiweb::ContractViolation;
using mobiweb::Rng;

TEST(NegBinom, PmfBaseCase) {
  // Pr(P = m) = (1 - alpha)^m.
  EXPECT_NEAR(analysis::negbinom_pmf(5, 5, 0.2), std::pow(0.8, 5), 1e-12);
  EXPECT_NEAR(analysis::negbinom_pmf(40, 40, 0.1), std::pow(0.9, 40), 1e-12);
}

TEST(NegBinom, PmfBelowSupportIsZero) {
  EXPECT_EQ(analysis::negbinom_pmf(4, 5, 0.2), 0.0);
  EXPECT_EQ(analysis::negbinom_cdf(4, 5, 0.2), 0.0);
}

TEST(NegBinom, PmfHandComputed) {
  // Pr(P = m+1) = C(m, m-1) alpha (1-alpha)^m = m * alpha * (1-alpha)^m.
  const double expect = 3.0 * 0.25 * std::pow(0.75, 3);
  EXPECT_NEAR(analysis::negbinom_pmf(4, 3, 0.25), expect, 1e-12);
}

TEST(NegBinom, PmfSumsToOne) {
  for (const double alpha : {0.1, 0.3, 0.5}) {
    double sum = 0.0;
    for (int x = 10; x < 600; ++x) sum += analysis::negbinom_pmf(x, 10, alpha);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "alpha=" << alpha;
  }
}

TEST(NegBinom, CdfMatchesPmfSum) {
  double sum = 0.0;
  for (int x = 7; x <= 30; ++x) {
    sum += analysis::negbinom_pmf(x, 7, 0.3);
    EXPECT_NEAR(analysis::negbinom_cdf(x, 7, 0.3), sum, 1e-10) << x;
  }
}

TEST(NegBinom, CdfMonotone) {
  double prev = 0.0;
  for (int x = 20; x < 200; ++x) {
    const double c = analysis::negbinom_cdf(x, 20, 0.4);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);
}

TEST(NegBinom, AlphaZeroDegenerate) {
  EXPECT_EQ(analysis::negbinom_cdf(5, 5, 0.0), 1.0);
  EXPECT_EQ(analysis::optimal_cooked_packets(5, 0.0, 0.95), 5);
  EXPECT_DOUBLE_EQ(analysis::expected_packets(5, 0.0), 5.0);
}

TEST(NegBinom, ExpectedPackets) {
  EXPECT_NEAR(analysis::expected_packets(40, 0.1), 40.0 / 0.9, 1e-12);
  EXPECT_NEAR(analysis::expected_packets(40, 0.5), 80.0, 1e-12);
}

TEST(NegBinom, MonteCarloAgreement) {
  // Simulate the process: draw packets with corruption prob alpha until m
  // intact; compare the empirical distribution of P against the pmf.
  const int m = 10;
  const double alpha = 0.3;
  Rng rng(50);
  const int trials = 200000;
  double mean = 0.0;
  long within_n = 0;
  const int n = analysis::optimal_cooked_packets(m, alpha, 0.95);
  for (int t = 0; t < trials; ++t) {
    int received = 0;
    int intact = 0;
    while (intact < m) {
      ++received;
      if (!rng.next_bernoulli(alpha)) ++intact;
    }
    mean += received;
    within_n += (received <= n);
  }
  mean /= trials;
  EXPECT_NEAR(mean, analysis::expected_packets(m, alpha), 0.05);
  const double empirical_success = static_cast<double>(within_n) / trials;
  EXPECT_GE(empirical_success, 0.95 - 0.01);
  // n is minimal: n-1 must fall below the target.
  EXPECT_LT(analysis::negbinom_cdf(n - 1, m, alpha), 0.95);
  EXPECT_GE(analysis::negbinom_cdf(n, m, alpha), 0.95);
}

TEST(OptimalN, MinimalityAcrossGrid) {
  for (const int m : {10, 40, 100}) {
    for (const double alpha : {0.1, 0.3, 0.5}) {
      for (const double s : {0.95, 0.99}) {
        const int n = analysis::optimal_cooked_packets(m, alpha, s);
        EXPECT_GE(analysis::negbinom_cdf(n, m, alpha), s);
        EXPECT_LT(analysis::negbinom_cdf(n - 1, m, alpha), s);
      }
    }
  }
}

TEST(OptimalN, MonotoneInAlphaAndSuccess) {
  int prev = 0;
  for (const double alpha : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    const int n = analysis::optimal_cooked_packets(50, alpha, 0.95);
    EXPECT_GT(n, prev);
    prev = n;
  }
  EXPECT_GE(analysis::optimal_cooked_packets(50, 0.3, 0.99),
            analysis::optimal_cooked_packets(50, 0.3, 0.95));
}

TEST(OptimalN, PaperFigure2Anchors) {
  // Figure 2 shows a near-linear N(M) relationship. Anchor values: at
  // alpha=0.1, N stays close to M/(1-alpha) plus a small safety margin; at
  // alpha=0.5 it is a bit above 2M.
  const int n_01 = analysis::optimal_cooked_packets(40, 0.1, 0.95);
  EXPECT_GT(n_01, 44);   // above the mean 44.4
  EXPECT_LT(n_01, 56);
  const int n_05 = analysis::optimal_cooked_packets(40, 0.5, 0.95);
  EXPECT_GT(n_05, 80);   // above the mean 80
  EXPECT_LT(n_05, 105);
}

TEST(OptimalN, RedundancyRatioDecreasesWithM) {
  // Relative overhead shrinks as M grows (concentration), the reason Figure 3
  // shows only mild sensitivity to M.
  const double g10 = analysis::redundancy_ratio(10, 0.3, 0.95);
  const double g50 = analysis::redundancy_ratio(50, 0.3, 0.95);
  const double g100 = analysis::redundancy_ratio(100, 0.3, 0.95);
  EXPECT_GT(g10, g50);
  EXPECT_GT(g50, g100);
  EXPECT_GT(g100, 1.0 / 0.7);  // never below the mean requirement
}

TEST(OptimalN, GuardsPathologicalInput) {
  EXPECT_THROW(analysis::optimal_cooked_packets(10, 0.3, 1.0), ContractViolation);
  EXPECT_THROW(analysis::optimal_cooked_packets(10, 0.3, 0.0), ContractViolation);
  EXPECT_THROW(analysis::optimal_cooked_packets(0, 0.3, 0.95), ContractViolation);
  EXPECT_THROW(analysis::optimal_cooked_packets(10, -0.1, 0.95), ContractViolation);
  EXPECT_THROW(analysis::optimal_cooked_packets(10, 0.999, 0.999999, 100),
               ContractViolation);  // exceeds max_n
}
