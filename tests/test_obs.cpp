// Observability stack: metrics primitives, session traces, aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace obs = mobiweb::obs;
using mobiweb::ContractViolation;

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Gauge, SetAndAdd) {
  obs::Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Histogram, BucketEdgesAreInclusive) {
  obs::Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0: upper edge is inclusive
  h.observe(1.5);   // bucket 1
  h.observe(10.0);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2);
  EXPECT_EQ(h.bucket_counts()[1], 1);
  EXPECT_EQ(h.bucket_counts()[2], 0);
  EXPECT_EQ(h.bucket_counts()[3], 1);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 13.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 13.0 / 4.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(obs::Histogram(std::vector<double>{}), ContractViolation);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), ContractViolation);
}

TEST(Histogram, QuantileIsExactWhenBucketsHoldSingleValues) {
  // One distinct value per bucket: interpolation has nothing to smear, so
  // every quantile equals the exact type-7 sample quantile of {1, 3, 8}.
  obs::Histogram h({2.0, 5.0, 10.0});
  h.observe(1.0);
  h.observe(3.0);
  h.observe(8.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
  // Rank 0.25 * 2 = 0.5 between order statistics 1 and 3.
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 5.5);
}

TEST(Histogram, QuantileInterpolatesAcrossBucketBoundaries) {
  // The broken behavior this pins against: answering a rank that straddles
  // two buckets with a nominal bucket edge (2.0 here) no sample sits on.
  // The fix interpolates between the lower bucket's observed max and the
  // upper bucket's observed min.
  obs::Histogram h({2.0, 10.0});
  h.observe(1.0);  // bucket 0
  h.observe(1.2);  // bucket 0
  h.observe(7.0);  // bucket 1
  h.observe(9.0);  // bucket 1
  // h = 0.5 * 3 = 1.5: halfway between order stats 1.2 and 7.0 = 4.1 —
  // NOT the bucket edge 2.0.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.1);
  const obs::QuantileEstimate est = h.quantile_with_bounds(0.5);
  EXPECT_DOUBLE_EQ(est.lower, 1.0);   // observed range of the lower bucket
  EXPECT_DOUBLE_EQ(est.upper, 9.0);   // observed range of the upper bucket
  EXPECT_GE(est.value, est.lower);
  EXPECT_LE(est.value, est.upper);
}

TEST(Histogram, QuantileNeverLeavesTheObservedRange) {
  // All mass piled just under one edge: nominal-edge interpolation would
  // report values in the empty [0, 4.9) span; the observed-range answer
  // stays pinned at the data.
  obs::Histogram h({5.0, 10.0});
  for (int i = 0; i < 100; ++i) h.observe(4.9);
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 4.9) << "q=" << q;
  }
  const obs::QuantileEstimate est = h.quantile_with_bounds(0.5);
  EXPECT_DOUBLE_EQ(est.lower, 4.9);
  EXPECT_DOUBLE_EQ(est.upper, 4.9);
}

TEST(Histogram, QuantileBoundsBracketTheTrueSampleQuantile) {
  // Uniform stream over [0, 100): the within-bucket even-spacing model is
  // only an estimate, but the [lower, upper] bounds must always contain the
  // exact sample quantile computed from the raw values.
  obs::Histogram h({10.0, 20.0, 50.0, 100.0});
  std::vector<double> values;
  unsigned long long x = 0x9e3779b97f4a7c15ull;  // SplitMix64 walk
  for (int i = 0; i < 1000; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    unsigned long long z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const double v = static_cast<double>(z >> 11) * 0x1.0p-53 * 100.0;
    values.push_back(v);
    h.observe(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    const double rank = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    const double exact =
        values[lo] +
        frac * (values[std::min(lo + 1, values.size() - 1)] - values[lo]);
    const obs::QuantileEstimate est = h.quantile_with_bounds(q);
    EXPECT_GE(exact, est.lower) << "q=" << q;
    EXPECT_LE(exact, est.upper) << "q=" << q;
    EXPECT_GE(est.value, est.lower) << "q=" << q;
    EXPECT_LE(est.value, est.upper) << "q=" << q;
    // The point estimate is itself close: off by at most one bucket span.
    EXPECT_NEAR(est.value, exact, est.upper - est.lower + 1e-9) << "q=" << q;
  }
}

TEST(Histogram, QuantileDegenerateInputs) {
  obs::Histogram h({1.0, 2.0});
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));  // empty
  EXPECT_TRUE(std::isnan(h.quantile_with_bounds(0.5).lower));
  h.observe(1.5);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 1.5) << "q=" << q;  // single sample
  }
  // Out-of-range q clamps instead of throwing.
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(7.0), 1.5);
}

TEST(Histogram, VarianceMatchesTwoPassComputation) {
  obs::Histogram h({10.0, 100.0});
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  double mean = 0.0;
  for (double v : values) {
    h.observe(v);
    mean += v;
  }
  mean /= static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  EXPECT_NEAR(h.variance(), ss / (static_cast<double>(values.size()) - 1.0),
              1e-12);
  obs::Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.variance(), 0.0);
  empty.observe(3.0);
  EXPECT_DOUBLE_EQ(empty.variance(), 0.0);  // undefined below two samples
}

TEST(Registry, LookupOrCreateReturnsStableReferences) {
  obs::MetricsRegistry r;
  EXPECT_TRUE(r.empty());
  obs::Counter& a = r.counter("frames.sent");
  obs::Counter& b = r.counter("frames.sent");
  EXPECT_EQ(&a, &b);
  a.inc(7);
  EXPECT_EQ(r.counter("frames.sent").value(), 7);
  EXPECT_FALSE(r.empty());
  // Histogram bounds are consulted only on first creation.
  obs::Histogram& h1 = r.histogram("lat", {1.0, 2.0});
  obs::Histogram& h2 = r.histogram("lat", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.upper_bounds().size(), 2u);
}

TEST(Registry, FindReturnsNullForMissing) {
  obs::MetricsRegistry r;
  EXPECT_EQ(r.find_counter("nope"), nullptr);
  EXPECT_EQ(r.find_gauge("nope"), nullptr);
  EXPECT_EQ(r.find_histogram("nope"), nullptr);
  r.counter("yes").inc();
  ASSERT_NE(r.find_counter("yes"), nullptr);
  EXPECT_EQ(r.find_counter("yes")->value(), 1);
}

TEST(Registry, JsonContainsAllSeries) {
  obs::MetricsRegistry r;
  r.counter("frames.sent").inc(3);
  r.gauge("cache.bytes").set(1024.0);
  r.histogram("latency_s", {0.5, 1.0}).observe(0.25);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"frames.sent\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"cache.bytes\": 1024"), std::string::npos);
  EXPECT_NE(json.find("\"latency_s\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

namespace {

// A two-round session: round 1 sends three frames (one corrupted, one intact,
// one duplicate), stalls, and requests a retransmit; round 2 completes.
void record_session(obs::SessionTrace& t) {
  t.session_start(0.0);
  t.round_start(1, 0.0);
  t.frame_sent(0, 0.1);
  t.frame_intact(0, 0.1, 0.5);
  t.frame_sent(1, 0.2);
  t.frame_corrupted(0.2);
  t.frame_sent(0, 0.3);
  t.frame_duplicate(0, 0.3);
  t.round_end(0.3);
  t.retransmit_request(0.3, 1);
  t.round_start(2, 0.8);
  t.frame_sent(1, 0.9);
  t.frame_intact(1, 0.9, 1.0);
  t.decode_complete(0.9);
  t.session_end(0.9, 1.0);
}

}  // namespace

TEST(SessionTrace, RoundSummariesAlwaysMaintained) {
  obs::SessionTrace t("demo");
  record_session(t);
  EXPECT_TRUE(t.events().empty());  // event capture is opt-in
  ASSERT_EQ(t.rounds().size(), 2u);
  const obs::RoundSummary& r1 = t.rounds()[0];
  EXPECT_EQ(r1.round, 1);
  EXPECT_EQ(r1.frames_sent, 3);
  EXPECT_EQ(r1.frames_intact, 1);
  EXPECT_EQ(r1.frames_corrupted, 1);
  EXPECT_EQ(r1.frames_duplicate, 1);
  EXPECT_NEAR(r1.latency(), 0.3, 1e-12);
  EXPECT_NEAR(r1.content_end, 0.5, 1e-12);
  const obs::RoundSummary& r2 = t.rounds()[1];
  EXPECT_EQ(r2.frames_sent, 1);
  EXPECT_EQ(r2.frames_intact, 1);
  EXPECT_TRUE(t.completed());
  EXPECT_FALSE(t.gave_up());
  EXPECT_EQ(t.frames_sent(), 4);
  EXPECT_NEAR(t.response_time(), 0.9, 1e-12);
  EXPECT_NEAR(t.final_content(), 1.0, 1e-12);
}

TEST(SessionTrace, EventCaptureRecordsEverything) {
  obs::SessionTrace t;
  t.capture_events(true);
  record_session(t);
  EXPECT_FALSE(t.events().empty());
  int retransmits = 0;
  for (const auto& e : t.events()) {
    if (e.type == obs::Event::kRetransmitRequest) {
      ++retransmits;
      EXPECT_DOUBLE_EQ(e.value, 1.0);
    }
  }
  EXPECT_EQ(retransmits, 1);
}

TEST(SessionTrace, ClearKeepsLabelAndCaptureMode) {
  obs::SessionTrace t("alpha=0.3");
  t.capture_events(true);
  record_session(t);
  t.clear();
  EXPECT_EQ(t.label(), "alpha=0.3");
  EXPECT_TRUE(t.rounds().empty());
  EXPECT_TRUE(t.events().empty());
  EXPECT_FALSE(t.completed());
  record_session(t);
  EXPECT_FALSE(t.events().empty());  // capture mode survived the clear
}

TEST(SessionTrace, JsonHasLabelRoundsAndOutcome) {
  obs::SessionTrace t("demo");
  record_session(t);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"label\": \"demo\""), std::string::npos);
  EXPECT_NE(json.find("\"completed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"rounds\""), std::string::npos);
  EXPECT_EQ(json.find("\"events\""), std::string::npos);  // not captured
  obs::SessionTrace captured;
  captured.capture_events(true);
  record_session(captured);
  EXPECT_NE(captured.to_json().find("\"events\""), std::string::npos);
}

TEST(AggregateTrace, FoldsIntoStandardSeries) {
  obs::SessionTrace t;
  record_session(t);
  obs::MetricsRegistry r;
  obs::aggregate_trace(t, r);
  EXPECT_EQ(r.counter("session.count").value(), 1);
  EXPECT_EQ(r.counter("session.completed").value(), 1);
  EXPECT_EQ(r.counter("session.gave_up").value(), 0);
  EXPECT_EQ(r.counter("frames.sent").value(), 4);
  EXPECT_EQ(r.counter("frames.intact").value(), 2);
  EXPECT_EQ(r.counter("frames.corrupted").value(), 1);
  EXPECT_EQ(r.counter("frames.duplicate").value(), 1);
  const obs::Histogram* rt = r.find_histogram("session.response_time_s");
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->count(), 1);
  EXPECT_NEAR(rt->sum(), 0.9, 1e-12);
  const obs::Histogram* rounds = r.find_histogram("session.rounds");
  ASSERT_NE(rounds, nullptr);
  EXPECT_NEAR(rounds->sum(), 2.0, 1e-12);
  const obs::Histogram* lat = r.find_histogram("round.latency_s");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), 2);
}

TEST(Collector, GathersTracesAndMetricsTogether) {
  obs::Collector c;
  for (int i = 0; i < 3; ++i) {
    obs::SessionTrace& t = c.begin_trace("doc" + std::to_string(i));
    record_session(t);
    c.finish_trace(t);
  }
  EXPECT_EQ(c.traces().size(), 3u);
  EXPECT_EQ(c.metrics().counter("session.count").value(), 3);
  const std::string json = c.to_json();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"traces\""), std::string::npos);
  EXPECT_NE(json.find("\"doc2\""), std::string::npos);
}

// ---- Aggregation edge cases ----

TEST(AggregateTrace, EmptyTraceStillCounts) {
  // A trace that recorded nothing (no session_start, no rounds) aggregates to
  // one session with zero frames and no round histograms.
  obs::SessionTrace trace;
  obs::MetricsRegistry registry;
  obs::aggregate_trace(trace, registry);
  EXPECT_EQ(registry.counter("session.count").value(), 1);
  EXPECT_EQ(registry.counter("session.completed").value(), 0);
  EXPECT_EQ(registry.counter("frames.sent").value(), 0);
  ASSERT_NE(registry.find_histogram("session.rounds"), nullptr);
  EXPECT_EQ(registry.find_histogram("session.rounds")->count(), 1);
  EXPECT_DOUBLE_EQ(registry.find_histogram("session.rounds")->sum(), 0.0);
  EXPECT_EQ(registry.find_histogram("round.latency_s"), nullptr);
}

TEST(AggregateTrace, ZeroRoundSession) {
  // A session that starts and immediately ends (e.g. instant abort) has no
  // rounds; response time still lands in the latency histogram.
  obs::SessionTrace trace;
  trace.session_start(1.0);
  trace.abort_irrelevant(1.5, 0.0);
  trace.session_end(1.5, 0.0);
  obs::MetricsRegistry registry;
  obs::aggregate_trace(trace, registry);
  EXPECT_EQ(registry.counter("session.aborted_irrelevant").value(), 1);
  EXPECT_EQ(registry.counter("session.completed").value(), 0);
  ASSERT_NE(registry.find_histogram("session.response_time_s"), nullptr);
  EXPECT_DOUBLE_EQ(registry.find_histogram("session.response_time_s")->sum(), 0.5);
  EXPECT_EQ(registry.find_histogram("round.frames_intact"), nullptr);
}

TEST(AggregateTrace, FrameCountersSumAcrossRounds) {
  obs::SessionTrace trace;
  trace.session_start(0.0);
  trace.round_start(0, 0.0);
  trace.frame_sent(0, 0.1);
  trace.frame_intact(0, 0.1, 0.4);
  trace.frame_sent(1, 0.2);
  trace.frame_corrupted(0.2);
  trace.round_end(0.3);
  trace.round_start(1, 0.3);
  trace.frame_sent(1, 0.4);
  trace.frame_duplicate(1, 0.4);
  trace.round_end(0.5);
  trace.decode_complete(0.5);
  trace.session_end(0.5, 1.0);
  obs::MetricsRegistry registry;
  obs::aggregate_trace(trace, registry);
  EXPECT_EQ(registry.counter("frames.sent").value(), 3);
  EXPECT_EQ(registry.counter("frames.intact").value(), 1);
  EXPECT_EQ(registry.counter("frames.corrupted").value(), 1);
  EXPECT_EQ(registry.counter("frames.duplicate").value(), 1);
  EXPECT_EQ(registry.counter("session.completed").value(), 1);
  ASSERT_NE(registry.find_histogram("round.latency_s"), nullptr);
  EXPECT_EQ(registry.find_histogram("round.latency_s")->count(), 2);
}

TEST(Histogram, OverflowBucketCatchesEverythingAboveLastEdge) {
  obs::Histogram h({1.0, 10.0});
  h.observe(10.0000001);
  h.observe(1e12);
  h.observe(std::numeric_limits<double>::max());
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 0);
  EXPECT_EQ(h.bucket_counts()[1], 0);
  EXPECT_EQ(h.bucket_counts()[2], 3);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.max(), std::numeric_limits<double>::max());
}

TEST(MetricsRegistry, HistogramBoundsFixedAtFirstCreation) {
  obs::MetricsRegistry registry;
  obs::Histogram& first = registry.histogram("h", {1.0, 2.0});
  obs::Histogram& again = registry.histogram("h", {99.0});
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.upper_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistry, FindOnEmptyRegistryReturnsNull) {
  obs::MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.find_counter("nope"), nullptr);
  EXPECT_EQ(registry.find_gauge("nope"), nullptr);
  EXPECT_EQ(registry.find_histogram("nope"), nullptr);
}

// ---- MetricsRegistry under concurrent writers ----
//
// The fleet engine's shards record into one shared registry from every pool
// worker. Regression coverage for the thread-safety rework: concurrent
// lookup-or-create of the SAME names must yield one instrument per name, and
// no increment may be lost. Run under -DMOBIWEB_TSAN=ON (scripts/
// tsan_fleet.sh) to get data-race checking on top of the exactness checks.
TEST(MetricsRegistry, ConcurrentWritersLoseNothing) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolve-once-then-record, as the hot paths do...
      obs::Counter& frames = registry.counter("hammer.frames");
      obs::Gauge& backlog = registry.gauge("hammer.backlog");
      obs::Histogram& lat = registry.histogram("hammer.latency", {1.0, 10.0, 100.0});
      for (int i = 0; i < kPerThread; ++i) {
        frames.inc();
        backlog.add(1.0);
        lat.observe(static_cast<double>(i % 128));
        // ...and also re-resolve by name mid-flight, racing the map lookup.
        registry.counter("hammer.frames").inc();
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(registry.counter("hammer.frames").value(),
            static_cast<long>(kThreads) * kPerThread * 2);
  EXPECT_DOUBLE_EQ(registry.gauge("hammer.backlog").value(),
                   static_cast<double>(kThreads) * kPerThread);
  const obs::Histogram& lat = registry.histogram("hammer.latency", {});
  EXPECT_EQ(lat.count(), static_cast<long>(kThreads) * kPerThread);
  EXPECT_EQ(lat.min(), 0.0);
  EXPECT_EQ(lat.max(), 127.0);
  long bucket_total = 0;
  for (long c : lat.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, lat.count());
}

TEST(MetricsRegistry, ConcurrentCreationOfDistinctNames) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string name = "series." + std::to_string(i % 50);
        registry.counter(name).inc();
        registry.gauge(name + ".g").set(static_cast<double>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(registry.counter("series." + std::to_string(i)).value(),
              kThreads * 4);  // 200 iterations / 50 names per thread
  }
}
