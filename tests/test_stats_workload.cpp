// Distribution-level coverage of the fleet workload generators, using the
// stats engine as the oracle: the Zipf document-popularity sampler must pass
// a chi-square goodness-of-fit test against its own cumulative weights, the
// Poisson arrival process must show unit index of dispersion, and the tail
// summary threaded through FleetResult must equal the exact order statistics
// recomputed from the per-session outcomes — bit-identically across shard
// counts. All draws are seeded; nothing here can flake.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "fleet/engine.hpp"
#include "stats/describe.hpp"
#include "stats/inference.hpp"
#include "stats/quantile.hpp"
#include "util/thread_pool.hpp"

namespace mw = mobiweb;
namespace fleet = mobiweb::fleet;
namespace stats = mobiweb::stats;

namespace {

fleet::FleetConfig workload_config(std::size_t sessions) {
  fleet::FleetConfig cfg;
  cfg.corpus.corpus_size = 8;
  cfg.corpus.seed = 77;
  cfg.sessions = sessions;
  cfg.seed = 1234;
  cfg.alpha = 0.0;  // one clean round per session: keep the fleet fast
  cfg.record_outcomes = true;
  return cfg;
}

}  // namespace

// ---- Zipf popularity: chi-square goodness of fit ----

TEST(WorkloadGof, ZipfDocumentDrawPassesChiSquareAgainstItsWeights) {
  fleet::FleetConfig cfg = workload_config(8000);
  cfg.zipf_s = 1.0;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  ASSERT_EQ(r.outcomes.size(), cfg.sessions);

  std::vector<long> observed(cfg.corpus.corpus_size, 0);
  for (const fleet::SessionOutcome& out : r.outcomes) {
    ASSERT_LT(out.key.doc_index, cfg.corpus.corpus_size);
    ++observed[out.key.doc_index];
  }
  // The sampler draws rank (doc index) with weight (rank + 1)^-s — the same
  // cumulative-weight table the engine builds.
  std::vector<double> weights(cfg.corpus.corpus_size);
  for (std::size_t d = 0; d < weights.size(); ++d) {
    weights[d] = std::pow(static_cast<double>(d + 1), -cfg.zipf_s);
  }
  const stats::TestResult gof = stats::chi_square_gof(observed, weights);
  EXPECT_GT(gof.p_value, 0.01)
      << "chi2=" << gof.statistic << " df=" << gof.df;

  // The same counts against a uniform hypothesis must reject hard: the draw
  // really is skewed, not just unrejectable.
  const std::vector<double> uniform(cfg.corpus.corpus_size, 1.0);
  EXPECT_LT(stats::chi_square_gof(observed, uniform).p_value, 1e-10);
}

TEST(WorkloadGof, SteeperExponentSkewsHarder) {
  std::vector<double> head_share;
  for (double s : {0.5, 1.5}) {
    fleet::FleetConfig cfg = workload_config(4000);
    cfg.zipf_s = s;
    fleet::FleetEngine engine(cfg);
    const fleet::FleetResult r = engine.run();
    long head = 0;
    for (const fleet::SessionOutcome& out : r.outcomes) {
      head += out.key.doc_index == 0 ? 1 : 0;
    }
    head_share.push_back(static_cast<double>(head) /
                         static_cast<double>(cfg.sessions));
  }
  EXPECT_GT(head_share[1], head_share[0] + 0.1);
}

// ---- Poisson arrivals: index of dispersion ----

TEST(WorkloadGof, PoissonArrivalWindowCountsHaveUnitDispersion) {
  fleet::FleetConfig cfg = workload_config(6000);
  cfg.arrival_rate_hz = 5.0;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  ASSERT_EQ(r.outcomes.size(), cfg.sessions);

  // Count arrivals per 2 s window; drop the final partial window so every
  // counted window saw the full process.
  const double window_s = 2.0;
  const double horizon = r.outcomes.back().start_s;
  const auto windows = static_cast<std::size_t>(horizon / window_s);
  ASSERT_GT(windows, 100u);
  std::vector<long> counts(windows, 0);
  for (const fleet::SessionOutcome& out : r.outcomes) {
    const auto w = static_cast<std::size_t>(out.start_s / window_s);
    if (w < windows) ++counts[w];
  }
  // Poisson: variance == mean, so D = s^2/mean is ~1 and the chi-square
  // dispersion test does not reject.
  EXPECT_NEAR(stats::dispersion_index(counts), 1.0, 0.2);
  const stats::TestResult disp = stats::dispersion_test(counts);
  EXPECT_GT(disp.p_value, 0.01)
      << "D*(n-1)=" << disp.statistic << " df=" << disp.df;

  // Control: the uniform stagger (same session count over the same horizon)
  // is maximally regular — dispersion far below 1, test rejects.
  fleet::FleetConfig ucfg = workload_config(6000);
  ucfg.arrival_rate_hz = 0.0;
  ucfg.arrival_spread_s = horizon;
  fleet::FleetEngine uengine(ucfg);
  const fleet::FleetResult u = uengine.run();
  std::vector<long> ucounts(windows, 0);
  for (const fleet::SessionOutcome& out : u.outcomes) {
    const auto w = static_cast<std::size_t>(out.start_s / window_s);
    if (w < windows) ++ucounts[w];
  }
  EXPECT_LT(stats::dispersion_index(ucounts), 0.3);
  EXPECT_LT(stats::dispersion_test(ucounts).p_value, 1e-6);
}

TEST(WorkloadGof, ExponentialGapsMatchTheConfiguredRate) {
  fleet::FleetConfig cfg = workload_config(4000);
  cfg.arrival_rate_hz = 2.0;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  std::vector<double> gaps;
  gaps.reserve(r.outcomes.size() - 1);
  for (std::size_t i = 1; i < r.outcomes.size(); ++i) {
    gaps.push_back(r.outcomes[i].start_s - r.outcomes[i - 1].start_s);
  }
  stats::Moments m;
  for (double g : gaps) m.add(g);
  // Exponential(rate 2): mean 0.5, stddev 0.5; the t-based CI around the
  // sample mean must cover the true mean.
  EXPECT_NEAR(m.mean(), 0.5, 3.0 * stats::mean_ci95_halfwidth(m.count(),
                                                              m.stddev()));
  EXPECT_NEAR(m.stddev(), 0.5, 0.05);
  // Exponential skewness is 2; far from normal, so Jarque-Bera rejects.
  EXPECT_NEAR(m.skewness(), 2.0, 0.4);
  EXPECT_LT(stats::jarque_bera(m).p_value, 1e-6);
}

// ---- Tail threading: FleetResult::session_time_tails ----

TEST(FleetTails, SummaryEqualsExactOrderStatisticsOfOutcomes) {
  fleet::FleetConfig cfg = workload_config(500);
  cfg.alpha = 0.25;  // multi-round sessions: a real time distribution
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  ASSERT_EQ(r.outcomes.size(), 500u);

  std::vector<double> times;
  times.reserve(r.outcomes.size());
  for (const fleet::SessionOutcome& out : r.outcomes) {
    times.push_back(out.result.time);
  }
  const stats::TailSummary expected = stats::summarize_tails(times);
  const stats::TailSummary& got = r.session_time_tails;
  EXPECT_EQ(got.count, expected.count);
  EXPECT_EQ(got.mean, expected.mean);      // bit-equal: same sorted fold
  EXPECT_EQ(got.stddev, expected.stddev);
  EXPECT_EQ(got.ci95, expected.ci95);
  EXPECT_EQ(got.min, expected.min);
  EXPECT_EQ(got.max, expected.max);
  EXPECT_EQ(got.p50, expected.p50);
  EXPECT_EQ(got.p95, expected.p95);
  EXPECT_EQ(got.p99, expected.p99);
  EXPECT_EQ(got.p999, expected.p999);
  // Internal consistency with the scalar aggregates.
  EXPECT_NEAR(got.mean * static_cast<double>(got.count), r.session_time_s,
              1e-6);
  EXPECT_LE(got.p50, got.p95);
  EXPECT_LE(got.p95, got.p99);
  EXPECT_LE(got.p99, got.p999);
  EXPECT_LE(got.p999, got.max);
  EXPECT_GE(got.p50, got.min);
}

TEST(FleetTails, BitIdenticalAcrossShardCounts) {
  fleet::FleetConfig cfg = workload_config(400);
  cfg.alpha = 0.25;
  cfg.record_outcomes = false;  // the tail path must not depend on outcomes
  cfg.shards = 1;
  fleet::FleetEngine serial(cfg);
  const fleet::FleetResult a = serial.run();

  mw::ThreadPool pool(3);
  cfg.shards = 4;
  fleet::FleetEngine sharded(cfg);
  const fleet::FleetResult b = sharded.run(&pool);

  EXPECT_EQ(a.session_time_tails.count, b.session_time_tails.count);
  EXPECT_EQ(a.session_time_tails.mean, b.session_time_tails.mean);
  EXPECT_EQ(a.session_time_tails.stddev, b.session_time_tails.stddev);
  EXPECT_EQ(a.session_time_tails.ci95, b.session_time_tails.ci95);
  EXPECT_EQ(a.session_time_tails.min, b.session_time_tails.min);
  EXPECT_EQ(a.session_time_tails.max, b.session_time_tails.max);
  EXPECT_EQ(a.session_time_tails.p50, b.session_time_tails.p50);
  EXPECT_EQ(a.session_time_tails.p95, b.session_time_tails.p95);
  EXPECT_EQ(a.session_time_tails.p99, b.session_time_tails.p99);
  EXPECT_EQ(a.session_time_tails.p999, b.session_time_tails.p999);
  EXPECT_EQ(a.session_time_tails.count, 400u);
}

TEST(FleetTails, DisabledTailStatsLeavesTheSummaryZeroed) {
  fleet::FleetConfig cfg = workload_config(50);
  cfg.tail_stats = false;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  EXPECT_EQ(r.session_time_tails.count, 0u);
  EXPECT_EQ(r.session_time_tails.p99, 0.0);
  EXPECT_GT(r.session_time_s, 0.0);  // the scalar aggregate still works
}

TEST(FleetTails, StreamingEstimatorTracksTheFleetDistribution) {
  // The fleet's session-time distribution is multi-modal (per-(doc, gamma)
  // round quantization) — a worst case for P-squared. The streaming estimate
  // must still land inside the documented rank envelope of the exact tails.
  fleet::FleetConfig cfg = workload_config(3000);
  cfg.alpha = 0.25;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();

  std::vector<double> times;
  times.reserve(r.outcomes.size());
  stats::StreamingQuantiles sq;
  for (const fleet::SessionOutcome& out : r.outcomes) {
    times.push_back(out.result.time);
    sq.add(out.result.time);
  }
  std::sort(times.begin(), times.end());
  // The rank envelope alone assumes the quantile function is continuous;
  // round quantization makes it a step function, so allow the estimator to
  // overshoot a step by 1% of the observed value range on top of it.
  const double d = stats::StreamingQuantiles::kRankError;
  const double slack = 0.01 * (times.back() - times.front());
  for (double q : {0.5, 0.95, 0.99}) {
    const double lo = stats::exact_quantile_sorted(times, q - d);
    const double hi = stats::exact_quantile_sorted(times, q + d);
    EXPECT_GE(sq.quantile(q), lo - slack) << "q=" << q;
    EXPECT_LE(sq.quantile(q), hi + slack) << "q=" << q;
  }
}
