// Exporters: golden Perfetto timeline JSON for a deterministic session,
// Prometheus text exposition checked line by line, the Event exhaustiveness
// guard, and the JSON string-escaping contract shared by every obs producer.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace obs = mobiweb::obs;

namespace {

// The session every timeline test agrees on: two rounds around one outage,
// one corrupted frame forcing the retransmission, clean completion.
obs::SessionTrace make_golden_trace() {
  obs::SessionTrace trace("golden");
  trace.capture_events(true);
  trace.session_start(0.0);
  trace.round_start(1, 0.0);
  trace.frame_sent(0, 0.1);
  trace.frame_intact(0, 0.1, 0.25);
  trace.frame_sent(1, 0.2);
  trace.frame_corrupted(0.2);
  trace.round_end(0.25);
  trace.outage_begin(0.25);
  trace.backoff(0.45, 0.2);
  trace.outage_end(0.45, 0.2);
  trace.resume(0.45);
  trace.round_start(2, 0.5);
  trace.frame_sent(1, 0.6);
  trace.frame_intact(1, 0.6, 1.0);
  trace.round_end(0.6);
  trace.decode_complete(0.6);
  trace.session_end(0.6, 1.0);
  return trace;
}

const char* const kGoldenTimeline =
    R"({"traceEvents": [
{"ph": "M", "name": "thread_name", "pid": 1, "tid": 1, "args": {"name": "golden"}},
{"ph": "X", "name": "golden", "cat": "session", "pid": 1, "tid": 1, "ts": 0, "dur": 600000, "args": {"completed": true, "aborted_irrelevant": false, "degraded": false, "gave_up": false, "rounds": 2, "final_content": 1}},
{"ph": "X", "name": "round 1", "cat": "round", "pid": 1, "tid": 1, "ts": 0, "dur": 250000, "args": {"sent": 2, "intact": 1, "corrupted": 1, "duplicate": 0, "foreign": 0, "lost": 0, "content": 0.25}},
{"ph": "X", "name": "round 2", "cat": "round", "pid": 1, "tid": 1, "ts": 500000, "dur": 100000, "args": {"sent": 1, "intact": 1, "corrupted": 0, "duplicate": 0, "foreign": 0, "lost": 0, "content": 1}},
{"ph": "i", "name": "frame_sent", "cat": "frame", "pid": 1, "tid": 1, "ts": 100000, "s": "t", "args": {"seq": 0}},
{"ph": "i", "name": "frame_intact", "cat": "frame", "pid": 1, "tid": 1, "ts": 100000, "s": "t", "args": {"seq": 0}},
{"ph": "C", "name": "content/1", "pid": 1, "tid": 1, "ts": 100000, "args": {"content": 0.25}},
{"ph": "i", "name": "frame_sent", "cat": "frame", "pid": 1, "tid": 1, "ts": 200000, "s": "t", "args": {"seq": 1}},
{"ph": "i", "name": "frame_corrupted", "cat": "frame", "pid": 1, "tid": 1, "ts": 200000, "s": "t"},
{"ph": "X", "name": "backoff", "cat": "backoff", "pid": 1, "tid": 1, "ts": 250000, "dur": 200000},
{"ph": "X", "name": "outage", "cat": "outage", "pid": 1, "tid": 1, "ts": 250000, "dur": 200000},
{"ph": "i", "name": "resume", "cat": "control", "pid": 1, "tid": 1, "ts": 450000, "s": "t"},
{"ph": "i", "name": "frame_sent", "cat": "frame", "pid": 1, "tid": 1, "ts": 600000, "s": "t", "args": {"seq": 1}},
{"ph": "i", "name": "frame_intact", "cat": "frame", "pid": 1, "tid": 1, "ts": 600000, "s": "t", "args": {"seq": 1}},
{"ph": "C", "name": "content/1", "pid": 1, "tid": 1, "ts": 600000, "args": {"content": 1}},
{"ph": "i", "name": "decode_complete", "cat": "control", "pid": 1, "tid": 1, "ts": 600000, "s": "t"},
{"ph": "C", "name": "content/1", "pid": 1, "tid": 1, "ts": 600000, "args": {"content": 1}}
], "displayTimeUnit": "ms"}
)";

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

}  // namespace

// ---- Event exhaustiveness guard -------------------------------------------

TEST(EventNames, EveryEnumeratorHasADistinctName) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < obs::kEventCount; ++i) {
    const char* name = obs::event_name(static_cast<obs::Event>(i));
    ASSERT_NE(name, nullptr) << "enumerator " << i;
    EXPECT_STRNE(name, "") << "enumerator " << i;
    EXPECT_STRNE(name, "unknown") << "enumerator " << i;
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate event name: " << name;
  }
  EXPECT_EQ(names.size(), obs::kEventCount);
}

TEST(EventNames, OutOfRangeValueIsUnknown) {
  EXPECT_STREQ(obs::event_name(static_cast<obs::Event>(obs::kEventCount + 7)),
               "unknown");
}

// ---- Perfetto timeline ----------------------------------------------------

TEST(Timeline, GoldenDeterministicSession) {
  const obs::SessionTrace trace = make_golden_trace();
  EXPECT_EQ(obs::timeline_json(trace), kGoldenTimeline);
}

TEST(Timeline, OneTrackPerSession) {
  const obs::SessionTrace a = make_golden_trace();
  obs::SessionTrace b;  // unlabeled: falls back to "session <tid>"
  b.session_start(0.0);
  b.round_start(1, 0.0);
  b.round_end(1.0);
  b.give_up(1.0);
  b.session_end(1.0, 0.0);
  const std::string json = obs::timeline_json({&a, &b});
  EXPECT_NE(json.find("\"tid\": 1, \"args\": {\"name\": \"golden\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"tid\": 2, \"args\": {\"name\": \"session 2\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"gave_up\": true"), std::string::npos);
}

TEST(Timeline, RoundSummariesRenderWithoutEventCapture) {
  obs::SessionTrace trace("summaries-only");
  trace.session_start(0.0);
  trace.round_start(1, 0.0);
  trace.frame_sent(0, 0.1);
  trace.frame_intact(0, 0.1, 1.0);
  trace.round_end(0.1);
  trace.decode_complete(0.1);
  trace.session_end(0.1, 1.0);
  ASSERT_TRUE(trace.events().empty());
  const std::string json = obs::timeline_json(trace);
  EXPECT_NE(json.find("\"name\": \"round 1\""), std::string::npos);
  EXPECT_EQ(json.find("\"cat\": \"frame\""), std::string::npos);
}

TEST(Timeline, UnmatchedOutageClosesAtSessionEnd) {
  obs::SessionTrace trace("stuck");
  trace.capture_events(true);
  trace.session_start(0.0);
  trace.round_start(1, 0.0);
  trace.round_end(0.5);
  trace.outage_begin(0.5);
  trace.degraded(2.0, 0.0);
  trace.session_end(2.0, 0.0);
  const std::string json = obs::timeline_json(trace);
  // The outage never ended; its span must still close at t = 2 s.
  EXPECT_NE(json.find("\"name\": \"outage\", \"cat\": \"outage\", \"pid\": 1, "
                      "\"tid\": 1, \"ts\": 500000, \"dur\": 1500000"),
            std::string::npos);
}

TEST(Timeline, LabelsWithQuotesAndControlCharsStayValidJson) {
  obs::SessionTrace trace("evil \"label\"\\ with\nnewline and \x01 ctrl");
  trace.session_start(0.0);
  trace.session_end(1.0, 0.0);
  const std::string json = obs::timeline_json(trace);
  EXPECT_NE(json.find("evil \\\"label\\\"\\\\ with\\nnewline and \\u0001 ctrl"),
            std::string::npos);
  for (const char c : json) {
    EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n')
        << "raw control character leaked into the JSON document";
  }
}

// ---- JSON escaping through trace / metrics / collector --------------------

TEST(JsonEscaping, EscapesEveryMandatoryClass) {
  std::string out;
  obs::append_json_string(out, "q\" b\\ nl\n tab\t cr\r bs\b ff\f c\x02");
  EXPECT_EQ(out, "\"q\\\" b\\\\ nl\\n tab\\t cr\\r bs\\b ff\\f c\\u0002\"");
}

TEST(JsonEscaping, TraceToJsonEscapesLabel) {
  obs::SessionTrace trace("say \"hi\"\\\n");
  trace.session_start(0.0);
  trace.session_end(1.0, 0.0);
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"label\": \"say \\\"hi\\\"\\\\\\n\""),
            std::string::npos);
}

TEST(JsonEscaping, MetricsRegistryEscapesNames) {
  obs::MetricsRegistry registry;
  registry.counter("weird\"name\nwith\\stuff").inc(2);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"weird\\\"name\\nwith\\\\stuff\": 2"),
            std::string::npos);
  EXPECT_EQ(json.find("weird\"name"), std::string::npos);
}

TEST(JsonEscaping, CollectorRoundTripsHostileLabels) {
  obs::Collector collector;
  obs::SessionTrace& trace = collector.begin_trace("tab\there \"x\"");
  trace.session_start(0.0);
  trace.session_end(1.0, 0.5);
  collector.finish_trace(trace);
  const std::string json = collector.to_json();
  EXPECT_NE(json.find("tab\\there \\\"x\\\""), std::string::npos);
  EXPECT_EQ(json.find("tab\there"), std::string::npos);
}

// ---- Prometheus exposition ------------------------------------------------

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(obs::prometheus_name("session.response_time"),
            "session_response_time");
  EXPECT_EQ(obs::prometheus_name("round.latency{variant=caching}"),
            "round_latency");
  EXPECT_EQ(obs::prometheus_name("9lives"), "_lives");
  EXPECT_EQ(obs::prometheus_name(""), "_");
  EXPECT_EQ(obs::prometheus_name("a-b c/d"), "a_b_c_d");
}

TEST(Prometheus, CountersGaugesAndLabels) {
  obs::MetricsRegistry registry;
  registry.counter("session.completed{variant=caching}").inc(3);
  registry.counter("session.completed{variant=arq}").inc(1);
  registry.gauge("content.final").set(0.75);
  const std::vector<std::string> lines =
      lines_of(obs::prometheus_text(registry));
  const std::vector<std::string> expected = {
      "# TYPE mobiweb_session_completed counter",
      "mobiweb_session_completed{variant=\"arq\"} 1",
      "mobiweb_session_completed{variant=\"caching\"} 3",
      "# TYPE mobiweb_content_final gauge",
      "mobiweb_content_final 0.75",
  };
  EXPECT_EQ(lines, expected);
}

TEST(Prometheus, HistogramBucketsAreCumulative) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("session.rounds", {1.0, 2.0, 4.0});
  h.observe(1.0);  // le="1"
  h.observe(3.0);  // le="4"
  h.observe(9.0);  // +Inf only
  const std::vector<std::string> lines =
      lines_of(obs::prometheus_text(registry, ""));
  const std::vector<std::string> expected = {
      "# TYPE session_rounds histogram",
      "session_rounds_bucket{le=\"1\"} 1",
      "session_rounds_bucket{le=\"2\"} 1",
      "session_rounds_bucket{le=\"4\"} 2",
      "session_rounds_bucket{le=\"+Inf\"} 3",
      "session_rounds_sum 13",
      "session_rounds_count 3",
  };
  EXPECT_EQ(lines, expected);
}

TEST(Prometheus, LabelValuesAreEscaped) {
  obs::MetricsRegistry registry;
  registry.counter("hits{path=a\"b\\c}").inc(1);
  const std::string text = obs::prometheus_text(registry);
  EXPECT_NE(text.find("mobiweb_hits{path=\"a\\\"b\\\\c\"} 1"),
            std::string::npos);
}

TEST(Prometheus, EmptyRegistryRendersNothing) {
  const obs::MetricsRegistry registry;
  EXPECT_EQ(obs::prometheus_text(registry), "");
}

// ---- Cross-tier (edge proxy / origin) span rendering ----------------------
//
// The proxied session every cross-tier timeline test agrees on: one clean
// round, an origin outage bridged by a stale failover, a cell handoff whose
// reconciliation drops held packets, then a clean finishing round.
namespace {

obs::SessionTrace make_proxied_trace() {
  obs::SessionTrace trace("edge");
  trace.capture_events(true);
  trace.session_start(0.0);
  trace.round_start(1, 0.0);
  trace.frame_sent(0, 0.1);
  trace.frame_intact(0, 0.1, 0.5);
  trace.round_end(0.2);
  trace.origin_outage_begin(0.2);
  trace.origin_outage_end(1.2, 1.0);
  trace.stale_failover(1.2);
  trace.handoff(1.7, 0.5);
  trace.reconcile_drop(1.7, 3);
  trace.round_start(2, 1.7);
  trace.frame_sent(1, 1.8);
  trace.frame_intact(1, 1.8, 1.0);
  trace.round_end(1.9);
  trace.decode_complete(1.9);
  trace.session_end(1.9, 1.0);
  return trace;
}

const char* const kGoldenProxiedTimeline =
    R"({"traceEvents": [
{"ph": "M", "name": "thread_name", "pid": 1, "tid": 1, "args": {"name": "edge"}},
{"ph": "X", "name": "edge", "cat": "session", "pid": 1, "tid": 1, "ts": 0, "dur": 1900000, "args": {"completed": true, "aborted_irrelevant": false, "degraded": false, "gave_up": false, "rounds": 2, "final_content": 1}},
{"ph": "X", "name": "round 1", "cat": "round", "pid": 1, "tid": 1, "ts": 0, "dur": 200000, "args": {"sent": 1, "intact": 1, "corrupted": 0, "duplicate": 0, "foreign": 0, "lost": 0, "content": 0.5}},
{"ph": "X", "name": "round 2", "cat": "round", "pid": 1, "tid": 1, "ts": 1700000, "dur": 200000, "args": {"sent": 1, "intact": 1, "corrupted": 0, "duplicate": 0, "foreign": 0, "lost": 0, "content": 1}},
{"ph": "i", "name": "frame_sent", "cat": "frame", "pid": 1, "tid": 1, "ts": 100000, "s": "t", "args": {"seq": 0}},
{"ph": "i", "name": "frame_intact", "cat": "frame", "pid": 1, "tid": 1, "ts": 100000, "s": "t", "args": {"seq": 0}},
{"ph": "C", "name": "content/1", "pid": 1, "tid": 1, "ts": 100000, "args": {"content": 0.5}},
{"ph": "X", "name": "origin outage", "cat": "origin", "pid": 1, "tid": 1, "ts": 200000, "dur": 1000000},
{"ph": "i", "name": "stale_failover", "cat": "proxy", "pid": 1, "tid": 1, "ts": 1200000, "s": "t"},
{"ph": "X", "name": "handoff", "cat": "proxy", "pid": 1, "tid": 1, "ts": 1200000, "dur": 500000},
{"ph": "i", "name": "reconcile_drop", "cat": "proxy", "pid": 1, "tid": 1, "ts": 1700000, "s": "t", "args": {"dropped": 3}},
{"ph": "i", "name": "frame_sent", "cat": "frame", "pid": 1, "tid": 1, "ts": 1800000, "s": "t", "args": {"seq": 1}},
{"ph": "i", "name": "frame_intact", "cat": "frame", "pid": 1, "tid": 1, "ts": 1800000, "s": "t", "args": {"seq": 1}},
{"ph": "C", "name": "content/1", "pid": 1, "tid": 1, "ts": 1800000, "args": {"content": 1}},
{"ph": "i", "name": "decode_complete", "cat": "control", "pid": 1, "tid": 1, "ts": 1900000, "s": "t"},
{"ph": "C", "name": "content/1", "pid": 1, "tid": 1, "ts": 1900000, "args": {"content": 1}}
], "displayTimeUnit": "ms"}
)";

}  // namespace

TEST(Timeline, GoldenCrossTierSpans) {
  const obs::SessionTrace trace = make_proxied_trace();
  EXPECT_EQ(trace.origin_outage_count(), 1);
  EXPECT_EQ(trace.stale_failover_count(), 1);
  EXPECT_EQ(trace.handoff_count(), 1);
  EXPECT_EQ(trace.reconcile_dropped(), 3);
  EXPECT_EQ(obs::timeline_json(trace), kGoldenProxiedTimeline);
}

TEST(Timeline, UnmatchedOriginOutageClosesAtSessionEnd) {
  // A session that degraded while waiting out an origin fade: the
  // kOriginOutageEnd never arrives, yet the span must still render, closed
  // at the session end.
  obs::SessionTrace trace("stranded");
  trace.capture_events(true);
  trace.session_start(0.0);
  trace.round_start(1, 0.0);
  trace.round_end(0.2);
  trace.origin_outage_begin(0.2);
  trace.degraded(5.0, 0.4);
  trace.session_end(5.0, 0.4);
  const std::string json = obs::timeline_json(trace);
  EXPECT_NE(json.find(R"({"ph": "X", "name": "origin outage", "cat": "origin", )"
                      R"("pid": 1, "tid": 1, "ts": 200000, "dur": 4800000})"),
            std::string::npos)
      << json;
}
