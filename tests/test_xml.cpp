// XML parser, DOM and serializer.
#include <gtest/gtest.h>

#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/serialize.hpp"

namespace xml = mobiweb::xml;

TEST(XmlParser, MinimalDocument) {
  const xml::Document doc = xml::parse("<root/>");
  EXPECT_EQ(doc.root.name, "root");
  EXPECT_TRUE(doc.root.children.empty());
}

TEST(XmlParser, Declaration) {
  const xml::Document doc =
      xml::parse("<?xml version=\"1.1\" encoding=\"UTF-8\"?><root/>");
  EXPECT_EQ(doc.xml_version, "1.1");
  EXPECT_EQ(doc.encoding, "UTF-8");
}

TEST(XmlParser, Doctype) {
  const xml::Document doc =
      xml::parse("<!DOCTYPE research-paper SYSTEM \"paper.dtd\"><research-paper/>");
  EXPECT_EQ(doc.doctype_name, "research-paper");
  EXPECT_EQ(doc.root.name, "research-paper");
}

TEST(XmlParser, DoctypeWithInternalSubset) {
  const xml::Document doc = xml::parse(
      "<!DOCTYPE doc [ <!ELEMENT doc (#PCDATA)> ]><doc>x</doc>");
  EXPECT_EQ(doc.doctype_name, "doc");
  EXPECT_EQ(doc.root.text_content(), "x");
}

TEST(XmlParser, NestedElementsAndText) {
  const xml::Document doc =
      xml::parse("<a><b>hello</b><c>world</c></a>");
  ASSERT_EQ(doc.root.children.size(), 2u);
  EXPECT_EQ(doc.root.children[0].name, "b");
  EXPECT_EQ(doc.root.children[0].text_content(), "hello");
  EXPECT_EQ(doc.root.text_content(), "helloworld");
}

TEST(XmlParser, Attributes) {
  const xml::Document doc =
      xml::parse("<a x=\"1\" y='two' z=\"a&amp;b\"/>");
  EXPECT_EQ(doc.root.attribute("x"), "1");
  EXPECT_EQ(doc.root.attribute("y"), "two");
  EXPECT_EQ(doc.root.attribute("z"), "a&b");
  EXPECT_FALSE(doc.root.attribute("missing").has_value());
}

TEST(XmlParser, DuplicateAttributeRejected) {
  EXPECT_THROW(xml::parse("<a x=\"1\" x=\"2\"/>"), xml::ParseError);
}

TEST(XmlParser, Entities) {
  const xml::Document doc =
      xml::parse("<a>&lt;tag&gt; &amp; &quot;x&quot; &apos;y&apos;</a>");
  EXPECT_EQ(doc.root.text_content(), "<tag> & \"x\" 'y'");
}

TEST(XmlParser, NumericEntities) {
  const xml::Document doc = xml::parse("<a>&#65;&#x42;&#x2014;</a>");
  EXPECT_EQ(doc.root.text_content(), "AB\xE2\x80\x94");
}

TEST(XmlParser, UnknownEntityRejected) {
  EXPECT_THROW(xml::parse("<a>&nope;</a>"), xml::ParseError);
}

TEST(XmlParser, CData) {
  const xml::Document doc = xml::parse("<a><![CDATA[<not><parsed> & raw]]></a>");
  ASSERT_EQ(doc.root.children.size(), 1u);
  EXPECT_EQ(doc.root.children[0].type, xml::NodeType::kCData);
  EXPECT_EQ(doc.root.text_content(), "<not><parsed> & raw");
}

TEST(XmlParser, Comments) {
  const xml::Document doc = xml::parse("<a><!-- note -->text</a>");
  ASSERT_EQ(doc.root.children.size(), 2u);
  EXPECT_EQ(doc.root.children[0].type, xml::NodeType::kComment);
  EXPECT_EQ(doc.root.children[0].text, " note ");

  xml::ParseOptions drop;
  drop.keep_comments = false;
  const xml::Document doc2 = xml::parse("<a><!-- note -->text</a>", drop);
  ASSERT_EQ(doc2.root.children.size(), 1u);
  EXPECT_EQ(doc2.root.children[0].type, xml::NodeType::kText);
}

TEST(XmlParser, ProcessingInstruction) {
  const xml::Document doc = xml::parse("<a><?target some data?></a>");
  ASSERT_EQ(doc.root.children.size(), 1u);
  EXPECT_EQ(doc.root.children[0].type, xml::NodeType::kProcessing);
  EXPECT_EQ(doc.root.children[0].name, "target");
  EXPECT_EQ(doc.root.children[0].text, "some data");
}

TEST(XmlParser, MismatchedTagsRejected) {
  EXPECT_THROW(xml::parse("<a><b></a></b>"), xml::ParseError);
}

TEST(XmlParser, UnterminatedRejected) {
  EXPECT_THROW(xml::parse("<a><b>"), xml::ParseError);
  EXPECT_THROW(xml::parse("<a attr="), xml::ParseError);
  EXPECT_THROW(xml::parse("<a><!-- no end"), xml::ParseError);
}

TEST(XmlParser, ContentAfterRootRejected) {
  EXPECT_THROW(xml::parse("<a/>text"), xml::ParseError);
  EXPECT_THROW(xml::parse("<a/><b/>"), xml::ParseError);
  EXPECT_NO_THROW(xml::parse("<a/><!-- trailing comment -->"));
}

TEST(XmlParser, ErrorCarriesLocation) {
  try {
    xml::parse("<a>\n  <b>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const xml::ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_GT(e.column(), 0u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(XmlParser, WhitespaceStripOption) {
  xml::ParseOptions opts;
  opts.strip_whitespace_text = true;
  const xml::Document doc = xml::parse("<a>\n  <b>x</b>\n  <c>y</c>\n</a>", opts);
  EXPECT_EQ(doc.root.children.size(), 2u);
}

TEST(XmlParser, Utf8Bom) {
  const xml::Document doc = xml::parse("\xEF\xBB\xBF<root/>");
  EXPECT_EQ(doc.root.name, "root");
}

TEST(XmlParser, Fragment) {
  const xml::Node node = xml::parse_fragment("  <item id=\"3\">v</item>  ");
  EXPECT_EQ(node.name, "item");
  EXPECT_EQ(node.attribute("id"), "3");
}

TEST(XmlDom, ChildLookups) {
  const xml::Document doc = xml::parse(
      "<doc><section>a</section><section>b</section><other/></doc>");
  EXPECT_EQ(doc.root.child("section")->text_content(), "a");
  EXPECT_EQ(doc.root.children_named("section").size(), 2u);
  EXPECT_EQ(doc.root.child_elements().size(), 3u);
  EXPECT_EQ(doc.root.child("nope"), nullptr);
}

TEST(XmlDom, SelectPath) {
  const xml::Document doc = xml::parse(
      "<doc><body><sec><p>one</p><p>two</p></sec><sec><p>three</p></sec></body></doc>");
  const auto ps = doc.root.select("body/sec/p");
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps[2]->text_content(), "three");
  EXPECT_TRUE(doc.root.select("body/nope/p").empty());
}

TEST(XmlDom, SubtreeSize) {
  const xml::Document doc = xml::parse("<a><b><c/></b>text</a>");
  // a + b + c + text node
  EXPECT_EQ(doc.root.subtree_size(), 4u);
}

TEST(XmlSerialize, EscapesText) {
  xml::Node n = xml::make_element("a");
  n.children.push_back(xml::make_text("x < y & z > w"));
  EXPECT_EQ(xml::write(n), "<a>x &lt; y &amp; z &gt; w</a>");
}

TEST(XmlSerialize, EscapesAttributes) {
  xml::Node n = xml::make_element("a");
  n.attributes.push_back({"q", "say \"hi\" & <go>"});
  EXPECT_EQ(xml::write(n), "<a q=\"say &quot;hi&quot; &amp; &lt;go&gt;\"/>");
}

TEST(XmlSerialize, RoundTripPreservesTree) {
  const std::string source =
      "<paper year=\"2000\"><abstract><para>A &amp; B</para></abstract>"
      "<section><title>Intro</title><para>Mobile <em>web</em> text.</para>"
      "</section><!--note--><![CDATA[raw <stuff>]]></paper>";
  const xml::Document first = xml::parse(source);
  const std::string written = xml::write(first);
  const xml::Document second = xml::parse(written);
  EXPECT_EQ(first.root, second.root);
}

TEST(XmlSerialize, PrettyPrint) {
  const xml::Document doc = xml::parse("<a><b><c/></b><d/></a>");
  xml::WriteOptions opts;
  opts.indent = "  ";
  opts.declaration = false;
  const std::string pretty = xml::write(doc, opts);
  EXPECT_NE(pretty.find("\n  <b>"), std::string::npos);
  EXPECT_NE(pretty.find("\n    <c/>"), std::string::npos);
  // Pretty output still parses back to the same tree when whitespace is
  // stripped.
  xml::ParseOptions popts;
  popts.strip_whitespace_text = true;
  EXPECT_EQ(xml::parse(pretty, popts).root, doc.root);
}

TEST(XmlSerialize, DocumentDeclaration) {
  const xml::Document doc = xml::parse("<a/>");
  EXPECT_EQ(xml::write(doc), "<?xml version=\"1.0\"?><a/>");
  xml::WriteOptions opts;
  opts.declaration = false;
  EXPECT_EQ(xml::write(doc, opts), "<a/>");
}

// ---- Hardening against hostile input (see DESIGN.md §Testing) ----

TEST(XmlHardening, DeepNestingRejected) {
  // 10k nested elements would exhaust the recursive-descent stack without the
  // depth guard; with it, parsing fails with a structured error instead.
  std::string deep;
  for (int i = 0; i < 10000; ++i) deep += "<d>";
  deep += "x";
  for (int i = 0; i < 10000; ++i) deep += "</d>";
  try {
    xml::parse(deep);
    FAIL() << "expected ParseError";
  } catch (const xml::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("nesting depth"), std::string::npos);
  }
}

TEST(XmlHardening, MaxDepthIsConfigurable) {
  const std::string three = "<a><b><c/></b></a>";
  xml::ParseOptions opts;
  opts.max_depth = 2;
  EXPECT_THROW(xml::parse(three, opts), xml::ParseError);
  opts.max_depth = 3;
  EXPECT_EQ(xml::parse(three, opts).root.name, "a");
}

TEST(XmlHardening, TruncatedTagRejected) {
  EXPECT_THROW(xml::parse("<a"), xml::ParseError);
  EXPECT_THROW(xml::parse("<a x"), xml::ParseError);
  EXPECT_THROW(xml::parse("<a x=\"1"), xml::ParseError);
  EXPECT_THROW(xml::parse("<a></a"), xml::ParseError);
  EXPECT_THROW(xml::parse("<a><"), xml::ParseError);
  EXPECT_THROW(xml::parse("<a>x</"), xml::ParseError);
}

TEST(XmlHardening, UnterminatedEntityRejected) {
  EXPECT_THROW(xml::parse("<a>&amp</a>"), xml::ParseError);
  EXPECT_THROW(xml::parse("<a>&#65</a>"), xml::ParseError);
  EXPECT_THROW(xml::parse("<a>&"), xml::ParseError);
  EXPECT_THROW(xml::parse("<a b=\"&quot\"/>"), xml::ParseError);
}

TEST(XmlHardening, InvalidUtf8Rejected) {
  // Bare continuation byte, truncated sequence, overlong encoding, surrogate
  // half, and out-of-range code point must all fail with a structured error
  // before any tree is built.
  const char* bad[] = {
      "<a>\x80</a>",              // continuation byte with no lead
      "<a>\xc3</a>",              // truncated two-byte sequence
      "<a>\xc0\xaf</a>",          // overlong '/'
      "<a>\xe0\x80\xaf</a>",      // overlong three-byte form
      "<a>\xed\xa0\x80</a>",      // UTF-16 surrogate half U+D800
      "<a>\xf4\x90\x80\x80</a>",  // above U+10FFFF
  };
  for (const char* doc : bad) {
    EXPECT_THROW(xml::parse(doc), xml::ParseError) << doc;
  }
}

TEST(XmlHardening, InvalidUtf8ErrorCarriesLocation) {
  try {
    xml::parse("<a>ok</a>\n<!-- \xff -->");
    FAIL() << "expected ParseError";
  } catch (const xml::ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("UTF-8"), std::string::npos);
  }
}

TEST(XmlHardening, Utf8CheckCanBeDisabled) {
  // Legacy Latin-1 payloads parse when the caller opts out of validation.
  xml::ParseOptions opts;
  opts.require_utf8 = false;
  const xml::Document doc = xml::parse("<a>caf\xe9</a>", opts);
  EXPECT_EQ(doc.root.text_content(), "caf\xe9");
}

TEST(XmlHardening, ValidMultibyteUtf8Accepted) {
  // 2-, 3- and 4-byte sequences at the edges of their ranges.
  const xml::Document doc =
      xml::parse("<a>\xc2\x80 \xe1\x88\xb4 \xf0\x90\x8d\x88</a>");
  EXPECT_EQ(doc.root.text_content().size(), 11u);
}

TEST(XmlHardening, StrayDoctypeBracketRejected) {
  // A ']' with no matching '[' used to drive the bracket depth negative.
  EXPECT_THROW(xml::parse("<!DOCTYPE a ]> <a/>"), xml::ParseError);
  EXPECT_THROW(xml::parse("<!DOCTYPE a [ ]]> <a/>"), xml::ParseError);
}
