// Packet framing: encode/decode, CRC detection, header validation.
#include <gtest/gtest.h>

#include "packet/packet.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace packet = mobiweb::packet;
using mobiweb::Bytes;
using mobiweb::ByteSpan;
using mobiweb::Rng;

namespace {
packet::Packet sample_packet() {
  packet::Packet p;
  p.doc_id = 7;
  p.seq = 12;
  p.total = 60;
  p.flags = packet::kFlagClearText;
  p.payload.assign(256, 0xab);
  return p;
}
}  // namespace

TEST(Packet, RoundTrip) {
  const packet::Packet p = sample_packet();
  const Bytes frame = packet::encode(p);
  EXPECT_EQ(frame.size(), packet::frame_size(256));
  const auto decoded = packet::decode(ByteSpan(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, p);
}

TEST(Packet, FlagsHelpers) {
  packet::Packet p = sample_packet();
  EXPECT_TRUE(p.is_clear_text());
  EXPECT_FALSE(p.is_last());
  p.flags = packet::kFlagLast;
  EXPECT_TRUE(p.is_last());
  EXPECT_FALSE(p.is_clear_text());
}

TEST(Packet, EveryByteFlipDetected) {
  const packet::Packet p = sample_packet();
  const Bytes frame = packet::encode(p);
  Rng rng(31);
  // Flip each byte position once (all positions, not a sample: the guarantee
  // is that ANY single-byte corruption is caught).
  for (std::size_t pos = 0; pos < frame.size(); ++pos) {
    Bytes bad = frame;
    bad[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    EXPECT_FALSE(packet::decode(ByteSpan(bad)).has_value()) << "pos=" << pos;
  }
}

TEST(Packet, MultiByteCorruptionDetected) {
  const packet::Packet p = sample_packet();
  const Bytes frame = packet::encode(p);
  Rng rng(32);
  int undetected = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    Bytes bad = frame;
    const std::size_t flips = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < flips; ++i) {
      bad[rng.next_below(bad.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    undetected += packet::decode(ByteSpan(bad)).has_value();
  }
  // CRC-32 collisions for random corruption are ~2^-32; none expected here.
  EXPECT_EQ(undetected, 0);
}

TEST(Packet, TruncatedFrameRejected) {
  const Bytes frame = packet::encode(sample_packet());
  for (std::size_t keep : {0u, 5u, 11u, 100u}) {
    const Bytes cut(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(packet::decode(ByteSpan(cut)).has_value()) << keep;
  }
}

TEST(Packet, InconsistentHeaderRejected) {
  packet::Packet p = sample_packet();
  p.seq = 60;   // seq >= total
  p.total = 60;
  const Bytes frame = packet::encode(p);
  EXPECT_FALSE(packet::decode(ByteSpan(frame)).has_value());

  packet::Packet zero = sample_packet();
  zero.total = 0;
  EXPECT_FALSE(packet::decode(ByteSpan(packet::encode(zero))).has_value());
}

TEST(Packet, EmptyPayloadAllowed) {
  packet::Packet p;
  p.doc_id = 1;
  p.seq = 0;
  p.total = 1;
  const Bytes frame = packet::encode(p);
  const auto decoded = packet::decode(ByteSpan(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Packet, PaperOverheadDocumented) {
  // The wire format costs 12 bytes per packet; the paper's simulation uses
  // O = 4 (CRC + seq only). Both are constants the rest of the system reads
  // from here rather than hard-coding.
  EXPECT_EQ(packet::kFramingOverhead, 12u);
  EXPECT_EQ(packet::frame_size(256), 268u);
}

TEST(PacketHardening, OversizedFrameRejectedBeforeAllocation) {
  // A frame longer than frame_size(kMaxPayloadSize) implies a payload above
  // the protocol cap; decode refuses it without touching the contents.
  const Bytes huge(packet::frame_size(packet::kMaxPayloadSize) + 1, 0x5a);
  EXPECT_FALSE(packet::decode(ByteSpan(huge)).has_value());
}

TEST(PacketHardening, MaxPayloadRoundTrips) {
  packet::Packet p;
  p.doc_id = 3;
  p.seq = 0;
  p.total = 1;
  p.payload.assign(packet::kMaxPayloadSize, 0xcd);
  const Bytes frame = packet::encode(p);
  const auto decoded = packet::decode(ByteSpan(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, p.payload);
}

TEST(PacketHardening, EncodeRefusesPayloadAboveCap) {
  packet::Packet p;
  p.doc_id = 3;
  p.seq = 0;
  p.total = 1;
  p.payload.assign(packet::kMaxPayloadSize + 1, 0x00);
  EXPECT_THROW(packet::encode(p), mobiweb::ContractViolation);
}
