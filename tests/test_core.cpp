// Public facade: Server, search, BrowseSession.
#include <gtest/gtest.h>

#include "core/mobiweb.hpp"

namespace mw = mobiweb;
namespace doc = mobiweb::doc;

namespace {

const char* kCachingXml = R"(<paper>
  <title>Cache Management for Mobile Databases</title>
  <section><para>caching caching caching strategies for mobile databases and
  cache invalidation over wireless links</para></section>
</paper>)";

const char* kBrowsingXml = R"(<paper>
  <title>Multi-Resolution Browsing</title>
  <section><para>browsing web documents at multiple resolutions with
  information content ranking for browsing sessions</para></section>
</paper>)";

const char* kHtmlPage = R"(<html><head><title>Wireless FAQ</title></head><body>
<h1>Bandwidth</h1><p>wireless bandwidth is scarce</p>
<h1>Energy</h1><p>battery energy is limited</p>
</body></html>)";

mw::Server make_server() {
  mw::Server server;
  server.publish_xml("doc://caching", kCachingXml);
  server.publish_xml("doc://browsing", kBrowsingXml);
  server.publish_html("doc://faq", kHtmlPage);
  return server;
}

}  // namespace

TEST(Server, PublishAndFind) {
  const mw::Server server = make_server();
  EXPECT_EQ(server.size(), 3u);
  ASSERT_NE(server.find("doc://caching"), nullptr);
  EXPECT_EQ(server.find("doc://nope"), nullptr);
  EXPECT_EQ(server.urls().size(), 3u);
}

TEST(Server, RepublishReplaces) {
  mw::Server server;
  server.publish_xml("u", "<paper><para>first version</para></paper>");
  server.publish_xml("u", "<paper><para>second version entirely</para></paper>");
  EXPECT_EQ(server.size(), 1u);
  const auto* sc = server.find("u");
  EXPECT_GT(sc->document_terms().count("version"), 0);
  EXPECT_EQ(sc->document_terms().count("first"), 0);
}

TEST(Server, SearchRanksByQueryMass) {
  const mw::Server server = make_server();
  const auto hits = server.search("caching mobile");
  ASSERT_GE(hits.size(), 1u);
  EXPECT_EQ(hits[0].url, "doc://caching");
  // The FAQ mentions neither word: it must not appear.
  for (const auto& h : hits) EXPECT_NE(h.url, "doc://faq");
}

TEST(Server, SearchHandlesInflections) {
  const mw::Server server = make_server();
  // "browse" matches "browsing" through the stemmer.
  const auto hits = server.search("browse");
  ASSERT_GE(hits.size(), 1u);
  EXPECT_EQ(hits[0].url, "doc://browsing");
}

TEST(Server, SearchNoMatchesEmpty) {
  const mw::Server server = make_server();
  EXPECT_TRUE(server.search("zxcvbnm").empty());
  EXPECT_TRUE(server.search("").empty());
}

TEST(Server, HtmlDocumentIndexed) {
  const mw::Server server = make_server();
  const auto hits = server.search("battery energy");
  ASSERT_GE(hits.size(), 1u);
  EXPECT_EQ(hits[0].url, "doc://faq");
}

TEST(Session, FetchCleanChannelReconstructs) {
  const mw::Server server = make_server();
  mw::BrowseConfig cfg;
  cfg.alpha = 0.0;
  mw::BrowseSession session(server, cfg);
  const auto result = session.fetch("doc://caching");
  EXPECT_TRUE(result.session.completed);
  EXPECT_FALSE(result.text.empty());
  EXPECT_NE(result.text.find("caching"), std::string::npos);
  EXPECT_EQ(result.session.rounds, 1);
}

TEST(Session, FetchUnknownUrlThrows) {
  const mw::Server server = make_server();
  mw::BrowseSession session(server);
  EXPECT_THROW(session.fetch("doc://missing"), std::out_of_range);
}

TEST(Session, LossyFetchStillCompletes) {
  const mw::Server server = make_server();
  mw::BrowseConfig cfg;
  cfg.alpha = 0.3;
  cfg.fixed_gamma = 2.0;
  cfg.seed = 5;
  mw::BrowseSession session(server, cfg);
  const auto result = session.fetch("doc://browsing");
  EXPECT_TRUE(result.session.completed);
  EXPECT_NE(result.text.find("browsing"), std::string::npos);
}

TEST(Session, RelevanceThresholdAborts) {
  mw::Server server = make_server();
  // A longer document (many packets) so the abort demonstrably saves frames.
  std::string long_doc = "<paper>";
  for (int p = 0; p < 30; ++p) {
    long_doc += "<para>";
    for (int w = 0; w < 40; ++w) {
      long_doc += "term" + std::to_string(p) + "x" + std::to_string(w) + " ";
    }
    long_doc += "</para>";
  }
  long_doc += "</paper>";
  server.publish_xml("doc://long", long_doc);

  mw::BrowseConfig cfg;
  cfg.alpha = 0.0;
  mw::BrowseSession session(server, cfg);
  mw::FetchOptions opts;
  opts.relevance_threshold = 0.1;
  const auto result = session.fetch("doc://long", opts);
  EXPECT_TRUE(result.session.aborted_irrelevant);
  EXPECT_LT(result.session.frames_sent, static_cast<long>(result.m));
}

TEST(Session, QicRankingChangesTransmissionOrder) {
  mw::Server server;
  server.publish_xml("doc://two-topics", R"(<paper>
    <section><para>alpha alpha alpha alpha topic one text body</para></section>
    <section><para>beta topic two text body</para></section>
  </paper>)");
  mw::BrowseConfig cfg;
  cfg.alpha = 0.0;
  mw::BrowseSession session(server, cfg);

  mw::FetchOptions by_ic;
  by_ic.rank = doc::RankBy::kIc;
  const auto ic_result = session.fetch("doc://two-topics", by_ic);

  // Query for whichever paragraph IC ranked second; QIC must flip the order.
  const bool ic_picked_alpha = ic_result.segments[0].label == "0.0.0";
  mw::FetchOptions by_qic;
  by_qic.rank = doc::RankBy::kQic;
  by_qic.query = ic_picked_alpha ? "beta" : "alpha";
  const auto qic_result = session.fetch("doc://two-topics", by_qic);
  EXPECT_NE(ic_result.segments[0].label, qic_result.segments[0].label);
}

TEST(Session, RenderHookDelivered) {
  const mw::Server server = make_server();
  mw::BrowseConfig cfg;
  cfg.alpha = 0.0;
  mw::BrowseSession session(server, cfg);
  mw::FetchOptions opts;
  int calls = 0;
  opts.render_hook = [&calls](std::size_t, mw::ByteSpan) { ++calls; };
  const auto result = session.fetch("doc://caching", opts);
  EXPECT_EQ(calls, static_cast<int>(result.m));
}

TEST(Session, AdaptiveGammaLearnsChannel) {
  const mw::Server server = make_server();
  mw::BrowseConfig cfg;
  cfg.alpha = 0.3;
  cfg.adaptive_gamma = true;
  cfg.adaptive.initial_gamma = 1.0;  // start with no redundancy
  cfg.seed = 11;
  mw::BrowseSession session(server, cfg);
  const auto first = session.fetch("doc://caching");
  EXPECT_DOUBLE_EQ(first.gamma, 1.0);
  // After observing ~30% corruption the controller raises gamma.
  mw::FetchResult last;
  for (int i = 0; i < 5; ++i) last = session.fetch("doc://caching");
  EXPECT_GT(last.gamma, 1.2);
  EXPECT_NEAR(session.adaptive_gamma().estimated_alpha(), 0.3, 0.15);
}

TEST(Session, CompressedFetchSavesAirtimeAndReconstructs) {
  mw::Server server;
  // Units compress independently: make each paragraph internally repetitive.
  std::string xmldoc = "<paper>";
  for (int p = 0; p < 6; ++p) {
    xmldoc += "<para>";
    for (int r = 0; r < 12; ++r) {
      xmldoc += "the wireless channel corrupts packets and the cache recovers "
                "the wireless channel state for packets again; ";
    }
    xmldoc += "</para>";
  }
  xmldoc += "</paper>";
  server.publish_xml("doc://rep", xmldoc);

  mw::BrowseConfig cfg;
  cfg.alpha = 0.0;
  mw::BrowseSession session(server, cfg);

  mw::FetchOptions plain;
  const auto raw = session.fetch("doc://rep", plain);

  mw::FetchOptions packed;
  packed.compress = true;
  const auto compressed = session.fetch("doc://rep", packed);

  ASSERT_TRUE(raw.session.completed);
  ASSERT_TRUE(compressed.session.completed);
  EXPECT_LT(compressed.m, raw.m);  // fewer raw packets on the air
  EXPECT_LT(compressed.session.response_time, raw.session.response_time);
  EXPECT_EQ(compressed.text, raw.text);  // identical reconstructed text
}

TEST(Session, CompressedFetchSurvivesLossyChannel) {
  mw::Server server = make_server();
  mw::BrowseConfig cfg;
  cfg.alpha = 0.3;
  cfg.fixed_gamma = 2.0;
  cfg.seed = 9;
  mw::BrowseSession session(server, cfg);
  mw::FetchOptions opts;
  opts.compress = true;
  const auto r = session.fetch("doc://caching", opts);
  ASSERT_TRUE(r.session.completed);
  EXPECT_NE(r.text.find("caching"), std::string::npos);
}

TEST(Session, ChannelTimeAccumulatesAcrossFetches) {
  const mw::Server server = make_server();
  mw::BrowseConfig cfg;
  cfg.alpha = 0.0;
  mw::BrowseSession session(server, cfg);
  session.fetch("doc://caching");
  const double after_one = session.now();
  EXPECT_GT(after_one, 0.0);
  session.fetch("doc://browsing");
  EXPECT_GT(session.now(), after_one);
}

TEST(Session, CollectorTracesEveryFetch) {
  const mw::Server server = make_server();
  mw::BrowseConfig cfg;
  cfg.alpha = 0.3;
  cfg.fixed_gamma = 2.0;
  cfg.seed = 5;
  mw::BrowseSession session(server, cfg);
  mw::obs::Collector collector;
  session.attach_collector(&collector);
  ASSERT_EQ(session.collector(), &collector);
  const auto a = session.fetch("doc://caching");
  const auto b = session.fetch("doc://browsing");
  ASSERT_EQ(collector.traces().size(), 2u);
  EXPECT_EQ(collector.traces()[0].label(), "doc://caching");
  EXPECT_EQ(collector.traces()[1].label(), "doc://browsing");
  EXPECT_EQ(collector.traces()[0].frames_sent(), a.session.frames_sent);
  EXPECT_NEAR(collector.traces()[1].response_time(), b.session.response_time,
              1e-9);
  // Channel counters and per-session aggregates land in the same registry.
  EXPECT_EQ(collector.metrics().counter("session.count").value(), 2);
  EXPECT_EQ(collector.metrics().counter("channel.frames_sent").value(),
            a.session.frames_sent + b.session.frames_sent);
  const std::string json = collector.to_json();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("doc://browsing"), std::string::npos);
  // Detaching restores the untraced path.
  session.attach_collector(nullptr);
  session.fetch("doc://faq");
  EXPECT_EQ(collector.traces().size(), 2u);
}
