// HTML tokenizer and structure extraction.
#include <gtest/gtest.h>

#include "doc/content.hpp"
#include "html/structurer.hpp"
#include "html/tokenizer.hpp"

namespace html = mobiweb::html;
namespace doc = mobiweb::doc;

TEST(HtmlEntities, NamedAndNumeric) {
  EXPECT_EQ(html::decode_entities("a &amp; b &lt;x&gt;"), "a & b <x>");
  EXPECT_EQ(html::decode_entities("&#65;&#x42;"), "AB");
  EXPECT_EQ(html::decode_entities("x&nbsp;y"), "x y");
}

TEST(HtmlEntities, UnknownKeptLiteral) {
  EXPECT_EQ(html::decode_entities("&bogus; & alone"), "&bogus; & alone");
  EXPECT_EQ(html::decode_entities("AT&T"), "AT&T");
}

TEST(HtmlTokenizer, BasicTags) {
  const auto toks = html::tokenize("<p>Hello <B>world</B></p>");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0].type, html::TokenType::kStartTag);
  EXPECT_EQ(toks[0].name, "p");
  EXPECT_EQ(toks[1].text, "Hello ");
  EXPECT_EQ(toks[2].name, "b");  // lowercased
  EXPECT_EQ(toks[3].text, "world");
  EXPECT_EQ(toks[4].type, html::TokenType::kEndTag);
  EXPECT_EQ(toks[5].type, html::TokenType::kEndTag);
}

TEST(HtmlTokenizer, Attributes) {
  const auto toks =
      html::tokenize("<a HREF=\"http://x\" target=_blank disabled>link</a>");
  ASSERT_GE(toks.size(), 1u);
  const auto& a = toks[0];
  ASSERT_EQ(a.attributes.size(), 3u);
  EXPECT_EQ(a.attributes[0].name, "href");
  EXPECT_EQ(a.attributes[0].value, "http://x");
  EXPECT_EQ(a.attributes[1].name, "target");
  EXPECT_EQ(a.attributes[1].value, "_blank");
  EXPECT_EQ(a.attributes[2].name, "disabled");
  EXPECT_EQ(a.attributes[2].value, "");
}

TEST(HtmlTokenizer, UnquotedValueBeforeSelfClose) {
  const auto toks = html::tokenize("<img src=pic.png/>");
  ASSERT_GE(toks.size(), 1u);
  ASSERT_EQ(toks[0].attributes.size(), 1u);
  EXPECT_EQ(toks[0].attributes[0].value, "pic.png");
  EXPECT_TRUE(toks[0].self_closing);
}

TEST(HtmlTokenizer, SlashInsideUrlValueKept) {
  const auto toks = html::tokenize("<a href=http://x/y>z</a>");
  ASSERT_GE(toks.size(), 1u);
  EXPECT_EQ(toks[0].attributes[0].value, "http://x/y");
}

TEST(HtmlTokenizer, SelfClosingAndVoid) {
  const auto toks = html::tokenize("a<br/>b<img src='x'>c");
  // text, br, text, img, text
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_TRUE(toks[1].self_closing);
  EXPECT_EQ(toks[3].name, "img");
  EXPECT_TRUE(html::is_void_element("br"));
  EXPECT_FALSE(html::is_void_element("div"));
}

TEST(HtmlTokenizer, CommentsAndDoctype) {
  const auto toks = html::tokenize("<!DOCTYPE html><!-- hi --><p>x</p>");
  EXPECT_EQ(toks[0].type, html::TokenType::kDoctype);
  EXPECT_EQ(toks[1].type, html::TokenType::kComment);
  EXPECT_EQ(toks[1].text, " hi ");
}

TEST(HtmlTokenizer, ScriptContentIsRawText) {
  const auto toks =
      html::tokenize("<script>if (a < b && c > d) { x(); }</script><p>y</p>");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[0].name, "script");
  EXPECT_EQ(toks[1].type, html::TokenType::kText);
  EXPECT_NE(toks[1].text.find("a < b"), std::string::npos);
  EXPECT_EQ(toks[2].type, html::TokenType::kEndTag);
}

TEST(HtmlTokenizer, MalformedDegradesToText) {
  const auto toks = html::tokenize("1 < 2 and 3 > 2 </3");
  // No tags: everything is text.
  for (const auto& t : toks) EXPECT_EQ(t.type, html::TokenType::kText);
}

TEST(HtmlTokenizer, UnterminatedTagAtEof) {
  const auto toks = html::tokenize("<p class=\"x");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].name, "p");
}

TEST(HtmlStructurer, HeadingsBecomeUnits) {
  const char* page = R"(<html><head><title>Page Title</title></head><body>
    <h1>First Section</h1>
    <p>alpha one</p>
    <h2>A Subsection</h2>
    <p>beta two</p>
    <h1>Second Section</h1>
    <p>gamma three</p>
  </body></html>)";
  const doc::OrgUnit root = html::structure_html(page);
  EXPECT_EQ(root.title, "Page Title");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].lod, doc::Lod::kSection);
  EXPECT_EQ(root.children[0].title, "First Section");
  EXPECT_EQ(root.children[1].title, "Second Section");

  const doc::OrgUnit& first = root.children[0];
  // paragraph "alpha one" (wrapped in virtual subsection) + real subsection.
  ASSERT_EQ(first.children.size(), 2u);
  EXPECT_TRUE(first.children[0].virtual_unit);
  EXPECT_EQ(first.children[1].lod, doc::Lod::kSubsection);
  EXPECT_EQ(first.children[1].title, "A Subsection");
}

TEST(HtmlStructurer, TextBeforeFirstHeading) {
  const doc::OrgUnit root =
      html::structure_html("<p>intro text</p><h1>Later</h1><p>body</p>");
  ASSERT_EQ(root.children.size(), 2u);
  // Leading paragraph wrapped in a virtual section.
  EXPECT_TRUE(root.children[0].virtual_unit);
  EXPECT_EQ(root.children[0].lod, doc::Lod::kSection);
  EXPECT_FALSE(root.children[1].virtual_unit);
}

TEST(HtmlStructurer, EmphasisMarksKeywords) {
  const doc::OrgUnit root =
      html::structure_html("<p>plain <b>strong word</b> tail</p>");
  ASSERT_EQ(root.children.size(), 1u);
  const doc::OrgUnit* para = &root.children[0];
  while (!para->children.empty()) para = &para->children[0];
  int emphasized = 0;
  for (const auto& t : para->own_tokens) emphasized += t.emphasized;
  EXPECT_EQ(emphasized, 2);
}

TEST(HtmlStructurer, ScriptAndStyleIgnored) {
  const doc::OrgUnit root = html::structure_html(
      "<script>var invisible = 1;</script><style>.x{}</style><p>visible</p>");
  std::string all;
  doc::walk(root, [&](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
    all += u.own_text;
  });
  EXPECT_EQ(all.find("invisible"), std::string::npos);
  EXPECT_NE(all.find("visible"), std::string::npos);
}

TEST(HtmlStructurer, HeadContentIgnoredExceptTitle) {
  const doc::OrgUnit root = html::structure_html(
      "<head><title>T</title><meta name=\"x\" content=\"hidden words\">"
      "</head><body><p>shown</p></body>");
  std::string all;
  doc::walk(root, [&](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
    all += u.own_text;
  });
  EXPECT_EQ(all.find("hidden"), std::string::npos);
  EXPECT_NE(all.find("shown"), std::string::npos);
  EXPECT_EQ(root.title, "T");
}

TEST(HtmlStructurer, ListItemsAreParagraphBoundaries) {
  const doc::OrgUnit root =
      html::structure_html("<ul><li>first item</li><li>second item</li></ul>");
  // Two separate paragraph-level leaves.
  std::size_t leaves = 0;
  doc::walk(root, [&](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
    if (u.is_leaf() && !u.own_text.empty()) ++leaves;
  });
  EXPECT_EQ(leaves, 2u);
}

TEST(HtmlStructurer, H3MapsToSubsubsection) {
  const doc::OrgUnit root = html::structure_html(
      "<h1>S</h1><h2>SS</h2><h3>SSS</h3><p>deep text</p>");
  const doc::OrgUnit* sec = &root.children[0];
  ASSERT_EQ(sec->title, "S");
  const doc::OrgUnit* sub = &sec->children[0];
  ASSERT_EQ(sub->title, "SS");
  const doc::OrgUnit* subsub = &sub->children[0];
  EXPECT_EQ(subsub->lod, doc::Lod::kSubsubsection);
  EXPECT_EQ(subsub->title, "SSS");
}

TEST(HtmlStructurer, FeedsScGeneration) {
  // End-to-end: HTML -> unit tree -> SC with sensible IC.
  const char* page = R"(<html><body>
    <h1>Wireless</h1><p>wireless wireless wireless bandwidth</p>
    <h1>Other</h1><p>cache</p>
  </body></html>)";
  doc::ScGenerator gen;
  const auto sc = gen.generate(html::structure_html(page));
  EXPECT_NEAR(sc.root().info_content, 1.0, 1e-12);
  ASSERT_EQ(sc.root().children.size(), 2u);
  EXPECT_GT(sc.root().children[0].info_content, sc.root().children[1].info_content);
}
