// fleet: sharded discrete-event engine + shared pre-encoded document cache.
//
// The load-bearing properties pinned here:
//   * determinism — (seed, shards) reproduces aggregates bit-for-bit, and
//     integer aggregates (plus cache hit/miss counts) are invariant across
//     shard counts;
//   * per-session parity — the fleet state machine is sim::simulate_transfer
//     exactly (same draw order), so per-session results are bit-equal;
//   * cache dedup — one build per (document, gamma) no matter how many
//     threads race on the key, and cooked frames decode back to the payload;
//   * metrics — shards record into one shared registry concurrently and the
//     totals match the engine's own aggregates.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "channel/channel.hpp"
#include "channel/error_model.hpp"
#include "channel/outage.hpp"
#include "fleet/engine.hpp"
#include "sim/transfer.hpp"
#include "transmit/receiver.hpp"
#include "transmit/resilient.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace mw = mobiweb;
namespace fleet = mobiweb::fleet;
namespace sim = mobiweb::sim;

namespace {

fleet::FleetConfig small_config(std::size_t sessions) {
  fleet::FleetConfig cfg;
  cfg.corpus.corpus_size = 8;
  cfg.corpus.seed = 77;
  cfg.sessions = sessions;
  cfg.seed = 1234;
  cfg.alpha = 0.25;
  cfg.request_delay = 2.0;
  cfg.max_rounds = 25;
  cfg.record_outcomes = true;
  return cfg;
}

void expect_identical(const fleet::FleetResult& a, const fleet::FleetResult& b) {
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.aborted_irrelevant, b.aborted_irrelevant);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.frames_lost, b.frames_lost);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.suspensions, b.suspensions);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.content, b.content);            // bit-equal, not just near
  EXPECT_EQ(a.session_time_s, b.session_time_s);
  EXPECT_EQ(a.backoff_s, b.backoff_s);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
}

// Rebuilds the exact TransferConfig a fleet session ran under, for parity
// runs against the analytic oracles.
sim::TransferConfig base_transfer_config(const fleet::FleetConfig& cfg,
                                         const fleet::CookedDocument& cooked) {
  sim::TransferConfig tc;
  tc.m = static_cast<int>(cooked.transmitter.m());
  tc.n = static_cast<int>(cooked.transmitter.n());
  tc.alpha = cfg.alpha;
  tc.caching = cfg.caching;
  tc.relevance_threshold = cfg.relevance_threshold;
  tc.time_per_packet =
      static_cast<double>(cooked.frame_size) * 8.0 / cfg.bandwidth_bps;
  tc.request_delay = cfg.request_delay;
  tc.max_rounds = cfg.max_rounds;
  return tc;
}

void expect_session_matches_resilient_oracle(const fleet::FleetConfig& cfg,
                                             fleet::FleetEngine& engine,
                                             const fleet::SessionOutcome& out) {
  const auto cooked = engine.cache().get(out.key);
  sim::ResilientTransferConfig rc;
  rc.base = base_transfer_config(cfg, *cooked);
  rc.retry = cfg.retry;
  rc.jitter_seed = fleet::session_jitter_seed(cfg.seed, out.session);
  // The session's private outage process: a fresh clone of the prototype on
  // the session-relative link timeline, driven by the per-session stream.
  const std::shared_ptr<mw::channel::OutageModel> model =
      cfg.outage->session_clone();
  const auto outage_rng = std::make_shared<mw::Rng>(
      fleet::session_outage_seed(cfg.seed, out.session));
  rc.base.link_up = [model, outage_rng](double t) {
    return model->link_up(t, *outage_rng);
  };
  mw::Rng rng(fleet::session_seed(cfg.seed, out.session));
  const sim::TransferResult expected =
      sim::simulate_resilient_transfer(cooked->clear_content, rc, rng);

  EXPECT_EQ(out.result.packets, expected.packets);
  EXPECT_EQ(out.result.rounds, expected.rounds);
  EXPECT_EQ(out.result.completed, expected.completed);
  EXPECT_EQ(out.result.aborted_irrelevant, expected.aborted_irrelevant);
  EXPECT_EQ(out.result.gave_up, expected.gave_up);
  EXPECT_EQ(out.result.degraded, expected.degraded);
  EXPECT_EQ(out.result.content, expected.content);  // bit-equal
  EXPECT_EQ(out.result.time, expected.time);
  EXPECT_EQ(out.result.frames_lost, expected.frames_lost);
  EXPECT_EQ(out.result.suspensions, expected.suspensions);
  EXPECT_EQ(out.result.request_attempts, expected.request_attempts);
  EXPECT_EQ(out.result.backoff_s, expected.backoff_s);
}

}  // namespace

TEST(FleetEngine, DeterministicForFixedSeedAndShards) {
  const fleet::FleetConfig cfg = small_config(64);
  fleet::FleetEngine first(cfg);
  fleet::FleetEngine second(cfg);
  const fleet::FleetResult a = first.run();
  const fleet::FleetResult b = second.run();
  expect_identical(a, b);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].result.time, b.outcomes[i].result.time);
    EXPECT_EQ(a.outcomes[i].result.packets, b.outcomes[i].result.packets);
    EXPECT_EQ(a.outcomes[i].result.content, b.outcomes[i].result.content);
  }
}

TEST(FleetEngine, IntegerAggregatesInvariantAcrossShardCounts) {
  fleet::FleetConfig cfg = small_config(60);
  cfg.shards = 1;
  fleet::FleetEngine serial(cfg);
  const fleet::FleetResult a = serial.run();

  mw::ThreadPool pool(3);
  cfg.shards = 4;
  fleet::FleetEngine sharded(cfg);
  const fleet::FleetResult b = sharded.run(&pool);

  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.aborted_irrelevant, b.aborted_irrelevant);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  // Cache accounting is invariant too: misses == distinct (doc, gamma) keys,
  // hits == one serving per session.
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  // The per-session values are identical; only the summation order differs.
  EXPECT_NEAR(a.content, b.content, 1e-9);
  EXPECT_NEAR(a.session_time_s, b.session_time_s, 1e-6);
  // max() is order-independent, so the makespan matches exactly.
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(b.shards, 4u);
}

TEST(FleetEngine, PerSessionParityWithAnalyticSimulator) {
  fleet::FleetConfig cfg = small_config(40);
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  ASSERT_EQ(r.outcomes.size(), 40u);

  for (const fleet::SessionOutcome& out : r.outcomes) {
    const auto cooked = engine.cache().get(out.key);
    sim::TransferConfig tc;
    tc.m = static_cast<int>(cooked->transmitter.m());
    tc.n = static_cast<int>(cooked->transmitter.n());
    tc.alpha = cfg.alpha;
    tc.caching = cfg.caching;
    tc.relevance_threshold = cfg.relevance_threshold;
    tc.time_per_packet =
        static_cast<double>(cooked->frame_size) * 8.0 / cfg.bandwidth_bps;
    tc.request_delay = cfg.request_delay;
    tc.max_rounds = cfg.max_rounds;
    mw::Rng rng(fleet::session_seed(cfg.seed, out.session));
    const sim::TransferResult expected =
        sim::simulate_transfer(cooked->clear_content, tc, rng);

    EXPECT_EQ(out.result.packets, expected.packets);
    EXPECT_EQ(out.result.rounds, expected.rounds);
    EXPECT_EQ(out.result.completed, expected.completed);
    EXPECT_EQ(out.result.aborted_irrelevant, expected.aborted_irrelevant);
    EXPECT_EQ(out.result.gave_up, expected.gave_up);
    EXPECT_EQ(out.result.content, expected.content);  // bit-equal
    EXPECT_EQ(out.result.time, expected.time);
  }
}

TEST(FleetEngine, ParityHoldsWithoutCachingAndWithRelevanceThreshold) {
  fleet::FleetConfig cfg = small_config(24);
  cfg.caching = false;
  cfg.relevance_threshold = 0.5;
  cfg.alpha = 0.4;
  cfg.max_rounds = 6;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  ASSERT_EQ(r.outcomes.size(), 24u);

  long classified = 0;
  for (const fleet::SessionOutcome& out : r.outcomes) {
    const auto cooked = engine.cache().get(out.key);
    sim::TransferConfig tc;
    tc.m = static_cast<int>(cooked->transmitter.m());
    tc.n = static_cast<int>(cooked->transmitter.n());
    tc.alpha = cfg.alpha;
    tc.caching = cfg.caching;
    tc.relevance_threshold = cfg.relevance_threshold;
    tc.time_per_packet =
        static_cast<double>(cooked->frame_size) * 8.0 / cfg.bandwidth_bps;
    tc.request_delay = cfg.request_delay;
    tc.max_rounds = cfg.max_rounds;
    mw::Rng rng(fleet::session_seed(cfg.seed, out.session));
    const sim::TransferResult expected =
        sim::simulate_transfer(cooked->clear_content, tc, rng);
    EXPECT_EQ(out.result.completed, expected.completed);
    EXPECT_EQ(out.result.aborted_irrelevant, expected.aborted_irrelevant);
    EXPECT_EQ(out.result.gave_up, expected.gave_up);
    EXPECT_EQ(out.result.content, expected.content);
    EXPECT_EQ(out.result.time, expected.time);
    classified += (out.result.completed ? 1 : 0) +
                  (out.result.aborted_irrelevant ? 1 : 0) +
                  (out.result.gave_up ? 1 : 0);
  }
  // Every session terminates in exactly one of the three states.
  EXPECT_EQ(classified, 24);
  EXPECT_EQ(r.completed + r.aborted_irrelevant + r.gave_up,
            static_cast<long>(r.sessions));
}

TEST(FleetEngine, CleanChannelCompletesEverySessionInOneRound) {
  fleet::FleetConfig cfg = small_config(32);
  cfg.alpha = 0.0;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  EXPECT_EQ(r.completed, 32);
  EXPECT_EQ(r.gave_up, 0);
  EXPECT_EQ(r.rounds, 32);  // one round each
  // With no corruption a session needs exactly m frames (the systematic
  // clear-text prefix) to reconstruct.
  long expected_frames = 0;
  for (const fleet::SessionOutcome& out : r.outcomes) {
    const auto cooked = engine.cache().get(out.key);
    expected_frames += static_cast<long>(cooked->transmitter.m());
    EXPECT_EQ(out.result.rounds, 1);
  }
  EXPECT_EQ(r.frames_sent, expected_frames);
}

TEST(FleetEngine, HostileChannelGivesUpAtTheRoundCap) {
  fleet::FleetConfig cfg = small_config(16);
  cfg.alpha = 0.95;
  cfg.max_rounds = 3;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  EXPECT_GT(r.gave_up, 0);
  EXPECT_EQ(r.completed + r.gave_up + r.aborted_irrelevant,
            static_cast<long>(r.sessions));
  for (const fleet::SessionOutcome& out : r.outcomes) {
    EXPECT_LE(out.result.rounds, 3);
  }
}

TEST(FleetEngine, ArrivalSpreadStaggersSessionStarts) {
  fleet::FleetConfig cfg = small_config(20);
  cfg.arrival_spread_s = 100.0;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  double prev = -1.0;
  for (const fleet::SessionOutcome& out : r.outcomes) {
    EXPECT_GT(out.start_s, prev);
    EXPECT_LT(out.start_s, 100.0);
    prev = out.start_s;
  }
  EXPECT_GE(r.makespan_s, prev);
}

TEST(FleetEngine, MetricsMatchEngineAggregates) {
  mw::obs::MetricsRegistry registry;
  fleet::FleetConfig cfg = small_config(48);
  cfg.metrics = &registry;
  cfg.shards = 3;
  mw::ThreadPool pool(2);
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run(&pool);

  EXPECT_EQ(registry.counter("fleet.sessions").value(),
            static_cast<long>(r.sessions));
  EXPECT_EQ(registry.counter("fleet.sessions_completed").value(), r.completed);
  EXPECT_EQ(registry.counter("fleet.sessions_gave_up").value(), r.gave_up);
  EXPECT_EQ(registry.counter("fleet.frames_sent").value(), r.frames_sent);
  const mw::obs::Histogram* h = registry.find_histogram("fleet.session_time_s");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), static_cast<long>(r.sessions));
  EXPECT_NEAR(h->sum(), r.session_time_s, 1e-6);
}

TEST(FleetEngine, GammaMixKeysTheCachePerGamma) {
  fleet::FleetConfig cfg = small_config(42);
  cfg.corpus.corpus_size = 3;
  cfg.gammas = {1.0, 1.5};
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  // Documents and gammas cycle with coprime periods (3 and 2), so all
  // 3 x 2 = 6 (document, gamma) keys occur; every session is a warm hit.
  EXPECT_EQ(r.cache_misses, 6);
  EXPECT_EQ(r.cache_hits, static_cast<long>(r.sessions));
  EXPECT_EQ(engine.cache().size(), 6u);
  // gamma=1.0 means n == m (no redundancy); gamma=1.5 means n = ceil(1.5 m).
  const auto lean = engine.cache().get({0, 1.0});
  const auto fat = engine.cache().get({0, 1.5});
  EXPECT_EQ(lean->transmitter.n(), lean->transmitter.m());
  EXPECT_GT(fat->transmitter.n(), fat->transmitter.m());
}

// ---- DocumentCache ----

TEST(DocumentCache, RacingThreadsBuildEachKeyOnce) {
  fleet::CacheConfig cc;
  cc.corpus_size = 2;
  cc.seed = 9;
  fleet::DocumentCache cache(cc);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const fleet::CookedDocument>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&cache, &seen, i] { seen[static_cast<std::size_t>(i)] = cache.get({1, 1.5}); });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].get(), seen[0].get());
  }
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), kThreads - 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DocumentCache, PrefillDeduplicatesAndBatchesBuilds) {
  fleet::CacheConfig cc;
  cc.corpus_size = 4;
  cc.seed = 11;
  fleet::DocumentCache cache(cc);
  std::vector<fleet::CacheKey> keys;
  for (int rep = 0; rep < 5; ++rep) {
    for (std::uint32_t d = 0; d < 4; ++d) keys.push_back({d, 1.5});
  }
  mw::ThreadPool pool(2);
  cache.prefill(keys, &pool);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.misses(), 4);
  EXPECT_EQ(cache.hits(), 0);
  // A second prefill over the same keys is all warm.
  cache.prefill(keys, &pool);
  EXPECT_EQ(cache.misses(), 4);
  EXPECT_EQ(cache.hits(), 4);
}

TEST(DocumentCache, CookedDocumentIsInternallyConsistent) {
  fleet::CacheConfig cc;
  cc.corpus_size = 3;
  cc.seed = 5;
  fleet::DocumentCache cache(cc);
  const auto cooked = cache.get({2, 1.5});
  const std::size_t m = cooked->transmitter.m();
  EXPECT_EQ(cooked->clear_content.size(), m);
  EXPECT_GT(cooked->total_content, 0.99);  // normalized content sums to ~1
  EXPECT_LT(cooked->total_content, 1.01);
  double sum = 0.0;
  for (double c : cooked->clear_content) sum += c;
  EXPECT_EQ(sum, cooked->total_content);
  // Wire frames carry header + CRC on top of the packet payload.
  EXPECT_GT(cooked->frame_size, cc.doc.packet_size);
  EXPECT_EQ(cooked->transmitter.frames().size(), cooked->transmitter.n());
}

TEST(DocumentCache, CookedFramesDecodeBackToThePayload) {
  fleet::CacheConfig cc;
  cc.corpus_size = 2;
  cc.seed = 21;
  fleet::DocumentCache cache(cc);
  const fleet::CacheKey key{1, 1.5};
  const auto cooked = cache.get(key);

  mw::transmit::ReceiverConfig rc;
  rc.doc_id = cooked->transmitter.doc_id();
  rc.m = cooked->transmitter.m();
  rc.n = cooked->transmitter.n();
  rc.packet_size = cooked->transmitter.packet_size();
  rc.payload_size = cooked->transmitter.payload_size();
  mw::transmit::ClientReceiver receiver(rc,
                                        cooked->transmitter.document().segments);
  // The parity tail alone (skipping the systematic prefix) must reconstruct.
  for (std::size_t i = rc.n - rc.m; i < rc.n; ++i) {
    const auto fr = receiver.on_frame(mw::ByteSpan(cooked->transmitter.frame(i)));
    EXPECT_TRUE(fr.intact);
  }
  ASSERT_TRUE(receiver.complete());
  EXPECT_EQ(receiver.reconstruct(), cooked->transmitter.document().payload);
}

TEST(DocumentCache, DocumentSeedIsStablePerIndex) {
  EXPECT_EQ(fleet::document_seed(7, 3), fleet::document_seed(7, 3));
  EXPECT_NE(fleet::document_seed(7, 3), fleet::document_seed(7, 4));
  EXPECT_NE(fleet::document_seed(7, 3), fleet::document_seed(8, 3));
}

// ---- Weak connectivity (outage / suspend / degraded) ----

namespace {

fleet::FleetConfig outage_config(std::size_t sessions) {
  fleet::FleetConfig cfg = small_config(sessions);
  cfg.outage = std::make_shared<mw::channel::MarkovOutageModel>(
      mw::channel::MarkovOutageModel::with_duty_cycle(0.3, 5.0));
  cfg.retry.retry_budget = 12;
  cfg.retry.initial_timeout_s = 0.5;
  cfg.retry.backoff_multiplier = 2.0;
  cfg.retry.max_backoff_s = 30.0;
  cfg.retry.jitter = 0.1;
  return cfg;
}

}  // namespace

TEST(FleetOutage, PerSessionParityWithResilientOracleUnderMarkovFades) {
  fleet::FleetConfig cfg = outage_config(32);
  // Staggered starts must not perturb the parity: the link timeline is
  // session-relative, so the oracle (which always starts at t = 0) agrees.
  cfg.arrival_spread_s = 50.0;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  ASSERT_EQ(r.outcomes.size(), 32u);
  long suspensions = 0;
  for (const fleet::SessionOutcome& out : r.outcomes) {
    expect_session_matches_resilient_oracle(cfg, engine, out);
    suspensions += out.result.suspensions;
  }
  // The duty cycle is aggressive enough that the suspend path actually ran.
  EXPECT_GT(suspensions, 0);
  EXPECT_EQ(r.suspensions, suspensions);
  EXPECT_EQ(r.completed + r.gave_up + r.aborted_irrelevant + r.degraded,
            static_cast<long>(r.sessions));
}

TEST(FleetOutage, ParityHoldsWithFaultScheduleNoCachingAndRelevance) {
  fleet::FleetConfig cfg = outage_config(24);
  cfg.outage = std::make_shared<mw::channel::FaultSchedule>(
      std::vector<mw::channel::FaultSchedule::Window>{{2.0, 4.0}, {9.0, 40.0}});
  cfg.caching = false;
  cfg.relevance_threshold = 0.5;
  cfg.alpha = 0.3;
  cfg.max_rounds = 6;
  cfg.retry.retry_budget = 10;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  ASSERT_EQ(r.outcomes.size(), 24u);
  for (const fleet::SessionOutcome& out : r.outcomes) {
    expect_session_matches_resilient_oracle(cfg, engine, out);
  }
}

TEST(FleetOutage, MatchesRealResilientSessionUnderFaultSchedule) {
  // The fleet walk against the *real* stack: DocumentTransmitter frames over
  // a WirelessChannel with the same deterministic fault schedule, driven by
  // transmit::ResilientSession. With a clean error model (alpha = 0) the only
  // nondeterminism is the jitter stream, which both sides seed identically,
  // so the walks agree decision-for-decision.
  fleet::FleetConfig cfg = small_config(6);
  cfg.corpus.corpus_size = 3;
  cfg.alpha = 0.0;
  cfg.request_delay = 1.0;
  cfg.max_rounds = 8;
  const std::vector<mw::channel::FaultSchedule::Window> windows = {{3.0, 20.0}};
  cfg.outage = std::make_shared<mw::channel::FaultSchedule>(windows);
  cfg.retry.retry_budget = 16;
  cfg.retry.jitter = 0.1;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  ASSERT_EQ(r.outcomes.size(), 6u);

  long suspensions = 0;
  for (const fleet::SessionOutcome& out : r.outcomes) {
    const auto cooked = engine.cache().get(out.key);
    mw::transmit::ReceiverConfig rc;
    rc.doc_id = cooked->transmitter.doc_id();
    rc.m = cooked->transmitter.m();
    rc.n = cooked->transmitter.n();
    rc.packet_size = cooked->transmitter.packet_size();
    rc.payload_size = cooked->transmitter.payload_size();
    rc.caching = cfg.caching;
    mw::transmit::ClientReceiver receiver(rc,
                                          cooked->transmitter.document().segments);
    mw::channel::ChannelConfig cc;
    cc.bandwidth_bps = cfg.bandwidth_bps;
    cc.feedback_delay_s = cfg.request_delay;  // the fleet's re-request charge
    mw::channel::WirelessChannel ch(
        cc, std::make_unique<mw::channel::IidErrorModel>(0.0));
    ch.set_outage(std::make_unique<mw::channel::FaultSchedule>(windows));

    mw::transmit::ResilientConfig scfg;
    scfg.relevance_threshold = cfg.relevance_threshold;
    scfg.max_rounds = cfg.max_rounds;
    scfg.retry.retry_budget = cfg.retry.retry_budget;
    scfg.retry.initial_timeout_s = cfg.retry.initial_timeout_s;
    scfg.retry.backoff_multiplier = cfg.retry.backoff_multiplier;
    scfg.retry.max_backoff_s = cfg.retry.max_backoff_s;
    scfg.retry.jitter = cfg.retry.jitter;
    scfg.retry.deadline_s = cfg.retry.deadline_s;
    scfg.jitter_seed = fleet::session_jitter_seed(cfg.seed, out.session);
    mw::transmit::ResilientSession session(cooked->transmitter, receiver, ch,
                                           scfg);
    const mw::transmit::ResilientResult rr = session.run();

    EXPECT_EQ(out.result.completed,
              rr.session.status == mw::transmit::SessionStatus::kCompleted);
    EXPECT_EQ(out.result.degraded,
              rr.session.status == mw::transmit::SessionStatus::kDegraded);
    EXPECT_EQ(out.result.gave_up,
              rr.session.status == mw::transmit::SessionStatus::kGaveUp);
    EXPECT_EQ(out.result.rounds, rr.session.rounds);
    EXPECT_EQ(out.result.packets, rr.session.frames_sent);
    EXPECT_EQ(out.result.request_attempts, rr.request_attempts);
    EXPECT_EQ(out.result.suspensions, rr.outages_ridden);
    EXPECT_EQ(out.result.frames_lost, ch.stats().frames_lost);
    EXPECT_EQ(out.result.backoff_s, rr.backoff_total_s);  // bit-equal waits
    suspensions += out.result.suspensions;
  }
  // The schedule is built to force a suspend/resume ride in every session.
  EXPECT_EQ(suspensions, 6);
}

TEST(FleetOutage, DeterministicAndShardInvariantWithOutages) {
  fleet::FleetConfig cfg = outage_config(60);
  cfg.retry.retry_budget = 8;  // tight enough that some sessions degrade
  cfg.shards = 1;
  fleet::FleetEngine serial(cfg);
  fleet::FleetEngine again(cfg);
  const fleet::FleetResult a = serial.run();
  expect_identical(a, again.run());  // fixed (seed, shards) reproduces

  mw::ThreadPool pool(3);
  cfg.shards = 4;
  fleet::FleetEngine sharded(cfg);
  const fleet::FleetResult b = sharded.run(&pool);
  EXPECT_EQ(b.shards, 4u);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.aborted_irrelevant, b.aborted_irrelevant);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.frames_lost, b.frames_lost);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.suspensions, b.suspensions);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_NEAR(a.content, b.content, 1e-9);
  EXPECT_NEAR(a.session_time_s, b.session_time_s, 1e-6);
  EXPECT_NEAR(a.backoff_s, b.backoff_s, 1e-6);
  // The outage machinery actually engaged at this duty cycle and budget.
  EXPECT_GT(a.frames_lost, 0);
  EXPECT_GT(a.suspensions, 0);
  EXPECT_GT(a.degraded, 0);
}

TEST(FleetOutage, TerminatesAtTheRoundCapUnderAPermanentOutage) {
  // A link that never comes up: every frame of round 1 is lost. At the round
  // cap the session must give up — the `>=` guard fires before the suspend
  // path can spin — with the full loss accounted.
  fleet::FleetConfig cfg = small_config(8);
  cfg.outage = std::make_shared<mw::channel::FaultSchedule>(
      std::vector<mw::channel::FaultSchedule::Window>{{0.0, 1e9}});
  cfg.max_rounds = 1;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  EXPECT_EQ(r.gave_up, 8);
  EXPECT_EQ(r.degraded, 0);
  EXPECT_EQ(r.frames_lost, r.frames_sent);  // nothing ever arrived
  EXPECT_EQ(r.content, 0.0);
  for (const fleet::SessionOutcome& out : r.outcomes) {
    EXPECT_EQ(out.result.rounds, 1);
    EXPECT_TRUE(out.result.gave_up);
  }
}

TEST(FleetOutage, PermanentOutageExhaustsTheBudgetIntoDegraded) {
  // Below the cap, the same dead link drains the retry budget in the suspend
  // loop and terminates degraded, carrying zero content.
  fleet::FleetConfig cfg = small_config(8);
  cfg.outage = std::make_shared<mw::channel::FaultSchedule>(
      std::vector<mw::channel::FaultSchedule::Window>{{0.0, 1e9}});
  cfg.max_rounds = 25;
  cfg.retry.retry_budget = 4;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  EXPECT_EQ(r.degraded, 8);
  EXPECT_EQ(r.gave_up, 0);
  EXPECT_EQ(r.completed, 0);
  EXPECT_EQ(r.frames_lost, r.frames_sent);
  for (const fleet::SessionOutcome& out : r.outcomes) {
    EXPECT_TRUE(out.result.degraded);
    EXPECT_EQ(out.result.rounds, 1);
    EXPECT_EQ(out.result.request_attempts, 4);
    EXPECT_EQ(out.result.suspensions, 0);  // never saw the link return
    EXPECT_EQ(out.result.content, 0.0);
    EXPECT_GT(out.result.backoff_s, 0.0);
  }
}

TEST(FleetOutage, MetricsIncludeOutageAndPerStatusSeries) {
  mw::obs::MetricsRegistry registry;
  fleet::FleetConfig cfg = outage_config(48);
  cfg.retry.retry_budget = 8;
  cfg.metrics = &registry;
  cfg.shards = 3;
  mw::ThreadPool pool(2);
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run(&pool);

  EXPECT_EQ(registry.counter("fleet.sessions_degraded").value(), r.degraded);
  EXPECT_EQ(registry.counter("fleet.frames_lost_outage").value(), r.frames_lost);
  EXPECT_EQ(registry.counter("fleet.suspensions").value(), r.suspensions);
  const auto* total = registry.find_histogram("fleet.session_time_s");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count(), static_cast<long>(r.sessions));
  long by_status = 0;
  const auto* completed =
      registry.find_histogram("fleet.session_time_s{status=completed}");
  const auto* gave_up =
      registry.find_histogram("fleet.session_time_s{status=gave_up}");
  const auto* degraded =
      registry.find_histogram("fleet.session_time_s{status=degraded}");
  const auto* aborted = registry.find_histogram(
      "fleet.session_time_s{status=aborted_irrelevant}");
  for (const auto* h : {completed, gave_up, degraded, aborted}) {
    ASSERT_NE(h, nullptr);
    by_status += h->count();
  }
  EXPECT_EQ(by_status, static_cast<long>(r.sessions));
  EXPECT_EQ(completed->count(), r.completed);
  EXPECT_EQ(degraded->count(), r.degraded);
}

// ---- Workload shape (Zipf popularity, Poisson arrivals) ----

TEST(FleetWorkload, ZipfDrawMatchesTheExpectedSkew) {
  fleet::FleetConfig cfg = small_config(4000);
  cfg.alpha = 0.0;  // one clean round per session: keep the test fast
  cfg.zipf_s = 1.0;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  std::vector<long> freq(cfg.corpus.corpus_size, 0);
  for (const fleet::SessionOutcome& out : r.outcomes) {
    ASSERT_LT(out.key.doc_index, cfg.corpus.corpus_size);
    ++freq[out.key.doc_index];
  }
  // Zipf(1) over 8 documents: p(rank) = (1/rank) / H_8. The rank-1 /
  // rank-4 frequency ratio is 4; with 4000 draws the estimate lands well
  // within +-25% for this fixed seed.
  ASSERT_GT(freq[3], 0);
  const double ratio = static_cast<double>(freq[0]) / static_cast<double>(freq[3]);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
  EXPECT_GT(freq[0], freq[7]);  // popularity is monotone in rank overall
}

TEST(FleetWorkload, ZipfOffReproducesRoundRobinExactly) {
  fleet::FleetConfig cfg = small_config(20);
  cfg.zipf_s = 0.0;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  for (const fleet::SessionOutcome& out : r.outcomes) {
    EXPECT_EQ(out.key.doc_index, out.session % cfg.corpus.corpus_size);
  }
}

TEST(FleetWorkload, PoissonArrivalsAreDeterministicAndShardInvariant) {
  fleet::FleetConfig cfg = small_config(40);
  cfg.alpha = 0.0;
  cfg.arrival_rate_hz = 0.5;  // mean inter-arrival gap of 2 s
  cfg.shards = 1;
  fleet::FleetEngine serial(cfg);
  const fleet::FleetResult a = serial.run();
  ASSERT_EQ(a.outcomes.size(), 40u);
  EXPECT_EQ(a.outcomes[0].start_s, 0.0);
  double prev = -1.0;
  for (const fleet::SessionOutcome& out : a.outcomes) {
    EXPECT_GT(out.start_s, prev);
    prev = out.start_s;
  }
  // 39 exponential gaps at rate 0.5: the sample mean is close to 2 s.
  const double mean_gap = a.outcomes.back().start_s / 39.0;
  EXPECT_GT(mean_gap, 1.0);
  EXPECT_LT(mean_gap, 3.5);

  mw::ThreadPool pool(3);
  cfg.shards = 4;
  fleet::FleetEngine sharded(cfg);
  const fleet::FleetResult b = sharded.run(&pool);
  ASSERT_EQ(b.outcomes.size(), 40u);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(a.outcomes[i].start_s, b.outcomes[i].start_s);
  }
  EXPECT_EQ(a.makespan_s, b.makespan_s);
}

// ---- Prefill distinct-key accounting ----

TEST(FleetEngine, PrefillCountsLcmDistinctKeysNotTheProduct) {
  // corpus and gamma-list sizes share a factor: the (i % corpus,
  // gammas[i % n_gammas]) walk visits lcm(4, 2) = 4 distinct keys, not
  // 4 * 2 = 8. The cache must report exactly the lcm — one build per key
  // actually used, every session a warm hit.
  fleet::FleetConfig cfg = small_config(40);
  cfg.corpus.corpus_size = 4;
  cfg.gammas = {1.0, 1.5};
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  EXPECT_EQ(r.cache_misses, 4);
  EXPECT_EQ(r.cache_hits, static_cast<long>(r.sessions));
  EXPECT_EQ(engine.cache().size(), 4u);
  // Only even documents ever pair with gamma 1.0 (and odd with 1.5).
  for (const fleet::SessionOutcome& out : r.outcomes) {
    EXPECT_EQ(out.key.gamma, out.session % 2 == 0 ? 1.0 : 1.5);
  }
}

TEST(FleetEngine, PrefillLcmHoldsForLargerSharedFactors) {
  fleet::FleetConfig cfg = small_config(60);
  cfg.corpus.corpus_size = 6;
  cfg.gammas = {1.0, 1.25, 1.5, 1.75};
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  // lcm(6, 4) = 12 distinct keys, not 24.
  EXPECT_EQ(r.cache_misses, 12);
  EXPECT_EQ(engine.cache().size(), 12u);
  EXPECT_EQ(r.cache_hits, static_cast<long>(r.sessions));
}

// ---- Bitmap bound on the cooked set ----

TEST(DocumentCache, OversizedCookedSetIsRejectedAtBuildTime) {
  // gamma = 7 requests ceil(7 * 40) = 280 packets — beyond the engine's
  // 256-bit per-session bitmap. The transmitter would silently clamp that to
  // the GF(256) encoder cap and serve less redundancy than configured; the
  // cache rejects the spec at cook time instead.
  fleet::CacheConfig cc;
  cc.corpus_size = 1;
  cc.seed = 3;
  fleet::DocumentCache cache(cc);
  EXPECT_THROW(cache.get({0, 7.0}), mw::ContractViolation);
  // The boundary request passes: ceil(6.4 * 40) = 256 fits the bitmap (the
  // encoder then delivers its own GF(256) maximum of 255 cooked packets).
  const auto cooked = cache.get({0, 6.4});
  EXPECT_EQ(cooked->transmitter.n(), fleet::kMaxCookedPackets - 1);
}

TEST(FleetEngine, OversizedGammaSurfacesFromRun) {
  fleet::FleetConfig cfg = small_config(4);
  cfg.gammas = {7.0};
  fleet::FleetEngine engine(cfg);
  EXPECT_THROW(engine.run(), mw::ContractViolation);
}

// ---- Edge proxy tier (origin failover, staleness, reconciliation) ----

namespace {

// An edge tier aggressive enough that every branch of the proxied walk runs:
// warm misses, origin fades (failover + stale serves + origin suspensions),
// a moving corpus (generation bumps -> reconcile refetches), and handoffs.
fleet::FleetConfig proxied_config(std::size_t sessions) {
  fleet::FleetConfig cfg = small_config(sessions);
  cfg.alpha = 0.55;  // several stalled rounds per session -> handoff draws
  cfg.proxy.emplace();
  cfg.proxy->model.warm_hit = 0.6;
  cfg.proxy->model.replica_age_mean_s = 40.0;
  cfg.proxy->model.origin_fetch_delay_s = 0.5;
  cfg.proxy->model.handoff_rate = 0.35;
  cfg.proxy->model.handoff_delay_s = 0.3;
  cfg.proxy->model.update_interval_s = 15.0;
  cfg.proxy->model.proxies = 4;
  cfg.proxy->origin_outage = std::make_shared<mw::channel::MarkovOutageModel>(
      mw::channel::MarkovOutageModel::with_duty_cycle(0.4, 6.0));
  cfg.retry.retry_budget = 12;
  cfg.retry.initial_timeout_s = 0.5;
  cfg.retry.backoff_multiplier = 2.0;
  cfg.retry.max_backoff_s = 30.0;
  cfg.retry.jitter = 0.1;
  return cfg;
}

// Re-runs one fleet session through sim::simulate_proxied_transfer with the
// session's exact seeds and model clones; every result field must be
// bit-equal — the engine's proxied round body IS the oracle's.
void expect_session_matches_proxied_oracle(const fleet::FleetConfig& cfg,
                                           fleet::FleetEngine& engine,
                                           const fleet::SessionOutcome& out) {
  const auto cooked = engine.cache().get(out.key);
  sim::ProxiedTransferConfig pc;
  pc.base = base_transfer_config(cfg, *cooked);
  pc.retry = cfg.retry;
  pc.proxy = cfg.proxy->model;
  pc.jitter_seed = fleet::session_jitter_seed(cfg.seed, out.session);
  pc.proxy_seed = fleet::session_proxy_seed(cfg.seed, out.session);
  if (cfg.outage != nullptr) {
    const std::shared_ptr<mw::channel::OutageModel> link =
        cfg.outage->session_clone();
    const auto link_rng = std::make_shared<mw::Rng>(
        fleet::session_outage_seed(cfg.seed, out.session));
    pc.base.link_up = [link, link_rng](double t) {
      return link->link_up(t, *link_rng);
    };
  }
  if (cfg.proxy->origin_outage != nullptr) {
    const std::shared_ptr<mw::channel::OutageModel> origin =
        cfg.proxy->origin_outage->session_clone();
    const auto origin_rng = std::make_shared<mw::Rng>(
        fleet::session_origin_seed(cfg.seed, out.session));
    pc.origin_up = [origin, origin_rng](double t) {
      return origin->link_up(t, *origin_rng);
    };
  }
  mw::Rng rng(fleet::session_seed(cfg.seed, out.session));
  const sim::ProxiedTransferResult expected =
      sim::simulate_proxied_transfer(cooked->clear_content, pc, rng);

  EXPECT_EQ(out.result.packets, expected.transfer.packets);
  EXPECT_EQ(out.result.rounds, expected.transfer.rounds);
  EXPECT_EQ(out.result.completed, expected.transfer.completed);
  EXPECT_EQ(out.result.aborted_irrelevant, expected.transfer.aborted_irrelevant);
  EXPECT_EQ(out.result.gave_up, expected.transfer.gave_up);
  EXPECT_EQ(out.result.degraded, expected.transfer.degraded);
  EXPECT_EQ(out.result.content, expected.transfer.content);  // bit-equal
  EXPECT_EQ(out.result.time, expected.transfer.time);
  EXPECT_EQ(out.result.frames_lost, expected.transfer.frames_lost);
  EXPECT_EQ(out.result.suspensions, expected.transfer.suspensions);
  EXPECT_EQ(out.result.request_attempts, expected.transfer.request_attempts);
  EXPECT_EQ(out.result.backoff_s, expected.transfer.backoff_s);
  EXPECT_EQ(out.proxy.replica_hits, expected.proxy.replica_hits);
  EXPECT_EQ(out.proxy.stale_serves, expected.proxy.stale_serves);
  EXPECT_EQ(out.proxy.failovers, expected.proxy.failovers);
  EXPECT_EQ(out.proxy.handoffs, expected.proxy.handoffs);
  EXPECT_EQ(out.proxy.origin_fetches, expected.proxy.origin_fetches);
  EXPECT_EQ(out.proxy.origin_suspensions, expected.proxy.origin_suspensions);
  EXPECT_EQ(out.proxy.reconciliations, expected.proxy.reconciliations);
  EXPECT_EQ(out.proxy.packets_refetched, expected.proxy.packets_refetched);
  EXPECT_EQ(out.proxy.stale_frames, expected.proxy.stale_frames);
  EXPECT_EQ(out.proxy.ended_stale, expected.proxy.ended_stale);
  EXPECT_EQ(out.proxy.origin_generation_bumps,
            expected.proxy.origin_generation_bumps);
  EXPECT_EQ(out.proxy.reconcile_dropped_packets,
            expected.proxy.reconcile_dropped_packets);
  EXPECT_EQ(out.proxy_id, fleet::session_proxy_assignment(
                              cfg.seed, out.session, cfg.proxy->model.proxies));
}

void expect_proxy_totals_equal(const fleet::FleetProxyTotals& a,
                               const fleet::FleetProxyTotals& b) {
  EXPECT_EQ(a.replica_hits, b.replica_hits);
  EXPECT_EQ(a.stale_serves, b.stale_serves);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.handoffs, b.handoffs);
  EXPECT_EQ(a.origin_fetches, b.origin_fetches);
  EXPECT_EQ(a.origin_suspensions, b.origin_suspensions);
  EXPECT_EQ(a.reconciliations, b.reconciliations);
  EXPECT_EQ(a.packets_refetched, b.packets_refetched);
  EXPECT_EQ(a.stale_frames, b.stale_frames);
  EXPECT_EQ(a.sessions_ended_stale, b.sessions_ended_stale);
  EXPECT_EQ(a.origin_generation_bumps, b.origin_generation_bumps);
  EXPECT_EQ(a.reconcile_dropped_packets, b.reconcile_dropped_packets);
}

}  // namespace

TEST(FleetProxy, PerSessionParityWithProxiedOracle) {
  fleet::FleetConfig cfg = proxied_config(32);
  // Staggered starts must not perturb the parity: both the link and the
  // origin timelines are session-relative.
  cfg.arrival_spread_s = 40.0;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  ASSERT_EQ(r.outcomes.size(), 32u);

  fleet::FleetProxyTotals sums;
  for (const fleet::SessionOutcome& out : r.outcomes) {
    expect_session_matches_proxied_oracle(cfg, engine, out);
    sums.replica_hits += out.proxy.replica_hits;
    sums.stale_serves += out.proxy.stale_serves;
    sums.failovers += out.proxy.failovers;
    sums.handoffs += out.proxy.handoffs;
    sums.origin_fetches += out.proxy.origin_fetches;
    sums.origin_suspensions += out.proxy.origin_suspensions;
    sums.reconciliations += out.proxy.reconciliations;
    sums.packets_refetched += out.proxy.packets_refetched;
    sums.stale_frames += out.proxy.stale_frames;
    sums.sessions_ended_stale += out.proxy.ended_stale ? 1 : 0;
    sums.origin_generation_bumps += out.proxy.origin_generation_bumps;
    sums.reconcile_dropped_packets += out.proxy.reconcile_dropped_packets;
  }
  expect_proxy_totals_equal(r.proxy, sums);
  // The whole edge tier actually engaged at this duty cycle.
  EXPECT_GT(r.proxy.replica_hits, 0);
  EXPECT_GT(r.proxy.failovers, 0);
  EXPECT_GT(r.proxy.stale_serves, 0);
  EXPECT_GT(r.proxy.handoffs, 0);
  EXPECT_GT(r.proxy.origin_fetches, 0);
  EXPECT_GT(r.proxy.reconciliations, 0);
}

TEST(FleetProxy, ParityHoldsWithLinkFadesNoCachingAndRelevance) {
  // Both failure domains at once (link fades AND origin fades), plus the
  // no-caching client and the relevance abort: the walk must still agree with
  // the oracle decision-for-decision.
  fleet::FleetConfig cfg = proxied_config(24);
  cfg.outage = std::make_shared<mw::channel::MarkovOutageModel>(
      mw::channel::MarkovOutageModel::with_duty_cycle(0.3, 5.0));
  cfg.caching = false;
  cfg.relevance_threshold = 0.5;
  cfg.alpha = 0.3;
  cfg.max_rounds = 8;
  cfg.proxy->model.update_interval_s = 5.0;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  ASSERT_EQ(r.outcomes.size(), 24u);
  for (const fleet::SessionOutcome& out : r.outcomes) {
    expect_session_matches_proxied_oracle(cfg, engine, out);
  }
  EXPECT_EQ(r.completed + r.gave_up + r.aborted_irrelevant + r.degraded,
            static_cast<long>(r.sessions));
}

TEST(FleetProxy, DeterministicAndShardInvariantWithProxy) {
  fleet::FleetConfig cfg = proxied_config(60);
  cfg.outage = std::make_shared<mw::channel::MarkovOutageModel>(
      mw::channel::MarkovOutageModel::with_duty_cycle(0.3, 5.0));
  cfg.shards = 1;
  fleet::FleetEngine serial(cfg);
  fleet::FleetEngine again(cfg);
  const fleet::FleetResult a = serial.run();
  const fleet::FleetResult a2 = again.run();
  expect_identical(a, a2);  // fixed (seed, shards) reproduces
  expect_proxy_totals_equal(a.proxy, a2.proxy);

  mw::ThreadPool pool(3);
  cfg.shards = 4;
  fleet::FleetEngine sharded(cfg);
  const fleet::FleetResult b = sharded.run(&pool);
  EXPECT_EQ(b.shards, 4u);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.aborted_irrelevant, b.aborted_irrelevant);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.frames_lost, b.frames_lost);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.suspensions, b.suspensions);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_NEAR(a.content, b.content, 1e-9);
  EXPECT_NEAR(a.session_time_s, b.session_time_s, 1e-6);
  expect_proxy_totals_equal(a.proxy, b.proxy);
  // The edge tier engaged in every dimension that shard order could perturb.
  EXPECT_GT(a.proxy.failovers, 0);
  EXPECT_GT(a.proxy.handoffs, 0);
  EXPECT_GT(a.proxy.packets_refetched, 0);
  EXPECT_GT(a.proxy.origin_generation_bumps, 0);
  // In the analytic walk every reconcile-dropped packet is re-fetched.
  EXPECT_EQ(a.proxy.reconcile_dropped_packets, a.proxy.packets_refetched);
}

TEST(FleetProxy, TransparentProxyMatchesTheDirectWalkPerSession) {
  // warm_hit = 1, a static corpus, no handoffs, no origin fades: the proxy
  // tier charges nothing and loses nothing, so per-session results must be
  // bit-equal to the same fleet run WITHOUT the proxy — the edge tier's
  // draws live on their own RNG streams and cannot perturb the walk.
  fleet::FleetConfig direct = outage_config(24);
  fleet::FleetConfig proxied = outage_config(24);
  proxied.proxy.emplace();
  proxied.proxy->model.warm_hit = 1.0;
  proxied.proxy->model.update_interval_s = 0.0;
  proxied.proxy->model.handoff_rate = 0.0;
  proxied.proxy->origin_outage = nullptr;

  fleet::FleetEngine direct_engine(direct);
  fleet::FleetEngine proxied_engine(proxied);
  const fleet::FleetResult a = direct_engine.run();
  const fleet::FleetResult b = proxied_engine.run();
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].result.packets, b.outcomes[i].result.packets);
    EXPECT_EQ(a.outcomes[i].result.rounds, b.outcomes[i].result.rounds);
    EXPECT_EQ(a.outcomes[i].result.completed, b.outcomes[i].result.completed);
    EXPECT_EQ(a.outcomes[i].result.content, b.outcomes[i].result.content);
    EXPECT_EQ(a.outcomes[i].result.time, b.outcomes[i].result.time);
    EXPECT_EQ(a.outcomes[i].result.suspensions,
              b.outcomes[i].result.suspensions);
    EXPECT_EQ(a.outcomes[i].result.backoff_s, b.outcomes[i].result.backoff_s);
  }
  // A transparent edge tier never fails over, never serves stale, never drops
  // a cached packet — it only records hits and resume reconciliations.
  EXPECT_EQ(b.proxy.stale_serves, 0);
  EXPECT_EQ(b.proxy.failovers, 0);
  EXPECT_EQ(b.proxy.handoffs, 0);
  EXPECT_EQ(b.proxy.packets_refetched, 0);
  EXPECT_EQ(b.proxy.stale_frames, 0);
  EXPECT_EQ(b.proxy.sessions_ended_stale, 0);
  EXPECT_EQ(b.proxy.origin_generation_bumps, 0);
  EXPECT_EQ(b.proxy.reconcile_dropped_packets, 0);
  EXPECT_GE(b.proxy.replica_hits, static_cast<long>(b.sessions));
  EXPECT_EQ(b.proxy.reconciliations, b.suspensions);
}

TEST(FleetProxy, MetricsIncludeEdgeTierSeries) {
  mw::obs::MetricsRegistry registry;
  fleet::FleetConfig cfg = proxied_config(48);
  cfg.metrics = &registry;
  cfg.shards = 3;
  mw::ThreadPool pool(2);
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run(&pool);

  EXPECT_EQ(registry.counter("proxy.replica_hits").value(),
            r.proxy.replica_hits);
  EXPECT_EQ(registry.counter("proxy.stale_serves").value(),
            r.proxy.stale_serves);
  EXPECT_EQ(registry.counter("proxy.failovers").value(), r.proxy.failovers);
  EXPECT_EQ(registry.counter("proxy.handoffs").value(), r.proxy.handoffs);
  EXPECT_EQ(registry.counter("proxy.origin_fetches").value(),
            r.proxy.origin_fetches);
  EXPECT_EQ(registry.counter("proxy.origin_suspensions").value(),
            r.proxy.origin_suspensions);
  EXPECT_EQ(registry.counter("proxy.reconciliations").value(),
            r.proxy.reconciliations);
  EXPECT_EQ(registry.counter("proxy.packets_refetched").value(),
            r.proxy.packets_refetched);
  EXPECT_EQ(registry.counter("proxy.stale_frames").value(),
            r.proxy.stale_frames);
  EXPECT_EQ(registry.counter("proxy.sessions_ended_stale").value(),
            r.proxy.sessions_ended_stale);
  EXPECT_EQ(registry.counter("proxy.origin_generation_bumps").value(),
            r.proxy.origin_generation_bumps);
  EXPECT_EQ(registry.counter("proxy.reconcile_dropped_packets").value(),
            r.proxy.reconcile_dropped_packets);
  EXPECT_GT(r.proxy.replica_hits + r.proxy.origin_fetches, 0);
}

// ---- Bounded document cache (LRU + IC-weighted admission) ----

TEST(DocumentCache, BoundedAdmissionPrefersTheDenserEncoding) {
  fleet::CacheConfig cc;
  cc.corpus_size = 4;
  cc.seed = 77;
  cc.capacity = 1;
  {
    // Dense resident first: the sparse newcomer (3x the wire bytes for the
    // same content) is served but NOT admitted.
    fleet::DocumentCache cache(cc);
    const auto dense = cache.get({0, 1.0});
    const auto sparse = cache.get({0, 3.0});
    EXPECT_GT(fleet::DocumentCache::admission_weight(*dense),
              fleet::DocumentCache::admission_weight(*sparse));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.misses(), 2);
    EXPECT_EQ(cache.admission_rejects(), 1);
    EXPECT_EQ(cache.evictions(), 0);
    // The dense resident survived the low-value burst.
    cache.get({0, 1.0});
    EXPECT_EQ(cache.hits(), 1);
    EXPECT_EQ(cache.misses(), 2);
  }
  {
    // Sparse resident first: the denser newcomer displaces it, and the
    // evicted encoding recounts as a miss on its next request.
    fleet::DocumentCache cache(cc);
    cache.get({0, 3.0});
    cache.get({0, 1.0});
    EXPECT_EQ(cache.evictions(), 1);
    EXPECT_EQ(cache.admission_rejects(), 0);
    EXPECT_EQ(cache.size(), 1u);
    cache.get({0, 3.0});
    EXPECT_EQ(cache.misses(), 3);
    EXPECT_EQ(cache.hits(), 0);
  }
}

TEST(DocumentCache, BoundedModeEvictsTheLeastRecentlyUsedKey) {
  // Same gamma across documents -> equal admission weights (the synthetic
  // corpus normalizes each document's content to 1), so admission always
  // passes and the policy reduces to pure LRU.
  fleet::CacheConfig cc;
  cc.corpus_size = 4;
  cc.seed = 77;
  cc.capacity = 2;
  fleet::DocumentCache cache(cc);
  cache.get({0, 1.5});
  cache.get({1, 1.5});
  cache.get({0, 1.5});  // touch 0: the LRU victim is now 1
  cache.get({2, 1.5});  // displaces 1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  const long misses_before = cache.misses();
  cache.get({0, 1.5});  // still resident
  EXPECT_EQ(cache.misses(), misses_before);
  cache.get({1, 1.5});  // evicted above: rebuilds
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(DocumentCache, UnboundedModeNeverEvicts) {
  fleet::CacheConfig cc;
  cc.corpus_size = 4;
  cc.seed = 77;  // capacity = 0: legacy unbounded residency
  fleet::DocumentCache cache(cc);
  for (std::uint32_t d = 0; d < 4; ++d) cache.get({d, 1.5});
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 0);
  EXPECT_EQ(cache.admission_rejects(), 0);
}

TEST(FleetEngine, BoundedCacheKeepsServingInvariantAcrossShardCounts) {
  // Under a capacity bound, WHICH get() is a hit depends on eviction order,
  // which shard interleaving may perturb — but every session is served
  // exactly once and each serving charges exactly one of hit/miss, so the
  // sum is invariant. The cooked document itself is a pure function of the
  // key, so rebuilds cannot perturb the walks either.
  fleet::FleetConfig cfg = small_config(48);
  cfg.corpus.corpus_size = 8;
  cfg.corpus.capacity = 3;
  cfg.shards = 1;
  fleet::FleetEngine serial(cfg);
  const fleet::FleetResult a = serial.run();

  mw::ThreadPool pool(3);
  cfg.shards = 4;
  fleet::FleetEngine sharded(cfg);
  const fleet::FleetResult b = sharded.run(&pool);

  EXPECT_EQ(a.cache_hits + a.cache_misses, b.cache_hits + b.cache_misses);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_NEAR(a.content, b.content, 1e-9);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  // The bound actually bound: rebuilds happened and residency stayed capped.
  EXPECT_GT(a.cache_misses, 8);  // > distinct keys -> evict/rebuild churn
  EXPECT_LE(serial.cache().size(), 3u);
  EXPECT_LE(sharded.cache().size(), 3u);
  EXPECT_LE(serial.cache().evictions(), serial.cache().misses());
}
