// fleet: sharded discrete-event engine + shared pre-encoded document cache.
//
// The load-bearing properties pinned here:
//   * determinism — (seed, shards) reproduces aggregates bit-for-bit, and
//     integer aggregates (plus cache hit/miss counts) are invariant across
//     shard counts;
//   * per-session parity — the fleet state machine is sim::simulate_transfer
//     exactly (same draw order), so per-session results are bit-equal;
//   * cache dedup — one build per (document, gamma) no matter how many
//     threads race on the key, and cooked frames decode back to the payload;
//   * metrics — shards record into one shared registry concurrently and the
//     totals match the engine's own aggregates.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "fleet/engine.hpp"
#include "sim/transfer.hpp"
#include "transmit/receiver.hpp"
#include "util/thread_pool.hpp"

namespace mw = mobiweb;
namespace fleet = mobiweb::fleet;
namespace sim = mobiweb::sim;

namespace {

fleet::FleetConfig small_config(std::size_t sessions) {
  fleet::FleetConfig cfg;
  cfg.corpus.corpus_size = 8;
  cfg.corpus.seed = 77;
  cfg.sessions = sessions;
  cfg.seed = 1234;
  cfg.alpha = 0.25;
  cfg.request_delay = 2.0;
  cfg.max_rounds = 25;
  cfg.record_outcomes = true;
  return cfg;
}

void expect_identical(const fleet::FleetResult& a, const fleet::FleetResult& b) {
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.aborted_irrelevant, b.aborted_irrelevant);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.content, b.content);            // bit-equal, not just near
  EXPECT_EQ(a.session_time_s, b.session_time_s);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
}

}  // namespace

TEST(FleetEngine, DeterministicForFixedSeedAndShards) {
  const fleet::FleetConfig cfg = small_config(64);
  fleet::FleetEngine first(cfg);
  fleet::FleetEngine second(cfg);
  const fleet::FleetResult a = first.run();
  const fleet::FleetResult b = second.run();
  expect_identical(a, b);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].result.time, b.outcomes[i].result.time);
    EXPECT_EQ(a.outcomes[i].result.packets, b.outcomes[i].result.packets);
    EXPECT_EQ(a.outcomes[i].result.content, b.outcomes[i].result.content);
  }
}

TEST(FleetEngine, IntegerAggregatesInvariantAcrossShardCounts) {
  fleet::FleetConfig cfg = small_config(60);
  cfg.shards = 1;
  fleet::FleetEngine serial(cfg);
  const fleet::FleetResult a = serial.run();

  mw::ThreadPool pool(3);
  cfg.shards = 4;
  fleet::FleetEngine sharded(cfg);
  const fleet::FleetResult b = sharded.run(&pool);

  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.aborted_irrelevant, b.aborted_irrelevant);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  // Cache accounting is invariant too: misses == distinct (doc, gamma) keys,
  // hits == one serving per session.
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  // The per-session values are identical; only the summation order differs.
  EXPECT_NEAR(a.content, b.content, 1e-9);
  EXPECT_NEAR(a.session_time_s, b.session_time_s, 1e-6);
  // max() is order-independent, so the makespan matches exactly.
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(b.shards, 4u);
}

TEST(FleetEngine, PerSessionParityWithAnalyticSimulator) {
  fleet::FleetConfig cfg = small_config(40);
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  ASSERT_EQ(r.outcomes.size(), 40u);

  for (const fleet::SessionOutcome& out : r.outcomes) {
    const auto cooked = engine.cache().get(out.key);
    sim::TransferConfig tc;
    tc.m = static_cast<int>(cooked->transmitter.m());
    tc.n = static_cast<int>(cooked->transmitter.n());
    tc.alpha = cfg.alpha;
    tc.caching = cfg.caching;
    tc.relevance_threshold = cfg.relevance_threshold;
    tc.time_per_packet =
        static_cast<double>(cooked->frame_size) * 8.0 / cfg.bandwidth_bps;
    tc.request_delay = cfg.request_delay;
    tc.max_rounds = cfg.max_rounds;
    mw::Rng rng(fleet::session_seed(cfg.seed, out.session));
    const sim::TransferResult expected =
        sim::simulate_transfer(cooked->clear_content, tc, rng);

    EXPECT_EQ(out.result.packets, expected.packets);
    EXPECT_EQ(out.result.rounds, expected.rounds);
    EXPECT_EQ(out.result.completed, expected.completed);
    EXPECT_EQ(out.result.aborted_irrelevant, expected.aborted_irrelevant);
    EXPECT_EQ(out.result.gave_up, expected.gave_up);
    EXPECT_EQ(out.result.content, expected.content);  // bit-equal
    EXPECT_EQ(out.result.time, expected.time);
  }
}

TEST(FleetEngine, ParityHoldsWithoutCachingAndWithRelevanceThreshold) {
  fleet::FleetConfig cfg = small_config(24);
  cfg.caching = false;
  cfg.relevance_threshold = 0.5;
  cfg.alpha = 0.4;
  cfg.max_rounds = 6;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  ASSERT_EQ(r.outcomes.size(), 24u);

  long classified = 0;
  for (const fleet::SessionOutcome& out : r.outcomes) {
    const auto cooked = engine.cache().get(out.key);
    sim::TransferConfig tc;
    tc.m = static_cast<int>(cooked->transmitter.m());
    tc.n = static_cast<int>(cooked->transmitter.n());
    tc.alpha = cfg.alpha;
    tc.caching = cfg.caching;
    tc.relevance_threshold = cfg.relevance_threshold;
    tc.time_per_packet =
        static_cast<double>(cooked->frame_size) * 8.0 / cfg.bandwidth_bps;
    tc.request_delay = cfg.request_delay;
    tc.max_rounds = cfg.max_rounds;
    mw::Rng rng(fleet::session_seed(cfg.seed, out.session));
    const sim::TransferResult expected =
        sim::simulate_transfer(cooked->clear_content, tc, rng);
    EXPECT_EQ(out.result.completed, expected.completed);
    EXPECT_EQ(out.result.aborted_irrelevant, expected.aborted_irrelevant);
    EXPECT_EQ(out.result.gave_up, expected.gave_up);
    EXPECT_EQ(out.result.content, expected.content);
    EXPECT_EQ(out.result.time, expected.time);
    classified += (out.result.completed ? 1 : 0) +
                  (out.result.aborted_irrelevant ? 1 : 0) +
                  (out.result.gave_up ? 1 : 0);
  }
  // Every session terminates in exactly one of the three states.
  EXPECT_EQ(classified, 24);
  EXPECT_EQ(r.completed + r.aborted_irrelevant + r.gave_up,
            static_cast<long>(r.sessions));
}

TEST(FleetEngine, CleanChannelCompletesEverySessionInOneRound) {
  fleet::FleetConfig cfg = small_config(32);
  cfg.alpha = 0.0;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  EXPECT_EQ(r.completed, 32);
  EXPECT_EQ(r.gave_up, 0);
  EXPECT_EQ(r.rounds, 32);  // one round each
  // With no corruption a session needs exactly m frames (the systematic
  // clear-text prefix) to reconstruct.
  long expected_frames = 0;
  for (const fleet::SessionOutcome& out : r.outcomes) {
    const auto cooked = engine.cache().get(out.key);
    expected_frames += static_cast<long>(cooked->transmitter.m());
    EXPECT_EQ(out.result.rounds, 1);
  }
  EXPECT_EQ(r.frames_sent, expected_frames);
}

TEST(FleetEngine, HostileChannelGivesUpAtTheRoundCap) {
  fleet::FleetConfig cfg = small_config(16);
  cfg.alpha = 0.95;
  cfg.max_rounds = 3;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  EXPECT_GT(r.gave_up, 0);
  EXPECT_EQ(r.completed + r.gave_up + r.aborted_irrelevant,
            static_cast<long>(r.sessions));
  for (const fleet::SessionOutcome& out : r.outcomes) {
    EXPECT_LE(out.result.rounds, 3);
  }
}

TEST(FleetEngine, ArrivalSpreadStaggersSessionStarts) {
  fleet::FleetConfig cfg = small_config(20);
  cfg.arrival_spread_s = 100.0;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  double prev = -1.0;
  for (const fleet::SessionOutcome& out : r.outcomes) {
    EXPECT_GT(out.start_s, prev);
    EXPECT_LT(out.start_s, 100.0);
    prev = out.start_s;
  }
  EXPECT_GE(r.makespan_s, prev);
}

TEST(FleetEngine, MetricsMatchEngineAggregates) {
  mw::obs::MetricsRegistry registry;
  fleet::FleetConfig cfg = small_config(48);
  cfg.metrics = &registry;
  cfg.shards = 3;
  mw::ThreadPool pool(2);
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run(&pool);

  EXPECT_EQ(registry.counter("fleet.sessions").value(),
            static_cast<long>(r.sessions));
  EXPECT_EQ(registry.counter("fleet.sessions_completed").value(), r.completed);
  EXPECT_EQ(registry.counter("fleet.sessions_gave_up").value(), r.gave_up);
  EXPECT_EQ(registry.counter("fleet.frames_sent").value(), r.frames_sent);
  const mw::obs::Histogram* h = registry.find_histogram("fleet.session_time_s");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), static_cast<long>(r.sessions));
  EXPECT_NEAR(h->sum(), r.session_time_s, 1e-6);
}

TEST(FleetEngine, GammaMixKeysTheCachePerGamma) {
  fleet::FleetConfig cfg = small_config(42);
  cfg.corpus.corpus_size = 3;
  cfg.gammas = {1.0, 1.5};
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  // Documents and gammas cycle with coprime periods (3 and 2), so all
  // 3 x 2 = 6 (document, gamma) keys occur; every session is a warm hit.
  EXPECT_EQ(r.cache_misses, 6);
  EXPECT_EQ(r.cache_hits, static_cast<long>(r.sessions));
  EXPECT_EQ(engine.cache().size(), 6u);
  // gamma=1.0 means n == m (no redundancy); gamma=1.5 means n = ceil(1.5 m).
  const auto lean = engine.cache().get({0, 1.0});
  const auto fat = engine.cache().get({0, 1.5});
  EXPECT_EQ(lean->transmitter.n(), lean->transmitter.m());
  EXPECT_GT(fat->transmitter.n(), fat->transmitter.m());
}

// ---- DocumentCache ----

TEST(DocumentCache, RacingThreadsBuildEachKeyOnce) {
  fleet::CacheConfig cc;
  cc.corpus_size = 2;
  cc.seed = 9;
  fleet::DocumentCache cache(cc);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const fleet::CookedDocument>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&cache, &seen, i] { seen[static_cast<std::size_t>(i)] = cache.get({1, 1.5}); });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].get(), seen[0].get());
  }
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), kThreads - 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DocumentCache, PrefillDeduplicatesAndBatchesBuilds) {
  fleet::CacheConfig cc;
  cc.corpus_size = 4;
  cc.seed = 11;
  fleet::DocumentCache cache(cc);
  std::vector<fleet::CacheKey> keys;
  for (int rep = 0; rep < 5; ++rep) {
    for (std::uint32_t d = 0; d < 4; ++d) keys.push_back({d, 1.5});
  }
  mw::ThreadPool pool(2);
  cache.prefill(keys, &pool);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.misses(), 4);
  EXPECT_EQ(cache.hits(), 0);
  // A second prefill over the same keys is all warm.
  cache.prefill(keys, &pool);
  EXPECT_EQ(cache.misses(), 4);
  EXPECT_EQ(cache.hits(), 4);
}

TEST(DocumentCache, CookedDocumentIsInternallyConsistent) {
  fleet::CacheConfig cc;
  cc.corpus_size = 3;
  cc.seed = 5;
  fleet::DocumentCache cache(cc);
  const auto cooked = cache.get({2, 1.5});
  const std::size_t m = cooked->transmitter.m();
  EXPECT_EQ(cooked->clear_content.size(), m);
  EXPECT_GT(cooked->total_content, 0.99);  // normalized content sums to ~1
  EXPECT_LT(cooked->total_content, 1.01);
  double sum = 0.0;
  for (double c : cooked->clear_content) sum += c;
  EXPECT_EQ(sum, cooked->total_content);
  // Wire frames carry header + CRC on top of the packet payload.
  EXPECT_GT(cooked->frame_size, cc.doc.packet_size);
  EXPECT_EQ(cooked->transmitter.frames().size(), cooked->transmitter.n());
}

TEST(DocumentCache, CookedFramesDecodeBackToThePayload) {
  fleet::CacheConfig cc;
  cc.corpus_size = 2;
  cc.seed = 21;
  fleet::DocumentCache cache(cc);
  const fleet::CacheKey key{1, 1.5};
  const auto cooked = cache.get(key);

  mw::transmit::ReceiverConfig rc;
  rc.doc_id = cooked->transmitter.doc_id();
  rc.m = cooked->transmitter.m();
  rc.n = cooked->transmitter.n();
  rc.packet_size = cooked->transmitter.packet_size();
  rc.payload_size = cooked->transmitter.payload_size();
  mw::transmit::ClientReceiver receiver(rc,
                                        cooked->transmitter.document().segments);
  // The parity tail alone (skipping the systematic prefix) must reconstruct.
  for (std::size_t i = rc.n - rc.m; i < rc.n; ++i) {
    const auto fr = receiver.on_frame(mw::ByteSpan(cooked->transmitter.frame(i)));
    EXPECT_TRUE(fr.intact);
  }
  ASSERT_TRUE(receiver.complete());
  EXPECT_EQ(receiver.reconstruct(), cooked->transmitter.document().payload);
}

TEST(DocumentCache, DocumentSeedIsStablePerIndex) {
  EXPECT_EQ(fleet::document_seed(7, 3), fleet::document_seed(7, 3));
  EXPECT_NE(fleet::document_seed(7, 3), fleet::document_seed(7, 4));
  EXPECT_NE(fleet::document_seed(7, 3), fleet::document_seed(8, 3));
}
