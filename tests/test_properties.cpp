// Randomized property tests across modules: invariants that must hold for
// arbitrary inputs, not just the hand-picked cases of the unit suites.
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "doc/recognizer.hpp"
#include "doc/sc_io.hpp"
#include "ida/ida.hpp"
#include "sim/synthetic.hpp"
#include "sim/transfer.hpp"
#include "util/lzss.hpp"
#include "util/rng.hpp"
#include "xml/dtd.hpp"
#include "xml/parser.hpp"
#include "xml/serialize.hpp"

namespace doc = mobiweb::doc;
namespace xml = mobiweb::xml;
namespace sim = mobiweb::sim;
namespace ida = mobiweb::ida;
using mobiweb::Bytes;
using mobiweb::ByteSpan;
using mobiweb::Rng;

namespace {

// Random word from a small vocabulary (keeps term statistics interesting).
std::string random_word(Rng& rng) {
  static const char* kVocabulary[] = {
      "mobile", "web", "browsing", "wireless", "channel", "packet", "cache",
      "bandwidth", "document", "unit", "content", "query", "redundancy",
      "vandermonde", "dispersal", "section", "client", "server", "energy",
      "profile"};
  return kVocabulary[rng.next_below(std::size(kVocabulary))];
}

std::string random_sentence(Rng& rng, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (!out.empty()) out += ' ';
    out += random_word(rng);
  }
  return out;
}

// Generates a random well-formed paper-like XML document.
std::string random_paper_xml(Rng& rng) {
  std::string out = "<paper>";
  if (rng.next_bernoulli(0.7)) {
    out += "<title>" + random_sentence(rng, 1 + static_cast<int>(rng.next_below(5))) +
           "</title>";
  }
  const int sections = 1 + static_cast<int>(rng.next_below(4));
  for (int s = 0; s < sections; ++s) {
    out += "<section>";
    if (rng.next_bernoulli(0.5)) {
      out += "<title>" + random_sentence(rng, 2) + "</title>";
    }
    const int blocks = 1 + static_cast<int>(rng.next_below(4));
    for (int b = 0; b < blocks; ++b) {
      if (rng.next_bernoulli(0.4)) {
        out += "<subsection><para>" +
               random_sentence(rng, 3 + static_cast<int>(rng.next_below(20))) +
               "</para></subsection>";
      } else {
        out += "<para>" +
               random_sentence(rng, 3 + static_cast<int>(rng.next_below(20)));
        if (rng.next_bernoulli(0.3)) {
          out += " <em>" + random_word(rng) + "</em>";
        }
        out += "</para>";
      }
    }
    out += "</section>";
  }
  out += "</paper>";
  return out;
}

}  // namespace

class RandomDocProperties : public ::testing::TestWithParam<int> {};

TEST_P(RandomDocProperties, XmlRoundTripStable) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const std::string source = random_paper_xml(rng);
  const xml::Document first = xml::parse(source);
  const std::string written = xml::write(first);
  const xml::Document second = xml::parse(written);
  EXPECT_EQ(first.root, second.root);
  // Writing is a fixed point after one round.
  EXPECT_EQ(xml::write(second), written);
}

TEST_P(RandomDocProperties, IcInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const std::string source = random_paper_xml(rng);
  doc::ScGenerator gen;
  const auto sc = gen.generate(xml::parse(source));

  // Root IC is exactly 1 for any non-empty document.
  ASSERT_GT(sc.document_terms().total(), 0);
  EXPECT_NEAR(sc.root().info_content, 1.0, 1e-9);

  // ICs are in [0, 1]; every interior unit's IC >= sum of children; equality
  // when it has no own tokens.
  doc::walk(sc.root(), [&](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
    EXPECT_GE(u.info_content, -1e-12);
    EXPECT_LE(u.info_content, 1.0 + 1e-9);
    if (u.is_leaf()) return;
    double child_sum = 0.0;
    for (const auto& c : u.children) child_sum += c.info_content;
    EXPECT_LE(child_sum, u.info_content + 1e-9);
    if (u.own_tokens.empty()) {
      EXPECT_NEAR(child_sum, u.info_content, 1e-9);
    }
  });
}

TEST_P(RandomDocProperties, QicMqicInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  const std::string source = random_paper_xml(rng);
  doc::ScGenerator gen;
  const auto sc = gen.generate(xml::parse(source));
  const std::string query_text =
      random_word(rng) + " " + random_word(rng) + " " + random_word(rng);
  const doc::ContentScorer scorer(
      sc, doc::Query::from_text(query_text, gen.extractor()));

  doc::walk(sc.root(), [&](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
    const double q = scorer.qic(u);
    const double mq = scorer.mqic(u);
    EXPECT_GE(q, -1e-12);
    EXPECT_LE(q, 1.0 + 1e-9);
    EXPECT_GE(mq, -1e-12);
    EXPECT_LE(mq, 1.0 + 1e-9);
    // MQIC never zeroes out a unit that has static content.
    if (u.info_content > 1e-12) {
      EXPECT_GT(mq, 0.0);
    }
  });
  if (scorer.query_matches()) {
    EXPECT_NEAR(scorer.qic(sc.root()), 1.0, 1e-9);
  } else {
    EXPECT_EQ(scorer.qic(sc.root()), 0.0);
  }
  EXPECT_NEAR(scorer.mqic(sc.root()), 1.0, 1e-9);
}

TEST_P(RandomDocProperties, ScSerializationRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537);
  doc::ScGenerator gen;
  const auto sc = gen.generate(xml::parse(random_paper_xml(rng)));
  const auto restored = doc::parse_sc(doc::write_sc(sc));
  const auto a = sc.rows();
  const auto b = restored.rows();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_NEAR(a[i].unit->info_content, b[i].unit->info_content, 1e-9);
    EXPECT_EQ(a[i].unit->terms.counts, b[i].unit->terms.counts);
  }
}

TEST_P(RandomDocProperties, LinearizeTilesPayload) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271);
  doc::ScGenerator gen;
  const auto sc = gen.generate(xml::parse(random_paper_xml(rng)));
  for (const auto lod : {doc::Lod::kSection, doc::Lod::kParagraph}) {
    const auto lin = doc::linearize(sc, {.lod = lod, .rank = doc::RankBy::kIc});
    std::size_t offset = 0;
    double prev_score = 1e18;
    for (const auto& s : lin.segments) {
      EXPECT_EQ(s.offset, offset);
      offset += s.size;
      EXPECT_LE(s.content, prev_score + 1e-12);
      prev_score = s.content;
    }
    EXPECT_EQ(offset, lin.payload.size());
    EXPECT_NEAR(lin.content_of_prefix(lin.payload.size()), lin.total_content(),
                1e-9);
  }
}

TEST_P(RandomDocProperties, EncodeDecodeThroughRandomLoss) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 919);
  doc::ScGenerator gen;
  const auto sc = gen.generate(xml::parse(random_paper_xml(rng)));
  const auto lin = doc::linearize(sc, {.lod = doc::Lod::kParagraph,
                                       .rank = doc::RankBy::kIc});
  if (lin.payload.empty()) return;
  const std::size_t packet_size = 64 + rng.next_below(192);
  const std::size_t m = ida::packet_count(lin.payload.size(), packet_size);
  if (m > 200) return;
  const std::size_t n = std::min<std::size_t>(255, m + 1 + rng.next_below(m));
  ida::Encoder enc(m, n);
  const auto cooked = enc.encode_payload(ByteSpan(lin.payload), packet_size);

  // Drop a random (n - m)-subset; decode from the rest.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.next_below(i + 1)]);
  }
  std::vector<std::pair<std::size_t, Bytes>> kept;
  for (std::size_t i = 0; i < m; ++i) kept.emplace_back(order[i], cooked[order[i]]);
  ida::Decoder dec(m, n);
  EXPECT_EQ(dec.decode_payload(kept, lin.payload.size()), lin.payload);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDocProperties, ::testing::Range(1, 21));

// ---- Simulator monotonicity properties --------------------------------------

struct SimGrid {
  double alpha;
  double gamma;
};

class SimMonotonicity : public ::testing::TestWithParam<SimGrid> {};

TEST_P(SimMonotonicity, CachingNeverSlowerOnAverage) {
  const auto [alpha, gamma] = GetParam();
  sim::TransferConfig cfg;
  cfg.m = 40;
  cfg.n = static_cast<int>(40 * gamma);
  cfg.alpha = alpha;
  const std::vector<double> content(40, 1.0 / 40);
  Rng rng_a(42);
  Rng rng_b(42);
  double cached = 0.0;
  double uncached = 0.0;
  for (int i = 0; i < 500; ++i) {
    cfg.caching = true;
    cached += sim::simulate_transfer(content, cfg, rng_a).time;
    cfg.caching = false;
    uncached += sim::simulate_transfer(content, cfg, rng_b).time;
  }
  EXPECT_LE(cached, uncached * 1.02);  // 2% tolerance for sampling noise
}

TEST_P(SimMonotonicity, AbortNeverSlowerThanFullDownload) {
  const auto [alpha, gamma] = GetParam();
  sim::TransferConfig cfg;
  cfg.m = 40;
  cfg.n = static_cast<int>(40 * gamma);
  cfg.alpha = alpha;
  cfg.caching = true;
  const std::vector<double> content(40, 1.0 / 40);
  Rng rng_a(77);
  Rng rng_b(77);
  double aborted = 0.0;
  double full = 0.0;
  for (int i = 0; i < 500; ++i) {
    cfg.relevance_threshold = 0.5;
    aborted += sim::simulate_transfer(content, cfg, rng_a).time;
    cfg.relevance_threshold = -1.0;
    full += sim::simulate_transfer(content, cfg, rng_b).time;
  }
  EXPECT_LE(aborted, full * 1.02);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimMonotonicity,
    ::testing::Values(SimGrid{0.1, 1.2}, SimGrid{0.1, 1.5}, SimGrid{0.3, 1.2},
                      SimGrid{0.3, 1.5}, SimGrid{0.3, 2.0}, SimGrid{0.5, 1.5},
                      SimGrid{0.5, 2.0}));

TEST(SyntheticProperties, ProfileAlwaysNormalizedAcrossSkews) {
  Rng rng(5);
  for (const double skew : {1.0, 2.0, 3.0, 5.0, 10.0}) {
    sim::SyntheticConfig cfg;
    cfg.skew = skew;
    for (int i = 0; i < 20; ++i) {
      const auto d = sim::generate_document(cfg, rng);
      for (const auto lod : {doc::Lod::kDocument, doc::Lod::kSection,
                             doc::Lod::kSubsection, doc::Lod::kParagraph}) {
        const auto p = sim::packet_content_profile(d, lod);
        EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-9);
      }
    }
  }
}

// ---- DTD round-trip properties ----

namespace {

namespace dtd = mobiweb::xml::dtd;

// Random content-model particle tree. Groups hold 1-3 children; choice groups
// are forced to hold at least two, since "(a)" canonically parses as a
// sequence.
dtd::Particle random_particle(Rng& rng, int depth) {
  dtd::Particle p;
  const char* kNames[] = {"title", "para", "em", "section", "subsection"};
  if (depth == 0 || rng.next_bernoulli(0.55)) {
    p.kind = dtd::Particle::Kind::kName;
    p.name = kNames[rng.next_below(std::size(kNames))];
  } else {
    const bool choice = rng.next_bernoulli(0.5);
    p.kind = choice ? dtd::Particle::Kind::kChoice : dtd::Particle::Kind::kSeq;
    const std::size_t kids = (choice ? 2 : 1) + rng.next_below(2);
    for (std::size_t i = 0; i < kids; ++i) {
      p.children.push_back(random_particle(rng, depth - 1));
    }
  }
  switch (rng.next_below(4)) {
    case 1: p.occur = dtd::Particle::Occur::kOptional; break;
    case 2: p.occur = dtd::Particle::Occur::kStar; break;
    case 3: p.occur = dtd::Particle::Occur::kPlus; break;
    default: break;
  }
  return p;
}

// Canonical DTD syntax for a particle; the inverse of parse_particle.
std::string print_particle(const dtd::Particle& p) {
  std::string out;
  if (p.kind == dtd::Particle::Kind::kName) {
    out = p.name;
  } else {
    const char* sep = p.kind == dtd::Particle::Kind::kChoice ? " | " : ", ";
    out = "(";
    for (std::size_t i = 0; i < p.children.size(); ++i) {
      if (i) out += sep;
      out += print_particle(p.children[i]);
    }
    out += ")";
  }
  switch (p.occur) {
    case dtd::Particle::Occur::kOptional: out += '?'; break;
    case dtd::Particle::Occur::kStar: out += '*'; break;
    case dtd::Particle::Occur::kPlus: out += '+'; break;
    case dtd::Particle::Occur::kOne: break;
  }
  return out;
}

}  // namespace

TEST(DtdProperties, RandomContentModelsRoundTripThroughParser) {
  // print -> parse -> print is a fixed point for arbitrary particle trees:
  // the parser preserves group structure, separators and occurrence
  // modifiers exactly.
  Rng rng(2026);
  for (int i = 0; i < 300; ++i) {
    dtd::Particle root = random_particle(rng, 3);
    if (root.kind == dtd::Particle::Kind::kName) {
      // Top-level content models are always parenthesized groups.
      dtd::Particle wrap;
      wrap.kind = dtd::Particle::Kind::kSeq;
      wrap.children.push_back(std::move(root));
      root = std::move(wrap);
    }
    const std::string model = print_particle(root);
    const dtd::Dtd parsed = dtd::parse_dtd("<!ELEMENT root " + model + ">");
    const dtd::ElementDecl* decl = parsed.element("root");
    ASSERT_NE(decl, nullptr) << model;
    ASSERT_EQ(decl->model, dtd::ElementDecl::Model::kChildren) << model;
    EXPECT_EQ(print_particle(decl->content), model);
  }
}

TEST(DtdProperties, ParsedModelsValidateTheirOwnSimplestDocument) {
  // A pure-sequence model of required names accepts exactly that sequence.
  Rng rng(77);
  const char* kNames[] = {"title", "para", "section"};
  for (int i = 0; i < 100; ++i) {
    std::string model = "(";
    std::string doc_body;
    std::string decls;
    const std::size_t kids = 1 + rng.next_below(3);
    for (std::size_t k = 0; k < kids; ++k) {
      const char* name = kNames[rng.next_below(std::size(kNames))];
      if (k) model += ", ";
      model += name;
      doc_body += std::string("<") + name + "/>";
    }
    model += ")";
    for (const char* name : kNames) {
      decls += std::string("<!ELEMENT ") + name + " EMPTY>";
    }
    const dtd::Dtd d =
        dtd::parse_dtd("<!ELEMENT root " + model + ">" + decls);
    const xml::Document doc = xml::parse("<root>" + doc_body + "</root>");
    EXPECT_TRUE(dtd::validate(doc, d).empty()) << model;
  }
}

// ---- LZSS round-trip properties ----

TEST(LzssProperties, PureRandomBytesRoundTrip) {
  // Incompressible input is the worst case for the match finder; identity
  // must hold and the stream must stay within the documented worst-case
  // expansion (header + flag byte per 8 literals).
  Rng rng(31337);
  for (int i = 0; i < 60; ++i) {
    Bytes in;
    const std::size_t n = rng.next_below(4096);
    in.reserve(n);
    for (std::size_t b = 0; b < n; ++b) {
      in.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
    }
    const Bytes compressed = mobiweb::lzss_compress(ByteSpan(in));
    EXPECT_LE(compressed.size(), 4 + n + n / 8 + 1);
    EXPECT_EQ(mobiweb::lzss_decompress(ByteSpan(compressed)), in);
  }
}

TEST(LzssProperties, SmallAlphabetRandomBytesRoundTrip) {
  // Highly repetitive random strings exercise the match path heavily.
  Rng rng(4242);
  for (int i = 0; i < 60; ++i) {
    Bytes in;
    const std::size_t n = rng.next_below(8192);
    for (std::size_t b = 0; b < n; ++b) {
      in.push_back(static_cast<std::uint8_t>(rng.next_below(3)));
    }
    const Bytes compressed = mobiweb::lzss_compress(ByteSpan(in));
    const Bytes out = mobiweb::lzss_decompress(ByteSpan(compressed));
    EXPECT_EQ(out, in);
    if (n > 64) {
      EXPECT_LT(compressed.size(), in.size());
    }
  }
}
