// DTD parsing and validation.
#include <gtest/gtest.h>

#include "xml/dtd.hpp"
#include "xml/parser.hpp"

namespace xml = mobiweb::xml;
namespace dtd = mobiweb::xml::dtd;

namespace {
std::vector<dtd::Diagnostic> check(const char* dtd_text, const char* doc_text) {
  const dtd::Dtd d = dtd::parse_dtd(dtd_text);
  const xml::Document doc = xml::parse(doc_text, {.strip_whitespace_text = true});
  return dtd::validate(doc, d);
}
}  // namespace

TEST(DtdParse, ElementModels) {
  const dtd::Dtd d = dtd::parse_dtd(R"(
    <!ELEMENT a EMPTY>
    <!ELEMENT b ANY>
    <!ELEMENT c (#PCDATA)>
    <!ELEMENT d (#PCDATA | x | y)*>
    <!ELEMENT e (x, y?, z*)>
  )");
  ASSERT_EQ(d.elements.size(), 5u);
  EXPECT_EQ(d.element("a")->model, dtd::ElementDecl::Model::kEmpty);
  EXPECT_EQ(d.element("b")->model, dtd::ElementDecl::Model::kAny);
  EXPECT_EQ(d.element("c")->model, dtd::ElementDecl::Model::kMixed);
  EXPECT_TRUE(d.element("c")->mixed_names.empty());
  EXPECT_EQ(d.element("d")->mixed_names,
            (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(d.element("e")->model, dtd::ElementDecl::Model::kChildren);
  EXPECT_EQ(d.element("missing"), nullptr);
}

TEST(DtdParse, Attlist) {
  const dtd::Dtd d = dtd::parse_dtd(R"(
    <!ELEMENT a ANY>
    <!ATTLIST a id CDATA #REQUIRED
                kind (x|y) "x"
                note CDATA #IMPLIED>
  )");
  const auto& attrs = d.attributes.at("a");
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_TRUE(attrs[0].required);
  EXPECT_EQ(attrs[1].default_value, "x");
  EXPECT_FALSE(attrs[2].required);
  EXPECT_FALSE(attrs[2].default_value.has_value());
}

TEST(DtdParse, SkipsEntitiesAndComments) {
  const dtd::Dtd d = dtd::parse_dtd(R"(
    <!-- a comment -->
    <!ENTITY nbsp "&#160;">
    <!ELEMENT a EMPTY>
  )");
  EXPECT_EQ(d.elements.size(), 1u);
}

TEST(DtdParse, SyntaxErrorsThrow) {
  EXPECT_THROW(dtd::parse_dtd("<!ELEMENT a"), xml::ParseError);
  EXPECT_THROW(dtd::parse_dtd("<!ELEMENT a WHAT>"), xml::ParseError);
  EXPECT_THROW(dtd::parse_dtd("<!ELEMENT a (b,c|d)>"), xml::ParseError);  // mixed seps
  EXPECT_THROW(dtd::parse_dtd("<!ELEMENT a EMPTY><!ELEMENT a EMPTY>"),
               xml::ParseError);  // duplicate
  EXPECT_THROW(dtd::parse_dtd("random junk"), xml::ParseError);
}

TEST(DtdValidate, ValidSequence) {
  EXPECT_TRUE(check("<!ELEMENT r (a, b?, c*)>"
                    "<!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>",
                    "<r><a/><c/><c/></r>")
                  .empty());
  EXPECT_TRUE(check("<!ELEMENT r (a, b?, c*)>"
                    "<!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>",
                    "<r><a/><b/></r>")
                  .empty());
}

TEST(DtdValidate, InvalidSequenceReported) {
  const auto diags = check(
      "<!ELEMENT r (a, b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>", "<r><b/><a/></r>");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].path, "/r");
  EXPECT_NE(diags[0].message.find("content model"), std::string::npos);
}

TEST(DtdValidate, ChoiceAndRepetition) {
  const char* d = "<!ELEMENT r (a | b)+><!ELEMENT a EMPTY><!ELEMENT b EMPTY>";
  EXPECT_TRUE(check(d, "<r><a/></r>").empty());
  EXPECT_TRUE(check(d, "<r><b/><a/><b/></r>").empty());
  EXPECT_FALSE(check(d, "<r/>").empty());  // '+' needs at least one
}

TEST(DtdValidate, NestedGroups) {
  const char* d =
      "<!ELEMENT r ((a, b) | c)*><!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
      "<!ELEMENT c EMPTY>";
  EXPECT_TRUE(check(d, "<r/>").empty());
  EXPECT_TRUE(check(d, "<r><a/><b/><c/><a/><b/></r>").empty());
  EXPECT_FALSE(check(d, "<r><a/><c/></r>").empty());  // a without b
}

TEST(DtdValidate, EmptyModel) {
  const char* d = "<!ELEMENT r EMPTY>";
  EXPECT_TRUE(check(d, "<r/>").empty());
  EXPECT_FALSE(check(d, "<r>text</r>").empty());
}

TEST(DtdValidate, MixedContent) {
  const char* d = "<!ELEMENT r (#PCDATA | em)*><!ELEMENT em (#PCDATA)>";
  EXPECT_TRUE(check(d, "<r>hello <em>world</em> again</r>").empty());
  const auto diags = check(std::string(std::string(d) + "<!ELEMENT b (#PCDATA)>").c_str(),
                           "<r>x <b>bold</b></r>");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("not allowed in mixed content"),
            std::string::npos);
}

TEST(DtdValidate, CharacterDataInElementContent) {
  const auto diags = check("<!ELEMENT r (a)><!ELEMENT a EMPTY>", "<r>txt<a/></r>");
  ASSERT_GE(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("character data"), std::string::npos);
}

TEST(DtdValidate, UndeclaredElement) {
  const auto diags = check("<!ELEMENT r ANY>", "<r><mystery/></r>");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].path, "/r/mystery[0]");
  EXPECT_NE(diags[0].message.find("not declared"), std::string::npos);
}

TEST(DtdValidate, RequiredAttribute) {
  const char* d = "<!ELEMENT r ANY><!ATTLIST r id CDATA #REQUIRED>";
  EXPECT_TRUE(check(d, "<r id=\"1\"/>").empty());
  const auto diags = check(d, "<r/>");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("required attribute"), std::string::npos);
}

TEST(DtdValidate, PathsIndexSiblings) {
  const auto diags = check(
      "<!ELEMENT r (a*)><!ELEMENT a (b)><!ELEMENT b EMPTY>",
      "<r><a><b/></a><a/></r>");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].path, "/r/a[1]");
}

TEST(DtdValidate, GroupOccurrencePreserved) {
  // (a*)? must still allow many a's — the group wrapper keeps inner '*'.
  const char* d = "<!ELEMENT r ((a*))?><!ELEMENT a EMPTY>";
  EXPECT_TRUE(check(d, "<r><a/><a/><a/></r>").empty());
}

TEST(DtdInternalSubset, CapturedByParser) {
  const xml::Document doc = xml::parse(
      "<!DOCTYPE r [ <!ELEMENT r (a)> <!ELEMENT a EMPTY> ]><r><a/></r>");
  EXPECT_EQ(doc.doctype_name, "r");
  const dtd::Dtd d = dtd::parse_dtd(doc.doctype_subset);
  EXPECT_EQ(d.elements.size(), 2u);
  EXPECT_TRUE(dtd::validate(doc, d).empty());
}

TEST(ResearchPaperDtd, AcceptsPaperStructure) {
  const char* paper = R"(<research-paper venue="ICDCS" year="2000">
    <title>T</title>
    <abstract><para>A <em>b</em> c</para></abstract>
    <section><title>S1</title><para>text</para>
      <subsection><title>SS</title><para>more</para></subsection>
      <para>trailing</para>
    </section>
    <section><para>only paras</para></section>
  </research-paper>)";
  const xml::Document doc = xml::parse(paper, {.strip_whitespace_text = true});
  const auto diags = dtd::validate(doc, dtd::research_paper_dtd());
  EXPECT_TRUE(diags.empty()) << (diags.empty() ? "" : diags[0].message);
}

TEST(ResearchPaperDtd, RejectsMisplacedStructure) {
  // A subsection directly under research-paper violates the model.
  const xml::Document doc = xml::parse(
      "<research-paper><subsection><para>x</para></subsection></research-paper>",
      {.strip_whitespace_text = true});
  EXPECT_FALSE(dtd::validate(doc, dtd::research_paper_dtd()).empty());
}

TEST(ResearchPaperDtd, RejectsEmptyAbstract) {
  const xml::Document doc = xml::parse(
      "<research-paper><abstract></abstract></research-paper>",
      {.strip_whitespace_text = true});
  EXPECT_FALSE(dtd::validate(doc, dtd::research_paper_dtd()).empty());
}

TEST(DtdHardening, DeepGroupNestingRejected) {
  // 500 nested groups would exhaust parse_particle's recursion without the
  // depth guard.
  std::string decl = "<!ELEMENT a ";
  for (int i = 0; i < 500; ++i) decl += '(';
  decl += 'b';
  for (int i = 0; i < 500; ++i) decl += ')';
  decl += '>';
  try {
    dtd::parse_dtd(decl);
    FAIL() << "expected ParseError";
  } catch (const xml::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos);
  }
}

TEST(DtdHardening, ModestGroupNestingAccepted) {
  std::string decl = "<!ELEMENT a ";
  for (int i = 0; i < 32; ++i) decl += '(';
  decl += 'b';
  for (int i = 0; i < 32; ++i) decl += ')';
  decl += '>';
  const dtd::Dtd parsed = dtd::parse_dtd(decl);
  EXPECT_NE(parsed.element("a"), nullptr);
}
