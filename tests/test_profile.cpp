// User profiles (relevance feedback) and profile-driven prefetching.
#include <gtest/gtest.h>

#include "core/mobiweb.hpp"
#include "core/prefetch.hpp"
#include "doc/profile.hpp"

namespace doc = mobiweb::doc;
namespace text = mobiweb::text;
using mobiweb::ContractViolation;

namespace {

text::TermCounts counts(std::initializer_list<std::pair<const char*, long>> init) {
  text::TermCounts tc;
  for (const auto& [term, n] : init) tc.add(term, n);
  return tc;
}

}  // namespace

TEST(Profile, StartsEmpty) {
  const doc::UserProfile p;
  EXPECT_EQ(p.size(), 0u);
  EXPECT_EQ(p.term_weight("anything"), 0.0);
  EXPECT_EQ(p.score(counts({{"x", 3}})), 0.0);
}

TEST(Profile, PositiveFeedbackRaisesWeights) {
  doc::UserProfile p(0.5);
  p.observe(counts({{"wireless", 3}, {"cache", 1}}), /*relevant=*/true);
  EXPECT_GT(p.term_weight("wireless"), p.term_weight("cache"));
  EXPECT_GT(p.term_weight("cache"), 0.0);
  EXPECT_EQ(p.feedback_count(), 1);
}

TEST(Profile, NegativeFeedbackLowersWeights) {
  doc::UserProfile p(0.5);
  p.observe(counts({{"sports", 4}}), /*relevant=*/false);
  EXPECT_LT(p.term_weight("sports"), 0.0);
}

TEST(Profile, WeightsClamped) {
  doc::UserProfile p(1.0);
  for (int i = 0; i < 10; ++i) p.observe(counts({{"x", 1}}), true);
  EXPECT_LE(p.term_weight("x"), 1.0);
}

TEST(Profile, ScoreSeparatesInterests) {
  doc::UserProfile p(0.5);
  for (int i = 0; i < 4; ++i) {
    p.observe(counts({{"wireless", 2}, {"bandwidth", 1}}), true);
    p.observe(counts({{"cooking", 2}, {"recipes", 1}}), false);
  }
  EXPECT_GT(p.score(counts({{"wireless", 5}, {"link", 1}})), 0.0);
  EXPECT_LT(p.score(counts({{"cooking", 5}})), 0.0);
  EXPECT_EQ(p.score(counts({{"astronomy", 5}})), 0.0);
}

TEST(Profile, DecayShrinksWeights) {
  doc::UserProfile p(0.5);
  p.observe(counts({{"x", 1}}), true);
  const double before = p.term_weight("x");
  p.decay(0.5);
  EXPECT_NEAR(p.term_weight("x"), before / 2.0, 1e-12);
  p.decay(0.0);
  EXPECT_EQ(p.term_weight("x"), 0.0);
}

TEST(Profile, TopTermsSorted) {
  doc::UserProfile p(1.0);
  p.observe(counts({{"big", 8}, {"mid", 2}}), true);   // big: +0.8, mid: +0.2
  p.observe(counts({{"bad", 6}}), false);              // bad: -1.0
  const auto top = p.top_terms(2);
  ASSERT_EQ(top.size(), 2u);
  // Sorted by |weight|: bad (-1.0) before big (+0.8); mid dropped by k=2.
  EXPECT_EQ(top[0].first, "bad");
  EXPECT_EQ(top[1].first, "big");
}

TEST(Profile, RejectsBadParameters) {
  EXPECT_THROW(doc::UserProfile(0.0), ContractViolation);
  EXPECT_THROW(doc::UserProfile(1.5), ContractViolation);
  doc::UserProfile p;
  EXPECT_THROW(p.decay(1.5), ContractViolation);
}

TEST(Cache, PutGetEvict) {
  mobiweb::DocumentCache cache;
  EXPECT_FALSE(cache.contains("u"));
  cache.put("u", "hello");
  EXPECT_TRUE(cache.contains("u"));
  EXPECT_EQ(cache.get("u"), "hello");
  EXPECT_EQ(cache.bytes(), 5u);
  cache.put("u", "hi");  // replace updates byte count
  EXPECT_EQ(cache.bytes(), 2u);
  cache.evict("u");
  EXPECT_FALSE(cache.contains("u"));
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(Cache, TrimEvictsLowestScoredFirst) {
  mobiweb::DocumentCache cache;
  cache.put("keep", std::string(100, 'a'));
  cache.put("drop", std::string(100, 'b'));
  std::map<std::string, double> scores = {{"keep", 0.9}, {"drop", 0.1}};
  cache.trim(150, scores);
  EXPECT_TRUE(cache.contains("keep"));
  EXPECT_FALSE(cache.contains("drop"));
}

namespace {

mobiweb::Server prefetch_server() {
  mobiweb::Server server;
  server.publish_xml("doc://wireless-1", R"(<paper><para>wireless bandwidth
      wireless channels wireless links for mobile clients</para></paper>)");
  server.publish_xml("doc://wireless-2", R"(<paper><para>wireless handoff and
      bandwidth adaptation in cellular networks</para></paper>)");
  server.publish_xml("doc://cooking", R"(<paper><para>recipes for slow cooking
      stews and baking bread at home</para></paper>)");
  return server;
}

doc::UserProfile wireless_profile(const mobiweb::Server& server) {
  doc::UserProfile profile(0.5);
  // The user liked wireless-1 and disliked cooking.
  profile.observe(server.find("doc://wireless-1")->document_terms(), true);
  profile.observe(server.find("doc://cooking")->document_terms(), false);
  return profile;
}

}  // namespace

TEST(Prefetcher, FetchesHighScoredDocsOnly) {
  const auto server = prefetch_server();
  mobiweb::BrowseConfig cfg;
  cfg.alpha = 0.0;
  mobiweb::BrowseSession session(server, cfg);
  mobiweb::DocumentCache cache;
  mobiweb::Prefetcher prefetcher(server, session, cache);

  const auto profile = wireless_profile(server);
  const auto outcome = prefetcher.run_idle(profile, /*idle_budget_s=*/60.0,
                                           /*exclude=*/{"doc://wireless-1"});
  EXPECT_EQ(outcome.fetched, 1);  // wireless-2; cooking scores negative
  EXPECT_TRUE(cache.contains("doc://wireless-2"));
  EXPECT_FALSE(cache.contains("doc://cooking"));
  EXPECT_FALSE(cache.contains("doc://wireless-1"));  // excluded
  EXPECT_GT(outcome.airtime_used, 0.0);
}

TEST(Prefetcher, RespectsBudget) {
  const auto server = prefetch_server();
  mobiweb::BrowseConfig cfg;
  cfg.alpha = 0.0;
  mobiweb::BrowseSession session(server, cfg);
  mobiweb::DocumentCache cache;
  mobiweb::Prefetcher prefetcher(server, session, cache);
  const auto profile = wireless_profile(server);
  // Zero budget: nothing happens.
  const auto outcome = prefetcher.run_idle(profile, 0.0);
  EXPECT_EQ(outcome.fetched, 0);
  EXPECT_EQ(cache.documents(), 0u);
}

TEST(Prefetcher, SkipsAlreadyCached) {
  const auto server = prefetch_server();
  mobiweb::BrowseConfig cfg;
  cfg.alpha = 0.0;
  mobiweb::BrowseSession session(server, cfg);
  mobiweb::DocumentCache cache;
  mobiweb::Prefetcher prefetcher(server, session, cache);
  const auto profile = wireless_profile(server);
  prefetcher.run_idle(profile, 60.0);
  const std::size_t docs = cache.documents();
  const auto again = prefetcher.run_idle(profile, 60.0);
  EXPECT_EQ(again.fetched, 0);
  EXPECT_EQ(cache.documents(), docs);
}

TEST(Prefetcher, CachedDocumentReadableOffline) {
  const auto server = prefetch_server();
  mobiweb::BrowseConfig cfg;
  cfg.alpha = 0.0;
  mobiweb::BrowseSession session(server, cfg);
  mobiweb::DocumentCache cache;
  mobiweb::Prefetcher prefetcher(server, session, cache);
  prefetcher.run_idle(wireless_profile(server), 60.0);
  const auto text = cache.get("doc://wireless-2");
  ASSERT_TRUE(text.has_value());
  EXPECT_NE(text->find("handoff"), std::string::npos);
}
