// Cross-module integration: the analytic simulator must agree with the real
// packet/IDA/channel stack, and the negative-binomial analysis must predict
// the behaviour of both.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "analysis/negbinom.hpp"
#include "channel/channel.hpp"
#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "sim/transfer.hpp"
#include "transmit/receiver.hpp"
#include "transmit/session.hpp"
#include "transmit/transmitter.hpp"
#include "util/rng.hpp"
#include "xml/parser.hpp"

namespace doc = mobiweb::doc;
namespace sim = mobiweb::sim;
namespace transmit = mobiweb::transmit;
namespace channel = mobiweb::channel;
using mobiweb::ByteSpan;
using mobiweb::Rng;

namespace {

// Error model that replays a fixed corruption pattern (wraps around).
class ScriptedErrorModel final : public channel::ErrorModel {
 public:
  explicit ScriptedErrorModel(std::vector<bool> pattern)
      : pattern_(std::move(pattern)) {}

  bool next_corrupted(Rng&) override {
    const bool c = pattern_[pos_ % pattern_.size()];
    ++pos_;
    return c;
  }
  double steady_state_rate() const override { return 0.0; }
  std::unique_ptr<channel::ErrorModel> clone() const override {
    return std::make_unique<ScriptedErrorModel>(pattern_);
  }

 private:
  std::vector<bool> pattern_;
  std::size_t pos_ = 0;
};

doc::LinearDocument make_document() {
  std::string src = "<paper>";
  for (int p = 0; p < 10; ++p) {
    src += "<para>";
    for (int w = 0; w < 30; ++w) {
      src += "w";
      src += std::to_string(p);
      src += "t";
      src += std::to_string(w);
      src += " ";
    }
    src += "</para>";
  }
  src += "</paper>";
  doc::ScGenerator gen;
  const auto sc = gen.generate(mobiweb::xml::parse(src));
  return doc::linearize(sc, {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kIc});
}

// Runs the real stack against a scripted corruption pattern.
transmit::SessionResult run_real(const doc::LinearDocument& lin,
                                 const std::vector<bool>& pattern, double gamma,
                                 bool caching, double relevance) {
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = gamma});
  transmit::ReceiverConfig rc;
  rc.doc_id = tx.doc_id();
  rc.m = tx.m();
  rc.n = tx.n();
  rc.packet_size = 128;
  rc.payload_size = tx.payload_size();
  rc.caching = caching;
  transmit::ClientReceiver rx(rc, lin.segments);
  channel::ChannelConfig cc;
  channel::WirelessChannel ch(cc, std::make_unique<ScriptedErrorModel>(pattern));
  transmit::SessionConfig scfg;
  scfg.relevance_threshold = relevance;
  transmit::TransferSession session(tx, rx, ch, scfg);
  return session.run();
}

// Runs the analytic simulator against the same pattern and document.
sim::TransferResult run_sim(const doc::LinearDocument& lin,
                            const std::vector<bool>& pattern, double gamma,
                            bool caching, double relevance) {
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = gamma});
  // Per-clear-packet content from the segment map, exactly as the receiver
  // accounts it.
  std::vector<double> content(tx.m());
  for (std::size_t i = 0; i < tx.m(); ++i) {
    const std::size_t begin = i * 128;
    const std::size_t end = std::min(begin + 128, tx.payload_size());
    content[i] = tx.document().content_of_range(begin, end);
  }
  sim::TransferConfig cfg;
  cfg.m = static_cast<int>(tx.m());
  cfg.n = static_cast<int>(tx.n());
  cfg.caching = caching;
  cfg.relevance_threshold = relevance;
  cfg.max_rounds = 1000;
  std::size_t pos = 0;
  return sim::simulate_transfer(content, cfg, [&pattern, &pos] {
    const bool c = pattern[pos % pattern.size()];
    ++pos;
    return c;
  });
}

std::vector<bool> random_pattern(double alpha, std::size_t length, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<bool> out(length);
  for (std::size_t i = 0; i < length; ++i) out[i] = rng.next_bernoulli(alpha);
  return out;
}

}  // namespace

TEST(SimVsReal, IdenticalPacketsRoundsAndTermination) {
  const auto lin = make_document();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    for (const bool caching : {true, false}) {
      const auto pattern = random_pattern(0.3, 4096, seed);
      const auto real = run_real(lin, pattern, 1.5, caching, -1.0);
      const auto simulated = run_sim(lin, pattern, 1.5, caching, -1.0);
      ASSERT_EQ(real.completed, simulated.completed) << seed;
      EXPECT_EQ(real.frames_sent, simulated.packets) << seed << " " << caching;
      EXPECT_EQ(real.rounds, simulated.rounds) << seed << " " << caching;
    }
  }
}

TEST(SimVsReal, IrrelevantAbortAgrees) {
  const auto lin = make_document();
  for (std::uint64_t seed = 30; seed <= 45; ++seed) {
    const auto pattern = random_pattern(0.25, 4096, seed);
    const auto real = run_real(lin, pattern, 1.5, true, 0.4);
    const auto simulated = run_sim(lin, pattern, 1.5, true, 0.4);
    EXPECT_EQ(real.aborted_irrelevant, simulated.aborted_irrelevant) << seed;
    EXPECT_EQ(real.frames_sent, simulated.packets) << seed;
    EXPECT_NEAR(real.content_received, simulated.content, 1e-9) << seed;
  }
}

TEST(SimVsReal, ResponseTimeProportionalToFrames) {
  const auto lin = make_document();
  const auto pattern = random_pattern(0.2, 4096, 50);
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5});
  const double frame_time = static_cast<double>(tx.frame(0).size()) * 8.0 / 19200.0;
  const auto real = run_real(lin, pattern, 1.5, true, -1.0);
  EXPECT_NEAR(real.response_time,
              static_cast<double>(real.frames_sent) * frame_time, 1e-9);
}

TEST(AnalysisVsSim, SuccessProbabilityMatchesOptimalN) {
  // The solver's N guarantees >= S single-round success; verify against the
  // analytic simulator (one round only, no caching).
  const int m = 30;
  const double alpha = 0.3;
  const int n = mobiweb::analysis::optimal_cooked_packets(m, alpha, 0.95);
  sim::TransferConfig cfg;
  cfg.m = m;
  cfg.n = n;
  cfg.alpha = alpha;
  cfg.caching = false;
  cfg.max_rounds = 1;
  const std::vector<double> content(m, 1.0 / m);
  Rng rng(51);
  int ok = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    ok += sim::simulate_transfer(content, cfg, rng).completed;
  }
  const double rate = static_cast<double>(ok) / trials;
  EXPECT_GE(rate, 0.95 - 0.01);
  // And N-1 cooked packets must miss the target.
  cfg.n = n - 1;
  ok = 0;
  for (int t = 0; t < trials; ++t) {
    ok += sim::simulate_transfer(content, cfg, rng).completed;
  }
  EXPECT_LT(static_cast<double>(ok) / trials, 0.95 + 0.005);
}

TEST(AnalysisVsReal, ExpectedPacketsMatches) {
  // E(P) = M / (1 - alpha): measured over the real stack with ample
  // redundancy so reconstruction always happens in round 1.
  const auto lin = make_document();
  transmit::DocumentTransmitter probe(lin, {.packet_size = 128, .gamma = 1.0});
  const int m = static_cast<int>(probe.m());
  double total_frames = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const auto pattern = random_pattern(0.2, 1 << 14, 100 + t);
    const auto real = run_real(lin, pattern, /*gamma=*/6.0, true, -1.0);
    ASSERT_TRUE(real.completed);
    total_frames += static_cast<double>(real.frames_sent);
  }
  const double mean = total_frames / trials;
  EXPECT_NEAR(mean, mobiweb::analysis::expected_packets(m, 0.2), 1.5);
}
