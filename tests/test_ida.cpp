// Systematic information dispersal: encode/decode/streaming.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "ida/ida.hpp"
#include "util/rng.hpp"

namespace ida = mobiweb::ida;
using mobiweb::Bytes;
using mobiweb::ByteSpan;
using mobiweb::ContractViolation;
using mobiweb::Rng;

namespace {

Bytes random_payload(std::size_t size, Rng& rng) {
  Bytes out(size);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

}  // namespace

TEST(Split, PadsTail) {
  const Bytes payload = {1, 2, 3, 4, 5};
  const auto raw = ida::split_payload(ByteSpan(payload), 2);
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_EQ(raw[0], (Bytes{1, 2}));
  EXPECT_EQ(raw[1], (Bytes{3, 4}));
  EXPECT_EQ(raw[2], (Bytes{5, 0}));
}

TEST(Split, ExactFit) {
  const Bytes payload = {1, 2, 3, 4};
  const auto raw = ida::split_payload(ByteSpan(payload), 2);
  ASSERT_EQ(raw.size(), 2u);
  EXPECT_EQ(raw[1], (Bytes{3, 4}));
}

TEST(Split, PacketCount) {
  EXPECT_EQ(ida::packet_count(10240, 256), 40u);
  EXPECT_EQ(ida::packet_count(10241, 256), 41u);
  EXPECT_EQ(ida::packet_count(1, 256), 1u);
}

TEST(Encoder, SystematicPrefixEqualsRaw) {
  Rng rng(20);
  const Bytes payload = random_payload(1000, rng);
  ida::Encoder enc(4, 9);
  const auto raw = ida::split_payload(ByteSpan(payload), 250);
  const auto cooked = enc.encode(raw);
  ASSERT_EQ(cooked.size(), 9u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cooked[i], raw[i]) << "clear-text packet " << i;
  }
}

TEST(Encoder, RejectsBadShapes) {
  EXPECT_THROW(ida::Encoder(0, 4), ContractViolation);
  EXPECT_THROW(ida::Encoder(5, 4), ContractViolation);
  EXPECT_THROW(ida::Encoder(10, 256), ContractViolation);
  EXPECT_NO_THROW(ida::Encoder(10, 255));
}

TEST(Encoder, MismatchedPacketSizesThrow) {
  ida::Encoder enc(2, 3);
  std::vector<Bytes> raw = {{1, 2}, {3}};
  EXPECT_THROW(enc.encode(raw), ContractViolation);
}

TEST(Decoder, AnyMSubsetReconstructs) {
  Rng rng(21);
  const std::size_t m = 5;
  const std::size_t n = 12;
  const Bytes payload = random_payload(1237, rng);
  ida::Encoder enc(m, n);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);

  ida::Decoder dec(m, n);
  for (int trial = 0; trial < 30; ++trial) {
    // Random m-subset of cooked indices.
    std::vector<std::size_t> indices(n);
    std::iota(indices.begin(), indices.end(), 0u);
    for (std::size_t i = n - 1; i > 0; --i) {
      std::swap(indices[i], indices[rng.next_below(i + 1)]);
    }
    std::vector<std::pair<std::size_t, Bytes>> subset;
    for (std::size_t i = 0; i < m; ++i) {
      subset.emplace_back(indices[i], cooked[indices[i]]);
    }
    EXPECT_EQ(dec.decode_payload(subset, payload.size()), payload);
  }
}

TEST(Decoder, RedundancyOnlyReconstructs) {
  Rng rng(22);
  const Bytes payload = random_payload(512, rng);
  ida::Encoder enc(2, 6);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  ida::Decoder dec(2, 6);
  // Use only the non-systematic packets.
  const std::vector<std::pair<std::size_t, Bytes>> subset = {{4, cooked[4]},
                                                             {5, cooked[5]}};
  EXPECT_EQ(dec.decode_payload(subset, payload.size()), payload);
}

TEST(Decoder, TooFewPacketsThrows) {
  Rng rng(23);
  const Bytes payload = random_payload(512, rng);
  ida::Encoder enc(2, 4);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  ida::Decoder dec(2, 4);
  const std::vector<std::pair<std::size_t, Bytes>> one = {{0, cooked[0]}};
  EXPECT_THROW(dec.decode(one), ContractViolation);
}

TEST(Decoder, DuplicateIndicesDoNotCount) {
  Rng rng(24);
  const Bytes payload = random_payload(512, rng);
  ida::Encoder enc(2, 4);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  ida::Decoder dec(2, 4);
  const std::vector<std::pair<std::size_t, Bytes>> dup = {{1, cooked[1]},
                                                          {1, cooked[1]}};
  EXPECT_THROW(dec.decode(dup), ContractViolation);
}

TEST(Decoder, IndexOutOfRangeThrows) {
  Rng rng(31);
  const Bytes payload = random_payload(512, rng);
  ida::Encoder enc(2, 4);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  ida::Decoder dec(2, 4);
  const std::vector<std::pair<std::size_t, Bytes>> bad = {{0, cooked[0]},
                                                          {4, cooked[1]}};
  EXPECT_THROW(dec.decode(bad), ContractViolation);
}

TEST(Decoder, MixedPacketSizesThrow) {
  Rng rng(32);
  const Bytes payload = random_payload(512, rng);
  ida::Encoder enc(2, 4);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  ida::Decoder dec(2, 4);
  // A short (truncated) payload must be rejected even when enough well-sized
  // packets are present — never silently decoded against a ragged matrix.
  Bytes truncated(cooked[1].begin(), cooked[1].begin() + 100);
  const std::vector<std::pair<std::size_t, Bytes>> mixed = {
      {0, cooked[0]}, {1, std::move(truncated)}, {2, cooked[2]}};
  EXPECT_THROW(dec.decode(mixed), ContractViolation);
}

TEST(Decoder, EmptyPacketsThrow) {
  ida::Decoder dec(2, 4);
  EXPECT_THROW(dec.decode({}), ContractViolation);
  const std::vector<std::pair<std::size_t, Bytes>> empties = {{0, Bytes{}},
                                                              {1, Bytes{}}};
  EXPECT_THROW(dec.decode(empties), ContractViolation);
}

TEST(Decoder, DuplicatesPlusEnoughDistinctStillDecode) {
  Rng rng(33);
  const Bytes payload = random_payload(512, rng);
  ida::Encoder enc(2, 4);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  ida::Decoder dec(2, 4);
  // The duplicate must be skipped (not fed to the submatrix twice, which
  // would make it singular); the later distinct packet completes the decode.
  const std::vector<std::pair<std::size_t, Bytes>> dup_then_ok = {
      {3, cooked[3]}, {3, cooked[3]}, {1, cooked[1]}};
  EXPECT_EQ(dec.decode_payload(dup_then_ok, payload.size()), payload);
}

TEST(Decoder, PaperShape40of60) {
  Rng rng(25);
  const Bytes payload = random_payload(10240, rng);  // the paper's document
  ida::Encoder enc(40, 60);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  ASSERT_EQ(cooked.size(), 60u);
  // Drop 20 arbitrary packets (a 33% loss burst), decode from the rest.
  std::vector<std::pair<std::size_t, Bytes>> kept;
  for (std::size_t i = 0; i < 60; ++i) {
    if (i % 3 == 1) continue;  // drop 20
    kept.emplace_back(i, cooked[i]);
  }
  ida::Decoder dec(40, 60);
  EXPECT_EQ(dec.decode_payload(kept, payload.size()), payload);
}

TEST(Streaming, ClearPacketsAvailableImmediately) {
  Rng rng(26);
  const Bytes payload = random_payload(700, rng);
  ida::Encoder enc(3, 6);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);

  ida::StreamingDecoder sd(3, 6, 256, payload.size());
  EXPECT_FALSE(sd.complete());
  EXPECT_TRUE(sd.add(1, ByteSpan(cooked[1])));
  EXPECT_TRUE(sd.has_clear(1));
  EXPECT_FALSE(sd.has_clear(0));
  EXPECT_EQ(sd.clear_fraction(), 1.0 / 3.0);
  const ByteSpan clear = sd.clear_packet(1);
  EXPECT_TRUE(std::equal(clear.begin(), clear.end(), cooked[1].begin()));
}

TEST(Streaming, DuplicatesIgnored) {
  Rng rng(27);
  const Bytes payload = random_payload(700, rng);
  ida::Encoder enc(3, 6);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  ida::StreamingDecoder sd(3, 6, 256, payload.size());
  EXPECT_TRUE(sd.add(4, ByteSpan(cooked[4])));
  EXPECT_FALSE(sd.add(4, ByteSpan(cooked[4])));
  EXPECT_EQ(sd.intact_count(), 1u);
}

TEST(Streaming, CompletesAndReconstructs) {
  Rng rng(28);
  const Bytes payload = random_payload(700, rng);
  ida::Encoder enc(3, 6);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  ida::StreamingDecoder sd(3, 6, 256, payload.size());
  EXPECT_THROW(sd.reconstruct(), ContractViolation);
  sd.add(5, ByteSpan(cooked[5]));
  sd.add(0, ByteSpan(cooked[0]));
  EXPECT_FALSE(sd.complete());
  sd.add(3, ByteSpan(cooked[3]));
  ASSERT_TRUE(sd.complete());
  EXPECT_EQ(sd.reconstruct(), payload);
}

TEST(Streaming, ClearPacketAfterCompletionStillServed) {
  Rng rng(29);
  const Bytes payload = random_payload(700, rng);
  ida::Encoder enc(3, 6);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  ida::StreamingDecoder sd(3, 6, 256, payload.size());
  sd.add(3, ByteSpan(cooked[3]));
  sd.add(4, ByteSpan(cooked[4]));
  sd.add(5, ByteSpan(cooked[5]));
  ASSERT_TRUE(sd.complete());
  EXPECT_TRUE(sd.add(0, ByteSpan(cooked[0])));
  EXPECT_TRUE(sd.has_clear(0));
  const ByteSpan clear = sd.clear_packet(0);
  EXPECT_TRUE(std::equal(clear.begin(), clear.end(), cooked[0].begin()));
}

TEST(Streaming, ResetClearsState) {
  Rng rng(30);
  const Bytes payload = random_payload(700, rng);
  ida::Encoder enc(3, 6);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  ida::StreamingDecoder sd(3, 6, 256, payload.size());
  sd.add(0, ByteSpan(cooked[0]));
  sd.reset();
  EXPECT_EQ(sd.intact_count(), 0u);
  EXPECT_FALSE(sd.has_clear(0));
  // After reset the same packet is "new" again.
  EXPECT_TRUE(sd.add(0, ByteSpan(cooked[0])));
}

TEST(Streaming, RejectsBadInput) {
  ida::StreamingDecoder sd(3, 6, 256, 700);
  Bytes wrong_size(100, 0);
  EXPECT_THROW(sd.add(0, ByteSpan(wrong_size)), ContractViolation);
  Bytes right_size(256, 0);
  EXPECT_THROW(sd.add(6, ByteSpan(right_size)), ContractViolation);
  EXPECT_THROW(ida::StreamingDecoder(3, 6, 256, 1000), ContractViolation);
}

TEST(Ida, GeneratorCacheReturnsSameObject) {
  const auto& a = ida::systematic_generator(60, 40);
  const auto& b = ida::systematic_generator(60, 40);
  EXPECT_EQ(&a, &b);
}

// Property sweep: encode -> lose packets -> decode across shapes.
class IdaRoundTrip : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(IdaRoundTrip, LossyRoundTrip) {
  const auto [m, n, payload_size] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000 + n));
  const Bytes payload = random_payload(static_cast<std::size_t>(payload_size), rng);
  const std::size_t packet_size =
      (static_cast<std::size_t>(payload_size) + m - 1) / static_cast<std::size_t>(m);
  ida::Encoder enc(static_cast<std::size_t>(m), static_cast<std::size_t>(n));
  const auto cooked = enc.encode_payload(ByteSpan(payload), packet_size);

  // Feed packets in a shuffled order, dropping n - m of them.
  std::vector<std::size_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t i = order.size() - 1; i > 0; --i) {
    std::swap(order[i], order[rng.next_below(i + 1)]);
  }
  ida::StreamingDecoder sd(static_cast<std::size_t>(m), static_cast<std::size_t>(n),
                           packet_size, payload.size());
  for (int i = 0; i < m; ++i) {
    sd.add(order[static_cast<std::size_t>(i)],
           ByteSpan(cooked[order[static_cast<std::size_t>(i)]]));
  }
  ASSERT_TRUE(sd.complete());
  EXPECT_EQ(sd.reconstruct(), payload);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IdaRoundTrip,
    ::testing::Values(std::tuple<int, int, int>{1, 1, 17},
                      std::tuple<int, int, int>{1, 8, 300},
                      std::tuple<int, int, int>{2, 3, 511},
                      std::tuple<int, int, int>{7, 11, 2048},
                      std::tuple<int, int, int>{40, 60, 10240},
                      std::tuple<int, int, int>{100, 150, 25600},
                      std::tuple<int, int, int>{100, 255, 25600},
                      std::tuple<int, int, int>{255, 255, 2550}));
